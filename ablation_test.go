// Ablation benchmarks for the design choices DESIGN.md calls out: the
// dual-system halving trick (Sec. 3.2), the majority early-stop rule
// (Sec. 3.3), and the ring-contour subtraction. Each ablation runs the same
// physical solve with the feature disabled and reports the cost or quality
// difference.
package cbs_test

import (
	"math/cmplx"
	"testing"

	"cbs/internal/contour"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/sparse"
	"cbs/internal/ssm"
	"cbs/internal/zlinalg"
)

// BenchmarkAblationDualTrick compares the dual BiCG (one Krylov run
// producing both P(z)^{-1}b and P(z)^{-dagger}b) against two independent
// BiCG runs -- the paper's factor-2 saving on the ring contour.
func BenchmarkAblationDualTrick(b *testing.B) {
	f := alFixture(b)
	q := qep.New(f.model.Op, f.ef)
	n := q.Dim()
	ring, err := contour.NewRing(0.5, 8)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]complex128, n)
	for i := range rhs {
		rhs[i] = complex(float64((i*37)%101)/101-0.5, float64((i*61)%127)/127-0.5)
	}
	scratch1 := make([]complex128, n)
	scratch2 := make([]complex128, n)
	solveDual := func(z complex128) int {
		x := make([]complex128, n)
		xd := make([]complex128, n)
		apply := func(v, out []complex128) { q.Apply(z, v, out, scratch1) }
		applyD := func(v, out []complex128) { q.ApplyDagger(z, v, out, scratch2) }
		r := linsolve.BiCGDual(apply, applyD, rhs, rhs, x, xd, linsolve.Options{Tol: 1e-10})
		return r.MatVecApplied
	}
	solveSeparate := func(zOut, zIn complex128) int {
		total := 0
		for _, z := range []complex128{zOut, zIn} {
			zz := z
			x := make([]complex128, n)
			apply := func(v, out []complex128) { q.Apply(zz, v, out, scratch1) }
			applyD := func(v, out []complex128) { q.ApplyDagger(zz, v, out, scratch2) }
			r := linsolve.BiCG(apply, applyD, rhs, x, linsolve.Options{Tol: 1e-10})
			total += r.MatVecApplied
		}
		return total
	}
	var mvDual, mvSep int
	for i := 0; i < b.N; i++ {
		mvDual, mvSep = 0, 0
		for j := range ring.Outer {
			mvDual += solveDual(ring.Outer[j].Z)
			mvSep += solveSeparate(ring.Outer[j].Z, ring.Inner[j].Z)
		}
	}
	saving := float64(mvSep) / float64(mvDual)
	b.ReportMetric(saving, "matvec-saving")
	// The dual trick should cut the operator applications by about half.
	if saving < 1.5 {
		b.Fatalf("dual trick saved only %.2fx in matvecs; expected about 2x", saving)
	}
}

// BenchmarkAblationLoadBalanceStop measures the majority early-stop rule:
// total matvecs with and without it. The rule trades a bounded accuracy
// loss (the paper: stragglers reach ~1e-8 when half hit 1e-10) for better
// middle-layer load balance.
func BenchmarkAblationLoadBalanceStop(b *testing.B) {
	f := alFixture(b)
	run := func(stop bool) (int, int) {
		opts := fastOpts()
		opts.LoadBalanceStop = stop
		res, err := f.model.SolveCBS(f.ef, opts)
		if err != nil {
			b.Fatal(err)
		}
		return res.MatVecs, len(res.Pairs)
	}
	var mvOn, mvOff, nOn, nOff int
	for i := 0; i < b.N; i++ {
		mvOff, nOff = run(false)
		mvOn, nOn = run(true)
	}
	b.ReportMetric(float64(mvOff)/float64(mvOn), "matvec-ratio-off/on")
	if nOn != nOff {
		// Not fatal -- the rule may drop marginal states -- but report it.
		b.Logf("states with stop: %d, without: %d", nOn, nOff)
	}
}

// BenchmarkAblationRingVsCircle demonstrates why the two-circle ring is
// required: a single outer circle encloses the z=0 pole of the QEP's
// Laurent form and the rapidly-decaying states, corrupting the moments. We
// measure the spurious-state rate of each contour on a scalar-decoupled
// problem with known roots.
func BenchmarkAblationRingVsCircle(b *testing.B) {
	n := 12
	e := 0.7
	h0 := make([]float64, n)
	hp := make([]complex128, n)
	for i := range h0 {
		h0[i] = float64((i*7)%10)/10 - 0.5
		hp[i] = complex(0.3+float64((i*3)%7)/10, float64((i*5)%9)/20-0.2)
	}
	pf := func(z complex128) (*zlinalg.Matrix, error) {
		m := zlinalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			m.Set(i, i, -cmplx.Conj(hp[i])/z+complex(e-h0[i], 0)-hp[i]*z)
		}
		return m, nil
	}
	ring, err := contour.NewRing(0.5, 32)
	if err != nil {
		b.Fatal(err)
	}
	circle, err := contour.Circle(0, 2.0, 64)
	if err != nil {
		b.Fatal(err)
	}
	countGood := func(pts []contour.Point) (found, spurious int) {
		res, err := ssm.SolveNonlinear(pf, n, pts, 8, ssm.Options{Nmm: 8, Delta: 1e-10}, 3)
		if err != nil {
			return 0, 99
		}
		kept := res.FilterByResidual(1e-6, ring.Contains)
		all := res.FilterByResidual(1e30, ring.Contains) // everything in annulus
		return len(kept.Lambdas), len(all.Lambdas) - len(kept.Lambdas)
	}
	var ringFound, ringSpur, circFound, circSpur int
	for i := 0; i < b.N; i++ {
		ringFound, ringSpur = countGood(ring.Points())
		circFound, circSpur = countGood(circle)
	}
	b.ReportMetric(float64(ringFound), "ring-found")
	b.ReportMetric(float64(ringSpur), "ring-spurious")
	b.ReportMetric(float64(circFound), "circle-found")
	b.ReportMetric(float64(circSpur), "circle-spurious")
	if ringSpur > circSpur {
		b.Fatalf("ring produced more spurious annulus states (%d) than the naive circle (%d)", ringSpur, circSpur)
	}
}

// BenchmarkAblationSVDThreshold sweeps the Hankel truncation delta: too
// loose keeps noise directions (spurious states), too tight discards true
// ones. The paper's 1e-10 sits on the plateau.
func BenchmarkAblationSVDThreshold(b *testing.B) {
	f := alFixture(b)
	var plateau bool
	var n6, n10, n2 int
	for i := 0; i < b.N; i++ {
		count := func(delta float64) int {
			opts := fastOpts()
			opts.Delta = delta
			res, err := f.model.SolveCBS(f.ef, opts)
			if err != nil {
				b.Fatal(err)
			}
			return len(res.Pairs)
		}
		n6 = count(1e-6)
		n10 = count(1e-10)
		n2 = count(1e-2)
		plateau = n6 == n10
	}
	b.ReportMetric(float64(n2), "states-delta1e-2")
	b.ReportMetric(float64(n6), "states-delta1e-6")
	b.ReportMetric(float64(n10), "states-delta1e-10")
	if !plateau {
		b.Logf("delta sensitivity: 1e-6 -> %d states, 1e-10 -> %d states", n6, n10)
	}
	// An aggressive truncation must not find more states than the plateau.
	if n2 > n10 {
		b.Fatalf("delta=1e-2 found %d states vs %d at 1e-10", n2, n10)
	}
}

// BenchmarkAblationMatrixFree measures the paper's claim #1 directly: the
// matrix-free operator against the explicitly stored CSR form, in both
// memory footprint and application speed of the full P(z) combination.
func BenchmarkAblationMatrixFree(b *testing.B) {
	f := alFixture(b)
	op := f.model.Op
	blocks, err := sparse.FromOperator(op)
	if err != nil {
		b.Fatal(err)
	}
	n := op.N()
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64((i*13)%97)/97, float64((i*29)%89)/89)
	}
	out := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.ApplyH0(v, out)
		blocks.ApplyH0(v, out)
	}
	b.ReportMetric(float64(blocks.MemoryBytes())/float64(op.MemoryBytes()), "stored-vs-free-mem")
}
