// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. 4-5). Grids are reduced relative to the paper's
// (hardware substitution, DESIGN.md); each benchmark reports the metrics
// whose *shape* reproduces the published result -- speedup ratios, memory
// ratios, phase fractions, convergence spreads -- rather than absolute
// Fortran/MKL walltimes. EXPERIMENTS.md records paper-vs-measured values.
package cbs_test

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"cbs"
	"cbs/internal/bandstructure"
	"cbs/internal/cluster"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/units"
)

// ---- shared fixtures ------------------------------------------------------

type fixture struct {
	model *cbs.Model
	ef    float64
}

var fixtures sync.Map

func getFixture(b *testing.B, name string, build func() (*cbs.Model, error)) fixture {
	b.Helper()
	if f, ok := fixtures.Load(name); ok {
		return f.(fixture)
	}
	m, err := build()
	if err != nil {
		b.Fatal(err)
	}
	ef, err := m.FermiLevel(3)
	if err != nil {
		b.Fatal(err)
	}
	f := fixture{model: m, ef: ef}
	fixtures.Store(name, f)
	return f
}

func alFixture(b *testing.B) fixture {
	return getFixture(b, "al", func() (*cbs.Model, error) {
		st, err := cbs.AlBulk100(1)
		if err != nil {
			return nil, err
		}
		return cbs.NewModel(st, cbs.GridConfig{Nx: 8, Ny: 8, Nz: 12, Nf: 4})
	})
}

func cnt66Fixture(b *testing.B) fixture {
	// Sized so that the OBM baseline's O(N^3) pencil also finishes on the
	// 1-core CI host; the paper-scale grids are exercised by cmd/serialperf.
	return getFixture(b, "cnt66", func() (*cbs.Model, error) {
		st, err := cbs.CNT(6, 6, units.AngstromToBohr(3.0))
		if err != nil {
			return nil, err
		}
		return cbs.NewModel(st, cbs.GridConfig{Nx: 10, Ny: 10, Nz: 10, Nf: 4})
	})
}

func cnt80Fixture(b *testing.B) fixture {
	return getFixture(b, "cnt80", func() (*cbs.Model, error) {
		st, err := cbs.CNT(8, 0, units.AngstromToBohr(3.0))
		if err != nil {
			return nil, err
		}
		return cbs.NewModel(st, cbs.GridConfig{Nx: 12, Ny: 12, Nz: 16, Nf: 4})
	})
}

func fastOpts() cbs.Options {
	o := cbs.DefaultOptions()
	o.Nint = 16
	o.Nmm = 6
	o.Nrh = 8
	return o
}

// ---- Fig. 4(a): serial runtime, QEP/SS vs OBM ------------------------------

func BenchmarkFig4aRuntimeSS_Al(b *testing.B) {
	f := alFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveCBS(f.ef, fastOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aRuntimeOBM_Al(b *testing.B) {
	f := alFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveOBM(f.ef, cbs.DefaultOBMOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aRuntimeSS_CNT66(b *testing.B) {
	f := cnt66Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveCBS(f.ef, fastOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aRuntimeOBM_CNT66(b *testing.B) {
	f := cnt66Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveOBM(f.ef, cbs.DefaultOBMOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Blocked multi-RHS kernels -----------------------------------------------

// BenchmarkBlockedApply measures the fused P(z) block apply against nb
// repetitions of the single-vector path: the operator tables stream through
// memory once per block instead of once per column, so ns/op should grow
// sublinearly in nb.
func BenchmarkBlockedApply(b *testing.B) {
	f := alFixture(b)
	q := qep.New(f.model.Op, f.ef)
	n := q.Dim()
	z := cmplx.Exp(complex(0, 0.3))
	for _, nb := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			v := make([]complex128, n*nb)
			out := make([]complex128, n*nb)
			for i := range v {
				v[i] = complex(float64(i%7)-3, float64(i%5)-2)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.ApplyBlock(z, v, out, nb)
			}
		})
	}
}

// BenchmarkStep1BlockedSolve runs one quadrature point's block solve with a
// preallocated workspace — the steady state of the contour loop. The headline
// metric is allocs/op: the hot path must report 0.
func BenchmarkStep1BlockedSolve(b *testing.B) {
	f := alFixture(b)
	q := qep.New(f.model.Op, f.ef)
	n := q.Dim()
	const nb = 8
	z := cmplx.Exp(complex(0, 0.3))
	apply := func(v, out []complex128, nbv int) { q.ApplyBlock(z, v, out, nbv) }
	applyD := func(v, out []complex128, nbv int) { q.ApplyDaggerBlock(z, v, out, nbv) }
	rhs := make([]complex128, n*nb)
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	for i := range rhs {
		rhs[i] = complex(float64(i%11)-5, float64(i%3)-1)
	}
	ws := linsolve.NewWorkspace(n, nb)
	opts := linsolve.Options{Tol: 1e-9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
			xd[j] = 0
		}
		rs := linsolve.BlockBiCGDual(apply, applyD, rhs, rhs, x, xd, nb, opts, nil, ws)
		for c := range rs {
			if rs[c].Breakdown {
				b.Fatalf("column %d broke down", c)
			}
		}
	}
}

// ---- Fig. 4(b): memory usage ratio ------------------------------------------

func BenchmarkFig4bMemoryRatio(b *testing.B) {
	// Memory estimates need no solves, so this benchmark can afford
	// paper-shaped grids: Al 12^3 and a 24x24x10 (6,6) CNT.
	alSt, err := cbs.AlBulk100(1)
	if err != nil {
		b.Fatal(err)
	}
	alModel, err := cbs.NewModel(alSt, cbs.GridConfig{Nx: 12, Ny: 12, Nz: 12, Nf: 4})
	if err != nil {
		b.Fatal(err)
	}
	cntSt, err := cbs.CNT(6, 6, units.AngstromToBohr(3.0))
	if err != nil {
		b.Fatal(err)
	}
	cntModel, err := cbs.NewModel(cntSt, cbs.GridConfig{Nx: 24, Ny: 24, Nz: 10, Nf: 4})
	if err != nil {
		b.Fatal(err)
	}
	var ratioAl, ratioCNT float64
	for i := 0; i < b.N; i++ {
		ratioAl = float64(alModel.OBMMemoryBytes()) / float64(alModel.CBSMemoryBytes(fastOpts()))
		ratioCNT = float64(cntModel.OBMMemoryBytes()) / float64(cntModel.CBSMemoryBytes(fastOpts()))
	}
	b.ReportMetric(ratioAl, "memratio-Al")
	b.ReportMetric(ratioCNT, "memratio-CNT")
	// Paper: 33x (Al) and 604x (CNT) -- the ratio must grow with N.
	if ratioCNT <= ratioAl {
		b.Fatalf("memory ratio did not grow with system size: Al %.1f, CNT %.1f", ratioAl, ratioCNT)
	}
}

// ---- Table 1: cost breakdown -------------------------------------------------

func BenchmarkTable1Breakdown(b *testing.B) {
	f := alFixture(b)
	var solveFrac float64
	for i := 0; i < b.N; i++ {
		res, err := f.model.SolveCBS(f.ef, fastOpts())
		if err != nil {
			b.Fatal(err)
		}
		total := res.Timings.Setup + res.Timings.SolveLinear + res.Timings.Extract
		solveFrac = float64(res.Timings.SolveLinear) / float64(total)
	}
	b.ReportMetric(solveFrac*100, "%solve-linear")
	// Paper: the linear solves dominate (11.2 s of 11.3 s for Al).
	if solveFrac < 0.80 {
		b.Fatalf("linear solves only %.0f%% of runtime; paper observes > 95%%", solveFrac*100)
	}
}

// ---- Fig. 5: BiCG convergence uniformity --------------------------------------

func BenchmarkFig5ConvergenceSpread(b *testing.B) {
	f := alFixture(b)
	opts := fastOpts()
	opts.TrackHistories = true
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := f.model.SolveCBS(f.ef, opts)
		if err != nil {
			b.Fatal(err)
		}
		minIt, maxIt := math.MaxInt32, 0
		for _, p := range res.Points {
			if p.Iterations < minIt {
				minIt = p.Iterations
			}
			if p.Iterations > maxIt {
				maxIt = p.Iterations
			}
		}
		spread = float64(maxIt) / float64(minIt)
	}
	b.ReportMetric(spread, "iter-spread")
	// Paper: convergence "does not strongly depend on the choice of z_j".
	if spread > 3 {
		b.Fatalf("iteration spread %.1fx across quadrature points; paper observes near-uniform convergence", spread)
	}
}

// ---- Fig. 6: CBS vs conventional band structure --------------------------------

func BenchmarkFig6Accuracy(b *testing.B) {
	f := alFixture(b)
	a := f.model.CellLength()
	k0 := 0.55 * math.Pi / a
	bands, err := bandstructure.Bands(f.model.Op, []float64{k0}, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := bands[0][2]
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := f.model.SolveCBS(e, fastOpts())
		if err != nil {
			b.Fatal(err)
		}
		want := cmplx.Exp(complex(0, k0*a))
		best = math.Inf(1)
		for _, p := range res.Pairs {
			if d := cmplx.Abs(p.Lambda - want); d < best {
				best = d
			}
		}
	}
	b.ReportMetric(best, "lambda-error")
	// Paper: agreement "with an accuracy of 1e-5".
	if best > 1e-5 {
		b.Fatalf("CBS misses the band-structure state by %g (paper: 1e-5)", best)
	}
}

// ---- Fig. 7: structure generation ----------------------------------------------

func BenchmarkFig7Structures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tube, err := cbs.CNT(8, 0, 7)
		if err != nil {
			b.Fatal(err)
		}
		super, err := cbs.Repeat(tube, 32)
		if err != nil {
			b.Fatal(err)
		}
		doped, err := cbs.BNDope(super, 26, 2017)
		if err != nil {
			b.Fatal(err)
		}
		if doped.NumAtoms() != 1024 {
			b.Fatal("wrong atom count")
		}
	}
}

// ---- Fig. 8: three-layer strong scaling (measured, small system) ----------------

func benchLayer(b *testing.B, cfg cbs.Parallel) {
	f := cnt80Fixture(b)
	opts := fastOpts()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Parallel = cfg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveCBS(f.ef, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8TopLayer1(b *testing.B)    { benchLayer(b, cbs.Parallel{Top: 1}) }
func BenchmarkFig8TopLayer4(b *testing.B)    { benchLayer(b, cbs.Parallel{Top: 4}) }
func BenchmarkFig8TopLayer8(b *testing.B)    { benchLayer(b, cbs.Parallel{Top: 8}) }
func BenchmarkFig8MidLayer1(b *testing.B)    { benchLayer(b, cbs.Parallel{Mid: 1}) }
func BenchmarkFig8MidLayer4(b *testing.B)    { benchLayer(b, cbs.Parallel{Mid: 4}) }
func BenchmarkFig8MidLayer8(b *testing.B)    { benchLayer(b, cbs.Parallel{Mid: 8}) }
func BenchmarkFig8BottomLayer1(b *testing.B) { benchLayer(b, cbs.Parallel{Ndm: 1}) }
func BenchmarkFig8BottomLayer2(b *testing.B) { benchLayer(b, cbs.Parallel{Ndm: 2}) }
func BenchmarkFig8BottomLayer4(b *testing.B) { benchLayer(b, cbs.Parallel{Ndm: 4}) }

// ---- Fig. 9 / Fig. 10: medium and large systems (machine model) ------------------

func BenchmarkFig9ModelScaling(b *testing.B) {
	f := cnt80Fixture(b)
	m := cluster.OakforestPACS()
	w := cluster.FromOperator(f.model.Op, 32, 16, 3000)
	w.N *= 32
	w.NzPlanes *= 32
	w.FlopsPerApply *= 32
	var eff float64
	for i := 0; i < b.N; i++ {
		pts, err := m.LayerScaling(w, cluster.Hierarchy{Top: 16, Mid: 32, Ndm: 1, Threads: 17},
			"ndm", []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		eff = pts[len(pts)-1].Speedup / 16
	}
	b.ReportMetric(eff, "bottom-eff-1024at")
	// Paper Fig. 9(c): good bottom-layer scalability for the medium system.
	if eff < 0.5 {
		b.Fatalf("medium-system bottom-layer efficiency %.2f; paper observes good scaling", eff)
	}
}

func BenchmarkFig10ModelScaling(b *testing.B) {
	f := cnt80Fixture(b)
	m := cluster.OakforestPACS()
	w := cluster.FromOperator(f.model.Op, 32, 16, 6000)
	w.N *= 320
	w.NzPlanes *= 320
	w.FlopsPerApply *= 320
	var eff32, eff64 float64
	for i := 0; i < b.N; i++ {
		pts, err := m.LayerScaling(w, cluster.Hierarchy{Top: 16, Mid: 32, Ndm: 2, Threads: 4},
			"ndm", []int{2, 4, 8, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		eff32 = pts[4].Speedup / 32
		eff64 = pts[5].Speedup / 64
	}
	b.ReportMetric(eff32, "ndm32-eff")
	b.ReportMetric(eff64, "ndm64-eff")
	// Paper Fig. 10(b): reduced efficiency at the largest process counts
	// (global communication), but still worthwhile scaling.
	if eff64 >= 1.0 {
		b.Fatal("model shows super-ideal scaling; the communication terms are wrong")
	}
}

// ---- Table 2: in-node split (measured analog + model) -----------------------------

func BenchmarkTable2ModelSplits(b *testing.B) {
	f := cnt80Fixture(b)
	m := cluster.OakforestPACS()
	w := cluster.FromOperator(f.model.Op, 32, 16, 1000)
	var bestThreads int
	for i := 0; i < b.N; i++ {
		rows := m.Table2(w, 64, 1000)
		best := 0
		for j, r := range rows {
			if r.Seconds < rows[best].Seconds {
				best = j
			}
		}
		bestThreads = rows[best].Threads
	}
	b.ReportMetric(float64(bestThreads), "best-threads")
	// Paper Table 2 (32 atoms): interior optimum (16 threads x 4 domains).
	if bestThreads == 1 || bestThreads == 64 {
		b.Fatalf("optimal split at an extreme (%d threads); paper finds an interior optimum", bestThreads)
	}
}

// ---- Fig. 11: bundle application ----------------------------------------------------

func BenchmarkFig11CrystallineBundle(b *testing.B) {
	f := getFixture(b, "crystalline", func() (*cbs.Model, error) {
		tube, err := cbs.CNT(8, 0, units.AngstromToBohr(3.0))
		if err != nil {
			return nil, err
		}
		cr, err := cbs.CrystallineBundle(tube)
		if err != nil {
			return nil, err
		}
		return cbs.NewModel(cr, cbs.GridConfig{Nx: 12, Ny: 20, Nz: 8, Nf: 4})
	})
	opts := fastOpts()
	opts.Parallel = cbs.Parallel{Top: 2, Mid: 2}
	for i := 0; i < b.N; i++ {
		if _, err := f.model.SolveCBS(f.ef, opts); err != nil {
			b.Fatal(err)
		}
	}
}
