package comm

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cbs/internal/chaos"
)

// testTCPOptions keeps recovery cycles fast enough for the test suite.
func testTCPOptions() TCPOptions {
	return TCPOptions{
		ConnectTimeout: 500 * time.Millisecond,
		IOTimeout:      100 * time.Millisecond,
		RetryBudget:    10,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

func TestTCPSendRecv(t *testing.T) {
	w, err := NewTCPWorld(2, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := c1.Recv(0)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if len(got) != 3 || got[0] != 1+2i || got[2] != 3i {
			t.Errorf("recv got %v", got)
		}
	}()
	if err := c0.Send(1, []complex128{1 + 2i, 2, 3i}); err != nil {
		t.Fatal(err)
	}
	<-done
	if w.Messages() != 1 || w.Bytes() != 48 {
		t.Errorf("stats: %d msgs %d bytes", w.Messages(), w.Bytes())
	}
}

func TestTCPRingExchange(t *testing.T) {
	const p = 4
	w, err := NewTCPWorld(p, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			up := (rank + 1) % p
			down := (rank - 1 + p) % p
			for round := 0; round < 5; round++ {
				got, err := c.SendRecv(up, []complex128{complex(float64(rank), float64(round))}, down)
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				if got[0] != complex(float64(down), float64(round)) {
					t.Errorf("rank %d round %d: got %v", rank, round, got[0])
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestTCPAllreduceParity pins the tentpole invariant: the TCP fabric's
// rank-0 star and the channel fabric's reducer fold non-associative float
// contributions in the same rank order, so the two fabrics produce
// bit-identical sums.
func TestTCPAllreduceParity(t *testing.T) {
	const p = 4
	contrib := [][]complex128{
		{complex(1e16, 1), 1},
		{complex(1, 1e-8), 1},
		{complex(-1e16, 1), 1},
		{complex(3, 7e-9), 1},
	}
	run := func(w RankWorld) []complex128 {
		defer w.Close()
		out := make([][]complex128, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c, err := w.Comm(rank)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := c.AllreduceSum(contrib[rank])
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				out[rank] = got
			}(r)
		}
		wg.Wait()
		for r := 1; r < p; r++ {
			for i := range out[r] {
				if out[r][i] != out[0][i] {
					t.Fatalf("ranks disagree: %v vs %v", out[r], out[0])
				}
			}
		}
		return out[0]
	}
	cw, err := ChannelFabric{}.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := TCPFabric{Opts: testTCPOptions()}.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	chanSum := run(cw)
	tcpSum := run(tw)
	for i := range chanSum {
		if chanSum[i] != tcpSum[i] {
			t.Fatalf("element %d: channel fabric %v != tcp fabric %v", i, chanSum[i], tcpSum[i])
		}
	}
}

// TestTCPAllreduceShapeMismatch mirrors the channel-fabric regression: a
// shape disagreement surfaces as ErrShapeMismatch on every rank and the
// world survives for the next round.
func TestTCPAllreduceShapeMismatch(t *testing.T) {
	const p = 3
	w, err := NewTCPWorld(p, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			_, errs[rank] = c.AllreduceSum(make([]complex128, 2+rank))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, ErrShapeMismatch) {
			t.Errorf("rank %d: err = %v, want ErrShapeMismatch", r, err)
		}
	}
	var wg2 sync.WaitGroup
	for r := 0; r < p; r++ {
		wg2.Add(1)
		go func(rank int) {
			defer wg2.Done()
			c, _ := w.Comm(rank)
			got, err := c.AllreduceSumScalar(1)
			if err != nil || got != p {
				t.Errorf("rank %d after mismatch: got %v, err %v", rank, got, err)
			}
		}(r)
	}
	wg2.Wait()
}

func TestTCPBarrier(t *testing.T) {
	const p = 3
	w, err := NewTCPWorld(p, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var phase [p]int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			phase[rank] = 1
			if err := c.Barrier(); err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			for i := 0; i < p; i++ {
				if phase[i] != 1 {
					t.Errorf("rank %d: barrier passed before rank %d arrived", rank, i)
				}
			}
		}(r)
	}
	wg.Wait()
}

// tcpChaosExchange runs rounds of ring exchanges and reductions on a chaos-
// injected TCP world and returns every rank's reduction results.
func tcpChaosExchange(t *testing.T, inj *chaos.Injector, p, rounds int) [][]complex128 {
	t.Helper()
	w, err := NewTCPWorld(p, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetChaos(inj)
	out := make([][]complex128, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			up := (rank + 1) % p
			down := (rank - 1 + p) % p
			for round := 0; round < rounds; round++ {
				got, err := c.SendRecv(up, []complex128{complex(float64(rank), float64(round))}, down)
				if err != nil {
					t.Errorf("rank %d round %d exchange: %v", rank, round, err)
					return
				}
				if got[0] != complex(float64(down), float64(round)) {
					t.Errorf("rank %d round %d: got %v", rank, round, got[0])
					return
				}
				sum, err := c.AllreduceSumScalar(complex(float64(rank), float64(round)))
				if err != nil {
					t.Errorf("rank %d round %d reduce: %v", rank, round, err)
					return
				}
				out[rank] = append(out[rank], sum)
			}
		}(r)
	}
	wg.Wait()
	return out
}

// TestTCPChaosRecovery arms every network fault site — drops, delays,
// reordering, duplication, partitions and failed connection attempts — and
// asserts the reliable links deliver exactly what a clean run delivers:
// chaos at these rates must be invisible above the transport.
func TestTCPChaosRecovery(t *testing.T) {
	const p, rounds = 3, 12
	clean := tcpChaosExchange(t, nil, p, rounds)
	for _, seed := range []int64{1, 7, 42} {
		inj := chaos.New(seed, chaos.Config{
			NetDrop:      0.15,
			NetDelay:     0.10,
			NetReorder:   0.15,
			NetDup:       0.15,
			NetPartition: 0.02,
			NetConn:      0.20,
		})
		got := tcpChaosExchange(t, inj, p, rounds)
		for r := range got {
			if len(got[r]) != len(clean[r]) {
				t.Fatalf("seed %d rank %d: %d results, want %d", seed, r, len(got[r]), len(clean[r]))
			}
			for i := range got[r] {
				if got[r][i] != clean[r][i] {
					t.Fatalf("seed %d rank %d round %d: chaos run diverged: %v != %v",
						seed, r, i, got[r][i], clean[r][i])
				}
			}
		}
	}
}

// TestTCPReconnectFlap is the flap harness of the reconnect path: the conn
// under a link is killed repeatedly mid-traffic and every exchange must
// still complete losslessly, with no goroutine leaked afterwards.
func TestTCPReconnectFlap(t *testing.T) {
	before := runtime.NumGoroutine()
	const p, rounds, flaps = 2, 40, 6
	w, err := NewTCPWorld(p, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		// Kill the rank1->rank0 conn (the only conn of a 2-world) from
		// under the link, repeatedly, while traffic flows.
		rc := w.ranks[1].links[0]
		for i := 0; i < flaps; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			rc.mu.Lock()
			if rc.conn != nil {
				rc.conn.Close()
			}
			rc.mu.Unlock()
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			for round := 0; round < rounds; round++ {
				sum, err := c.AllreduceSumScalar(complex(float64(round), 0))
				if err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
				if sum != complex(float64(p*round), 0) {
					t.Errorf("rank %d round %d: sum %v", rank, round, sum)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	w.Close()
	// Goroutine-leak check: everything the world spawned must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak after flapping: %d > %d\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

// TestTCPBackoffJitter pins the reconnect schedule: exponential growth from
// BackoffBase, a hard cap at BackoffMax, every wait jittered into [d/2, d],
// and the jitter actually varying between draws.
func TestTCPBackoffJitter(t *testing.T) {
	opts := TCPOptions{BackoffBase: 2 * time.Millisecond, BackoffMax: 64 * time.Millisecond}
	r := newAcceptorRConn(0, 1, opts)
	defer r.Close()
	distinct := make(map[time.Duration]bool)
	for attempt := 0; attempt < 12; attempt++ {
		d := r.opts.BackoffBase << uint(attempt)
		if d <= 0 || d > r.opts.BackoffMax {
			d = r.opts.BackoffMax
		}
		for i := 0; i < 4; i++ {
			got := r.backoff(attempt)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
			}
			if got > opts.BackoffMax {
				t.Fatalf("attempt %d: backoff %v above cap %v", attempt, got, opts.BackoffMax)
			}
			distinct[got] = true
		}
	}
	if len(distinct) < 8 {
		t.Errorf("only %d distinct backoff values across 48 draws: jitter looks dead", len(distinct))
	}
	// Deterministic: a fresh link with the same identity draws the same.
	a, b := newAcceptorRConn(3, 4, opts), newAcceptorRConn(3, 4, opts)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 8; i++ {
		if da, db := a.backoff(i), b.backoff(i); da != db {
			t.Fatalf("draw %d: backoff not deterministic: %v != %v", i, da, db)
		}
	}
}

// TestTCPPartitionBudget pins the typed failure: when the peer is gone for
// good (listener and conns down), the retry budget bounds the reconnect
// effort and the caller gets ErrPartition, not a hang.
func TestTCPPartitionBudget(t *testing.T) {
	opts := testTCPOptions()
	opts.IOTimeout = 50 * time.Millisecond
	opts.RetryBudget = 3
	w, err := NewTCPWorld(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c1, _ := w.Comm(1)
	// Warm the link, then tear rank 0 down completely.
	if err := c1.Send(0, []complex128{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ranks[0].Recv(1); err != nil {
		t.Fatal(err)
	}
	w.ranks[0].Close()
	_, err = c1.Recv(0)
	if !errors.Is(err, ErrPartition) && !errors.Is(err, ErrClosed) {
		t.Fatalf("recv from dead peer: err = %v, want ErrPartition", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("recv from dead peer returned ErrClosed for the survivor: %v", err)
	}
}

// TestTCPGarbageHello: a stranger writing garbage at a rank's listener must
// not disturb the world — the conn is dropped and real traffic proceeds.
func TestTCPGarbageHello(t *testing.T) {
	w, err := NewTCPWorld(2, testTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	raw, err := net.Dial("tcp", w.ranks[0].ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte(strings.Repeat("not a frame ", 8)))
	raw.Close()
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	done := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1)
		done <- err
	}()
	if err := c1.Send(0, []complex128{4i}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("recv after garbage conn: %v", err)
	}
}

// TestJoinTCP exercises the multi-process entry point in-process: three
// endpoints on preassigned loopback ports, joined in arbitrary order.
func TestJoinTCP(t *testing.T) {
	const p = 3
	addrs := make([]string, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	ranks := make([]*TCPRank, p)
	for i := range ranks {
		r, err := JoinTCP(i, addrs, testTCPOptions())
		if err != nil {
			t.Fatalf("join rank %d: %v", i, err)
		}
		ranks[i] = r
		defer r.Close()
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sum, err := ranks[rank].AllreduceSumScalar(complex(float64(rank+1), 0))
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			if sum != complex(1+2+3, 0) {
				t.Errorf("rank %d: sum %v", rank, sum)
			}
		}(r)
	}
	wg.Wait()
	if _, err := JoinTCP(5, addrs, TCPOptions{}); err == nil {
		t.Error("rank out of range should fail")
	}
}

// TestTCPWorldValidation covers the constructor guards.
func TestTCPWorldValidation(t *testing.T) {
	if _, err := NewTCPWorld(0, TCPOptions{}); err == nil {
		t.Error("world of size 0 should fail")
	}
	if _, err := NewTCPWorld(maxTCPRanks+1, TCPOptions{}); err == nil {
		t.Error("world above the rank-byte limit should fail")
	}
	w, err := NewTCPWorld(1, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, _ := w.Comm(0)
	if got, err := c.AllreduceSumScalar(7); err != nil || got != 7 {
		t.Errorf("self reduce got %v, err %v", got, err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := fmt.Errorf("wrap: %w", ErrFrameCorrupt); !errors.Is(err, ErrFrameCorrupt) {
		t.Error("ErrFrameCorrupt must survive wrapping")
	}
}
