// transport.go defines the fabric abstraction of the bottom parallel
// layer: the SPMD rank code in internal/dist speaks to a Transport and
// never learns whether its peers are goroutines wired by channels (the
// reference implementation in this package) or OS processes behind TCP
// sockets (tcp.go). The two implementations are pinned bit-identical by
// parity tests: every collective sums in rank order, so the non-associative
// float arithmetic of an allreduce gives the same bits on both fabrics.
package comm

import (
	"errors"

	"cbs/internal/chaos"
	"cbs/internal/wire"
)

// Typed sentinels of the communication layer. The sweep escalation ladder
// classifies each of them: a shape mismatch is terminal (a peer that
// disagrees about the problem shape will disagree again), the link
// failures are retryable (the fleet re-dispatches the energy).
var (
	// ErrShapeMismatch means the ranks of one allreduce disagreed about
	// the vector length. A remote peer must never be able to panic a
	// worker, so the mismatch surfaces as an error on every rank of the
	// collective instead of killing the process.
	ErrShapeMismatch = errors.New("comm: allreduce length mismatch across ranks")
	// ErrPeerLost means a peer is gone for good: its process died, or the
	// link lost frames the retransmit outbox no longer holds. Only a
	// higher layer (the fleet coordinator) can recover, by re-dispatching
	// the dead rank's work.
	ErrPeerLost = errors.New("comm: peer lost")
	// ErrPartition means a link stayed down past the reconnect retry
	// budget: the peer may still be alive on the far side of a network
	// partition, but this world cannot make progress.
	ErrPartition = errors.New("comm: link partitioned past retry budget")
	// ErrClosed means the world was shut down while a rank was blocked in
	// a communication call — the usual aftermath of another rank failing
	// first; the rank that observed the original error speaks for the
	// group.
	ErrClosed = errors.New("comm: world closed")
	// ErrFrameCorrupt re-exports the wire framing sentinel: a frame
	// failed its CRC and the link had to reset. Surfaces only when
	// corruption persists past the link's recovery budget.
	ErrFrameCorrupt = wire.ErrFrameCorrupt
)

// Transport is one rank's endpoint on a communication fabric: the MPI
// subset the paper's bottom layer uses. All methods are called from the
// rank's own goroutine (SPMD discipline: one in-flight call per rank).
type Transport interface {
	// Rank returns this endpoint's rank.
	Rank() int
	// Size returns the world size.
	Size() int
	// Send transmits data to dst (the slice is copied before return).
	Send(dst int, data []complex128) error
	// Recv blocks until the next message from src arrives.
	Recv(src int) ([]complex128, error)
	// SendRecv performs a deadlock-free paired exchange: send to dst,
	// receive from src.
	SendRecv(dst int, data []complex128, src int) ([]complex128, error)
	// AllreduceSum sums data element-wise across all ranks, in rank
	// order (deterministic bits), and returns the result to every rank.
	// All ranks must call it with equal lengths or every rank of the
	// collective receives ErrShapeMismatch.
	AllreduceSum(data []complex128) ([]complex128, error)
	// AllreduceSumScalar is AllreduceSum for a single value.
	AllreduceSumScalar(v complex128) (complex128, error)
	// Barrier blocks until every rank has reached it.
	Barrier() error
}

// RankWorld is a connected fabric of ranks for one distributed solve.
type RankWorld interface {
	// Size returns the number of ranks.
	Size() int
	// Comm returns the endpoint of one rank.
	Comm(rank int) (Transport, error)
	// Messages returns the point-to-point message count so far.
	Messages() int64
	// Bytes returns the point-to-point traffic in bytes so far.
	Bytes() int64
	// SetChaos installs a deterministic fault injector (nil disables
	// injection); call before any rank starts communicating.
	SetChaos(inj *chaos.Injector)
	// Close tears the fabric down; ranks blocked in calls return
	// ErrClosed (or a link error).
	Close() error
}

// Fabric builds rank worlds: the solver-facing seam that picks channels
// or TCP without the SPMD code changing.
type Fabric interface {
	NewWorld(size int) (RankWorld, error)
}

// ChannelFabric is the in-process reference fabric (goroutine ranks wired
// by channels), the default of every solver.
type ChannelFabric struct{}

// NewWorld builds a channel world of the given size.
func (ChannelFabric) NewWorld(size int) (RankWorld, error) {
	return NewWorld(size)
}
