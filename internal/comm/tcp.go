// tcp.go carries the rank protocol of the bottom parallel layer across OS
// processes: a full mesh of reliable links (rconn.go), one listener per
// rank, rank i dialing every lower-ranked peer so each unordered pair owns
// exactly one conn and reconnection has exactly one owner. The collectives
// mirror the channel fabric bit for bit — AllreduceSum is a rank-0 star
// that folds contributions in rank order, the same fold the channel
// reducer uses, so the non-associative float sums of the two fabrics are
// identical and pinned so by parity tests.
//
// Payloads here are the slab halos and reduction vectors of the paper's
// BiCG layer: small next to socket buffers. A symmetric exchange relies on
// that — both ends may write before reading, which cannot stall unless a
// single frame outgrows the combined kernel buffers (bounded by MaxFrame,
// and even then the IOTimeout/retransmit cycle unwedges it).
package comm

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"cbs/internal/chaos"
	"cbs/internal/wire"
)

// Channel tags multiplexed over one link. The SPMD protocols are lockstep,
// so a link never carries two tags concurrently; the tag is a cheap
// protocol-confusion check.
const (
	chP2P        byte = 1 // halo exchange point-to-point payloads
	chReduce     byte = 2 // allreduce contributions toward rank 0
	chResult     byte = 3 // allreduce results (status byte + payload)
	chBarrier    byte = 4 // barrier arrivals toward rank 0
	chBarrierAck byte = 5 // barrier releases from rank 0
	// ChApp tags application protocols riding a raw RConn — the fleet's
	// coordinator/worker messages.
	ChApp byte = 9
)

// maxTCPRanks is the mesh size limit: rank identities ride in one wire byte.
const maxTCPRanks = 256

// TCPRank is one rank's endpoint of a TCP world — the process-local object
// in a multi-process run (JoinTCP), or one of size endpoints in an
// in-process TCPWorld. It implements Transport.
type TCPRank struct {
	rank, size int
	opts       TCPOptions
	ln         net.Listener
	links      []*RConn // by peer rank; nil at self

	messages atomic.Int64
	bytes    atomic.Int64

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// JoinTCP joins a multi-process world as one rank. addrs[i] is rank i's
// listen address; the endpoint listens on addrs[rank], dials every lower
// rank lazily on first use, and accepts connections from higher ranks.
// Ranks resynchronize automatically after conn loss, so workers may join
// in any order.
func JoinTCP(rank int, addrs []string, opts TCPOptions) (*TCPRank, error) {
	if len(addrs) < 1 || len(addrs) > maxTCPRanks {
		return nil, fmt.Errorf("comm: world size %d outside [1,%d]", len(addrs), maxTCPRanks)
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen: %w", rank, err)
	}
	return newTCPRank(rank, ln, addrs, opts), nil
}

func newTCPRank(rank int, ln net.Listener, addrs []string, opts TCPOptions) *TCPRank {
	opts = opts.WithDefaults()
	t := &TCPRank{
		rank:  rank,
		size:  len(addrs),
		opts:  opts,
		ln:    ln,
		links: make([]*RConn, len(addrs)),
	}
	for peer := range addrs {
		switch {
		case peer == rank:
		case peer < rank:
			addr := addrs[peer]
			t.links[peer] = newDialerRConn(byte(rank), byte(peer), opts, func() (net.Conn, error) {
				d := net.Dialer{Timeout: opts.ConnectTimeout}
				return d.Dial("tcp", addr)
			})
		default:
			t.links[peer] = newAcceptorRConn(byte(rank), byte(peer), opts)
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// acceptLoop routes incoming conns to the acceptor link the opening hello
// names. It exits when the listener closes.
func (t *TCPRank) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func(c net.Conn) {
			defer t.wg.Done()
			peer, expected, err := AcceptHello(c, t.opts.ConnectTimeout, t.opts.MaxFrame)
			if err != nil || int(peer) <= t.rank || int(peer) >= t.size {
				c.Close() // corrupt hello or impossible identity: let them redial
				return
			}
			t.links[peer].Attach(c, expected) // closes c itself on error
		}(c)
	}
}

// Close tears the endpoint down: the listener stops, every link closes,
// blocked peers and local callers unblock with errors.
func (t *TCPRank) Close() error {
	t.closeOnce.Do(func() {
		t.ln.Close()
		for _, l := range t.links {
			if l != nil {
				l.Close()
			}
		}
	})
	t.wg.Wait()
	return nil
}

// SetChaos installs a deterministic fault injector on every link (nil
// disables). Call before traffic starts.
func (t *TCPRank) SetChaos(inj *chaos.Injector) {
	for _, l := range t.links {
		if l != nil {
			l.SetChaos(inj)
		}
	}
}

// Messages returns the point-to-point message count sent by this rank.
func (t *TCPRank) Messages() int64 { return t.messages.Load() }

// Bytes returns the point-to-point bytes sent by this rank.
func (t *TCPRank) Bytes() int64 { return t.bytes.Load() }

// Rank returns this endpoint's rank.
func (t *TCPRank) Rank() int { return t.rank }

// Size returns the world size.
func (t *TCPRank) Size() int { return t.size }

func (t *TCPRank) peerLink(peer int) (*RConn, error) {
	if peer < 0 || peer >= t.size || peer == t.rank {
		return nil, fmt.Errorf("comm: rank %d has no link to peer %d", t.rank, peer)
	}
	return t.links[peer], nil
}

// Send transmits data to dst (the slice is encoded before return).
func (t *TCPRank) Send(dst int, data []complex128) error {
	l, err := t.peerLink(dst)
	if err != nil {
		return err
	}
	t.messages.Add(1)
	t.bytes.Add(int64(16 * len(data)))
	return l.Send(chP2P, wire.AppendComplex(nil, data))
}

// Recv blocks until the next message from src arrives.
func (t *TCPRank) Recv(src int) ([]complex128, error) {
	l, err := t.peerLink(src)
	if err != nil {
		return nil, err
	}
	body, err := l.Recv(chP2P)
	if err != nil {
		return nil, err
	}
	return wire.DecodeComplex(body)
}

// SendRecv performs a deadlock-free paired exchange: the send runs
// concurrently so the exchange cannot stall even when src == dst and the
// peer also sends first.
func (t *TCPRank) SendRecv(dst int, data []complex128, src int) ([]complex128, error) {
	errc := make(chan error, 1)
	go func() { errc <- t.Send(dst, data) }()
	got, rerr := t.Recv(src)
	serr := <-errc
	if serr != nil {
		return nil, serr
	}
	if rerr != nil {
		return nil, rerr
	}
	return got, nil
}

// AllreduceSum sums data element-wise across all ranks and returns the
// result to every rank. Rank 0 gathers the contributions and folds them in
// rank order — exactly the channel reducer's fold, so the two fabrics are
// bit-identical — then broadcasts the result with a status byte. A length
// disagreement fails the round with ErrShapeMismatch on every rank; the
// world survives for the next round.
func (t *TCPRank) AllreduceSum(data []complex128) ([]complex128, error) {
	if t.size == 1 {
		return append([]complex128(nil), data...), nil
	}
	if t.rank != 0 {
		if err := t.links[0].Send(chReduce, wire.AppendComplex(nil, data)); err != nil {
			return nil, err
		}
		body, err := t.links[0].Recv(chResult)
		if err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, fmt.Errorf("comm: rank %d: malformed reduce reply", t.rank)
		}
		if body[0] != 0 {
			return nil, fmt.Errorf("%w: reduction failed on rank 0", ErrShapeMismatch)
		}
		return wire.DecodeComplex(body[1:])
	}
	contribs := make([][]complex128, t.size)
	contribs[0] = data
	var shapeErr error
	for r := 1; r < t.size; r++ {
		body, err := t.links[r].Recv(chReduce)
		if err != nil {
			return nil, err
		}
		c, err := wire.DecodeComplex(body)
		if err != nil {
			return nil, err
		}
		contribs[r] = c
		if len(c) != len(data) && shapeErr == nil {
			shapeErr = fmt.Errorf("%w: rank %d contributed %d elements, rank 0 contributed %d",
				ErrShapeMismatch, r, len(c), len(data))
		}
	}
	if shapeErr != nil {
		for r := 1; r < t.size; r++ {
			t.links[r].Send(chResult, []byte{1}) // best effort: they all learn the round failed
		}
		return nil, shapeErr
	}
	acc := append([]complex128(nil), contribs[0]...)
	for r := 1; r < t.size; r++ {
		for i := range acc {
			acc[i] += contribs[r][i]
		}
	}
	reply := append([]byte{0}, wire.AppendComplex(nil, acc)...)
	for r := 1; r < t.size; r++ {
		if err := t.links[r].Send(chResult, reply); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// AllreduceSumScalar is AllreduceSum for a single value.
func (t *TCPRank) AllreduceSumScalar(v complex128) (complex128, error) {
	out, err := t.AllreduceSum([]complex128{v})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Barrier blocks until every rank has reached it (a rank-0 star, like the
// reduction).
func (t *TCPRank) Barrier() error {
	if t.size == 1 {
		return nil
	}
	if t.rank != 0 {
		if err := t.links[0].Send(chBarrier, nil); err != nil {
			return err
		}
		_, err := t.links[0].Recv(chBarrierAck)
		return err
	}
	for r := 1; r < t.size; r++ {
		if _, err := t.links[r].Recv(chBarrier); err != nil {
			return err
		}
	}
	for r := 1; r < t.size; r++ {
		if err := t.links[r].Send(chBarrierAck, nil); err != nil {
			return err
		}
	}
	return nil
}

// TCPWorld is an in-process world whose ranks nevertheless talk through
// real loopback sockets — the parity and chaos test bed for the
// multi-process fabric, and a drop-in RankWorld for the solvers.
type TCPWorld struct {
	size  int
	ranks []*TCPRank
}

// NewTCPWorld builds a world of size ranks on loopback listeners.
func NewTCPWorld(size int, opts TCPOptions) (*TCPWorld, error) {
	if size < 1 || size > maxTCPRanks {
		return nil, fmt.Errorf("comm: world size %d outside [1,%d]", size, maxTCPRanks)
	}
	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:r] {
				l.Close()
			}
			return nil, fmt.Errorf("comm: rank %d listen: %w", r, err)
		}
		listeners[r] = ln
		addrs[r] = ln.Addr().String()
	}
	w := &TCPWorld{size: size, ranks: make([]*TCPRank, size)}
	for r := 0; r < size; r++ {
		w.ranks[r] = newTCPRank(r, listeners[r], addrs, opts)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *TCPWorld) Size() int { return w.size }

// Comm returns the endpoint of one rank.
func (w *TCPWorld) Comm(rank int) (Transport, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", rank, w.size)
	}
	return w.ranks[rank], nil
}

// Messages returns the total point-to-point message count across ranks.
func (w *TCPWorld) Messages() int64 {
	var n int64
	for _, r := range w.ranks {
		n += r.Messages()
	}
	return n
}

// Bytes returns the total point-to-point traffic in bytes across ranks.
func (w *TCPWorld) Bytes() int64 {
	var n int64
	for _, r := range w.ranks {
		n += r.Bytes()
	}
	return n
}

// SetChaos installs a deterministic fault injector on every link of every
// rank (nil disables). Call before any rank starts communicating.
func (w *TCPWorld) SetChaos(inj *chaos.Injector) {
	for _, r := range w.ranks {
		r.SetChaos(inj)
	}
}

// Close tears all endpoints down; blocked ranks unblock with errors.
func (w *TCPWorld) Close() error {
	for _, r := range w.ranks {
		r.Close()
	}
	return nil
}

// TCPFabric builds TCP worlds for the solvers: set it with SetFabric to run
// the unchanged SPMD protocol over real sockets.
type TCPFabric struct {
	Opts TCPOptions
}

// NewWorld builds a loopback TCP world of the given size.
func (f TCPFabric) NewWorld(size int) (RankWorld, error) {
	return NewTCPWorld(size, f.Opts)
}
