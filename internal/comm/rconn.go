// rconn.go is the reliable link under the TCP fabric: wire-framed messages
// with per-link sequence numbers over a replaceable net.Conn. Each end runs
// a pump goroutine that always reads its side of the conn, so link control
// (NAK-driven retransmission, resequencing, reconnection) happens even
// while the application is busy elsewhere. The link heals everything short
// of real data loss by itself — dropped frames are retransmitted from a
// bounded outbox when the receiver NAKs the gap, duplicates are discarded
// by sequence, reordered frames wait in a pending buffer, corrupt frames
// reset the conn and resynchronize via the hello exchange, and dead conns
// are redialed with bounded exponential backoff and deterministic jitter.
// What it cannot heal it names: a peer asking for frames the outbox evicted
// is ErrPeerLost; a link that starves a waiting receiver past the retry
// budget is ErrPartition; corruption that persists across resets is
// ErrFrameCorrupt. The sweep escalation ladder classifies all three.
package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/wire"
)

// TCPOptions tunes the reliable links and the TCP worlds built from them.
// The zero value means "use defaults" (see WithDefaults).
type TCPOptions struct {
	// ConnectTimeout bounds one dial attempt and one handshake exchange.
	ConnectTimeout time.Duration
	// IOTimeout bounds one frame read or write. While a receiver is owed
	// data, each expiry NAKs the expected sequence (recovering lost data
	// or lost NAKs) and counts against RetryBudget, so
	// IOTimeout*RetryBudget is the failure-detection horizon and must
	// exceed the longest compute gap between messages. An idle link never
	// counts expiries.
	IOTimeout time.Duration
	// RetryBudget is the number of consecutive failed recovery steps
	// (reconnect attempts, read timeouts, corrupt-frame resets) tolerated
	// while data is owed before the link surfaces a typed failure.
	RetryBudget int
	// BackoffBase is the first reconnect backoff; doubling from there.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// MaxFrame bounds one frame payload (guards the length field).
	MaxFrame int
	// OutboxSize is the retransmit window in frames; a peer that falls
	// further behind than this is unrecoverable (ErrPeerLost).
	OutboxSize int
}

func (o TCPOptions) WithDefaults() TCPOptions {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 2 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 2 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 6
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = 16 << 20
	}
	if o.OutboxSize <= 0 {
		o.OutboxSize = 256
	}
	return o
}

const (
	// reorderWindow is how many out-of-order frames the pump buffers
	// before demanding the gap with a NAK.
	reorderWindow = 8
	// partitionWindow is how many consecutive connection attempts an
	// injected net.partition dooms before the link may heal.
	partitionWindow = 3
)

// errConnBroken marks a conn lost mid-operation; the pump heals it.
var errConnBroken = errors.New("comm: link conn lost mid-operation")

// RConn is one end of a reliable framed link. Send may be called from any
// goroutine and never blocks on a dead conn: the payload enters the
// retransmit outbox first, so the resynchronizing handshake delivers it
// after any reconnect. Recv blocks until the pump sequences the next
// payload or the link fails for good.
type RConn struct {
	opts TCPOptions
	dial func() (net.Conn, error) // nil on the acceptor end

	mu   sync.Mutex
	cond *sync.Cond // announces inbox pushes, conn installs, failure, close

	src  byte // link-local identity of this end (chaos + frame headers)
	dst  byte
	inj  *chaos.Injector
	conn net.Conn
	gen  int // bumped on every (re)install, so the pump spots replacements

	closed bool
	fail   error // sticky typed failure; every call returns it once set

	sendSeq uint64   // next data sequence to assign
	outBase uint64   // sequence of outbox[0]
	outbox  [][]byte // channel-tagged payloads awaiting possible retransmit

	recvSeq uint64            // next data sequence to deliver
	pending map[uint64][]byte // out-of-order frames waiting for the gap
	inbox   [][]byte          // sequenced payloads awaiting Recv
	waiters int               // receivers blocked on the inbox: "data is owed"

	writeOp int64 // per-link write counter: chaos identity for data writes
	dialOp  int64 // per-link connection-attempt counter: chaos identity

	partDown int         // connection attempts still doomed by an injected partition
	held     *wire.Frame // frame held back by an injected reorder

	rng uint64 // deterministic jitter state

	pumpDone chan struct{}
}

// newDialerRConn builds the end that owns reconnection: dial is invoked,
// with backoff, whenever the link needs a conn.
func newDialerRConn(src, dst byte, opts TCPOptions, dial func() (net.Conn, error)) *RConn {
	r := newRConn(src, dst, opts)
	r.dial = dial
	go r.pump()
	return r
}

// newAcceptorRConn builds the passive end: replacements arrive via Attach.
func newAcceptorRConn(src, dst byte, opts TCPOptions) *RConn {
	r := newRConn(src, dst, opts)
	go r.pump()
	return r
}

// WildcardID is the link identity an end dials with before it has been
// assigned one: a fleet worker's first hello carries it, and the
// coordinator's welcome replaces it via SetLocalID.
const WildcardID byte = 0xFF

// DialLink opens the dialing end of a standalone reliable link to addr. The
// link owns reconnection: every conn loss redials addr with backoff, and
// the resynchronizing handshake replays whatever the peer has not seen.
func DialLink(src, dst byte, addr string, opts TCPOptions) *RConn {
	o := opts.WithDefaults()
	return newDialerRConn(src, dst, o, func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, o.ConnectTimeout)
	})
}

// AcceptLink builds the passive end of a standalone reliable link: conns
// arrive via Attach after the owner routes them by AcceptHello identity.
func AcceptLink(src, dst byte, opts TCPOptions) *RConn {
	return newAcceptorRConn(src, dst, opts)
}

func newRConn(src, dst byte, opts TCPOptions) *RConn {
	r := &RConn{
		opts:     opts.WithDefaults(),
		src:      src,
		dst:      dst,
		pending:  make(map[uint64][]byte),
		rng:      uint64(src)<<32 | uint64(dst)<<16 | 0x9e37,
		pumpDone: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// SetChaos installs a deterministic fault injector (nil disables). Call
// before traffic starts.
func (r *RConn) SetChaos(inj *chaos.Injector) {
	r.mu.Lock()
	r.inj = inj
	r.mu.Unlock()
}

// SetLocalID renames this end of the link; reconnect hellos and chaos draws
// carry the new identity. The fleet uses it once the coordinator assigns a
// worker its slot.
func (r *RConn) SetLocalID(id byte) {
	r.mu.Lock()
	r.src = id
	r.mu.Unlock()
}

// Close tears the link down; blocked calls return ErrClosed and the pump
// winds down.
func (r *RConn) Close() error {
	r.mu.Lock()
	r.closed = true
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	return nil
}

// failLocked records the link's terminal condition and wakes everyone.
func (r *RConn) failLocked(err error) {
	if r.fail == nil {
		r.fail = err
	}
	r.cond.Broadcast()
}

// demandLocked reports whether the peer currently owes this end data: a
// receiver is blocked, or a sequence gap is outstanding. Only then do
// timeouts and failed reconnects count against the retry budget.
func (r *RConn) demandLocked() bool {
	return r.waiters > 0 || len(r.pending) > 0
}

// backoff returns the wait before reconnect attempt n: exponential from
// BackoffBase, capped at BackoffMax, jittered into [d/2, d] by a
// deterministic per-link xorshift so colliding peers desynchronize the same
// way on every run.
func (r *RConn) backoff(attempt int) time.Duration {
	d := r.opts.BackoffBase << uint(attempt)
	if d <= 0 || d > r.opts.BackoffMax {
		d = r.opts.BackoffMax
	}
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return d/2 + time.Duration(r.rng%uint64(d/2+1))
}

// sleepLocked sleeps without holding the link mutex.
func (r *RConn) sleepLocked(d time.Duration) {
	r.mu.Unlock()
	time.Sleep(d)
	r.mu.Lock()
}

// pump is the link's control loop: it always reads this end of the conn,
// sequencing data into the inbox, serving the peer's NAKs from the outbox,
// and reconnecting (dialer end) or awaiting Attach (acceptor end) when the
// conn dies. It exits on Close or a sticky failure.
func (r *RConn) pump() {
	defer close(r.pumpDone)
	r.mu.Lock()
	defer r.mu.Unlock()
	starve := 0   // consecutive failed steps while data was owed
	corrupt := 0  // consecutive corrupt-frame resets
	attempts := 0 // consecutive reconnect attempts (backoff shape)
	for {
		if r.closed || r.fail != nil {
			return
		}
		if r.conn == nil {
			if r.dial == nil && !r.demandLocked() {
				// Passive and idle: wait for Attach, Close, or a receiver.
				r.cond.Wait()
				continue
			}
			wait := r.backoff(attempts)
			if r.dial != nil && !r.demandLocked() && attempts >= r.opts.RetryBudget {
				// Idle with the budget spent: keep a slow redial heartbeat
				// so late-starting peers (multi-process joins) are found.
				wait = r.opts.BackoffMax
			}
			r.sleepLocked(wait)
			attempts++
			if r.closed || r.fail != nil || r.conn != nil {
				continue
			}
			if r.dial != nil {
				attemptID := r.dialOp
				r.dialOp++
				doomed := r.partDown > 0
				if doomed {
					r.partDown--
				}
				if !doomed && r.inj != nil {
					//cbs:chaossite net.conn
					doomed = r.inj.NetConn(int(r.src), int(r.dst), attemptID)
				}
				if !doomed {
					dial := r.dial
					r.mu.Unlock()
					c, err := dial()
					r.mu.Lock()
					if err == nil {
						err = r.handshakeLocked(c)
						if err != nil {
							c.Close()
						}
					}
					if err == nil {
						attempts = 0
						continue
					}
					if errors.Is(err, ErrPeerLost) {
						r.failLocked(err)
						return
					}
				}
			}
			if r.demandLocked() {
				starve++
				if starve >= r.opts.RetryBudget {
					r.failLocked(fmt.Errorf("%w: link %d->%d: %d reconnect attempts failed",
						ErrPartition, r.src, r.dst, starve))
					return
				}
			}
			continue
		}
		c, gen := r.conn, r.gen
		c.SetReadDeadline(time.Now().Add(r.opts.IOTimeout))
		r.mu.Unlock()
		f, err := wire.Read(c, r.opts.MaxFrame)
		r.mu.Lock()
		if r.closed {
			return
		}
		if r.gen != gen {
			// The conn was replaced under us (Attach/handshake): whatever
			// happened on the old one is moot.
			continue
		}
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrFrameCorrupt):
				// The stream cannot be trusted past a corrupt frame:
				// reset the conn and resynchronize from sequence numbers.
				corrupt++
				if corrupt > r.opts.RetryBudget {
					r.failLocked(fmt.Errorf("comm: link %d<-%d: corruption persisted across %d resets: %w",
						r.src, r.dst, corrupt, err))
					return
				}
				c.Close()
				r.conn = nil
			case isTimeout(err):
				if r.demandLocked() {
					starve++
					if starve >= r.opts.RetryBudget {
						r.failLocked(fmt.Errorf("%w: link %d<-%d: no frame after %d read timeouts",
							ErrPartition, r.src, r.dst, starve))
						return
					}
					// Our NAK or their data may have been lost: ask again.
					r.nakLocked()
				}
			default:
				// Broken conn: drop it and let the reconnect path run.
				if r.demandLocked() {
					starve++
					if starve >= r.opts.RetryBudget {
						r.failLocked(fmt.Errorf("%w: link %d<-%d: %w", ErrPartition, r.src, r.dst, err))
						return
					}
				}
				c.Close()
				r.conn = nil
			}
			continue
		}
		starve, corrupt, attempts = 0, 0, 0 // any intact frame is progress
		switch f.Kind {
		case wire.KindData:
			switch {
			case f.Seq < r.recvSeq:
				// Duplicate of a delivered frame: drop.
			case f.Seq == r.recvSeq:
				r.recvSeq++
				r.inbox = append(r.inbox, f.Payload)
				// The gap may have just closed: drain the pending buffer.
				for {
					p, ok := r.pending[r.recvSeq]
					if !ok {
						break
					}
					delete(r.pending, r.recvSeq)
					r.recvSeq++
					r.inbox = append(r.inbox, p)
				}
				r.cond.Broadcast()
			default:
				// Out of order: park it; past the window, demand the gap.
				r.pending[f.Seq] = f.Payload
				if len(r.pending) > reorderWindow {
					r.nakLocked()
				}
			}
		case wire.KindNak:
			if err := r.retransmitLocked(f.Seq); err != nil {
				if errors.Is(err, ErrPeerLost) {
					r.failLocked(err)
					return
				}
				if r.conn != nil {
					r.conn.Close()
					r.conn = nil
				}
			}
		case wire.KindLost:
			r.failLocked(fmt.Errorf("%w: peer %d reports frames lost beyond recovery", ErrPeerLost, r.dst))
			return
		case wire.KindHello:
			// Stale handshake remnant after a reset: ignore.
		}
	}
}

// handshakeLocked resynchronizes a fresh dialer-side conn: exchange hellos
// carrying each end's next expected sequence, then install and retransmit.
func (r *RConn) handshakeLocked(c net.Conn) error {
	c.SetDeadline(time.Now().Add(r.opts.ConnectTimeout))
	hello := wire.Frame{Kind: wire.KindHello, Src: r.src, Dst: r.dst, Seq: r.recvSeq}
	if err := wire.Write(c, hello); err != nil {
		return err
	}
	f, err := wire.Read(c, r.opts.MaxFrame)
	if err != nil {
		return err
	}
	c.SetDeadline(time.Time{})
	switch f.Kind {
	case wire.KindHello:
		return r.installLocked(c, f.Seq)
	case wire.KindLost:
		return fmt.Errorf("%w: peer %d reports frames lost beyond recovery", ErrPeerLost, r.dst)
	default:
		return fmt.Errorf("comm: link %d->%d: unexpected kind-%d frame during handshake", r.src, r.dst, f.Kind)
	}
}

// AcceptHello consumes the opening hello of a freshly accepted conn and
// returns the peer's link identity and next expected sequence, so the owner
// can route the conn to the right link's Attach.
func AcceptHello(c net.Conn, timeout time.Duration, maxFrame int) (peer byte, expected uint64, err error) {
	c.SetReadDeadline(time.Now().Add(timeout))
	f, err := wire.Read(c, maxFrame)
	if err != nil {
		return 0, 0, err
	}
	c.SetReadDeadline(time.Time{})
	if f.Kind != wire.KindHello {
		return 0, 0, fmt.Errorf("comm: expected hello frame, got kind %d", f.Kind)
	}
	return f.Src, f.Seq, nil
}

// Attach hands a freshly accepted conn — its opening hello already consumed
// by AcceptHello — to the acceptor end: reply with our hello, install, and
// retransmit everything the peer has not seen. On error the conn is closed.
func (r *RConn) Attach(c net.Conn, peerExpected uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		c.Close()
		return ErrClosed
	}
	if r.fail != nil {
		c.SetWriteDeadline(time.Now().Add(r.opts.ConnectTimeout))
		wire.Write(c, wire.Frame{Kind: wire.KindLost, Src: r.src, Dst: r.dst}) // best effort
		c.Close()
		return r.fail
	}
	c.SetWriteDeadline(time.Now().Add(r.opts.ConnectTimeout))
	hello := wire.Frame{Kind: wire.KindHello, Src: r.src, Dst: r.dst, Seq: r.recvSeq}
	if err := wire.Write(c, hello); err != nil {
		c.Close()
		return err
	}
	c.SetDeadline(time.Time{})
	if err := r.installLocked(c, peerExpected); err != nil {
		c.Close()
		if errors.Is(err, ErrPeerLost) {
			r.failLocked(err)
		}
		return err
	}
	return nil
}

// installLocked makes c the live conn and retransmits the outbox from the
// peer's expected sequence. A peer behind the outbox window is lost.
func (r *RConn) installLocked(c net.Conn, peerExpected uint64) error {
	if peerExpected < r.outBase {
		c.SetWriteDeadline(time.Now().Add(r.opts.ConnectTimeout))
		wire.Write(c, wire.Frame{Kind: wire.KindLost, Src: r.src, Dst: r.dst, Seq: peerExpected}) // best effort
		return fmt.Errorf("%w: peer %d expects seq %d but the outbox starts at %d",
			ErrPeerLost, r.dst, peerExpected, r.outBase)
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn = c
	r.gen++
	r.held = nil // any holdback belonged to the dead conn
	r.cond.Broadcast()
	for seq := peerExpected; seq < r.sendSeq; seq++ {
		if err := r.writeDataLocked(seq, r.outbox[seq-r.outBase]); err != nil {
			if r.conn != nil {
				r.conn.Close()
				r.conn = nil
			}
			return err
		}
	}
	return nil
}

// Send appends one channel-tagged payload to the link. The payload lands in
// the retransmit outbox before the first write attempt, so delivery
// survives any reconnect; a Send onto a dead conn returns nil and the
// resynchronizing handshake carries the frame later (buffered-send
// semantics, like the channel fabric's).
func (r *RConn) Send(ch byte, body []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.fail != nil {
		return r.fail
	}
	payload := make([]byte, 1+len(body))
	payload[0] = ch
	copy(payload[1:], body)
	seq := r.sendSeq
	r.sendSeq++
	r.outbox = append(r.outbox, payload)
	for len(r.outbox) > r.opts.OutboxSize {
		r.outbox[0] = nil
		r.outbox = r.outbox[1:]
		r.outBase++
	}
	if r.conn == nil {
		return nil // the pump reconnects; install retransmits this frame
	}
	if err := r.writeDataLocked(seq, payload); err != nil {
		if errors.Is(err, ErrClosed) {
			return err
		}
		// Conn broke mid-write: hand it to the pump; the outbox has the
		// frame, so nothing is lost.
		if r.conn != nil {
			r.conn.Close()
			r.conn = nil
		}
	}
	return nil
}

// writeDataLocked frames one data payload onto the live conn, applying the
// injected network faults. Chaos draws key on the per-link write counter,
// not the data sequence: a retransmission must draw fresh, or a
// deterministic injector would doom the same frame forever.
func (r *RConn) writeDataLocked(seq uint64, payload []byte) error {
	op := r.writeOp
	r.writeOp++
	f := wire.Frame{Kind: wire.KindData, Src: r.src, Dst: r.dst, Seq: seq, Payload: payload}
	if r.inj != nil {
		s, d := int(r.src), int(r.dst)
		//cbs:chaossite net.partition
		if r.inj.NetPartition(s, d, op) {
			r.partDown = partitionWindow
			if r.conn != nil {
				r.conn.Close()
				r.conn = nil
			}
			return errConnBroken
		}
		//cbs:chaossite net.delay
		if r.inj.NetDelay(s, d, op) {
			r.sleepLocked(r.opts.BackoffBase)
			if r.closed {
				return ErrClosed
			}
			if r.conn == nil {
				return errConnBroken
			}
		}
		//cbs:chaossite net.drop
		if r.inj.NetDrop(s, d, op) {
			return nil // vanishes on the wire; the outbox still holds it
		}
		//cbs:chaossite net.dup
		if r.inj.NetDup(s, d, op) {
			if err := r.rawWriteLocked(f); err != nil {
				return err
			}
		}
		//cbs:chaossite net.reorder
		if r.inj.NetReorder(s, d, op) {
			held := r.held
			r.held = &f
			if held != nil {
				return r.rawWriteLocked(*held)
			}
			return nil // emitted after the next frame: reordered
		}
	}
	if err := r.rawWriteLocked(f); err != nil {
		return err
	}
	if r.held != nil {
		held := *r.held
		r.held = nil
		return r.rawWriteLocked(held)
	}
	return nil
}

func (r *RConn) rawWriteLocked(f wire.Frame) error {
	r.conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
	return wire.Write(r.conn, f)
}

// nakLocked asks the peer (best effort) to retransmit from our expected
// sequence.
func (r *RConn) nakLocked() {
	if r.conn == nil {
		return
	}
	r.conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
	wire.Write(r.conn, wire.Frame{Kind: wire.KindNak, Src: r.src, Dst: r.dst, Seq: r.recvSeq})
}

// retransmitLocked replays the outbox from seq. A request behind the window
// means the peer can never be made whole: KindLost, then ErrPeerLost.
func (r *RConn) retransmitLocked(from uint64) error {
	if from < r.outBase {
		if r.conn != nil {
			r.conn.SetWriteDeadline(time.Now().Add(r.opts.IOTimeout))
			wire.Write(r.conn, wire.Frame{Kind: wire.KindLost, Src: r.src, Dst: r.dst, Seq: from}) // best effort
		}
		return fmt.Errorf("%w: peer %d asked for seq %d but the outbox starts at %d",
			ErrPeerLost, r.dst, from, r.outBase)
	}
	for seq := from; seq < r.sendSeq; seq++ {
		if r.conn == nil {
			return errConnBroken
		}
		if err := r.writeDataLocked(seq, r.outbox[seq-r.outBase]); err != nil {
			return err
		}
	}
	return nil
}

// Recv returns the next in-order payload, which must carry the channel tag
// ch (the lockstep protocols never interleave channels on one link).
func (r *RConn) Recv(ch byte) ([]byte, error) {
	tag, body, err := r.RecvAny()
	if err != nil {
		return nil, err
	}
	if tag != ch {
		return nil, fmt.Errorf("comm: link %d<-%d: expected channel %d, got %d", r.src, r.dst, ch, tag)
	}
	return body, nil
}

// RecvAny returns the next in-order payload and its channel tag. It blocks
// until the pump sequences one; failure surfaces typed — ErrPartition after
// the retry budget starves, ErrFrameCorrupt after persistent corruption,
// ErrPeerLost when recovery is impossible, ErrClosed after Close. Payloads
// sequenced before a failure are still delivered first.
func (r *RConn) RecvAny() (byte, []byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.inbox) > 0 {
			p := r.inbox[0]
			r.inbox[0] = nil
			r.inbox = r.inbox[1:]
			if len(p) == 0 {
				return 0, nil, fmt.Errorf("comm: link %d<-%d: empty data frame", r.src, r.dst)
			}
			return p[0], p[1:], nil
		}
		if r.closed {
			return 0, nil, ErrClosed
		}
		if r.fail != nil {
			return 0, nil, r.fail
		}
		r.waiters++
		r.cond.Broadcast() // the pump reassesses demand
		r.cond.Wait()
		r.waiters--
	}
}

// isTimeout reports whether err is a deadline expiry rather than a dead conn.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
