package comm

import (
	"errors"
	"sync"
	"testing"

	"cbs/internal/chaos"
)

func TestSendRecv(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := c1.Recv(0)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3i {
			t.Errorf("recv got %v", got)
		}
	}()
	data := []complex128{1, 2, 3i}
	if err := c0.Send(1, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutation after send must not affect the message
	<-done
	if w.Messages() != 1 || w.Bytes() != 48 {
		t.Errorf("stats: %d msgs %d bytes", w.Messages(), w.Bytes())
	}
}

func TestRingExchange(t *testing.T) {
	// Every rank sends to (rank+1) mod P and receives from (rank-1+P) mod P
	// simultaneously: must not deadlock.
	const p = 8
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			up := (rank + 1) % p
			down := (rank - 1 + p) % p
			got, err := c.SendRecv(up, []complex128{complex(float64(rank), 0)}, down)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			if got[0] != complex(float64(down), 0) {
				t.Errorf("rank %d received %v, want %d", rank, got[0], down)
			}
		}(r)
	}
	wg.Wait()
}

func TestAllreduceSum(t *testing.T) {
	const p = 5
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			// Two consecutive reductions must stay ordered.
			got, err := c.AllreduceSum([]complex128{complex(float64(rank), 0), 1})
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			if got[0] != complex(0+1+2+3+4, 0) || got[1] != 5 {
				t.Errorf("rank %d: first reduce got %v", rank, got)
			}
			got2, err := c.AllreduceSumScalar(complex(0, float64(rank)))
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			if got2 != complex(0, 10) {
				t.Errorf("rank %d: second reduce got %v", rank, got2)
			}
		}(r)
	}
	wg.Wait()
}

// TestAllreduceShapeMismatch: ranks disagreeing about the reduction length
// must every one receive a typed ErrShapeMismatch — never a panic, never a
// hang. Regression test for the panic that used to live in the reducer: a
// remote peer must not be able to kill a worker process.
func TestAllreduceShapeMismatch(t *testing.T) {
	const p = 3
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			data := make([]complex128, 2+rank) // every rank a different length
			_, errs[rank] = c.AllreduceSum(data)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, ErrShapeMismatch) {
			t.Errorf("rank %d: err = %v, want ErrShapeMismatch", r, err)
		}
	}
	// The world must survive the failed round: a well-shaped reduction
	// still completes.
	var wg2 sync.WaitGroup
	for r := 0; r < p; r++ {
		wg2.Add(1)
		go func(rank int) {
			defer wg2.Done()
			c, _ := w.Comm(rank)
			got, err := c.AllreduceSumScalar(1)
			if err != nil || got != p {
				t.Errorf("rank %d after mismatch: got %v, err %v", rank, got, err)
			}
		}(r)
	}
	wg2.Wait()
}

// TestAllreduceRankOrderDeterminism: the reducer must fold contributions
// in rank order regardless of arrival order, so repeated runs (and the TCP
// fabric) produce bit-identical sums of non-associative float data.
func TestAllreduceRankOrderDeterminism(t *testing.T) {
	const p = 4
	contrib := [][]complex128{
		{complex(1e16, 0), 1},
		{complex(1, 0), 1},
		{complex(-1e16, 0), 1},
		{complex(3, 0), 1},
	}
	run := func() []complex128 {
		w, err := NewWorld(p)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var wg sync.WaitGroup
		out := make([][]complex128, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c, _ := w.Comm(rank)
				got, err := c.AllreduceSum(contrib[rank])
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
				out[rank] = got
			}(r)
		}
		wg.Wait()
		for r := 1; r < p; r++ {
			if out[r][0] != out[0][0] {
				t.Fatalf("ranks disagree: %v vs %v", out[r], out[0])
			}
		}
		return out[0]
	}
	// Rank-order fold: ((1e16 + 1) + -1e16) + 3 == 3 exactly in float64
	// (1e16+1 rounds back to 1e16); any other order gives different bits.
	// Computed through a variable so the fold happens at runtime, not in
	// exact constant arithmetic.
	big := complex(1e16, 0)
	want := ((big + 1) - big) + 3
	for i := 0; i < 10; i++ {
		got := run()
		if got[0] != want || got[1] != p {
			t.Fatalf("run %d: got %v, want [%v %v]", i, got, want, p)
		}
	}
}

func TestBarrier(t *testing.T) {
	const p = 4
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var phase [p]int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			phase[rank] = 1
			if err := c.Barrier(); err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			// After the barrier every rank must have set phase.
			for i := 0; i < p; i++ {
				if phase[i] != 1 {
					t.Errorf("rank %d: barrier passed before rank %d arrived", rank, i)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("world of size 0 should fail")
	}
	w, _ := NewWorld(2)
	defer w.Close()
	if _, err := w.Comm(2); err == nil {
		t.Error("rank out of range should fail")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Error("negative rank should fail")
	}
}

func TestSingleRankWorld(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, _ := w.Comm(0)
	if got, err := c.AllreduceSumScalar(7); err != nil || got != 7 {
		t.Errorf("self reduce got %v, err %v", got, err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}

// TestClosedWorld: ranks blocked in collectives of a closed world must
// unblock with a typed ErrClosed instead of hanging.
func TestClosedWorld(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	done := make(chan error, 1)
	go func() {
		_, err := c0.AllreduceSum([]complex128{1}) // rank 1 never joins
		done <- err
	}()
	w.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := c0.Recv(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed world: err = %v, want ErrClosed", err)
	}
}

// TestChaosCorruptsPayloadDeterministically: with an injector installed,
// targeted sends arrive zeroed, the decision depends only on
// (seed, src, dst, sequence), and a nil injector leaves traffic untouched.
func TestChaosCorruptsPayloadDeterministically(t *testing.T) {
	payload := []complex128{1 + 2i, 3 - 4i, 5i}

	run := func(inj *chaos.Injector, nmsg int) [][]complex128 {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.SetChaos(inj)
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		var got [][]complex128
		for i := 0; i < nmsg; i++ {
			if err := c0.Send(1, payload); err != nil {
				t.Fatal(err)
			}
			msg, err := c1.Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, msg)
		}
		return got
	}

	// Certain corruption: every payload on the link arrives zeroed.
	for i, msg := range run(chaos.New(7, chaos.Config{Halo: 1}), 3) {
		for j, v := range msg {
			if v != 0 {
				t.Fatalf("message %d element %d survived certain corruption: %v", i, j, v)
			}
		}
	}

	// Nil injector: payloads arrive intact.
	for _, msg := range run(nil, 2) {
		for j, v := range msg {
			if v != payload[j] {
				t.Fatalf("clean fabric altered element %d: %v", j, v)
			}
		}
	}

	// Partial corruption is a pure function of the sequence number: two
	// fresh worlds with the same seed corrupt the same messages.
	a := run(chaos.New(11, chaos.Config{Halo: 0.5}), 16)
	b := run(chaos.New(11, chaos.Config{Halo: 0.5}), 16)
	corrupted := 0
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("corruption not deterministic at message %d element %d", i, j)
			}
		}
		if a[i][0] == 0 {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == 16 {
		t.Errorf("expected a mix of corrupted and clean messages, got %d/16 corrupted", corrupted)
	}
}
