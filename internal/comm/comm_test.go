package comm

import (
	"sync"
	"testing"

	"cbs/internal/chaos"
)

func TestSendRecv(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := c1.Recv(0)
		if len(got) != 3 || got[0] != 1 || got[2] != 3i {
			t.Errorf("recv got %v", got)
		}
	}()
	data := []complex128{1, 2, 3i}
	c0.Send(1, data)
	data[0] = 99 // mutation after send must not affect the message
	<-done
	if w.Messages() != 1 || w.Bytes() != 48 {
		t.Errorf("stats: %d msgs %d bytes", w.Messages(), w.Bytes())
	}
}

func TestRingExchange(t *testing.T) {
	// Every rank sends to (rank+1) mod P and receives from (rank-1+P) mod P
	// simultaneously: must not deadlock.
	const p = 8
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			up := (rank + 1) % p
			down := (rank - 1 + p) % p
			got := c.SendRecv(up, []complex128{complex(float64(rank), 0)}, down)
			if got[0] != complex(float64(down), 0) {
				t.Errorf("rank %d received %v, want %d", rank, got[0], down)
			}
		}(r)
	}
	wg.Wait()
}

func TestAllreduceSum(t *testing.T) {
	const p = 5
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			// Two consecutive reductions must stay ordered.
			got := c.AllreduceSum([]complex128{complex(float64(rank), 0), 1})
			if got[0] != complex(0+1+2+3+4, 0) || got[1] != 5 {
				t.Errorf("rank %d: first reduce got %v", rank, got)
			}
			got2 := c.AllreduceSumScalar(complex(0, float64(rank)))
			if got2 != complex(0, 10) {
				t.Errorf("rank %d: second reduce got %v", rank, got2)
			}
		}(r)
	}
	wg.Wait()
}

func TestBarrier(t *testing.T) {
	const p = 4
	w, err := NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var phase [p]int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			phase[rank] = 1
			c.Barrier()
			// After the barrier every rank must have set phase.
			for i := 0; i < p; i++ {
				if phase[i] != 1 {
					t.Errorf("rank %d: barrier passed before rank %d arrived", rank, i)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("world of size 0 should fail")
	}
	w, _ := NewWorld(2)
	defer w.Close()
	if _, err := w.Comm(2); err == nil {
		t.Error("rank out of range should fail")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Error("negative rank should fail")
	}
}

func TestSingleRankWorld(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, _ := w.Comm(0)
	if got := c.AllreduceSumScalar(7); got != 7 {
		t.Errorf("self reduce got %v", got)
	}
	c.Barrier()
}

// TestChaosCorruptsPayloadDeterministically: with an injector installed,
// targeted sends arrive zeroed, the decision depends only on
// (seed, src, dst, sequence), and a nil injector leaves traffic untouched.
func TestChaosCorruptsPayloadDeterministically(t *testing.T) {
	payload := []complex128{1 + 2i, 3 - 4i, 5i}

	run := func(inj *chaos.Injector, nmsg int) [][]complex128 {
		w, err := NewWorld(2)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		w.SetChaos(inj)
		c0, _ := w.Comm(0)
		c1, _ := w.Comm(1)
		var got [][]complex128
		for i := 0; i < nmsg; i++ {
			c0.Send(1, payload)
			got = append(got, c1.Recv(0))
		}
		return got
	}

	// Certain corruption: every payload on the link arrives zeroed.
	for i, msg := range run(chaos.New(7, chaos.Config{Halo: 1}), 3) {
		for j, v := range msg {
			if v != 0 {
				t.Fatalf("message %d element %d survived certain corruption: %v", i, j, v)
			}
		}
	}

	// Nil injector: payloads arrive intact.
	for _, msg := range run(nil, 2) {
		for j, v := range msg {
			if v != payload[j] {
				t.Fatalf("clean fabric altered element %d: %v", j, v)
			}
		}
	}

	// Partial corruption is a pure function of the sequence number: two
	// fresh worlds with the same seed corrupt the same messages.
	a := run(chaos.New(11, chaos.Config{Halo: 0.5}), 16)
	b := run(chaos.New(11, chaos.Config{Halo: 0.5}), 16)
	corrupted := 0
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("corruption not deterministic at message %d element %d", i, j)
			}
		}
		if a[i][0] == 0 {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == 16 {
		t.Errorf("expected a mix of corrupted and clean messages, got %d/16 corrupted", corrupted)
	}
}
