// Package comm is an in-process message-passing layer modelled on the MPI
// subset the paper's code uses for its bottom parallel layer: point-to-point
// sends between ranks (halo exchange of z-slab boundaries) and allreduce
// (BiCG inner products, nonlocal projector coefficients). Ranks are
// goroutines; channels carry the messages. Traffic statistics are recorded
// so experiments can report communication volume.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cbs/internal/chaos"
)

// World is a fixed-size group of ranks sharing a communication fabric.
type World struct {
	size int
	// p2p[src*size+dst] carries messages from src to dst.
	p2p []chan []complex128

	// allreduce state: a simple two-phase (gather + broadcast) reducer.
	reduceIn  chan reduceMsg
	reduceOut []chan []complex128

	barrierIn  chan struct{}
	barrierOut []chan struct{}

	// statistics
	messages atomic.Int64
	bytes    atomic.Int64

	// fault injection (nil in production): per-link send sequence counters
	// give every payload a deterministic chaos site identity.
	inj     *chaos.Injector
	sendSeq []atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
}

type reduceMsg struct {
	rank int
	data []complex128
}

// chanDepth buffers point-to-point links so symmetric exchanges do not
// deadlock.
const chanDepth = 4

// NewWorld creates a world of the given size and starts its reduction
// coordinator. Call Close when done.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("comm: world size %d < 1", size)
	}
	w := &World{
		size:       size,
		p2p:        make([]chan []complex128, size*size),
		reduceIn:   make(chan reduceMsg, size),
		reduceOut:  make([]chan []complex128, size),
		barrierIn:  make(chan struct{}, size),
		barrierOut: make([]chan struct{}, size),
		sendSeq:    make([]atomic.Int64, size*size),
		stop:       make(chan struct{}),
	}
	for i := range w.p2p {
		w.p2p[i] = make(chan []complex128, chanDepth)
	}
	for i := range w.reduceOut {
		w.reduceOut[i] = make(chan []complex128, 1)
		w.barrierOut[i] = make(chan struct{}, 1)
	}
	go w.reducer()
	go w.barrierKeeper()
	return w, nil
}

// SetChaos installs a deterministic fault injector on the fabric (nil
// disables injection). Call it before any rank starts communicating: the
// injector is read by Send without synchronization. A targeted payload is
// zeroed in transit — the in-process analogue of a corrupted or dropped
// halo message — while traffic statistics still count it, so resilience
// tests observe realistic volumes.
func (w *World) SetChaos(inj *chaos.Injector) { w.inj = inj }

// Close shuts down the world's coordinators.
func (w *World) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Messages returns the total point-to-point message count so far.
func (w *World) Messages() int64 { return w.messages.Load() }

// Bytes returns the total point-to-point traffic in bytes so far.
func (w *World) Bytes() int64 { return w.bytes.Load() }

func (w *World) reducer() {
	for {
		acc := make([]complex128, 0)
		got := 0
		for got < w.size {
			select {
			case m := <-w.reduceIn:
				if got == 0 {
					acc = append(acc[:0], m.data...)
				} else {
					if len(m.data) != len(acc) {
						panic("comm: allreduce length mismatch across ranks")
					}
					for i := range acc {
						acc[i] += m.data[i]
					}
				}
				got++
			case <-w.stop:
				return
			}
		}
		for r := 0; r < w.size; r++ {
			out := make([]complex128, len(acc))
			copy(out, acc)
			select {
			case w.reduceOut[r] <- out:
			case <-w.stop:
				return
			}
		}
	}
}

func (w *World) barrierKeeper() {
	for {
		for got := 0; got < w.size; got++ {
			select {
			case <-w.barrierIn:
			case <-w.stop:
				return
			}
		}
		for r := 0; r < w.size; r++ {
			select {
			case w.barrierOut[r] <- struct{}{}:
			case <-w.stop:
				return
			}
		}
	}
}

// Comm returns the endpoint of one rank.
func (w *World) Comm(rank int) (*Communicator, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", rank, w.size)
	}
	return &Communicator{w: w, rank: rank}, nil
}

// Communicator is one rank's endpoint in a World.
type Communicator struct {
	w    *World
	rank int
}

// Rank returns this endpoint's rank.
func (c *Communicator) Rank() int { return c.rank }

// Size returns the world size.
func (c *Communicator) Size() int { return c.w.size }

// Send transmits data to dst (the slice is copied).
func (c *Communicator) Send(dst int, data []complex128) {
	buf := make([]complex128, len(data))
	copy(buf, data)
	link := c.rank*c.w.size + dst
	if c.w.inj != nil {
		seq := c.w.sendSeq[link].Add(1) - 1
		//cbs:chaossite comm.halo
		if c.w.inj.CorruptHalo(c.rank, dst, seq) {
			for i := range buf {
				buf[i] = 0
			}
		}
	}
	c.w.messages.Add(1)
	c.w.bytes.Add(int64(len(data) * 16))
	c.w.p2p[link] <- buf
}

// Recv blocks until a message from src arrives.
func (c *Communicator) Recv(src int) []complex128 {
	return <-c.w.p2p[src*c.w.size+c.rank]
}

// SendRecv performs a deadlock-free paired exchange: send to dst, receive
// from src. (The buffered links make send-first safe for ring exchanges.)
func (c *Communicator) SendRecv(dst int, data []complex128, src int) []complex128 {
	c.Send(dst, data)
	return c.Recv(src)
}

// AllreduceSum sums the data element-wise across all ranks; every rank
// receives the result. All ranks must call it with equal lengths.
func (c *Communicator) AllreduceSum(data []complex128) []complex128 {
	in := make([]complex128, len(data))
	copy(in, data)
	c.w.reduceIn <- reduceMsg{rank: c.rank, data: in}
	return <-c.w.reduceOut[c.rank]
}

// AllreduceSumScalar is AllreduceSum for a single value.
func (c *Communicator) AllreduceSumScalar(v complex128) complex128 {
	return c.AllreduceSum([]complex128{v})[0]
}

// Barrier blocks until every rank has reached it.
func (c *Communicator) Barrier() {
	c.w.barrierIn <- struct{}{}
	<-c.w.barrierOut[c.rank]
}
