// Package comm is the message-passing layer modelled on the MPI subset the
// paper's code uses for its bottom parallel layer: point-to-point sends
// between ranks (halo exchange of z-slab boundaries) and allreduce (BiCG
// inner products, nonlocal projector coefficients). This file is the
// reference fabric — ranks are goroutines, channels carry the messages —
// behind the Transport interface (transport.go); tcp.go carries the same
// protocol across OS processes. Traffic statistics are recorded so
// experiments can report communication volume.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cbs/internal/chaos"
)

// World is a fixed-size group of ranks sharing the in-process channel
// fabric. It implements RankWorld.
type World struct {
	size int
	// p2p[src*size+dst] carries messages from src to dst.
	p2p []chan []complex128

	// allreduce state: a two-phase (gather + broadcast) reducer that sums
	// in rank order so the result bits match the TCP fabric's.
	reduceIn  chan reduceMsg
	reduceOut []chan reduceResult

	barrierIn  chan struct{}
	barrierOut []chan struct{}

	// statistics
	messages atomic.Int64
	bytes    atomic.Int64

	// fault injection (nil in production): per-link send sequence counters
	// give every payload a deterministic chaos site identity.
	inj     *chaos.Injector
	sendSeq []atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
}

type reduceMsg struct {
	rank int
	data []complex128
}

// reduceResult is one rank's share of a finished reduction round.
type reduceResult struct {
	data []complex128
	err  error
}

// chanDepth buffers point-to-point links so symmetric exchanges do not
// deadlock.
const chanDepth = 4

// NewWorld creates a world of the given size and starts its reduction
// coordinator. Call Close when done.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("comm: world size %d < 1", size)
	}
	w := &World{
		size:       size,
		p2p:        make([]chan []complex128, size*size),
		reduceIn:   make(chan reduceMsg, size),
		reduceOut:  make([]chan reduceResult, size),
		barrierIn:  make(chan struct{}, size),
		barrierOut: make([]chan struct{}, size),
		sendSeq:    make([]atomic.Int64, size*size),
		stop:       make(chan struct{}),
	}
	for i := range w.p2p {
		w.p2p[i] = make(chan []complex128, chanDepth)
	}
	for i := range w.reduceOut {
		w.reduceOut[i] = make(chan reduceResult, 1)
		w.barrierOut[i] = make(chan struct{}, 1)
	}
	go w.reducer()
	go w.barrierKeeper()
	return w, nil
}

// SetChaos installs a deterministic fault injector on the fabric (nil
// disables injection). Call it before any rank starts communicating: the
// injector is read by Send without synchronization. A targeted payload is
// zeroed in transit — the in-process analogue of a corrupted or dropped
// halo message — while traffic statistics still count it, so resilience
// tests observe realistic volumes.
func (w *World) SetChaos(inj *chaos.Injector) { w.inj = inj }

// Close shuts down the world's coordinators; ranks blocked in collectives
// return ErrClosed.
func (w *World) Close() error {
	w.stopOnce.Do(func() { close(w.stop) })
	return nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Messages returns the total point-to-point message count so far.
func (w *World) Messages() int64 { return w.messages.Load() }

// Bytes returns the total point-to-point traffic in bytes so far.
func (w *World) Bytes() int64 { return w.bytes.Load() }

// reducer gathers one contribution per rank, then sums them in rank order
// — the same fold the TCP fabric's rank-0 star uses, so both fabrics
// produce bit-identical sums — and broadcasts the result. A length
// mismatch across the contributions fails the whole round with
// ErrShapeMismatch on every rank: a remote peer must never be able to
// panic a worker (this was a panic once; see the regression tests).
func (w *World) reducer() {
	slots := make([][]complex128, w.size)
	for {
		for i := range slots {
			slots[i] = nil
		}
		for got := 0; got < w.size; {
			select {
			case m := <-w.reduceIn:
				if slots[m.rank] == nil {
					got++
				}
				slots[m.rank] = m.data
			case <-w.stop:
				return
			}
		}
		var rerr error
		for r := 1; r < w.size; r++ {
			if len(slots[r]) != len(slots[0]) {
				rerr = fmt.Errorf("%w: rank %d contributed %d elements, rank 0 contributed %d",
					ErrShapeMismatch, r, len(slots[r]), len(slots[0]))
				break
			}
		}
		var acc []complex128
		if rerr == nil {
			acc = append([]complex128(nil), slots[0]...)
			for r := 1; r < w.size; r++ {
				for i := range acc {
					acc[i] += slots[r][i]
				}
			}
		}
		for r := 0; r < w.size; r++ {
			res := reduceResult{err: rerr}
			if rerr == nil {
				res.data = append([]complex128(nil), acc...)
			}
			select {
			case w.reduceOut[r] <- res:
			case <-w.stop:
				return
			}
		}
	}
}

func (w *World) barrierKeeper() {
	for {
		for got := 0; got < w.size; got++ {
			select {
			case <-w.barrierIn:
			case <-w.stop:
				return
			}
		}
		for r := 0; r < w.size; r++ {
			select {
			case w.barrierOut[r] <- struct{}{}:
			case <-w.stop:
				return
			}
		}
	}
}

// Comm returns the endpoint of one rank.
func (w *World) Comm(rank int) (Transport, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", rank, w.size)
	}
	return &Communicator{w: w, rank: rank}, nil
}

// Communicator is one rank's endpoint in a channel World.
type Communicator struct {
	w    *World
	rank int
}

// Rank returns this endpoint's rank.
func (c *Communicator) Rank() int { return c.rank }

// Size returns the world size.
func (c *Communicator) Size() int { return c.w.size }

// Send transmits data to dst (the slice is copied).
func (c *Communicator) Send(dst int, data []complex128) error {
	buf := make([]complex128, len(data))
	copy(buf, data)
	link := c.rank*c.w.size + dst
	if c.w.inj != nil {
		seq := c.w.sendSeq[link].Add(1) - 1
		//cbs:chaossite comm.halo
		if c.w.inj.CorruptHalo(c.rank, dst, seq) {
			for i := range buf {
				buf[i] = 0
			}
		}
	}
	c.w.messages.Add(1)
	c.w.bytes.Add(int64(len(data) * 16))
	select {
	case c.w.p2p[link] <- buf:
		return nil
	case <-c.w.stop:
		return ErrClosed
	}
}

// Recv blocks until a message from src arrives.
func (c *Communicator) Recv(src int) ([]complex128, error) {
	select {
	case buf := <-c.w.p2p[src*c.w.size+c.rank]:
		return buf, nil
	case <-c.w.stop:
		return nil, ErrClosed
	}
}

// SendRecv performs a deadlock-free paired exchange: send to dst, receive
// from src. (The buffered links make send-first safe for ring exchanges.)
func (c *Communicator) SendRecv(dst int, data []complex128, src int) ([]complex128, error) {
	if err := c.Send(dst, data); err != nil {
		return nil, err
	}
	return c.Recv(src)
}

// AllreduceSum sums the data element-wise across all ranks in rank order;
// every rank receives the result. All ranks must call it with equal
// lengths or every rank receives ErrShapeMismatch.
func (c *Communicator) AllreduceSum(data []complex128) ([]complex128, error) {
	in := make([]complex128, len(data))
	copy(in, data)
	select {
	case c.w.reduceIn <- reduceMsg{rank: c.rank, data: in}:
	case <-c.w.stop:
		return nil, ErrClosed
	}
	select {
	case res := <-c.w.reduceOut[c.rank]:
		return res.data, res.err
	case <-c.w.stop:
		return nil, ErrClosed
	}
}

// AllreduceSumScalar is AllreduceSum for a single value.
func (c *Communicator) AllreduceSumScalar(v complex128) (complex128, error) {
	out, err := c.AllreduceSum([]complex128{v})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Barrier blocks until every rank has reached it.
func (c *Communicator) Barrier() error {
	select {
	case c.w.barrierIn <- struct{}{}:
	case <-c.w.stop:
		return ErrClosed
	}
	select {
	case <-c.w.barrierOut[c.rank]:
		return nil
	case <-c.w.stop:
		return ErrClosed
	}
}
