package hamiltonian

import "testing"

// TestBlockedApplyZeroAlloc pins the zero-allocation contract of the blocked
// kernels, including block widths beyond blockStackCols where the nonlocal
// reduction must chunk columns instead of falling back to the heap.
func TestBlockedApplyZeroAlloc(t *testing.T) {
	op := alCell(t, 6)
	n := op.N()
	for _, nb := range []int{4, blockStackCols + 16} {
		v := randBlock(n, nb, 7)
		out := make([]complex128, n*nb)
		kernels := []struct {
			name string
			fn   func()
		}{
			{"ApplyH0Block", func() { op.ApplyH0Block(v, out, nb) }},
			{"ApplyShiftedH0Block", func() { op.ApplyShiftedH0Block(0.5, v, out, nb) }},
			{"AccumHpBlock", func() { op.AccumHpBlock(complex(0.3, -0.2), v, out, nb) }},
			{"AccumHmBlock", func() { op.AccumHmBlock(complex(-0.1, 0.4), v, out, nb) }},
		}
		for _, k := range kernels {
			if allocs := testing.AllocsPerRun(5, k.fn); allocs != 0 {
				t.Errorf("nb=%d: %s allocates %.0f times per call, want 0", nb, k.name, allocs)
			}
		}
	}
}
