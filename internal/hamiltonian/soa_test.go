package hamiltonian

import (
	"testing"

	"cbs/internal/lattice"
	"cbs/internal/soa"
)

// alCellDims builds the Al(100) operator on an Nx x Ny x Nz grid with
// stencil half-width nf.
func alCellDims(t *testing.T, nx, ny, nz, nf int) *Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(st, Config{Nx: nx, Ny: ny, Nz: nz, Nf: nf})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// soaRoundTrip packs v, runs the SoA kernel, and unpacks the result.
func soaRoundTrip(op *Operator, v, out []complex128, nb int, run func(t *SoATables[float64], vb, ob *soa.Block[float64])) []complex128 {
	n := op.N()
	vb := soa.NewBlock[float64](n, nb)
	ob := soa.NewBlock[float64](n, nb)
	soa.Pack(vb, v)
	soa.Pack(ob, out) // accumulate kernels start from the packed prior state
	run(op.SoA64(), vb, ob)
	got := make([]complex128, n*nb)
	soa.Unpack(got, ob)
	return got
}

// expectBitIdentical fails on the first element where the SoA result is not
// bit-for-bit the AoS result (== on complex128 distinguishes every rounding
// difference except -0 vs +0 and NaN payloads, neither of which these
// kernels produce from finite input).
func expectBitIdentical(t *testing.T, name string, nb int, got, want []complex128) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s nb=%d: element %d differs: soa %v, aos %v", name, nb, i, got[i], want[i])
		}
	}
}

// TestSoAKernelsBitIdentical: the float64 SoA kernels must reproduce the
// AoS blocked kernels bit-for-bit, across grids exercising both the fused
// nf==4 fast paths (interior x segments, fused y quads, interior z planes)
// and every generic/boundary fallback (nx < 2nf, nf != 4, boundary z).
func TestSoAKernelsBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		op   *Operator
	}{
		{"fused-10x6x10-nf4", alCellDims(t, 10, 6, 10, 4)},
		{"generic-x-6x6x6-nf4", alCellDims(t, 6, 6, 6, 4)},
		{"generic-nf3-9x6x8", alCellDims(t, 9, 6, 8, 3)},
	}
	shift := 0.37
	coefP := complex(0.3, -0.8)
	coefM := complex(-0.45, 0.15)
	for _, tc := range cases {
		n := tc.op.N()
		for _, nb := range []int{1, 3, 8, 16} {
			v := randBlock(n, nb, int64(300+nb))
			prior := randBlock(n, nb, int64(900+nb))

			want := make([]complex128, n*nb)
			tc.op.ApplyH0Block(v, want, nb)
			got := soaRoundTrip(tc.op, v, make([]complex128, n*nb), nb,
				func(tb *SoATables[float64], vb, ob *soa.Block[float64]) { tb.ApplyH0Block(vb, ob) })
			expectBitIdentical(t, tc.name+"/H0", nb, got, want)

			copy(want, prior)
			tc.op.ApplyShiftedH0Block(shift, v, want, nb)
			got = soaRoundTrip(tc.op, v, prior, nb,
				func(tb *SoATables[float64], vb, ob *soa.Block[float64]) { tb.ApplyShiftedH0Block(shift, vb, ob) })
			expectBitIdentical(t, tc.name+"/ShiftedH0", nb, got, want)

			copy(want, prior)
			tc.op.AccumHpBlock(coefP, v, want, nb)
			got = soaRoundTrip(tc.op, v, prior, nb,
				func(tb *SoATables[float64], vb, ob *soa.Block[float64]) {
					tb.AccumHpBlock(real(coefP), imag(coefP), vb, ob)
				})
			expectBitIdentical(t, tc.name+"/AccumHp", nb, got, want)

			copy(want, prior)
			tc.op.AccumHmBlock(coefM, v, want, nb)
			got = soaRoundTrip(tc.op, v, prior, nb,
				func(tb *SoATables[float64], vb, ob *soa.Block[float64]) {
					tb.AccumHmBlock(real(coefM), imag(coefM), vb, ob)
				})
			expectBitIdentical(t, tc.name+"/AccumHm", nb, got, want)
		}
	}
}

// TestSoAFloat32Close: the float32 tables must agree with float64 to
// single-precision accuracy (the mixed-precision inner solve depends on the
// kernels being the same arithmetic at lower precision, not a different
// algorithm).
func TestSoAFloat32Close(t *testing.T) {
	op := alCellDims(t, 10, 6, 10, 4)
	n := op.N()
	nb := 8
	v := randBlock(n, nb, 42)
	want := make([]complex128, n*nb)
	op.ApplyShiftedH0Block(0.37, v, want, nb)

	vb := soa.NewBlock[float32](n, nb)
	ob := soa.NewBlock[float32](n, nb)
	soa.Pack(vb, v)
	op.SoA32().ApplyShiftedH0Block(0.37, vb, ob)
	got := make([]complex128, n*nb)
	soa.Unpack(got, ob)

	var maxAbs float64
	for i := range want {
		if a := cAbs(want[i]); a > maxAbs {
			maxAbs = a
		}
	}
	for i := range want {
		if d := cAbs(got[i] - want[i]); d > 1e-5*maxAbs {
			t.Fatalf("element %d: float32 deviation %g exceeds 1e-5 of block max %g", i, d, maxAbs)
		}
	}
}

func cAbs(z complex128) float64 {
	re, im := real(z), imag(z)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	return re + im
}

// TestSoAApplyZeroAlloc extends the blocked zero-allocation pins to the SoA
// kernels (both precisions), including widths beyond blockStackCols.
func TestSoAApplyZeroAlloc(t *testing.T) {
	op := alCellDims(t, 10, 6, 10, 4)
	n := op.N()
	for _, nb := range []int{4, blockStackCols + 16} {
		v64 := soa.NewBlock[float64](n, nb)
		o64 := soa.NewBlock[float64](n, nb)
		v32 := soa.NewBlock[float32](n, nb)
		o32 := soa.NewBlock[float32](n, nb)
		t64 := op.SoA64()
		t32 := op.SoA32()
		kernels := []struct {
			name string
			fn   func()
		}{
			{"ApplyShiftedH0Block64", func() { t64.ApplyShiftedH0Block(0.5, v64, o64) }},
			{"AccumHpBlock64", func() { t64.AccumHpBlock(0.3, -0.2, v64, o64) }},
			{"AccumHmBlock64", func() { t64.AccumHmBlock(-0.1, 0.4, v64, o64) }},
			{"ApplyShiftedH0Block32", func() { t32.ApplyShiftedH0Block(0.5, v32, o32) }},
			{"AccumHpBlock32", func() { t32.AccumHpBlock(0.3, -0.2, v32, o32) }},
		}
		for _, k := range kernels {
			if allocs := testing.AllocsPerRun(5, k.fn); allocs != 0 {
				t.Errorf("nb=%d: %s allocates %.0f times per call, want 0", nb, k.name, allocs)
			}
		}
	}
}
