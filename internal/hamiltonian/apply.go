package hamiltonian

import (
	"math/cmplx"

	"cbs/internal/zlinalg"
)

// mulRe computes (c+0i)*z for a real coefficient c in two real multiplies.
// Bit-identical to the complex128 product for finite z (the cross terms are
// exact zeros), but half the flops — the stencil coefficients, the local
// potential and the projector samples are all real, so the apply kernels
// use this instead of widening them to complex128.
//
//cbs:hotpath
func mulRe(c float64, z complex128) complex128 {
	return complex(c*real(z), c*imag(z))
}

// ApplyH0 computes out = H0*v (overwrites out): in-cell Laplacian, local
// potential and the offset-diagonal part of the nonlocal term.
//
//cbs:hotpath
func (op *Operator) ApplyH0(v, out []complex128) {
	op.checkLen(v, out)
	g := op.G
	nf := op.St.Nf
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	// Diagonal: kinetic center + local potential.
	for i := range out {
		out[i] = mulRe(op.diag+op.VLoc[i], v[i])
	}
	// x-direction tails (periodic wrap).
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			base := (iz*ny + iy) * nx
			row := v[base : base+nx]
			orow := out[base : base+nx]
			for d := 1; d <= nf; d++ {
				c := op.kx[d]
				xp, xm := op.xp[d-1], op.xm[d-1]
				for ix := 0; ix < nx; ix++ {
					orow[ix] += mulRe(c, row[xp[ix]]+row[xm[ix]])
				}
			}
		}
	}
	// y-direction tails (periodic wrap).
	for iz := 0; iz < nz; iz++ {
		planeBase := iz * ny * nx
		for d := 1; d <= nf; d++ {
			c := op.ky[d]
			yp, ym := op.yp[d-1], op.ym[d-1]
			for iy := 0; iy < ny; iy++ {
				base := planeBase + iy*nx
				bp := planeBase + int(yp[iy])*nx
				bm := planeBase + int(ym[iy])*nx
				for ix := 0; ix < nx; ix++ {
					out[base+ix] += mulRe(c, v[bp+ix]+v[bm+ix])
				}
			}
		}
	}
	// z-direction tails, in-cell part only (no wrap: crossing terms belong
	// to H+ and H-).
	plane := nx * ny
	for d := 1; d <= nf; d++ {
		c := op.kz[d]
		for iz := 0; iz < nz; iz++ {
			base := iz * plane
			if izp := iz + d; izp < nz {
				bp := izp * plane
				for i := 0; i < plane; i++ {
					out[base+i] += mulRe(c, v[bp+i])
				}
			}
			if izm := iz - d; izm >= 0 {
				bm := izm * plane
				for i := 0; i < plane; i++ {
					out[base+i] += mulRe(c, v[bm+i])
				}
			}
		}
	}
	// Nonlocal, offset-diagonal: sum_j p^j h <p^j, v>.
	for pi := range op.Projs {
		p := &op.Projs[pi]
		for j := 0; j < 3; j++ {
			s := &p.Supp[j]
			if len(s.Idx) == 0 {
				continue
			}
			accumProjector(out, s, complex(p.H, 0)*dotSupport(s, v))
		}
	}
}

// ApplyHp computes out = H+*v = H_{n,n+1}*v (overwrites out): the Laplacian
// tails crossing the upper cell boundary plus the projector overlap
// sum_{j=-1,0} p^j h <p^{j+1}, v>.
//
//cbs:hotpath
func (op *Operator) ApplyHp(v, out []complex128) {
	op.checkLen(v, out)
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	for i := range out {
		out[i] = 0
	}
	for d := 1; d <= nf; d++ {
		c := op.kz[d]
		// Rows with iz+d >= nz couple to plane iz+d-nz of the next cell.
		for iz := nz - d; iz < nz; iz++ {
			base := iz * plane
			bp := (iz + d - nz) * plane
			for i := 0; i < plane; i++ {
				out[base+i] += mulRe(c, v[bp+i])
			}
		}
	}
	for pi := range op.Projs {
		p := &op.Projs[pi]
		for j := -1; j <= 0; j++ {
			row := &p.Supp[j+1]
			col := &p.Supp[j+2]
			if len(row.Idx) == 0 || len(col.Idx) == 0 {
				continue
			}
			accumProjector(out, row, complex(p.H, 0)*dotSupport(col, v))
		}
	}
}

// ApplyHm computes out = H-*v = H_{n,n-1}*v = (H+)^dagger * v.
//
//cbs:hotpath
func (op *Operator) ApplyHm(v, out []complex128) {
	op.checkLen(v, out)
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	for i := range out {
		out[i] = 0
	}
	for d := 1; d <= nf; d++ {
		c := op.kz[d]
		// Rows with iz-d < 0 couple to plane iz-d+nz of the previous cell.
		for iz := 0; iz < d; iz++ {
			base := iz * plane
			bm := (iz - d + nz) * plane
			for i := 0; i < plane; i++ {
				out[base+i] += mulRe(c, v[bm+i])
			}
		}
	}
	for pi := range op.Projs {
		p := &op.Projs[pi]
		for j := 0; j <= 1; j++ {
			row := &p.Supp[j+1]
			col := &p.Supp[j]
			if len(row.Idx) == 0 || len(col.Idx) == 0 {
				continue
			}
			accumProjector(out, row, complex(p.H, 0)*dotSupport(col, v))
		}
	}
}

// ApplyBloch computes out = H(lambda)*v = lambda^{-1} H- v + H0 v +
// lambda H+ v, using the provided scratch buffer (length N).
func (op *Operator) ApplyBloch(lambda complex128, v, out, scratch []complex128) {
	op.ApplyH0(v, out)
	op.ApplyHp(v, scratch)
	zlinalg.Axpy(lambda, scratch, out)
	op.ApplyHm(v, scratch)
	zlinalg.Axpy(1/lambda, scratch, out)
}

// ApplyBlochGamma applies the Gamma-point Hamiltonian H(lambda=1) managing
// its own scratch buffer (convenience for eigensolver callbacks).
func (op *Operator) ApplyBlochGamma(v, out []complex128) {
	op.ApplyBloch(1, v, out, make([]complex128, op.N()))
}

// BlochMatrix assembles the dense Bloch Hamiltonian H(lambda) (for small
// systems: conventional band structure and validation).
func (op *Operator) BlochMatrix(lambda complex128) *zlinalg.Matrix {
	n := op.N()
	h := zlinalg.NewMatrix(n, n)
	v := make([]complex128, n)
	out := make([]complex128, n)
	scratch := make([]complex128, n)
	for j := 0; j < n; j++ {
		v[j] = 1
		op.ApplyBloch(lambda, v, out, scratch)
		h.SetCol(j, out)
		v[j] = 0
	}
	return h
}

// DenseBlock assembles one of the blocks ("H0", "H+", "H-") densely.
func (op *Operator) DenseBlock(which string) *zlinalg.Matrix {
	n := op.N()
	h := zlinalg.NewMatrix(n, n)
	v := make([]complex128, n)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		v[j] = 1
		switch which {
		case "H0":
			op.ApplyH0(v, out)
		case "H+":
			op.ApplyHp(v, out)
		case "H-":
			op.ApplyHm(v, out)
		default:
			panic("hamiltonian: unknown block " + which)
		}
		h.SetCol(j, out)
		v[j] = 0
	}
	return h
}

// InterfaceThickness returns the number of boundary z planes through which
// H+ (equivalently H-) reads its neighbour-cell input: the FD stencil
// half-width plus any projector support that crosses a cell boundary. The
// OBM baseline's interface blocks must span this many planes to capture the
// full coupling.
func (op *Operator) InterfaceThickness() int {
	g := op.G
	plane := g.PlaneSize()
	t := op.St.Nf
	grow := func(p int) {
		if p+1 > t {
			t = p + 1
		}
	}
	for _, pr := range op.Projs {
		hasM := len(pr.Supp[0].Idx) > 0 // offset -1
		hasP := len(pr.Supp[2].Idx) > 0 // offset +1
		// Columns of B_R: p^{+1} supports (measured from the cell bottom)
		// and, when p^{-1} exists, the home support p^0 from the bottom.
		for _, idx := range pr.Supp[2].Idx {
			grow(int(idx) / plane)
		}
		if hasM {
			for _, idx := range pr.Supp[1].Idx {
				grow(int(idx) / plane)
			}
		}
		// Columns of B_L: p^{-1} supports measured from the cell top and,
		// when p^{+1} exists, the home support from the top.
		for _, idx := range pr.Supp[0].Idx {
			grow(g.Nz - 1 - int(idx)/plane)
		}
		if hasP {
			for _, idx := range pr.Supp[1].Idx {
				grow(g.Nz - 1 - int(idx)/plane)
			}
		}
	}
	if t > g.Nz {
		t = g.Nz
	}
	return t
}

// Diag returns the kinetic diagonal (the d=0 stencil term of all three
// directions), exposed for the distributed operator in package dist.
func (op *Operator) Diag() float64 { return op.diag }

// Kx, Ky, Kz return the signed kinetic tail coefficient -0.5*C[d]/h^2 of
// offset d in the given direction.
func (op *Operator) Kx(d int) float64 { return op.kx[d] }
func (op *Operator) Ky(d int) float64 { return op.ky[d] }
func (op *Operator) Kz(d int) float64 { return op.kz[d] }

// NeighborX returns the periodic wrapped index tables (ix+d, ix-d) for
// offset d.
func (op *Operator) NeighborX(d int) (plus, minus []int32) {
	return op.xp[d-1], op.xm[d-1]
}

// NeighborY returns the periodic wrapped index tables (iy+d, iy-d) for
// offset d.
func (op *Operator) NeighborY(d int) (plus, minus []int32) {
	return op.yp[d-1], op.ym[d-1]
}

//cbs:hotpath
func dotSupport(s *Support, v []complex128) complex128 {
	var sum complex128
	for i, idx := range s.Idx {
		sum += mulRe(s.Val[i], v[idx])
	}
	return sum
}

//cbs:hotpath
func accumProjector(out []complex128, s *Support, coef complex128) {
	if coef == 0 {
		return
	}
	for i, idx := range s.Idx {
		out[idx] += mulRe(s.Val[i], coef)
	}
}

// checkLen is the shared shape guard of the single-vector entry points.
//
//cbs:hotpath
func (op *Operator) checkLen(v, out []complex128) {
	if len(v) != op.N() || len(out) != op.N() {
		panic("hamiltonian: vector length mismatch")
	}
}

// MemoryBytes estimates the resident bytes of the matrix-free operator:
// local potential, neighbour tables and projector supports. This is the
// O(N) footprint the paper contrasts with the OBM baseline's O(N^2).
func (op *Operator) MemoryBytes() int64 {
	var b int64
	b += int64(len(op.VLoc)) * 8
	for _, p := range op.Projs {
		for _, s := range p.Supp {
			b += int64(len(s.Idx))*4 + int64(len(s.Val))*8
		}
	}
	for d := range op.xp {
		b += int64(len(op.xp[d])+len(op.xm[d])+len(op.yp[d])+len(op.ym[d])) * 4
	}
	b += int64(len(op.kx)+len(op.ky)+len(op.kz)) * 8
	return b
}

// FlopsPerApply estimates floating-point operations of one H0 application
// (used by the cluster performance model): stencil tails in 3 directions
// plus projector work.
func (op *Operator) FlopsPerApply() float64 {
	n := float64(op.N())
	nf := float64(op.St.Nf)
	fl := n * (3*nf*2*8 + 8) // complex mul-add per tail pair, diag
	for _, p := range op.Projs {
		for _, s := range p.Supp {
			fl += float64(len(s.Idx)) * 16
		}
	}
	return fl
}

// HermitianResidual returns a cheap probe of the Hermiticity of the full
// Bloch Hamiltonian at |lambda| = 1: |<u, H v> - conj(<v, H u>)| for random
// fixed probe vectors; useful as a sanity check on larger grids where dense
// assembly is infeasible.
func (op *Operator) HermitianResidual(lambda complex128) float64 {
	n := op.N()
	u := make([]complex128, n)
	v := make([]complex128, n)
	// Deterministic quasi-random probes.
	s := 1.0
	for i := 0; i < n; i++ {
		s = s*997.0 + 13
		s -= float64(int64(s/2048)) * 2048
		u[i] = complex(s/2048, float64((i*37)%101)/101)
		v[i] = complex(float64((i*61)%127)/127, s/4096)
	}
	hu := make([]complex128, n)
	hv := make([]complex128, n)
	scratch := make([]complex128, n)
	op.ApplyBloch(lambda, v, hv, scratch)
	op.ApplyBloch(lambda, u, hu, scratch)
	d := zlinalg.Dot(u, hv) - cmplx.Conj(zlinalg.Dot(v, hu))
	return cmplx.Abs(d)
}
