package hamiltonian

import (
	"math"
	"math/cmplx"
	"testing"

	"cbs/internal/lattice"
	"cbs/internal/zlinalg"
)

// emptyCell builds an operator for a cell with no atoms (free particle).
func emptyCell(t *testing.T, nx, ny, nz int, lx, ly, lz float64) *Operator {
	t.Helper()
	st := &lattice.Structure{Name: "empty", Lx: lx, Ly: ly, Lz: lz}
	op, err := Build(st, Config{Nx: nx, Ny: ny, Nz: nz, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func alCell(t *testing.T, n int) *Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(st, Config{Nx: n, Ny: n, Nz: n, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestFreeParticlePlaneWave checks the discrete dispersion exactly: a
// discrete plane wave is an exact eigenvector of the FD Bloch Hamiltonian
// with eigenvalue -1/2 * sum_dir (C0 + 2 sum_d C_d cos(d theta)) / h^2.
func TestFreeParticlePlaneWave(t *testing.T) {
	op := emptyCell(t, 6, 5, 8, 6.0, 5.0, 8.0)
	g := op.G
	cases := []struct {
		nx, ny int
		thz    float64
	}{
		{0, 0, 0},
		{1, 0, 0.3},
		{2, 3, -0.7},
		{5, 4, 2.1},
	}
	for _, c := range cases {
		thx := 2 * math.Pi * float64(c.nx) / float64(g.Nx)
		thy := 2 * math.Pi * float64(c.ny) / float64(g.Ny)
		thz := c.thz
		v := make([]complex128, g.N())
		for iz := 0; iz < g.Nz; iz++ {
			for iy := 0; iy < g.Ny; iy++ {
				for ix := 0; ix < g.Nx; ix++ {
					ph := thx*float64(ix) + thy*float64(iy) + thz*float64(iz)
					v[g.Index(ix, iy, iz)] = cmplx.Exp(complex(0, ph))
				}
			}
		}
		lambda := cmplx.Exp(complex(0, thz*float64(g.Nz)))
		out := make([]complex128, g.N())
		scratch := make([]complex128, g.N())
		op.ApplyBloch(lambda, v, out, scratch)

		disp := func(theta, h float64) float64 {
			s := op.St.C[0]
			for d := 1; d <= op.St.Nf; d++ {
				s += 2 * op.St.C[d] * math.Cos(float64(d)*theta)
			}
			return -0.5 * s / (h * h)
		}
		want := disp(thx, g.Hx) + disp(thy, g.Hy) + disp(thz, g.Hz)
		for i := range out {
			if cmplx.Abs(out[i]-complex(want, 0)*v[i]) > 1e-11*(1+math.Abs(want)) {
				t.Fatalf("case %+v: plane wave is not an eigenvector: out[%d] = %v, want %v",
					c, i, out[i], complex(want, 0)*v[i])
			}
		}
	}
}

func TestBlocksHermitianStructure(t *testing.T) {
	op := alCell(t, 8)
	h0 := op.DenseBlock("H0")
	if !h0.IsHermitian(1e-11) {
		t.Error("H0 is not Hermitian")
	}
	hp := op.DenseBlock("H+")
	hm := op.DenseBlock("H-")
	if d := zlinalg.Sub(hm, hp.ConjTranspose()).MaxAbs(); d > 1e-12 {
		t.Errorf("||H- - H+^dagger|| = %g", d)
	}
	// H+ must be nonzero (Laplacian tails) but much sparser than H0.
	if hp.MaxAbs() == 0 {
		t.Error("H+ is identically zero")
	}
	// Bloch Hamiltonian at |lambda| = 1 is Hermitian.
	lam := cmplx.Exp(complex(0, 0.37))
	hk := op.BlochMatrix(lam)
	if !hk.IsHermitian(1e-10) {
		t.Error("H(k) not Hermitian for |lambda| = 1")
	}
}

func TestPeriodicConsistency(t *testing.T) {
	// At lambda = 1 the Bloch Hamiltonian equals the fully z-periodic
	// single-cell Hamiltonian: H(1) v for a constant vector must equal
	// (VLoc + 0) v (stencil annihilates constants across the wrap).
	op := alCell(t, 8)
	n := op.N()
	v := make([]complex128, n)
	for i := range v {
		v[i] = 1
	}
	out := make([]complex128, n)
	scratch := make([]complex128, n)
	op.ApplyBloch(1, v, out, scratch)
	// Kinetic part of H(1) annihilates constants; remaining is VLoc plus
	// the nonlocal term applied to the constant vector.
	// Check kinetic annihilation using the empty cell instead:
	empty := emptyCell(t, 8, 8, 8, 7.0, 7.0, 7.0)
	ve := make([]complex128, empty.N())
	for i := range ve {
		ve[i] = 1
	}
	oute := make([]complex128, empty.N())
	scratche := make([]complex128, empty.N())
	empty.ApplyBloch(1, ve, oute, scratche)
	for i := range oute {
		if cmplx.Abs(oute[i]) > 1e-11 {
			t.Fatalf("free H(1) does not annihilate constants: %v", oute[i])
		}
	}
	_ = out
}

func TestHermitianResidualProbe(t *testing.T) {
	op := alCell(t, 8)
	if r := op.HermitianResidual(cmplx.Exp(complex(0, 1.1))); r > 1e-9 {
		t.Errorf("Hermitian probe residual %g", r)
	}
}

func TestProjectorsSplitAcrossCells(t *testing.T) {
	// Al(100) has an atom at z=0 whose projector support must spill into
	// the previous cell (offset -1).
	op := alCell(t, 10)
	foundSplit := false
	for _, p := range op.Projs {
		if len(p.Supp[0].Idx) > 0 || len(p.Supp[2].Idx) > 0 {
			foundSplit = true
			break
		}
	}
	if !foundSplit {
		t.Error("no projector spans a cell boundary; boundary splitting is untested by construction")
	}
	// All indices must be in range.
	for _, p := range op.Projs {
		for _, s := range p.Supp {
			for _, idx := range s.Idx {
				if idx < 0 || int(idx) >= op.N() {
					t.Fatalf("projector index %d out of range", idx)
				}
			}
		}
	}
}

func TestLocalPotentialAttractiveAtNuclei(t *testing.T) {
	op := alCell(t, 10)
	// The potential must be negative at the atom sites.
	g := op.G
	at := op.Structure.Atoms[0]
	ix := int(math.Round(at.X/g.Hx)) % g.Nx
	iy := int(math.Round(at.Y/g.Hy)) % g.Ny
	iz := int(math.Round(at.Z/g.Hz)) % g.Nz
	if v := op.VLoc[g.Index(ix, iy, iz)]; v >= 0 {
		t.Errorf("VLoc at nucleus = %g, want negative", v)
	}
}

func TestBuildValidation(t *testing.T) {
	st, _ := lattice.AlBulk100(1)
	if _, err := Build(st, Config{Nx: 8, Ny: 8, Nz: 2, Nf: 4}); err == nil {
		t.Error("Nz < Nf must be rejected")
	}
	bad := &lattice.Structure{Name: "bad", Lx: 10, Ly: 10, Lz: 2,
		Atoms: []lattice.Atom{{Species: "Al", X: 5, Y: 5, Z: 1}}}
	if _, err := Build(bad, Config{Nx: 8, Ny: 8, Nz: 8, Nf: 4}); err == nil {
		t.Error("projector cutoff exceeding the cell must be rejected")
	}
	unk := &lattice.Structure{Name: "unknown", Lx: 10, Ly: 10, Lz: 10,
		Atoms: []lattice.Atom{{Species: "Xx", X: 5, Y: 5, Z: 5}}}
	if _, err := Build(unk, Config{Nx: 8, Ny: 8, Nz: 8, Nf: 4}); err == nil {
		t.Error("unknown species must be rejected")
	}
}

func TestMemoryAndFlopsAccounting(t *testing.T) {
	op := alCell(t, 8)
	if op.MemoryBytes() <= int64(op.N()*8) {
		t.Error("memory estimate implausibly small")
	}
	if op.FlopsPerApply() <= float64(op.N()) {
		t.Error("flops estimate implausibly small")
	}
}

func TestDenseBlockPanicsOnUnknown(t *testing.T) {
	op := emptyCell(t, 4, 4, 4, 4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("DenseBlock with bad name should panic")
		}
	}()
	op.DenseBlock("bogus")
}
