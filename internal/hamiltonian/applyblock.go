package hamiltonian

// Blocked (multi-right-hand-side) application of the Hamiltonian blocks.
//
// A block of nb vectors is stored row-major by grid point: the nb column
// values of grid point i occupy v[i*nb : (i+1)*nb]. With this layout one
// pass of the finite-difference stencil reads each neighbour table entry,
// local-potential value and projector sample once for all nb columns, so the
// per-column memory traffic drops by ~nb and the innermost loops run over
// contiguous memory (SpMM-like instead of nb repeated SpMV-like sweeps).

// blockStackCols is the width of the stack-resident per-projector reduction
// buffer; wider blocks are processed in column chunks of this size, so the
// nonlocal accumulation never allocates regardless of nb.
const blockStackCols = 64

// ApplyH0Block computes out = H0*V for an n x nb block V stored row-major
// by grid point (see package comment above). It is the blocked counterpart
// of ApplyH0; nb = 1 is exactly the single-vector path.
//
//cbs:hotpath
func (op *Operator) ApplyH0Block(v, out []complex128, nb int) {
	if nb == 1 {
		op.ApplyH0(v, out)
		return
	}
	op.checkBlockLen(v, out, nb)
	op.applyH0BlockImpl(0, 1, v, out, nb)
	op.accumNonlocalBlock(1, v, out, nb, 0)
}

// ApplyShiftedH0Block computes out = (shift*I - H0)*V, the H0 part of the
// shifted operators P(z) = E - H0 - zH+ - z^-1 H-: folding the shift-and-
// negate into the stencil pass removes the extra full-block read-modify-
// write sweep (and its re-read of V) that a separate "out = E*v - out" pass
// would cost.
//
//cbs:hotpath
func (op *Operator) ApplyShiftedH0Block(shift float64, v, out []complex128, nb int) {
	op.checkBlockLen(v, out, nb)
	op.applyH0BlockImpl(shift, -1, v, out, nb)
	op.accumNonlocalBlock(-1, v, out, nb, 0)
}

// applyH0BlockImpl computes the kinetic + local part of
// out = shift*V + sign*H0loc*V in three passes, each touching the n x nb
// block once:
//
//  1. diagonal + x-tails, writing every element of out exactly once;
//  2. y-tails with the offset loop innermost, so each output row is
//     read-modified-written once per plane (not once per offset) and stays
//     cache-resident across the 2*nf input rows;
//  3. z-tails likewise, one read-modify-write per output plane with the
//     2*nf neighbouring planes still warm from the sequential iz sweep.
//
// The per-element accumulation order (diagonal, x d=1..nf, y d=1..nf,
// z d=1..nf with +d before -d) is identical to the single-vector ApplyH0,
// so results are bit-identical; only the traversal order over elements
// changes. That matters: the naive one-pass-per-offset structure streams
// the whole block from memory ~4*nf times, which forfeits the blocked
// layout's bandwidth advantage as soon as plane*nb outgrows the cache.
//
//cbs:hotpath
func (op *Operator) applyH0BlockImpl(shift, sign float64, v, out []complex128, nb int) {
	g := op.G
	nf := op.St.Nf
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	// Pass 1: diagonal + x-tails. The row is L1-resident, so the per-offset
	// revisits of oo are cheap; out is written exactly once per element.
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			base := (iz*ny + iy) * nx
			row := v[base*nb : (base+nx)*nb]
			orow := out[base*nb : (base+nx)*nb]
			vloc := op.VLoc[base : base+nx]
			for ix := 0; ix < nx; ix++ {
				d0 := shift + sign*(op.diag+vloc[ix])
				oo := orow[ix*nb : ix*nb+nb]
				vo := row[ix*nb:][:len(oo)]
				for k := range oo {
					oo[k] = mulRe(d0, vo[k])
				}
				for d := 1; d <= nf; d++ {
					c := sign * op.kx[d]
					rp := row[int(op.xp[d-1][ix])*nb:][:len(oo)]
					rm := row[int(op.xm[d-1][ix])*nb:][:len(oo)]
					for k := range oo {
						oo[k] += mulRe(c, rp[k]+rm[k])
					}
				}
			}
		}
	}
	// Pass 2: y-tails, offsets innermost (out row cache-hot across offsets).
	for iz := 0; iz < nz; iz++ {
		planeBase := iz * ny * nx
		for iy := 0; iy < ny; iy++ {
			o0 := (planeBase + iy*nx) * nb
			rowO := out[o0 : o0+nx*nb]
			for d := 1; d <= nf; d++ {
				c := sign * op.ky[d]
				rowP := v[(planeBase+int(op.yp[d-1][iy])*nx)*nb:][:len(rowO)]
				rowM := v[(planeBase+int(op.ym[d-1][iy])*nx)*nb:][:len(rowO)]
				for i := range rowO {
					rowO[i] += mulRe(c, rowP[i]+rowM[i])
				}
			}
		}
	}
	// Pass 3: z-tails, in-cell part only, offsets innermost per plane. The
	// iz sweep touches a (2*nf+1)-plane window of V; when that window
	// outgrows the cache it is tiled into xy-strips (sweeping all iz per
	// strip) so each V element is loaded from memory once, not once per
	// offset. Tiling only changes the element traversal order, never the
	// per-element accumulation order.
	plane := nx * ny
	const cacheTarget = 192 << 10 // bytes; comfortably inside a 256 KiB L2
	rowBytes := nx * nb * 16
	stripRows := cacheTarget / ((2*nf + 1) * rowBytes)
	if stripRows < 1 {
		stripRows = 1
	}
	if stripRows > ny {
		stripRows = ny
	}
	for y0 := 0; y0 < ny; y0 += stripRows {
		y1 := y0 + stripRows
		if y1 > ny {
			y1 = ny
		}
		off0, off1 := y0*nx*nb, y1*nx*nb
		for iz := 0; iz < nz; iz++ {
			base := iz * plane * nb
			dst := out[base+off0 : base+off1]
			for d := 1; d <= nf; d++ {
				c := sign * op.kz[d]
				if izp := iz + d; izp < nz {
					addScaledBlockRe(dst, v[izp*plane*nb+off0:izp*plane*nb+off1], c)
				}
				if izm := iz - d; izm >= 0 {
					addScaledBlockRe(dst, v[izm*plane*nb+off0:izm*plane*nb+off1], c)
				}
			}
		}
	}
}

// ApplyHpBlock computes out = H+*V for a row-major block (overwrites out).
//
//cbs:hotpath
func (op *Operator) ApplyHpBlock(v, out []complex128, nb int) {
	op.checkBlockLen(v, out, nb)
	for i := range out {
		out[i] = 0
	}
	op.AccumHpBlock(1, v, out, nb)
}

// ApplyHmBlock computes out = H-*V for a row-major block (overwrites out).
//
//cbs:hotpath
func (op *Operator) ApplyHmBlock(v, out []complex128, nb int) {
	op.checkBlockLen(v, out, nb)
	for i := range out {
		out[i] = 0
	}
	op.AccumHmBlock(1, v, out, nb)
}

// AccumHpBlock accumulates out += coef * H+ * V. Because H+ only couples
// the top nf z-planes and the boundary-crossing projectors, accumulating
// with the coefficient folded in avoids a full-length scratch block and the
// Axpy pass of the single-vector path.
//
//cbs:hotpath
func (op *Operator) AccumHpBlock(coef complex128, v, out []complex128, nb int) {
	op.checkBlockLen(v, out, nb)
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	for d := 1; d <= nf; d++ {
		c := mulRe(op.kz[d], coef)
		// Rows with iz+d >= nz couple to plane iz+d-nz of the next cell.
		for iz := nz - d; iz < nz; iz++ {
			base := iz * plane * nb
			bp := (iz + d - nz) * plane * nb
			addScaledBlock(out[base:base+plane*nb], v[bp:bp+plane*nb], c)
		}
	}
	op.accumNonlocalBlock(coef, v, out, nb, 1)
}

// AccumHmBlock accumulates out += coef * H- * V.
//
//cbs:hotpath
func (op *Operator) AccumHmBlock(coef complex128, v, out []complex128, nb int) {
	op.checkBlockLen(v, out, nb)
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	for d := 1; d <= nf; d++ {
		c := mulRe(op.kz[d], coef)
		// Rows with iz-d < 0 couple to plane iz-d+nz of the previous cell.
		for iz := 0; iz < d; iz++ {
			base := iz * plane * nb
			bm := (iz - d + nz) * plane * nb
			addScaledBlock(out[base:base+plane*nb], v[bm:bm+plane*nb], c)
		}
	}
	op.accumNonlocalBlock(coef, v, out, nb, -1)
}

// accumNonlocalBlock accumulates the separable projector term of the block
// with cell offset l: out += coef * sum_j p^j h <p^{j+l}, V>. Columns are
// processed in stack-resident chunks of at most blockStackCols, so the
// reduction buffer never touches the heap whatever nb is; columns are
// independent in this kernel, so chunking preserves the per-column
// accumulation order exactly.
//
//cbs:hotpath
func (op *Operator) accumNonlocalBlock(coef complex128, v, out []complex128, nb, l int) {
	var stack [blockStackCols]complex128
	for c0 := 0; c0 < nb; c0 += blockStackCols {
		cw := nb - c0
		if cw > blockStackCols {
			cw = blockStackCols
		}
		sums := stack[:cw]
		vc := v[c0:]
		oc := out[c0:]
		for pi := range op.Projs {
			p := &op.Projs[pi]
			for j := -1; j <= 1; j++ {
				jc := j + l
				if jc < -1 || jc > 1 {
					continue
				}
				row := &p.Supp[j+1]
				col := &p.Supp[jc+1]
				if len(row.Idx) == 0 || len(col.Idx) == 0 {
					continue
				}
				dotSupportBlock(sums, col, vc, nb)
				ch := mulRe(p.H, coef)
				for k := range sums {
					sums[k] *= ch
				}
				accumProjectorBlock(oc, row, sums, nb)
			}
		}
	}
}

// dotSupportBlock computes sums[k] = <p, V[:,k]> over the support samples,
// one pass over the support for len(sums) <= nb columns of the row-major
// block v (whose first column may itself be a chunk offset into a wider
// block of stride nb).
//
//cbs:hotpath
func dotSupportBlock(sums []complex128, s *Support, v []complex128, nb int) {
	for k := range sums {
		sums[k] = 0
	}
	for i, idx := range s.Idx {
		c := s.Val[i]
		vo := v[int(idx)*nb : int(idx)*nb+len(sums)]
		for k := range sums {
			sums[k] += mulRe(c, vo[k])
		}
	}
}

// accumProjectorBlock accumulates out[idx,:] += coefs[:] * val over the
// support samples, for len(coefs) <= nb columns of the stride-nb block out.
//
//cbs:hotpath
func accumProjectorBlock(out []complex128, s *Support, coefs []complex128, nb int) {
	for i, idx := range s.Idx {
		c := s.Val[i]
		oo := out[int(idx)*nb : int(idx)*nb+len(coefs)]
		for k := range oo {
			oo[k] += mulRe(c, coefs[k])
		}
	}
}

// addScaledBlock performs dst += c*src over contiguous block storage.
//
//cbs:hotpath
func addScaledBlock(dst, src []complex128, c complex128) {
	if c == 0 {
		return
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += c * src[i]
	}
}

// addScaledBlockRe is addScaledBlock for a real coefficient (the in-cell
// z-tails of H0), at half the multiply count.
//
//cbs:hotpath
func addScaledBlockRe(dst, src []complex128, c float64) {
	if c == 0 {
		return
	}
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += mulRe(c, src[i])
	}
}

// checkBlockLen is the shared shape guard of the blocked entry points.
//
//cbs:hotpath
func (op *Operator) checkBlockLen(v, out []complex128, nb int) {
	if nb < 1 || len(v) != op.N()*nb || len(out) != op.N()*nb {
		panic("hamiltonian: block length/width mismatch")
	}
}
