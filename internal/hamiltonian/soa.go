package hamiltonian

// Split-complex (SoA) application of the Hamiltonian blocks.
//
// These kernels are the planar counterparts of applyblock.go: the block is
// held as two float planes (soa.Block) indexed exactly like the row-major
// []complex128 block, and every coefficient of H0/H+/H- is real, so each
// complex stencil update decomposes into the same real update applied to
// both planes. That buys two structural wins over the AoS path:
//
//  1. the three AoS sweeps (diag+x, y-tails, z-tails) fuse into ONE sweep
//     per output row — out is written once per element instead of
//     read-modified-written once per direction — with the per-element
//     accumulation order (diag, x d=1..nf pair-grouped, y d=1..nf
//     pair-grouped, z d=1..nf with +d then -d as separate scaled terms)
//     kept identical to ApplyH0Block, so float64 results are bit-identical;
//  2. the inner loops are contiguous float multiply-adds over plane
//     segments (x interior tails are plain shifted slices of the row, no
//     neighbour-table gathers), which the compiler turns into straight
//     4-wide unrolled scalar code at roughly half the per-element overhead
//     of the complex128 loops.
//
// The kernels are generic over the plane element type: float64 is the
// production layout, float32 the mixed-precision inner-solve layout
// (coefficient tables are rounded once at construction, arithmetic then
// stays in F throughout — see SoATables).

import (
	"sync"

	"cbs/internal/soa"
)

// SoATables holds the operator's coefficient tables converted once to the
// plane element type F, alongside the shared (type-independent) neighbour
// index tables of the Operator. Building the tables is a one-time setup
// cost; the apply kernels never convert in the hot loop.
type SoATables[F soa.Float] struct {
	op *Operator

	vloc       []F
	kx, ky, kz []F
	diag       F

	projH   []F      // per projector: channel strength h
	projVal [][3][]F // per projector, per cell offset: dV-weighted samples
}

// NewSoATables converts the operator's coefficient tables to F.
func NewSoATables[F soa.Float](op *Operator) *SoATables[F] {
	t := &SoATables[F]{op: op}
	t.vloc = make([]F, len(op.VLoc))
	for i, v := range op.VLoc {
		t.vloc[i] = F(v)
	}
	conv := func(src []float64) []F {
		out := make([]F, len(src))
		for i, v := range src {
			out[i] = F(v)
		}
		return out
	}
	t.kx, t.ky, t.kz = conv(op.kx), conv(op.ky), conv(op.kz)
	t.diag = F(op.diag)
	t.projH = make([]F, len(op.Projs))
	t.projVal = make([][3][]F, len(op.Projs))
	for pi := range op.Projs {
		p := &op.Projs[pi]
		t.projH[pi] = F(p.H)
		for s := 0; s < 3; s++ {
			t.projVal[pi][s] = conv(p.Supp[s].Val)
		}
	}
	return t
}

// Op returns the backing operator.
func (t *SoATables[F]) Op() *Operator { return t.op }

// SoA64 returns the float64 coefficient tables, built once on first use.
func (op *Operator) SoA64() *SoATables[float64] {
	op.soa64Once.Do(func() { op.soa64 = NewSoATables[float64](op) })
	return op.soa64
}

// SoA32 returns the float32 coefficient tables (mixed-precision inner
// solves), built once on first use.
func (op *Operator) SoA32() *SoATables[float32] {
	op.soa32Once.Do(func() { op.soa32 = NewSoATables[float32](op) })
	return op.soa32
}

// soaCache carries the lazily built per-precision tables; it is embedded in
// Operator so every solve layer shares one conversion.
type soaCache struct {
	soa64     *SoATables[float64]
	soa64Once sync.Once
	soa32     *SoATables[float32]
	soa32Once sync.Once
}

// checkBlockShape is the shared shape guard of the SoA entry points.
//
//cbs:hotpath
func (t *SoATables[F]) checkBlockShape(v, out *soa.Block[F]) {
	if v.N() != t.op.N() || out.N() != t.op.N() || v.NB() != out.NB() || v.NB() < 1 {
		panic("hamiltonian: SoA block shape mismatch")
	}
}

// ApplyH0Block computes out = H0*V on split planes, bit-identical (at
// F = float64) to the AoS ApplyH0Block.
//
//cbs:hotpath
func (t *SoATables[F]) ApplyH0Block(v, out *soa.Block[F]) {
	t.checkBlockShape(v, out)
	t.applyH0BlockImpl(0, 1, v, out)
	t.accumNonlocalBlock(1, 0, v, out, 0)
}

// ApplyShiftedH0Block computes out = (shift*I - H0)*V on split planes,
// bit-identical (at F = float64) to the AoS ApplyShiftedH0Block.
//
//cbs:hotpath
func (t *SoATables[F]) ApplyShiftedH0Block(shift F, v, out *soa.Block[F]) {
	t.checkBlockShape(v, out)
	t.applyH0BlockImpl(shift, -1, v, out)
	t.accumNonlocalBlock(-1, 0, v, out, 0)
}

// applyH0BlockImpl computes the kinetic + local part of
// out = shift*V + sign*H0loc*V in a single fused sweep: each output row
// (fixed iz, iy) is written once with its diagonal term and then
// accumulates its x, y and z stencil tails while still cache-resident.
// The per-element accumulation order matches applyH0BlockImpl exactly
// (see the package comment at the top of this file); only the traversal
// order over elements differs, which is immaterial because elements are
// independent.
//
//cbs:hotpath
func (t *SoATables[F]) applyH0BlockImpl(shift, sign F, v, out *soa.Block[F]) {
	op := t.op
	g := op.G
	nf := op.St.Nf
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	nb := v.NB()
	rowLen := nx * nb
	plane := nx * ny
	fused4 := nf == 4 && nx >= 2*nf
	for iz := 0; iz < nz; iz++ {
		planeBase := iz * plane
		for iy := 0; iy < ny; iy++ {
			base := planeBase + iy*nx
			rowRe := v.Re[base*nb : base*nb+rowLen]
			rowIm := v.Im[base*nb : base*nb+rowLen]
			oRe := out.Re[base*nb : base*nb+rowLen]
			oIm := out.Im[base*nb : base*nb+rowLen]
			vloc := t.vloc[base : base+nx]

			// Diagonal: writes every element of the output row once.
			for ix := 0; ix < nx; ix++ {
				d0 := shift + sign*(t.diag+vloc[ix])
				o := ix * nb
				scalePair(oRe[o:o+nb], oIm[o:o+nb], rowRe[o:o+nb], rowIm[o:o+nb], d0)
			}

			// x-tails. The interior segment [nf, nx-nf) has no periodic
			// wrap, so all four offset pairs are shifted slices of the row
			// and fuse into one pass; edge points go through the wrap
			// tables offset by offset (same per-element order).
			if fused4 {
				in0, in1 := nf*nb, rowLen-nf*nb
				c1, c2 := sign*t.kx[1], sign*t.kx[2]
				c3, c4 := sign*t.kx[3], sign*t.kx[4]
				fusePair4(oRe[in0:in1],
					rowRe[in0+nb:], rowRe[in0-nb:],
					rowRe[in0+2*nb:], rowRe[in0-2*nb:],
					rowRe[in0+3*nb:], rowRe[in0-3*nb:],
					rowRe[in0+4*nb:], rowRe[in0-4*nb:],
					c1, c2, c3, c4)
				fusePair4(oIm[in0:in1],
					rowIm[in0+nb:], rowIm[in0-nb:],
					rowIm[in0+2*nb:], rowIm[in0-2*nb:],
					rowIm[in0+3*nb:], rowIm[in0-3*nb:],
					rowIm[in0+4*nb:], rowIm[in0-4*nb:],
					c1, c2, c3, c4)
				for ix := 0; ix < nf; ix++ {
					t.accumXPoint(sign, ix, nf, nb, rowRe, rowIm, oRe, oIm)
				}
				for ix := nx - nf; ix < nx; ix++ {
					t.accumXPoint(sign, ix, nf, nb, rowRe, rowIm, oRe, oIm)
				}
			} else {
				for ix := 0; ix < nx; ix++ {
					t.accumXPoint(sign, ix, nf, nb, rowRe, rowIm, oRe, oIm)
				}
			}

			// y-tails: periodic neighbour rows of the same plane.
			if nf == 4 {
				p1 := (planeBase + int(op.yp[0][iy])*nx) * nb
				m1 := (planeBase + int(op.ym[0][iy])*nx) * nb
				p2 := (planeBase + int(op.yp[1][iy])*nx) * nb
				m2 := (planeBase + int(op.ym[1][iy])*nx) * nb
				p3 := (planeBase + int(op.yp[2][iy])*nx) * nb
				m3 := (planeBase + int(op.ym[2][iy])*nx) * nb
				p4 := (planeBase + int(op.yp[3][iy])*nx) * nb
				m4 := (planeBase + int(op.ym[3][iy])*nx) * nb
				c1, c2 := sign*t.ky[1], sign*t.ky[2]
				c3, c4 := sign*t.ky[3], sign*t.ky[4]
				fusePair4(oRe,
					v.Re[p1:], v.Re[m1:], v.Re[p2:], v.Re[m2:],
					v.Re[p3:], v.Re[m3:], v.Re[p4:], v.Re[m4:],
					c1, c2, c3, c4)
				fusePair4(oIm,
					v.Im[p1:], v.Im[m1:], v.Im[p2:], v.Im[m2:],
					v.Im[p3:], v.Im[m3:], v.Im[p4:], v.Im[m4:],
					c1, c2, c3, c4)
			} else {
				for d := 1; d <= nf; d++ {
					c := sign * t.ky[d]
					bp := (planeBase + int(op.yp[d-1][iy])*nx) * nb
					bm := (planeBase + int(op.ym[d-1][iy])*nx) * nb
					addPairScaled(oRe, v.Re[bp:], v.Re[bm:], c)
					addPairScaled(oIm, v.Im[bp:], v.Im[bm:], c)
				}
			}

			// z-tails, in-cell part only. Matching the AoS kernel, the +d
			// and -d planes are separate scaled adds (NOT pair-grouped):
			// per element the order is d=1 (+ then -), d=2 (+ then -), ...
			if nf == 4 && iz >= 4 && iz+4 < nz {
				zp1, zm1 := (base+plane)*nb, (base-plane)*nb
				zp2, zm2 := (base+2*plane)*nb, (base-2*plane)*nb
				zp3, zm3 := (base+3*plane)*nb, (base-3*plane)*nb
				zp4, zm4 := (base+4*plane)*nb, (base-4*plane)*nb
				c1, c2 := sign*t.kz[1], sign*t.kz[2]
				c3, c4 := sign*t.kz[3], sign*t.kz[4]
				fuseSingle8(oRe,
					v.Re[zp1:], v.Re[zm1:], v.Re[zp2:], v.Re[zm2:],
					v.Re[zp3:], v.Re[zm3:], v.Re[zp4:], v.Re[zm4:],
					c1, c2, c3, c4)
				fuseSingle8(oIm,
					v.Im[zp1:], v.Im[zm1:], v.Im[zp2:], v.Im[zm2:],
					v.Im[zp3:], v.Im[zm3:], v.Im[zp4:], v.Im[zm4:],
					c1, c2, c3, c4)
			} else {
				for d := 1; d <= nf; d++ {
					c := sign * t.kz[d]
					if izp := iz + d; izp < nz {
						bp := (base + d*plane) * nb
						addScaledPlane(oRe, v.Re[bp:], c)
						addScaledPlane(oIm, v.Im[bp:], c)
					}
					if izm := iz - d; izm >= 0 {
						bm := (base - d*plane) * nb
						addScaledPlane(oRe, v.Re[bm:], c)
						addScaledPlane(oIm, v.Im[bm:], c)
					}
				}
			}
		}
	}
}

// accumXPoint accumulates the x stencil tails of one grid point through the
// periodic wrap tables. At nf == 4 all four wrap-neighbour offsets feed the
// same fused pair kernel as the interior; per element the d = 1..4 order is
// the AoS order, and the re/im planes split into separate passes (elements
// are independent, so the split is bit-neutral). Other nf fall back to the
// offset-by-offset loop.
//
//cbs:hotpath
func (t *SoATables[F]) accumXPoint(sign F, ix, nf, nb int, rowRe, rowIm, oRe, oIm []F) {
	op := t.op
	o := ix * nb
	or := oRe[o : o+nb]
	oi := oIm[o:][:len(or)]
	if nf == 4 {
		p1 := int(op.xp[0][ix]) * nb
		m1 := int(op.xm[0][ix]) * nb
		p2 := int(op.xp[1][ix]) * nb
		m2 := int(op.xm[1][ix]) * nb
		p3 := int(op.xp[2][ix]) * nb
		m3 := int(op.xm[2][ix]) * nb
		p4 := int(op.xp[3][ix]) * nb
		m4 := int(op.xm[3][ix]) * nb
		c1, c2 := sign*t.kx[1], sign*t.kx[2]
		c3, c4 := sign*t.kx[3], sign*t.kx[4]
		fusePair4(or,
			rowRe[p1:], rowRe[m1:], rowRe[p2:], rowRe[m2:],
			rowRe[p3:], rowRe[m3:], rowRe[p4:], rowRe[m4:],
			c1, c2, c3, c4)
		fusePair4(oi,
			rowIm[p1:], rowIm[m1:], rowIm[p2:], rowIm[m2:],
			rowIm[p3:], rowIm[m3:], rowIm[p4:], rowIm[m4:],
			c1, c2, c3, c4)
		return
	}
	for d := 1; d <= nf; d++ {
		c := sign * t.kx[d]
		pOff := int(op.xp[d-1][ix]) * nb
		mOff := int(op.xm[d-1][ix]) * nb
		pr := rowRe[pOff:][:len(or)]
		mr := rowRe[mOff:][:len(or)]
		pi := rowIm[pOff:][:len(or)]
		mi := rowIm[mOff:][:len(or)]
		for k := range or {
			or[k] += c * (pr[k] + mr[k])
			oi[k] += c * (pi[k] + mi[k])
		}
	}
}

// AccumHpBlock accumulates out += coef * H+ * V on split planes: the top nf
// z-planes couple to the next cell, plus the boundary-crossing projectors.
// coef is split (coefRe, coefIm); at F = float64 the result is
// bit-identical to the AoS AccumHpBlock.
//
//cbs:hotpath
func (t *SoATables[F]) AccumHpBlock(coefRe, coefIm F, v, out *soa.Block[F]) {
	t.checkBlockShape(v, out)
	op := t.op
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	nb := v.NB()
	for d := 1; d <= nf; d++ {
		cr := t.kz[d] * coefRe
		ci := t.kz[d] * coefIm
		for iz := nz - d; iz < nz; iz++ {
			base := iz * plane * nb
			bp := (iz + d - nz) * plane * nb
			addScaledCplx(out.Re[base:base+plane*nb], out.Im[base:base+plane*nb],
				v.Re[bp:bp+plane*nb], v.Im[bp:bp+plane*nb], cr, ci)
		}
	}
	t.accumNonlocalBlock(coefRe, coefIm, v, out, 1)
}

// AccumHmBlock accumulates out += coef * H- * V on split planes.
//
//cbs:hotpath
func (t *SoATables[F]) AccumHmBlock(coefRe, coefIm F, v, out *soa.Block[F]) {
	t.checkBlockShape(v, out)
	op := t.op
	g := op.G
	nf := op.St.Nf
	plane := g.Nx * g.Ny
	nz := g.Nz
	nb := v.NB()
	for d := 1; d <= nf; d++ {
		cr := t.kz[d] * coefRe
		ci := t.kz[d] * coefIm
		for iz := 0; iz < d; iz++ {
			base := iz * plane * nb
			bm := (iz - d + nz) * plane * nb
			addScaledCplx(out.Re[base:base+plane*nb], out.Im[base:base+plane*nb],
				v.Re[bm:bm+plane*nb], v.Im[bm:bm+plane*nb], cr, ci)
		}
	}
	t.accumNonlocalBlock(coefRe, coefIm, v, out, -1)
}

// accumNonlocalBlock accumulates the separable projector term with cell
// offset l on split planes, mirroring the AoS accumNonlocalBlock: columns
// in stack-resident chunks, sums scaled by the complex channel coefficient
// h*coef, then scattered back through the row support.
//
//cbs:hotpath
func (t *SoATables[F]) accumNonlocalBlock(coefRe, coefIm F, v, out *soa.Block[F], l int) {
	var stackRe, stackIm [blockStackCols]F
	op := t.op
	nb := v.NB()
	for c0 := 0; c0 < nb; c0 += blockStackCols {
		cw := nb - c0
		if cw > blockStackCols {
			cw = blockStackCols
		}
		sumsRe := stackRe[:cw]
		sumsIm := stackIm[:cw]
		vRe, vIm := v.Re[c0:], v.Im[c0:]
		oRe, oIm := out.Re[c0:], out.Im[c0:]
		for pi := range op.Projs {
			p := &op.Projs[pi]
			for j := -1; j <= 1; j++ {
				jc := j + l
				if jc < -1 || jc > 1 {
					continue
				}
				row := &p.Supp[j+1]
				col := &p.Supp[jc+1]
				if len(row.Idx) == 0 || len(col.Idx) == 0 {
					continue
				}
				dotSupportSoA(sumsRe, sumsIm, col.Idx, t.projVal[pi][jc+1], vRe, vIm, nb)
				chr := t.projH[pi] * coefRe
				chi := t.projH[pi] * coefIm
				for k := range sumsRe {
					sr, si := sumsRe[k], sumsIm[k]
					sumsRe[k] = sr*chr - si*chi
					sumsIm[k] = sr*chi + si*chr
				}
				accumProjectorSoA(oRe, oIm, row.Idx, t.projVal[pi][j+1], sumsRe, sumsIm, nb)
			}
		}
	}
}

// dotSupportSoA computes sums[k] = <p, V[:,k]> over the support samples on
// split planes.
//
//cbs:hotpath
func dotSupportSoA[F soa.Float](sumsRe, sumsIm []F, idx []int32, val []F, vRe, vIm []F, nb int) {
	for k := range sumsRe {
		sumsRe[k] = 0
		sumsIm[k] = 0
	}
	if soa.HasAVX2 {
		if sr, ok := any(sumsRe).([]float64); ok {
			si := any(sumsIm).([]float64)
			vr := any(vRe).([]float64)
			vi := any(vIm).([]float64)
			c := any(val).([]float64)
			for i, id := range idx {
				o := int(id) * nb
				soa.AxpyPairF64(sr, si, vr[o:o+len(sr)], vi[o:o+len(sr)], c[i])
			}
			return
		}
	}
	for i, id := range idx {
		c := val[i]
		vr := vRe[int(id)*nb : int(id)*nb+len(sumsRe)]
		vi := vIm[int(id)*nb:][:len(vr)]
		for k := range vr {
			sumsRe[k] += c * vr[k]
			sumsIm[k] += c * vi[k]
		}
	}
}

// accumProjectorSoA accumulates out[idx,:] += coefs[:] * val on split planes.
//
//cbs:hotpath
func accumProjectorSoA[F soa.Float](oRe, oIm []F, idx []int32, val []F, sumsRe, sumsIm []F, nb int) {
	if soa.HasAVX2 {
		if sr, ok := any(sumsRe).([]float64); ok {
			si := any(sumsIm).([]float64)
			or := any(oRe).([]float64)
			oi := any(oIm).([]float64)
			c := any(val).([]float64)
			for i, id := range idx {
				o := int(id) * nb
				soa.AxpyPairF64(or[o:o+len(sr)], oi[o:o+len(sr)], sr, si, c[i])
			}
			return
		}
	}
	for i, id := range idx {
		c := val[i]
		or := oRe[int(id)*nb : int(id)*nb+len(sumsRe)]
		oi := oIm[int(id)*nb:][:len(or)]
		for k := range or {
			or[k] += c * sumsRe[k]
			oi[k] += c * sumsIm[k]
		}
	}
}

// ---- fused plane primitives --------------------------------------------
//
// Each primitive keeps a strict per-element accumulation order — one
// sequential chain through a register — so fusing several offset sweeps
// into one pass is bit-identical to running the sweeps separately (Go
// never reassociates floating-point expressions). At F = float64 on an
// AVX2 machine each primitive dispatches to the matching soa SIMD kernel
// (assert-guarded `any(x).([]float64)` compiles to a type check, no
// boxing); the kernels use no FMA and round per lane exactly like the
// scalar bodies, so the dispatch is bit-neutral. The generic bodies remain
// the float32 and non-AVX2 paths, 4-wide unrolled to trim loop and
// bounds-check overhead.

// scalePair performs dstRe[i] = c*srcRe[i]; dstIm[i] = c*srcIm[i] — the
// diagonal term's overwrite of both planes.
//
//cbs:hotpath
func scalePair[F soa.Float](dstRe, dstIm, srcRe, srcIm []F, c F) {
	if soa.HasAVX2 {
		if dr, ok := any(dstRe).([]float64); ok {
			n := len(dr)
			soa.ScalePairF64(dr, any(dstIm).([]float64)[:n],
				any(srcRe).([]float64)[:n], any(srcIm).([]float64)[:n], float64(c))
			return
		}
	}
	n := len(dstRe)
	dstIm = dstIm[:n]
	srcRe = srcRe[:n]
	srcIm = srcIm[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		r0 := c * srcRe[i]
		r1 := c * srcRe[i+1]
		r2 := c * srcRe[i+2]
		r3 := c * srcRe[i+3]
		m0 := c * srcIm[i]
		m1 := c * srcIm[i+1]
		m2 := c * srcIm[i+2]
		m3 := c * srcIm[i+3]
		dstRe[i] = r0
		dstRe[i+1] = r1
		dstRe[i+2] = r2
		dstRe[i+3] = r3
		dstIm[i] = m0
		dstIm[i+1] = m1
		dstIm[i+2] = m2
		dstIm[i+3] = m3
	}
	for ; i < n; i++ {
		dstRe[i] = c * srcRe[i]
		dstIm[i] = c * srcIm[i]
	}
}

// addPairScaled performs dst[i] += c*(p[i]+m[i]).
//
//cbs:hotpath
func addPairScaled[F soa.Float](dst, p, m []F, c F) {
	if soa.HasAVX2 {
		if d, ok := any(dst).([]float64); ok {
			n := len(d)
			soa.AddPairScaledF64(d, any(p).([]float64)[:n], any(m).([]float64)[:n], float64(c))
			return
		}
	}
	n := len(dst)
	p = p[:n]
	m = m[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := dst[i] + c*(p[i]+m[i])
		v1 := dst[i+1] + c*(p[i+1]+m[i+1])
		v2 := dst[i+2] + c*(p[i+2]+m[i+2])
		v3 := dst[i+3] + c*(p[i+3]+m[i+3])
		dst[i] = v0
		dst[i+1] = v1
		dst[i+2] = v2
		dst[i+3] = v3
	}
	for ; i < n; i++ {
		dst[i] += c * (p[i] + m[i])
	}
}

// addScaledPlane performs dst[i] += c*src[i].
//
//cbs:hotpath
func addScaledPlane[F soa.Float](dst, src []F, c F) {
	if c == 0 {
		return
	}
	if soa.HasAVX2 {
		if d, ok := any(dst).([]float64); ok {
			soa.AxpyF64(d, any(src).([]float64)[:len(d)], float64(c))
			return
		}
	}
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := dst[i] + c*src[i]
		v1 := dst[i+1] + c*src[i+1]
		v2 := dst[i+2] + c*src[i+2]
		v3 := dst[i+3] + c*src[i+3]
		dst[i] = v0
		dst[i+1] = v1
		dst[i+2] = v2
		dst[i+3] = v3
	}
	for ; i < n; i++ {
		dst[i] += c * src[i]
	}
}

// addScaledCplx performs (dstRe,dstIm)[i] += (cr+ci*i)*(srcRe,srcIm)[i],
// the split form of addScaledBlock's complex axpy.
//
//cbs:hotpath
func addScaledCplx[F soa.Float](dstRe, dstIm, srcRe, srcIm []F, cr, ci F) {
	if cr == 0 && ci == 0 {
		return
	}
	if soa.HasAVX2 {
		if dr, ok := any(dstRe).([]float64); ok {
			n := len(dr)
			soa.AxpyCplxF64(dr, any(dstIm).([]float64)[:n],
				any(srcRe).([]float64)[:n], any(srcIm).([]float64)[:n],
				float64(cr), float64(ci))
			return
		}
	}
	n := len(dstRe)
	dstIm = dstIm[:n]
	srcRe = srcRe[:n]
	srcIm = srcIm[:n]
	for i := 0; i < n; i++ {
		sr, si := srcRe[i], srcIm[i]
		dstRe[i] += cr*sr - ci*si
		dstIm[i] += cr*si + ci*sr
	}
}

// fusePair4 fuses four pair-grouped offset sweeps into one pass:
// per element, dst += c1*(p1+m1), then += c2*(p2+m2), then c3, then c4 —
// the same sequential order as four addPairScaled calls.
//
//cbs:hotpath
func fusePair4[F soa.Float](dst, p1, m1, p2, m2, p3, m3, p4, m4 []F, c1, c2, c3, c4 F) {
	if soa.HasAVX2 {
		if d, ok := any(dst).([]float64); ok {
			n := len(d)
			soa.FusePair4F64(d,
				any(p1).([]float64)[:n], any(m1).([]float64)[:n],
				any(p2).([]float64)[:n], any(m2).([]float64)[:n],
				any(p3).([]float64)[:n], any(m3).([]float64)[:n],
				any(p4).([]float64)[:n], any(m4).([]float64)[:n],
				float64(c1), float64(c2), float64(c3), float64(c4))
			return
		}
	}
	n := len(dst)
	p1 = p1[:n]
	m1 = m1[:n]
	p2 = p2[:n]
	m2 = m2[:n]
	p3 = p3[:n]
	m3 = m3[:n]
	p4 = p4[:n]
	m4 = m4[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := dst[i] + c1*(p1[i]+m1[i])
		v1 := dst[i+1] + c1*(p1[i+1]+m1[i+1])
		v2 := dst[i+2] + c1*(p1[i+2]+m1[i+2])
		v3 := dst[i+3] + c1*(p1[i+3]+m1[i+3])
		v0 += c2 * (p2[i] + m2[i])
		v1 += c2 * (p2[i+1] + m2[i+1])
		v2 += c2 * (p2[i+2] + m2[i+2])
		v3 += c2 * (p2[i+3] + m2[i+3])
		v0 += c3 * (p3[i] + m3[i])
		v1 += c3 * (p3[i+1] + m3[i+1])
		v2 += c3 * (p3[i+2] + m3[i+2])
		v3 += c3 * (p3[i+3] + m3[i+3])
		v0 += c4 * (p4[i] + m4[i])
		v1 += c4 * (p4[i+1] + m4[i+1])
		v2 += c4 * (p4[i+2] + m4[i+2])
		v3 += c4 * (p4[i+3] + m4[i+3])
		dst[i] = v0
		dst[i+1] = v1
		dst[i+2] = v2
		dst[i+3] = v3
	}
	for ; i < n; i++ {
		v := dst[i] + c1*(p1[i]+m1[i])
		v += c2 * (p2[i] + m2[i])
		v += c3 * (p3[i] + m3[i])
		v += c4 * (p4[i] + m4[i])
		dst[i] = v
	}
}

// fuseSingle8 fuses eight single-plane scaled adds into one pass with the
// sequential per-element order dst += c1*s1, += c1*s2, += c2*s3, ... —
// the z-tail pattern, where +d and -d share a coefficient but must stay
// separate terms to match the AoS kernel bit-for-bit.
//
//cbs:hotpath
func fuseSingle8[F soa.Float](dst, s1, s2, s3, s4, s5, s6, s7, s8 []F, c1, c2, c3, c4 F) {
	if soa.HasAVX2 {
		if d, ok := any(dst).([]float64); ok {
			n := len(d)
			soa.FuseSingle8F64(d,
				any(s1).([]float64)[:n], any(s2).([]float64)[:n],
				any(s3).([]float64)[:n], any(s4).([]float64)[:n],
				any(s5).([]float64)[:n], any(s6).([]float64)[:n],
				any(s7).([]float64)[:n], any(s8).([]float64)[:n],
				float64(c1), float64(c2), float64(c3), float64(c4))
			return
		}
	}
	n := len(dst)
	s1 = s1[:n]
	s2 = s2[:n]
	s3 = s3[:n]
	s4 = s4[:n]
	s5 = s5[:n]
	s6 = s6[:n]
	s7 = s7[:n]
	s8 = s8[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := dst[i] + c1*s1[i]
		v1 := dst[i+1] + c1*s1[i+1]
		v2 := dst[i+2] + c1*s1[i+2]
		v3 := dst[i+3] + c1*s1[i+3]
		v0 += c1 * s2[i]
		v1 += c1 * s2[i+1]
		v2 += c1 * s2[i+2]
		v3 += c1 * s2[i+3]
		v0 += c2 * s3[i]
		v1 += c2 * s3[i+1]
		v2 += c2 * s3[i+2]
		v3 += c2 * s3[i+3]
		v0 += c2 * s4[i]
		v1 += c2 * s4[i+1]
		v2 += c2 * s4[i+2]
		v3 += c2 * s4[i+3]
		v0 += c3 * s5[i]
		v1 += c3 * s5[i+1]
		v2 += c3 * s5[i+2]
		v3 += c3 * s5[i+3]
		v0 += c3 * s6[i]
		v1 += c3 * s6[i+1]
		v2 += c3 * s6[i+2]
		v3 += c3 * s6[i+3]
		v0 += c4 * s7[i]
		v1 += c4 * s7[i+1]
		v2 += c4 * s7[i+2]
		v3 += c4 * s7[i+3]
		v0 += c4 * s8[i]
		v1 += c4 * s8[i+1]
		v2 += c4 * s8[i+2]
		v3 += c4 * s8[i+3]
		dst[i] = v0
		dst[i+1] = v1
		dst[i+2] = v2
		dst[i+3] = v3
	}
	for ; i < n; i++ {
		v := dst[i] + c1*s1[i]
		v += c1 * s2[i]
		v += c2 * s3[i]
		v += c2 * s4[i]
		v += c3 * s5[i]
		v += c3 * s6[i]
		v += c4 * s7[i]
		v += c4 * s8[i]
		dst[i] = v
	}
}
