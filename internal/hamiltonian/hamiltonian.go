// Package hamiltonian builds the Kohn-Sham Hamiltonian of one unit cell of a
// z-periodic crystal on a real-space grid, exposed as the three blocks of
// the paper's quadratic eigenvalue problem:
//
//	H0 = H_{n,n}   (in-cell: FD Laplacian + local potential + nonlocal),
//	H+ = H_{n,n+1} (cell-to-next coupling: Laplacian tails + projector overlap),
//	H- = H_{n,n-1} = H+^dagger.
//
// All blocks are applied matrix-free; this is the property the paper
// exploits to reach O(N) memory instead of the O(N^2) of the OBM baseline.
// The cell is periodic in x and y; z coupling is split by cell offset.
package hamiltonian

import (
	"fmt"
	"math"

	"cbs/internal/fd"
	"cbs/internal/grid"
	"cbs/internal/lattice"
	"cbs/internal/pseudo"
)

// Support is the sample list of one projector within one cell offset:
// flattened in-cell grid indices and the (dV-weighted) projector values.
type Support struct {
	Idx []int32
	Val []float64
}

// Projector is one Kleinman-Bylander projector function, split into its
// amplitudes on the home cell (offset 0) and the two neighbouring cells
// (offsets -1 and +1), in local coordinates of each cell.
type Projector struct {
	H    float64    // channel strength (hartree)
	Supp [3]Support // index 0: offset -1, 1: offset 0, 2: offset +1
}

// Operator is the matrix-free Hamiltonian of one unit cell.
type Operator struct {
	G  *grid.Grid
	St *fd.Stencil

	VLoc  []float64 // local potential (hartree) on the grid
	Projs []Projector

	Structure *lattice.Structure

	// Laplacian coefficients: kinetic operator is -1/2 Laplacian, so the
	// applied coefficients are kx[d] = -0.5*C[d]/hx^2 etc.; diag is the
	// combined d=0 term of all three directions.
	kx, ky, kz []float64
	diag       float64

	// Precomputed periodic neighbour tables for x and y:
	// xp[d-1][ix] = (ix+d) mod Nx, xm[d-1][ix] = (ix-d) mod Nx.
	xp, xm, yp, ym [][]int32

	// Lazily built split-complex coefficient tables (see soa.go).
	soaCache
}

// Config controls the discretization.
type Config struct {
	Nx, Ny, Nz int // grid points; the cell lengths come from the structure
	Nf         int // FD half-width (paper: 4, the "nine-point" stencil)
}

// Build discretizes the structure's unit cell: it constructs the local
// potential by superposing screened atomic pseudopotentials over all
// periodic images and samples the Kleinman-Bylander projectors with their
// cell-offset splits.
func Build(st *lattice.Structure, cfg Config) (*Operator, error) {
	if cfg.Nf < 1 {
		cfg.Nf = 4
	}
	g, err := grid.New(cfg.Nx, cfg.Ny, cfg.Nz, st.Lx, st.Ly, st.Lz)
	if err != nil {
		return nil, err
	}
	if cfg.Nz < cfg.Nf {
		return nil, fmt.Errorf("hamiltonian: Nz = %d < stencil half-width %d; cell couplings would exceed nearest neighbours", cfg.Nz, cfg.Nf)
	}
	stencil, err := fd.NewStencil(cfg.Nf)
	if err != nil {
		return nil, err
	}
	op := &Operator{G: g, St: stencil, Structure: st}
	op.initKinetic()
	if err := op.buildLocalPotential(); err != nil {
		return nil, err
	}
	if err := op.buildProjectors(); err != nil {
		return nil, err
	}
	return op, nil
}

// N returns the dimension of the Hamiltonian blocks.
//
//cbs:hotpath
func (op *Operator) N() int { return op.G.N() }

// CellLength returns the 1D lattice constant a (bohr): the z extent of the
// periodic cell, lambda = e^{ika}.
func (op *Operator) CellLength() float64 { return op.G.Lz() }

// Descriptor is the FD-grid backend's fingerprint identity: the structure,
// the grid, and the cell length pin down the physics a checkpoint or cache
// entry was computed under. The format is load-bearing — existing sweep
// journals and job logs hash it — so any change orphans deployed state
// (see internal/fingerprint's stability contract).
func (op *Operator) Descriptor() string {
	name := ""
	if op.Structure != nil {
		name = op.Structure.Name
	}
	g := op.G
	return fmt.Sprintf("%s|grid=%dx%dx%d|N=%d|a=%.12g", name, g.Nx, g.Ny, g.Nz, g.N(), g.Lz())
}

func (op *Operator) initKinetic() {
	nf := op.St.Nf
	op.kx = make([]float64, nf+1)
	op.ky = make([]float64, nf+1)
	op.kz = make([]float64, nf+1)
	for d := 0; d <= nf; d++ {
		op.kx[d] = -0.5 * op.St.C[d] / (op.G.Hx * op.G.Hx)
		op.ky[d] = -0.5 * op.St.C[d] / (op.G.Hy * op.G.Hy)
		op.kz[d] = -0.5 * op.St.C[d] / (op.G.Hz * op.G.Hz)
	}
	op.diag = op.kx[0] + op.ky[0] + op.kz[0]
	op.xp = make([][]int32, nf)
	op.xm = make([][]int32, nf)
	op.yp = make([][]int32, nf)
	op.ym = make([][]int32, nf)
	for d := 1; d <= nf; d++ {
		op.xp[d-1] = make([]int32, op.G.Nx)
		op.xm[d-1] = make([]int32, op.G.Nx)
		for ix := 0; ix < op.G.Nx; ix++ {
			op.xp[d-1][ix] = int32(op.G.WrapX(ix + d))
			op.xm[d-1][ix] = int32(op.G.WrapX(ix - d))
		}
		op.yp[d-1] = make([]int32, op.G.Ny)
		op.ym[d-1] = make([]int32, op.G.Ny)
		for iy := 0; iy < op.G.Ny; iy++ {
			op.yp[d-1][iy] = int32(op.G.WrapY(iy + d))
			op.ym[d-1][iy] = int32(op.G.WrapY(iy - d))
		}
	}
}

// buildLocalPotential superposes screened neutral-atom potentials over all
// periodic images in x, y and z.
func (op *Operator) buildLocalPotential() error {
	g := op.G
	op.VLoc = make([]float64, g.N())
	for _, at := range op.Structure.Atoms {
		sp, err := pseudo.Lookup(at.Species)
		if err != nil {
			return err
		}
		rc := sp.ScreenedCutoff()
		// Image ranges so that every image within rc of the cell is seen.
		nxImg := int(math.Ceil(rc/g.Lx())) + 1
		nyImg := int(math.Ceil(rc/g.Ly())) + 1
		nzImg := int(math.Ceil(rc/g.Lz())) + 1
		for mx := -nxImg; mx <= nxImg; mx++ {
			for my := -nyImg; my <= nyImg; my++ {
				for mz := -nzImg; mz <= nzImg; mz++ {
					ax := at.X + float64(mx)*g.Lx()
					ay := at.Y + float64(my)*g.Ly()
					az := at.Z + float64(mz)*g.Lz()
					op.addAtomPotential(sp, ax, ay, az, rc)
				}
			}
		}
	}
	return nil
}

// addAtomPotential adds the screened potential of one (image) atom to the
// grid points within its cutoff sphere.
func (op *Operator) addAtomPotential(sp pseudo.Species, ax, ay, az float64, rc float64) {
	g := op.G
	ix0 := int(math.Floor((ax - rc) / g.Hx))
	ix1 := int(math.Ceil((ax + rc) / g.Hx))
	iy0 := int(math.Floor((ay - rc) / g.Hy))
	iy1 := int(math.Ceil((ay + rc) / g.Hy))
	iz0 := int(math.Floor((az - rc) / g.Hz))
	iz1 := int(math.Ceil((az + rc) / g.Hz))
	// Clip to the cell: periodic images handle what falls outside.
	if ix0 < 0 {
		ix0 = 0
	}
	if ix1 > g.Nx-1 {
		ix1 = g.Nx - 1
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if iy1 > g.Ny-1 {
		iy1 = g.Ny - 1
	}
	if iz0 < 0 {
		iz0 = 0
	}
	if iz1 > g.Nz-1 {
		iz1 = g.Nz - 1
	}
	rc2 := rc * rc
	for iz := iz0; iz <= iz1; iz++ {
		dz := float64(iz)*g.Hz - az
		for iy := iy0; iy <= iy1; iy++ {
			dy := float64(iy)*g.Hy - ay
			base := (iz*g.Ny + iy) * g.Nx
			for ix := ix0; ix <= ix1; ix++ {
				dx := float64(ix)*g.Hx - ax
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > rc2 {
					continue
				}
				op.VLoc[base+ix] += sp.VScreened(math.Sqrt(r2))
			}
		}
	}
}

// buildProjectors samples every KB projector of every atom, splitting its
// support by cell offset in z and wrapping periodically in x and y.
func (op *Operator) buildProjectors() error {
	g := op.G
	dvw := math.Sqrt(g.DV()) // weight so plain dot products integrate
	for _, at := range op.Structure.Atoms {
		sp, err := pseudo.Lookup(at.Species)
		if err != nil {
			return err
		}
		for _, ch := range sp.Channels() {
			if ch.Cutoff >= g.Lz() {
				return fmt.Errorf("hamiltonian: projector cutoff %.2f exceeds cell length %.2f; blocks would couple beyond nearest cells", ch.Cutoff, g.Lz())
			}
			for m := 0; m < ch.NumProjectors(); m++ {
				proj, err := op.sampleProjector(at, sp, ch, m, dvw)
				if err != nil {
					return err
				}
				// Skip numerically empty projectors (possible on very
				// coarse grids).
				if len(proj.Supp[1].Idx) == 0 && len(proj.Supp[0].Idx) == 0 && len(proj.Supp[2].Idx) == 0 {
					continue
				}
				op.Projs = append(op.Projs, proj)
			}
		}
	}
	return nil
}

func (op *Operator) sampleProjector(at lattice.Atom, sp pseudo.Species, ch pseudo.Channel, m int, dvw float64) (Projector, error) {
	g := op.G
	proj := Projector{H: ch.H}
	rc := ch.Cutoff
	rc2 := rc * rc
	iz0 := int(math.Floor((at.Z - rc) / g.Hz))
	iz1 := int(math.Ceil((at.Z + rc) / g.Hz))
	// x/y wrap periodically: enumerate image shifts of the atom so every
	// grid point within the cutoff of any xy image is sampled once.
	nxImg := int(math.Ceil(rc / g.Lx()))
	nyImg := int(math.Ceil(rc / g.Ly()))
	for iz := iz0; iz <= iz1; iz++ {
		izc, off := g.WrapZ(iz)
		if off < -1 || off > 1 {
			return proj, fmt.Errorf("hamiltonian: projector support spans cell offset %d", off)
		}
		dz := float64(iz)*g.Hz - at.Z
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				// Minimum-image xy displacement within cutoff.
				var val float64
				found := false
				for mx := -nxImg; mx <= nxImg; mx++ {
					for my := -nyImg; my <= nyImg; my++ {
						dx := float64(ix)*g.Hx - at.X + float64(mx)*g.Lx()
						dy := float64(iy)*g.Hy - at.Y + float64(my)*g.Ly()
						r2 := dx*dx + dy*dy + dz*dz
						if r2 > rc2 {
							continue
						}
						r := math.Sqrt(r2)
						val += ch.Radial(r) * ch.Angular(m, dx, dy, dz, r)
						found = true
					}
				}
				if !found || val == 0 {
					continue
				}
				s := &proj.Supp[off+1]
				s.Idx = append(s.Idx, int32(g.Index(ix, iy, izc)))
				s.Val = append(s.Val, val*dvw)
			}
		}
	}
	return proj, nil
}
