package hamiltonian

import (
	"math/rand"
	"testing"

	"cbs/internal/zlinalg"
)

// randBlock fills an n x nb row-major block with deterministic random data.
func randBlock(n, nb int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n*nb)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// blockCol extracts column c of a row-major block.
func blockCol(v []complex128, n, nb, c int) []complex128 {
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = v[i*nb+c]
	}
	return out
}

// TestApplyBlockMatchesPerColumn: every blocked kernel must reproduce the
// single-vector kernels column by column for nb in {1, 3, 8}.
func TestApplyBlockMatchesPerColumn(t *testing.T) {
	op := alCell(t, 6)
	n := op.N()
	kernels := []struct {
		name   string
		single func(v, out []complex128)
		block  func(v, out []complex128, nb int)
	}{
		{"H0", op.ApplyH0, op.ApplyH0Block},
		{"H+", op.ApplyHp, op.ApplyHpBlock},
		{"H-", op.ApplyHm, op.ApplyHmBlock},
	}
	for _, nb := range []int{1, 3, 8} {
		v := randBlock(n, nb, int64(100+nb))
		out := make([]complex128, n*nb)
		ref := make([]complex128, n)
		for _, k := range kernels {
			k.block(v, out, nb)
			for c := 0; c < nb; c++ {
				k.single(blockCol(v, n, nb, c), ref)
				got := blockCol(out, n, nb, c)
				zlinalg.Axpy(-1, ref, got)
				if d := zlinalg.Norm2(got) / zlinalg.Norm2(ref); d > 1e-13 {
					t.Errorf("%s nb=%d col %d: relative deviation %g", k.name, nb, c, d)
				}
			}
		}
	}
}

// TestAccumBlockMatchesAxpy: the fused accumulate variants must equal
// "apply then axpy" with the same coefficient.
func TestAccumBlockMatchesAxpy(t *testing.T) {
	op := alCell(t, 6)
	n := op.N()
	coef := complex(-1.3, 0.7)
	for _, nb := range []int{1, 4} {
		v := randBlock(n, nb, int64(200+nb))
		base := randBlock(n, nb, int64(300+nb))

		got := append([]complex128(nil), base...)
		op.AccumHpBlock(coef, v, got, nb)
		want := append([]complex128(nil), base...)
		tmp := make([]complex128, n*nb)
		op.ApplyHpBlock(v, tmp, nb)
		zlinalg.Axpy(coef, tmp, want)
		zlinalg.Axpy(-1, want, got)
		if d := zlinalg.Norm2(got) / zlinalg.Norm2(want); d > 1e-13 {
			t.Errorf("AccumHpBlock nb=%d: relative deviation %g", nb, d)
		}

		got = append([]complex128(nil), base...)
		op.AccumHmBlock(coef, v, got, nb)
		want = append([]complex128(nil), base...)
		op.ApplyHmBlock(v, tmp, nb)
		zlinalg.Axpy(coef, tmp, want)
		zlinalg.Axpy(-1, want, got)
		if d := zlinalg.Norm2(got) / zlinalg.Norm2(want); d > 1e-13 {
			t.Errorf("AccumHmBlock nb=%d: relative deviation %g", nb, d)
		}
	}
}

// TestApplyBlockPanics: mis-sized blocks must be rejected.
func TestApplyBlockPanics(t *testing.T) {
	op := alCell(t, 6)
	n := op.N()
	defer func() {
		if recover() == nil {
			t.Error("short block did not panic")
		}
	}()
	op.ApplyH0Block(make([]complex128, n*2-1), make([]complex128, n*2), 2)
}
