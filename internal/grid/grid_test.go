package grid

import (
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, nx, ny, nz int, lx, ly, lz float64) *Grid {
	t.Helper()
	g, err := New(nx, ny, nz, lx, ly, lz)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIndexRoundTrip(t *testing.T) {
	g := mustGrid(t, 4, 5, 6, 4, 5, 6)
	seen := make(map[int]bool)
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				idx := g.Index(ix, iy, iz)
				if idx < 0 || idx >= g.N() {
					t.Fatalf("index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
				jx, jy, jz := g.Coords(idx)
				if jx != ix || jy != iy || jz != iz {
					t.Fatalf("Coords(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, jx, jy, jz, ix, iy, iz)
				}
			}
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("covered %d indices, want %d", len(seen), g.N())
	}
}

func TestZSlabContiguity(t *testing.T) {
	// The flattened layout must keep each z plane contiguous so z-slab halo
	// exchange is a single copy.
	g := mustGrid(t, 3, 4, 5, 1, 1, 1)
	for iz := 0; iz < g.Nz; iz++ {
		lo := g.Index(0, 0, iz)
		hi := g.Index(g.Nx-1, g.Ny-1, iz)
		if hi-lo+1 != g.PlaneSize() {
			t.Fatalf("plane %d is not contiguous: [%d,%d]", iz, lo, hi)
		}
	}
}

func TestWrapZ(t *testing.T) {
	g := mustGrid(t, 2, 2, 5, 1, 1, 1)
	cases := []struct {
		in, wantIz, wantOff int
	}{
		{0, 0, 0}, {4, 4, 0}, {5, 0, 1}, {9, 4, 1}, {10, 0, 2},
		{-1, 4, -1}, {-5, 0, -1}, {-6, 4, -2},
	}
	for _, c := range cases {
		iz, off := g.WrapZ(c.in)
		if iz != c.wantIz || off != c.wantOff {
			t.Errorf("WrapZ(%d) = (%d,%d), want (%d,%d)", c.in, iz, off, c.wantIz, c.wantOff)
		}
	}
}

func TestWrapXY(t *testing.T) {
	g := mustGrid(t, 4, 3, 2, 1, 1, 1)
	if g.WrapX(-1) != 3 || g.WrapX(4) != 0 || g.WrapX(2) != 2 {
		t.Error("WrapX incorrect")
	}
	if g.WrapY(-4) != 2 || g.WrapY(3) != 0 {
		t.Error("WrapY incorrect")
	}
}

func TestDecompose(t *testing.T) {
	g := mustGrid(t, 2, 2, 10, 1, 1, 1)
	for n := 1; n <= 10; n++ {
		slabs, err := g.Decompose(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(slabs) != n {
			t.Fatalf("n=%d: got %d slabs", n, len(slabs))
		}
		z := 0
		for _, s := range slabs {
			if s.Z0 != z {
				t.Fatalf("n=%d: slab starts at %d, want %d", n, s.Z0, z)
			}
			if s.NPlanes() < 1 {
				t.Fatalf("n=%d: empty slab", n)
			}
			z = s.Z1
		}
		if z != g.Nz {
			t.Fatalf("n=%d: coverage ends at %d, want %d", n, z, g.Nz)
		}
		// Balance: sizes differ by at most one plane.
		minP, maxP := g.Nz, 0
		for _, s := range slabs {
			if p := s.NPlanes(); p < minP {
				minP = p
			}
			if p := s.NPlanes(); p > maxP {
				maxP = p
			}
		}
		if maxP-minP > 1 {
			t.Fatalf("n=%d: slab imbalance %d vs %d", n, minP, maxP)
		}
	}
	if _, err := g.Decompose(11); err == nil {
		t.Error("Decompose with more domains than planes should fail")
	}
	if _, err := g.Decompose(0); err == nil {
		t.Error("Decompose(0) should fail")
	}
}

func TestWrapZProperty(t *testing.T) {
	g := mustGrid(t, 2, 2, 7, 1, 1, 1)
	f := func(iz int16) bool {
		z, off := g.WrapZ(int(iz))
		return z >= 0 && z < g.Nz && z+off*g.Nz == int(iz)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryAccessors(t *testing.T) {
	g := mustGrid(t, 10, 20, 40, 5, 10, 20)
	if g.Hx != 0.5 || g.Hy != 0.5 || g.Hz != 0.5 {
		t.Fatalf("spacings = %g %g %g, want 0.5", g.Hx, g.Hy, g.Hz)
	}
	if g.Volume() != 1000 {
		t.Fatalf("Volume = %g, want 1000", g.Volume())
	}
	if g.DV() != 0.125 {
		t.Fatalf("DV = %g, want 0.125", g.DV())
	}
	x, y, z := g.Position(1, 2, 3)
	if x != 0.5 || y != 1.0 || z != 1.5 {
		t.Fatalf("Position = %g %g %g", x, y, z)
	}
	if g.HaloBytes(4) != 2*4*200*16 {
		t.Fatalf("HaloBytes = %d", g.HaloBytes(4))
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("zero point count should fail")
	}
	if _, err := New(1, 1, 1, 0, 1, 1); err == nil {
		t.Error("zero length should fail")
	}
}
