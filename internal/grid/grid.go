// Package grid defines the 3D uniform real-space grid of the
// finite-difference Kohn-Sham scheme, its flattened indexing, and the
// z-slab domain decomposition used by the bottom layer of the hierarchical
// parallelism (the paper decomposes "at the grid points along the z
// direction to minimize communications").
package grid

import "fmt"

// Grid is a uniform orthorhombic real-space grid over one unit cell. The
// cell is periodic in x and y (bulk directions or vacuum-padded box) and the
// z direction is the 1D transport/periodicity axis of the complex band
// structure problem. Lengths are in bohr.
type Grid struct {
	Nx, Ny, Nz int     // grid points per direction
	Hx, Hy, Hz float64 // grid spacings (bohr)
}

// New builds a grid with the given point counts and cell edge lengths
// (bohr). The spacing is L/N in each direction (periodic convention).
func New(nx, ny, nz int, lx, ly, lz float64) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("grid: invalid point counts %dx%dx%d", nx, ny, nz)
	}
	if lx <= 0 || ly <= 0 || lz <= 0 {
		return nil, fmt.Errorf("grid: invalid cell lengths %g %g %g", lx, ly, lz)
	}
	return &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		Hx: lx / float64(nx), Hy: ly / float64(ny), Hz: lz / float64(nz),
	}, nil
}

// N returns the total number of grid points (the dimension of the KS
// Hamiltonian block).
//
//cbs:hotpath
func (g *Grid) N() int { return g.Nx * g.Ny * g.Nz }

// Lx, Ly, Lz return the cell edge lengths in bohr.
func (g *Grid) Lx() float64 { return g.Hx * float64(g.Nx) }
func (g *Grid) Ly() float64 { return g.Hy * float64(g.Ny) }
func (g *Grid) Lz() float64 { return g.Hz * float64(g.Nz) }

// Volume returns the unit-cell volume in bohr^3.
func (g *Grid) Volume() float64 { return g.Lx() * g.Ly() * g.Lz() }

// DV returns the volume element per grid point.
func (g *Grid) DV() float64 { return g.Hx * g.Hy * g.Hz }

// Index flattens (ix,iy,iz) with x fastest and z slowest, so that a z-slab
// is a contiguous range of the flattened vector (cheap halo exchange).
//
//cbs:hotpath
func (g *Grid) Index(ix, iy, iz int) int {
	return (iz*g.Ny+iy)*g.Nx + ix
}

// Coords inverts Index.
func (g *Grid) Coords(idx int) (ix, iy, iz int) {
	ix = idx % g.Nx
	idx /= g.Nx
	iy = idx % g.Ny
	iz = idx / g.Ny
	return
}

// Position returns the Cartesian position (bohr) of grid point (ix,iy,iz).
func (g *Grid) Position(ix, iy, iz int) (x, y, z float64) {
	return float64(ix) * g.Hx, float64(iy) * g.Hy, float64(iz) * g.Hz
}

// WrapX returns ix modulo Nx (periodic boundary).
func (g *Grid) WrapX(ix int) int { return wrap(ix, g.Nx) }

// WrapY returns iy modulo Ny (periodic boundary).
func (g *Grid) WrapY(iy int) int { return wrap(iy, g.Ny) }

// WrapZ returns iz modulo Nz together with the cell offset (... -1, 0, +1 ...)
// the point fell into. It is the key primitive for splitting stencil and
// projector couplings into the H-, H0, H+ blocks.
func (g *Grid) WrapZ(iz int) (int, int) {
	off := 0
	for iz < 0 {
		iz += g.Nz
		off--
	}
	for iz >= g.Nz {
		iz -= g.Nz
		off++
	}
	return iz, off
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Slab is a contiguous range of z planes [Z0, Z1) owned by one domain of the
// bottom-layer decomposition.
type Slab struct {
	Z0, Z1 int
}

// NPlanes returns the number of planes in the slab.
func (s Slab) NPlanes() int { return s.Z1 - s.Z0 }

// Decompose splits the Nz planes into n z-slabs as evenly as possible.
// Slabs never straddle and cover [0, Nz) exactly. An error is returned when
// there are more domains than planes.
func (g *Grid) Decompose(n int) ([]Slab, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: invalid domain count %d", n)
	}
	if n > g.Nz {
		return nil, fmt.Errorf("grid: %d domains exceed %d z planes", n, g.Nz)
	}
	slabs := make([]Slab, n)
	base := g.Nz / n
	extra := g.Nz % n
	z := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		slabs[i] = Slab{Z0: z, Z1: z + sz}
		z += sz
	}
	return slabs, nil
}

// PlaneSize returns the number of grid points per z plane.
func (g *Grid) PlaneSize() int { return g.Nx * g.Ny }

// HaloBytes returns the per-exchange halo message size in bytes for a
// stencil half-width nf (complex128 values, both directions): the surface
// communication volume of the bottom-layer parallelism.
func (g *Grid) HaloBytes(nf int) int {
	return 2 * nf * g.PlaneSize() * 16
}
