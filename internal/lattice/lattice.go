// Package lattice generates the atomic structures used in the paper's
// experiments: bulk fcc Al(100), (n,m) carbon nanotubes, boron/nitrogen
// random doping, and nanotube bundles (7-tube and crystalline). All
// coordinates are Cartesian in bohr inside an orthorhombic cell that is
// periodic along z (the CBS axis).
package lattice

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cbs/internal/units"
)

// Atom is one nucleus: a species symbol and a Cartesian position in bohr.
type Atom struct {
	Species string
	X, Y, Z float64
}

// Structure is one periodic unit cell: atoms plus orthorhombic cell edges
// (bohr). The z edge is the CBS periodicity length a of the paper.
type Structure struct {
	Name    string
	Atoms   []Atom
	Lx, Ly  float64
	Lz      float64 // the 1D lattice constant a
	Species []string
}

// collectSpecies records the distinct species in first-seen order.
func (s *Structure) collectSpecies() {
	seen := map[string]bool{}
	s.Species = s.Species[:0]
	for _, a := range s.Atoms {
		if !seen[a.Species] {
			seen[a.Species] = true
			s.Species = append(s.Species, a.Species)
		}
	}
}

// NumAtoms returns the number of atoms in the cell.
func (s *Structure) NumAtoms() int { return len(s.Atoms) }

// CountSpecies returns the number of atoms of the given species.
func (s *Structure) CountSpecies(sym string) int {
	n := 0
	for _, a := range s.Atoms {
		if a.Species == sym {
			n++
		}
	}
	return n
}

// fccLatticeAl is the cubic lattice constant of aluminum in angstrom.
const fccLatticeAl = 4.05

// AlBulk100 builds bulk fcc aluminum with the z axis along <100>: the
// conventional cubic cell holds 4 atoms (the paper's Al(100) test system);
// nz cells are stacked along z.
func AlBulk100(nz int) (*Structure, error) {
	if nz < 1 {
		return nil, fmt.Errorf("lattice: nz = %d < 1", nz)
	}
	a := units.AngstromToBohr(fccLatticeAl)
	basis := [][3]float64{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	s := &Structure{
		Name: fmt.Sprintf("Al(100) x%d", nz),
		Lx:   a, Ly: a, Lz: a * float64(nz),
	}
	for c := 0; c < nz; c++ {
		for _, b := range basis {
			s.Atoms = append(s.Atoms, Atom{
				Species: "Al",
				X:       b[0] * a,
				Y:       b[1] * a,
				Z:       (b[2] + float64(c)) * a,
			})
		}
	}
	s.collectSpecies()
	return s, nil
}

// grapheneA is the graphene lattice constant in angstrom.
const grapheneA = 2.46

// CNT builds a single-wall (n,m) carbon nanotube, axis along z, centered in
// an orthorhombic box with the given vacuum margin (bohr) on each side in x
// and y. The cell contains exactly one translational period
// |T| = sqrt(3)*|Ch|/dR.
func CNT(n, m int, vacuum float64) (*Structure, error) {
	if n < 1 || m < 0 || m > n {
		return nil, fmt.Errorf("lattice: invalid chirality (%d,%d)", n, m)
	}
	a := units.AngstromToBohr(grapheneA)
	// Graphene lattice vectors (2D sheet coordinates).
	a1 := [2]float64{math.Sqrt(3) / 2 * a, a / 2}
	a2 := [2]float64{math.Sqrt(3) / 2 * a, -a / 2}
	// Chiral and translation vectors.
	ch := [2]float64{float64(n)*a1[0] + float64(m)*a2[0], float64(n)*a1[1] + float64(m)*a2[1]}
	dr := gcd(2*m+n, 2*n+m)
	t1, t2 := (2*m+n)/dr, -(2*n+m)/dr
	tv := [2]float64{float64(t1)*a1[0] + float64(t2)*a2[0], float64(t1)*a1[1] + float64(t2)*a2[1]}
	chLen2 := ch[0]*ch[0] + ch[1]*ch[1]
	tLen2 := tv[0]*tv[0] + tv[1]*tv[1]
	chLen := math.Sqrt(chLen2)
	tLen := math.Sqrt(tLen2)
	radius := chLen / (2 * math.Pi)
	// Expected atoms: 2 per hexagon, N = 2(n^2+nm+m^2)/dR hexagons.
	nHex := 2 * (n*n + n*m + m*m) / dr
	wantAtoms := 2 * nHex

	// Enumerate graphene cells in a window guaranteed to cover the tube
	// unit cell rectangle, fold into it, and deduplicate.
	basis := [][2]float64{
		{0, 0},
		{(a1[0] + a2[0]) / 3, (a1[1] + a2[1]) / 3},
	}
	type key struct{ s, t int }
	seen := map[key][2]float64{}
	lim := 2 * (n + m + intAbs(t1) + intAbs(t2) + 2)
	for u := -lim; u <= lim; u++ {
		for v := -lim; v <= lim; v++ {
			for _, b := range basis {
				px := float64(u)*a1[0] + float64(v)*a2[0] + b[0]
				py := float64(u)*a1[1] + float64(v)*a2[1] + b[1]
				// Fractional coordinates along Ch and T.
				sf := (px*ch[0] + py*ch[1]) / chLen2
				tf := (px*tv[0] + py*tv[1]) / tLen2
				sf -= math.Floor(sf)
				tf -= math.Floor(tf)
				// Round to a fine lattice for dedup (atoms are separated by
				// >> 1e-6 in fractional coordinates).
				k := key{int(math.Round(sf * 1e6)), int(math.Round(tf * 1e6))}
				// Handle the wrap seam: 1e6 is equivalent to 0.
				if k.s == 1000000 {
					k.s = 0
				}
				if k.t == 1000000 {
					k.t = 0
				}
				if _, ok := seen[k]; !ok {
					seen[k] = [2]float64{sf, tf}
				}
			}
		}
	}
	if len(seen) != wantAtoms {
		return nil, fmt.Errorf("lattice: CNT(%d,%d) produced %d atoms, want %d", n, m, len(seen), wantAtoms)
	}

	box := 2*radius + 2*vacuum
	cx, cy := box/2, box/2
	s := &Structure{
		Name: fmt.Sprintf("(%d,%d) CNT", n, m),
		Lx:   box, Ly: box, Lz: tLen,
	}
	frac := make([][2]float64, 0, wantAtoms)
	for _, f := range seen {
		frac = append(frac, f)
	}
	// Deterministic ordering (by t then s) for reproducible doping.
	sort.Slice(frac, func(i, j int) bool {
		if frac[i][1] != frac[j][1] {
			return frac[i][1] < frac[j][1]
		}
		return frac[i][0] < frac[j][0]
	})
	for _, f := range frac {
		theta := 2 * math.Pi * f[0]
		s.Atoms = append(s.Atoms, Atom{
			Species: "C",
			X:       cx + radius*math.Cos(theta),
			Y:       cy + radius*math.Sin(theta),
			Z:       f[1] * tLen,
		})
	}
	s.collectSpecies()
	return s, nil
}

// Repeat stacks the structure nz times along z (supercell), as used to build
// the 1024- and 10240-atom systems from the 32-atom (8,0) CNT cell.
func Repeat(s *Structure, nz int) (*Structure, error) {
	if nz < 1 {
		return nil, fmt.Errorf("lattice: Repeat count %d < 1", nz)
	}
	out := &Structure{
		Name: fmt.Sprintf("%s x%d", s.Name, nz),
		Lx:   s.Lx, Ly: s.Ly, Lz: s.Lz * float64(nz),
	}
	for c := 0; c < nz; c++ {
		for _, a := range s.Atoms {
			a.Z += float64(c) * s.Lz
			out.Atoms = append(out.Atoms, a)
		}
	}
	out.collectSpecies()
	return out, nil
}

// BNDope replaces nPairs random distinct carbon atoms by boron and nPairs by
// nitrogen (the paper's BN-doped CNTs are "made by randomly inserting boron
// and nitrogen into pristine (8,0) CNT"). The seed makes the doping
// deterministic and reproducible.
func BNDope(s *Structure, nPairs int, seed int64) (*Structure, error) {
	carbons := []int{}
	for i, a := range s.Atoms {
		if a.Species == "C" {
			carbons = append(carbons, i)
		}
	}
	if 2*nPairs > len(carbons) {
		return nil, fmt.Errorf("lattice: %d BN pairs exceed %d carbon atoms", nPairs, len(carbons))
	}
	out := &Structure{
		Name: fmt.Sprintf("BN-doped %s", s.Name),
		Lx:   s.Lx, Ly: s.Ly, Lz: s.Lz,
		Atoms: append([]Atom(nil), s.Atoms...),
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(carbons))
	for p := 0; p < nPairs; p++ {
		out.Atoms[carbons[perm[2*p]]].Species = "B"
		out.Atoms[carbons[perm[2*p+1]]].Species = "N"
	}
	out.collectSpecies()
	return out, nil
}

// tubeGapAngstrom is the inter-tube van der Waals wall gap in bundles.
const tubeGapAngstrom = 3.35

// Bundle7 arranges seven copies of the tube hexagonally (one center, six
// around) inside one box, the paper's "7 bundle" (7 x 32 = 224 atoms for
// (8,0)). The tube argument must be a structure from CNT (one tube centered
// in its box).
func Bundle7(tube *Structure, vacuum float64) (*Structure, error) {
	r := tubeRadius(tube)
	if r <= 0 {
		return nil, fmt.Errorf("lattice: cannot infer tube radius")
	}
	d := 2*r + units.AngstromToBohr(tubeGapAngstrom) // center-to-center distance
	box := 2*d + 2*r + 2*vacuum
	cx, cy := box/2, box/2
	out := &Structure{
		Name: fmt.Sprintf("7-bundle of %s", tube.Name),
		Lx:   box, Ly: box, Lz: tube.Lz,
	}
	centers := [][2]float64{{0, 0}}
	for i := 0; i < 6; i++ {
		ang := math.Pi / 3 * float64(i)
		centers = append(centers, [2]float64{d * math.Cos(ang), d * math.Sin(ang)})
	}
	ocx, ocy := tube.Lx/2, tube.Ly/2
	for _, c := range centers {
		for _, a := range tube.Atoms {
			out.Atoms = append(out.Atoms, Atom{
				Species: a.Species,
				X:       cx + c[0] + (a.X - ocx),
				Y:       cy + c[1] + (a.Y - ocy),
				Z:       a.Z,
			})
		}
	}
	out.collectSpecies()
	return out, nil
}

// CrystallineBundle builds the periodic triangular-lattice bundle in its
// rectangular (2-tube) representation: tubes at (0,0) and (1/2,1/2) of a
// cell with Ly = sqrt(3)*Lx, periodic in x and y (64 atoms for (8,0)).
func CrystallineBundle(tube *Structure) (*Structure, error) {
	r := tubeRadius(tube)
	if r <= 0 {
		return nil, fmt.Errorf("lattice: cannot infer tube radius")
	}
	d := 2*r + units.AngstromToBohr(tubeGapAngstrom)
	lx := d
	ly := d * math.Sqrt(3)
	out := &Structure{
		Name: fmt.Sprintf("crystalline bundle of %s", tube.Name),
		Lx:   lx, Ly: ly, Lz: tube.Lz,
	}
	ocx, ocy := tube.Lx/2, tube.Ly/2
	for _, c := range [][2]float64{{0, 0}, {lx / 2, ly / 2}} {
		for _, a := range tube.Atoms {
			x := c[0] + (a.X - ocx)
			y := c[1] + (a.Y - ocy)
			// Fold into the periodic cell.
			x -= lx * math.Floor(x/lx)
			y -= ly * math.Floor(y/ly)
			out.Atoms = append(out.Atoms, Atom{Species: a.Species, X: x, Y: y, Z: a.Z})
		}
	}
	out.collectSpecies()
	return out, nil
}

// tubeRadius estimates the tube radius as the mean distance of atoms from
// the box center in the xy plane.
func tubeRadius(tube *Structure) float64 {
	if len(tube.Atoms) == 0 {
		return 0
	}
	cx, cy := tube.Lx/2, tube.Ly/2
	var sum float64
	for _, a := range tube.Atoms {
		sum += math.Hypot(a.X-cx, a.Y-cy)
	}
	return sum / float64(len(tube.Atoms))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

func intAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
