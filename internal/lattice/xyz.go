package lattice

import (
	"bufio"
	"fmt"
	"io"

	"cbs/internal/units"
)

// WriteXYZ writes the structure in extended-XYZ format (angstrom), the
// format used to regenerate the structural models of Fig. 7.
func WriteXYZ(w io.Writer, s *Structure) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", len(s.Atoms)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw,
		"Lattice=\"%.6f 0 0 0 %.6f 0 0 0 %.6f\" Properties=species:S:1:pos:R:3 name=%q\n",
		units.BohrToAngstrom(s.Lx), units.BohrToAngstrom(s.Ly), units.BohrToAngstrom(s.Lz), s.Name); err != nil {
		return err
	}
	for _, a := range s.Atoms {
		if _, err := fmt.Fprintf(bw, "%-2s %12.6f %12.6f %12.6f\n",
			a.Species,
			units.BohrToAngstrom(a.X),
			units.BohrToAngstrom(a.Y),
			units.BohrToAngstrom(a.Z)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
