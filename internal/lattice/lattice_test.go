package lattice

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cbs/internal/units"
)

func TestAlBulk100(t *testing.T) {
	s, err := AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAtoms() != 4 {
		t.Fatalf("Al(100) cell has %d atoms, want 4 (paper)", s.NumAtoms())
	}
	a := units.AngstromToBohr(4.05)
	if math.Abs(s.Lz-a) > 1e-12 {
		t.Fatalf("Lz = %g, want %g", s.Lz, a)
	}
	s3, err := AlBulk100(3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.NumAtoms() != 12 || math.Abs(s3.Lz-3*a) > 1e-12 {
		t.Fatalf("x3 supercell wrong: %d atoms, Lz=%g", s3.NumAtoms(), s3.Lz)
	}
	if _, err := AlBulk100(0); err == nil {
		t.Error("AlBulk100(0) should fail")
	}
}

func TestCNTAtomCounts(t *testing.T) {
	// 2N with N = 2(n^2+nm+m^2)/dR; the paper's systems:
	cases := []struct {
		n, m, want int
	}{
		{8, 0, 32}, // pristine (8,0): 32 atoms (paper Sec. 4.2)
		{6, 6, 24}, // (6,6): 24 atoms (paper Sec. 4.1)
		{5, 5, 20},
		{10, 0, 40},
		{4, 2, 56},
	}
	for _, c := range cases {
		s, err := CNT(c.n, c.m, units.AngstromToBohr(4))
		if err != nil {
			t.Fatalf("CNT(%d,%d): %v", c.n, c.m, err)
		}
		if s.NumAtoms() != c.want {
			t.Errorf("CNT(%d,%d) has %d atoms, want %d", c.n, c.m, s.NumAtoms(), c.want)
		}
	}
}

func TestCNTPeriodLengths(t *testing.T) {
	// Zigzag period sqrt(3)*a, armchair period a.
	a := units.AngstromToBohr(2.46)
	zig, err := CNT(8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zig.Lz-math.Sqrt(3)*a) > 1e-9 {
		t.Errorf("zigzag period %g, want %g", zig.Lz, math.Sqrt(3)*a)
	}
	arm, err := CNT(6, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arm.Lz-a) > 1e-9 {
		t.Errorf("armchair period %g, want %g", arm.Lz, a)
	}
}

func TestCNTBondLengths(t *testing.T) {
	// Every atom must have exactly 3 neighbours at about 1.42 A (allowing a
	// few percent curvature distortion), counting z-periodic images.
	s, err := CNT(8, 0, units.AngstromToBohr(4))
	if err != nil {
		t.Fatal(err)
	}
	bond := units.AngstromToBohr(1.42)
	for i, ai := range s.Atoms {
		n := 0
		for j, aj := range s.Atoms {
			if i == j {
				continue
			}
			for _, dz := range []float64{-s.Lz, 0, s.Lz} {
				d := dist(ai, aj, dz)
				if d < bond*1.1 {
					if d < bond*0.85 {
						t.Fatalf("atoms %d,%d too close: %g bohr", i, j, d)
					}
					n++
				}
			}
		}
		if n != 3 {
			t.Errorf("atom %d has %d bonded neighbours, want 3", i, n)
		}
	}
}

func dist(a, b Atom, dz float64) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	dzz := a.Z - (b.Z + dz)
	return math.Sqrt(dx*dx + dy*dy + dzz*dzz)
}

func TestRepeatBuildsPaperSupercells(t *testing.T) {
	s, err := CNT(8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := Repeat(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s32.NumAtoms() != 1024 {
		t.Errorf("32x supercell has %d atoms, want 1024 (paper medium system)", s32.NumAtoms())
	}
	s320, err := Repeat(s, 320)
	if err != nil {
		t.Fatal(err)
	}
	if s320.NumAtoms() != 10240 {
		t.Errorf("320x supercell has %d atoms, want 10240 (paper large system)", s320.NumAtoms())
	}
	if math.Abs(s32.Lz-32*s.Lz) > 1e-9 {
		t.Error("supercell Lz wrong")
	}
}

func TestBNDopeDeterministicAndBalanced(t *testing.T) {
	s, err := CNT(8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Repeat(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	doped, err := BNDope(sc, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if doped.CountSpecies("B") != 8 || doped.CountSpecies("N") != 8 {
		t.Fatalf("B=%d N=%d, want 8 each", doped.CountSpecies("B"), doped.CountSpecies("N"))
	}
	if doped.CountSpecies("C") != sc.NumAtoms()-16 {
		t.Fatalf("C count wrong: %d", doped.CountSpecies("C"))
	}
	// Determinism.
	doped2, err := BNDope(sc, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range doped.Atoms {
		if doped.Atoms[i].Species != doped2.Atoms[i].Species {
			t.Fatal("BNDope not deterministic for equal seeds")
		}
	}
	// Different seed gives a different pattern (overwhelmingly likely).
	doped3, err := BNDope(sc, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range doped.Atoms {
		if doped.Atoms[i].Species != doped3.Atoms[i].Species {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical doping")
	}
	// Original untouched.
	if sc.CountSpecies("B") != 0 {
		t.Error("BNDope mutated its input")
	}
	if _, err := BNDope(s, 1000, 1); err == nil {
		t.Error("over-doping should fail")
	}
}

func TestBundle7(t *testing.T) {
	tube, err := CNT(8, 0, units.AngstromToBohr(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bundle7(tube, units.AngstromToBohr(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.NumAtoms() != 7*32 {
		t.Fatalf("7-bundle has %d atoms, want 224 (7x32, paper Sec. 5)", b.NumAtoms())
	}
	// No atom pair from different tubes closer than a bond length.
	minD := math.Inf(1)
	for i := 0; i < 32; i++ {
		for j := 32; j < b.NumAtoms(); j++ {
			if d := dist(b.Atoms[i], b.Atoms[j], 0); d < minD {
				minD = d
			}
		}
	}
	if minD < units.AngstromToBohr(2.5) {
		t.Errorf("inter-tube clash: min distance %g angstrom", units.BohrToAngstrom(minD))
	}
}

func TestCrystallineBundle(t *testing.T) {
	tube, err := CNT(8, 0, units.AngstromToBohr(4))
	if err != nil {
		t.Fatal(err)
	}
	c, err := CrystallineBundle(tube)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumAtoms() != 64 {
		t.Fatalf("crystalline bundle has %d atoms, want 64 (2x32, paper Sec. 5)", c.NumAtoms())
	}
	if math.Abs(c.Ly-math.Sqrt(3)*c.Lx) > 1e-9 {
		t.Errorf("cell aspect Ly/Lx = %g, want sqrt(3)", c.Ly/c.Lx)
	}
	for i, a := range c.Atoms {
		if a.X < 0 || a.X >= c.Lx || a.Y < 0 || a.Y >= c.Ly {
			t.Errorf("atom %d outside the periodic cell: (%g,%g)", i, a.X, a.Y)
		}
	}
}

func TestWriteXYZ(t *testing.T) {
	s, err := AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("XYZ has %d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "4") {
		t.Errorf("first line %q, want atom count", lines[0])
	}
	if !strings.Contains(lines[1], "Lattice=") {
		t.Errorf("missing lattice header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "Al") {
		t.Errorf("atom line %q", lines[2])
	}
}

func TestCNTInvalid(t *testing.T) {
	if _, err := CNT(0, 0, 1); err == nil {
		t.Error("CNT(0,0) should fail")
	}
	if _, err := CNT(4, 5, 1); err == nil {
		t.Error("m > n should fail")
	}
}
