package fingerprint

import (
	"testing"

	"cbs/internal/core"
)

// TestGoldenFingerprints pins the digest of fixed inputs. These values are
// load-bearing: existing sweep journals embed them in their headers, so a
// change here means every deployed checkpoint is orphaned. If the hashed
// material must change, bump the domain string ("cbs-sweep/v1") and the
// journal version together, and regenerate these constants.
func TestGoldenFingerprints(t *testing.T) {
	desc := "al|grid=6x6x8|N=288|a=7.65339"
	cases := []struct {
		name string
		got  string
		want string
	}{
		{
			name: "default options, three energies",
			got:  Key(desc, []float64{-0.25, 0, 0.25}, core.DefaultOptions()),
			want: "57f21d55743e4262",
		},
		{
			name: "zero values",
			got:  Key("", nil, core.Options{}),
			want: "c4135b83cf02a120",
		},
		{
			name: "single solve",
			got:  Solve(desc, 0.125, core.DefaultOptions()),
			want: "9d7d68e62ec8b1ad",
		},
		{
			// /v1/transport jobs and their checkpoint journals key on this;
			// the postDesc literal is negf.Spec.PostDesc for a bare 3-cell
			// device under default NEGF options.
			name: "transport",
			got: Transport(desc, []float64{-0.25, 0, 0.25}, core.DefaultOptions(),
				"cells=3 eta=1.0000000000000001e-09 ptol=0.0001"),
			want: "ed49fdec11246dfb",
		},
		{
			// Job logs stamp this into their header; a change orphans every
			// deployed job log on restart.
			name: "operator identity",
			got:  Operator(desc),
			want: "e8f99e21c4460168",
		},
		{
			name: "empty operator identity",
			got:  Operator(""),
			want: "c1f58555e4c1f62c",
		},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: fingerprint %s, want %s (STABILITY BREAK: existing journals will refuse to resume)", c.name, c.got, c.want)
		}
	}
}

// TestSolveIsOneElementSweep pins the cache/journal key unification: a
// single-energy solve and a one-element sweep share a fingerprint.
func TestSolveIsOneElementSweep(t *testing.T) {
	opts := core.DefaultOptions()
	if Solve("d", 0.5, opts) != Key("d", []float64{0.5}, opts) {
		t.Fatal("Solve(e) != Key([e])")
	}
}

// TestFieldSensitivity verifies that every result-affecting input perturbs
// the digest (no field is dropped from the hash), and that the excluded
// fields — the parallel layout and the chaos injector — do not.
func TestFieldSensitivity(t *testing.T) {
	desc := "op"
	es := []float64{-0.1, 0.2}
	base := core.DefaultOptions()
	ref := Key(desc, es, base)

	mutants := []struct {
		name string
		key  string
	}{
		{"desc", Key("op2", es, base)},
		{"energy value", Key(desc, []float64{-0.1, 0.2000000001}, base)},
		{"energy count", Key(desc, []float64{-0.1}, base)},
		{"energy order", Key(desc, []float64{0.2, -0.1}, base)},
		{"Nint", Key(desc, es, with(base, func(o *core.Options) { o.Nint *= 2 }))},
		{"Nmm", Key(desc, es, with(base, func(o *core.Options) { o.Nmm++ }))},
		{"Nrh", Key(desc, es, with(base, func(o *core.Options) { o.Nrh++ }))},
		{"Delta", Key(desc, es, with(base, func(o *core.Options) { o.Delta = 1e-12 }))},
		{"LambdaMin", Key(desc, es, with(base, func(o *core.Options) { o.LambdaMin = 0.4 }))},
		{"BiCGTol", Key(desc, es, with(base, func(o *core.Options) { o.BiCGTol = 1e-8 }))},
		{"MaxIter", Key(desc, es, with(base, func(o *core.Options) { o.MaxIter = 77 }))},
		{"ResidualTol", Key(desc, es, with(base, func(o *core.Options) { o.ResidualTol = 1e-6 }))},
		{"LoadBalanceStop", Key(desc, es, with(base, func(o *core.Options) { o.LoadBalanceStop = true }))},
		{"Seed", Key(desc, es, with(base, func(o *core.Options) { o.Seed = 2 }))},
		{"AutoExpand", Key(desc, es, with(base, func(o *core.Options) { o.AutoExpand = true }))},
		{"MaxExpand", Key(desc, es, with(base, func(o *core.Options) { o.MaxExpand = 3 }))},
		{"Precision mixed", Key(desc, es, with(base, func(o *core.Options) { o.Precision = core.PrecisionMixed }))},
	}
	seen := map[string]string{ref: "base"}
	for _, m := range mutants {
		if m.key == ref {
			t.Errorf("mutating %s did not change the fingerprint", m.name)
		}
		if prev, dup := seen[m.key]; dup {
			t.Errorf("fingerprint collision between %s and %s", m.name, prev)
		}
		seen[m.key] = m.name
	}

	// Excluded inputs: the digest must be identical across worker layouts
	// (a journal resumes on any worker count).
	par := base
	par.Parallel = core.Parallel{Top: 4, Mid: 2, Ndm: 2}
	if Key(desc, es, par) != ref {
		t.Error("Parallel layout leaked into the fingerprint")
	}
	// The kernel layout is scheduling, not identity: both layouts produce
	// bit-identical float64 results, so neither may perturb the digest.
	for _, k := range []string{core.KernelsAoS, core.KernelsSoA} {
		kv := base
		kv.Kernels = k
		if Key(desc, es, kv) != ref {
			t.Errorf("Kernels %q leaked into the fingerprint", k)
		}
	}
	// Explicit full precision is the default spelled out; it must not fork
	// identity from the empty string (append-only extension contract).
	pv := base
	pv.Precision = core.PrecisionComplex128
	if Key(desc, es, pv) != ref {
		t.Error("explicit default Precision changed the fingerprint")
	}
}

// with copies o and applies one mutation.
func with(o core.Options, f func(*core.Options)) core.Options {
	f(&o)
	return o
}
