// Package fingerprint derives the stable identity of a CBS computation:
// a 64-bit FNV-1a digest over the operator descriptor, the energy list,
// and every result-affecting solver option. The digest is the shared key
// scheme of the durability and serving layers — the sweep checkpoint
// journal refuses to resume under a changed fingerprint, and the result
// cache (internal/rescache) uses the same key so a journaled sweep and a
// served solve of the same physics always agree on identity.
//
// The parallel layout (Options.Parallel) and the chaos injector are
// deliberately excluded: worker counts only reschedule the same
// arithmetic, so a sweep checkpointed on 8 workers may resume on 2, and
// fault injection is a test-harness concern, not part of the
// computation's identity.
//
// Stability contract: the digest of a given (descriptor, energies,
// options) triple is pinned by golden tests and must never change for the
// "cbs-sweep/v1" domain — existing journals resume against it. Any
// incompatible change to the hashed material must bump the domain string
// (and with it the journal version).
package fingerprint

import (
	"fmt"
	"hash/fnv"
	"strings"

	"cbs/internal/core"
)

// Key digests everything that determines a computation's per-energy
// results: the operator descriptor supplied by the caller, the full
// energy list, and the result-affecting solver options. It returns 16
// lowercase hex digits.
func Key(operatorDesc string, es []float64, opts core.Options) string {
	var sb strings.Builder
	sb.WriteString("cbs-sweep/v1\x00")
	sb.WriteString(operatorDesc)
	sb.WriteByte(0)
	fmt.Fprintf(&sb, "nint=%d nmm=%d nrh=%d delta=%.17g lmin=%.17g tol=%.17g maxiter=%d rtol=%.17g balance=%t seed=%d expand=%t maxexpand=%d",
		opts.Nint, opts.Nmm, opts.Nrh, opts.Delta, opts.LambdaMin,
		opts.BiCGTol, opts.MaxIter, opts.ResidualTol, opts.LoadBalanceStop,
		opts.Seed, opts.AutoExpand, opts.MaxExpand)
	// Append-only extension (preserves every pre-existing digest): the
	// precision is hashed only when it departs from the full-precision
	// default, because mixed arithmetic changes the numbers. The kernel
	// layout (Options.Kernels) is deliberately NOT hashed — the SoA float64
	// path is bit-identical to AoS, so layout, like the parallel shape, is
	// scheduling rather than identity.
	if p := opts.Precision; p != "" && p != core.PrecisionComplex128 {
		fmt.Fprintf(&sb, " precision=%s", p)
	}
	sb.WriteByte(0)
	for _, e := range es {
		fmt.Fprintf(&sb, "%.17g,", e)
	}
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Solve is the fingerprint of a single-energy solve: by construction a
// one-element sweep, so a cached solve and a one-element journal share a
// key.
func Solve(operatorDesc string, e float64, opts core.Options) string {
	return Key(operatorDesc, []float64{e}, opts)
}

// Transport digests a transport request: the sweep identity (operator,
// energies, solver options — via Key, so the CBS half of the fingerprint
// is shared with plain sweeps) plus the NEGF post-processing descriptor
// (negf.Spec.PostDesc: device geometry, broadening, classification
// tolerance). The serving layer keys /v1/transport jobs and their
// checkpoint journals with it. Same stability contract as Key: pinned by
// golden test, bump the domain string on any incompatible change.
func Transport(operatorDesc string, es []float64, opts core.Options, postDesc string) string {
	h := fnv.New64a()
	h.Write([]byte("cbs-transport/v1\x00" + Key(operatorDesc, es, opts) + "\x00" + postDesc))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Operator digests the operator descriptor alone: the identity of the
// served physics independent of any particular request. The job log
// (internal/jobs) stamps this into its header so a restarted server
// refuses to re-adopt jobs recorded against a different model — the same
// guard the sweep journal applies per-sweep, lifted to the whole store.
// Same stability contract as Key: pinned by golden test, bump the domain
// string on any incompatible change.
func Operator(operatorDesc string) string {
	h := fnv.New64a()
	h.Write([]byte("cbs-operator/v1\x00" + operatorDesc))
	return fmt.Sprintf("%016x", h.Sum64())
}
