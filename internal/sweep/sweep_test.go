package sweep

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/contour"
	"cbs/internal/core"
	"cbs/internal/linsolve"
)

// testOptions are small, recognizable solver parameters for the fake-solver
// tests: Nrh*Nmm = 12 is the saturation rank.
func testOptions() core.Options {
	o := core.DefaultOptions()
	o.Nint = 8
	o.Nmm = 4
	o.Nrh = 3
	o.BiCGTol = 1e-10
	o.Seed = 42
	return o
}

// okResult is a fake unsaturated solve result.
func okResult(e float64, opts core.Options) *core.Result {
	return &core.Result{
		Energy: e,
		Rank:   opts.Nrh*opts.Nmm - 1,
		Pairs: []core.Eigenpair{
			{Lambda: complex(0.8, 0), K: complex(0.3, 0), Residual: 1e-11},
		},
	}
}

// indexOf recovers the energy index from the fake energies 0, 1, 2, ...
func indexOf(e float64) int { return int(e) }

func testEnergies(n int) []float64 {
	es := make([]float64, n)
	for i := range es {
		es[i] = float64(i)
	}
	return es
}

// TestSweepAllOK: the trivial sweep — every energy solves first try.
func TestSweepAllOK(t *testing.T) {
	var calls atomic.Int64
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		return okResult(e, opts), nil
	}
	es := testEnergies(4)
	report, err := Run(context.Background(), solve, es, testOptions(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK != 4 || report.Degraded+report.Failed+report.Skipped != 0 || report.Attempts != 4 {
		t.Fatalf("report = %+v, want 4 OK in 4 attempts", report)
	}
	if calls.Load() != 4 {
		t.Errorf("solver called %d times, want 4", calls.Load())
	}
	for i, er := range report.Results {
		if er.Index != i || er.Energy != es[i] || er.Status != StatusOK || er.Result == nil {
			t.Errorf("result %d malformed: %+v", i, er)
		}
	}
	if got := report.Completed(); len(got) != 4 {
		t.Errorf("Completed() returned %d results, want 4", len(got))
	}
}

// TestSweepToleranceLadder: linsolve.ErrNoConvergence must loosen BiCGTol
// x100 on the retry, and a success bought that way is Degraded.
func TestSweepToleranceLadder(t *testing.T) {
	base := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.BiCGTol <= base.BiCGTol {
			return nil, fmt.Errorf("stagnated: %w", linsolve.ErrNoConvergence)
		}
		if opts.BiCGTol != 100*base.BiCGTol {
			return nil, fmt.Errorf("unexpected tolerance %g", opts.BiCGTol)
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusDegraded {
		t.Errorf("status = %s, want degraded (tolerance was loosened)", er.Status)
	}
	if er.Attempts != 2 || len(er.Escalations) != 1 {
		t.Errorf("attempts = %d, escalations = %v; want 2 attempts, 1 rung", er.Attempts, er.Escalations)
	}
}

// TestSweepPrecisionEscalation: under Precision "mixed",
// linsolve.ErrNoConvergence must first escalate to full complex128
// arithmetic — and a success at full precision is a clean OK, not
// Degraded, because no accuracy was given up. The tolerance ladder only
// engages if full precision stagnates too.
func TestSweepPrecisionEscalation(t *testing.T) {
	base := testOptions()
	base.Precision = core.PrecisionMixed
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.Precision == core.PrecisionMixed {
			return nil, fmt.Errorf("refinement stagnated: %w", linsolve.ErrNoConvergence)
		}
		if opts.BiCGTol != base.BiCGTol {
			return nil, fmt.Errorf("tolerance was loosened to %g before precision escalation", opts.BiCGTol)
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusOK {
		t.Errorf("status = %s, want ok (full precision is not a degradation)", er.Status)
	}
	if er.Attempts != 2 || len(er.Escalations) != 1 {
		t.Fatalf("attempts = %d, escalations = %v; want 2 attempts, 1 rung", er.Attempts, er.Escalations)
	}
	if er.Escalations[0] != "precision mixed->complex128 (no convergence)" {
		t.Errorf("escalation = %q", er.Escalations[0])
	}
}

// TestSweepPrecisionThenToleranceLadder: when full precision also
// stagnates, the tolerance ladder takes over on the rungs after the
// precision escalation, and the result is Degraded as usual.
func TestSweepPrecisionThenToleranceLadder(t *testing.T) {
	base := testOptions()
	base.Precision = core.PrecisionMixed
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.Precision == core.PrecisionMixed || opts.BiCGTol <= base.BiCGTol {
			return nil, fmt.Errorf("stagnated: %w", linsolve.ErrNoConvergence)
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusDegraded {
		t.Errorf("status = %s, want degraded (tolerance was loosened)", er.Status)
	}
	if er.Attempts != 3 || len(er.Escalations) != 2 {
		t.Fatalf("attempts = %d, escalations = %v; want 3 attempts, 2 rungs", er.Attempts, er.Escalations)
	}
}

// TestSweepQuadratureEscalation: contour.ErrTooManyDropped must double Nint
// on the retry; succeeding with more quadrature points is a clean OK (no
// accuracy was given up).
func TestSweepQuadratureEscalation(t *testing.T) {
	base := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.Nint < 2*base.Nint {
			return nil, contour.ErrTooManyDropped
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusOK || er.Attempts != 2 || len(er.Escalations) != 1 {
		t.Errorf("got %+v, want OK after one nint doubling", er)
	}
}

// TestSweepRankSaturationEscalation: a rank-saturated solve (rank ==
// Nrh*Nmm) must trigger an Nrh doubling; if the doubled run is clean the
// energy is OK and the final result is the unsaturated one.
func TestSweepRankSaturationEscalation(t *testing.T) {
	base := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		res := okResult(e, opts)
		if opts.Nrh == base.Nrh {
			res.Rank = opts.Nrh * opts.Nmm // saturated
		}
		return res, nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusOK {
		t.Errorf("status = %s, want ok (the doubled run was clean)", er.Status)
	}
	if er.Attempts != 2 || len(er.Escalations) != 1 {
		t.Errorf("attempts = %d, escalations = %v; want 2 attempts, 1 nrh rung", er.Attempts, er.Escalations)
	}
	if er.Result.Rank >= 2*base.Nrh*base.Nmm {
		t.Errorf("final result still saturated: rank %d", er.Result.Rank)
	}
}

// TestSweepSaturationExhausted: an energy that saturates at every Nrh rung
// keeps the last saturated result and reports Degraded — data with a caveat
// beats no data.
func TestSweepSaturationExhausted(t *testing.T) {
	var calls atomic.Int64
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		res := okResult(e, opts)
		res.Rank = opts.Nrh * opts.Nmm
		return res, nil
	}
	base := testOptions()
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{MaxNrhDoublings: 2})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusDegraded || er.Result == nil {
		t.Fatalf("got %+v, want a degraded saturated result", er)
	}
	if calls.Load() != 3 { // base, x2, x4
		t.Errorf("solver called %d times, want 3 (two doublings)", calls.Load())
	}
	if er.Result.Rank != 4*base.Nrh*base.Nmm {
		t.Errorf("kept rank %d, want the final (largest) saturated subspace %d", er.Result.Rank, 4*base.Nrh*base.Nmm)
	}
}

// TestSweepSubspaceCapAfterEscalation: when the doubled Nrh overflows the
// problem (core.ErrSubspaceTooLarge) the best saturated result is kept as
// Degraded instead of failing the energy.
func TestSweepSubspaceCapAfterEscalation(t *testing.T) {
	base := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.Nrh > base.Nrh {
			return nil, core.ErrSubspaceTooLarge
		}
		res := okResult(e, opts)
		res.Rank = opts.Nrh * opts.Nmm
		return res, nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusDegraded || er.Result == nil || er.Result.Rank != base.Nrh*base.Nmm {
		t.Fatalf("got %+v, want the saturated base-Nrh result kept as degraded", er)
	}
}

// TestSweepTerminalErrors: a first-attempt ErrSubspaceTooLarge or
// ErrBadOptions means the caller's parameterization is wrong — fail
// immediately, no retry.
func TestSweepTerminalErrors(t *testing.T) {
	for _, terminal := range []error{core.ErrSubspaceTooLarge, core.ErrBadOptions} {
		var calls atomic.Int64
		solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return nil, terminal
		}
		report, err := Run(context.Background(), solve, testEnergies(1), testOptions(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		er := report.Results[0]
		if er.Status != StatusFailed || !errors.Is(er.Err, terminal) {
			t.Errorf("%v: got status %s err %v, want immediate failure", terminal, er.Status, er.Err)
		}
		if calls.Load() != 1 {
			t.Errorf("%v: solver called %d times, want 1 (terminal)", terminal, calls.Load())
		}
	}
}

// TestSweepBreakdownReseed: linsolve.ErrBreakdown must retry with a
// different probe seed.
func TestSweepBreakdownReseed(t *testing.T) {
	base := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if opts.Seed == base.Seed {
			return nil, linsolve.ErrBreakdown
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(1), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusOK || er.Attempts != 2 {
		t.Errorf("got %+v, want OK on the reseeded second attempt", er)
	}
}

// TestSweepPartialResults: one unrecoverable energy must come back Failed
// with its terminal error while every other energy is OK; the sweep itself
// returns no error. This is the acceptance criterion: never an empty result
// set because one energy is pathological.
func TestSweepPartialResults(t *testing.T) {
	cause := errors.New("operator blew up")
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if indexOf(e) == 2 {
			return nil, cause
		}
		return okResult(e, opts), nil
	}
	report, err := Run(context.Background(), solve, testEnergies(5), testOptions(), Config{Workers: 2, MaxAttempts: 3})
	if err != nil {
		t.Fatalf("per-energy failure leaked into the Run error: %v", err)
	}
	if report.OK != 4 || report.Failed != 1 {
		t.Fatalf("report = %+v, want 4 OK / 1 failed", report)
	}
	er := report.Results[2]
	if er.Status != StatusFailed || !errors.Is(er.Err, cause) || er.Attempts != 3 {
		t.Errorf("failed energy: %+v, want 3 attempts ending in the cause", er)
	}
	if fs := report.Failures(); len(fs) != 1 || fs[0].Index != 2 {
		t.Errorf("Failures() = %+v", fs)
	}
}

// TestSweepResumeRestoresWithoutResolving: a completed journal restores
// every energy with zero solver calls; a mismatched fingerprint is refused.
func TestSweepResumeRestoresWithoutResolving(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	es := testEnergies(3)
	opts := testOptions()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return okResult(e, opts), nil
	}
	cfg := Config{CheckpointPath: path, OperatorDesc: "fake-op"}
	if _, err := Run(context.Background(), solve, es, opts, cfg); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	counting := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		return okResult(e, opts), nil
	}
	cfg.Resume = true
	report, err := Run(context.Background(), counting, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("resume re-solved %d journaled energies", calls.Load())
	}
	if report.Restored != 3 || report.OK != 3 || report.Attempts != 0 {
		t.Errorf("report = %+v, want 3 restored OK with 0 attempts", report)
	}
	for i, er := range report.Results {
		if !er.FromJournal || er.Result == nil {
			t.Errorf("energy %d not restored from the journal: %+v", i, er)
		}
	}

	// Same journal, different solver parameters: refuse to resume.
	o2 := opts
	o2.Nint *= 2
	if _, err := Run(context.Background(), counting, es, o2, cfg); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("resume under changed options: err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestSweepRetryFailed: a Failed journal record is restored verbatim by
// default; with RetryFailed the energy is re-solved.
func TestSweepRetryFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	es := testEnergies(2)
	opts := testOptions()
	flaky := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if indexOf(e) == 1 {
			return nil, errors.New("transient machine trouble")
		}
		return okResult(e, opts), nil
	}
	cfg := Config{CheckpointPath: path, OperatorDesc: "fake-op", MaxAttempts: 2}
	report, err := Run(context.Background(), flaky, es, opts, cfg)
	if err != nil || report.Failed != 1 {
		t.Fatalf("seed sweep: err %v, report %+v", err, report)
	}

	healthy := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return okResult(e, opts), nil
	}
	cfg.Resume = true
	report, err = Run(context.Background(), healthy, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 || !report.Results[1].FromJournal {
		t.Errorf("default resume must restore the failure verbatim: %+v", report.Results[1])
	}

	cfg.RetryFailed = true
	report, err = Run(context.Background(), healthy, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || report.OK != 2 || report.Results[1].FromJournal {
		t.Errorf("RetryFailed resume must re-solve the failed energy: %+v", report.Results[1])
	}
}

// TestSweepCancellation: cancelling mid-sweep marks the unreached energies
// Skipped, returns a wrapped ctx error, and leaves the completed energies
// checkpointed in the journal.
func TestSweepCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	es := testEnergies(4)
	opts := testOptions()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if indexOf(e) == 1 {
			cancel() // the "SIGINT" lands while energy 1 is in flight
		}
		return okResult(e, opts), nil
	}
	cfg := Config{CheckpointPath: path, OperatorDesc: "fake-op"}
	report, err := Run(ctx, solve, es, opts, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// Energies 0 and 1 completed (the cancel lands after energy 1's solve
	// returns); 2 and 3 must be skipped, not silently dropped.
	if report.Skipped != 2 || report.OK != 2 {
		t.Fatalf("report = %+v, want 2 OK / 2 skipped", report)
	}
	for _, i := range []int{2, 3} {
		if report.Results[i].Status != StatusSkipped {
			t.Errorf("energy %d: status %s, want skipped", i, report.Results[i].Status)
		}
	}

	// The journal holds exactly the completed energies, ready for resume.
	fp := Fingerprint(cfg.OperatorDesc, es, opts)
	recs, lerr := Load(path, fp)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records after cancellation, want 2", len(recs))
	}

	// Resuming finishes the job without re-solving the first two.
	var calls atomic.Int64
	counting := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		return okResult(e, opts), nil
	}
	cfg.Resume = true
	report, err = Run(context.Background(), counting, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK != 4 || report.Restored != 2 || calls.Load() != 2 {
		t.Errorf("resume: report %+v with %d solves, want 2 restored + 2 solved", report, calls.Load())
	}
}

// TestSweepChaosEnergyFault: an injected hard fault on one energy exhausts
// its retries and fails only that energy — and because the fault is
// deterministic in (seed, index), the failure is reproducible.
func TestSweepChaosEnergyFault(t *testing.T) {
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return okResult(e, opts), nil
	}
	cfg := Config{
		Workers: 2,
		Chaos:   chaos.New(7, chaos.Config{EnergyFault: 1, Energies: []int{1}}),
	}
	report, err := Run(context.Background(), solve, testEnergies(3), testOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 || report.OK != 2 {
		t.Fatalf("report = %+v, want the faulted energy failed and the rest OK", report)
	}
	if er := report.Results[1]; !errors.Is(er.Err, chaos.ErrInjected) || er.Attempts != 3 {
		t.Errorf("faulted energy: %+v, want 3 exhausted attempts on the injected fault", er)
	}
}

// TestSweepCheckpointFaultStopsSweep: a failed checkpoint append is
// sweep-fatal — the run reports ErrCheckpoint rather than keep producing
// results it cannot protect.
func TestSweepCheckpointFaultStopsSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return okResult(e, opts), nil
	}
	cfg := Config{
		CheckpointPath: path,
		OperatorDesc:   "fake-op",
		Chaos:          chaos.New(7, chaos.Config{CheckpointFault: 1, Energies: []int{1}}),
	}
	report, err := Run(context.Background(), solve, testEnergies(4), testOptions(), cfg)
	if !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("err = %v, want ErrCheckpoint", err)
	}
	if report.Skipped == 0 {
		t.Error("checkpoint failure did not stop the remaining energies")
	}
}

// TestSweepOnEnergyProgress: the progress callback fires once per
// terminal energy — for solved, failed, and journal-restored energies
// alike — with the energy's real outcome, and never for skips.
func TestSweepOnEnergyProgress(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	es := testEnergies(4)
	failing := errors.New("persistent fault")
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if indexOf(e) == 2 {
			return nil, failing
		}
		return okResult(e, opts), nil
	}

	var mu sync.Mutex
	seen := map[int][]EnergyResult{}
	record := func(er EnergyResult) {
		mu.Lock()
		seen[er.Index] = append(seen[er.Index], er)
		mu.Unlock()
	}
	cfg := Config{Workers: 2, MaxAttempts: 2, CheckpointPath: path, OnEnergy: record}
	if _, err := Run(context.Background(), solve, es, testOptions(), cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if len(seen[i]) != 1 {
			t.Fatalf("energy %d reported %d times, want 1", i, len(seen[i]))
		}
	}
	if seen[2][0].Status != StatusFailed {
		t.Errorf("energy 2 reported %s, want failed", seen[2][0].Status)
	}
	if seen[1][0].Status != StatusOK || seen[1][0].FromJournal {
		t.Errorf("energy 1 reported %+v, want fresh OK", seen[1][0])
	}

	// Resume: restored energies are reported too, flagged FromJournal;
	// the failed energy re-solves (RetryFailed) and reports fresh.
	seen = map[int][]EnergyResult{}
	cfg.Resume = true
	cfg.RetryFailed = true
	healed := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return okResult(e, opts), nil
	}
	if _, err := Run(context.Background(), healed, es, testOptions(), cfg); err != nil {
		t.Fatal(err)
	}
	restored, fresh := 0, 0
	for i := 0; i < 4; i++ {
		if len(seen[i]) != 1 {
			t.Fatalf("resume: energy %d reported %d times, want 1", i, len(seen[i]))
		}
		if seen[i][0].FromJournal {
			restored++
		} else {
			fresh++
		}
	}
	if restored != 3 || fresh != 1 {
		t.Errorf("resume reported %d restored + %d fresh, want 3 + 1", restored, fresh)
	}
}

// TestSweepTransportRetry: the transport sentinels (ErrPeerLost,
// ErrPartition, ErrFrameCorrupt, ErrClosed) mean the distributed fabric
// died under the solve, not that the physics failed — the ladder retries
// plainly (the caller rebuilds the fabric between attempts) and a clean
// second attempt is OK, not Degraded.
func TestSweepTransportRetry(t *testing.T) {
	for _, transient := range []error{comm.ErrPeerLost, comm.ErrPartition, comm.ErrFrameCorrupt, comm.ErrClosed} {
		var calls atomic.Int64
		solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("halo exchange: %w", transient)
			}
			return okResult(e, opts), nil
		}
		report, err := Run(context.Background(), solve, testEnergies(1), testOptions(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		er := report.Results[0]
		if er.Status != StatusOK || er.Attempts != 2 {
			t.Errorf("%v: status %s after %d attempts (err %v), want OK on the retry", transient, er.Status, er.Attempts, er.Err)
		}
		if len(er.Escalations) != 1 {
			t.Errorf("%v: escalations %v, want the one fabric-rebuilt rung", transient, er.Escalations)
		}
	}
}

// TestSweepShapeMismatchTerminal: comm.ErrShapeMismatch is a protocol bug
// (ranks disagree about vector lengths), not a transient fault — retrying
// would fail identically, so the energy fails immediately and typed.
func TestSweepShapeMismatchTerminal(t *testing.T) {
	var calls atomic.Int64
	solve := func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		return nil, fmt.Errorf("allreduce: %w", comm.ErrShapeMismatch)
	}
	report, err := Run(context.Background(), solve, testEnergies(1), testOptions(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	er := report.Results[0]
	if er.Status != StatusFailed || !errors.Is(er.Err, comm.ErrShapeMismatch) {
		t.Errorf("status %s err %v, want immediate typed failure", er.Status, er.Err)
	}
	if calls.Load() != 1 {
		t.Errorf("solver called %d times, want 1 (terminal)", calls.Load())
	}
}
