package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/core"
)

// fakeResult builds a small deterministic solve result.
func fakeResult(e float64, n int) *core.Result {
	res := &core.Result{
		Energy:   e,
		Rank:     3,
		Sigma:    []float64{1, 0.5, 0.25, 1e-12},
		Expanded: 4,
		MatVecs:  100,
	}
	res.Diagnostics = core.Diagnostics{Nint: 8, Nrh: 4, ResidualBudget: 2.5e-11}
	for j := 0; j < 2; j++ {
		p := core.Eigenpair{
			Lambda:   complex(0.7+float64(j), -0.1*float64(j)),
			K:        complex(0.3, 0.02*float64(j+1)),
			Residual: 1e-9,
		}
		for i := 0; i < n; i++ {
			p.Psi = append(p.Psi, complex(float64(i)*0.125, e-float64(j)))
		}
		res.Pairs = append(res.Pairs, p)
	}
	return res
}

// TestResultRoundTrip: the journal projection of a result reproduces the
// fields the scan consumers read, bit-for-bit.
func TestResultRoundTrip(t *testing.T) {
	want := fakeResult(0.25, 5)
	got := EncodeResult(want).Decode()
	if got.Energy != want.Energy || got.Rank != want.Rank || got.Expanded != want.Expanded || got.MatVecs != want.MatVecs {
		t.Errorf("scalars drifted: %+v vs %+v", got, want)
	}
	if !reflect.DeepEqual(got.Sigma, want.Sigma) {
		t.Errorf("sigma drifted: %v vs %v", got.Sigma, want.Sigma)
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Errorf("pairs drifted")
	}
	if !reflect.DeepEqual(got.Diagnostics, want.Diagnostics) {
		t.Errorf("diagnostics drifted")
	}
	if EncodeResult(nil) != nil || (*ResultJSON)(nil).Decode() != nil {
		t.Error("nil results must project to nil")
	}
}

// TestJournalRoundTrip: records written through Append come back intact,
// through the JSON + CRC framing.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Index: 0, Energy: 0.1, Status: StatusOK, Attempts: 1, Result: EncodeResult(fakeResult(0.1, 4))},
		{Index: 1, Energy: 0.2, Status: StatusDegraded, Attempts: 2,
			Escalations: []string{"tol 1.0e-10->1.0e-08 (no convergence)"},
			Result:      EncodeResult(fakeResult(0.2, 4))},
		{Index: 2, Energy: 0.3, Status: StatusFailed, Attempts: 3, Error: "boom"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, recs)
	}
}

// TestJournalTornTail: a record cut mid-write (torn frame, no newline) must
// be dropped on load; intact earlier records survive.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	good := Record{Index: 0, Energy: 0.1, Status: StatusOK, Attempts: 1, Result: EncodeResult(fakeResult(0.1, 4))}
	if err := j.Append(good); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the crash: append half of a valid frame by hand.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := Resume(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	j2.SetChaos(chaos.New(1, chaos.Config{TornRecord: 1}))
	torn := Record{Index: 1, Energy: 0.2, Status: StatusOK, Attempts: 1, Result: EncodeResult(fakeResult(0.2, 4))}
	if err := j2.Append(torn); !errors.Is(err, ErrCheckpoint) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn append err = %v, want ErrCheckpoint wrapping chaos.ErrInjected", err)
	}
	j2.Close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(full) {
		t.Fatal("torn append wrote nothing; the test is vacuous")
	}

	recs, err := Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("torn record not dropped: %+v", recs)
	}

	// Resume must truncate the torn fragment (it has no terminator, so a
	// naive append would corrupt the next record too) and keep appending.
	j3, recs3, err := Resume(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 1 {
		t.Fatalf("resume loaded %d records, want 1", len(recs3))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(full)) {
		t.Fatalf("resume did not truncate the torn tail: size %d, want %d", fi.Size(), len(full))
	}
	resolved := Record{Index: 1, Energy: 0.2, Status: StatusOK, Attempts: 1, Result: EncodeResult(fakeResult(0.2, 4))}
	if err := j3.Append(resolved); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	recs, err = Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Index != 0 || recs[1].Index != 1 {
		t.Fatalf("re-solved record lost after torn-tail resume: %+v", recs)
	}
}

// TestJournalFingerprintMismatch: resuming under different options or a
// different operator must be refused.
func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := Resume(path, "fp-2"); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("resume with wrong fingerprint: err = %v, want ErrFingerprintMismatch", err)
	}
	if _, err := Load(path, "fp-2"); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("load with wrong fingerprint: err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestJournalBadHeader: a file that is not a sweep journal is refused.
func TestJournalBadHeader(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty":   "",
		"garbage": "not a journal\n",
		"json":    "{\"magic\":\"other\"}\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, "fp"); !errors.Is(err, ErrBadJournal) {
			t.Errorf("%s: err = %v, want ErrBadJournal", name, err)
		}
	}
}

// TestJournalCheckpointFault: an injected write fault surfaces as
// ErrCheckpoint without corrupting the file.
func TestJournalCheckpointFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := Create(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	j.SetChaos(chaos.New(1, chaos.Config{CheckpointFault: 1, Energies: []int{1}}))
	if err := j.Append(Record{Index: 0, Energy: 0.1, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Index: 1, Energy: 0.2, Status: StatusOK}); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("err = %v, want ErrCheckpoint", err)
	}
	j.Close()
	recs, err := Load(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("checkpoint fault corrupted the journal: %+v", recs)
	}
}

// TestFingerprintSensitivity: any result-affecting input changes the
// fingerprint; the parallel layout does not.
func TestFingerprintSensitivity(t *testing.T) {
	opts := core.DefaultOptions()
	es := []float64{0.1, 0.2}
	base := Fingerprint("op", es, opts)

	if Fingerprint("other-op", es, opts) == base {
		t.Error("operator change kept the fingerprint")
	}
	if Fingerprint("op", []float64{0.1, 0.3}, opts) == base {
		t.Error("energy change kept the fingerprint")
	}
	o2 := opts
	o2.Nrh *= 2
	if Fingerprint("op", es, o2) == base {
		t.Error("Nrh change kept the fingerprint")
	}
	o3 := opts
	o3.BiCGTol = 1e-8
	if Fingerprint("op", es, o3) == base {
		t.Error("tolerance change kept the fingerprint")
	}
	o4 := opts
	o4.Parallel = core.Parallel{Top: 4, Mid: 8, Ndm: 2}
	if Fingerprint("op", es, o4) != base {
		t.Error("parallel layout must not change the fingerprint (resume on any worker count)")
	}
}
