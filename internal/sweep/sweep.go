// Package sweep is the durable energy-sweep engine: the paper's headline
// workload is not one CBS solve but a scan of ~200 independent energies
// (Fig. 6, Fig. 11), and downstream transport analysis consumes the whole
// scan. The engine makes that workload survivable: every energy ends in a
// typed status instead of the first failure sinking the run, a bounded
// retry policy escalates solver parameters per failure class before giving
// up, and an append-only CRC-framed checkpoint journal makes a killed
// sweep resumable without re-solving completed energies.
//
// The escalation ladder, per energy (each rung bounded, each attempt a
// fresh solve on a copy of the base options, so the next energy always
// starts from the caller's parameters):
//
//   - Hankel rank saturation (rank == Nrh*Nmm): the moment subspace is too
//     small for the annulus spectrum — re-run with doubled Nrh, up to
//     MaxNrhDoublings, generalizing core's AutoExpand to the sweep layer.
//     If the doubling overflows the problem dimension the saturated result
//     is kept and the energy marked Degraded.
//   - contour.ErrTooManyDropped: graceful degradation discarded too many
//     quadrature nodes — retry with doubled Nint so the surviving rule
//     still resolves the contour.
//   - linsolve.ErrNoConvergence: the Krylov solves stagnated. Under
//     Precision "mixed" the first rung is terminal precision escalation —
//     retry the energy at full complex128 arithmetic (refinement
//     stagnation is a conditioning property the float32 inner solver
//     cannot iterate around, and full precision is not a degradation).
//     Otherwise retry on a looser-then-restored tolerance ladder (BiCGTol
//     x100 per rung); a success bought with a loosened tolerance is
//     reported Degraded.
//   - linsolve.ErrBreakdown surfacing past core's own recovery ladder:
//     retry with a reseeded probe block (a breakdown is a property of the
//     Krylov sequence, which the probe seeds).
//   - core.ErrBadOptions / first-attempt core.ErrSubspaceTooLarge: the
//     parameterization itself is wrong — terminal, no retry.
//   - anything else (including injected chaos faults): plain retry under
//     deterministic exponential backoff until MaxAttempts is spent.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/contour"
	"cbs/internal/core"
	"cbs/internal/linsolve"
)

// Status is the terminal state of one sweep energy.
type Status string

const (
	// StatusOK is a clean solve within the caller's parameters.
	StatusOK Status = "ok"
	// StatusDegraded is a completed solve that lost something on the way:
	// quadrature contributions dropped and renormalized, a tolerance rung
	// loosened, or a rank-saturated subspace accepted at the Nrh cap. The
	// result is usable; its diagnostics say what was given up.
	StatusDegraded Status = "degraded"
	// StatusFailed is an energy whose retry budget is spent: the terminal
	// error is recorded and the rest of the sweep is unaffected.
	StatusFailed Status = "failed"
	// StatusSkipped is an energy never attempted (or abandoned mid-retry)
	// because the sweep was canceled; it carries no journal record and
	// will be solved by a resume.
	StatusSkipped Status = "skipped"
)

// EnergyResult is the outcome of one energy.
type EnergyResult struct {
	Index       int
	Energy      float64 // hartree
	Status      Status
	Attempts    int      // solve attempts spent (0 for journal restores and skips)
	Escalations []string // ladder rungs taken, in order ("nrh 16->32", ...)
	FromJournal bool     // restored from a checkpoint record, not re-solved
	Result      *core.Result
	Err         error // terminal error (Failed), or ctx error (Skipped)
}

// Report aggregates a sweep: every energy's outcome in energy order plus
// the counts a caller branches on. A sweep with failures still returns the
// completed results — partial data is the point.
type Report struct {
	Results  []EnergyResult
	OK       int
	Degraded int
	Failed   int
	Skipped  int
	Restored int // energies restored from the journal
	Attempts int // solve attempts across the sweep (excluding restores)
}

// Completed returns the solve results of every OK and Degraded energy, in
// energy order.
func (r *Report) Completed() []*core.Result {
	out := make([]*core.Result, 0, r.OK+r.Degraded)
	for _, er := range r.Results {
		if er.Result != nil {
			out = append(out, er.Result)
		}
	}
	return out
}

// Failures returns the Failed energies.
func (r *Report) Failures() []EnergyResult {
	var out []EnergyResult
	for _, er := range r.Results {
		if er.Status == StatusFailed {
			out = append(out, er)
		}
	}
	return out
}

// SolveFunc is the per-energy solve the engine drives; cbs.Model adapts
// core.SolveContext, tests substitute fakes.
type SolveFunc func(ctx context.Context, e float64, opts core.Options) (*core.Result, error)

// Config parameterizes the engine.
type Config struct {
	// Workers is the number of concurrent energies (default 1).
	Workers int
	// MaxAttempts bounds the failed solve attempts per energy (default 3);
	// rank-saturation escalations are budgeted separately by
	// MaxNrhDoublings because a saturated solve is progress, not failure.
	MaxAttempts int
	// Backoff is the base of the deterministic exponential backoff
	// between retry attempts: attempt k waits Backoff * 2^(k-1). Zero
	// (the default) retries immediately.
	Backoff time.Duration
	// MaxNrhDoublings bounds the rank-saturation escalation (default 2);
	// it is a separate budget from MaxAttempts because a saturated solve
	// is progress, not failure.
	MaxNrhDoublings int

	// CheckpointPath, when non-empty, journals every completed energy to
	// this file. With Resume set an existing journal is loaded first and
	// its energies are restored instead of re-solved; a journal written
	// under a different fingerprint is refused (ErrFingerprintMismatch).
	CheckpointPath string
	Resume         bool
	// OperatorDesc identifies the operator in the journal fingerprint
	// (dimensions, lattice, grid — anything that changes the physics).
	OperatorDesc string
	// RetryFailed re-solves energies whose journal record is Failed
	// instead of restoring the failure.
	RetryFailed bool

	// Chaos optionally injects sweep-level faults (per-energy solve
	// faults, checkpoint write faults, torn records); nil in production.
	Chaos *chaos.Injector

	// OnEnergy, when non-nil, is called once per energy as it reaches a
	// terminal state — solved, restored from the journal, or failed — with
	// that energy's outcome. Sweep workers call it concurrently, so it
	// must be safe for concurrent use; the serving layer feeds per-energy
	// job progress from it. Skipped energies of a canceled sweep are not
	// reported (they never reached a terminal state of their own).
	OnEnergy func(EnergyResult)
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.MaxNrhDoublings < 0 {
		c.MaxNrhDoublings = 0
	} else if c.MaxNrhDoublings == 0 {
		c.MaxNrhDoublings = 2
	}
	return c
}

// Run executes the sweep: solve (or restore) every energy in es under the
// retry policy, journal each completed energy, and return the full
// per-energy report. The returned error is nil unless the sweep
// infrastructure itself failed (journal creation/append, fingerprint
// mismatch) or the context was canceled — per-energy solve failures are
// reported in the Report, never as a Run error. On cancellation every
// completed energy has already been checkpointed (each record is fsynced
// as it completes) and the report marks the remainder Skipped.
//
//cbs:cancellable
func Run(ctx context.Context, solve SolveFunc, es []float64, opts core.Options, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.normalize()
	report := &Report{Results: make([]EnergyResult, len(es))}
	for i, e := range es {
		report.Results[i] = EnergyResult{Index: i, Energy: e, Status: StatusSkipped}
	}

	var journal *Journal
	if cfg.CheckpointPath != "" {
		fp := Fingerprint(cfg.OperatorDesc, es, opts)
		var (
			recs []Record
			err  error
		)
		if cfg.Resume {
			journal, recs, err = Resume(cfg.CheckpointPath, fp)
		} else {
			journal, err = Create(cfg.CheckpointPath, fp)
		}
		if err != nil {
			return report, err
		}
		defer journal.Close()
		journal.SetChaos(cfg.Chaos)
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(es) {
				continue // stale index from a truncated energy list: ignore
			}
			if cfg.RetryFailed && rec.Status == StatusFailed {
				continue
			}
			er := rec.Restore()
			er.Attempts = 0 // restored, not re-solved
			er.FromJournal = true
			report.Results[rec.Index] = er
			if cfg.OnEnergy != nil {
				cfg.OnEnergy(er)
			}
		}
	}

	// The work list: every energy without a restored record.
	var todo []int
	for i := range es {
		if !report.Results[i].FromJournal {
			todo = append(todo, i)
		}
	}

	// A checkpoint failure is sweep-fatal: results the journal cannot
	// protect must not keep accumulating. The first one cancels the
	// remaining work; completed records stay valid.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex // guards ckptErr
		ckptErr error
	)
	jobs := make(chan int, len(todo))
	for _, i := range todo {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if sctx.Err() != nil {
					return
				}
				er := runEnergy(sctx, solve, i, es[i], opts, cfg)
				// One merge per energy: the slice write is per-index
				// disjoint, the journal append serializes internally.
				report.Results[i] = er
				if cfg.OnEnergy != nil && er.Status != StatusSkipped {
					cfg.OnEnergy(er)
				}
				if journal != nil && er.Status != StatusSkipped {
					if err := journal.Append(RecordOf(er)); err != nil {
						mu.Lock()
						if ckptErr == nil {
							ckptErr = err
						}
						mu.Unlock()
						cancel()
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	for _, er := range report.Results {
		switch er.Status {
		case StatusOK:
			report.OK++
		case StatusDegraded:
			report.Degraded++
		case StatusFailed:
			report.Failed++
		default:
			report.Skipped++
		}
		if er.FromJournal {
			report.Restored++
		}
		report.Attempts += er.Attempts
	}
	if ckptErr != nil {
		return report, ckptErr
	}
	if err := ctx.Err(); err != nil {
		return report, fmt.Errorf("sweep: canceled after %d of %d energies: %w",
			len(es)-report.Skipped, len(es), err)
	}
	return report, nil
}

// RecordOf projects an energy outcome into its journal (and fleet wire)
// record.
func RecordOf(er EnergyResult) Record {
	rec := Record{
		Index:       er.Index,
		Energy:      er.Energy,
		Status:      er.Status,
		Attempts:    er.Attempts,
		Escalations: er.Escalations,
		Result:      EncodeResult(er.Result),
	}
	if er.Err != nil {
		rec.Error = er.Err.Error()
	}
	return rec
}

// Restore is the inverse of RecordOf: it rebuilds an energy outcome from
// its serialized record. The original error chain is flattened to an
// opaque message — sentinels do not survive the journal or the fleet wire,
// by design (a restored failure is terminal, never re-classified).
func (rec Record) Restore() EnergyResult {
	er := EnergyResult{
		Index:       rec.Index,
		Energy:      rec.Energy,
		Status:      rec.Status,
		Attempts:    rec.Attempts,
		Escalations: rec.Escalations,
		Result:      rec.Result.Decode(),
	}
	if rec.Error != "" {
		er.Err = errors.New(rec.Error)
	}
	return er
}

// runEnergy drives one energy through the retry policy. It is the repo's
// error-classification ladder: every sentinel the solver stack can surface
// must be mapped to a retry, an escalation, or a terminal failure here.
//
//cbs:cancellable
//cbs:errladder core linsolve contour comm
func runEnergy(ctx context.Context, solve SolveFunc, i int, e float64, base core.Options, cfg Config) EnergyResult {
	er := EnergyResult{Index: i, Energy: e}
	aopts := base
	if cfg.Chaos != nil {
		aopts.Chaos = cfg.Chaos
	}
	var (
		saturated    *core.Result // best rank-saturated result so far
		nrhDoublings int
		tolLoosened  bool
		failures     int
		lastErr      error
	)
	// finish seals a completed solve; sat marks a rank-saturated subspace
	// accepted as-is (possibly missing annulus states).
	finish := func(res *core.Result, sat bool) EnergyResult {
		er.Result = res
		if res.Diagnostics.Degraded || tolLoosened || sat {
			er.Status = StatusDegraded
		} else {
			er.Status = StatusOK
		}
		return er
	}
	skip := func(err error) EnergyResult {
		er.Status = StatusSkipped
		er.Err = err
		return er
	}
	fail := func(err error) EnergyResult {
		er.Status = StatusFailed
		er.Err = err
		return er
	}
	for {
		if err := ctx.Err(); err != nil {
			return skip(err)
		}
		er.Attempts++
		var (
			res *core.Result
			err error
		)
		//cbs:chaossite sweep.energy
		if err = cfg.Chaos.EnergyFault(i); err == nil {
			res, err = solve(ctx, e, aopts)
		}
		if err == nil {
			sat := res.Rank >= aopts.Nrh*aopts.Nmm
			if sat && nrhDoublings < cfg.MaxNrhDoublings {
				// Rank saturation: the annulus holds at least as many
				// states as the moment space can represent, so some may
				// be missing. Keep the result and grow the probe block;
				// the escalation has its own budget (MaxNrhDoublings),
				// separate from the failure budget.
				saturated = res
				er.Escalations = append(er.Escalations, fmt.Sprintf("nrh %d->%d (rank saturated)", aopts.Nrh, 2*aopts.Nrh))
				aopts.Nrh *= 2
				nrhDoublings++
				continue
			}
			return finish(res, sat)
		}
		lastErr = err

		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return skip(err)
		case errors.Is(err, core.ErrSubspaceTooLarge):
			if saturated != nil {
				// The doubled probe block no longer fits the problem:
				// accept the best saturated result as Degraded rather
				// than lose the energy.
				er.Escalations = append(er.Escalations, "nrh cap: keeping saturated result")
				return finish(saturated, true)
			}
			return fail(err) // the base parameterization is wrong: terminal
		case errors.Is(err, core.ErrBadOptions), errors.Is(err, contour.ErrBadParams):
			// Both mean the energy was posed with parameters the stack
			// rejects outright; no amount of retrying reposes it.
			return fail(err)
		case errors.Is(err, contour.ErrTooManyDropped):
			er.Escalations = append(er.Escalations, fmt.Sprintf("nint %d->%d (too many dropped)", aopts.Nint, 2*aopts.Nint))
			aopts.Nint *= 2
		case errors.Is(err, linsolve.ErrNoConvergence):
			if aopts.Precision == core.PrecisionMixed {
				// Terminal precision rung: mixed-precision refinement
				// stagnated (float32 inner solves cannot represent this
				// energy's conditioning), so escalate to full complex128
				// arithmetic before touching the tolerance ladder. Not a
				// degradation — full precision is strictly more accurate.
				er.Escalations = append(er.Escalations, "precision mixed->complex128 (no convergence)")
				aopts.Precision = core.PrecisionComplex128
				break
			}
			er.Escalations = append(er.Escalations, fmt.Sprintf("tol %.1e->%.1e (no convergence)", aopts.BiCGTol, 100*aopts.BiCGTol))
			aopts.BiCGTol *= 100
			tolLoosened = true
		case errors.Is(err, linsolve.ErrBreakdown):
			er.Escalations = append(er.Escalations, fmt.Sprintf("probe reseed %d (breakdown)", er.Attempts))
			aopts.Seed = base.Seed + int64(er.Attempts)*1_000_003
		case errors.Is(err, comm.ErrShapeMismatch):
			// The ranks of a distributed fabric disagreed about the
			// problem shape. The decomposition is deterministic, so a
			// retry reproduces the same disagreement: terminal.
			return fail(err)
		case errors.Is(err, comm.ErrPeerLost),
			errors.Is(err, comm.ErrPartition),
			errors.Is(err, comm.ErrFrameCorrupt),
			errors.Is(err, comm.ErrClosed):
			// Transport failures. The rank world is rebuilt from scratch
			// on every attempt, so a lost peer, a partitioned or
			// persistently corrupt link, or a world torn down under us
			// are all plain retries here; process-level re-dispatch (a
			// fleet coordinator moving the energy to a surviving worker)
			// happens above this ladder, not in it.
			er.Escalations = append(er.Escalations, fmt.Sprintf("fabric rebuilt, attempt %d (transport failure)", er.Attempts))
		default:
			// Unclassified (chaos faults, operator errors): plain retry.
		}
		failures++
		if failures >= cfg.MaxAttempts {
			break
		}
		if cfg.Backoff > 0 {
			if !sleepCtx(ctx, cfg.Backoff<<uint(failures-1)) {
				return skip(ctx.Err())
			}
		}
	}
	if saturated != nil {
		// Retries after a saturation escalation all failed; the saturated
		// result is still a valid (if possibly incomplete) solve.
		er.Escalations = append(er.Escalations, "retries exhausted: keeping saturated result")
		return finish(saturated, true)
	}
	return fail(fmt.Errorf("sweep: energy %d (E = %g hartree) failed after %d attempts: %w", i, e, er.Attempts, lastErr))
}

// SolveOne drives a single energy through the full escalation ladder and
// returns its terminal outcome. It is the unit of work a fleet worker
// executes per assignment: the coordinator owns scheduling, journaling and
// re-dispatch; the worker owns exactly this — one energy, solved with the
// same retry policy a single-process sweep would apply. cfg is normalized
// the same way Run normalizes it.
func SolveOne(ctx context.Context, solve SolveFunc, index int, e float64, base core.Options, cfg Config) EnergyResult {
	if ctx == nil {
		ctx = context.Background()
	}
	return runEnergy(ctx, solve, index, e, base, cfg.normalize())
}

// sleepCtx waits d or until the context dies; it reports whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
