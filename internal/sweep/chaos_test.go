package sweep

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/qep"
)

// chaosSeed reads the sweep-chaos seed matrix (CBS_CHAOS_SEED, default 1),
// so the CI job exercises several deterministic fault patterns with one
// test body.
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// realSolve adapts the actual SS solver on a small Al(100) system, the same
// model the core tests use.
func realSolve(t *testing.T) SolveFunc {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return core.SolveContext(ctx, qep.New(op, e), opts)
	}
}

func realOptions() core.Options {
	o := core.DefaultOptions()
	o.Nint = 8
	o.Nmm = 4
	o.Nrh = 6
	o.Seed = 7
	return o
}

// sortedLambdas returns a result's eigenvalues ordered for comparison.
func sortedLambdas(res *core.Result) []complex128 {
	out := make([]complex128, len(res.Pairs))
	for i, p := range res.Pairs {
		out[i] = p.Lambda
	}
	sort.Slice(out, func(i, j int) bool {
		if real(out[i]) != real(out[j]) {
			return real(out[i]) < real(out[j])
		}
		return imag(out[i]) < imag(out[j])
	})
	return out
}

// TestSweepKillAndResumeGolden is the acceptance property of the durable
// sweep: a sweep killed mid-run by an injected torn checkpoint write,
// resumed from its journal, produces per-energy results matching an
// uninterrupted sweep within ResidualTol — with no re-solve of any energy
// that had a valid journal record, and the torn record itself detected,
// dropped, and re-solved rather than loaded.
func TestSweepKillAndResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("real-solver sweep in -short mode")
	}
	solve := realSolve(t)
	opts := realOptions()
	es := []float64{0.05, 0.06, 0.07}

	// Golden: the uninterrupted sweep.
	clean, err := Run(context.Background(), solve, es, opts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.OK+clean.Degraded != len(es) {
		t.Fatalf("clean sweep did not complete: %+v", clean)
	}

	// The "kill": energy 1's checkpoint write tears mid-frame. The append
	// fails, the sweep stops with ErrCheckpoint, and the on-disk journal
	// ends in a half-written record — exactly the image of a crash between
	// write and fsync.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := Config{
		Workers:        1,
		CheckpointPath: path,
		OperatorDesc:   "al100-test",
		Chaos:          chaos.New(3, chaos.Config{TornRecord: 1, Energies: []int{1}}),
	}
	_, err = Run(context.Background(), solve, es, opts, cfg)
	if !errors.Is(err, ErrCheckpoint) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("killed sweep err = %v, want ErrCheckpoint wrapping the injected tear", err)
	}

	// Only energy 0 has a valid record; the torn record 1 must be invisible.
	fp := Fingerprint(cfg.OperatorDesc, es, opts)
	recs, err := Load(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("journal after kill holds %+v, want only the record for energy 0", recs)
	}

	// Resume without chaos: energy 0 restores, energies 1 and 2 re-solve.
	var calls atomic.Int64
	counting := func(ctx context.Context, e float64, o core.Options) (*core.Result, error) {
		calls.Add(1)
		return solve(ctx, e, o)
	}
	cfg.Chaos = nil
	cfg.Resume = true
	resumed, err := Run(context.Background(), counting, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("resume re-solved %d energies, want 2 (the journaled energy 0 must restore)", calls.Load())
	}
	if !resumed.Results[0].FromJournal || resumed.Results[1].FromJournal || resumed.Results[2].FromJournal {
		t.Errorf("restore flags wrong: %v %v %v, want only energy 0 from the journal",
			resumed.Results[0].FromJournal, resumed.Results[1].FromJournal, resumed.Results[2].FromJournal)
	}

	// Golden comparison: every energy's spectrum matches the uninterrupted
	// sweep within the residual tolerance.
	for i := range es {
		want := sortedLambdas(clean.Results[i].Result)
		got := sortedLambdas(resumed.Results[i].Result)
		if len(got) != len(want) {
			t.Fatalf("energy %d: %d eigenpairs after resume, clean run found %d", i, len(got), len(want))
		}
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > opts.ResidualTol {
				t.Errorf("energy %d pair %d: lambda drifted by %g (> ResidualTol %g): %v vs %v",
					i, k, d, opts.ResidualTol, got[k], want[k])
			}
		}
	}

	// The restored record must carry usable physics, not just metadata.
	r0 := resumed.Results[0].Result
	if r0 == nil || len(r0.Pairs) == 0 || r0.Rank == 0 {
		t.Fatalf("restored result is hollow: %+v", r0)
	}
	for _, p := range r0.Pairs {
		if len(p.Psi) == 0 || math.IsNaN(p.Residual) {
			t.Error("restored eigenpair lost its vector or residual")
		}
	}
}

// TestSweepChaosMatrix is the seed-matrix invariant test behind the
// sweep-chaos CI job: whatever faults a seed draws (per-energy hard faults,
// checkpoint write faults, torn records), one journaled sweep plus at most
// one clean resume always converges to a full report — every energy ends in
// a terminal status, failures happen only where a fault was injected, and
// restored energies are never re-solved.
func TestSweepChaosMatrix(t *testing.T) {
	in := chaos.New(chaosSeed(), chaos.Config{EnergyFault: 0.2, CheckpointFault: 0.1, TornRecord: 0.1})
	es := testEnergies(16)
	opts := testOptions()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	solve := func(ctx context.Context, e float64, o core.Options) (*core.Result, error) {
		return okResult(e, o), nil
	}
	cfg := Config{
		Workers:        2,
		MaxAttempts:    2,
		CheckpointPath: path,
		OperatorDesc:   "seed-matrix",
		Chaos:          in,
	}
	report, err := Run(context.Background(), solve, es, opts, cfg)
	if err != nil {
		// The only sweep-fatal fault in this matrix is a checkpoint write
		// failure; after the "disk is repaired" (chaos disarmed) a single
		// resume must finish the job from the journal.
		if !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("sweep stopped with %v, want an ErrCheckpoint fault", err)
		}
		var calls atomic.Int64
		counting := func(ctx context.Context, e float64, o core.Options) (*core.Result, error) {
			calls.Add(1)
			return okResult(e, o), nil
		}
		cfg.Chaos = nil
		cfg.Resume = true
		report, err = Run(context.Background(), counting, es, opts, cfg)
		if err != nil {
			t.Fatalf("clean resume failed: %v", err)
		}
		restored := 0
		for _, er := range report.Results {
			if er.FromJournal {
				restored++
			}
		}
		if int(calls.Load()) != len(es)-restored {
			t.Errorf("resume made %d solves for %d unrestored energies", calls.Load(), len(es)-restored)
		}
	}
	if report.Skipped != 0 {
		t.Errorf("final report leaves %d energies skipped", report.Skipped)
	}
	for i, er := range report.Results {
		switch er.Status {
		case StatusOK, StatusDegraded:
		case StatusFailed:
			// A failure must trace back to an injected energy fault; the
			// fake solver itself never fails.
			if in.EnergyFault(i) == nil {
				t.Errorf("energy %d failed without an injected fault: %v", i, er.Err)
			} else if !er.FromJournal && !errors.Is(er.Err, chaos.ErrInjected) {
				t.Errorf("energy %d failure lost its injected cause: %v", i, er.Err)
			}
		default:
			t.Errorf("energy %d ended %s, want a terminal status", i, er.Status)
		}
	}
}

// TestSweepRealSolverPartialSemantics: with a hard injected fault on one
// energy, the real-solver sweep still returns every other energy solved —
// the "never an empty result set" half of the acceptance criteria.
func TestSweepRealSolverPartialSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("real-solver sweep in -short mode")
	}
	solve := realSolve(t)
	opts := realOptions()
	es := []float64{0.05, 0.06, 0.07}
	cfg := Config{
		MaxAttempts: 2,
		Chaos:       chaos.New(11, chaos.Config{EnergyFault: 1, Energies: []int{1}}),
	}
	report, err := Run(context.Background(), solve, es, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 1 || report.OK+report.Degraded != 2 {
		t.Fatalf("report = %+v, want 1 failed / 2 completed", report)
	}
	if er := report.Results[1]; er.Status != StatusFailed || !errors.Is(er.Err, chaos.ErrInjected) {
		t.Errorf("faulted energy: %+v", er)
	}
	if got := len(report.Completed()); got != 2 {
		t.Errorf("Completed() = %d results, want 2", got)
	}
}
