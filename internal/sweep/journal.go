package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/journal"
)

// Typed sentinels of the journal layer.
var (
	// ErrBadJournal is a checkpoint file without a valid header: not a
	// sweep journal, or one written by an incompatible version.
	ErrBadJournal = errors.New("sweep: not a valid sweep journal")
	// ErrFingerprintMismatch means the journal was written for a different
	// operator, energy list, or solver parameterization; resuming from it
	// would pass off stale records as current results.
	ErrFingerprintMismatch = errors.New("sweep: journal fingerprint does not match this sweep")
	// ErrCheckpoint wraps a failed journal append: the record may not be
	// durable, so the sweep stops rather than keep solving work it could
	// lose.
	ErrCheckpoint = errors.New("sweep: checkpoint write failed")
)

// journalVersion is bumped on any incompatible record-format change.
const journalVersion = 1

// journalMagic identifies the file type in the header record.
const journalMagic = "cbs-sweep-journal"

// Record is one per-energy journal entry: the terminal state of one energy
// after its trip through the retry policy, with enough of the solve result
// to stand in for a re-solve on resume.
type Record struct {
	Index       int         `json:"index"`
	Energy      float64     `json:"energy"` // hartree
	Status      Status      `json:"status"`
	Attempts    int         `json:"attempts"`
	Escalations []string    `json:"escalations,omitempty"`
	Error       string      `json:"error,omitempty"` // terminal error text (Failed only)
	Result      *ResultJSON `json:"result,omitempty"`
}

// header is the first journal line.
type header struct {
	Magic       string `json:"magic"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// ResultJSON is the JSON-able projection of core.Result carried by a
// journal record: everything a resumed sweep must reproduce (eigenpairs
// with vectors, rank, singular values, diagnostics), without the per-point
// timing detail that only matters live.
type ResultJSON struct {
	Energy      float64          `json:"energy"`
	Rank        int              `json:"rank"`
	Sigma       []float64        `json:"sigma,omitempty"`
	Expanded    int              `json:"expanded,omitempty"`
	MatVecs     int              `json:"matvecs,omitempty"`
	Pairs       []PairJSON       `json:"pairs"`
	Diagnostics core.Diagnostics `json:"diagnostics"`
}

// PairJSON is one eigenpair with complex values flattened to [re, im] and
// the eigenvector interleaved re,im (complex128 has no JSON encoding).
type PairJSON struct {
	Lambda   [2]float64 `json:"lambda"`
	K        [2]float64 `json:"k"`
	Residual float64    `json:"residual"`
	Psi      []float64  `json:"psi,omitempty"`
}

// EncodeResult projects a solve result into its journal form.
func EncodeResult(res *core.Result) *ResultJSON {
	if res == nil {
		return nil
	}
	out := &ResultJSON{
		Energy:      res.Energy,
		Rank:        res.Rank,
		Sigma:       res.Sigma,
		Expanded:    res.Expanded,
		MatVecs:     res.MatVecs,
		Diagnostics: res.Diagnostics,
	}
	out.Pairs = make([]PairJSON, len(res.Pairs))
	for i, p := range res.Pairs {
		pj := PairJSON{
			Lambda:   [2]float64{real(p.Lambda), imag(p.Lambda)},
			K:        [2]float64{real(p.K), imag(p.K)},
			Residual: p.Residual,
		}
		pj.Psi = make([]float64, 2*len(p.Psi))
		for k, z := range p.Psi {
			pj.Psi[2*k] = real(z)
			pj.Psi[2*k+1] = imag(z)
		}
		out.Pairs[i] = pj
	}
	return out
}

// Decode rebuilds the core.Result a record stands in for. AllPairs, the
// per-point statistics and the timings are not journaled and come back
// empty; everything the public scan consumers read (Pairs, Rank, Sigma,
// Diagnostics) round-trips exactly (encoding/json preserves float64).
func (rj *ResultJSON) Decode() *core.Result {
	if rj == nil {
		return nil
	}
	res := &core.Result{
		Energy:      rj.Energy,
		Rank:        rj.Rank,
		Sigma:       rj.Sigma,
		Expanded:    rj.Expanded,
		MatVecs:     rj.MatVecs,
		Diagnostics: rj.Diagnostics,
	}
	res.Pairs = make([]core.Eigenpair, len(rj.Pairs))
	for i, pj := range rj.Pairs {
		p := core.Eigenpair{
			Lambda:   complex(pj.Lambda[0], pj.Lambda[1]),
			K:        complex(pj.K[0], pj.K[1]),
			Residual: pj.Residual,
		}
		p.Psi = make([]complex128, len(pj.Psi)/2)
		for k := range p.Psi {
			p.Psi[k] = complex(pj.Psi[2*k], pj.Psi[2*k+1])
		}
		res.Pairs[i] = p
	}
	return res
}

// Journal is the crash-safe checkpoint log of one sweep: a header line
// (magic, version, fingerprint) followed by one CRC-framed JSON record per
// completed energy, in the shared internal/journal framing. A record
// interrupted mid-write fails the frame check on load and is dropped — the
// energy is simply re-solved. The durability discipline (temp-file +
// fsync + rename creation, fsynced appends, torn-tail truncation) lives in
// internal/journal.
type Journal struct {
	f     *journal.File
	path  string
	chaos *chaos.Injector
}

// Create starts a fresh journal at path, overwriting any existing file.
// The header is written atomically (internal/journal's temp-file + fsync +
// rename dance), so the journal either exists with a valid header or not
// at all.
func Create(path, fingerprint string) (*Journal, error) {
	payload, err := json.Marshal(header{Magic: journalMagic, Version: journalVersion, Fingerprint: fingerprint})
	if err != nil {
		return nil, err
	}
	f, err := journal.Create(path, payload)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Resume opens an existing journal for appending, first validating the
// header against the expected fingerprint and loading every intact record.
// Torn or corrupt lines (a crash mid-append) are dropped — those energies
// carry no valid record and will be re-solved. A torn tail is truncated
// away before the journal reopens for appending. If the file does not
// exist a fresh journal is created and no records are returned.
func Resume(path, fingerprint string) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := Create(path, fingerprint)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	recs, goodEnd, err := parseJournal(data, fingerprint)
	if err != nil {
		return nil, nil, err
	}
	f, err := journal.OpenAppend(path, goodEnd)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: reopening journal: %w", err)
	}
	return &Journal{f: f, path: path}, recs, nil
}

// Load reads a journal without opening it for appending (inspection and
// the chaos diff tooling).
func Load(path, fingerprint string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _, err := parseJournal(data, fingerprint)
	return recs, err
}

// parseJournal validates the header and returns every intact record, plus
// the byte offset just past the last valid line — everything after it is a
// torn tail a Resume may truncate away.
func parseJournal(data []byte, fingerprint string) ([]Record, int64, error) {
	var goodEnd int64
	sawHeader := false
	var recs []Record
	for _, line := range journal.Lines(data) {
		if !sawHeader {
			if line.Payload == nil {
				return nil, 0, fmt.Errorf("%w: corrupt header frame", ErrBadJournal)
			}
			var h header
			if err := json.Unmarshal(line.Payload, &h); err != nil || h.Magic != journalMagic {
				return nil, 0, fmt.Errorf("%w: bad header", ErrBadJournal)
			}
			if h.Version != journalVersion {
				return nil, 0, fmt.Errorf("%w: journal version %d, want %d", ErrBadJournal, h.Version, journalVersion)
			}
			if h.Fingerprint != fingerprint {
				return nil, 0, fmt.Errorf("%w: journal %s, sweep %s", ErrFingerprintMismatch, h.Fingerprint, fingerprint)
			}
			sawHeader = true
			goodEnd = line.End
			continue
		}
		if line.Payload == nil {
			continue // torn or corrupt record: drop it, the energy re-solves
		}
		var r Record
		if err := json.Unmarshal(line.Payload, &r); err != nil {
			continue
		}
		recs = append(recs, r)
		goodEnd = line.End
	}
	if !sawHeader {
		return nil, 0, fmt.Errorf("%w: empty file", ErrBadJournal)
	}
	return recs, goodEnd, nil
}

// SetChaos arms fault injection on checkpoint writes (nil-safe, test-only).
func (j *Journal) SetChaos(in *chaos.Injector) {
	if j != nil {
		j.chaos = in
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably logs one energy record: a single framed write followed by
// fsync, serialized across sweep workers inside internal/journal. A failure
// wraps ErrCheckpoint — the record may not be on disk, so the sweep must
// stop rather than keep producing results it cannot protect. Under chaos, a
// CheckpointFault fails the append outright and a TornRecord writes only a
// prefix of the frame (the on-disk image of a crash between write and
// fsync) before failing.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	//cbs:chaossite journal.ckpt
	if err := j.chaos.CheckpointFault(rec.Index); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	//cbs:chaossite journal.torn
	if j.chaos.TornRecord(rec.Index) {
		j.f.AppendTorn(payload)
		return fmt.Errorf("%w: %w", ErrCheckpoint, chaos.ErrInjected)
	}
	if err := j.f.Append(payload); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
