package sweep

import (
	"cbs/internal/core"
	"cbs/internal/fingerprint"
)

// Fingerprint is the journal's identity key: the shared
// internal/fingerprint digest over the operator descriptor, the energy
// list, and the result-affecting solver options. A journal written under
// one fingerprint must never be resumed under another — the cached
// records would silently stand in for solves with different physics. The
// result cache (internal/rescache) keys on the same scheme, so served
// and journaled results agree on identity.
func Fingerprint(operatorDesc string, es []float64, opts core.Options) string {
	return fingerprint.Key(operatorDesc, es, opts)
}
