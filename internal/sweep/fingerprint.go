package sweep

import (
	"fmt"
	"hash/fnv"
	"strings"

	"cbs/internal/core"
)

// Fingerprint digests everything that determines a sweep's per-energy
// results: the operator descriptor supplied by the caller, the full energy
// list, and the result-affecting solver options. A journal written under
// one fingerprint must never be resumed under another — the cached records
// would silently stand in for solves with different physics.
//
// The parallel layout (Options.Parallel) and the chaos injector are
// deliberately excluded: worker counts only reschedule the same arithmetic,
// so a sweep checkpointed on 8 workers may resume on 2, and fault injection
// is a test-harness concern, not part of the computation's identity.
func Fingerprint(operatorDesc string, es []float64, opts core.Options) string {
	var sb strings.Builder
	sb.WriteString("cbs-sweep/v1\x00")
	sb.WriteString(operatorDesc)
	sb.WriteByte(0)
	fmt.Fprintf(&sb, "nint=%d nmm=%d nrh=%d delta=%.17g lmin=%.17g tol=%.17g maxiter=%d rtol=%.17g balance=%t seed=%d expand=%t maxexpand=%d",
		opts.Nint, opts.Nmm, opts.Nrh, opts.Delta, opts.LambdaMin,
		opts.BiCGTol, opts.MaxIter, opts.ResidualTol, opts.LoadBalanceStop,
		opts.Seed, opts.AutoExpand, opts.MaxExpand)
	sb.WriteByte(0)
	for _, e := range es {
		fmt.Fprintf(&sb, "%.17g,", e)
	}
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}
