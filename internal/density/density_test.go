package density

import (
	"math"
	"testing"

	"cbs/internal/grid"
	"cbs/internal/lattice"
)

func alSetup(t *testing.T) (*grid.Grid, *lattice.Structure) {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(10, 10, 10, st.Lx, st.Ly, st.Lz)
	if err != nil {
		t.Fatal(err)
	}
	return g, st
}

func TestSuperpositionIntegratesToValence(t *testing.T) {
	g, st := alSetup(t)
	n, err := Superposition(g, st)
	if err != nil {
		t.Fatal(err)
	}
	got := Integrate(g, n)
	if math.Abs(got-12) > 1e-9 { // 4 Al x 3 electrons
		t.Errorf("density integrates to %g, want 12", got)
	}
	for i, v := range n {
		if v < 0 {
			t.Fatalf("negative density at %d: %g", i, v)
		}
	}
}

func TestIonicBackgroundNeutralizes(t *testing.T) {
	g, st := alSetup(t)
	ne, err := Superposition(g, st)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := IonicBackground(g, st)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(Integrate(g, ne) - Integrate(g, ni)); d > 1e-9 {
		t.Errorf("electron and ionic charges differ by %g", d)
	}
}

func TestFromOrbitals(t *testing.T) {
	g, _ := alSetup(t)
	n := g.N()
	// One uniform normalized orbital occupied by 2 electrons.
	psi := make([]complex128, n)
	a := complex(1/math.Sqrt(float64(n)), 0)
	for i := range psi {
		psi[i] = a
	}
	rho, err := FromOrbitals(g, [][]complex128{psi}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Integrate(g, rho); math.Abs(got-2) > 1e-10 {
		t.Errorf("orbital density integrates to %g, want 2", got)
	}
	if _, err := FromOrbitals(g, [][]complex128{psi}, []float64{1, 2}); err == nil {
		t.Error("mismatched occupations should fail")
	}
	if _, err := FromOrbitals(g, [][]complex128{psi[:3]}, []float64{1}); err == nil {
		t.Error("short orbital should fail")
	}
}

func TestDensityPeaksAtAtoms(t *testing.T) {
	g, st := alSetup(t)
	n, err := Superposition(g, st)
	if err != nil {
		t.Fatal(err)
	}
	at := st.Atoms[0]
	ix := int(math.Round(at.X/g.Hx)) % g.Nx
	iy := int(math.Round(at.Y/g.Hy)) % g.Ny
	iz := int(math.Round(at.Z/g.Hz)) % g.Nz
	atAtom := n[g.Index(ix, iy, iz)]
	// Farthest point from any atom in the fcc cell: (1/4,1/4,1/4)-ish.
	far := n[g.Index(ix+g.Nx/4, iy+g.Ny/4, iz+g.Nz/4)]
	if atAtom <= far {
		t.Errorf("density at atom %g not above interstitial %g", atAtom, far)
	}
}
