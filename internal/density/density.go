// Package density builds and manipulates electron densities on the
// real-space grid: the superposition of atomic valence densities that seeds
// the SCF loop, and the density synthesized from occupied Kohn-Sham
// orbitals.
package density

import (
	"fmt"
	"math"

	"cbs/internal/grid"
	"cbs/internal/lattice"
	"cbs/internal/pseudo"
)

// atomicWidth returns the Gaussian width (bohr) of the model valence
// density of a species, tied to its screening radius.
func atomicWidth(sp pseudo.Species) float64 { return 0.8 * sp.RScr }

// Superposition builds the starting density as a sum of normalized atomic
// Gaussians, n_a(r) = Z (alpha/pi)^{3/2} exp(-alpha r^2), over all periodic
// images, then rescales so the grid integral equals the total valence
// charge exactly.
func Superposition(g *grid.Grid, st *lattice.Structure) ([]float64, error) {
	n := make([]float64, g.N())
	var ztot float64
	for _, at := range st.Atoms {
		sp, err := pseudo.Lookup(at.Species)
		if err != nil {
			return nil, err
		}
		ztot += sp.Zval
		w := atomicWidth(sp)
		alpha := 1 / (2 * w * w)
		pref := sp.Zval * math.Pow(alpha/math.Pi, 1.5)
		rc := 6 * w
		nxI := int(math.Ceil(rc/g.Lx())) + 1
		nyI := int(math.Ceil(rc/g.Ly())) + 1
		nzI := int(math.Ceil(rc/g.Lz())) + 1
		for mx := -nxI; mx <= nxI; mx++ {
			for my := -nyI; my <= nyI; my++ {
				for mz := -nzI; mz <= nzI; mz++ {
					ax := at.X + float64(mx)*g.Lx()
					ay := at.Y + float64(my)*g.Ly()
					az := at.Z + float64(mz)*g.Lz()
					addGaussian(g, n, ax, ay, az, alpha, pref, rc)
				}
			}
		}
	}
	// Exact renormalization to the valence charge.
	var sum float64
	for _, v := range n {
		sum += v
	}
	sum *= g.DV()
	if sum <= 0 {
		return nil, fmt.Errorf("density: superposition integrated to %g", sum)
	}
	scale := ztot / sum
	for i := range n {
		n[i] *= scale
	}
	return n, nil
}

func addGaussian(g *grid.Grid, n []float64, ax, ay, az, alpha, pref, rc float64) {
	ix0 := int(math.Floor((ax - rc) / g.Hx))
	ix1 := int(math.Ceil((ax + rc) / g.Hx))
	iy0 := int(math.Floor((ay - rc) / g.Hy))
	iy1 := int(math.Ceil((ay + rc) / g.Hy))
	iz0 := int(math.Floor((az - rc) / g.Hz))
	iz1 := int(math.Ceil((az + rc) / g.Hz))
	clip := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	ix0, ix1 = clip(ix0, 0, g.Nx-1), clip(ix1, 0, g.Nx-1)
	iy0, iy1 = clip(iy0, 0, g.Ny-1), clip(iy1, 0, g.Ny-1)
	iz0, iz1 = clip(iz0, 0, g.Nz-1), clip(iz1, 0, g.Nz-1)
	rc2 := rc * rc
	for iz := iz0; iz <= iz1; iz++ {
		dz := float64(iz)*g.Hz - az
		for iy := iy0; iy <= iy1; iy++ {
			dy := float64(iy)*g.Hy - ay
			base := (iz*g.Ny + iy) * g.Nx
			for ix := ix0; ix <= ix1; ix++ {
				dx := float64(ix)*g.Hx - ax
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > rc2 {
					continue
				}
				n[base+ix] += pref * math.Exp(-alpha*r2)
			}
		}
	}
}

// FromOrbitals accumulates n(r) = sum_i occ_i |psi_i(r)|^2 / dV from
// orbitals normalized to unit discrete 2-norm (so each integrates to its
// occupation).
func FromOrbitals(g *grid.Grid, orbitals [][]complex128, occ []float64) ([]float64, error) {
	if len(orbitals) != len(occ) {
		return nil, fmt.Errorf("density: %d orbitals vs %d occupations", len(orbitals), len(occ))
	}
	n := make([]float64, g.N())
	inv := 1 / g.DV()
	for i, psi := range orbitals {
		if len(psi) != g.N() {
			return nil, fmt.Errorf("density: orbital %d has length %d", i, len(psi))
		}
		f := occ[i] * inv
		for j, v := range psi {
			n[j] += f * (real(v)*real(v) + imag(v)*imag(v))
		}
	}
	return n, nil
}

// Integrate returns the total electron count of a density.
func Integrate(g *grid.Grid, n []float64) float64 {
	var s float64
	for _, v := range n {
		s += v
	}
	return s * g.DV()
}

// IonicBackground builds the Gaussian-smeared ionic charge density (positive
// charge Z per atom, width tied to the species screening radius) used to
// neutralize the electron density in the Hartree solve.
func IonicBackground(g *grid.Grid, st *lattice.Structure) ([]float64, error) {
	n := make([]float64, g.N())
	var ztot float64
	for _, at := range st.Atoms {
		sp, err := pseudo.Lookup(at.Species)
		if err != nil {
			return nil, err
		}
		ztot += sp.Zval
		w := 0.5 * sp.RScr
		alpha := 1 / (2 * w * w)
		pref := sp.Zval * math.Pow(alpha/math.Pi, 1.5)
		rc := 6 * w
		nxI := int(math.Ceil(rc/g.Lx())) + 1
		nyI := int(math.Ceil(rc/g.Ly())) + 1
		nzI := int(math.Ceil(rc/g.Lz())) + 1
		for mx := -nxI; mx <= nxI; mx++ {
			for my := -nyI; my <= nyI; my++ {
				for mz := -nzI; mz <= nzI; mz++ {
					addGaussian(g, n,
						at.X+float64(mx)*g.Lx(),
						at.Y+float64(my)*g.Ly(),
						at.Z+float64(mz)*g.Lz(), alpha, pref, rc)
				}
			}
		}
	}
	var sum float64
	for _, v := range n {
		sum += v
	}
	sum *= g.DV()
	scale := ztot / sum
	for i := range n {
		n[i] *= scale
	}
	return n, nil
}
