package qep

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/zlinalg"
)

func testProblem(t *testing.T) *Problem {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return New(op, 0.3)
}

// TestDaggerIdentity verifies the paper's halving identity P(z)^dagger =
// P(1/conj(z)) on the dense assembled operator.
func TestDaggerIdentity(t *testing.T) {
	p := testProblem(t)
	n := p.Dim()
	z := complex(1.4, 0.6)
	dense := func(apply func(v, out, scratch []complex128)) *zlinalg.Matrix {
		m := zlinalg.NewMatrix(n, n)
		v := make([]complex128, n)
		out := make([]complex128, n)
		scratch := make([]complex128, n)
		for j := 0; j < n; j++ {
			v[j] = 1
			apply(v, out, scratch)
			m.SetCol(j, out)
			v[j] = 0
		}
		return m
	}
	pz := dense(func(v, out, s []complex128) { p.Apply(z, v, out, s) })
	pd := dense(func(v, out, s []complex128) { p.ApplyDagger(z, v, out, s) })
	if d := zlinalg.Sub(pd, pz.ConjTranspose()).MaxAbs(); d > 1e-11 {
		t.Errorf("||P(z)^dagger - P(1/conj z)|| = %g", d)
	}
}

// TestResidualZeroForEigenpair: solving P(z) x = 0 approximately via dense
// eigenpairs of the Bloch matrix gives a tiny residual.
func TestResidualConsistency(t *testing.T) {
	p := testProblem(t)
	// H(lambda) psi = E psi  <=>  P(lambda) psi = 0 for that E. Take a real
	// k, diagonalize H(k), and use one eigenpair.
	lam := cmplx.Exp(complex(0, 0.7))
	h := p.Op.BlochMatrix(lam)
	vals, vecs, err := zlinalg.EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(p.Op, vals[3])
	if r := p2.Residual(lam, vecs.Col(3)); r > 1e-9 {
		t.Errorf("residual of an exact eigenpair = %g", r)
	}
	// Wrong energy: residual is large.
	p3 := New(p.Op, vals[3]+0.5)
	if r := p3.Residual(lam, vecs.Col(3)); r < 1e-3 {
		t.Errorf("residual at the wrong energy is suspiciously small: %g", r)
	}
}

// TestApplyBlockMatchesApply: the fused blocked apply must reproduce the
// per-column single-vector apply (primal and dagger) for nb in {1, 3, 8}.
func TestApplyBlockMatchesApply(t *testing.T) {
	p := testProblem(t)
	n := p.Dim()
	z := complex(1.7, -0.4)
	for _, nb := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(7 + nb)))
		v := make([]complex128, n*nb)
		for i := range v {
			v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		out := make([]complex128, n*nb)
		outD := make([]complex128, n*nb)
		p.ApplyBlock(z, v, out, nb)
		p.ApplyDaggerBlock(z, v, outD, nb)
		col := make([]complex128, n)
		ref := make([]complex128, n)
		scratch := make([]complex128, n)
		for c := 0; c < nb; c++ {
			for i := 0; i < n; i++ {
				col[i] = v[i*nb+c]
			}
			p.Apply(z, col, ref, scratch)
			var d, nrm float64
			for i := 0; i < n; i++ {
				d += cmplx.Abs(out[i*nb+c] - ref[i])
				nrm += cmplx.Abs(ref[i])
			}
			if d/nrm > 1e-13 {
				t.Errorf("ApplyBlock nb=%d col %d: relative deviation %g", nb, c, d/nrm)
			}
			p.ApplyDagger(z, col, ref, scratch)
			d, nrm = 0, 0
			for i := 0; i < n; i++ {
				d += cmplx.Abs(outD[i*nb+c] - ref[i])
				nrm += cmplx.Abs(ref[i])
			}
			if d/nrm > 1e-13 {
				t.Errorf("ApplyDaggerBlock nb=%d col %d: relative deviation %g", nb, c, d/nrm)
			}
		}
	}
}

func TestKLambdaRoundTrip(t *testing.T) {
	a := 7.3
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := complex(r.Float64()*2*math.Pi/a-math.Pi/a, r.Float64()*0.4-0.2)
		lam := LambdaFromK(k, a)
		back := KFromLambda(lam, a)
		return cmplx.Abs(back-k) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKFromLambdaFoldsToBZ(t *testing.T) {
	a := 5.0
	// lambda from k outside the first BZ folds back in.
	k := complex(1.7*math.Pi/a, 0.1)
	lam := LambdaFromK(k, a)
	folded := KFromLambda(lam, a)
	if re := real(folded); re <= -math.Pi/a || re > math.Pi/a+1e-12 {
		t.Errorf("Re k = %g not in (-pi/a, pi/a]", re)
	}
	// The imaginary part (decay constant) survives folding.
	if math.Abs(imag(folded)-0.1) > 1e-12 {
		t.Errorf("Im k = %g, want 0.1", imag(folded))
	}
}

func TestPropagatingMagnitude(t *testing.T) {
	a := 4.0
	lam := LambdaFromK(complex(0.3, 0), a)
	if math.Abs(cmplx.Abs(lam)-1) > 1e-14 {
		t.Error("real k must give |lambda| = 1")
	}
	dec := LambdaFromK(complex(0.3, 0.2), a) // Im k > 0: decaying
	if cmplx.Abs(dec) >= 1 {
		t.Errorf("|lambda| = %g for a decaying state, want < 1", cmplx.Abs(dec))
	}
}

func TestResidualZeroVector(t *testing.T) {
	p := testProblem(t)
	if r := p.Residual(1, make([]complex128, p.Dim())); !math.IsInf(r, 1) {
		t.Errorf("residual of zero vector = %g, want +Inf", r)
	}
}
