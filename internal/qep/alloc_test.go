package qep

import "testing"

// TestApplyBlockZeroAlloc pins the scratch-free contract of the blocked QEP
// application: unlike the single-vector Apply, the blocked path folds the
// contour shifts into the accumulate kernels and must never touch the heap.
func TestApplyBlockZeroAlloc(t *testing.T) {
	p := testProblem(t)
	n := p.Dim()
	const nb = 6
	v := make([]complex128, n*nb)
	out := make([]complex128, n*nb)
	for i := range v {
		v[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	z := complex(0.9, 0.3)
	if allocs := testing.AllocsPerRun(5, func() { p.ApplyBlock(z, v, out, nb) }); allocs != 0 {
		t.Errorf("ApplyBlock allocates %.0f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() { p.ApplyDaggerBlock(z, v, out, nb) }); allocs != 0 {
		t.Errorf("ApplyDaggerBlock allocates %.0f times per call, want 0", allocs)
	}
}
