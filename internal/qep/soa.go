package qep

// Split-complex (SoA) application of P(z): the planar counterpart of
// ApplyBlock/ApplyDaggerBlock. The contour coefficients -z and -1/z are the
// only complex scalars in the operator; they are split into (re, im) pairs
// at this boundary and everything below runs on float planes. At
// F = float64 the result is bit-identical to the AoS path; at F = float32
// the same arithmetic runs in single precision (the mixed-precision inner
// solve).

import (
	"math/cmplx"

	"cbs/internal/hamiltonian"
	"cbs/internal/soa"
)

// ApplyBlockSoA computes out = P(z) V on split planes using the operator's
// precision-F coefficient tables.
//
//cbs:hotpath
func ApplyBlockSoA[F soa.Float](p *Problem, t *hamiltonian.SoATables[F], z complex128, v, out *soa.Block[F]) {
	t.ApplyShiftedH0Block(F(p.E), v, out)
	zp := -z
	t.AccumHpBlock(F(real(zp)), F(imag(zp)), v, out)
	zm := -1 / z
	t.AccumHmBlock(F(real(zm)), F(imag(zm)), v, out)
}

// ApplyDaggerBlockSoA computes out = P(z)^dagger V = P(1/conj(z)) V on
// split planes.
//
//cbs:hotpath
func ApplyDaggerBlockSoA[F soa.Float](p *Problem, t *hamiltonian.SoATables[F], z complex128, v, out *soa.Block[F]) {
	ApplyBlockSoA(p, t, 1/cmplx.Conj(z), v, out)
}
