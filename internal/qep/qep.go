// Package qep represents the paper's quadratic eigenvalue problem
//
//	P(lambda) |psi> = [ -lambda^{-1} H- + (E - H0) - lambda H+ ] |psi> = 0
//
// as a matrix-free operator, together with its dual P(z)^dagger. The key
// structural identity exploited for the ring contour (paper Sec. 3.2) is
//
//	P(z)^dagger = P(1 / conj(z)),
//
// which holds because H- = H+^dagger, H0 = H0^dagger and E is real.
package qep

import (
	"math"
	"math/cmplx"

	"cbs/internal/hamiltonian"
	"cbs/internal/operator"
	"cbs/internal/zlinalg"
)

// Problem is the QEP at one fixed real energy E (hartree). B is the
// operator backend every solve path drives; Op is the concrete FD-grid
// operator when (and only when) B is one — the handle the FD-only fast
// paths (SoA kernel tables, the Ndm > 1 domain decomposition) need, nil
// for any other backend.
type Problem struct {
	B  operator.Backend
	Op *hamiltonian.Operator
	E  float64
}

// New builds the QEP for the FD-grid Hamiltonian at energy E.
func New(op *hamiltonian.Operator, e float64) *Problem {
	return &Problem{B: op, Op: op, E: e}
}

// NewBackend builds the QEP for any operator backend at energy E. An
// FD-grid backend keeps its concrete handle so the SoA and distributed
// fast paths stay reachable.
func NewBackend(b operator.Backend, e float64) *Problem {
	p := &Problem{B: b, E: e}
	if op, ok := b.(*hamiltonian.Operator); ok {
		p.Op = op
	}
	return p
}

// Dim returns the problem dimension N.
func (p *Problem) Dim() int { return p.B.N() }

// CellLength returns the backend's 1D lattice constant a (bohr).
func (p *Problem) CellLength() float64 { return p.B.CellLength() }

// Apply computes out = P(z) v, using scratch (length N).
func (p *Problem) Apply(z complex128, v, out, scratch []complex128) {
	if len(v) != len(out) || len(scratch) != len(out) {
		panic("qep: Apply length mismatch")
	}
	// out = (E - H0) v
	p.B.ApplyH0(v, out)
	for i := range out {
		out[i] = complex(p.E, 0)*v[i] - out[i]
	}
	// out -= z H+ v
	p.B.ApplyHp(v, scratch)
	zlinalg.Axpy(-z, scratch, out)
	// out -= z^{-1} H- v
	p.B.ApplyHm(v, scratch)
	zlinalg.Axpy(-1/z, scratch, out)
}

// ApplyDagger computes out = P(z)^dagger v = P(1/conj(z)) v.
func (p *Problem) ApplyDagger(z complex128, v, out, scratch []complex128) {
	p.Apply(1/cmplx.Conj(z), v, out, scratch)
}

// ApplyBlock computes out = P(z) V for an n x nb block stored row-major by
// grid point (hamiltonian block layout). Unlike the single-vector Apply,
// which makes three full-length passes ((E-H0)v, then two scratch+Axpy
// passes for the z*H+ and z^{-1}*H- terms), the blocked path computes
// (E - H0)V in one fused stencil sweep and folds the contour shift into the
// boundary-only accumulate kernels: O(surface) extra work and no scratch
// buffer at all.
//
//cbs:hotpath
func (p *Problem) ApplyBlock(z complex128, v, out []complex128, nb int) {
	p.B.ApplyShiftedH0Block(p.E, v, out, nb)
	p.B.AccumHpBlock(-z, v, out, nb)
	p.B.AccumHmBlock(-1/z, v, out, nb)
}

// ApplyDaggerBlock computes out = P(z)^dagger V = P(1/conj(z)) V on a
// row-major block.
//
//cbs:hotpath
func (p *Problem) ApplyDaggerBlock(z complex128, v, out []complex128, nb int) {
	p.ApplyBlock(1/cmplx.Conj(z), v, out, nb)
}

// Residual returns the relative QEP residual ||P(lambda) psi|| / ||psi||
// scaled by the block norms (a dimensionless accuracy measure).
func (p *Problem) Residual(lambda complex128, psi []complex128) float64 {
	n := p.Dim()
	out := make([]complex128, n)
	scratch := make([]complex128, n)
	p.Apply(lambda, psi, out, scratch)
	den := zlinalg.Norm2(psi)
	if den == 0 {
		return math.Inf(1)
	}
	return zlinalg.Norm2(out) / den
}

// KFromLambda converts a Bloch factor lambda = exp(i k a) to the complex
// wave vector k (1/bohr) given the cell length a (bohr). The real part is
// folded into the first Brillouin zone (-pi/a, pi/a].
func KFromLambda(lambda complex128, a float64) complex128 {
	lg := cmplx.Log(lambda) // i k a = log lambda
	k := lg / complex(0, a)
	re, im := real(k), imag(k)
	bz := math.Pi / a
	for re > bz {
		re -= 2 * bz
	}
	for re <= -bz {
		re += 2 * bz
	}
	return complex(re, im)
}

// LambdaFromK is the inverse map: lambda = exp(i k a).
func LambdaFromK(k complex128, a float64) complex128 {
	return cmplx.Exp(complex(0, 1) * k * complex(a, 0))
}
