package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/qep"
)

// scanEnergies returns nE energies inside the test system's low bands.
func scanEnergies(t *testing.T, nE int) (*qep.Problem, []float64) {
	t.Helper()
	op := smallAl(t, 8)
	q := qep.New(op, 0)
	es := make([]float64, nE)
	for i := range es {
		es[i] = 0.05 + 0.01*float64(i)
	}
	return q, es
}

// scanOptions are fast settings for the scan tests.
func scanOptions() Options {
	o := DefaultOptions()
	o.Nint = 8
	o.Nmm = 4
	o.Nrh = 6
	return o
}

// TestEnergyScanPartialResults: a mid-scan failure must return the
// completed prefix alongside a ScanError naming the offending energy, not
// discard the finished solves.
func TestEnergyScanPartialResults(t *testing.T) {
	q, es := scanEnergies(t, 4)
	opts := scanOptions()
	const failAt = 2
	opts.Chaos = chaos.New(1, chaos.Config{EnergyFault: 1, Energies: []int{failAt}})

	out, err := EnergyScan(q, es, opts)
	if err == nil {
		t.Fatal("scan with an injected hard fault succeeded")
	}
	var se *ScanError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ScanError", err)
	}
	if se.Index != failAt || se.Energy != es[failAt] {
		t.Errorf("ScanError names energy %d (E=%g), want %d (E=%g)", se.Index, se.Energy, failAt, es[failAt])
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Errorf("cause %v not errors.Is-able to chaos.ErrInjected", err)
	}
	if len(out) != failAt {
		t.Fatalf("got %d partial results, want the %d completed before the fault", len(out), failAt)
	}
	for i, r := range out {
		if r == nil || len(r.Pairs) == 0 && r.Rank == 0 {
			t.Errorf("partial result %d is empty", i)
		}
	}
}

// TestEnergyScanParallelCancelsPromptly: the first failure must cancel the
// queued and in-flight energies instead of solving all of them to
// completion behind a doomed scan. With the fault on the first energy and
// a deep queue, most energies must never have been solved.
func TestEnergyScanParallelCancelsPromptly(t *testing.T) {
	q, es := scanEnergies(t, 8)
	opts := scanOptions()
	opts.Chaos = chaos.New(1, chaos.Config{EnergyFault: 1, Energies: []int{0}})

	start := time.Now()
	out, err := EnergyScanParallel(q, es, opts, 2)
	elapsed := time.Since(start)

	var se *ScanError
	if !errors.As(err, &se) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want *ScanError wrapping chaos.ErrInjected", err)
	}
	if se.Index != 0 {
		t.Errorf("first failure reported at index %d, want 0", se.Index)
	}
	solved := 0
	for _, r := range out {
		if r != nil {
			solved++
		}
	}
	// The second worker may finish the solve it holds when the fault
	// lands; everything still queued must be skipped.
	if solved > 2 {
		t.Errorf("%d of %d energies solved after the first failure; cancellation did not propagate", solved, len(es))
	}
	// Generous wall-clock bound: aborting promptly must not cost the
	// full 8-energy scan (each solve takes a measurable fraction of a
	// second on this system).
	if limit := 60 * time.Second; elapsed > limit {
		t.Errorf("scan took %v after an immediate fault (bound %v)", elapsed, limit)
	}
}

// TestEnergyScanContextCanceled: a dead context stops the scan before the
// next energy with a ScanError wrapping context.Canceled.
func TestEnergyScanContextCanceled(t *testing.T) {
	q, es := scanEnergies(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	out, err := EnergyScanContext(ctx, q, es, scanOptions())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sequential: err = %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Errorf("pre-canceled scan returned %d results", len(out))
	}

	pout, err := EnergyScanParallelContext(ctx, q, es, scanOptions(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: err = %v, want context.Canceled", err)
	}
	for i, r := range pout {
		if r != nil {
			t.Errorf("parallel pre-canceled scan solved energy %d", i)
		}
	}
}

// TestScanErrorUnwrap: the wrapper is transparent to errors.Is/As.
func TestScanErrorUnwrap(t *testing.T) {
	inner := ErrSubspaceTooLarge
	err := &ScanError{Index: 7, Energy: 0.25, Err: inner}
	if !errors.Is(err, ErrSubspaceTooLarge) {
		t.Error("ScanError does not unwrap to its cause")
	}
	var se *ScanError
	if !errors.As(error(err), &se) || se.Index != 7 {
		t.Error("errors.As through ScanError failed")
	}
}
