// Package core is the paper's primary contribution: the complex band
// structure (CBS) solver that expresses the real-space-grid Kohn-Sham
// equation of a bulk unit cell as a quadratic eigenvalue problem and
// computes only the annulus eigenvalues lambda_min < |lambda| < 1/lambda_min
// with the Sakurai-Sugiura method (Algorithm 1), the ring contour of Fig. 2,
// the dual-system BiCG halving of Sec. 3.2, and the three layers of
// hierarchical parallelism of Sec. 3.3 (right-hand sides / quadrature
// points / domain decomposition).
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cbs/internal/contour"
	"cbs/internal/dist"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/ssm"
	"cbs/internal/zlinalg"
)

// Parallel configures the three layers of the hierarchy. Each field is a
// worker count; 1 means serial at that layer.
type Parallel struct {
	Top int // concurrent right-hand-side blocks (no communication)
	Mid int // concurrent quadrature points (no communication)
	Ndm int // domains of the z-slab decomposition (halo + allreduce traffic)
}

// normalize fills zero fields with 1.
func (p Parallel) normalize() Parallel {
	if p.Top < 1 {
		p.Top = 1
	}
	if p.Mid < 1 {
		p.Mid = 1
	}
	if p.Ndm < 1 {
		p.Ndm = 1
	}
	return p
}

// Options collects the solver parameters in the paper's notation; the
// defaults (via DefaultOptions) are the paper's Sec. 4 settings.
type Options struct {
	Nint      int     // quadrature points per circle (paper: 32)
	Nmm       int     // moment blocks (paper: 8)
	Nrh       int     // right-hand sides (paper: 16 or 64)
	Delta     float64 // Hankel SVD threshold (paper: 1e-10)
	LambdaMin float64 // annulus inner radius (paper: 0.5)
	BiCGTol   float64 // linear-solve tolerance (paper: 1e-10)
	MaxIter   int     // BiCG iteration cap (0: dimension-derived)

	// ResidualTol filters extracted eigenpairs by the relative QEP
	// residual ||P(lambda) psi|| / ||psi||.
	ResidualTol float64

	// LoadBalanceStop enables the majority stopping rule across quadrature
	// points (paper Sec. 3.3).
	LoadBalanceStop bool

	// TrackHistories records the BiCG residual history of the first
	// right-hand side at every quadrature point (Fig. 5 data).
	TrackHistories bool

	Seed     int64 // probe block seed (deterministic runs)
	Parallel Parallel

	// AutoExpand re-runs the solve with doubled Nrh when the Hankel rank
	// saturates the subspace (rank == Nrh*Nmm), which signals that more
	// eigenvalues live in the annulus than the moment space can represent
	// and some are being missed. At most MaxExpand doublings (default 2
	// when AutoExpand is set).
	AutoExpand bool
	MaxExpand  int
}

// DefaultOptions returns the paper's parameter set.
func DefaultOptions() Options {
	return Options{
		Nint:        32,
		Nmm:         8,
		Nrh:         16,
		Delta:       1e-10,
		LambdaMin:   0.5,
		BiCGTol:     1e-10,
		ResidualTol: 1e-5,
		Seed:        1,
		Parallel:    Parallel{Top: 1, Mid: 1, Ndm: 1},
	}
}

// Eigenpair is one CBS solution at the solved energy.
type Eigenpair struct {
	Lambda   complex128   // Bloch factor e^{ika}
	K        complex128   // complex wave vector (1/bohr)
	Psi      []complex128 // unit-cell eigenvector (unit norm)
	Residual float64      // relative QEP residual
}

// Timings is the paper's Table 1 cost breakdown.
type Timings struct {
	Setup       time.Duration // contour + probe preparation ("read matrix data" analog)
	SolveLinear time.Duration // step 1: the 2*Nint*Nrh linear systems
	Extract     time.Duration // steps 2-3: moments, Hankel, small EVP
}

// PointStats records the linear-solve behaviour at one quadrature point.
type PointStats struct {
	Z            complex128
	Iterations   int       // BiCG iterations summed over this point's columns
	Converged    int       // converged columns
	StoppedEarly int       // columns halted by the majority rule
	History      []float64 // first column's residual history (optional)
}

// Result is the outcome of one CBS solve at a fixed energy.
type Result struct {
	Energy float64 // hartree

	Pairs    []Eigenpair // annulus eigenpairs passing the residual filter
	AllPairs []Eigenpair // every extracted pair (diagnostics)
	Rank     int         // Hankel numerical rank m-hat
	Sigma    []float64   // Hankel singular values

	Points    []PointStats // per outer-circle quadrature point
	Timings   Timings
	MatVecs   int   // operator applications across all solves
	CommBytes int64 // bottom-layer traffic (0 when Ndm = 1)
	Expanded  int   // the Nrh actually used (grows under AutoExpand)
}

// Solve computes the CBS eigenpairs of the QEP at its energy. With
// AutoExpand set it retries with a larger probe block when the moment
// subspace saturates.
func Solve(q *qep.Problem, opts Options) (*Result, error) {
	expands := opts.MaxExpand
	if opts.AutoExpand && expands <= 0 {
		expands = 2
	}
	for {
		res, err := solveOnce(q, opts)
		if err != nil {
			return nil, err
		}
		res.Expanded = opts.Nrh
		if !opts.AutoExpand || expands == 0 || res.Rank < opts.Nrh*opts.Nmm {
			return res, nil
		}
		if 2*opts.Nrh*opts.Nmm > q.Dim() {
			return res, nil // cannot grow further
		}
		opts.Nrh *= 2
		expands--
	}
}

// solveOnce is a single pass of Algorithm 1.
func solveOnce(q *qep.Problem, opts Options) (*Result, error) {
	opts.Parallel = opts.Parallel.normalize()
	if opts.Nint < 1 || opts.Nmm < 1 || opts.Nrh < 1 {
		return nil, fmt.Errorf("core: Nint/Nmm/Nrh must be positive, got %d/%d/%d", opts.Nint, opts.Nmm, opts.Nrh)
	}
	if opts.Nrh*opts.Nmm > q.Dim() {
		return nil, fmt.Errorf("core: subspace size Nrh*Nmm = %d exceeds problem dimension %d", opts.Nrh*opts.Nmm, q.Dim())
	}
	tSetup := time.Now()
	ring, err := contour.NewRing(opts.LambdaMin, opts.Nint)
	if err != nil {
		return nil, err
	}
	n := q.Dim()
	v := probeBlock(n, opts.Nrh, opts.Seed)
	acc, err := ssm.NewAccumulator(n, opts.Nrh, opts.Nmm)
	if err != nil {
		return nil, err
	}
	var distSolver *dist.Solver
	if opts.Parallel.Ndm > 1 {
		distSolver, err = dist.NewSolver(q, opts.Parallel.Ndm)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Energy: q.E}
	res.Points = make([]PointStats, opts.Nint)
	for j := range res.Points {
		res.Points[j].Z = ring.Outer[j].Z
	}
	res.Timings.Setup = time.Since(tSetup)

	// ---- Step 1: the linear systems, hierarchically parallel ------------
	tSolve := time.Now()
	if err := solveAll(q, ring, v, acc, distSolver, opts, res); err != nil {
		return nil, err
	}
	res.Timings.SolveLinear = time.Since(tSolve)

	// ---- Steps 2-3: extraction -------------------------------------------
	tExtract := time.Now()
	ext, err := ssm.ExtractFromMoments(acc.Moments(), v, ssm.Options{Nmm: opts.Nmm, Delta: opts.Delta})
	if err != nil {
		return nil, err
	}
	res.Rank = ext.Rank
	res.Sigma = ext.SingularValues
	a := q.Op.G.Lz()
	for j, lam := range ext.Lambdas {
		psi := ext.Vectors.Col(j)
		pair := Eigenpair{
			Lambda:   lam,
			K:        qep.KFromLambda(lam, a),
			Psi:      psi,
			Residual: q.Residual(lam, psi),
		}
		res.AllPairs = append(res.AllPairs, pair)
		if ring.Contains(lam) && pair.Residual <= opts.ResidualTol {
			res.Pairs = append(res.Pairs, pair)
		}
	}
	res.Timings.Extract = time.Since(tExtract)
	return res, nil
}

// probeBlock builds the deterministic random probe V.
func probeBlock(n, nrh int, seed int64) *zlinalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	v := zlinalg.NewMatrix(n, nrh)
	for i := range v.Data {
		v.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// solveAll runs the 2*Nint*Nrh linear systems (halved to Nint*Nrh actual
// BiCG solves by the dual trick) under the top/middle/bottom hierarchy.
//
// Each middle-layer worker pulls one quadrature point from the shared queue
// and drives its top-block's whole column block through the blocked solver
// (BlockBiCGDual over an n x nb interleaved block, nb = columns of the top
// block), so the operator tables stream through memory once per BiCG
// iteration for all nb right-hand sides. Per-point statistics are
// accumulated worker-locally and merged under the global mutex once per
// (worker, point) instead of once per column; the moment accumulator is
// likewise fed one interleaved block per point. The Ndm > 1 bottom layer
// keeps the per-column distributed path.
func solveAll(q *qep.Problem, ring *contour.Ring, v *zlinalg.Matrix, acc *ssm.Accumulator, distSolver *dist.Solver, opts Options, res *Result) error {
	n := q.Dim()
	nint := opts.Nint
	par := opts.Parallel

	// Per-column majority controllers across the quadrature points.
	groups := make([]*linsolve.GroupStop, opts.Nrh)
	for c := range groups {
		groups[c] = linsolve.NewGroupStop(nint, opts.LoadBalanceStop)
	}

	// Top layer: split the Nrh columns into contiguous blocks.
	blocks := splitRange(opts.Nrh, par.Top)
	var (
		mu       sync.Mutex // guards res.Points, res.MatVecs, res.CommBytes, firstErr
		firstErr error
		topWG    sync.WaitGroup
	)
	for _, blk := range blocks {
		topWG.Add(1)
		go func(c0, c1 int) {
			defer topWG.Done()
			nb := c1 - c0
			// The block's right-hand sides, shared read-only by this block's
			// workers: interleaved row-major for the blocked solver, plain
			// columns for the distributed per-column path.
			var b []complex128
			var bcols [][]complex128
			if distSolver == nil {
				b = make([]complex128, n*nb)
				for i := 0; i < n; i++ {
					row := v.Data[i*v.Cols : i*v.Cols+v.Cols]
					copy(b[i*nb:i*nb+nb], row[c0:c1])
				}
			} else {
				bcols = make([][]complex128, nb)
				for c := range bcols {
					bcols[c] = v.Col(c0 + c)
				}
			}
			// Middle layer: quadrature points from a shared queue.
			points := make(chan int, nint)
			for j := 0; j < nint; j++ {
				points <- j
			}
			close(points)
			var midWG sync.WaitGroup
			for w := 0; w < par.Mid; w++ {
				midWG.Add(1)
				go func() {
					defer midWG.Done()
					if distSolver != nil {
						err := solvePointsDist(q, ring, points, bcols, acc, distSolver, groups, c0, opts, res, &mu)
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
						}
						return
					}
					// Per-worker blocked solve state, reused across points:
					// the solution blocks and the shared Krylov workspace
					// make the steady-state loop allocation-free.
					x := make([]complex128, n*nb)
					xd := make([]complex128, n*nb)
					ws := linsolve.NewWorkspace(n, nb)
					colGroups := groups[c0:c1]
					for j := range points {
						zOut := ring.Outer[j].Z
						wOut := ring.Outer[j].W
						zIn := ring.Inner[j].Z
						wIn := ring.Inner[j].W
						for i := range x {
							x[i] = 0
							xd[i] = 0
						}
						apply := func(vv, out []complex128, nbv int) { q.ApplyBlock(zOut, vv, out, nbv) }
						applyD := func(vv, out []complex128, nbv int) { q.ApplyDaggerBlock(zOut, vv, out, nbv) }
						lopts := linsolve.Options{
							Tol:     opts.BiCGTol,
							MaxIter: opts.MaxIter,
							History: opts.TrackHistories && c0 == 0,
						}
						rs := linsolve.BlockBiCGDual(apply, applyD, b, b, x, xd, nb, lopts, colGroups, ws)
						// Accumulate: primal -> outer node, dual -> the
						// paired inner node (P(zOut)^dagger = P(zIn)).
						acc.AddInterleaved(zOut, wOut, c0, nb, x)
						acc.AddInterleaved(zIn, wIn, c0, nb, xd)
						var local PointStats
						var matVecs int
						for _, r := range rs {
							local.Iterations += r.Iterations
							if r.Converged {
								local.Converged++
							}
							if r.StoppedEarly {
								local.StoppedEarly++
							}
							matVecs += r.MatVecApplied
						}
						mu.Lock()
						ps := &res.Points[j]
						ps.Iterations += local.Iterations
						ps.Converged += local.Converged
						ps.StoppedEarly += local.StoppedEarly
						if lopts.History && ps.History == nil {
							ps.History = rs[0].History
						}
						res.MatVecs += matVecs
						mu.Unlock()
					}
				}()
			}
			midWG.Wait()
		}(blk[0], blk[1])
	}
	topWG.Wait()
	return firstErr
}

// solvePointsDist drains the point queue with the per-column distributed
// bottom layer (Ndm > 1). Statistics are accumulated locally and merged
// into the shared result once per point, not once per column.
func solvePointsDist(q *qep.Problem, ring *contour.Ring, points <-chan int, bcols [][]complex128, acc *ssm.Accumulator, distSolver *dist.Solver, groups []*linsolve.GroupStop, c0 int, opts Options, res *Result, mu *sync.Mutex) error {
	n := q.Dim()
	nb := len(bcols)
	x := make([]complex128, n)
	xd := make([]complex128, n)
	// Worker-local interleaved solution blocks: columns are gathered here
	// as they are solved and merged into the shared accumulator once per
	// quadrature point (one lock acquisition), never once per column.
	xBlk := make([]complex128, n*nb)
	xdBlk := make([]complex128, n*nb)
	for j := range points {
		zOut := ring.Outer[j].Z
		wOut := ring.Outer[j].W
		zIn := ring.Inner[j].Z
		wIn := ring.Inner[j].W
		var local PointStats
		var matVecs int
		var commBytes int64
		for c := range bcols {
			b := bcols[c]
			lopts := linsolve.Options{
				Tol:     opts.BiCGTol,
				MaxIter: opts.MaxIter,
				Group:   groups[c0+c],
				History: opts.TrackHistories && c0+c == 0,
			}
			r, stats, err := distSolver.SolveDual(zOut, b, b, x, xd, lopts)
			if err != nil {
				return err
			}
			commBytes += stats.Bytes
			for i := 0; i < n; i++ {
				xBlk[i*nb+c] = x[i]
				xdBlk[i*nb+c] = xd[i]
			}
			local.Iterations += r.Iterations
			if r.Converged {
				local.Converged++
			}
			if r.StoppedEarly {
				local.StoppedEarly++
			}
			if lopts.History && local.History == nil {
				local.History = r.History
			}
			matVecs += r.MatVecApplied
		}
		// Primal block -> outer node, dual block -> the paired inner node.
		acc.AddInterleaved(zOut, wOut, c0, nb, xBlk)
		acc.AddInterleaved(zIn, wIn, c0, nb, xdBlk)
		mu.Lock()
		ps := &res.Points[j]
		ps.Iterations += local.Iterations
		ps.Converged += local.Converged
		ps.StoppedEarly += local.StoppedEarly
		if local.History != nil && ps.History == nil {
			ps.History = local.History
		}
		res.MatVecs += matVecs
		res.CommBytes += commBytes
		mu.Unlock()
	}
	return nil
}

// splitRange divides [0,n) into at most p contiguous non-empty blocks.
func splitRange(n, p int) [][2]int {
	if p > n {
		p = n
	}
	out := make([][2]int, 0, p)
	base, extra := n/p, n%p
	at := 0
	for i := 0; i < p; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out = append(out, [2]int{at, at + sz})
		at += sz
	}
	return out
}
