// Package core is the paper's primary contribution: the complex band
// structure (CBS) solver that expresses the real-space-grid Kohn-Sham
// equation of a bulk unit cell as a quadratic eigenvalue problem and
// computes only the annulus eigenvalues lambda_min < |lambda| < 1/lambda_min
// with the Sakurai-Sugiura method (Algorithm 1), the ring contour of Fig. 2,
// the dual-system BiCG halving of Sec. 3.2, and the three layers of
// hierarchical parallelism of Sec. 3.3 (right-hand sides / quadrature
// points / domain decomposition).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/contour"
	"cbs/internal/dist"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/soa"
	"cbs/internal/ssm"
	"cbs/internal/zlinalg"
)

// Parallel configures the three layers of the hierarchy. Each field is a
// worker count; 1 means serial at that layer.
type Parallel struct {
	Top int // concurrent right-hand-side blocks (no communication)
	Mid int // concurrent quadrature points (no communication)
	Ndm int // domains of the z-slab decomposition (halo + allreduce traffic)
}

// normalize fills zero fields with 1.
func (p Parallel) normalize() Parallel {
	if p.Top < 1 {
		p.Top = 1
	}
	if p.Mid < 1 {
		p.Mid = 1
	}
	if p.Ndm < 1 {
		p.Ndm = 1
	}
	return p
}

// Options collects the solver parameters in the paper's notation; the
// defaults (via DefaultOptions) are the paper's Sec. 4 settings.
type Options struct {
	Nint      int     // quadrature points per circle (paper: 32)
	Nmm       int     // moment blocks (paper: 8)
	Nrh       int     // right-hand sides (paper: 16 or 64)
	Delta     float64 // Hankel SVD threshold (paper: 1e-10)
	LambdaMin float64 // annulus inner radius (paper: 0.5)
	BiCGTol   float64 // linear-solve tolerance (paper: 1e-10)
	MaxIter   int     // BiCG iteration cap (0: dimension-derived)

	// ResidualTol filters extracted eigenpairs by the relative QEP
	// residual ||P(lambda) psi|| / ||psi||.
	ResidualTol float64

	// LoadBalanceStop enables the majority stopping rule across quadrature
	// points (paper Sec. 3.3).
	LoadBalanceStop bool

	// TrackHistories records the BiCG residual history of the first
	// right-hand side at every quadrature point (Fig. 5 data).
	TrackHistories bool

	// Kernels selects the blocked hot-path layout: "soa" (default; the
	// split-complex planar kernels, bit-identical to AoS at float64) or
	// "aos" (the interleaved []complex128 kernels, kept as the measured
	// baseline of the bench trajectory). The Ndm > 1 distributed bottom
	// layer always uses the per-column AoS path regardless.
	Kernels string

	// Precision selects the linear-solve arithmetic: "complex128"
	// (default) or "mixed" — float32 split-plane inner BiCG with float64
	// dot/norm accumulation plus iterative refinement back to complex128
	// residual targets (see internal/linsolve.BlockBiCGDualMixed). Moment
	// accumulation always stays complex128. Mixed requires the SoA
	// kernels and the single-domain blocked path (Ndm = 1).
	Precision string

	Seed     int64 // probe block seed (deterministic runs)
	Parallel Parallel

	// AutoExpand re-runs the solve with doubled Nrh when the Hankel rank
	// saturates the subspace (rank == Nrh*Nmm), which signals that more
	// eigenvalues live in the annulus than the moment space can represent
	// and some are being missed. At most MaxExpand doublings (default 2
	// when AutoExpand is set).
	AutoExpand bool
	MaxExpand  int

	// Chaos optionally injects deterministic faults into the contour solve
	// (Krylov breakdowns, fallback failures, fatal point faults, halo
	// corruption); nil in production. See internal/chaos and the
	// chaos-smoke CI job.
	Chaos *chaos.Injector
}

// Kernel-layout and precision values for Options.Kernels / Options.Precision.
const (
	KernelsAoS = "aos"
	KernelsSoA = "soa"

	PrecisionComplex128 = "complex128"
	PrecisionMixed      = "mixed"
)

// kernels returns the effective kernel layout ("" defaults to SoA).
func (o Options) kernels() string {
	if o.Kernels == "" {
		return KernelsSoA
	}
	return o.Kernels
}

// precision returns the effective precision ("" defaults to complex128).
func (o Options) precision() string {
	if o.Precision == "" {
		return PrecisionComplex128
	}
	return o.Precision
}

// DefaultOptions returns the paper's parameter set.
func DefaultOptions() Options {
	return Options{
		Nint:        32,
		Nmm:         8,
		Nrh:         16,
		Delta:       1e-10,
		LambdaMin:   0.5,
		BiCGTol:     1e-10,
		ResidualTol: 1e-5,
		Seed:        1,
		Parallel:    Parallel{Top: 1, Mid: 1, Ndm: 1},
	}
}

// Eigenpair is one CBS solution at the solved energy.
type Eigenpair struct {
	Lambda   complex128   // Bloch factor e^{ika}
	K        complex128   // complex wave vector (1/bohr)
	Psi      []complex128 // unit-cell eigenvector (unit norm)
	Residual float64      // relative QEP residual
}

// Timings is the paper's Table 1 cost breakdown.
type Timings struct {
	Setup       time.Duration // contour + probe preparation ("read matrix data" analog)
	SolveLinear time.Duration // step 1: the 2*Nint*Nrh linear systems
	Extract     time.Duration // steps 2-3: moments, Hankel, small EVP
}

// PointStats records the linear-solve behaviour at one quadrature point.
type PointStats struct {
	Z            complex128
	Iterations   int       // Krylov iterations summed over this point's columns
	Converged    int       // converged columns (including recovered ones)
	StoppedEarly int       // columns halted by the majority rule
	History      []float64 // first column's residual history (optional)

	// Recovery-ladder activity (see internal/core/ladder.go).
	Breakdowns  int     // columns whose first BiCG pass hit a Krylov breakdown
	Restarts    int     // perturbed BiCG restarts attempted
	Fallbacks   int     // escalations to restarted GMRES
	Dropped     int     // columns dropped from the quadrature after the ladder
	MaxResidual float64 // worst final relative residual among kept columns

	// Mixed-precision activity (Precision "mixed" only).
	Refines      int // iterative-refinement steps summed over columns
	RefineFailed int // columns whose refinement budget ran out
}

// Result is the outcome of one CBS solve at a fixed energy.
type Result struct {
	Energy float64 // hartree

	Pairs    []Eigenpair // annulus eigenpairs passing the residual filter
	AllPairs []Eigenpair // every extracted pair (diagnostics)
	Rank     int         // Hankel numerical rank m-hat
	Sigma    []float64   // Hankel singular values

	Points    []PointStats // per outer-circle quadrature point
	Timings   Timings
	MatVecs   int   // operator applications across all solves
	CommBytes int64 // bottom-layer traffic (0 when Ndm = 1)
	Expanded  int   // the Nrh actually used (grows under AutoExpand)

	// Diagnostics summarizes recovery-ladder activity and graceful
	// degradation (JSON-ready; exported by cmd/cbs --diagnostics).
	Diagnostics Diagnostics
}

// Solve computes the CBS eigenpairs of the QEP at its energy. With
// AutoExpand set it retries with a larger probe block when the moment
// subspace saturates.
func Solve(q *qep.Problem, opts Options) (*Result, error) {
	//cbs:ctxescape public pre-context wrapper: callers without a ctx get the root by definition
	return SolveContext(context.Background(), q, opts)
}

// SolveContext is Solve under a context: cancellation or an expired
// deadline stops the in-flight contour workers promptly (each worker
// re-checks the context before taking the next quadrature point, and the
// distributed bottom layer folds the cancellation into its per-iteration
// reduction) and the returned error wraps ctx.Err().
func SolveContext(ctx context.Context, q *qep.Problem, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	expands := opts.MaxExpand
	if opts.AutoExpand && expands <= 0 {
		expands = 2
	}
	for {
		res, err := solveOnce(ctx, q, opts)
		if err != nil {
			return nil, err
		}
		res.Expanded = opts.Nrh
		if !opts.AutoExpand || expands == 0 || res.Rank < opts.Nrh*opts.Nmm {
			return res, nil
		}
		if 2*opts.Nrh*opts.Nmm > q.Dim() {
			return res, nil // cannot grow further
		}
		opts.Nrh *= 2
		expands--
	}
}

// solveOnce is a single pass of Algorithm 1.
func solveOnce(ctx context.Context, q *qep.Problem, opts Options) (*Result, error) {
	opts.Parallel = opts.Parallel.normalize()
	if opts.Nint < 1 || opts.Nmm < 1 || opts.Nrh < 1 {
		return nil, fmt.Errorf("%w: Nint/Nmm/Nrh must be positive, got %d/%d/%d", ErrBadOptions, opts.Nint, opts.Nmm, opts.Nrh)
	}
	if opts.Nrh*opts.Nmm > q.Dim() {
		return nil, fmt.Errorf("%w: Nrh*Nmm = %d > dimension %d", ErrSubspaceTooLarge, opts.Nrh*opts.Nmm, q.Dim())
	}
	switch opts.Kernels {
	case "", KernelsAoS, KernelsSoA:
	default:
		return nil, fmt.Errorf("%w: unknown Kernels %q", ErrBadOptions, opts.Kernels)
	}
	switch opts.Precision {
	case "", PrecisionComplex128, PrecisionMixed:
	default:
		return nil, fmt.Errorf("%w: unknown Precision %q", ErrBadOptions, opts.Precision)
	}
	if opts.precision() == PrecisionMixed {
		if opts.kernels() == KernelsAoS {
			return nil, fmt.Errorf("%w: Precision \"mixed\" requires the SoA kernels", ErrBadOptions)
		}
		if opts.Parallel.Ndm > 1 {
			return nil, fmt.Errorf("%w: Precision \"mixed\" requires the single-domain blocked path (Ndm = 1)", ErrBadOptions)
		}
		if q.Op == nil {
			return nil, fmt.Errorf("%w: Precision \"mixed\" requires the FD-grid backend (this backend has no SoA tables)", ErrBadOptions)
		}
	}
	tSetup := time.Now()
	ring, err := contour.NewRing(opts.LambdaMin, opts.Nint)
	if err != nil {
		return nil, err
	}
	n := q.Dim()
	v := probeBlock(n, opts.Nrh, opts.Seed)
	acc, err := ssm.NewAccumulator(n, opts.Nrh, opts.Nmm)
	if err != nil {
		return nil, err
	}
	var distSolver *dist.Solver
	if opts.Parallel.Ndm > 1 {
		distSolver, err = dist.NewSolver(q, opts.Parallel.Ndm)
		if err != nil {
			return nil, err
		}
		distSolver.SetChaos(opts.Chaos)
	}
	res := &Result{Energy: q.E}
	res.Points = make([]PointStats, opts.Nint)
	for j := range res.Points {
		res.Points[j].Z = ring.Outer[j].Z
	}
	res.Timings.Setup = time.Since(tSetup)

	// ---- Step 1: the linear systems, hierarchically parallel ------------
	tSolve := time.Now()
	if err := solveAll(ctx, q, ring, v, acc, distSolver, opts, res); err != nil {
		return nil, err
	}
	res.Timings.SolveLinear = time.Since(tSolve)

	// ---- Steps 2-3: extraction -------------------------------------------
	tExtract := time.Now()
	ext, err := ssm.ExtractFromMoments(acc.Moments(), v, ssm.Options{Nmm: opts.Nmm, Delta: opts.Delta})
	if err != nil {
		return nil, err
	}
	res.Rank = ext.Rank
	res.Sigma = ext.SingularValues
	a := q.CellLength()
	for j, lam := range ext.Lambdas {
		psi := ext.Vectors.Col(j)
		pair := Eigenpair{
			Lambda:   lam,
			K:        qep.KFromLambda(lam, a),
			Psi:      psi,
			Residual: q.Residual(lam, psi),
		}
		res.AllPairs = append(res.AllPairs, pair)
		if ring.Contains(lam) && pair.Residual <= opts.ResidualTol {
			res.Pairs = append(res.Pairs, pair)
		}
	}
	res.Timings.Extract = time.Since(tExtract)
	res.finalizeDiagnostics(opts)
	return res, nil
}

// probeBlock builds the deterministic random probe V.
func probeBlock(n, nrh int, seed int64) *zlinalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	v := zlinalg.NewMatrix(n, nrh)
	for i := range v.Data {
		v.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// solveAll runs the 2*Nint*Nrh linear systems (halved to Nint*Nrh actual
// BiCG solves by the dual trick) under the top/middle/bottom hierarchy.
//
// Each middle-layer worker pulls one quadrature point from the shared queue
// and drives its top-block's whole column block through the blocked solver
// (BlockBiCGDual over an n x nb interleaved block, nb = columns of the top
// block), so the operator tables stream through memory once per BiCG
// iteration for all nb right-hand sides. Per-point statistics are
// accumulated worker-locally and merged under the global mutex once per
// (worker, point) instead of once per column; the moment accumulator is
// likewise fed one interleaved block per point. The Ndm > 1 bottom layer
// keeps the per-column distributed path.
func solveAll(ctx context.Context, q *qep.Problem, ring *contour.Ring, v *zlinalg.Matrix, acc *ssm.Accumulator, distSolver *dist.Solver, opts Options, res *Result) error {
	n := q.Dim()
	nint := opts.Nint
	par := opts.Parallel

	// The first fatal error cancels the whole contour: every worker
	// re-checks cctx before taking its next quadrature point, so in-flight
	// work winds down promptly instead of draining the queue. A caller
	// timeout flows through the same context.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Per-column majority controllers across the quadrature points.
	groups := make([]*linsolve.GroupStop, opts.Nrh)
	for c := range groups {
		groups[c] = linsolve.NewGroupStop(nint, opts.LoadBalanceStop)
	}

	// Top layer: split the Nrh columns into contiguous blocks.
	blocks := splitRange(opts.Nrh, par.Top)
	var (
		mu       sync.Mutex // guards res fields, the drop ledger, firstErr
		firstErr error
		topWG    sync.WaitGroup
	)
	// Graceful-degradation ledger: contributions dropped by the recovery
	// ladder, per column (for weight renormalization) and as (point,
	// column) pairs (for diagnostics). Guarded by mu.
	droppedByCol := make([]int, opts.Nrh)
	var droppedPairs []DroppedPair
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for _, blk := range blocks {
		topWG.Add(1)
		go func(c0, c1 int) {
			defer topWG.Done()
			nb := c1 - c0
			// The SoA planes are an FD-grid specialization (the coefficient
			// tables live on the concrete operator); every other backend
			// takes the portable interleaved AoS path, which is bit-identical.
			useSoA := distSolver == nil && opts.kernels() == KernelsSoA && q.Op != nil
			// The block's right-hand sides, shared read-only by this block's
			// workers: interleaved row-major for the blocked solver, plain
			// columns for the distributed per-column path; the SoA path packs
			// the interleaved block into split planes once per top block.
			var b []complex128
			var bSoA *soa.Block[float64]
			var bcols [][]complex128
			if distSolver == nil {
				b = make([]complex128, n*nb)
				for i := 0; i < n; i++ {
					row := v.Data[i*v.Cols : i*v.Cols+v.Cols]
					copy(b[i*nb:i*nb+nb], row[c0:c1])
				}
				if useSoA {
					bSoA = soa.NewBlock[float64](n, nb)
					soa.Pack(bSoA, b)
				}
			} else {
				bcols = make([][]complex128, nb)
				for c := range bcols {
					bcols[c] = v.Col(c0 + c)
				}
			}
			// Middle layer: quadrature points from a shared queue.
			points := make(chan int, nint)
			for j := 0; j < nint; j++ {
				points <- j
			}
			close(points)
			var midWG sync.WaitGroup
			for w := 0; w < par.Mid; w++ {
				midWG.Add(1)
				go func() {
					defer midWG.Done()
					if distSolver != nil {
						err := solvePointsDist(cctx, q, ring, points, bcols, acc, distSolver, groups, c0, opts, res, &mu, droppedByCol, &droppedPairs)
						if err != nil {
							setErr(err)
						}
						return
					}
					if useSoA {
						err := solvePointsSoA(cctx, q, ring, points, b, bSoA, acc, groups[c0:c1], c0, opts, res, &mu, droppedByCol, &droppedPairs)
						if err != nil {
							setErr(err)
						}
						return
					}
					// Per-worker blocked solve state, reused across points:
					// the solution blocks, the shared Krylov workspace and
					// the recovery-ladder column scratch make the
					// steady-state loop allocation-free.
					x := make([]complex128, n*nb)
					xd := make([]complex128, n*nb)
					ws := linsolve.NewWorkspace(n, nb)
					bcol := make([]complex128, n)
					xcol := make([]complex128, n)
					xdcol := make([]complex128, n)
					colGroups := groups[c0:c1]
					for j := range points {
						if cctx.Err() != nil {
							return
						}
						//cbs:chaossite solver.point-par
						if injErr := opts.Chaos.PointFault(j); injErr != nil {
							setErr(fmt.Errorf("core: fatal fault at quadrature point %d: %w", j, injErr))
							return
						}
						zOut := ring.Outer[j].Z
						wOut := ring.Outer[j].W
						zIn := ring.Inner[j].Z
						wIn := ring.Inner[j].W
						for i := range x {
							x[i] = 0
							xd[i] = 0
						}
						apply := func(vv, out []complex128, nbv int) { q.ApplyBlock(zOut, vv, out, nbv) }
						applyD := func(vv, out []complex128, nbv int) { q.ApplyDaggerBlock(zOut, vv, out, nbv) }
						lopts := linsolve.Options{
							Tol:       opts.BiCGTol,
							MaxIter:   opts.MaxIter,
							History:   opts.TrackHistories && c0 == 0,
							Chaos:     opts.Chaos,
							ChaosSite: chaos.Site{Point: j, Col: c0},
						}
						rs := linsolve.BlockBiCGDual(apply, applyD, b, b, x, xd, nb, lopts, colGroups, ws)
						// Recovery ladder for failed columns, before the
						// moment accumulation: dropped columns are zeroed in
						// place so the accumulator never sees them.
						var local PointStats
						dropped, recMV := recoverBlockColumns(q, zOut, b, x, xd, nb, j, c0, colGroups, rs, opts, &local, bcol, xcol, xdcol)
						// Accumulate: primal -> outer node, dual -> the
						// paired inner node (P(zOut)^dagger = P(zIn)).
						acc.AddInterleaved(zOut, wOut, c0, nb, x)
						acc.AddInterleaved(zIn, wIn, c0, nb, xd)
						matVecs := recMV
						for _, r := range rs {
							local.Iterations += r.Iterations
							if r.Converged {
								local.Converged++
							}
							if r.StoppedEarly {
								local.StoppedEarly++
							}
							matVecs += r.MatVecApplied
						}
						mu.Lock()
						mergePointStats(&res.Points[j], &local)
						if lopts.History && res.Points[j].History == nil {
							res.Points[j].History = rs[0].History
						}
						for _, c := range dropped {
							droppedByCol[c]++
							droppedPairs = append(droppedPairs, DroppedPair{Point: j, Col: c})
						}
						res.MatVecs += matVecs
						mu.Unlock()
					}
				}()
			}
			midWG.Wait()
		}(blk[0], blk[1])
	}
	topWG.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: solve canceled: %w", err)
	}
	// Graceful degradation: renormalize each degraded column's surviving
	// quadrature weights (a uniform column scaling, because the moments are
	// weight-linear). A column that lost more than half its nodes is beyond
	// recovery and fails the solve (contour.ErrTooManyDropped).
	if len(droppedPairs) > 0 {
		factors := make([]float64, opts.Nrh)
		for c := range factors {
			f, err := contour.RenormFactor(nint, droppedByCol[c])
			if err != nil {
				return fmt.Errorf("core: probe column %d: %w", c, err)
			}
			factors[c] = f
		}
		acc.ScaleColumns(factors)
		res.Diagnostics.DroppedPairs = droppedPairs
		res.Diagnostics.RenormFactors = factors
	}
	return nil
}

// mergePointStats folds a worker-local per-point record into the shared
// one; the caller holds the global mutex.
func mergePointStats(ps, local *PointStats) {
	ps.Iterations += local.Iterations
	ps.Converged += local.Converged
	ps.StoppedEarly += local.StoppedEarly
	ps.Breakdowns += local.Breakdowns
	ps.Restarts += local.Restarts
	ps.Fallbacks += local.Fallbacks
	ps.Dropped += local.Dropped
	ps.Refines += local.Refines
	ps.RefineFailed += local.RefineFailed
	if local.MaxResidual > ps.MaxResidual {
		ps.MaxResidual = local.MaxResidual
	}
	if local.History != nil && ps.History == nil {
		ps.History = local.History
	}
}

// solvePointsDist drains the point queue with the per-column distributed
// bottom layer (Ndm > 1). Statistics are accumulated locally and merged
// into the shared result once per point, not once per column. A failed
// column runs the same recovery ladder as the blocked path; the recovery
// solves themselves are local-serial (recovery is rare, and a breakdown is
// a property of the Krylov sequence, not of the decomposition).
func solvePointsDist(ctx context.Context, q *qep.Problem, ring *contour.Ring, points <-chan int, bcols [][]complex128, acc *ssm.Accumulator, distSolver *dist.Solver, groups []*linsolve.GroupStop, c0 int, opts Options, res *Result, mu *sync.Mutex, droppedByCol []int, droppedPairs *[]DroppedPair) error {
	n := q.Dim()
	nb := len(bcols)
	x := make([]complex128, n)
	xd := make([]complex128, n)
	// Worker-local interleaved solution blocks: columns are gathered here
	// as they are solved and merged into the shared accumulator once per
	// quadrature point (one lock acquisition), never once per column.
	xBlk := make([]complex128, n*nb)
	xdBlk := make([]complex128, n*nb)
	for j := range points {
		if ctx.Err() != nil {
			// Canceled by another worker's fatal error (which reports it)
			// or by the caller (which solveAll reports).
			return nil
		}
		//cbs:chaossite solver.point
		if injErr := opts.Chaos.PointFault(j); injErr != nil {
			return fmt.Errorf("core: fatal fault at quadrature point %d: %w", j, injErr)
		}
		zOut := ring.Outer[j].Z
		wOut := ring.Outer[j].W
		zIn := ring.Inner[j].Z
		wIn := ring.Inner[j].W
		var local PointStats
		var localDropped []int
		var matVecs int
		var commBytes int64
		for c := range bcols {
			b := bcols[c]
			lopts := linsolve.Options{
				Tol:       opts.BiCGTol,
				MaxIter:   opts.MaxIter,
				Group:     groups[c0+c],
				History:   opts.TrackHistories && c0+c == 0,
				Chaos:     opts.Chaos,
				ChaosSite: chaos.Site{Point: j, Col: c0 + c},
			}
			r, stats, err := distSolver.SolveDual(ctx, zOut, b, b, x, xd, lopts)
			if err != nil {
				return err
			}
			commBytes += stats.Bytes
			local.Iterations += r.Iterations
			matVecs += r.MatVecApplied
			if r.Breakdown {
				local.Breakdowns++
			}
			kept := true
			switch {
			case r.Converged:
				local.Converged++
			case r.StoppedEarly:
				local.StoppedEarly++
			default:
				out := recoverColumn(q, zOut, b, x, xd, j, c0+c, groups[c0+c], r, opts)
				local.Restarts += out.restarts
				local.Fallbacks += out.fallbacks
				local.Iterations += out.iterations
				matVecs += out.matVecs
				if out.dropped {
					kept = false
					local.Dropped++
					localDropped = append(localDropped, c0+c)
					for i := range x {
						x[i] = 0
						xd[i] = 0
					}
				} else {
					local.Converged++
					r.Residual = out.residual
				}
			}
			if kept && r.Residual > local.MaxResidual {
				local.MaxResidual = r.Residual
			}
			for i := 0; i < n; i++ {
				xBlk[i*nb+c] = x[i]
				xdBlk[i*nb+c] = xd[i]
			}
			if lopts.History && local.History == nil {
				local.History = r.History
			}
		}
		// Primal block -> outer node, dual block -> the paired inner node.
		acc.AddInterleaved(zOut, wOut, c0, nb, xBlk)
		acc.AddInterleaved(zIn, wIn, c0, nb, xdBlk)
		mu.Lock()
		mergePointStats(&res.Points[j], &local)
		for _, dc := range localDropped {
			droppedByCol[dc]++
			*droppedPairs = append(*droppedPairs, DroppedPair{Point: j, Col: dc})
		}
		res.MatVecs += matVecs
		res.CommBytes += commBytes
		mu.Unlock()
	}
	return nil
}

// splitRange divides [0,n) into at most p contiguous non-empty blocks.
func splitRange(n, p int) [][2]int {
	if p > n {
		p = n
	}
	out := make([][2]int, 0, p)
	base, extra := n/p, n%p
	at := 0
	for i := 0; i < p; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out = append(out, [2]int{at, at + sz})
		at += sz
	}
	return out
}
