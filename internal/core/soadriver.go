package core

// Split-complex (SoA) middle layer: the blocked quadrature-point loop of
// solveAll on soa.Block planes. With Precision "complex128" the float64
// plane solver is bit-identical to the AoS BlockBiCGDual, so this path is
// the default; with Precision "mixed" the inner BiCG runs on float32
// planes with iterative refinement back to float64 residual targets. The
// recovery ladder and the moment accumulator keep their []complex128
// interfaces: solutions are unpacked once per point at this boundary.

import (
	"context"
	"fmt"
	"sync"

	"cbs/internal/chaos"
	"cbs/internal/contour"
	"cbs/internal/hamiltonian"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/soa"
	"cbs/internal/ssm"
)

// mixedFailLimit is the per-point escalation threshold: when more than
// half a block's columns exhaust their refinement budget, float32 inner
// solves are inadequate for this energy (conditioning, not bad luck) and
// the whole solve fails with linsolve.ErrNoConvergence so the sweep ladder
// can escalate mixed -> full precision. At or below the threshold the
// failed columns go through the per-column full-precision recovery ladder
// like any other unconverged column.
func mixedFailLimit(nb int) int { return nb / 2 }

// solvePointsSoA drains the point queue with the split-complex blocked
// solver. It mirrors the AoS worker loop in solveAll: one BlockBiCGDualSoA
// (or BlockBiCGDualMixed) per point, recovery ladder on the unpacked
// complex solutions, one accumulator merge per point.
func solvePointsSoA(ctx context.Context, q *qep.Problem, ring *contour.Ring, points <-chan int, b []complex128, bSoA *soa.Block[float64], acc *ssm.Accumulator, colGroups []*linsolve.GroupStop, c0 int, opts Options, res *Result, mu *sync.Mutex, droppedByCol []int, droppedPairs *[]DroppedPair) error {
	n := q.Dim()
	nb := bSoA.NB()
	mixed := opts.precision() == PrecisionMixed
	t64 := q.Op.SoA64()
	var t32 *hamiltonian.SoATables[float32]
	if mixed {
		t32 = q.Op.SoA32()
	}

	// Per-worker state, reused across points: plane solution blocks, the
	// Krylov workspace, the unpacked complex solutions feeding the ladder
	// and the accumulator, and the ladder's column scratch.
	xb := soa.NewBlock[float64](n, nb)
	xdb := soa.NewBlock[float64](n, nb)
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	bcol := make([]complex128, n)
	xcol := make([]complex128, n)
	xdcol := make([]complex128, n)
	var ws *linsolve.WorkspaceSoA[float64]
	var mws *linsolve.MixedWorkspace
	if mixed {
		mws = linsolve.NewMixedWorkspace(n, nb)
	} else {
		ws = linsolve.NewWorkspaceSoA[float64](n, nb)
	}

	for j := range points {
		if ctx.Err() != nil {
			return nil
		}
		//cbs:chaossite solver.soa-point
		if injErr := opts.Chaos.PointFault(j); injErr != nil {
			return fmt.Errorf("core: fatal fault at quadrature point %d: %w", j, injErr)
		}
		zOut := ring.Outer[j].Z
		wOut := ring.Outer[j].W
		zIn := ring.Inner[j].Z
		wIn := ring.Inner[j].W
		xb.Zero()
		xdb.Zero()
		apply := func(v, out *soa.Block[float64]) { qep.ApplyBlockSoA(q, t64, zOut, v, out) }
		applyD := func(v, out *soa.Block[float64]) { qep.ApplyDaggerBlockSoA(q, t64, zOut, v, out) }
		lopts := linsolve.Options{
			Tol:       opts.BiCGTol,
			MaxIter:   opts.MaxIter,
			History:   opts.TrackHistories && c0 == 0,
			Chaos:     opts.Chaos,
			ChaosSite: chaos.Site{Point: j, Col: c0},
		}
		var rs []linsolve.Result
		var local PointStats
		if mixed {
			apply32 := func(v, out *soa.Block[float32]) { qep.ApplyBlockSoA(q, t32, zOut, v, out) }
			applyD32 := func(v, out *soa.Block[float32]) { qep.ApplyDaggerBlockSoA(q, t32, zOut, v, out) }
			rs = linsolve.BlockBiCGDualMixed(apply, applyD, apply32, applyD32, bSoA, bSoA, xb, xdb, lopts, colGroups, mws)
			failed := 0
			for _, r := range rs {
				local.Refines += r.RefineSteps
				if r.RefineFailed {
					failed++
				}
			}
			local.RefineFailed = failed
			if failed > mixedFailLimit(nb) {
				return fmt.Errorf("core: mixed-precision refinement stagnated on %d/%d columns at quadrature point %d: %w", failed, nb, j, linsolve.ErrNoConvergence)
			}
		} else {
			rs = linsolve.BlockBiCGDualSoA(apply, applyD, bSoA, bSoA, xb, xdb, lopts, colGroups, ws)
		}
		soa.Unpack(x, xb)
		soa.Unpack(xd, xdb)
		// Recovery ladder on the unpacked solutions (full precision, per
		// failed column), then moment accumulation exactly as in the AoS
		// path; dropped columns are zeroed before the accumulator sees
		// them.
		dropped, recMV := recoverBlockColumns(q, zOut, b, x, xd, nb, j, c0, colGroups, rs, opts, &local, bcol, xcol, xdcol)
		acc.AddInterleaved(zOut, wOut, c0, nb, x)
		acc.AddInterleaved(zIn, wIn, c0, nb, xd)
		matVecs := recMV
		for _, r := range rs {
			local.Iterations += r.Iterations
			if r.Converged {
				local.Converged++
			}
			if r.StoppedEarly {
				local.StoppedEarly++
			}
			matVecs += r.MatVecApplied
		}
		mu.Lock()
		mergePointStats(&res.Points[j], &local)
		if lopts.History && res.Points[j].History == nil {
			res.Points[j].History = rs[0].History
		}
		for _, c := range dropped {
			droppedByCol[c]++
			*droppedPairs = append(*droppedPairs, DroppedPair{Point: j, Col: c})
		}
		res.MatVecs += matVecs
		mu.Unlock()
	}
	return nil
}
