package core

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"

	"cbs/internal/bandstructure"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/qep"
)

// smallAl builds the test system: bulk Al(100) on a coarse grid.
func smallAl(t *testing.T, nz int) *hamiltonian.Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: nz, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// testOptions returns fast solver settings for the small test systems.
func testOptions() Options {
	o := DefaultOptions()
	o.Nint = 16
	o.Nmm = 6
	o.Nrh = 8
	return o
}

// TestCBSMatchesBandStructure is the Fig. 6 consistency check in miniature:
// at an energy taken from the conventional band structure E_n(k0), the CBS
// must contain the propagating solution lambda = e^{i k0 a}.
func TestCBSMatchesBandStructure(t *testing.T) {
	op := smallAl(t, 8)
	a := op.G.Lz()
	k0 := 0.55 * math.Pi / a // generic interior point of the BZ
	bands, err := bandstructure.Bands(op, []float64{k0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a low-lying band (valence-like state, well separated).
	e := bands[0][2]
	q := qep.New(op, e)
	res, err := Solve(q, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatalf("no CBS eigenpairs found at E=%g (rank %d, sigma %v)", e, res.Rank, firstFew(res.Sigma))
	}
	want := qep.LambdaFromK(complex(k0, 0), a)
	best := math.Inf(1)
	for _, p := range res.Pairs {
		if d := cmplx.Abs(p.Lambda - want); d < best {
			best = d
		}
	}
	if best > 1e-5 {
		t.Errorf("propagating state not recovered: min |lambda - e^{ik0 a}| = %g", best)
		for _, p := range res.Pairs {
			t.Logf("  lambda = %v  |lambda| = %.6f  res = %.2e", p.Lambda, cmplx.Abs(p.Lambda), p.Residual)
		}
	}
	// Residual filter must hold for every reported pair.
	for _, p := range res.Pairs {
		if p.Residual > testOptions().ResidualTol {
			t.Errorf("pair %v exceeds the residual filter: %g", p.Lambda, p.Residual)
		}
	}
	// Timings recorded, solve dominates (Table 1 property).
	if res.Timings.SolveLinear <= 0 || res.Timings.Extract <= 0 {
		t.Error("timings not recorded")
	}
	if res.MatVecs == 0 {
		t.Error("matvec counter not recorded")
	}
}

// TestSpectrumPairing: eigenvalues of the QEP at real energy come in
// (lambda, 1/conj(lambda)) pairs -- the identity P(z)^dagger = P(1/conj(z))
// at work. Every reported annulus eigenvalue must have its partner.
func TestSpectrumPairing(t *testing.T) {
	if testing.Short() {
		t.Skip("long solve at EF")
	}
	op := smallAl(t, 8)
	ef, err := bandstructure.FermiLevel(op, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	res, err := Solve(q, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Skip("no eigenpairs in the annulus at EF on this coarse grid")
	}
	for _, p := range res.Pairs {
		partner := 1 / cmplx.Conj(p.Lambda)
		best := math.Inf(1)
		for _, p2 := range res.Pairs {
			if d := cmplx.Abs(p2.Lambda - partner); d < best {
				best = d
			}
		}
		if best > 1e-4 {
			t.Errorf("eigenvalue %v lacks its 1/conj partner (closest %g)", p.Lambda, best)
		}
	}
}

// TestParallelLayersAgree: every parallel configuration must produce the
// same spectrum as the serial run.
func TestParallelLayersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("long multi-config solve; TestGroupStopConcurrentBlocked covers concurrency in -short runs")
	}
	op := smallAl(t, 16)
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	opts := testOptions()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Nrh = 6

	serial, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := lambdaSet(serial)
	configs := []Parallel{
		{Top: 3, Mid: 1, Ndm: 1},
		{Top: 1, Mid: 4, Ndm: 1},
		{Top: 2, Mid: 2, Ndm: 2},
	}
	for _, cfg := range configs {
		o := opts
		o.Parallel = cfg
		r, err := Solve(q, o)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got := lambdaSet(r)
		if len(got) != len(want) {
			t.Errorf("%+v: %d eigenvalues, serial found %d", cfg, len(got), len(want))
			continue
		}
		// Different parallel paths take different floating-point routes
		// through BiCG (reduction order) and the coarse Nint=8 extraction
		// amplifies that; 1e-4 is well below any physical scale here.
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-4 {
				t.Errorf("%+v: eigenvalue %d: %v vs serial %v", cfg, i, got[i], want[i])
			}
		}
		if cfg.Ndm > 1 && r.CommBytes == 0 {
			t.Errorf("%+v: no bottom-layer traffic recorded", cfg)
		}
	}
}

// TestGroupStopConcurrentBlocked exercises the majority early-stop rule
// through the blocked solver with both upper parallel layers active
// (Top > 1, Mid > 1): per-column GroupStop controllers are shared across
// concurrently solved quadrature points. Run under -race in CI. Eigenpair
// quality is still guaranteed by the residual filter (the paper's
// observation that stragglers sit near 1e-8 when the majority reaches
// 1e-10), so every reported pair must pass it.
func TestGroupStopConcurrentBlocked(t *testing.T) {
	op := smallAl(t, 8)
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	opts := testOptions()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Nrh = 6
	opts.LoadBalanceStop = true
	opts.Parallel = Parallel{Top: 2, Mid: 2}
	res, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AllPairs) == 0 {
		t.Fatal("no eigenpairs extracted")
	}
	for _, p := range res.Pairs {
		if p.Residual > opts.ResidualTol {
			t.Errorf("pair %v exceeds the residual filter: %g", p.Lambda, p.Residual)
		}
	}
	for j, ps := range res.Points {
		if ps.Converged+ps.StoppedEarly > opts.Nrh {
			t.Errorf("point %d: %d converged + %d stopped > Nrh=%d",
				j, ps.Converged, ps.StoppedEarly, opts.Nrh)
		}
		if ps.Iterations == 0 {
			t.Errorf("point %d: no iterations recorded", j)
		}
	}
	if res.MatVecs == 0 {
		t.Error("matvec counter not recorded")
	}
}

// lambdaSet returns the eigenvalues sorted for comparison.
func lambdaSet(r *Result) []complex128 {
	out := append([]complex128(nil), nil...)
	for _, p := range r.Pairs {
		out = append(out, p.Lambda)
	}
	sort.Slice(out, func(i, j int) bool {
		if real(out[i]) != real(out[j]) {
			return real(out[i]) < real(out[j])
		}
		return imag(out[i]) < imag(out[j])
	})
	return out
}

func firstFew(s []float64) []float64 {
	if len(s) > 6 {
		return s[:6]
	}
	return s
}

func TestSolveValidation(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, 0.1)
	bad := DefaultOptions()
	bad.Nint = 0
	if _, err := Solve(q, bad); err == nil {
		t.Error("Nint=0 should fail")
	}
	big := DefaultOptions()
	big.Nrh = op.N()
	big.Nmm = 8
	if _, err := Solve(q, big); err == nil {
		t.Error("oversized subspace should fail")
	}
}

func TestHistoriesRecorded(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, 0.1)
	opts := testOptions()
	opts.Nint = 4
	opts.Nmm = 2
	opts.Nrh = 4
	opts.TrackHistories = true
	res, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j, ps := range res.Points {
		if len(ps.History) == 0 {
			t.Errorf("point %d: no residual history", j)
		} else if ps.History[len(ps.History)-1] > opts.BiCGTol*10 {
			t.Errorf("point %d: final residual %g", j, ps.History[len(ps.History)-1])
		}
	}
}

func TestMemoryEstimateScalesLinearly(t *testing.T) {
	op8 := smallAl(t, 8)
	op16 := smallAl(t, 16)
	opts := testOptions()
	m8 := MemoryEstimate(qep.New(op8, 0), opts)
	m16 := MemoryEstimate(qep.New(op16, 0), opts)
	ratio := float64(m16) / float64(m8)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("memory estimate ratio %g for doubled N, want about 2 (O(MN))", ratio)
	}
}

func TestEnergyScan(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, 0)
	opts := testOptions()
	opts.Nint = 4
	opts.Nmm = 2
	opts.Nrh = 4
	rs, err := EnergyScan(q, []float64{0.0, 0.1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("scan returned %d results", len(rs))
	}
	if rs[0].Energy != 0.0 || rs[1].Energy != 0.1 {
		t.Error("scan energies not recorded")
	}
}

// TestAutoExpandOnSaturation: with a deliberately tiny probe block the
// Hankel rank saturates and AutoExpand must retry with a larger one.
func TestAutoExpandOnSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated solves at EF")
	}
	op := smallAl(t, 8)
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	opts := testOptions()
	opts.Nrh = 1
	opts.Nmm = 2 // subspace of 2: certainly saturated at EF
	opts.AutoExpand = true
	opts.MaxExpand = 3
	res, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded <= 1 {
		t.Errorf("probe block did not grow (Nrh stayed %d, rank %d)", res.Expanded, res.Rank)
	}
	// Without AutoExpand the saturated rank is returned as-is.
	opts.AutoExpand = false
	opts.Nrh = 1
	res2, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Expanded != 1 {
		t.Errorf("non-expanding solve changed Nrh to %d", res2.Expanded)
	}
}

// TestEnergyScanParallelMatchesSequential: the concurrent scan must return
// the same results in the same order.
func TestEnergyScanParallelMatchesSequential(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, 0)
	opts := testOptions()
	opts.Nint = 4
	opts.Nmm = 2
	opts.Nrh = 4
	es := []float64{-0.1, 0.0, 0.1, 0.2}
	seq, err := EnergyScan(q, es, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EnergyScanParallel(q, es, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("length mismatch: %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].Energy != seq[i].Energy {
			t.Errorf("scan order differs at %d", i)
		}
		if len(par[i].Pairs) != len(seq[i].Pairs) {
			t.Errorf("E=%g: %d vs %d states", es[i], len(par[i].Pairs), len(seq[i].Pairs))
		}
	}
	// Degenerate worker counts fall back to the sequential path.
	one, err := EnergyScanParallel(q, es[:1], opts, 8)
	if err != nil || len(one) != 1 {
		t.Fatal("single-energy fallback failed")
	}
}
