package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cbs/internal/qep"
)

// ScanError wraps a per-energy solve failure with the offending energy, so
// a scan caller can report which of the 200 energies sank the run. It is
// transparent to errors.Is/As: Unwrap exposes the underlying cause
// (linsolve.ErrNoConvergence, contour.ErrTooManyDropped, chaos.ErrInjected,
// context.Canceled, ...).
type ScanError struct {
	Index  int     // position in the scanned energy list
	Energy float64 // hartree
	Err    error
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("core: energy scan failed at index %d (E = %g hartree): %v", e.Index, e.Energy, e.Err)
}

func (e *ScanError) Unwrap() error { return e.Err }

// EnergyScan solves the CBS at every energy in es (hartree), sequentially
// reusing the operator. The paper's Fig. 6 and Fig. 11 are scans of 200
// equidistant energies. On failure the completed prefix is returned
// alongside a *ScanError naming the offending energy — callers that can
// use partial data (plots, sweep resumption) must not discard it.
func EnergyScan(q *qep.Problem, es []float64, opts Options) ([]*Result, error) {
	//cbs:ctxescape public pre-context wrapper: callers without a ctx get the root by definition
	return EnergyScanContext(context.Background(), q, es, opts)
}

// EnergyScanContext is EnergyScan under a context: cancellation stops the
// scan before the next energy and the error wraps ctx.Err().
//
//cbs:cancellable
func EnergyScanContext(ctx context.Context, q *qep.Problem, es []float64, opts Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]*Result, 0, len(es))
	for i, e := range es {
		if err := ctx.Err(); err != nil {
			return out, &ScanError{Index: i, Energy: e, Err: err}
		}
		//cbs:chaossite scan.energy
		if err := opts.Chaos.EnergyFault(i); err != nil {
			return out, &ScanError{Index: i, Energy: e, Err: err}
		}
		qe := qep.NewBackend(q.B, e)
		r, err := SolveContext(ctx, qe, opts)
		if err != nil {
			return out, &ScanError{Index: i, Energy: e, Err: err}
		}
		out = append(out, r)
	}
	return out, nil
}

// EnergyScanParallel runs the scan with workers concurrent energies: the
// outermost trivially-parallel level of the paper's Sec. 5 application
// ("200 independent calculations at equidistant energies"). Results are
// returned in energy order. The first error cancels the remaining queued
// and in-flight energies (each worker's solve runs under the shared
// cancelable context and re-checks it before taking the next energy), and
// the returned *ScanError names the first failed energy in scan order;
// completed results are returned alongside it, with nil holes for energies
// that never finished.
func EnergyScanParallel(q *qep.Problem, es []float64, opts Options, workers int) ([]*Result, error) {
	//cbs:ctxescape public pre-context wrapper: callers without a ctx get the root by definition
	return EnergyScanParallelContext(context.Background(), q, es, opts, workers)
}

// EnergyScanParallelContext is EnergyScanParallel under a caller context:
// cancellation or a deadline winds down all scan workers promptly.
//
//cbs:cancellable
func EnergyScanParallelContext(ctx context.Context, q *qep.Problem, es []float64, opts Options, workers int) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 2 || len(es) < 2 {
		return EnergyScanContext(ctx, q, es, opts)
	}
	// The first failure cancels the scan: queued energies are skipped and
	// in-flight solves stop at their next context check instead of running
	// all 200 energies to completion behind a doomed sweep.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*Result, len(es))
	errs := make([]error, len(es))
	jobs := make(chan int, len(es))
	for i := range es {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cctx.Err() != nil {
					return
				}
				//cbs:chaossite scan.energy-par
				if err := opts.Chaos.EnergyFault(i); err != nil {
					errs[i] = err
					cancel()
					return
				}
				qe := qep.NewBackend(q.B, es[i])
				out[i], errs[i] = SolveContext(cctx, qe, opts)
				if errs[i] != nil {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	// Report the first genuine failure in scan order (not completion
	// order), so the error is deterministic under any worker scheduling.
	// A solve canceled by another energy's failure is an echo, charged to
	// that failure rather than reported as its own.
	for i, err := range errs {
		if err == nil || isCancelEcho(ctx, err) {
			continue
		}
		return out, &ScanError{Index: i, Energy: es[i], Err: err}
	}
	// Caller cancellation with no per-energy error recorded (workers bowed
	// out before solving): charge it to the first unfinished energy.
	if err := ctx.Err(); err != nil {
		for i, r := range out {
			if r == nil {
				return out, &ScanError{Index: i, Energy: es[i], Err: err}
			}
		}
	}
	return out, nil
}

// isCancelEcho reports whether err is a cancellation ripple of the scan's
// internal cancel rather than a genuine failure: it wraps context.Canceled
// while the caller's own context is still alive.
func isCancelEcho(ctx context.Context, err error) bool {
	return ctx.Err() == nil && errors.Is(err, context.Canceled)
}
