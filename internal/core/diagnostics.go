package core

// DroppedPair identifies one (quadrature point, probe column) contribution
// discarded by the recovery ladder. Because the dual trick solves the outer
// node and its paired inner node in one BiCG run, the pair is always
// dropped symmetrically: both the primal (outer) and dual (inner)
// contributions of the column are excluded and the column's surviving
// weights renormalized (contour.RenormFactor).
type DroppedPair struct {
	Point int `json:"point"` // outer-circle quadrature index
	Col   int `json:"col"`   // probe column
}

// PointDiag is the per-quadrature-point slice of Diagnostics.
type PointDiag struct {
	ZRe          float64 `json:"z_re"`
	ZIm          float64 `json:"z_im"`
	Iterations   int     `json:"iterations"`
	Converged    int     `json:"converged"`
	StoppedEarly int     `json:"stopped_early"`
	Breakdowns   int     `json:"breakdowns,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
	Fallbacks    int     `json:"fallbacks,omitempty"`
	Dropped      int     `json:"dropped,omitempty"`
	MaxResidual  float64 `json:"max_residual"`
	Refines      int     `json:"refines,omitempty"`       // mixed precision only
	RefineFailed int     `json:"refine_failed,omitempty"` // mixed precision only
}

// Diagnostics summarizes the health of one contour solve: how hard the
// recovery ladder had to work, what was lost to graceful degradation, and
// the residual budget the extracted eigenpairs inherit. It is JSON-ready
// for the cmd/cbs --diagnostics export.
type Diagnostics struct {
	Nint int `json:"nint"` // quadrature points per circle
	Nrh  int `json:"nrh"`  // probe columns

	// Ladder totals across all (point, column) solves.
	Breakdowns int `json:"breakdowns"` // first-pass Krylov breakdowns
	Restarts   int `json:"restarts"`   // perturbed BiCG restarts attempted
	Fallbacks  int `json:"fallbacks"`  // escalations to restarted GMRES

	// Mixed-precision totals (Precision "mixed" only; omitted otherwise).
	RefineSteps  int `json:"refine_steps,omitempty"`  // iterative-refinement solves
	RefineFailed int `json:"refine_failed,omitempty"` // columns that exhausted the budget

	// Graceful degradation: contributions dropped after the full ladder
	// failed, and the per-column quadrature-weight renormalization factors
	// (1 for clean columns). Degraded is true when anything was dropped.
	DroppedPairs  []DroppedPair `json:"dropped_pairs,omitempty"`
	RenormFactors []float64     `json:"renorm_factors,omitempty"`
	Degraded      bool          `json:"degraded"`

	// ResidualBudget is the worst final relative residual among the linear
	// solves whose contributions entered the moments: an upper bound on the
	// quadrature-data accuracy backing the extracted eigenpairs.
	ResidualBudget float64 `json:"residual_budget"`

	Points []PointDiag `json:"points"`
}

// finalizeDiagnostics folds the per-point statistics into res.Diagnostics
// after the contour solve (DroppedPairs and RenormFactors are already in
// place, recorded by solveAll).
func (res *Result) finalizeDiagnostics(opts Options) {
	d := &res.Diagnostics
	d.Nint = opts.Nint
	d.Nrh = opts.Nrh
	d.Degraded = len(d.DroppedPairs) > 0
	d.Points = make([]PointDiag, len(res.Points))
	for j := range res.Points {
		ps := &res.Points[j]
		d.Points[j] = PointDiag{
			ZRe:          real(ps.Z),
			ZIm:          imag(ps.Z),
			Iterations:   ps.Iterations,
			Converged:    ps.Converged,
			StoppedEarly: ps.StoppedEarly,
			Breakdowns:   ps.Breakdowns,
			Restarts:     ps.Restarts,
			Fallbacks:    ps.Fallbacks,
			Dropped:      ps.Dropped,
			MaxResidual:  ps.MaxResidual,
			Refines:      ps.Refines,
			RefineFailed: ps.RefineFailed,
		}
		d.Breakdowns += ps.Breakdowns
		d.Restarts += ps.Restarts
		d.Fallbacks += ps.Fallbacks
		d.RefineSteps += ps.Refines
		d.RefineFailed += ps.RefineFailed
		if ps.MaxResidual > d.ResidualBudget {
			d.ResidualBudget = ps.MaxResidual
		}
	}
}
