package core

import (
	"errors"
	"math/cmplx"
	"testing"

	"cbs/internal/bandstructure"
	"cbs/internal/chaos"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
)

// TestSoAKernelsMatchAoSBitwise: at float64 the split-complex path is the
// same arithmetic as the interleaved path in the same order, so the whole
// Solve — eigenvalues, vectors, residuals, iteration counts — must be
// bit-identical between Kernels "aos" and Kernels "soa".
func TestSoAKernelsMatchAoSBitwise(t *testing.T) {
	op := smallAl(t, 8)
	ef, err := bandstructure.FermiLevel(op, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	opts := testOptions()
	opts.Kernels = KernelsAoS
	aos, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Kernels = KernelsSoA
	soaRes, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if aos.Rank != soaRes.Rank {
		t.Fatalf("rank differs: aos %d, soa %d", aos.Rank, soaRes.Rank)
	}
	if len(aos.AllPairs) != len(soaRes.AllPairs) {
		t.Fatalf("pair count differs: aos %d, soa %d", len(aos.AllPairs), len(soaRes.AllPairs))
	}
	for i := range aos.AllPairs {
		pa, ps := aos.AllPairs[i], soaRes.AllPairs[i]
		if pa.Lambda != ps.Lambda || pa.Residual != ps.Residual {
			t.Errorf("pair %d differs: aos (%v, %g), soa (%v, %g)", i, pa.Lambda, pa.Residual, ps.Lambda, ps.Residual)
		}
		for j := range pa.Psi {
			if pa.Psi[j] != ps.Psi[j] {
				t.Fatalf("pair %d component %d differs: %v vs %v", i, j, pa.Psi[j], ps.Psi[j])
			}
		}
	}
	for j := range aos.Points {
		pa, ps := aos.Points[j], soaRes.Points[j]
		if pa.Iterations != ps.Iterations || pa.Converged != ps.Converged {
			t.Errorf("point %d stats differ: aos %+v, soa %+v", j, pa, ps)
		}
	}
	if aos.MatVecs != soaRes.MatVecs {
		t.Errorf("matvec count differs: aos %d, soa %d", aos.MatVecs, soaRes.MatVecs)
	}
}

// TestMixedPrecisionEigenvaluesClose: mixed precision perturbs the linear
// solutions at the refined-residual level (~1e-9 relative), far below the
// delta = 1e-10-rank-filtered moment scale relative to the leading singular
// values, so every full-precision eigenvalue must reappear within a tight
// tolerance (see DESIGN.md for the error budget).
func TestMixedPrecisionEigenvaluesClose(t *testing.T) {
	op := smallAl(t, 8)
	ef, err := bandstructure.FermiLevel(op, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := qep.New(op, ef)
	opts := testOptions()
	full, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Precision = PrecisionMixed
	mixed, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Pairs) == 0 {
		t.Skip("no annulus eigenpairs on this coarse grid")
	}
	if len(mixed.Pairs) != len(full.Pairs) {
		t.Fatalf("pair count differs: full %d, mixed %d", len(full.Pairs), len(mixed.Pairs))
	}
	// The documented acceptance tolerance for mixed-precision eigenvalues
	// (DESIGN.md error budget): 1e-4 on lambda. Isolated eigenvalues move at
	// the ~1e-9 refined-residual level, but near-propagating states at
	// |lambda| ~ 1 form nearly-degenerate (lambda, 1/conj lambda) clusters
	// that split at sqrt(perturbation) ~ 3e-5.
	const lambdaTol = 1e-4
	for _, pf := range full.Pairs {
		best := cmplx.Abs(mixed.Pairs[0].Lambda - pf.Lambda)
		for _, pm := range mixed.Pairs[1:] {
			if d := cmplx.Abs(pm.Lambda - pf.Lambda); d < best {
				best = d
			}
		}
		if best > lambdaTol {
			t.Errorf("eigenvalue %v not reproduced by mixed precision (closest %g)", pf.Lambda, best)
		}
	}
	// Refinement bookkeeping must surface: every column at every point does
	// at least one refinement step.
	refines := 0
	for _, ps := range mixed.Points {
		refines += ps.Refines
	}
	if refines == 0 {
		t.Error("mixed solve recorded no refinement steps")
	}
	if mixed.Diagnostics.RefineSteps != refines {
		t.Errorf("diagnostics refine steps %d != summed point stats %d", mixed.Diagnostics.RefineSteps, refines)
	}
}

// TestMixedPrecisionChaosEscalates: chaos-forcing refinement failure on
// more than half the columns must fail the solve with ErrNoConvergence
// (the sentinel the sweep ladder's precision-escalation rung matches).
func TestMixedPrecisionChaosEscalates(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, -0.2)
	opts := testOptions()
	opts.Precision = PrecisionMixed
	opts.Chaos = chaos.New(1, chaos.Config{RefineFail: 1})
	_, err := Solve(q, opts)
	if err == nil {
		t.Fatal("expected mixed solve to fail under total refinement chaos")
	}
	if !errors.Is(err, linsolve.ErrNoConvergence) {
		t.Fatalf("error does not wrap ErrNoConvergence: %v", err)
	}
}
