package core

import (
	"math"
	"math/rand"

	"cbs/internal/chaos"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/zlinalg"
)

// ladderRestarts bounds the perturbed-restart rung of the recovery ladder.
const ladderRestarts = 2

// ladderOutcome reports what one column's trip through the recovery ladder
// cost and where it ended.
type ladderOutcome struct {
	restarts   int
	fallbacks  int
	dropped    bool
	iterations int
	matVecs    int
	residual   float64 // final relative residual of the kept solution
}

// recoverColumn is the per-column recovery ladder of a failed dual solve at
// quadrature point j (outer node z): P(z) x = b and P(z)^dagger xd = b.
//
// Rung 1 -- perturbed restart: a Krylov breakdown (vanishing <rd,r> or
// <pd,Aq>) is a property of the shadow sequence, not of the system, so the
// solve is restarted from the current iterates nudged by small seeded noise.
// Both systems keep their true solutions as fixed points; the perturbation
// only re-seeds the two-sided Lanczos recurrence. At most ladderRestarts
// attempts, each a distinct deterministic chaos site (Attempt = 1, 2, ...).
//
// Rung 2 -- breakdown-free fallback: restarted GMRES(m) on the primal and
// dual systems from a zero guess. GMRES has no shadow vector and cannot
// break down; it is the last solver rung. Plain non-convergence (iteration
// cap without breakdown) skips rung 1 and lands here directly, since
// re-seeding a stagnated but healthy recurrence does not help.
//
// Rung 3 -- graceful degradation: the caller drops the (point, column) pair
// symmetrically from both circles and renormalizes the column's surviving
// quadrature weights (contour.RenormFactor).
//
// On success the column's majority-rule controller is marked converged (the
// recovery solves run ungrouped: a fresh restart sits far above the loose
// straggler tolerance, and the ladder must not be halted by the majority it
// is trying to rejoin).
func recoverColumn(q *qep.Problem, z complex128, b, x, xd []complex128, j, col int, group *linsolve.GroupStop, initial linsolve.Result, opts Options) ladderOutcome {
	apply := func(v, out []complex128) { q.ApplyBlock(z, v, out, 1) }
	applyD := func(v, out []complex128) { q.ApplyDaggerBlock(z, v, out, 1) }
	lopts := linsolve.Options{Tol: opts.BiCGTol, MaxIter: opts.MaxIter, Chaos: opts.Chaos}
	var out ladderOutcome
	out.residual = initial.Residual

	if initial.Breakdown {
		for attempt := 1; attempt <= ladderRestarts; attempt++ {
			perturbIterates(x, xd, b, opts.Seed, j, col, attempt)
			lopts.ChaosSite = chaos.Site{Point: j, Col: col, Attempt: attempt}
			r := linsolve.BiCGDual(apply, applyD, b, b, x, xd, lopts)
			out.restarts++
			out.iterations += r.Iterations
			out.matVecs += r.MatVecApplied
			out.residual = r.Residual
			if r.Converged {
				group.MarkConverged()
				return out
			}
			if !r.Breakdown {
				break // stagnation, not breakdown: re-seeding will not help
			}
		}
	}

	//cbs:chaossite ladder.fallback
	if !opts.Chaos.FallbackFail(j, col) {
		for i := range x {
			x[i] = 0
			xd[i] = 0
		}
		gopts := linsolve.Options{Tol: opts.BiCGTol, MaxIter: opts.MaxIter}
		// Restarted GMRES with a short cycle stalls on the indefinite
		// shifted systems P(z); the last solver rung pays for a wide cycle
		// (memory O(restart) vectors) rather than lose the contribution.
		restart := 4 * linsolve.DefaultGMRESRestart
		if n := len(b); restart > n {
			restart = n
		}
		pr, dr := linsolve.GMRESDual(apply, applyD, b, b, x, xd, restart, gopts)
		out.fallbacks++
		out.iterations += pr.Iterations + dr.Iterations
		out.matVecs += pr.MatVecApplied
		out.residual = math.Max(pr.Residual, dr.Residual)
		if pr.Converged && dr.Converged {
			group.MarkConverged()
			return out
		}
	} else {
		out.fallbacks++
	}

	out.dropped = true
	out.residual = 0 // a dropped pair contributes nothing to the budget
	return out
}

// perturbIterates nudges the current iterates with seeded noise scaled to
// the right-hand side: ~1e-6 * rms(b) per element. The noise depends only
// on (seed, point, column, attempt), so restarts are reproducible under any
// worker scheduling.
func perturbIterates(x, xd, b []complex128, seed int64, j, col, attempt int) {
	mix := seed ^ int64(j)*1_000_003 ^ int64(col)*7_919 ^ int64(attempt)*104_729
	rng := rand.New(rand.NewSource(mix))
	scale := 1e-6 * zlinalg.Norm2(b) / math.Sqrt(float64(len(b)))
	if scale == 0 {
		scale = 1e-6
	}
	for i := range x {
		x[i] += complex((rng.Float64()*2-1)*scale, (rng.Float64()*2-1)*scale)
		xd[i] += complex((rng.Float64()*2-1)*scale, (rng.Float64()*2-1)*scale)
	}
}

// recoverBlockColumns runs the ladder over every failed column of one
// blocked solve (the serial/bottom-layer-free path): column cb of the
// row-major interleaved blocks b, x, xd. Recovered solutions are scattered
// back in place; dropped columns are zeroed so the accumulator never sees
// them. Worker-local scratch (bcol, xcol, xdcol; length n each) is supplied
// by the caller so the per-point loop stays allocation-free. The outcome is
// folded into local (the worker's per-point statistics); the dropped column
// list and the recovery operator applications are returned for the caller's
// once-per-point merge.
func recoverBlockColumns(q *qep.Problem, z complex128, b, x, xd []complex128, nb int, j, c0 int, groups []*linsolve.GroupStop, rs []linsolve.Result, opts Options, local *PointStats, bcol, xcol, xdcol []complex128) (droppedCols []int, matVecs int) {
	n := len(b) / nb
	for cb := 0; cb < nb; cb++ {
		r := rs[cb]
		if r.Breakdown {
			local.Breakdowns++
		}
		if r.Converged || r.StoppedEarly {
			if r.Residual > local.MaxResidual {
				local.MaxResidual = r.Residual
			}
			continue
		}
		for i := 0; i < n; i++ {
			bcol[i] = b[i*nb+cb]
			xcol[i] = x[i*nb+cb]
			xdcol[i] = xd[i*nb+cb]
		}
		out := recoverColumn(q, z, bcol, xcol, xdcol, j, c0+cb, groups[cb], r, opts)
		local.Restarts += out.restarts
		local.Fallbacks += out.fallbacks
		local.Iterations += out.iterations
		if out.dropped {
			local.Dropped++
			droppedCols = append(droppedCols, c0+cb)
			for i := 0; i < n; i++ {
				x[i*nb+cb] = 0
				xd[i*nb+cb] = 0
			}
		} else {
			local.Converged++
			if out.residual > local.MaxResidual {
				local.MaxResidual = out.residual
			}
			for i := 0; i < n; i++ {
				x[i*nb+cb] = xcol[i]
				xd[i*nb+cb] = xdcol[i]
			}
		}
		matVecs += out.matVecs
	}
	return droppedCols, matVecs
}
