package core

import (
	"context"
	"errors"
	"math/cmplx"
	"os"
	"strconv"
	"testing"

	"cbs/internal/bandstructure"
	"cbs/internal/chaos"
	"cbs/internal/contour"
	"cbs/internal/qep"
)

// chaosSeed reads the chaos-smoke seed matrix (CBS_CHAOS_SEED, default 1),
// so the CI job exercises several deterministic fault patterns with one
// test body.
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// chaosProblem builds the shared test system and an energy known to carry a
// propagating CBS solution (taken from the conventional band structure).
func chaosProblem(t *testing.T) *qep.Problem {
	t.Helper()
	op := smallAl(t, 8)
	a := op.G.Lz()
	k0 := 0.55 * 3.141592653589793 / a
	bands, err := bandstructure.Bands(op, []float64{k0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return qep.New(op, bands[0][2])
}

// chaosOptions are fast settings for the resilience tests.
func chaosOptions() Options {
	o := DefaultOptions()
	o.Nint = 8
	o.Nmm = 4
	o.Nrh = 6
	return o
}

// TestChaosBreakdownRecovery is the headline resilience property: with BiCG
// breakdowns injected across the contour (well over a quarter of the
// quadrature points), the perturbed-restart rung recovers every solve and
// the eigenvalues match the clean run within the residual tolerance.
// Nothing may be dropped: breakdowns are recoverable faults.
func TestChaosBreakdownRecovery(t *testing.T) {
	q := chaosProblem(t)
	opts := chaosOptions()

	clean, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Pairs) == 0 {
		t.Fatal("clean run found no eigenpairs; the comparison is vacuous")
	}

	opts.Chaos = chaos.New(chaosSeed(), chaos.Config{Breakdown: 0.5})
	faulty, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	d := faulty.Diagnostics
	if d.Breakdowns == 0 || d.Restarts == 0 {
		t.Fatalf("injection did not engage the ladder: %d breakdowns, %d restarts", d.Breakdowns, d.Restarts)
	}
	hitPoints := 0
	for _, ps := range faulty.Points {
		if ps.Breakdowns > 0 {
			hitPoints++
		}
	}
	if 4*hitPoints < opts.Nint {
		t.Fatalf("only %d of %d quadrature points hit; the acceptance bar is 25%%", hitPoints, opts.Nint)
	}
	if d.Degraded || len(d.DroppedPairs) > 0 {
		t.Errorf("breakdowns must be recovered, not dropped: %+v", d.DroppedPairs)
	}

	if len(faulty.Pairs) != len(clean.Pairs) {
		t.Fatalf("eigenvalue count changed under injection: %d vs %d", len(faulty.Pairs), len(clean.Pairs))
	}
	// Nearest-match comparison: the spectrum carries near-degenerate
	// conjugate pairs whose sort order is not stable across solves.
	for _, w := range clean.Pairs {
		best := cmplx.Abs(w.Lambda - faulty.Pairs[0].Lambda)
		for _, g := range faulty.Pairs[1:] {
			if d := cmplx.Abs(w.Lambda - g.Lambda); d < best {
				best = d
			}
		}
		if best > opts.ResidualTol {
			t.Errorf("eigenvalue %v moved by %g under injection (tol %g)", w.Lambda, best, opts.ResidualTol)
		}
	}

	// Diagnostics bookkeeping sanity.
	if d.Nint != opts.Nint || d.Nrh != opts.Nrh || len(d.Points) != opts.Nint {
		t.Errorf("diagnostics dimensions wrong: %+v", d)
	}
	if d.ResidualBudget <= 0 || d.ResidualBudget > opts.BiCGTol*100 {
		t.Errorf("residual budget %g outside the plausible window", d.ResidualBudget)
	}
}

// TestChaosFallbackEngaged: when restarts break down again (sticky
// breakdowns), the ladder must escalate to the GMRES fallback and still
// deliver a clean solve.
func TestChaosFallbackEngaged(t *testing.T) {
	q := chaosProblem(t)
	opts := chaosOptions()
	opts.Chaos = chaos.New(chaosSeed(), chaos.Config{
		Breakdown:        1,
		RestartBreakdown: 1,
		Columns:          []int{1},
	})
	res, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d.Fallbacks == 0 {
		t.Fatalf("sticky breakdowns did not reach the GMRES rung: %+v", d)
	}
	if d.Degraded {
		t.Errorf("fallback should have recovered the solves, dropped %+v", d.DroppedPairs)
	}
	for _, p := range res.Pairs {
		if p.Residual > opts.ResidualTol {
			t.Errorf("pair %v exceeds the residual filter: %g", p.Lambda, p.Residual)
		}
	}
}

// TestChaosGracefulDegradation: with the whole ladder sabotaged on one
// column at half the points, the (point, column) pairs are dropped
// symmetrically, the surviving weights renormalized, and the solve still
// succeeds with every reported pair passing the residual filter. Sabotaging
// every point of the column crosses the half-rule and must fail typed.
func TestChaosGracefulDegradation(t *testing.T) {
	q := chaosProblem(t)
	opts := chaosOptions()
	const col = 2
	inj := chaos.New(chaosSeed(), chaos.Config{
		Breakdown:        0.5,
		RestartBreakdown: 1,
		FallbackFail:     1,
		Columns:          []int{col},
	})
	opts.Chaos = inj
	// The injector is a pure site hash, so the sabotage pattern of this
	// seed is known before the solve: every attempt-0 hit on the column is
	// doomed (sticky restarts, failed fallback) and must become a drop.
	wantDrops := 0
	for j := 0; j < opts.Nint; j++ {
		if inj.Breakdown(chaos.Site{Point: j, Col: col}) {
			wantDrops++
		}
	}
	if wantDrops == 0 {
		t.Skipf("seed %d injects nothing on column %d at Nint=%d", chaosSeed(), col, opts.Nint)
	}
	res, err := Solve(q, opts)
	if 2*wantDrops > opts.Nint {
		if !errors.Is(err, contour.ErrTooManyDropped) {
			t.Fatalf("%d of %d nodes sabotaged: err = %v, want contour.ErrTooManyDropped", wantDrops, opts.Nint, err)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if !d.Degraded || len(d.DroppedPairs) != wantDrops {
		t.Fatalf("expected %d drops, got %+v", wantDrops, d.DroppedPairs)
	}
	for _, dp := range d.DroppedPairs {
		if dp.Col != col {
			t.Errorf("dropped pair %+v outside the targeted column %d", dp, col)
		}
	}
	wantFactor := float64(opts.Nint) / float64(opts.Nint-wantDrops)
	if f := d.RenormFactors[col]; f != wantFactor {
		t.Errorf("renorm factor %g, want %g for %d drops", f, wantFactor, wantDrops)
	}
	for c, f := range d.RenormFactors {
		if c != col && f != 1 {
			t.Errorf("clean column %d rescaled by %g", c, f)
		}
	}
	for _, p := range res.Pairs {
		if p.Residual > opts.ResidualTol {
			t.Errorf("pair %v exceeds the residual filter: %g", p.Lambda, p.Residual)
		}
	}

	// Dropping every point of the column is beyond the half-rule.
	opts.Chaos = chaos.New(chaosSeed(), chaos.Config{
		Breakdown:        1,
		RestartBreakdown: 1,
		FallbackFail:     1,
		Columns:          []int{col},
	})
	if _, err := Solve(q, opts); !errors.Is(err, contour.ErrTooManyDropped) {
		t.Errorf("total column loss: err = %v, want contour.ErrTooManyDropped", err)
	}
}

// TestChaosPointFaultCancels: an injected hard fault at one quadrature
// point must cancel the whole solve with a typed error under every parallel
// configuration — in bounded time, with no worker left running (the test
// binary's exit checks that via the race/leak-free wait in solveAll).
func TestChaosPointFaultCancels(t *testing.T) {
	q := chaosProblem(t)
	for _, cfg := range []Parallel{
		{Top: 2, Mid: 2, Ndm: 1},
		{Top: 1, Mid: 2, Ndm: 2},
	} {
		opts := chaosOptions()
		opts.Parallel = cfg
		opts.Chaos = chaos.New(chaosSeed(), chaos.Config{
			PointFault: 1,
			Points:     []int{3},
		})
		_, err := Solve(q, opts)
		if !errors.Is(err, chaos.ErrInjected) {
			t.Errorf("%+v: err = %v, want chaos.ErrInjected", cfg, err)
		}
	}
}

// TestChaosBreakdownRecoveryDistributed: the ladder works identically when
// the breakdown strikes inside the distributed bottom layer (the injection
// decision is a pure site hash, so every rank agrees).
func TestChaosBreakdownRecoveryDistributed(t *testing.T) {
	q := chaosProblem(t)
	opts := chaosOptions()
	opts.Parallel = Parallel{Top: 1, Mid: 2, Ndm: 2}
	opts.Chaos = chaos.New(chaosSeed(), chaos.Config{Breakdown: 0.5})
	res, err := Solve(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d.Breakdowns == 0 || d.Restarts == 0 {
		t.Fatalf("distributed injection did not engage the ladder: %+v", d)
	}
	if d.Degraded {
		t.Errorf("distributed breakdowns must be recovered, dropped %+v", d.DroppedPairs)
	}
	for _, p := range res.Pairs {
		if p.Residual > opts.ResidualTol {
			t.Errorf("pair %v exceeds the residual filter: %g", p.Lambda, p.Residual)
		}
	}
}

// TestSolveContextCanceled: a dead context stops the contour promptly with
// a typed cause, both before and during the solve.
func TestSolveContextCanceled(t *testing.T) {
	q := chaosProblem(t)
	opts := chaosOptions()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, q, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled: err = %v, want context.Canceled", err)
	}

	// Cancel mid-solve from a worker-observable point: a context canceled
	// by a timer that has already expired when the first point completes.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		cancel2()
	}()
	<-done
	if _, err := SolveContext(ctx2, q, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled: err = %v, want context.Canceled", err)
	}
}

// TestCoreTypedSentinels: option validation fails with errors.Is-able
// sentinels.
func TestCoreTypedSentinels(t *testing.T) {
	op := smallAl(t, 8)
	q := qep.New(op, 0.1)
	bad := DefaultOptions()
	bad.Nint = 0
	if _, err := Solve(q, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Nint=0: err = %v, want ErrBadOptions", err)
	}
	big := DefaultOptions()
	big.Nrh = op.N()
	big.Nmm = 8
	if _, err := Solve(q, big); !errors.Is(err, ErrSubspaceTooLarge) {
		t.Errorf("oversized subspace: err = %v, want ErrSubspaceTooLarge", err)
	}
}
