package core

import (
	"cbs/internal/qep"
)

// MemoryEstimate returns the resident bytes of a CBS solve with the given
// options: the matrix-free operator (O(N)), the moment accumulator
// (O(M*N), M = Nrh*Nmm), the probe block, the per-worker Krylov vectors and
// the small dense Hankel work. This is the quantity compared against the
// OBM baseline in Fig. 4(b).
func MemoryEstimate(q *qep.Problem, opts Options) int64 {
	opts.Parallel = opts.Parallel.normalize()
	n := int64(q.Dim())
	nrh := int64(opts.Nrh)
	nmm := int64(opts.Nmm)
	m := nrh * nmm

	var b int64
	b += q.B.MemoryBytes()      // operator (potential + projectors + tables)
	b += 2 * nmm * n * nrh * 16 // moment accumulator
	b += n * nrh * 16           // probe block V
	b += 3 * m * m * 16         // Hankel pair + SVD work
	// Blocked BiCG state: each (top, mid) worker owns the solution blocks
	// x, xd plus the shared linsolve.Workspace with the six Krylov block
	// vectors (r, rd, p, pd, q, qd) -- 8 blocks of n x nb complex entries,
	// allocated once and reused across all quadrature points (the fused
	// blocked apply needs no scratch vectors, and the per-solve allocations
	// of the scalar path are gone). Each top block also shares one
	// interleaved right-hand-side block across its mid workers.
	top := int64(opts.Parallel.Top)
	nbBlk := (nrh + top - 1) / top // columns per top block
	workers := top * int64(opts.Parallel.Mid)
	b += workers * 8 * n * nbBlk * 16
	b += top * n * nbBlk * 16
	return b
}
