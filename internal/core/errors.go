package core

import "errors"

// Typed sentinels of the solver layer, matchable with errors.Is. Errors
// from the lower layers (linsolve.ErrBreakdown, linsolve.ErrNoConvergence,
// contour.ErrTooManyDropped, ssm.ErrRankDeficient, chaos.ErrInjected,
// context.Canceled) are wrapped, not translated, so callers can match the
// original cause through a core error.
var (
	// ErrBadOptions is an invalid solver parameterization (non-positive
	// Nint/Nmm/Nrh, bad contour radii).
	ErrBadOptions = errors.New("core: invalid solver options")
	// ErrSubspaceTooLarge means Nrh*Nmm exceeds the problem dimension: the
	// moment subspace cannot be larger than the space it probes.
	ErrSubspaceTooLarge = errors.New("core: moment subspace exceeds problem dimension")
)
