package sparse

import (
	"math/rand"
	"testing"

	"cbs/internal/soa"
)

// TestApplyBlockSoAParity: the split-complex blocked CSR apply must be
// bit-identical to the interleaved blocked apply (same arithmetic in the
// same order; the real fast path only drops exact +-0 terms).
func TestApplyBlockSoAParity(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	for _, m := range []*CSR{blocks.H0, blocks.HP, blocks.HM} {
		for _, nb := range []int{1, 3, 8} {
			rng := rand.New(rand.NewSource(int64(100 + nb)))
			v := randVec(rng, n*nb)
			want := make([]complex128, n*nb)
			m.ApplyBlock(v, want, nb)

			vb := soa.NewBlock[float64](n, nb)
			soa.Pack(vb, v)
			ob := soa.NewBlock[float64](n, nb)
			m.ApplyBlockSoA(vb, ob)
			got := make([]complex128, n*nb)
			soa.Unpack(got, ob)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nb=%d element %d: soa %v != aos %v", nb, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBlocksApplySoAParity: the stored-form blocked split applies (CSR +
// factored nonlocal) must reproduce the per-column AoS applies exactly for
// every Hamiltonian block.
func TestBlocksApplySoAParity(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	cases := []struct {
		name   string
		aos    func(v, out []complex128)
		soaFns func(v, out *soa.Block[float64])
	}{
		{"H0", blocks.ApplyH0, blocks.ApplyH0BlockSoA},
		{"H+", blocks.ApplyHp, blocks.ApplyHpBlockSoA},
		{"H-", blocks.ApplyHm, blocks.ApplyHmBlockSoA},
	}
	// nb spanning 1, a partial tile, and more than one maxProjCols tile.
	for _, nb := range []int{1, 5, maxProjCols + 3} {
		rng := rand.New(rand.NewSource(int64(200 + nb)))
		v := randVec(rng, n*nb)
		vb := soa.NewBlock[float64](n, nb)
		soa.Pack(vb, v)
		ob := soa.NewBlock[float64](n, nb)
		got := make([]complex128, n*nb)
		col := make([]complex128, n)
		ref := make([]complex128, n)
		for _, c := range cases {
			c.soaFns(vb, ob)
			soa.Unpack(got, ob)
			for k := 0; k < nb; k++ {
				for i := 0; i < n; i++ {
					col[i] = v[i*nb+k]
				}
				c.aos(col, ref)
				for i := 0; i < n; i++ {
					if got[i*nb+k] != ref[i] {
						t.Fatalf("%s nb=%d col %d row %d: soa %v != aos %v", c.name, nb, k, i, got[i*nb+k], ref[i])
					}
				}
			}
		}
	}
}

// TestApplyBlockSoAZeroAlloc pins the steady-state allocation-free contract
// of the split blocked applies.
func TestApplyBlockSoAZeroAlloc(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	nb := maxProjCols + 3
	vb := soa.NewBlock[float64](n, nb)
	rng := rand.New(rand.NewSource(7))
	for i := range vb.Re {
		vb.Re[i] = rng.Float64()*2 - 1
		vb.Im[i] = rng.Float64()*2 - 1
	}
	ob := soa.NewBlock[float64](n, nb)
	if allocs := testing.AllocsPerRun(10, func() {
		blocks.ApplyH0BlockSoA(vb, ob)
		blocks.ApplyHpBlockSoA(vb, ob)
		blocks.ApplyHmBlockSoA(vb, ob)
	}); allocs != 0 {
		t.Errorf("blocked SoA applies allocate %.0f times per run, want 0", allocs)
	}
}
