// Package sparse provides an explicit compressed-sparse-row (CSR)
// representation of the Hamiltonian blocks. The paper's first contribution
// claim is that the matrix-free formulation avoids storing the sparse
// Hamiltonian explicitly ("by using an iterative solver, we do not have to
// store the large sparse Hamiltonian matrix explicitly"); this package
// provides the stored alternative so that the claim can be measured as an
// ablation (memory footprint and apply speed, BenchmarkAblationMatrixFree).
//
// The kinetic + local part is assembled in CSR; the separable nonlocal term
// is kept in its factored projector form (storing the outer products would
// square the projector supports, which no real code does).
package sparse

import (
	"errors"
	"fmt"
	"math"

	"cbs/internal/hamiltonian"
	"cbs/internal/zlinalg"
)

// CSR is a compressed-sparse-row complex matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []complex128
}

// Apply computes out = A*v.
func (m *CSR) Apply(v, out []complex128) {
	if len(v) != m.N || len(out) != m.N {
		panic("sparse: Apply length mismatch")
	}
	for i := 0; i < m.N; i++ {
		var s complex128
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * v[m.Col[p]]
		}
		out[i] = s
	}
}

// ApplyBlock computes out = A*V for an n x nb block stored row-major (the
// nb column values of row i at v[i*nb:(i+1)*nb]): each stored entry is read
// once for all nb columns, turning nb SpMV sweeps over the index arrays
// into one SpMM-like sweep.
func (m *CSR) ApplyBlock(v, out []complex128, nb int) {
	if nb < 1 || len(v) != m.N*nb || len(out) != m.N*nb {
		panic("sparse: ApplyBlock length/width mismatch")
	}
	for i := 0; i < m.N; i++ {
		oo := out[i*nb : i*nb+nb]
		for k := range oo {
			oo[k] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			a := m.Val[p]
			vo := v[int(m.Col[p])*nb : int(m.Col[p])*nb+nb]
			for k := range oo {
				oo[k] += a * vo[k]
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MemoryBytes returns the resident bytes of the stored matrix.
func (m *CSR) MemoryBytes() int64 {
	return int64(len(m.RowPtr))*4 + int64(len(m.Col))*4 + int64(len(m.Val))*16
}

// ErrNNZOverflow reports an assembly whose entry count does not fit the
// int32 CSR index arrays. RowPtr/Col stay int32 deliberately (half the index
// footprint of int64, and the matrix-free path is preferred at that scale),
// so the builder must refuse to overflow them silently: wrapped RowPtr
// values would corrupt every row past entry 2^31.
var ErrNNZOverflow = errors.New("sparse: number of nonzeros exceeds the int32 index range")

// maxNNZ is the entry-count ceiling of the int32 index arrays; a variable
// so the overflow guard can be regression-tested without 2^31 entries.
var maxNNZ = math.MaxInt32

// builder accumulates one row at a time.
type builder struct {
	n      int
	rowPtr []int32
	col    []int32
	val    []complex128
	err    error
}

func newBuilder(n int) *builder {
	return &builder{n: n, rowPtr: make([]int32, 1, n+1)}
}

func (b *builder) add(col int, v complex128) {
	if v == 0 || b.err != nil {
		return
	}
	if len(b.col) >= maxNNZ {
		b.err = ErrNNZOverflow
		return
	}
	b.col = append(b.col, int32(col))
	b.val = append(b.val, v)
}

func (b *builder) endRow() {
	b.rowPtr = append(b.rowPtr, int32(len(b.col)))
}

func (b *builder) finish() (*CSR, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &CSR{N: b.n, RowPtr: b.rowPtr, Col: b.col, Val: b.val}, nil
}

// Blocks holds the stored form of the three Hamiltonian blocks' local +
// kinetic parts, plus references to the separable projectors.
type Blocks struct {
	H0, HP, HM *CSR
	Op         *hamiltonian.Operator // for the nonlocal (factored) term
}

// FromOperator assembles the kinetic + local parts of H0, H+ and H- into
// CSR. Assembly probes the operator with the projectors masked out by
// subtracting their contribution, which keeps this package independent of
// the operator's internals. Intended for ablation studies on small and
// medium grids (assembly is O(N * stencil) per row via structural probing).
func FromOperator(op *hamiltonian.Operator) (*Blocks, error) {
	g := op.G
	n := op.N()
	nf := op.St.Nf
	if n < 1 {
		return nil, fmt.Errorf("sparse: empty operator")
	}
	// Structural assembly of the kinetic + local part: the stencil pattern
	// is known analytically, so each row is written directly.
	b0 := newBuilder(n)
	bp := newBuilder(n)
	bm := newBuilder(n)
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				row := g.Index(ix, iy, iz)
				// Diagonal: kinetic center + local potential.
				b0.add(row, complex(op.Diag()+op.VLoc[row], 0))
				for d := 1; d <= nf; d++ {
					xp, xm := op.NeighborX(d)
					yp, ym := op.NeighborY(d)
					b0.add(g.Index(int(xp[ix]), iy, iz), complex(op.Kx(d), 0))
					b0.add(g.Index(int(xm[ix]), iy, iz), complex(op.Kx(d), 0))
					b0.add(g.Index(ix, int(yp[iy]), iz), complex(op.Ky(d), 0))
					b0.add(g.Index(ix, int(ym[iy]), iz), complex(op.Ky(d), 0))
					if izp := iz + d; izp < g.Nz {
						b0.add(g.Index(ix, iy, izp), complex(op.Kz(d), 0))
					} else {
						bp.add(g.Index(ix, iy, izp-g.Nz), complex(op.Kz(d), 0))
					}
					if izm := iz - d; izm >= 0 {
						b0.add(g.Index(ix, iy, izm), complex(op.Kz(d), 0))
					} else {
						bm.add(g.Index(ix, iy, izm+g.Nz), complex(op.Kz(d), 0))
					}
				}
				b0.endRow()
				bp.endRow()
				bm.endRow()
			}
		}
	}
	h0, err := b0.finish()
	if err != nil {
		return nil, err
	}
	hp, err := bp.finish()
	if err != nil {
		return nil, err
	}
	hm, err := bm.finish()
	if err != nil {
		return nil, err
	}
	return &Blocks{H0: h0, HP: hp, HM: hm, Op: op}, nil
}

// ApplyH0 computes out = H0*v from the stored form (CSR + factored
// nonlocal term).
func (b *Blocks) ApplyH0(v, out []complex128) {
	b.H0.Apply(v, out)
	b.addNonlocal(out, v, 0)
}

// ApplyHp computes out = H+*v.
func (b *Blocks) ApplyHp(v, out []complex128) {
	b.HP.Apply(v, out)
	b.addNonlocal(out, v, 1)
}

// ApplyHm computes out = H-*v.
func (b *Blocks) ApplyHm(v, out []complex128) {
	b.HM.Apply(v, out)
	b.addNonlocal(out, v, -1)
}

// addNonlocal accumulates the separable projector term of block offset l:
// H_l += sum_j p^j h (p^{j+l})^dagger.
func (b *Blocks) addNonlocal(out, v []complex128, l int) {
	for pi := range b.Op.Projs {
		p := &b.Op.Projs[pi]
		for j := -1; j <= 1; j++ {
			jc := j + l
			if jc < -1 || jc > 1 {
				continue
			}
			row := &p.Supp[j+1]
			col := &p.Supp[jc+1]
			if len(row.Idx) == 0 || len(col.Idx) == 0 {
				continue
			}
			var sum complex128
			for i, idx := range col.Idx {
				sum += complex(col.Val[i], 0) * v[idx]
			}
			coef := complex(p.H, 0) * sum
			if coef == 0 {
				continue
			}
			for i, idx := range row.Idx {
				out[idx] += coef * complex(row.Val[i], 0)
			}
		}
	}
}

// MemoryBytes returns the stored representation's resident bytes (CSR
// blocks plus the factored projectors shared with the operator).
func (b *Blocks) MemoryBytes() int64 {
	total := b.H0.MemoryBytes() + b.HP.MemoryBytes() + b.HM.MemoryBytes()
	for _, p := range b.Op.Projs {
		for _, s := range p.Supp {
			total += int64(len(s.Idx))*4 + int64(len(s.Val))*8
		}
	}
	return total
}

// DenseH0 converts the stored H0 (including nonlocal) to dense, for tests.
func (b *Blocks) DenseH0() *zlinalg.Matrix {
	n := b.H0.N
	m := zlinalg.NewMatrix(n, n)
	v := make([]complex128, n)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		v[j] = 1
		b.ApplyH0(v, out)
		m.SetCol(j, out)
		v[j] = 0
	}
	return m
}
