package sparse

import (
	"math/rand"
	"testing"
)

// TestApplyZeroAlloc pins the stored-form apply kernels at zero allocations
// per call, matching the matrix-free operators they are benchmarked against.
func TestApplyZeroAlloc(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	const nb = 4
	rng := rand.New(rand.NewSource(3))
	v := randVec(rng, n*nb)
	out := make([]complex128, n*nb)
	mats := []struct {
		name string
		m    *CSR
	}{{"H0", blocks.H0}, {"H+", blocks.HP}, {"H-", blocks.HM}}
	for _, c := range mats {
		m := c.m
		if allocs := testing.AllocsPerRun(5, func() { m.Apply(v[:n], out[:n]) }); allocs != 0 {
			t.Errorf("%s: Apply allocates %.0f times per call, want 0", c.name, allocs)
		}
		if allocs := testing.AllocsPerRun(5, func() { m.ApplyBlock(v, out, nb) }); allocs != 0 {
			t.Errorf("%s: ApplyBlock allocates %.0f times per call, want 0", c.name, allocs)
		}
	}
}
