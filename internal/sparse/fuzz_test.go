package sparse

import (
	"errors"
	"math/cmplx"
	"testing"
)

// FuzzCSRBuild drives the row builder with pseudo-random entry streams under
// an artificially low entry-count ceiling, checking that the int32 overflow
// guard surfaces ErrNNZOverflow (never a wrapped RowPtr or a panic) and that
// every successful build satisfies the CSR structural invariants and
// reproduces a dense reference application.
func FuzzCSRBuild(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint16(8))
	f.Add(uint64(42), uint8(6), uint16(3))
	f.Add(uint64(7), uint8(1), uint16(0))
	f.Add(uint64(1234567), uint8(11), uint16(40))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, limitRaw uint16) {
		n := int(nRaw)%12 + 1
		limit := int(limitRaw) % 64
		old := maxNNZ
		maxNNZ = limit
		defer func() { maxNNZ = old }()

		s := seed
		next := func() uint64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		val := func() complex128 {
			re := float64(int64(next()%2001)-1000) / 250
			im := float64(int64(next()%2001)-1000) / 250
			return complex(re, im)
		}

		b := newBuilder(n)
		dense := make([]complex128, n*n)
		nonzero := 0
		for i := 0; i < n; i++ {
			adds := int(next() % 8)
			for a := 0; a < adds; a++ {
				col := int(next() % uint64(n))
				v := val()
				if next()%5 == 0 {
					v = 0 // explicit zeros must be dropped, not stored
				}
				if v != 0 {
					nonzero++
				}
				b.add(col, v)
				dense[i*n+col] += v
			}
			b.endRow()
		}
		m, err := b.finish()
		if nonzero > limit {
			if !errors.Is(err, ErrNNZOverflow) {
				t.Fatalf("%d nonzeros over ceiling %d: finish() = %v, want ErrNNZOverflow", nonzero, limit, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("unexpected build error for %d nonzeros under ceiling %d: %v", nonzero, limit, err)
		}
		if len(m.RowPtr) != n+1 || m.RowPtr[0] != 0 {
			t.Fatalf("RowPtr has length %d (want %d) or nonzero head", len(m.RowPtr), n+1)
		}
		if int(m.RowPtr[n]) != len(m.Col) || len(m.Col) != len(m.Val) {
			t.Fatalf("index arrays inconsistent: RowPtr[n]=%d len(Col)=%d len(Val)=%d",
				m.RowPtr[n], len(m.Col), len(m.Val))
		}
		for i := 0; i < n; i++ {
			if m.RowPtr[i] > m.RowPtr[i+1] {
				t.Fatalf("RowPtr not monotone at row %d", i)
			}
		}
		for _, c := range m.Col {
			if c < 0 || int(c) >= n {
				t.Fatalf("column index %d out of range [0,%d)", c, n)
			}
		}
		if m.NNZ() != nonzero {
			t.Fatalf("NNZ() = %d, want %d", m.NNZ(), nonzero)
		}
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(float64(i+1), float64(n-i))
		}
		got := make([]complex128, n)
		m.Apply(v, got)
		for i := 0; i < n; i++ {
			var want complex128
			for j := 0; j < n; j++ {
				want += dense[i*n+j] * v[j]
			}
			if cmplx.Abs(got[i]-want) > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("Apply row %d: got %v, want %v", i, got[i], want)
			}
		}
	})
}
