package sparse

import (
	"cbs/internal/soa"
)

// ApplyBlockSoA computes out = A*V on split-complex planes: the SpMM-like
// single sweep of ApplyBlock with the complex arithmetic unrolled onto the
// re/im planes, plus a real fast path — the stencil assembly stores only
// real values (all Hamiltonian coefficients are real; see
// internal/hamiltonian), so the common row costs two multiplies per
// (entry, column) instead of four. Bit-identical to ApplyBlock.
//
//cbs:hotpath
func (m *CSR) ApplyBlockSoA(v, out *soa.Block[float64]) {
	nb := v.NB()
	if nb < 1 || v.N() != m.N || out.N() != m.N || out.NB() != nb {
		panic("sparse: ApplyBlockSoA shape mismatch")
	}
	for i := 0; i < m.N; i++ {
		o := i * nb
		oRe := out.Re[o : o+nb]
		oIm := out.Im[o : o+nb]
		for k := range oRe {
			oRe[k] = 0
			oIm[k] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			ar, ai := real(m.Val[p]), imag(m.Val[p])
			c := int(m.Col[p]) * nb
			vRe := v.Re[c : c+nb]
			vIm := v.Im[c : c+nb]
			if ai == 0 {
				if soa.HasAVX2 {
					soa.AxpyPairF64(oRe, oIm, vRe, vIm, ar)
					continue
				}
				for k := range oRe {
					oRe[k] += ar * vRe[k]
					oIm[k] += ar * vIm[k]
				}
				continue
			}
			if soa.HasAVX2 {
				soa.AxpyCplxF64(oRe, oIm, vRe, vIm, ar, ai)
				continue
			}
			for k := range oRe {
				vr, vi := vRe[k], vIm[k]
				oRe[k] += ar*vr - ai*vi
				oIm[k] += ar*vi + ai*vr
			}
		}
	}
}

// ApplyH0BlockSoA computes out = H0*V on split planes (CSR part plus the
// factored nonlocal term); the blocked split-complex analogue of ApplyH0.
//
//cbs:hotpath
func (b *Blocks) ApplyH0BlockSoA(v, out *soa.Block[float64]) {
	b.H0.ApplyBlockSoA(v, out)
	b.addNonlocalBlockSoA(out, v, 0)
}

// ApplyHpBlockSoA computes out = H+*V on split planes.
//
//cbs:hotpath
func (b *Blocks) ApplyHpBlockSoA(v, out *soa.Block[float64]) {
	b.HP.ApplyBlockSoA(v, out)
	b.addNonlocalBlockSoA(out, v, 1)
}

// ApplyHmBlockSoA computes out = H-*V on split planes.
//
//cbs:hotpath
func (b *Blocks) ApplyHmBlockSoA(v, out *soa.Block[float64]) {
	b.HM.ApplyBlockSoA(v, out)
	b.addNonlocalBlockSoA(out, v, -1)
}

// addNonlocalBlockSoA accumulates the separable projector term of block
// offset l for all nb columns at once. The projector values and channel
// strengths are real, so the split form needs no complex products at all:
// each column's support dot is two real accumulations, and the rank-one
// update two real axpys.
//
//cbs:hotpath
func (b *Blocks) addNonlocalBlockSoA(out, v *soa.Block[float64], l int) {
	nb := v.NB()
	var sumRe, sumIm [maxProjCols]float64
	for pi := range b.Op.Projs {
		p := &b.Op.Projs[pi]
		for j := -1; j <= 1; j++ {
			jc := j + l
			if jc < -1 || jc > 1 {
				continue
			}
			row := &p.Supp[j+1]
			col := &p.Supp[jc+1]
			if len(row.Idx) == 0 || len(col.Idx) == 0 {
				continue
			}
			for k0 := 0; k0 < nb; k0 += maxProjCols {
				k1 := k0 + maxProjCols
				if k1 > nb {
					k1 = nb
				}
				kw := k1 - k0
				for k := 0; k < kw; k++ {
					sumRe[k] = 0
					sumIm[k] = 0
				}
				sr, si := sumRe[:kw], sumIm[:kw]
				for i, idx := range col.Idx {
					cv := col.Val[i]
					o := int(idx)*nb + k0
					if soa.HasAVX2 {
						soa.AxpyPairF64(sr, si, v.Re[o:o+kw], v.Im[o:o+kw], cv)
						continue
					}
					for k := 0; k < kw; k++ {
						sumRe[k] += cv * v.Re[o+k]
						sumIm[k] += cv * v.Im[o+k]
					}
				}
				for k := 0; k < kw; k++ {
					sumRe[k] *= p.H
					sumIm[k] *= p.H
				}
				for i, idx := range row.Idx {
					rv := row.Val[i]
					o := int(idx)*nb + k0
					if soa.HasAVX2 {
						soa.AxpyPairF64(out.Re[o:o+kw], out.Im[o:o+kw], sr, si, rv)
						continue
					}
					for k := 0; k < kw; k++ {
						out.Re[o+k] += rv * sumRe[k]
						out.Im[o+k] += rv * sumIm[k]
					}
				}
			}
		}
	}
}

// maxProjCols bounds the stack-resident per-projector column sums of the
// blocked nonlocal accumulation (wider blocks tile).
const maxProjCols = 64
