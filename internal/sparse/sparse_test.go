package sparse

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
)

func testOperator(t *testing.T) *hamiltonian.Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// TestStoredMatchesMatrixFree: the CSR + factored-projector form must
// reproduce every block application of the matrix-free operator exactly.
func TestStoredMatchesMatrixFree(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	rng := rand.New(rand.NewSource(1))
	v := randVec(rng, n)
	want := make([]complex128, n)
	got := make([]complex128, n)
	cases := []struct {
		name   string
		free   func(v, out []complex128)
		stored func(v, out []complex128)
	}{
		{"H0", op.ApplyH0, blocks.ApplyH0},
		{"H+", op.ApplyHp, blocks.ApplyHp},
		{"H-", op.ApplyHm, blocks.ApplyHm},
	}
	for _, c := range cases {
		c.free(v, want)
		c.stored(v, got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s: stored and matrix-free applies differ at %d: %v vs %v",
					c.name, i, got[i], want[i])
			}
		}
	}
}

// TestMatrixFreeMemoryAdvantage quantifies the paper's claim #1: the
// stored form costs substantially more memory than the matrix-free
// operator.
func TestMatrixFreeMemoryAdvantage(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	stored := blocks.MemoryBytes()
	free := op.MemoryBytes()
	if stored <= free {
		t.Errorf("stored CSR (%d B) not above matrix-free (%d B)", stored, free)
	}
	// The 9-point 3D stencil alone stores 25 entries per row at 24 B each
	// vs 8 B/row of potential in the matrix-free form.
	if ratio := float64(stored) / float64(free); ratio < 3 {
		t.Errorf("stored/free memory ratio only %.1f; expected the stencil storage to dominate", ratio)
	}
}

func TestCSRStructure(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	if int(blocks.H0.RowPtr[n]) != blocks.H0.NNZ() {
		t.Error("row pointer does not close the matrix")
	}
	// Kinetic + local part of H0: at most 3*2*Nf + 1 entries per row.
	maxRow := 0
	for i := 0; i < n; i++ {
		if r := int(blocks.H0.RowPtr[i+1] - blocks.H0.RowPtr[i]); r > maxRow {
			maxRow = r
		}
	}
	if maxRow > 3*2*4+1 {
		t.Errorf("H0 row has %d entries, want <= 25", maxRow)
	}
	// H+ rows only exist near the top boundary: NNZ bounded by
	// plane * Nf * Nf (stencil tails).
	if blocks.HP.NNZ() == 0 || blocks.HM.NNZ() == 0 {
		t.Error("boundary blocks unexpectedly empty")
	}
	if blocks.HP.NNZ() != blocks.HM.NNZ() {
		t.Errorf("H+ and H- have different NNZ: %d vs %d", blocks.HP.NNZ(), blocks.HM.NNZ())
	}
}

// TestApplyBlockMatchesApply: the blocked CSR apply must reproduce the
// per-column apply for nb in {1, 3, 8}.
func TestApplyBlockMatchesApply(t *testing.T) {
	op := testOperator(t)
	blocks, err := FromOperator(op)
	if err != nil {
		t.Fatal(err)
	}
	n := op.N()
	for _, m := range []*CSR{blocks.H0, blocks.HP, blocks.HM} {
		for _, nb := range []int{1, 3, 8} {
			rng := rand.New(rand.NewSource(int64(nb)))
			v := randVec(rng, n*nb)
			out := make([]complex128, n*nb)
			m.ApplyBlock(v, out, nb)
			col := make([]complex128, n)
			ref := make([]complex128, n)
			for c := 0; c < nb; c++ {
				for i := 0; i < n; i++ {
					col[i] = v[i*nb+c]
				}
				m.Apply(col, ref)
				for i := 0; i < n; i++ {
					if cmplx.Abs(out[i*nb+c]-ref[i]) > 1e-13 {
						t.Fatalf("nb=%d col %d row %d: %v vs %v", nb, c, i, out[i*nb+c], ref[i])
					}
				}
			}
		}
	}
}

// TestNNZOverflowGuard: assembly must fail cleanly (not wrap int32 indices)
// when the entry count exceeds the index range. The ceiling is lowered so
// the regression test does not need 2^31 entries.
func TestNNZOverflowGuard(t *testing.T) {
	op := testOperator(t)
	saved := maxNNZ
	defer func() { maxNNZ = saved }()
	maxNNZ = 100 // far below the ~25 * 288 entries of the test operator's H0
	if _, err := FromOperator(op); err == nil {
		t.Fatal("oversized assembly did not fail")
	} else if !errors.Is(err, ErrNNZOverflow) {
		t.Fatalf("got error %v, want ErrNNZOverflow", err)
	}
	maxNNZ = saved
	if _, err := FromOperator(op); err != nil {
		t.Fatalf("assembly within the ceiling failed: %v", err)
	}
}

func TestCSRApplyValidation(t *testing.T) {
	m := &CSR{N: 3, RowPtr: []int32{0, 0, 0, 0}}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	m.Apply(make([]complex128, 2), make([]complex128, 3))
}
