// Package obm implements the overbridging boundary matching method
// (Fujimoto and Hirose, PRB 67, 195315 (2003)) -- the conventional
// transfer-matrix baseline the paper compares against in Fig. 4 and
// Table 1. As in the paper's description:
//
//   - the first and last Nx*Ny*Nf columns of the unit-cell Green function
//     (E - H00)^{-1} are computed with an iterative Krylov solver (the
//     paper uses CG; we use CG with a BiCG fallback on breakdown),
//   - a generalized eigenvalue problem of dimension 2*Nx*Ny*Nf is solved
//     densely (the paper uses LAPACK ZGGEV; we use the zlinalg
//     shift-invert generalized eigensolver),
//
// giving the complex Bloch factors lambda. Runtime is O(N^3)-ish and the
// dense interface blocks cost O(N*q) ~ O(N^2) memory, the scaling the
// QEP/Sakurai-Sugiura method beats by two orders of magnitude.
//
// Derivation used here: inside one cell, (E - H00) psi = B_L psi_L +
// B_R psi_R with B_L = H_{n,n-1} and B_R = H_{n,n+1} acting on the top
// (previous cell) and bottom (next cell) interface values. With the Bloch
// conditions psi_L = lambda^{-1} R_t psi, psi_R = lambda R_b psi and
// u = R_b psi, wt = lambda^{-1} R_t psi this closes into the linear pencil
//
//	[ I   -Gbl ] [u ]          [ Gbr  0 ] [u ]
//	[ 0   -Gtl ] [wt] = lambda [ Gtr -I ] [wt]
//
// where Gxy are the interface blocks of G*B_L and G*B_R.
package obm

import (
	"fmt"
	"math/cmplx"
	"time"

	"cbs/internal/hamiltonian"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/zlinalg"
)

// Options controls the baseline.
type Options struct {
	Tol       float64 // Krylov tolerance for the Green-function columns
	MaxIter   int
	LambdaMin float64 // annulus filter for reporting (same as the SS method)
}

// DefaultOptions mirrors the paper's settings.
func DefaultOptions() Options {
	return Options{Tol: 1e-10, LambdaMin: 0.5}
}

// Eigenpair is one OBM solution.
type Eigenpair struct {
	Lambda   complex128
	K        complex128
	Residual float64 // relative QEP residual of the reconstructed cell state
	Psi      []complex128
}

// Result is the outcome of one OBM run.
type Result struct {
	Energy     float64
	Pairs      []Eigenpair // annulus eigenpairs
	AllLambdas []complex128
	Timings    Timings
	MatVecs    int
}

// Timings is the baseline's cost breakdown (Fig. 4a splits runtime into
// "matrix inversion" and "solve eigenvalue problem").
type Timings struct {
	Inversion time.Duration // Green-function columns (2q Krylov solves)
	Eigen     time.Duration // dense generalized eigenproblem
}

// Solve runs the OBM method for the Hamiltonian at energy e (hartree).
func Solve(op *hamiltonian.Operator, e float64, opts Options) (*Result, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.LambdaMin <= 0 || opts.LambdaMin >= 1 {
		opts.LambdaMin = 0.5
	}
	n := op.N()
	g := op.G
	// Interface block size: Nx*Ny*Nf in the paper; widened when projector
	// tails cross the cell boundary beyond the stencil half-width.
	q := g.PlaneSize() * op.InterfaceThickness()
	if 2*q > n {
		return nil, fmt.Errorf("obm: interface blocks (2q=%d) exceed the cell dimension %d; enlarge Nz", 2*q, n)
	}
	res := &Result{Energy: e}

	// ---- Green-function interface columns --------------------------------
	// We need X_L = G*B_L and X_R = G*B_R where G = (E - H00)^{-1}. B_L and
	// B_R map interface vectors into the cell, so each needs q solves.
	tInv := time.Now()
	apply := func(v, out []complex128) {
		op.ApplyH0(v, out)
		for i := range out {
			out[i] = complex(e, 0)*v[i] - out[i]
		}
	}
	solveCol := func(b []complex128) ([]complex128, int, error) {
		x := make([]complex128, n)
		r := linsolve.CG(apply, b, x, linsolve.Options{Tol: opts.Tol, MaxIter: opts.MaxIter})
		if r.Breakdown || !r.Converged {
			// Indefinite Hermitian system: fall back to BiCG (A = A^dagger).
			for i := range x {
				x[i] = 0
			}
			r = linsolve.BiCG(apply, apply, b, x, linsolve.Options{Tol: opts.Tol, MaxIter: opts.MaxIter})
			if !r.Converged {
				return nil, r.MatVecApplied, fmt.Errorf("obm: Green-function column did not converge (residual %g)", r.Residual)
			}
		}
		return x, r.MatVecApplied, nil
	}

	// Interface selectors: bottom = first Nf planes, top = last Nf planes.
	bottomIdx := make([]int, q)
	topIdx := make([]int, q)
	plane := g.PlaneSize()
	for i := 0; i < q; i++ {
		bottomIdx[i] = i
		topIdx[i] = n - q + i
	}

	// Columns of B_L: B_L e_i for each interface basis vector e_i of the
	// previous cell's top planes; similarly B_R for the next cell's bottom
	// planes. Use the block applies on indicator vectors.
	ei := make([]complex128, n)
	xl := zlinalg.NewMatrix(n, q) // G * B_L
	xr := zlinalg.NewMatrix(n, q) // G * B_R
	col := make([]complex128, n)
	for i := 0; i < q; i++ {
		// B_L acts on psi_{n-1}: only its top-plane values matter.
		ei[topIdx[i]] = 1
		op.ApplyHm(ei, col)
		ei[topIdx[i]] = 0
		x, mv, err := solveCol(col)
		if err != nil {
			return nil, err
		}
		res.MatVecs += mv
		xl.SetCol(i, x)

		// B_R acts on psi_{n+1}: only its bottom-plane values matter.
		ei[bottomIdx[i]] = 1
		op.ApplyHp(ei, col)
		ei[bottomIdx[i]] = 0
		x, mv, err = solveCol(col)
		if err != nil {
			return nil, err
		}
		res.MatVecs += mv
		xr.SetCol(i, x)
	}
	res.Timings.Inversion = time.Since(tInv)
	_ = plane

	// ---- dense pencil ------------------------------------------------------
	tEig := time.Now()
	gbl := restrictRows(xl, bottomIdx)
	gbr := restrictRows(xr, bottomIdx)
	gtl := restrictRows(xl, topIdx)
	gtr := restrictRows(xr, topIdx)

	two := 2 * q
	amat := zlinalg.NewMatrix(two, two)
	bmat := zlinalg.NewMatrix(two, two)
	// A = [[I, -Gbl],[0, -Gtl]]
	for i := 0; i < q; i++ {
		amat.Set(i, i, 1)
	}
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			amat.Set(i, q+j, -gbl.At(i, j))
			amat.Set(q+i, q+j, -gtl.At(i, j))
			bmat.Set(i, j, gbr.At(i, j))
			bmat.Set(q+i, j, gtr.At(i, j))
		}
	}
	// B = [[Gbr, 0],[Gtr, -I]]
	for i := 0; i < q; i++ {
		bmat.Set(q+i, q+i, -1)
	}
	gep, err := zlinalg.GeneralizedEig(amat, bmat)
	if err != nil {
		return nil, fmt.Errorf("obm: pencil eigenproblem: %w", err)
	}
	res.Timings.Eigen = time.Since(tEig)

	// ---- reconstruct and filter -------------------------------------------
	qp := qep.New(op, e)
	a := g.Lz()
	for j := range gep.Values {
		if gep.IsInf[j] {
			continue
		}
		lam := gep.Values[j]
		res.AllLambdas = append(res.AllLambdas, lam)
		mag := cmplx.Abs(lam)
		// Widened pre-filter: refinement may move an eigenvalue across the
		// annulus boundary in either direction.
		if mag <= 0.9*opts.LambdaMin || mag >= 1/(0.9*opts.LambdaMin) {
			continue
		}
		// The interface pencil inherits the decades-wide scaling of the FD
		// stencil tails, which costs the shift-invert eigensolver several
		// digits (LAPACK's QZ in the paper is backward stable on the
		// pencil). Rayleigh-quotient iteration restores full accuracy at
		// O(q^3) per annulus eigenvalue.
		vec := gep.Vectors.Col(j)
		lam, vec = refinePencilEigenpair(amat, bmat, lam, vec)
		mag = cmplx.Abs(lam)
		if mag <= opts.LambdaMin || mag >= 1/opts.LambdaMin {
			continue
		}
		// psi = X_L wt + lambda X_R u.
		u := vec[:q]
		wt := vec[q:]
		psi := make([]complex128, n)
		for c := 0; c < q; c++ {
			zlinalg.Axpy(wt[c], xl.Col(c), psi)
			zlinalg.Axpy(lam*u[c], xr.Col(c), psi)
		}
		if zlinalg.Normalize(psi) == 0 {
			continue
		}
		res.Pairs = append(res.Pairs, Eigenpair{
			Lambda:   lam,
			K:        qep.KFromLambda(lam, a),
			Residual: qp.Residual(lam, psi),
			Psi:      psi,
		})
	}
	return res, nil
}

// refinePencilEigenpair runs a few Rayleigh-quotient iterations on the
// pencil (A, B): solve (A - lam*B) y = B x, normalize, update lam from the
// generalized Rayleigh quotient. Cubically convergent; three steps take an
// O(1e-3)-accurate shift-invert estimate to machine precision.
func refinePencilEigenpair(a, b *zlinalg.Matrix, lam complex128, x []complex128) (complex128, []complex128) {
	for it := 0; it < 3; it++ {
		m := zlinalg.Sub(a, zlinalg.Scale(lam, b))
		lu, err := zlinalg.FactorLU(m)
		if err != nil {
			// lam is (numerically) an exact eigenvalue already.
			return lam, x
		}
		y := lu.SolveVec(zlinalg.MulVec(b, x))
		if zlinalg.Normalize(y) == 0 {
			return lam, x
		}
		x = y
		num := zlinalg.Dot(x, zlinalg.MulVec(a, x))
		den := zlinalg.Dot(x, zlinalg.MulVec(b, x))
		if den != 0 {
			lam = num / den
		}
	}
	return lam, x
}

// restrictRows extracts the rows idx of m as a dense block.
func restrictRows(m *zlinalg.Matrix, idx []int) *zlinalg.Matrix {
	out := zlinalg.NewMatrix(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// MemoryEstimate returns the baseline's resident bytes: the two dense
// N x q Green-function blocks plus the 2q x 2q pencil and eigenvector
// storage -- the O(N^2)-class footprint of Fig. 4(b).
func MemoryEstimate(op *hamiltonian.Operator) int64 {
	n := int64(op.N())
	q := int64(op.G.PlaneSize() * op.InterfaceThickness())
	var b int64
	b += 2 * n * q * 16             // X_L, X_R
	b += 3 * (2 * q) * (2 * q) * 16 // pencil + eigenvectors
	b += op.MemoryBytes()
	return b
}
