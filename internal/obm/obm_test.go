package obm

import (
	"math"
	"math/cmplx"
	"testing"

	"cbs/internal/bandstructure"
	"cbs/internal/core"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/qep"
)

func smallAl(t *testing.T) *hamiltonian.Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 10, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestOBMRecoversPropagatingState mirrors the core solver's Fig. 6 check:
// at a band energy the OBM spectrum must contain lambda = e^{i k0 a}.
func TestOBMRecoversPropagatingState(t *testing.T) {
	op := smallAl(t)
	a := op.G.Lz()
	k0 := 0.55 * math.Pi / a
	bands, err := bandstructure.Bands(op, []float64{k0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := bands[0][2]
	res, err := Solve(op, e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("OBM found no annulus eigenpairs")
	}
	want := qep.LambdaFromK(complex(k0, 0), a)
	best := math.Inf(1)
	for _, p := range res.Pairs {
		if d := cmplx.Abs(p.Lambda - want); d < best {
			best = d
		}
	}
	if best > 1e-5 {
		t.Errorf("propagating state missed by %g", best)
	}
	if res.Timings.Inversion <= 0 || res.Timings.Eigen <= 0 {
		t.Error("timings not recorded")
	}
}

// TestOBMAgreesWithSakuraiSugiura is the paper's equivalence claim: "the
// solutions within lambda_min < |lambda| < 1/lambda_min obtained by our
// method correspond to the OBM solutions".
func TestOBMAgreesWithSakuraiSugiura(t *testing.T) {
	op := smallAl(t)
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Shift away from EF: for this model EF sits exactly at a band
	// extremum, where the QEP is near-defective (a lambda ~ 1 quadruplet
	// with square-root conditioning) and *no* dense pencil solver can
	// resolve the fine structure; the coarse cluster agreement is checked
	// separately below.
	e := ef + 0.05
	obmRes, err := Solve(op, e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ssOpts := core.DefaultOptions()
	ssOpts.Nint = 24
	ssOpts.Nmm = 8
	ssOpts.Nrh = 8
	ssRes, err := core.Solve(qep.New(op, e), ssOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ssRes.Pairs) == 0 {
		t.Skip("no annulus states at E on this coarse grid")
	}
	// Every SS eigenvalue must appear in the OBM spectrum.
	for _, p := range ssRes.Pairs {
		best := math.Inf(1)
		for _, o := range obmRes.Pairs {
			if d := cmplx.Abs(o.Lambda - p.Lambda); d < best {
				best = d
			}
		}
		if best > 1e-4 {
			t.Errorf("SS eigenvalue %v missing from OBM spectrum (closest %g)", p.Lambda, best)
		}
	}
}

func TestOBMClusterAgreementAtBandEdge(t *testing.T) {
	// At a band extremum the eigenvalues cluster at |lambda| = 1 with
	// square-root conditioning; OBM must still find the cluster, if not
	// its 1e-5 fine structure.
	op := smallAl(t)
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	obmRes, err := Solve(op, ef, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ssOpts := core.DefaultOptions()
	ssOpts.Nint = 24
	ssOpts.Nmm = 8
	ssOpts.Nrh = 8
	ssRes, err := core.Solve(qep.New(op, ef), ssOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ssRes.Pairs {
		best := math.Inf(1)
		for _, o := range obmRes.Pairs {
			if d := cmplx.Abs(o.Lambda - p.Lambda); d < best {
				best = d
			}
		}
		if best > 3e-2 {
			t.Errorf("SS eigenvalue %v has no OBM counterpart within the cluster radius (closest %g)", p.Lambda, best)
		}
	}
}

func TestOBMResidualsSmall(t *testing.T) {
	op := smallAl(t)
	res, err := Solve(op, 0.2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if p.Residual > 1e-5 {
			t.Errorf("reconstructed state %v has QEP residual %g", p.Lambda, p.Residual)
		}
	}
}

func TestOBMMemoryQuadraticScaling(t *testing.T) {
	st, _ := lattice.AlBulk100(1)
	op1, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 10, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	op2, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 12, Ny: 12, Nz: 10, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	m1 := MemoryEstimate(op1)
	m2 := MemoryEstimate(op2)
	// Quadrupling the plane quadruples both N and q: the N*q term grows
	// 16x, unlike the O(N) footprint of the SS method.
	if ratio := float64(m2) / float64(m1); ratio < 8 {
		t.Errorf("OBM memory grew only %.1fx for 4x plane size; expected O(N*q) growth", ratio)
	}
}

func TestInterfaceThickness(t *testing.T) {
	op := smallAl(t)
	th := op.InterfaceThickness()
	if th < op.St.Nf {
		t.Errorf("interface thickness %d below the stencil half-width %d", th, op.St.Nf)
	}
	if th > op.G.Nz {
		t.Errorf("interface thickness %d exceeds the cell (%d planes)", th, op.G.Nz)
	}
}
