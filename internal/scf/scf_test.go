package scf

import (
	"math"
	"testing"

	"cbs/internal/bandstructure"
	"cbs/internal/density"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
)

func TestSCFConvergesOnSmallAl(t *testing.T) {
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 8, Ny: 8, Nz: 8, Nf: 2})
	if err != nil {
		t.Fatal(err)
	}
	vBefore := append([]float64(nil), op.VLoc...)
	res, err := Run(op, Options{MaxIter: 25, Mix: 0.3, Tol: 5e-3, EigTol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge: deltaV = %g after %d iterations", res.DeltaV, res.Iterations)
	}
	// The potential must actually have changed from the superposition
	// starting point (the SCF did work).
	var maxChange float64
	for i := range vBefore {
		if d := math.Abs(op.VLoc[i] - vBefore[i]); d > maxChange {
			maxChange = d
		}
	}
	if maxChange < 1e-6 {
		t.Error("SCF left the potential untouched")
	}
	// Density integrates to the valence charge.
	if res.Density != nil {
		got := density.Integrate(op.G, res.Density)
		if math.Abs(got-12) > 1e-6 {
			t.Errorf("converged density has %g electrons, want 12", got)
		}
	}
	// The converged Hamiltonian still yields a sensible band structure.
	ef, err := bandstructure.FermiLevel(op, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ef) {
		t.Error("Fermi level NaN after SCF")
	}
}

func TestOccupations(t *testing.T) {
	occ := occupations([]float64{-1, 0, 1, 2}, 5)
	var tot float64
	for i, o := range occ {
		tot += o
		if o < 0 || o > 2+1e-12 {
			t.Errorf("occ[%d] = %g outside [0,2]", i, o)
		}
		if i > 0 && o > occ[i-1]+1e-12 {
			t.Errorf("occupations not non-increasing: %v", occ)
		}
	}
	if math.Abs(tot-5) > 1e-9 {
		t.Errorf("total occupation %g, want 5", tot)
	}
	// Levels far below the chemical potential are fully occupied.
	if occ[0] < 1.99 {
		t.Errorf("deep level occupation %g, want about 2", occ[0])
	}
	if len(occupations(nil, 2)) != 0 {
		t.Error("empty level list should give empty occupations")
	}
}
