// Package scf runs a small self-consistent-field loop on top of the
// substrate packages: starting from the superposition potential it
// iterates density -> Hartree (Poisson) -> LDA exchange-correlation ->
// effective potential with linear mixing, diagonalizing at the Gamma point
// with the sparse eigensolver.
//
// The paper obtains its converged potential from the RSPACE code; this
// package is the optional self-consistency stage of that substitution for
// small cells (the CBS pipeline itself only needs *a* converged-shaped
// potential; see DESIGN.md).
package scf

import (
	"fmt"
	"math"

	"cbs/internal/bandstructure"
	"cbs/internal/density"
	"cbs/internal/eigsparse"
	"cbs/internal/hamiltonian"
	"cbs/internal/poisson"
	"cbs/internal/xc"
)

// Options controls the SCF loop.
type Options struct {
	MaxIter    int     // outer iterations (default 30)
	Mix        float64 // linear mixing parameter (default 0.3)
	Tol        float64 // convergence: max |V_new - V_old| (hartree, default 1e-4)
	EigTol     float64 // eigensolver residual target (default 1e-5)
	ExtraBands int     // unoccupied bands to include (default 4)
}

// Result reports the converged state.
type Result struct {
	Iterations  int
	Converged   bool
	DeltaV      float64   // final potential change
	Eigenvalues []float64 // Gamma-point KS eigenvalues (hartree)
	Density     []float64
}

// Run iterates the operator's local potential to self-consistency in place:
// on return op.VLoc holds V_ion + V_H + V_xc of the converged density.
func Run(op *hamiltonian.Operator, opts Options) (*Result, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 30
	}
	if opts.Mix <= 0 || opts.Mix > 1 {
		opts.Mix = 0.3
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-4
	}
	if opts.EigTol <= 0 {
		opts.EigTol = 1e-5
	}
	if opts.ExtraBands <= 0 {
		opts.ExtraBands = 4
	}
	g := op.G
	st := op.Structure
	ne, err := bandstructure.ValenceElectrons(op)
	if err != nil {
		return nil, err
	}
	nocc := int(math.Ceil(ne / 2))
	nev := nocc + opts.ExtraBands
	if nev > g.N() {
		return nil, fmt.Errorf("scf: %d bands exceed the grid dimension %d", nev, g.N())
	}

	ps, err := poisson.NewSolver(g, op.St.Nf)
	if err != nil {
		return nil, err
	}
	nion, err := density.IonicBackground(g, st)
	if err != nil {
		return nil, err
	}
	// Start from the superposition density.
	rho, err := density.Superposition(g, st)
	if err != nil {
		return nil, err
	}
	// Calibrate the ionic reference so that the starting screened
	// superposition potential is exactly the effective potential of the
	// starting density: vion = V_start - V_H(rho_0 - n_ion) - V_xc(rho_0).
	// The screened atomic potentials already model the neutral-atom
	// screening; this keeps the SCF functional consistent with them (see
	// the package comment on the RSPACE substitution).
	vion := append([]float64(nil), op.VLoc...)
	{
		diff := make([]float64, g.N())
		for i := range diff {
			diff[i] = rho[i] - nion[i]
		}
		vh0, err := ps.Hartree(diff, 1e-8, 0)
		if err != nil {
			return nil, err
		}
		vxc0 := make([]float64, g.N())
		xc.PotentialOnGrid(rho, vxc0)
		for i := range vion {
			vion[i] -= vh0[i] + vxc0[i]
		}
	}

	res := &Result{}
	vxc := make([]float64, g.N())
	n := g.N()
	apply := func(v, out []complex128) { op.ApplyBlochGamma(v, out) }
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Density of the lowest Gamma-point states of the current
		// potential.
		eig, err := eigsparse.Lowest(apply, n, nev, eigsparse.Options{Tol: opts.EigTol, Seed: int64(iter)})
		if err != nil {
			return nil, err
		}
		res.Eigenvalues = eig.Values
		occ := occupations(eig.Values, ne)
		rho, err = density.FromOrbitals(g, eig.Vectors, occ)
		if err != nil {
			return nil, err
		}
		// Effective potential of that density: V_ion + V_H(rho - rho_ion)
		// + V_xc(rho). The ionic background keeps the Poisson right-hand
		// side neutral.
		diff := make([]float64, n)
		for i := range diff {
			diff[i] = rho[i] - nion[i]
		}
		vh, err := ps.Hartree(diff, 1e-8, 0)
		if err != nil {
			return nil, err
		}
		xc.PotentialOnGrid(rho, vxc)
		deltaV := 0.0
		for i := 0; i < n; i++ {
			vNew := vion[i] + vh[i] + vxc[i]
			d := math.Abs(vNew - op.VLoc[i])
			if d > deltaV {
				deltaV = d
			}
			op.VLoc[i] = (1-opts.Mix)*op.VLoc[i] + opts.Mix*vNew
		}
		res.DeltaV = deltaV
		if deltaV < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Density = rho
	return res, nil
}

// smearingKT is the Fermi-Dirac smearing temperature (hartree) that damps
// occupation oscillations across metallic level crossings.
const smearingKT = 0.02

// occupations fills ne electrons into the levels with Fermi-Dirac smearing
// (2 electrons per level, spin degenerate); the chemical potential is found
// by bisection.
func occupations(vals []float64, ne float64) []float64 {
	occ := make([]float64, len(vals))
	if len(vals) == 0 {
		return occ
	}
	total := func(mu float64) float64 {
		var s float64
		for _, e := range vals {
			s += 2 * fermi((e-mu)/smearingKT)
		}
		return s
	}
	lo := vals[0] - 10*smearingKT
	hi := vals[len(vals)-1] + 10*smearingKT
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if total(mid) < ne {
			lo = mid
		} else {
			hi = mid
		}
	}
	mu := 0.5 * (lo + hi)
	var s float64
	for i, e := range vals {
		occ[i] = 2 * fermi((e-mu)/smearingKT)
		s += occ[i]
	}
	// Rescale to the exact electron count (the finite band set truncates
	// the high tail).
	if s > 0 {
		f := ne / s
		for i := range occ {
			occ[i] *= f
		}
	}
	return occ
}

func fermi(x float64) float64 {
	if x > 40 {
		return 0
	}
	if x < -40 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}
