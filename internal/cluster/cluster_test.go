package cluster

import (
	"testing"

	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
)

func testWorkload(t *testing.T) Workload {
	t.Helper()
	st, err := lattice.CNT(8, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 24, Ny: 24, Nz: 10, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return FromOperator(op, 32, 64, 2000)
}

func TestTopLayerNearIdeal(t *testing.T) {
	// Fig. 8(a): the top (right-hand-side) layer scales almost ideally.
	m := OakforestPACS()
	w := testWorkload(t)
	base := Hierarchy{Top: 1, Mid: 2, Ndm: 1, Threads: 64}
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	pts, err := m.LayerScaling(w, base, "top", counts)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	eff := last.Speedup / float64(last.Workers)
	if eff < 0.95 {
		t.Errorf("top layer efficiency %.2f at %d workers, want near-ideal", eff, last.Workers)
	}
}

func TestMiddleLayerSlightlyDegraded(t *testing.T) {
	// Fig. 8(b): the middle layer scales almost linearly but below the top
	// layer (iteration-count imbalance); paper: about 21x at 32 workers.
	m := OakforestPACS()
	w := testWorkload(t)
	base := Hierarchy{Top: 2, Mid: 1, Ndm: 1, Threads: 64}
	pts, err := m.LayerScaling(w, base, "mid", []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.Speedup >= 31.5 {
		t.Errorf("middle layer speedup %.1f at 32: should be visibly below ideal", last.Speedup)
	}
	if last.Speedup < 15 {
		t.Errorf("middle layer speedup %.1f at 32: paper observes about 21x", last.Speedup)
	}
}

func TestBottomLayerWorstForSmallSystem(t *testing.T) {
	// Fig. 8(c): domain decomposition of a small system scales worst
	// (communication per iteration).
	m := OakforestPACS()
	w := testWorkload(t)
	base := Hierarchy{Top: 1, Mid: 2, Ndm: 1, Threads: 4}
	counts := []int{1, 2, 4, 8, 16}
	bottom, err := m.LayerScaling(w, base, "ndm", counts)
	if err != nil {
		t.Fatal(err)
	}
	top, err := m.LayerScaling(w, Hierarchy{Top: 1, Mid: 2, Ndm: 1, Threads: 4}, "top", counts)
	if err != nil {
		t.Fatal(err)
	}
	bEff := bottom[len(bottom)-1].Speedup / 16
	tEff := top[len(top)-1].Speedup / 16
	if bEff >= tEff {
		t.Errorf("bottom-layer efficiency %.2f not below top-layer %.2f", bEff, tEff)
	}
}

func TestBottomLayerImprovesWithSystemSize(t *testing.T) {
	// Fig. 9 vs Fig. 8: for the large system the bottom layer scales well
	// (compute per domain grows, communication amortizes).
	m := OakforestPACS()
	small := testWorkload(t)
	large := small
	large.N *= 32 // the 1024-atom cell: 32x more planes
	large.FlopsPerApply *= 32
	large.ProjAllreduceBytes *= 32
	counts := []int{1, 2, 4, 8, 16}
	base := Hierarchy{Top: 1, Mid: 1, Ndm: 1, Threads: 4}
	sp, err := m.LayerScaling(small, base, "ndm", counts)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := m.LayerScaling(large, base, "ndm", counts)
	if err != nil {
		t.Fatal(err)
	}
	if lp[len(lp)-1].Speedup <= sp[len(sp)-1].Speedup {
		t.Errorf("large-system bottom speedup %.1f not above small-system %.1f",
			lp[len(lp)-1].Speedup, sp[len(sp)-1].Speedup)
	}
}

func TestTable2UShape(t *testing.T) {
	// Table 2: with 64 cores the time vs (threads x ndm) split is
	// U-shaped, with neither extreme optimal for the small system.
	m := OakforestPACS()
	w := testWorkload(t)
	rows := m.Table2(w, 64, 1000)
	if len(rows) != 7 { // threads = 1,2,4,8,16,32,64
		t.Fatalf("%d rows, want 7", len(rows))
	}
	best := 0
	for i, r := range rows {
		if r.Threads*r.Ndm != 64 {
			t.Errorf("row %d: %dx%d != 64", i, r.Threads, r.Ndm)
		}
		if r.Seconds < rows[best].Seconds {
			best = i
		}
	}
	if best == 0 || best == len(rows)-1 {
		t.Errorf("optimum at an extreme split (%d threads); paper finds an interior optimum", rows[best].Threads)
	}
}

func TestTable2OptimumShiftsWithSize(t *testing.T) {
	// Paper: best split 16 threads x 4 domains for 32 atoms, but 4 x 16
	// for 1024/10240 atoms -- more domains pay off for larger systems.
	m := OakforestPACS()
	small := testWorkload(t)
	large := small
	large.N *= 320
	large.FlopsPerApply *= 320
	large.ProjAllreduceBytes *= 320
	optOf := func(rows []SplitTime) int {
		best := 0
		for i, r := range rows {
			if r.Seconds < rows[best].Seconds {
				best = i
			}
		}
		return rows[best].Ndm
	}
	ndmSmall := optOf(m.Table2(small, 64, 1000))
	ndmLarge := optOf(m.Table2(large, 64, 1000))
	if ndmLarge < ndmSmall {
		t.Errorf("optimal Ndm %d (large) < %d (small); paper sees the opposite trend", ndmLarge, ndmSmall)
	}
}

func TestIterTimeMonotoneInCompute(t *testing.T) {
	m := OakforestPACS()
	w := testWorkload(t)
	if m.IterTime(w, 1, 1) <= m.IterTime(w, 1, 64)*0.99 {
		t.Error("more threads should not be slower than one thread for this workload")
	}
	if m.IterTime(w, 0, 0) <= 0 {
		t.Error("degenerate arguments must still give positive time")
	}
}

func TestLayerScalingUnknownLayer(t *testing.T) {
	m := OakforestPACS()
	w := testWorkload(t)
	if _, err := m.LayerScaling(w, Hierarchy{}, "bogus", []int{1}); err == nil {
		t.Error("unknown layer should fail")
	}
}
