// Package cluster is an analytic performance model of a many-core cluster
// (an Oakforest-PACS-like machine: Xeon Phi KNL nodes, fat-tree network)
// that replays the paper's hierarchical solve schedule at process counts
// far beyond one host. The machine is described by a handful of alpha-beta
// parameters; the workload (flops per BiCG iteration, halo volume,
// allreduce sizes, iteration-count spread across quadrature points) is
// extracted from the real Hamiltonian operator. The model regenerates the
// *shapes* of Fig. 8, 9, 10 (strong scaling of the three layers) and
// Table 2 (in-node OpenMP x domain split), as documented in DESIGN.md under
// the hardware substitution.
package cluster

import (
	"fmt"
	"math"

	"cbs/internal/hamiltonian"
)

// Machine holds the hardware model parameters.
type Machine struct {
	Name           string
	CoresPerNode   int
	CoreFlops      float64 // sustained flop/s per core on stencil code
	AlphaSec       float64 // point-to-point message latency (s)
	BetaSecPerByte float64 // inverse bandwidth per link (s/byte)
	// OmpSerialFrac and OmpQuadFrac model thread efficiency
	// 1 / (1 + s1*(t-1) + s2*(t-1)^2): the quadratic term captures the
	// KNL tile/NUMA degradation at high thread counts the paper observes
	// in Table 2.
	OmpSerialFrac float64
	OmpQuadFrac   float64
	// GlobalAllreducePenalty scales collective latency at large process
	// counts (the "global communication in the nonlocal
	// pseudopotential-vector products" the paper identifies).
	GlobalAllreducePenalty float64
}

// OakforestPACS returns parameters representative of the paper's machine:
// 68-core Knights Landing nodes (1.4 GHz), Omni-Path fabric.
func OakforestPACS() Machine {
	return Machine{
		Name:                   "Oakforest-PACS (model)",
		CoresPerNode:           68,
		CoreFlops:              1.2e9, // sustained, memory-bound stencil
		AlphaSec:               2.5e-6,
		BetaSecPerByte:         1.0 / 9.0e9,
		OmpSerialFrac:          0.012,
		OmpQuadFrac:            0.0004,
		GlobalAllreducePenalty: 1.15,
	}
}

// Workload describes one CBS solve's inner loop, extracted from the real
// operator.
type Workload struct {
	N                  int     // Hamiltonian dimension
	NzPlanes           int     // grid planes along the decomposed axis
	StencilNf          int     // FD half-width (halo thickness)
	FlopsPerApply      float64 // one operator application
	HaloBytes          int     // one halo exchange (both directions)
	ProjAllreduceBytes int     // projector coefficient reduction
	BaseIters          int     // typical BiCG iterations per system
	Nint               int     // quadrature points
	Nrh                int     // right-hand sides
}

// FromOperator extracts the workload of the operator with the given solver
// parameters.
func FromOperator(op *hamiltonian.Operator, nint, nrh, baseIters int) Workload {
	return Workload{
		N:                  op.N(),
		NzPlanes:           op.G.Nz,
		StencilNf:          op.St.Nf,
		FlopsPerApply:      op.FlopsPerApply(),
		HaloBytes:          op.G.HaloBytes(op.St.Nf),
		ProjAllreduceBytes: 3 * len(op.Projs) * 16,
		BaseIters:          baseIters,
		Nint:               nint,
		Nrh:                nrh,
	}
}

// IterTime models one dual-BiCG iteration on ndm domains with the given
// thread count per process.
func (m Machine) IterTime(w Workload, ndm, threads int) float64 {
	if ndm < 1 {
		ndm = 1
	}
	if threads < 1 {
		threads = 1
	}
	// Compute: 2 applies (primal + dual) plus ~10 vector ops of 8 flops.
	flops := 2*w.FlopsPerApply + 10*8*float64(w.N)
	tm := float64(threads - 1)
	ompEff := 1 / (1 + m.OmpSerialFrac*tm + m.OmpQuadFrac*tm*tm)
	compute := flops / float64(ndm) / (m.CoreFlops * float64(threads) * ompEff)
	if ndm == 1 {
		return compute
	}
	logP := math.Log2(float64(ndm))
	// 2 halo exchanges (primal + dual applies). When the z slabs would be
	// thinner than the stencil half-width the decomposition must go 2D/3D
	// and the per-rank surface (and with it the exchanged volume) grows.
	haloFactor := 1.0
	if w.NzPlanes > 0 {
		if over := float64(ndm*w.StencilNf) / float64(w.NzPlanes); over > 1 {
			haloFactor = over
		}
	}
	halo := 2 * (m.AlphaSec + float64(w.HaloBytes)*haloFactor*m.BetaSecPerByte)
	// 2 batched inner-product allreduces + 2 projector reductions.
	small := 4 * 16.0
	allred := 2*(m.AlphaSec+small*m.BetaSecPerByte)*logP +
		2*(m.AlphaSec+float64(w.ProjAllreduceBytes)*m.BetaSecPerByte)*logP*m.GlobalAllreducePenalty
	return compute + halo + allred
}

// pointIters returns the deterministic per-quadrature-point iteration
// counts, reproducing the paper's mild convergence spread (Fig. 5): most
// points converge alike, a few lag by up to ~35%.
func pointIters(w Workload) []int {
	its := make([]int, w.Nint)
	for j := range its {
		// Deterministic quasi-random factor in [0.85, 1.35].
		f := 0.85 + 0.5*frac(float64(j)*0.6180339887498949+0.17)
		its[j] = int(float64(w.BaseIters) * f)
	}
	return its
}

func frac(x float64) float64 { return x - math.Floor(x) }

// Hierarchy is a process assignment of the three layers.
type Hierarchy struct {
	Top, Mid, Ndm, Threads int
}

// Processes returns the MPI process count of the assignment.
func (h Hierarchy) Processes() int { return h.Top * h.Mid * h.Ndm }

// SolveTime models the wall-clock of the full step-1 linear solve phase
// under the hierarchy: the Nrh right-hand sides split over Top groups
// (embarrassingly parallel), quadrature points split over Mid workers
// (makespan of the iteration-count spread -- the paper's middle-layer
// degradation), each solve domain-decomposed over Ndm processes.
func (m Machine) SolveTime(w Workload, h Hierarchy) float64 {
	if h.Top < 1 {
		h.Top = 1
	}
	if h.Mid < 1 {
		h.Mid = 1
	}
	its := pointIters(w)
	iterT := m.IterTime(w, h.Ndm, h.Threads)
	// Middle layer: round-robin points over Mid workers, makespan = max.
	workers := make([]float64, h.Mid)
	for j, it := range its {
		workers[j%h.Mid] += float64(it) * iterT
	}
	var mid float64
	for _, t := range workers {
		if t > mid {
			mid = t
		}
	}
	// Top layer: ceil(Nrh/Top) sequential right-hand sides per group.
	perGroup := math.Ceil(float64(w.Nrh) / float64(h.Top))
	return perGroup * mid
}

// ScalingPoint is one point of a strong-scaling curve.
type ScalingPoint struct {
	Workers int
	Time    float64
	Speedup float64
}

// LayerScaling produces the strong-scaling curve of one layer ("top",
// "mid", "ndm") while the other layers stay at the base assignment --
// the protocol of Fig. 8/9/10.
func (m Machine) LayerScaling(w Workload, base Hierarchy, layer string, counts []int) ([]ScalingPoint, error) {
	out := make([]ScalingPoint, 0, len(counts))
	for _, c := range counts {
		h := base
		switch layer {
		case "top":
			h.Top = c
		case "mid":
			h.Mid = c
		case "ndm":
			h.Ndm = c
		default:
			return nil, fmt.Errorf("cluster: unknown layer %q", layer)
		}
		out = append(out, ScalingPoint{Workers: c, Time: m.SolveTime(w, h)})
	}
	// Speedup relative to the first point, scaled to its worker count so
	// ideal scaling reads Speedup == Workers.
	for i := range out {
		out[i].Speedup = out[0].Time / out[i].Time * float64(counts[0])
	}
	return out, nil
}

// SplitTime is one row of the Table 2 experiment.
type SplitTime struct {
	Threads int
	Ndm     int
	Seconds float64
}

// Table2 models the elapsed time of nIters BiCG iterations with a fixed
// core budget split between OpenMP threads and bottom-layer domains
// (threads * ndm = cores), the paper's Table 2.
func (m Machine) Table2(w Workload, cores, nIters int) []SplitTime {
	var out []SplitTime
	for threads := 1; threads <= cores; threads *= 2 {
		ndm := cores / threads
		if ndm < 1 {
			break
		}
		t := m.IterTime(w, ndm, threads) * float64(nIters)
		out = append(out, SplitTime{Threads: threads, Ndm: ndm, Seconds: t})
	}
	return out
}
