// Package xc implements the local density approximation (LDA) for exchange
// and correlation in the Perdew-Zunger 1981 parameterization of the
// Ceperley-Alder data -- the functional the paper uses ("the
// exchange-correlation interaction is treated by the LDA [37]").
// Spin-unpolarized form; atomic units.
package xc

import "math"

// PZ81 parameters (spin-unpolarized).
const (
	gammaU = -0.1423
	beta1U = 1.0529
	beta2U = 0.3334
	aU     = 0.0311
	bU     = -0.048
	cU     = 0.0020
	dU     = -0.0116
)

// exchange constant: Cx = (3/4)(3/pi)^{1/3}.
var cx = 0.75 * math.Pow(3/math.Pi, 1.0/3.0)

// EnergyDensity returns the exchange-correlation energy per electron
// eps_xc(n) (hartree) at density n (electrons/bohr^3).
func EnergyDensity(n float64) float64 {
	if n <= 1e-30 {
		return 0
	}
	ex := -cx * math.Pow(n, 1.0/3.0)
	return ex + ecPZ(rsOf(n))
}

// Potential returns the exchange-correlation potential
// v_xc = d(n*eps_xc)/dn (hartree).
func Potential(n float64) float64 {
	if n <= 1e-30 {
		return 0
	}
	vx := -(4.0 / 3.0) * cx * math.Pow(n, 1.0/3.0)
	return vx + vcPZ(rsOf(n))
}

func rsOf(n float64) float64 {
	return math.Pow(3/(4*math.Pi*n), 1.0/3.0)
}

// ecPZ is the PZ81 correlation energy per electron.
func ecPZ(rs float64) float64 {
	if rs >= 1 {
		return gammaU / (1 + beta1U*math.Sqrt(rs) + beta2U*rs)
	}
	return aU*math.Log(rs) + bU + cU*rs*math.Log(rs) + dU*rs
}

// vcPZ is the PZ81 correlation potential.
func vcPZ(rs float64) float64 {
	if rs >= 1 {
		sq := math.Sqrt(rs)
		den := 1 + beta1U*sq + beta2U*rs
		return ecPZ(rs) * (1 + 7.0/6.0*beta1U*sq + 4.0/3.0*beta2U*rs) / den
	}
	return aU*math.Log(rs) + (bU - aU/3) + (2.0/3.0)*cU*rs*math.Log(rs) + (2*dU-cU)*rs/3
}

// PotentialOnGrid fills vxc[i] = Potential(n[i]).
func PotentialOnGrid(n, vxc []float64) {
	for i, ni := range n {
		vxc[i] = Potential(ni)
	}
}

// Energy integrates the XC energy over the grid: sum n*eps_xc*dV.
func Energy(n []float64, dv float64) float64 {
	var e float64
	for _, ni := range n {
		e += ni * EnergyDensity(ni)
	}
	return e * dv
}
