package xc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExchangeKnownValue(t *testing.T) {
	// At rs = 1 (n = 3/(4 pi)), eps_x = -(3/4)(3/pi)^{1/3} n^{1/3}
	// = -0.45817 hartree approximately.
	n := 3 / (4 * math.Pi)
	got := EnergyDensity(n) - ecPZ(1)
	want := -0.75 * math.Pow(3/math.Pi, 1.0/3.0) * math.Pow(n, 1.0/3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("eps_x(rs=1) = %g, want %g", got, want)
	}
	if math.Abs(want+0.458165) > 1e-4 {
		t.Errorf("eps_x(rs=1) = %g, reference about -0.458165", want)
	}
}

func TestCorrelationContinuityAtRs1(t *testing.T) {
	// The PZ parameterization is continuous (by construction to ~1e-3) at
	// rs = 1 where the two branches meet.
	if d := math.Abs(ecPZ(1-1e-9) - ecPZ(1+1e-9)); d > 1e-3 {
		t.Errorf("eps_c jumps by %g at rs=1", d)
	}
	if d := math.Abs(vcPZ(1-1e-9) - vcPZ(1+1e-9)); d > 2e-3 {
		t.Errorf("v_c jumps by %g at rs=1", d)
	}
}

func TestPotentialIsDerivative(t *testing.T) {
	// v_xc = d(n eps_xc)/dn, checked by central differences.
	for _, n := range []float64{1e-3, 1e-2, 0.1, 1.0} {
		h := n * 1e-6
		num := ((n+h)*EnergyDensity(n+h) - (n-h)*EnergyDensity(n-h)) / (2 * h)
		got := Potential(n)
		if math.Abs(num-got) > 1e-5*(1+math.Abs(got)) {
			t.Errorf("n=%g: v_xc = %g, numerical derivative %g", n, got, num)
		}
	}
}

func TestSignsAndLimits(t *testing.T) {
	f := func(seed int64) bool {
		n := math.Abs(float64(seed%1000))/1000.0 + 1e-6
		// Exchange-correlation energy and potential are negative and the
		// potential is deeper than the energy density.
		e, v := EnergyDensity(n), Potential(n)
		return e < 0 && v < 0 && v < e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if EnergyDensity(0) != 0 || Potential(0) != 0 {
		t.Error("zero density must give zero xc")
	}
}

func TestMonotoneInDensity(t *testing.T) {
	prev := 0.0
	for _, n := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10} {
		v := Potential(n)
		if v >= prev {
			t.Errorf("v_xc(%g) = %g not decreasing", n, v)
		}
		prev = v
	}
}

func TestGridHelpers(t *testing.T) {
	n := []float64{0.1, 0.2, 0.0}
	v := make([]float64, 3)
	PotentialOnGrid(n, v)
	if v[0] != Potential(0.1) || v[2] != 0 {
		t.Error("PotentialOnGrid mismatch")
	}
	e := Energy(n, 0.5)
	want := 0.5 * (0.1*EnergyDensity(0.1) + 0.2*EnergyDensity(0.2))
	if math.Abs(e-want) > 1e-15 {
		t.Errorf("Energy = %g, want %g", e, want)
	}
}
