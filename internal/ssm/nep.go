package ssm

import (
	"fmt"

	"cbs/internal/contour"
	"cbs/internal/zlinalg"
)

// This file provides the generic nonlinear-eigenproblem front end of the
// Sakurai-Sugiura machinery: the paper stresses that, unlike FEAST, the SS
// method "has been developed to nonlinear eigenvalue problems", and its
// conclusion proposes extending the CBS solver to other formalisms (e.g.
// energy-dependent screened-hybrid operators). SolveNonlinear accepts an
// arbitrary matrix-valued function T(z) and finds its eigenvalues inside a
// contour; SolvePolynomial specializes to matrix polynomials (the QEP is
// degree 2 with a 1/z term; a cubic or quartic polynomial works the same
// way).

// MatrixFunc evaluates the problem matrix T(z) at a complex point.
type MatrixFunc func(z complex128) (*zlinalg.Matrix, error)

// NonlinearResult is the outcome of a generic SS solve, with residuals
// ||T(lambda) v|| / ||v|| computed for every extracted pair.
type NonlinearResult struct {
	Lambdas   []complex128
	Vectors   *zlinalg.Matrix
	Residuals []float64
	Rank      int
}

// SolveNonlinear finds the eigenvalues of T(z) v = 0 inside the contour
// described by pts (nodes and signed weights), using nrh random probe
// columns and dense LU solves at the quadrature nodes (intended for small
// and medium dense problems; the CBS solver in internal/core is the
// matrix-free large-scale path).
func SolveNonlinear(tf MatrixFunc, n int, pts []contour.Point, nrh int, opt Options, seed int64) (*NonlinearResult, error) {
	if nrh < 1 || n < 1 {
		return nil, fmt.Errorf("ssm: invalid dimensions n=%d nrh=%d", n, nrh)
	}
	v := randomBlock(n, nrh, seed)
	acc, err := NewAccumulator(n, nrh, opt.Nmm)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		m, err := tf(p.Z)
		if err != nil {
			return nil, fmt.Errorf("ssm: T(%v): %w", p.Z, err)
		}
		if m.Rows != n || m.Cols != n {
			return nil, fmt.Errorf("ssm: T(%v) has shape %dx%d, want %dx%d", p.Z, m.Rows, m.Cols, n, n)
		}
		lu, err := zlinalg.FactorLU(m)
		if err != nil {
			return nil, fmt.Errorf("ssm: factor T(%v): %w", p.Z, err)
		}
		acc.AddBlock(p.Z, p.W, lu.Solve(v))
	}
	ext, err := ExtractFromMoments(acc.Moments(), v, opt)
	if err != nil {
		return nil, err
	}
	res := &NonlinearResult{Rank: ext.Rank, Vectors: ext.Vectors}
	for j, lam := range ext.Lambdas {
		res.Lambdas = append(res.Lambdas, lam)
		m, err := tf(lam)
		if err != nil {
			return nil, err
		}
		x := ext.Vectors.Col(j)
		r := zlinalg.Norm2(zlinalg.MulVec(m, x))
		nx := zlinalg.Norm2(x)
		if nx == 0 {
			nx = 1
		}
		res.Residuals = append(res.Residuals, r/nx)
	}
	return res, nil
}

// SolvePolynomial finds the eigenvalues of the matrix polynomial
// sum_k coeffs[k] * z^k inside the contour. Laurent terms (negative
// powers, as in the CBS quadratic form) are passed via negCoeffs, where
// negCoeffs[k] multiplies z^{-(k+1)}.
func SolvePolynomial(coeffs, negCoeffs []*zlinalg.Matrix, pts []contour.Point, nrh int, opt Options, seed int64) (*NonlinearResult, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("ssm: polynomial needs at least one coefficient")
	}
	n := coeffs[0].Rows
	tf := func(z complex128) (*zlinalg.Matrix, error) {
		out := zlinalg.NewMatrix(n, n)
		zk := complex(1, 0)
		for _, c := range coeffs {
			if c.Rows != n || c.Cols != n {
				return nil, fmt.Errorf("ssm: inconsistent coefficient shapes")
			}
			for i := range out.Data {
				out.Data[i] += zk * c.Data[i]
			}
			zk *= z
		}
		zi := 1 / z
		zk = zi
		for _, c := range negCoeffs {
			if c.Rows != n || c.Cols != n {
				return nil, fmt.Errorf("ssm: inconsistent Laurent coefficient shapes")
			}
			for i := range out.Data {
				out.Data[i] += zk * c.Data[i]
			}
			zk *= zi
		}
		return out, nil
	}
	return SolveNonlinear(tf, n, pts, nrh, opt, seed)
}

// randomBlock is a deterministic probe generator (splitmix-style, no
// math/rand dependency in the hot path).
func randomBlock(n, nrh int, seed int64) *zlinalg.Matrix {
	v := zlinalg.NewMatrix(n, nrh)
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%(1<<53)) / float64(int64(1)<<53)
	}
	for i := range v.Data {
		v.Data[i] = complex(next()*2-1, next()*2-1)
	}
	return v
}

// FilterByResidual keeps only the pairs with residual below tol and (when
// region is non-nil) eigenvalues inside the region.
func (r *NonlinearResult) FilterByResidual(tol float64, inside func(complex128) bool) *NonlinearResult {
	out := &NonlinearResult{Rank: r.Rank}
	var cols []int
	for j, lam := range r.Lambdas {
		if r.Residuals[j] > tol {
			continue
		}
		if inside != nil && !inside(lam) {
			continue
		}
		out.Lambdas = append(out.Lambdas, lam)
		out.Residuals = append(out.Residuals, r.Residuals[j])
		cols = append(cols, j)
	}
	if r.Vectors != nil {
		out.Vectors = zlinalg.NewMatrix(r.Vectors.Rows, len(cols))
		for i, j := range cols {
			out.Vectors.SetCol(i, r.Vectors.Col(j))
		}
	}
	return out
}
