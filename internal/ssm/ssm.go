// Package ssm implements the block Sakurai-Sugiura method with Hankel
// matrices (Asakura et al., JSIAM Letters 1, 2009) for eigenproblems given
// as contour-integral moment data: from the solution blocks
// Y_j = P(z_j)^{-1} V at the quadrature nodes it forms the complex moment
// matrices, the block Hankel pencil, the SVD low-rank filter, and the small
// standard eigenproblem (paper Algorithm 1).
//
// The package is deliberately independent of the QEP: it sees only nodes,
// weights and solution blocks, so it applies unchanged to linear, quadratic
// and general nonlinear eigenvalue problems.
package ssm

import (
	"fmt"

	"cbs/internal/zlinalg"
)

// Options are the method's parameters in the paper's notation.
type Options struct {
	Nmm   int     // number of moment blocks (paper: 8)
	Delta float64 // SVD truncation threshold (paper: 1e-10)
	// AbsTol, when positive, declares the target region empty if the
	// largest Hankel singular value falls below it: with no eigenvalue
	// inside the contour the moments consist purely of quadrature noise,
	// whose scale is otherwise invisible to the relative Delta filter.
	// Downstream residual filtering makes this optional.
	AbsTol float64
}

// Result holds the extracted (approximate) eigenpairs.
type Result struct {
	Lambdas        []complex128    // m-hat approximate eigenvalues
	Vectors        *zlinalg.Matrix // N x m-hat eigenvectors (unit columns)
	Rank           int             // numerical rank m-hat of the Hankel matrix
	SingularValues []float64       // spectrum of the Hankel matrix (diagnostics)
}

// Extract runs steps 2-3 of Algorithm 1. zs, ws are the quadrature nodes
// and signed weights, ys[j] the N x Nrh solution block P(zs[j])^{-1} V, and
// v the probe block V itself.
func Extract(zs, ws []complex128, ys []*zlinalg.Matrix, v *zlinalg.Matrix, opt Options) (*Result, error) {
	if len(zs) == 0 || len(zs) != len(ws) || len(zs) != len(ys) {
		return nil, fmt.Errorf("%w: inconsistent quadrature data", ErrBadShape)
	}
	if opt.Nmm < 1 {
		return nil, fmt.Errorf("%w: Nmm = %d must be >= 1", ErrBadOptions, opt.Nmm)
	}
	if opt.Delta <= 0 {
		return nil, fmt.Errorf("%w: Delta = %g must be positive", ErrBadOptions, opt.Delta)
	}
	n := v.Rows
	nrh := v.Cols
	for j, y := range ys {
		if y == nil {
			return nil, fmt.Errorf("%w: missing solution block %d", ErrBadShape, j)
		}
		if y.Rows != n || y.Cols != nrh {
			return nil, fmt.Errorf("%w: solution block %d has shape %dx%d, want %dx%d", ErrBadShape, j, y.Rows, y.Cols, n, nrh)
		}
	}

	// Step 2a: complex moment matrices S_k = sum_j w_j z_j^k Y_j for
	// k = 0 .. 2*Nmm-1.
	acc, err := NewAccumulator(n, nrh, opt.Nmm)
	if err != nil {
		return nil, err
	}
	for j := range ys {
		acc.AddBlock(zs[j], ws[j], ys[j])
	}
	return extract(acc.Moments(), v, opt)
}

// extract runs steps 2b-3 of Algorithm 1 from the moment blocks.
func extract(moments []*zlinalg.Matrix, v *zlinalg.Matrix, opt Options) (*Result, error) {
	n, nrh := v.Rows, v.Cols
	nMom := len(moments)

	// Step 2b: reduced moments mu_k = V^dagger S_k and the block Hankel
	// pair  T[i][j] = mu_{i+j},  T<[i][j] = mu_{i+j+1}  (0-based).
	vh := v.ConjTranspose()
	mu := make([]*zlinalg.Matrix, nMom)
	for k := range mu {
		mu[k] = zlinalg.Mul(vh, moments[k])
	}
	m := nrh * opt.Nmm
	hank := zlinalg.NewMatrix(m, m)
	hankS := zlinalg.NewMatrix(m, m)
	for bi := 0; bi < opt.Nmm; bi++ {
		for bj := 0; bj < opt.Nmm; bj++ {
			hank.SetSlice(bi*nrh, bj*nrh, mu[bi+bj])
			hankS.SetSlice(bi*nrh, bj*nrh, mu[bi+bj+1])
		}
	}

	// Step 3a: SVD low-rank filter.
	svd, err := zlinalg.SVD(hank)
	if err != nil {
		return nil, fmt.Errorf("%w: Hankel SVD: %w", ErrRankDeficient, err)
	}
	rank := svd.Rank(opt.Delta)
	if opt.AbsTol > 0 && (len(svd.S) == 0 || svd.S[0] < opt.AbsTol) {
		rank = 0
	}
	res := &Result{Rank: rank, SingularValues: svd.S}
	if rank == 0 {
		res.Vectors = zlinalg.NewMatrix(n, 0)
		return res, nil
	}
	u1 := svd.U.Slice(0, m, 0, rank)
	w1 := svd.V.Slice(0, m, 0, rank)

	// Step 3b: small standard eigenproblem
	// U1^dagger T< W1 Sigma1^{-1} phi = tau phi.
	small := zlinalg.Mul(u1.ConjTranspose(), zlinalg.Mul(hankS, w1))
	for j := 0; j < rank; j++ {
		inv := complex(1/svd.S[j], 0)
		for i := 0; i < rank; i++ {
			small.Set(i, j, small.At(i, j)*inv)
		}
	}
	taus, phis, err := zlinalg.Eig(small)
	if err != nil {
		return nil, fmt.Errorf("%w: small eigenproblem: %w", ErrRankDeficient, err)
	}

	// Step 3c: eigenvector recovery psi = S-hat W1 Sigma1^{-1} phi with
	// S-hat = [S_0 ... S_{Nmm-1}] (N x Nrh*Nmm).
	shat := zlinalg.NewMatrix(n, m)
	for b := 0; b < opt.Nmm; b++ {
		shat.SetSlice(0, b*nrh, moments[b])
	}
	// coef = W1 * (Sigma1^{-1} * phi).
	scaled := phis.Clone()
	for i := 0; i < rank; i++ {
		inv := complex(1/svd.S[i], 0)
		for j := 0; j < rank; j++ {
			scaled.Set(i, j, scaled.At(i, j)*inv)
		}
	}
	coef := zlinalg.Mul(w1, scaled)
	vectors := zlinalg.Mul(shat, coef)
	for j := 0; j < rank; j++ {
		col := vectors.Col(j)
		zlinalg.Normalize(col)
		vectors.SetCol(j, col)
	}
	res.Lambdas = taus
	res.Vectors = vectors
	return res, nil
}

// MemoryBytes estimates the working-set bytes of an extraction with the
// given dimensions: the 2*Nmm moment blocks (N x Nrh each) dominate -- the
// paper's O(M*N) memory with M = Nrh*Nmm.
func MemoryBytes(n, nrh, nmm int) int64 {
	m := int64(nrh) * int64(nmm)
	momBytes := int64(2*nmm) * int64(n) * int64(nrh) * 16
	hankBytes := 3 * m * m * 16
	return momBytes + hankBytes
}
