package ssm

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"cbs/internal/contour"
	"cbs/internal/zlinalg"
)

// TestSolvePolynomialCubicScalarRoots: a diagonal cubic matrix polynomial
// has per-entry closed-form roots; the generic SS front end must find the
// in-contour ones (the paper's "extension to other formalisms" capability).
func TestSolvePolynomialCubicScalarRoots(t *testing.T) {
	n := 6
	// p_i(z) = (z - r1_i)(z - r2_i)(z - r3_i) expanded per diagonal entry.
	rng := rand.New(rand.NewSource(9))
	roots := make([][3]complex128, n)
	for i := range roots {
		roots[i] = [3]complex128{
			complex(rng.Float64()-0.5, rng.Float64()-0.5),  // inside |z|<1
			complex(rng.Float64()+2.0, rng.Float64()),      // outside
			complex(-rng.Float64()-2.0, rng.Float64()-0.5), // outside
		}
	}
	c0 := zlinalg.NewMatrix(n, n)
	c1 := zlinalg.NewMatrix(n, n)
	c2 := zlinalg.NewMatrix(n, n)
	c3 := zlinalg.NewMatrix(n, n)
	for i, r := range roots {
		r1, r2, r3 := r[0], r[1], r[2]
		c3.Set(i, i, 1)
		c2.Set(i, i, -(r1 + r2 + r3))
		c1.Set(i, i, r1*r2+r1*r3+r2*r3)
		c0.Set(i, i, -r1*r2*r3)
	}
	pts, err := contour.Circle(0, 1.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolvePolynomial([]*zlinalg.Matrix{c0, c1, c2, c3}, nil, pts, 6,
		Options{Nmm: 6, Delta: 1e-10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	kept := res.FilterByResidual(1e-7, func(z complex128) bool { return cmplx.Abs(z) < 1 })
	if len(kept.Lambdas) != n {
		t.Fatalf("found %d in-circle roots, want %d (all %v)", len(kept.Lambdas), n, res.Lambdas)
	}
	for i, r := range roots {
		found := false
		for _, got := range kept.Lambdas {
			if cmplx.Abs(got-r[0]) < 1e-7 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("root %d (%v) not found", i, r[0])
		}
	}
}

// TestSolveNonlinearTranscendental: a genuinely nonlinear (non-polynomial)
// problem: T(z) = diag(exp(z) - c_i) has eigenvalues log(c_i).
func TestSolveNonlinearTranscendental(t *testing.T) {
	n := 3
	cs := []complex128{cmplx.Exp(0.4 + 0.3i), cmplx.Exp(-0.5 + 0.1i), cmplx.Exp(5.0)}
	tf := func(z complex128) (*zlinalg.Matrix, error) {
		m := zlinalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			m.Set(i, i, cmplx.Exp(z)-cs[i])
		}
		return m, nil
	}
	pts, err := contour.Circle(0, 1.0, 48)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveNonlinear(tf, n, pts, 3, Options{Nmm: 4, Delta: 1e-10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	kept := res.FilterByResidual(1e-8, func(z complex128) bool { return cmplx.Abs(z) < 1 })
	want := []complex128{0.4 + 0.3i, -0.5 + 0.1i} // log(c3)=5 is outside
	if len(kept.Lambdas) != len(want) {
		t.Fatalf("found %v, want the two in-circle logs %v", kept.Lambdas, want)
	}
	for _, w := range want {
		ok := false
		for _, g := range kept.Lambdas {
			if cmplx.Abs(g-w) < 1e-8 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("eigenvalue %v missing (got %v)", w, kept.Lambdas)
		}
	}
}

// TestSolvePolynomialLaurentMatchesQEP: the CBS quadratic written as a
// Laurent polynomial -H-/z + (E-H0) - H+ z must reproduce the closed-form
// scalar roots -- cross-checking the negCoeffs path against the QEP tests.
func TestSolvePolynomialLaurentMatchesQEP(t *testing.T) {
	n := 4
	rng := rand.New(rand.NewSource(11))
	e := 0.6
	h0 := make([]float64, n)
	hp := make([]complex128, n)
	for i := range h0 {
		h0[i] = rng.Float64() - 0.5
		hp[i] = complex(rng.Float64()*0.7+0.3, rng.Float64()*0.4-0.2)
	}
	c0 := zlinalg.NewMatrix(n, n)  // z^0: E - H0
	c1 := zlinalg.NewMatrix(n, n)  // z^1: -H+
	cm1 := zlinalg.NewMatrix(n, n) // z^-1: -H-
	for i := 0; i < n; i++ {
		c0.Set(i, i, complex(e-h0[i], 0))
		c1.Set(i, i, -hp[i])
		cm1.Set(i, i, -cmplx.Conj(hp[i]))
	}
	ring, err := contour.NewRing(0.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolvePolynomial([]*zlinalg.Matrix{c0, c1}, []*zlinalg.Matrix{cm1},
		ring.Points(), 8, Options{Nmm: 6, Delta: 1e-10}, 7)
	if err != nil {
		t.Fatal(err)
	}
	kept := res.FilterByResidual(1e-7, ring.Contains)
	for i := 0; i < n; i++ {
		b := complex(e-h0[i], 0)
		disc := cmplx.Sqrt(b*b - 4*hp[i]*cmplx.Conj(hp[i]))
		for _, w := range []complex128{(b + disc) / (2 * hp[i]), (b - disc) / (2 * hp[i])} {
			if !ring.Contains(w) {
				continue
			}
			ok := false
			for _, g := range kept.Lambdas {
				if cmplx.Abs(g-w) < 1e-7 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("Laurent root %v missing", w)
			}
		}
	}
}

func TestSolveNonlinearValidation(t *testing.T) {
	tf := func(z complex128) (*zlinalg.Matrix, error) { return zlinalg.Identity(2), nil }
	pts, _ := contour.Circle(0, 1, 4)
	if _, err := SolveNonlinear(tf, 0, pts, 1, Options{Nmm: 2, Delta: 1e-10}, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := SolvePolynomial(nil, nil, pts, 1, Options{Nmm: 2, Delta: 1e-10}, 1); err == nil {
		t.Error("empty polynomial should fail")
	}
	bad := func(z complex128) (*zlinalg.Matrix, error) { return zlinalg.Identity(3), nil }
	if _, err := SolveNonlinear(bad, 2, pts, 1, Options{Nmm: 2, Delta: 1e-10}, 1); err == nil {
		t.Error("shape mismatch should fail")
	}
}
