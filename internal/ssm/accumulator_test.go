package ssm

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestAddInterleavedMatchesAdd: accumulating an interleaved sub-block must
// equal accumulating its columns one at a time with Add.
func TestAddInterleavedMatchesAdd(t *testing.T) {
	n, nrh, nmm := 13, 6, 3
	col0, nb := 2, 3
	rng := rand.New(rand.NewSource(4))
	y := make([]complex128, n*nb)
	for i := range y {
		y[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	z := complex(1.2, -0.7)
	w := complex(0.3, 0.9)

	blocked, err := NewAccumulator(n, nrh, nmm)
	if err != nil {
		t.Fatal(err)
	}
	blocked.AddInterleaved(z, w, col0, nb, y)

	serial, err := NewAccumulator(n, nrh, nmm)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]complex128, n)
	for c := 0; c < nb; c++ {
		for i := 0; i < n; i++ {
			col[i] = y[i*nb+c]
		}
		serial.Add(z, w, col0+c, col)
	}

	mb := blocked.Moments()
	ms := serial.Moments()
	for k := range mb {
		for i := range mb[k].Data {
			if d := cmplx.Abs(mb[k].Data[i] - ms[k].Data[i]); d > 1e-14 {
				t.Fatalf("moment %d entry %d deviates by %g", k, i, d)
			}
		}
	}
}

// TestAddInterleavedValidation: shape errors must panic, matching Add.
func TestAddInterleavedValidation(t *testing.T) {
	a, err := NewAccumulator(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []func(){
		func() { a.AddInterleaved(1, 1, 0, 2, make([]complex128, 9)) },  // wrong length
		func() { a.AddInterleaved(1, 1, 3, 2, make([]complex128, 10)) }, // columns out of range
		func() { a.AddInterleaved(1, 1, -1, 2, make([]complex128, 10)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AddInterleaved did not panic")
				}
			}()
			bad()
		}()
	}
}
