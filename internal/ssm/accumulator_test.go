package ssm

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestAddInterleavedMatchesAdd: accumulating an interleaved sub-block must
// equal accumulating its columns one at a time with Add.
func TestAddInterleavedMatchesAdd(t *testing.T) {
	n, nrh, nmm := 13, 6, 3
	col0, nb := 2, 3
	rng := rand.New(rand.NewSource(4))
	y := make([]complex128, n*nb)
	for i := range y {
		y[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	z := complex(1.2, -0.7)
	w := complex(0.3, 0.9)

	blocked, err := NewAccumulator(n, nrh, nmm)
	if err != nil {
		t.Fatal(err)
	}
	blocked.AddInterleaved(z, w, col0, nb, y)

	serial, err := NewAccumulator(n, nrh, nmm)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]complex128, n)
	for c := 0; c < nb; c++ {
		for i := 0; i < n; i++ {
			col[i] = y[i*nb+c]
		}
		serial.Add(z, w, col0+c, col)
	}

	mb := blocked.Moments()
	ms := serial.Moments()
	for k := range mb {
		for i := range mb[k].Data {
			if d := cmplx.Abs(mb[k].Data[i] - ms[k].Data[i]); d > 1e-14 {
				t.Fatalf("moment %d entry %d deviates by %g", k, i, d)
			}
		}
	}
}

// TestAddInterleavedValidation: shape errors must panic, matching Add.
func TestAddInterleavedValidation(t *testing.T) {
	a, err := NewAccumulator(5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []func(){
		func() { a.AddInterleaved(1, 1, 0, 2, make([]complex128, 9)) },  // wrong length
		func() { a.AddInterleaved(1, 1, 3, 2, make([]complex128, 10)) }, // columns out of range
		func() { a.AddInterleaved(1, 1, -1, 2, make([]complex128, 10)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AddInterleaved did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestScaleColumns: per-column rescaling must touch exactly the targeted
// columns of every moment block (the degradation renormalization hook).
func TestScaleColumns(t *testing.T) {
	a, err := NewAccumulator(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, 3)
	for col := 0; col < 3; col++ {
		for i := range y {
			y[i] = complex(float64(col+1), float64(i))
		}
		a.Add(complex(0.5, 0.25), complex(1, 0), col, y)
	}
	before := make([][]complex128, len(a.Moments()))
	for k, m := range a.Moments() {
		before[k] = append([]complex128(nil), m.Data...)
	}
	a.ScaleColumns([]float64{1, 2.5, 1})
	for k, m := range a.Moments() {
		for i := 0; i < 3; i++ {
			for c := 0; c < 3; c++ {
				want := before[k][i*3+c]
				if c == 1 {
					want *= 2.5
				}
				if got := m.Data[i*3+c]; cmplx.Abs(got-want) > 1e-15 {
					t.Fatalf("moment %d (%d,%d): %v, want %v", k, i, c, got, want)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-length ScaleColumns did not panic")
		}
	}()
	a.ScaleColumns([]float64{1})
}
