package ssm

import "errors"

// Typed sentinels of the extraction layer, matchable with errors.Is.
var (
	// ErrBadOptions is an invalid method parameterization (Nmm, Delta).
	ErrBadOptions = errors.New("ssm: invalid method options")
	// ErrBadShape is inconsistent quadrature, moment or probe data.
	ErrBadShape = errors.New("ssm: inconsistent data shapes")
	// ErrRankDeficient marks a failed dense kernel of the extraction (the
	// Hankel SVD or the small eigenproblem): the moment data does not
	// support a stable low-rank factorization.
	ErrRankDeficient = errors.New("ssm: rank-deficient extraction")
)
