package ssm

import (
	"testing"

	"cbs/internal/zlinalg"
)

// TestAccumulatorZeroAlloc pins the moment accumulation paths at zero
// allocations per call: the accumulator is shared by every worker of the
// parallel layers, so an allocation here would run once per solved column
// per quadrature point.
func TestAccumulatorZeroAlloc(t *testing.T) {
	const n, nrh, nmm = 32, 6, 2
	acc, err := NewAccumulator(n, nrh, nmm)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, n)
	for i := range y {
		y[i] = complex(float64(i%5)-2, float64(i%3)-1)
	}
	const nb = 4
	blk := make([]complex128, n*nb)
	for i := range blk {
		blk[i] = complex(float64(i%7)-3, float64(i%4)-2)
	}
	m := zlinalg.NewMatrix(n, nrh)
	for i := range m.Data {
		m.Data[i] = complex(float64(i%9)-4, 0.5)
	}
	z, w := complex(0.8, 0.1), complex(0.2, -0.3)
	if allocs := testing.AllocsPerRun(5, func() { acc.Add(z, w, 2, y) }); allocs != 0 {
		t.Errorf("Add allocates %.0f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() { acc.AddInterleaved(z, w, 1, nb, blk) }); allocs != 0 {
		t.Errorf("AddInterleaved allocates %.0f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() { acc.AddBlock(z, w, m) }); allocs != 0 {
		t.Errorf("AddBlock allocates %.0f times per call, want 0", allocs)
	}
}
