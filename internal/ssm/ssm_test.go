package ssm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbs/internal/contour"
	"cbs/internal/zlinalg"
)

// solveBlocks solves P(z_j) Y_j = V directly (LU) for a matrix-valued
// function pf.
func solveBlocks(t *testing.T, pts []contour.Point, pf func(z complex128) *zlinalg.Matrix, v *zlinalg.Matrix) (zs, ws []complex128, ys []*zlinalg.Matrix) {
	t.Helper()
	for _, p := range pts {
		lu, err := zlinalg.FactorLU(pf(p.Z))
		if err != nil {
			t.Fatalf("factor at z=%v: %v", p.Z, err)
		}
		zs = append(zs, p.Z)
		ws = append(ws, p.W)
		ys = append(ys, lu.Solve(v))
	}
	return
}

func randomProbe(rng *rand.Rand, n, nrh int) *zlinalg.Matrix {
	v := zlinalg.NewMatrix(n, nrh)
	for i := range v.Data {
		v.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// TestLinearEigenproblemInsideCircle: P(z) = A - zI with known eigenvalues;
// the SS method must find exactly the ones inside the contour.
func TestLinearEigenproblemInsideCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 24
	inside := []complex128{0.3 + 0.2i, -0.4 - 0.1i, 0.1 - 0.5i}
	outside := []complex128{2.5, -3 + 1i, 4i, 1.8 - 1.2i}
	var eigs []complex128
	eigs = append(eigs, inside...)
	eigs = append(eigs, outside...)
	for len(eigs) < n {
		// More eigenvalues far outside.
		eigs = append(eigs, complex(3+rng.Float64()*3, rng.Float64()*4-2))
	}
	// Non-normal matrix with these eigenvalues: A = X D X^{-1}.
	x := randomProbe(rng, n, n)
	lu, err := zlinalg.FactorLU(x)
	if err != nil {
		t.Fatal(err)
	}
	d := zlinalg.NewMatrix(n, n)
	for i, e := range eigs {
		d.Set(i, i, e)
	}
	a := zlinalg.Mul(x, zlinalg.Mul(d, lu.Inverse()))

	pts, err := contour.Circle(0, 1.0, 24)
	if err != nil {
		t.Fatal(err)
	}
	pf := func(z complex128) *zlinalg.Matrix {
		m := zlinalg.Scale(-z, zlinalg.Identity(n))
		return zlinalg.Add(a, m)
	}
	v := randomProbe(rng, n, 4)
	zs, ws, ys := solveBlocks(t, pts, pf, v)
	res, err := Extract(zs, ws, ys, v, Options{Nmm: 6, Delta: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Every inside eigenvalue found.
	for _, want := range inside {
		found := false
		for _, got := range res.Lambdas {
			if cmplx.Abs(got-want) < 1e-7 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("eigenvalue %v inside the contour was not found (got %v)", want, res.Lambdas)
		}
	}
	// No spurious eigenvalue inside the circle.
	for _, got := range res.Lambdas {
		if cmplx.Abs(got) < 0.9 {
			ok := false
			for _, want := range inside {
				if cmplx.Abs(got-want) < 1e-6 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("spurious eigenvalue %v reported inside the contour", got)
			}
		}
	}
	// Eigenvectors: A v = lambda v for the in-contour pairs.
	for j, lam := range res.Lambdas {
		if cmplx.Abs(lam) > 0.9 {
			continue
		}
		if r := zlinalg.EigResidual(a, lam, res.Vectors.Col(j)); r > 1e-6 {
			t.Errorf("eigenpair %v residual %g", lam, r)
		}
	}
}

// TestQEPDiagonalClosedForm: diagonal blocks decouple the QEP into scalar
// quadratics with closed-form roots; the ring contour must recover exactly
// the annulus roots.
func TestQEPDiagonalClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 16
	e := 0.8
	h0 := make([]float64, n)
	hp := make([]complex128, n)
	for i := range h0 {
		h0[i] = rng.Float64()*2 - 1
		hp[i] = complex(rng.Float64()*0.8+0.2, rng.Float64()*0.6-0.3)
	}
	// Closed-form roots of -conj(hp)/z + (E-h0) - hp z = 0:
	// hp z^2 - (E-h0) z + conj(hp) = 0.
	var want []complex128
	for i := 0; i < n; i++ {
		b := complex(e-h0[i], 0)
		disc := cmplx.Sqrt(b*b - 4*hp[i]*cmplx.Conj(hp[i]))
		want = append(want, (b+disc)/(2*hp[i]), (b-disc)/(2*hp[i]))
	}
	ring, err := contour.NewRing(0.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	var wantIn []complex128
	for _, w := range want {
		if ring.Contains(w) {
			wantIn = append(wantIn, w)
		}
	}
	if len(wantIn) == 0 {
		t.Fatal("test setup produced no annulus eigenvalues")
	}
	pf := func(z complex128) *zlinalg.Matrix {
		m := zlinalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			m.Set(i, i, -cmplx.Conj(hp[i])/z+complex(e-h0[i], 0)-hp[i]*z)
		}
		return m
	}
	v := randomProbe(rng, n, 8)
	zs, ws, ys := solveBlocks(t, ring.Points(), pf, v)
	res, err := Extract(zs, ws, ys, v, Options{Nmm: 8, Delta: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	var gotIn []complex128
	for _, g := range res.Lambdas {
		if ring.Contains(g) {
			gotIn = append(gotIn, g)
		}
	}
	for _, w := range wantIn {
		best := math.Inf(1)
		for _, g := range gotIn {
			if d := cmplx.Abs(g - w); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Errorf("annulus root %v missed (closest %g away); found %d of %d",
				w, best, len(gotIn), len(wantIn))
		}
	}
	for _, g := range gotIn {
		best := math.Inf(1)
		for _, w := range want {
			if d := cmplx.Abs(g - w); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Errorf("spurious annulus eigenvalue %v (distance %g from any true root)", g, best)
		}
	}
}

func TestExtractValidation(t *testing.T) {
	v := zlinalg.NewMatrix(4, 2)
	y := zlinalg.NewMatrix(4, 2)
	zs := []complex128{1}
	ws := []complex128{1}
	if _, err := Extract(nil, nil, nil, v, Options{Nmm: 2, Delta: 1e-10}); err == nil {
		t.Error("empty quadrature should fail")
	}
	if _, err := Extract(zs, ws, []*zlinalg.Matrix{y}, v, Options{Nmm: 0, Delta: 1e-10}); err == nil {
		t.Error("Nmm = 0 should fail")
	}
	if _, err := Extract(zs, ws, []*zlinalg.Matrix{y}, v, Options{Nmm: 2, Delta: 0}); err == nil {
		t.Error("Delta = 0 should fail")
	}
	bad := zlinalg.NewMatrix(3, 2)
	if _, err := Extract(zs, ws, []*zlinalg.Matrix{bad}, v, Options{Nmm: 2, Delta: 1e-10}); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := Extract(zs, ws, []*zlinalg.Matrix{nil}, v, Options{Nmm: 2, Delta: 1e-10}); err == nil {
		t.Error("nil block should fail")
	}
}

func TestExtractEmptyRegion(t *testing.T) {
	// A problem with no eigenvalues inside the contour must produce rank 0
	// and no eigenpairs.
	rng := rand.New(rand.NewSource(3))
	n := 10
	a := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(5+float64(i), 0)) // all eigenvalues far outside
	}
	pts, _ := contour.Circle(0, 1.0, 16)
	pf := func(z complex128) *zlinalg.Matrix {
		return zlinalg.Add(a, zlinalg.Scale(-z, zlinalg.Identity(n)))
	}
	v := randomProbe(rng, n, 3)
	zs, ws, ys := solveBlocks(t, pts, pf, v)

	// Without an absolute floor the Hankel matrix is pure quadrature noise
	// and the relative filter may keep noise directions; any extracted
	// eigenpair must then fail a residual check (the pipeline's filter).
	res, err := Extract(zs, ws, ys, v, Options{Nmm: 4, Delta: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for j, lam := range res.Lambdas {
		if cmplx.Abs(lam) >= 1 {
			continue // outside the contour: discarded by region filter
		}
		r := zlinalg.EigResidual(a, lam, res.Vectors.Col(j))
		if r < 1e-6 {
			t.Errorf("noise eigenpair %v has small residual %g", lam, r)
		}
	}

	// With the absolute floor the emptiness is detected directly.
	res2, err := Extract(zs, ws, ys, v, Options{Nmm: 4, Delta: 1e-8, AbsTol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rank != 0 || len(res2.Lambdas) != 0 {
		t.Errorf("empty region with AbsTol: rank %d, %d eigenvalues (singular values %v)",
			res2.Rank, len(res2.Lambdas), res2.SingularValues[:min(4, len(res2.SingularValues))])
	}
}

func TestMemoryBytesScaling(t *testing.T) {
	// Doubling N must double the estimate (O(M N) claim of the paper).
	a := MemoryBytes(1000, 16, 8)
	b := MemoryBytes(2000, 16, 8)
	if b <= a || b > 2*a+100000 {
		t.Errorf("memory estimate not O(N): %d -> %d", a, b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
