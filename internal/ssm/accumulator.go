package ssm

import (
	"fmt"
	"sync"

	"cbs/internal/zlinalg"
)

// Accumulator builds the complex moment matrices S_k incrementally, one
// solved column at a time, so the solution blocks Y_j never need to be
// stored: this realizes the paper's O(M*N) memory footprint (M = Nrh*Nmm)
// instead of O(Nint*Nrh*N). It is safe for concurrent use by the parallel
// solve layers.
type Accumulator struct {
	n, nrh, nmm int
	mu          sync.Mutex
	moments     []*zlinalg.Matrix // 2*nmm blocks of N x Nrh
}

// NewAccumulator creates an empty moment accumulator.
func NewAccumulator(n, nrh, nmm int) (*Accumulator, error) {
	if n < 1 || nrh < 1 || nmm < 1 {
		return nil, fmt.Errorf("%w: invalid accumulator dimensions n=%d nrh=%d nmm=%d", ErrBadShape, n, nrh, nmm)
	}
	a := &Accumulator{n: n, nrh: nrh, nmm: nmm}
	a.moments = make([]*zlinalg.Matrix, 2*nmm)
	for k := range a.moments {
		a.moments[k] = zlinalg.NewMatrix(n, nrh)
	}
	return a, nil
}

// Add accumulates one solved column y = P(z)^{-1} V[:,col] with quadrature
// weight w: S_k[:,col] += w * z^k * y for all k.
func (a *Accumulator) Add(z, w complex128, col int, y []complex128) {
	if len(y) != a.n {
		panic("ssm: Accumulator.Add length mismatch")
	}
	if col < 0 || col >= a.nrh {
		panic("ssm: Accumulator.Add column out of range")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	zk := w
	for k := 0; k < 2*a.nmm; k++ {
		accumColumn(a.moments[k].Data, y, zk, col, a.nrh)
		zk *= z
	}
}

// accumColumn is the locked inner kernel of Add: dst[:,col] += zk * y over
// the row-major moment storage of row stride nrh.
//
//cbs:hotpath
func accumColumn(dst, y []complex128, zk complex128, col, nrh int) {
	for i := range y {
		dst[i*nrh+col] += zk * y[i]
	}
}

// AddInterleaved accumulates nb solved columns at once from a row-major
// interleaved block y (the blocked-solver layout: the nb values of grid
// point i at y[i*nb:(i+1)*nb]), covering probe columns col0..col0+nb-1:
// S_k[:,col0+c] += w * z^k * y[:,c]. One call takes the accumulator mutex
// once per quadrature point instead of once per column, which removes the
// lock contention of the per-column Add path under the parallel layers.
func (a *Accumulator) AddInterleaved(z, w complex128, col0, nb int, y []complex128) {
	if nb < 1 || len(y) != a.n*nb {
		panic("ssm: AddInterleaved length mismatch")
	}
	if col0 < 0 || col0+nb > a.nrh {
		panic("ssm: AddInterleaved columns out of range")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	zk := w
	for k := 0; k < 2*a.nmm; k++ {
		accumInterleaved(a.moments[k].Data, y, zk, col0, nb, a.nrh)
		zk *= z
	}
}

// accumInterleaved is the locked inner kernel of AddInterleaved:
// dst[:,col0+c] += zk * y[:,c] for the nb interleaved columns of y.
//
//cbs:hotpath
func accumInterleaved(dst, y []complex128, zk complex128, col0, nb, nrh int) {
	n := len(y) / nb
	for i := 0; i < n; i++ {
		row := dst[i*nrh+col0 : i*nrh+col0+nb]
		yi := y[i*nb : i*nb+nb]
		for c := range row {
			row[c] += zk * yi[c]
		}
	}
}

// AddBlock accumulates a whole solution block Y = P(z)^{-1} V.
func (a *Accumulator) AddBlock(z, w complex128, y *zlinalg.Matrix) {
	if y.Rows != a.n || y.Cols != a.nrh {
		panic("ssm: AddBlock shape mismatch")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	zk := w
	for k := 0; k < 2*a.nmm; k++ {
		accumScaled(a.moments[k].Data, y.Data, zk)
		zk *= z
	}
}

// accumScaled is the locked inner kernel of AddBlock: dst += zk * y.
//
//cbs:hotpath
func accumScaled(dst, y []complex128, zk complex128) {
	for i, v := range y {
		dst[i] += zk * v
	}
}

// ScaleColumns rescales probe column c of every moment block by
// factors[c]: the graceful-degradation hook of the contour solve. When a
// (quadrature point, column) solve exhausts the recovery ladder its
// contribution is excluded from the moments, and the surviving quadrature
// weights of that column are renormalized by contour.RenormFactor — which,
// because the moments are weight-linear, is exactly a uniform scaling of
// the column. A factor of 1 marks a clean column.
func (a *Accumulator) ScaleColumns(factors []float64) {
	if len(factors) != a.nrh {
		panic("ssm: ScaleColumns length mismatch")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.moments {
		for i := 0; i < a.n; i++ {
			row := m.Data[i*a.nrh : i*a.nrh+a.nrh]
			for c, f := range factors {
				if f != 1 {
					row[c] *= complex(f, 0)
				}
			}
		}
	}
}

// Moments returns the accumulated moment blocks (not a copy).
func (a *Accumulator) Moments() []*zlinalg.Matrix { return a.moments }

// MemoryBytesUsed reports the accumulator's resident bytes.
func (a *Accumulator) MemoryBytesUsed() int64 {
	return int64(2*a.nmm) * int64(a.n) * int64(a.nrh) * 16
}

// ExtractFromMoments runs steps 2b-3 of Algorithm 1 directly from
// accumulated moment blocks.
func ExtractFromMoments(moments []*zlinalg.Matrix, v *zlinalg.Matrix, opt Options) (*Result, error) {
	if opt.Nmm < 1 {
		return nil, fmt.Errorf("%w: Nmm = %d must be >= 1", ErrBadOptions, opt.Nmm)
	}
	if len(moments) != 2*opt.Nmm {
		return nil, fmt.Errorf("%w: %d moment blocks, want %d", ErrBadShape, len(moments), 2*opt.Nmm)
	}
	if opt.Delta <= 0 {
		return nil, fmt.Errorf("%w: Delta = %g must be positive", ErrBadOptions, opt.Delta)
	}
	n, nrh := v.Rows, v.Cols
	for k, m := range moments {
		if m.Rows != n || m.Cols != nrh {
			return nil, fmt.Errorf("%w: moment %d has shape %dx%d, want %dx%d", ErrBadShape, k, m.Rows, m.Cols, n, nrh)
		}
	}
	return extract(moments, v, opt)
}
