package ssm

import (
	"errors"
	"testing"

	"cbs/internal/zlinalg"
)

// TestTypedSentinels: every validation path must be errors.Is-matchable.
func TestTypedSentinels(t *testing.T) {
	v := zlinalg.NewMatrix(4, 2)
	if _, err := Extract(nil, nil, nil, v, Options{Nmm: 2, Delta: 1e-10}); !errors.Is(err, ErrBadShape) {
		t.Errorf("empty quadrature error %v is not ErrBadShape", err)
	}
	zs := []complex128{1}
	ws := []complex128{1}
	ys := []*zlinalg.Matrix{zlinalg.NewMatrix(4, 2)}
	if _, err := Extract(zs, ws, ys, v, Options{Nmm: 0, Delta: 1e-10}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Nmm=0 error %v is not ErrBadOptions", err)
	}
	if _, err := Extract(zs, ws, ys, v, Options{Nmm: 2, Delta: 0}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Delta=0 error %v is not ErrBadOptions", err)
	}
	bad := []*zlinalg.Matrix{zlinalg.NewMatrix(3, 2)}
	if _, err := Extract(zs, ws, bad, v, Options{Nmm: 2, Delta: 1e-10}); !errors.Is(err, ErrBadShape) {
		t.Errorf("shape mismatch error %v is not ErrBadShape", err)
	}
	if _, err := NewAccumulator(0, 1, 1); !errors.Is(err, ErrBadShape) {
		t.Errorf("accumulator dims error %v is not ErrBadShape", err)
	}
	if _, err := ExtractFromMoments([]*zlinalg.Matrix{v}, v, Options{Nmm: 2, Delta: 1e-10}); !errors.Is(err, ErrBadShape) {
		t.Errorf("moment count error %v is not ErrBadShape", err)
	}
	// The sentinels must stay distinct.
	if errors.Is(ErrBadShape, ErrBadOptions) || errors.Is(ErrRankDeficient, ErrBadShape) {
		t.Error("ssm sentinels must be distinct")
	}
}
