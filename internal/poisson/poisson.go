// Package poisson solves the periodic Poisson equation of the Hartree
// potential, Laplacian(V) = -4*pi*rho, on the real-space grid with the same
// finite-difference stencil as the Hamiltonian, using conjugate gradients in
// the zero-mean subspace (the periodic Laplacian's nullspace is the
// constants; charge neutrality fixes the gauge).
package poisson

import (
	"fmt"
	"math"

	"cbs/internal/fd"
	"cbs/internal/grid"
	"cbs/internal/linsolve"
)

// Solver holds the periodic Laplacian of one grid.
type Solver struct {
	g  *grid.Grid
	st *fd.Stencil

	kx, ky, kz []float64
	xp, xm     [][]int32
	yp, ym     [][]int32
	zp, zm     [][]int32
}

// NewSolver builds a periodic FD Laplacian of half-width nf on g.
func NewSolver(g *grid.Grid, nf int) (*Solver, error) {
	st, err := fd.NewStencil(nf)
	if err != nil {
		return nil, err
	}
	if g.Nz < nf || g.Nx < nf || g.Ny < nf {
		return nil, fmt.Errorf("poisson: grid smaller than the stencil half-width")
	}
	s := &Solver{g: g, st: st}
	s.kx = make([]float64, nf+1)
	s.ky = make([]float64, nf+1)
	s.kz = make([]float64, nf+1)
	for d := 0; d <= nf; d++ {
		s.kx[d] = st.C[d] / (g.Hx * g.Hx)
		s.ky[d] = st.C[d] / (g.Hy * g.Hy)
		s.kz[d] = st.C[d] / (g.Hz * g.Hz)
	}
	wrapTables := func(n int) (p, m [][]int32) {
		p = make([][]int32, nf)
		m = make([][]int32, nf)
		for d := 1; d <= nf; d++ {
			p[d-1] = make([]int32, n)
			m[d-1] = make([]int32, n)
			for i := 0; i < n; i++ {
				p[d-1][i] = int32(mod(i+d, n))
				m[d-1][i] = int32(mod(i-d, n))
			}
		}
		return
	}
	s.xp, s.xm = wrapTables(g.Nx)
	s.yp, s.ym = wrapTables(g.Ny)
	s.zp, s.zm = wrapTables(g.Nz)
	return s, nil
}

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// ApplyLaplacian computes out = Laplacian(v) with full periodic wrap.
func (s *Solver) ApplyLaplacian(v, out []complex128) {
	g := s.g
	nf := s.st.Nf
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	diag := complex(s.kx[0]+s.ky[0]+s.kz[0], 0)
	for i := range out {
		out[i] = diag * v[i]
	}
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			base := (iz*ny + iy) * nx
			row := v[base : base+nx]
			orow := out[base : base+nx]
			for d := 1; d <= nf; d++ {
				c := complex(s.kx[d], 0)
				xp, xm := s.xp[d-1], s.xm[d-1]
				for ix := 0; ix < nx; ix++ {
					orow[ix] += c * (row[xp[ix]] + row[xm[ix]])
				}
			}
		}
		planeBase := iz * ny * nx
		for d := 1; d <= nf; d++ {
			c := complex(s.ky[d], 0)
			yp, ym := s.yp[d-1], s.ym[d-1]
			for iy := 0; iy < ny; iy++ {
				base := planeBase + iy*nx
				bp := planeBase + int(yp[iy])*nx
				bm := planeBase + int(ym[iy])*nx
				for ix := 0; ix < nx; ix++ {
					out[base+ix] += c * (v[bp+ix] + v[bm+ix])
				}
			}
		}
	}
	plane := nx * ny
	for d := 1; d <= nf; d++ {
		c := complex(s.kz[d], 0)
		zp, zm := s.zp[d-1], s.zm[d-1]
		for iz := 0; iz < nz; iz++ {
			base := iz * plane
			bp := int(zp[iz]) * plane
			bm := int(zm[iz]) * plane
			for i := 0; i < plane; i++ {
				out[base+i] += c * (v[bp+i] + v[bm+i])
			}
		}
	}
}

// Hartree solves Laplacian(V) = -4*pi*(rho - mean(rho)) and returns V with
// zero mean. The mean subtraction imposes the compensating background of a
// charged cell (for neutral density + ionic background models the caller
// subtracts the ionic charge first).
func (s *Solver) Hartree(rho []float64, tol float64, maxIter int) ([]float64, error) {
	n := s.g.N()
	if len(rho) != n {
		return nil, fmt.Errorf("poisson: density length %d, want %d", len(rho), n)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	mean := 0.0
	for _, r := range rho {
		mean += r
	}
	mean /= float64(n)
	b := make([]complex128, n)
	for i, r := range rho {
		b[i] = complex(-4*math.Pi*(r-mean), 0)
	}
	x := make([]complex128, n)
	// The negated Laplacian is positive semidefinite; CG in the mean-zero
	// subspace converges. Solve (-L)x = -b.
	apply := func(v, out []complex128) {
		s.ApplyLaplacian(v, out)
		for i := range out {
			out[i] = -out[i]
		}
	}
	for i := range b {
		b[i] = -b[i]
	}
	res := linsolve.CG(apply, b, x, linsolve.Options{Tol: tol, MaxIter: maxIter})
	if !res.Converged {
		return nil, fmt.Errorf("poisson: CG did not converge (residual %g after %d iterations)", res.Residual, res.Iterations)
	}
	out := make([]float64, n)
	var vm float64
	for i := range x {
		out[i] = real(x[i])
		vm += out[i]
	}
	vm /= float64(n)
	for i := range out {
		out[i] -= vm
	}
	return out, nil
}
