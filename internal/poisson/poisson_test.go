package poisson

import (
	"math"
	"testing"

	"cbs/internal/grid"
)

func mustGrid(t *testing.T, nx, ny, nz int, l float64) *grid.Grid {
	t.Helper()
	g, err := grid.New(nx, ny, nz, l, l, l)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLaplacianPlaneWave: discrete plane waves are exact eigenfunctions of
// the periodic FD Laplacian.
func TestLaplacianPlaneWave(t *testing.T) {
	g := mustGrid(t, 8, 8, 8, 6.0)
	s, err := NewSolver(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, g.N())
	kx := 2 * math.Pi / g.Lx() // one full period in x
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				x := float64(ix) * g.Hx
				v[g.Index(ix, iy, iz)] = complex(math.Cos(kx*x), math.Sin(kx*x))
			}
		}
	}
	out := make([]complex128, g.N())
	s.ApplyLaplacian(v, out)
	// Discrete eigenvalue: sum_d C_d (2cos(d theta) - handled via stencil
	// sum at theta = kx*hx).
	theta := kx * g.Hx
	lam := s.kx[0]
	for d := 1; d <= s.st.Nf; d++ {
		lam += 2 * s.kx[d] * math.Cos(float64(d)*theta)
	}
	for i := range out {
		want := complex(lam, 0) * v[i]
		if d := absC(out[i] - want); d > 1e-10 {
			t.Fatalf("plane wave not an eigenfunction: out=%v want=%v", out[i], want)
		}
	}
}

func absC(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// TestHartreeSinusoidalCharge: for rho = A cos(G.r), the periodic solution
// is V = 4 pi A cos(G.r)/G_d^2 with G_d the discrete eigenvalue.
func TestHartreeSinusoidalCharge(t *testing.T) {
	g := mustGrid(t, 10, 8, 8, 7.0)
	s, err := NewSolver(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	kx := 2 * math.Pi / g.Lx()
	rho := make([]float64, g.N())
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				rho[g.Index(ix, iy, iz)] = 0.3 * math.Cos(kx*float64(ix)*g.Hx)
			}
		}
	}
	v, err := s.Hartree(rho, 1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	theta := kx * g.Hx
	lam := s.kx[0]
	for d := 1; d <= s.st.Nf; d++ {
		lam += 2 * s.kx[d] * math.Cos(float64(d)*theta)
	}
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				want := -4 * math.Pi * 0.3 * math.Cos(kx*float64(ix)*g.Hx) / lam
				got := v[g.Index(ix, iy, iz)]
				if math.Abs(got-want) > 1e-7 {
					t.Fatalf("V(%d,%d,%d) = %g, want %g", ix, iy, iz, got, want)
				}
			}
		}
	}
}

func TestHartreeZeroMeanAndNeutralization(t *testing.T) {
	g := mustGrid(t, 6, 6, 6, 5.0)
	s, err := NewSolver(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A non-neutral density: the solver subtracts the mean (jellium
	// background) and must still converge with a zero-mean potential.
	rho := make([]float64, g.N())
	for i := range rho {
		rho[i] = 1.0 + 0.1*math.Sin(float64(i))
	}
	v, err := s.Hartree(rho, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if math.Abs(mean) > 1e-10 {
		t.Errorf("potential mean %g, want 0", mean)
	}
}

func TestSolverValidation(t *testing.T) {
	g := mustGrid(t, 6, 6, 6, 5.0)
	if _, err := NewSolver(g, 8); err == nil {
		t.Error("stencil wider than grid should fail")
	}
	s, _ := NewSolver(g, 2)
	if _, err := s.Hartree(make([]float64, 5), 1e-8, 0); err == nil {
		t.Error("wrong density length should fail")
	}
}
