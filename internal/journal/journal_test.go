package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFrameRoundTrip: Frame then Unframe returns the payload; mutations
// anywhere in the line fail the frame check.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"x":1}`)
	line := Frame(payload)
	if line[len(line)-1] != '\n' {
		t.Fatal("frame is not newline-terminated")
	}
	got, ok := Unframe(line[:len(line)-1])
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("unframe = %q, %v", got, ok)
	}
	for i := 0; i < len(line)-1; i++ {
		bad := bytes.Clone(line[:len(line)-1])
		bad[i] ^= 0x01
		if _, ok := Unframe(bad); ok {
			t.Fatalf("corrupt byte %d passed the frame check", i)
		}
	}
	if _, ok := Unframe([]byte("short")); ok {
		t.Error("short line passed the frame check")
	}
}

// TestCreateAppendLines: a created file holds the header plus appended
// records; Lines returns them in order with advancing offsets.
func TestCreateAppendLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	f, err := Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"rec1", "rec2"} {
		if err := f.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := Lines(data)
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	want := []string{"header", "rec1", "rec2"}
	var prev int64
	for i, l := range lines {
		if string(l.Payload) != want[i] {
			t.Errorf("line %d payload %q, want %q", i, l.Payload, want[i])
		}
		if l.End <= prev {
			t.Errorf("line %d end %d does not advance past %d", i, l.End, prev)
		}
		prev = l.End
	}
	if prev != int64(len(data)) {
		t.Errorf("last line ends at %d, file is %d bytes", prev, len(data))
	}
}

// TestTornTailTruncatedOnOpenAppend: a half-written record is invisible to
// Lines (no terminator), OpenAppend truncates it, and the next append
// lands cleanly after the surviving records.
func TestTornTailTruncatedOnOpenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	f, err := Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("rec1")); err != nil {
		t.Fatal(err)
	}
	f.AppendTorn([]byte("rec-that-tears"))
	f.Close()

	data, _ := os.ReadFile(path)
	lines := Lines(data)
	if len(lines) != 2 {
		t.Fatalf("%d lines with torn tail, want 2 (tail has no terminator)", len(lines))
	}
	goodEnd := lines[len(lines)-1].End
	if goodEnd >= int64(len(data)) {
		t.Fatal("torn tail left no bytes past goodEnd?")
	}

	f2, err := OpenAppend(path, goodEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Append([]byte("rec2")); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	data, _ = os.ReadFile(path)
	lines = Lines(data)
	if len(lines) != 3 || string(lines[2].Payload) != "rec2" {
		t.Fatalf("after truncate+append: %d lines, last %q; want 3 ending rec2", len(lines), lines[len(lines)-1].Payload)
	}
}

// TestAppendSealsTornFragment: an append after a torn write must not glue
// onto the fragment — the fragment is sealed into its own (CRC-failing)
// line and the appended record survives intact. Without the seal, one
// torn write would also destroy the first durable record after it.
func TestAppendSealsTornFragment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	f, err := Create(path, []byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	f.AppendTorn([]byte("rec-that-tears"))
	if err := f.Append([]byte("must-survive")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("also-survives")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	lines := Lines(data)
	// header, sealed fragment (nil payload), and the two live records.
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4: %v", len(lines), lines)
	}
	if lines[1].Payload != nil {
		t.Errorf("sealed fragment passed the frame check: %q", lines[1].Payload)
	}
	if string(lines[2].Payload) != "must-survive" || string(lines[3].Payload) != "also-survives" {
		t.Fatalf("records after a torn write: %q, %q", lines[2].Payload, lines[3].Payload)
	}
}

// TestCorruptMiddleLineSkipped: a corrupt line between valid ones comes
// back with a nil payload but does not hide its successors.
func TestCorruptMiddleLineSkipped(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Frame([]byte("a")))
	bad := Frame([]byte("b"))
	bad[2] ^= 0x40 // corrupt the CRC hex
	buf.Write(bad)
	buf.Write(Frame([]byte("c")))
	lines := Lines(buf.Bytes())
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	if lines[0].Payload == nil || lines[1].Payload != nil || lines[2].Payload == nil {
		t.Fatalf("corruption detection wrong: %v %v %v", lines[0].Payload, lines[1].Payload, lines[2].Payload)
	}
	if string(lines[2].Payload) != "c" {
		t.Errorf("line after corruption = %q, want c", lines[2].Payload)
	}
}

// TestCreateOverwritesAtomically: Create over an existing journal replaces
// it whole — no stale records survive, and the temp file is gone.
func TestCreateOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	f, err := Create(path, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("old")) //nolint:errcheck
	f.Close()
	f2, err := Create(path, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	data, _ := os.ReadFile(path)
	lines := Lines(data)
	if len(lines) != 1 || string(lines[0].Payload) != "v2" {
		t.Fatalf("recreated journal = %v, want only the v2 header", lines)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
}
