// Package journal is the shared crash-safe append-log idiom of the
// durability layers: a file of CRC-framed JSONL lines,
//
//	<crc32c-hex> TAB <payload> LF
//
// with the CRC computed over the exact payload bytes. A record interrupted
// mid-write (torn tail, no terminator, truncated payload) fails the frame
// check on load and is dropped; files are created via temp-file + fsync +
// rename (+ directory fsync) so a crash during creation never leaves a
// half-written header behind; every append is a single write followed by
// fsync, so a record is only ever reported durable once it is on disk.
//
// The sweep checkpoint journal (internal/sweep) and the serving layer's
// job log (internal/jobs) are both instances of this framing; what the
// payload means — energy records, job transitions — stays with the owner.
// The owner also decides header semantics: the first line of every journal
// is a header payload that Create writes atomically and loaders validate.
package journal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// crcTable is Castagnoli CRC-32 (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame renders one journal line for the given payload.
func Frame(payload []byte) []byte {
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x", crc32.Checksum(payload, crcTable))...)
	line = append(line, '\t')
	line = append(line, payload...)
	line = append(line, '\n')
	return line
}

// Unframe validates one journal line (without its terminator) and returns
// its payload, or false for a torn/corrupt line.
func Unframe(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != '\t' {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != uint32(want) {
		return nil, false
	}
	return payload, true
}

// Line is one terminated line of a journal file.
type Line struct {
	// Payload is the unframed payload, nil when the frame check failed
	// (a torn or corrupt line the owner should skip).
	Payload []byte
	// End is the byte offset just past the line's terminator; the offset
	// past the last line the owner accepts is where a torn tail begins.
	End int64
}

// Lines splits data into its terminated lines, unframing each. An
// unterminated tail (a record cut mid-write) is not returned — it has no
// line of its own, and appending after it would corrupt the next record,
// so owners truncate at the last accepted Line.End via OpenAppend.
func Lines(data []byte) []Line {
	var out []Line
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		payload, ok := Unframe(data[off : off+nl])
		end := int64(off + nl + 1)
		if !ok {
			payload = nil
		}
		out = append(out, Line{Payload: payload, End: end})
		off = int(end)
	}
	return out
}

// File is an open journal accepting durable appends, serialized across
// concurrent writers.
type File struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// torn is set when the previous write may have left an unterminated
	// fragment in the file (a failed or chaos-torn append). The next
	// append first writes a newline to seal the fragment into a line of
	// its own — the sealed line fails the frame check and is skipped on
	// load — so the fragment cannot glue onto the next record and destroy
	// it. Without this, one torn write would also lose the first durable
	// record appended after it.
	torn bool
}

// Create starts a fresh journal at path, overwriting any existing file.
// The framed header payload is written to a temp file, fsynced, and
// renamed into place, so the journal either exists with a valid header or
// not at all.
//
//cbs:durable
func Create(path string, header []byte) (*File, error) {
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := tf.Write(Frame(header)); err != nil {
		tf.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	syncDir(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f, path: path}, nil
}

// Rewrite atomically replaces the journal at path with a new image: the
// framed header followed by each framed payload. The image is written to
// a temp file, fsynced, and renamed over path, then the directory entry
// is synced — a crash at any point leaves either the old journal or the
// complete new one, never a mix. Owners use it to compact a log on
// startup before reopening it for appends.
//
//cbs:durable
func Rewrite(path string, header []byte, payloads [][]byte) error {
	tmp := path + ".rewrite.tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := tf.Write(Frame(header)); err != nil {
		return fail(err)
	}
	for _, p := range payloads {
		if _, err := tf.Write(Frame(p)); err != nil {
			return fail(err)
		}
	}
	if err := tf.Sync(); err != nil {
		return fail(err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(path)
	return nil
}

// OpenAppend reopens an existing journal for appending after its owner
// validated the contents up to goodEnd. Anything past goodEnd is a torn
// tail from a crash mid-append and is truncated away first — a fragment
// has no line terminator, so appending after it would corrupt the next
// record too — and the truncation is made as durable as the appends.
//
//cbs:durable
func OpenAppend(path string, goodEnd int64) (*File, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	truncated := false
	if st.Size() > goodEnd {
		if err := os.Truncate(path, goodEnd); err != nil {
			return nil, fmt.Errorf("journal: dropping torn tail: %w", err)
		}
		truncated = true
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if truncated {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &File{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (f *File) Path() string { return f.path }

// Append durably logs one payload: a single framed write followed by
// fsync. An error means the record may not be on disk; the owner decides
// whether that is fatal.
//
//cbs:durable
func (f *File) Append(payload []byte) error {
	line := Frame(payload)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.torn {
		line = append([]byte{'\n'}, line...)
	}
	if _, err := f.f.Write(line); err != nil {
		f.torn = true // a partial write is a fragment too
		return err
	}
	f.torn = false
	return f.f.Sync()
}

// AppendTorn writes only a prefix of the frame and no terminator — the
// on-disk image of a crash between write and fsync. It exists for the
// chaos injectors; production code never calls it.
func (f *File) AppendTorn(payload []byte) {
	line := Frame(payload)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.f.Write(line[:len(line)/2]) //nolint:errcheck // the fragment models a crash
	f.f.Sync()                    //cbs:fsyncrelaxed torn-record simulation: the fragment models a crash, its fate is irrelevant
	f.torn = true
}

// Close releases the journal file.
func (f *File) Close() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return nil
	}
	err := f.f.Close()
	f.f = nil
	return err
}

// syncDir fsyncs the directory containing path so the rename that created
// the journal is itself durable; best-effort (some filesystems refuse).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync() //cbs:fsyncrelaxed best-effort: some filesystems refuse directory fsync
	d.Close()
}
