package contour

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"
)

func TestCircleCauchyIntegral(t *testing.T) {
	// (1/2pi*i) integral of 1/(z-a) dz over a circle containing a is 1;
	// 0 when a is outside; z^k integrates to 0 for k >= 0.
	pts, err := Circle(0, 2.0, 32)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(f func(z complex128) complex128) complex128 {
		var s complex128
		for _, p := range pts {
			s += p.W * f(p.Z)
		}
		return s
	}
	inside := complex(0.5, 0.3)
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return 1 / (z - inside) }) - 1); d > 1e-12 {
		t.Errorf("pole inside: integral error %g", d)
	}
	// Trapezoid error decays like (r/|a|)^N for an outside pole:
	// (2/sqrt(10))^32 ~ 6e-7.
	outside := complex(3.0, 1.0)
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return 1 / (z - outside) })); d > 1e-5 {
		t.Errorf("pole outside: integral error %g", d)
	}
	for k := 0; k <= 3; k++ {
		kk := k
		if d := cmplx.Abs(sum(func(z complex128) complex128 { return cmplx.Pow(z, complex(float64(kk), 0)) })); d > 1e-10 {
			t.Errorf("z^%d: integral error %g", k, d)
		}
	}
	// First moment: z/(z-a) integrates to a.
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return z / (z - inside) }) - inside); d > 1e-12 {
		t.Errorf("first moment error %g", d)
	}
}

func TestRingSelectsAnnulus(t *testing.T) {
	r, err := NewRing(0.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(f func(z complex128) complex128) complex128 {
		var s complex128
		for _, p := range r.Points() {
			s += p.W * f(p.Z)
		}
		return s
	}
	// Pole inside the annulus: counted once (error set by the geometric
	// trapezoid rate of the closest circle).
	inAnnulus := complex(1.2, 0.4)
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return 1 / (z - inAnnulus) }) - 1); d > 1e-5 {
		t.Errorf("annulus pole: error %g", d)
	}
	// Pole inside the inner circle: excluded by the subtraction.
	inInner := complex(0.2, 0.1)
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return 1 / (z - inInner) })); d > 1e-8 {
		t.Errorf("inner pole not cancelled: error %g", d)
	}
	// Pole outside everything: zero.
	outer := complex(3.0, 0.5)
	if d := cmplx.Abs(sum(func(z complex128) complex128 { return 1 / (z - outer) })); d > 1e-4 {
		t.Errorf("outside pole: error %g", d)
	}
}

func TestQuadratureGeometricConvergence(t *testing.T) {
	// Doubling the node count must square the relative error (geometric
	// convergence of the trapezoid rule on a circle).
	pole := complex(3.0, 0)
	errAt := func(n int) float64 {
		pts, err := Circle(0, 2.0, n)
		if err != nil {
			t.Fatal(err)
		}
		var s complex128
		for _, p := range pts {
			s += p.W / (p.Z - pole)
		}
		return cmplx.Abs(s)
	}
	e16, e32 := errAt(16), errAt(32)
	if e32 > e16*e16*10+1e-14 {
		t.Errorf("no geometric convergence: e16=%g e32=%g", e16, e32)
	}
}

func TestRingDualPairing(t *testing.T) {
	// Inner node j must equal 1/conj(outer node j): the paper's halving
	// identity z2 = 1/conj(z1).
	r, err := NewRing(0.5, 16)
	if err != nil {
		t.Fatal(err)
	}
	for j := range r.Outer {
		if d := cmplx.Abs(r.Inner[j].Z - r.DualIndex(j)); d > 1e-14 {
			t.Errorf("node %d: inner %v, 1/conj(outer) %v", j, r.Inner[j].Z, r.DualIndex(j))
		}
	}
}

func TestRingContains(t *testing.T) {
	r, _ := NewRing(0.5, 8)
	cases := []struct {
		z    complex128
		want bool
	}{
		{complex(1, 0), true},
		{complex(0.6, 0), true},
		{complex(1.9, 0), true},
		{complex(0.4, 0), false},
		{complex(2.1, 0), false},
		{complex(0, 1.5), true},
	}
	for _, c := range cases {
		if got := r.Contains(c.z); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNodesAvoidRealAxis(t *testing.T) {
	// The half-offset angles must keep every node off the real axis, where
	// propagating-state eigenvalues accumulate.
	r, _ := NewRing(0.5, 32)
	for _, p := range r.Points() {
		if math.Abs(imag(p.Z)) < 1e-6 {
			t.Errorf("node %v is (nearly) on the real axis", p.Z)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Circle(0, 1, 0); err == nil {
		t.Error("zero quadrature points should fail")
	}
	if _, err := Circle(0, -1, 4); err == nil {
		t.Error("negative radius should fail")
	}
	if _, err := NewRing(0, 8); err == nil {
		t.Error("lambdaMin = 0 should fail")
	}
	if _, err := NewRing(1.5, 8); err == nil {
		t.Error("lambdaMin > 1 should fail")
	}
}

// TestTypedSentinels: validation failures must be errors.Is-matchable.
func TestTypedSentinels(t *testing.T) {
	if _, err := Circle(0, 1, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("Circle(n=0) error %v is not ErrBadParams", err)
	}
	if _, err := NewRing(1.5, 8); !errors.Is(err, ErrBadParams) {
		t.Errorf("NewRing(1.5) error %v is not ErrBadParams", err)
	}
}

// TestRenormFactor: the graceful-degradation weight correction.
func TestRenormFactor(t *testing.T) {
	f, err := RenormFactor(32, 0)
	if err != nil || f != 1 {
		t.Errorf("no drops: factor %g err %v, want 1 nil", f, err)
	}
	f, err = RenormFactor(32, 4)
	if err != nil || math.Abs(f-32.0/28.0) > 1e-15 {
		t.Errorf("4 of 32 dropped: factor %g err %v", f, err)
	}
	// Exactly half is still allowed; strictly more than half is not.
	if _, err := RenormFactor(8, 4); err != nil {
		t.Errorf("half dropped must renormalize, got %v", err)
	}
	if _, err := RenormFactor(8, 5); !errors.Is(err, ErrTooManyDropped) {
		t.Errorf("5 of 8 dropped: error %v is not ErrTooManyDropped", err)
	}
	if _, err := RenormFactor(8, -1); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative drop count: error %v is not ErrBadParams", err)
	}
	if _, err := RenormFactor(0, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero nodes: error %v is not ErrBadParams", err)
	}
}

// TestRenormFactorPreservesConstantIntegral: rescaled surviving weights
// must still integrate f(z) = 1/z over the circle exactly (the Cauchy
// moment the trapezoidal weights are built for).
func TestRenormFactorPreservesConstantIntegral(t *testing.T) {
	n := 16
	pts, err := Circle(0, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	dropped := map[int]bool{3: true, 11: true}
	f, err := RenormFactor(n, len(dropped))
	if err != nil {
		t.Fatal(err)
	}
	var sum complex128
	for j, p := range pts {
		if dropped[j] {
			continue
		}
		sum += complex(f, 0) * p.W / p.Z
	}
	// (1/2 pi i) * contour integral of dz/z = 1; the quadrature sum w_j/z_j
	// realizes it exactly for the full rule and, by uniform rescaling, for
	// the degraded rule too.
	if cmplx.Abs(sum-1) > 1e-13 {
		t.Errorf("degraded quadrature of 1/z = %v, want 1", sum)
	}
}
