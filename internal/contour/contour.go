// Package contour builds the numerical quadrature of the Sakurai-Sugiura
// contour integrals. The target region of the CBS problem is the ring
// lambda_min < |lambda| < 1/lambda_min (paper Eq. 5); its boundary is two
// circles centred at the origin (Fig. 2), handled with the subtraction
// extension of Miyata et al. for multiply connected regions.
package contour

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// Typed sentinels of the quadrature layer.
var (
	// ErrBadParams is an invalid quadrature specification (non-positive
	// point count or radius, lambdaMin outside (0,1)).
	ErrBadParams = errors.New("contour: invalid quadrature parameters")
	// ErrTooManyDropped is returned by RenormFactor when graceful
	// degradation has discarded so many nodes that the remaining rule no
	// longer resolves the contour (strictly more than half dropped).
	ErrTooManyDropped = errors.New("contour: too many quadrature points dropped")
)

// Point is one quadrature node z with its (signed) weight w, such that
// (1/2*pi*i) * contour integral of f(z) dz ~= sum_j w_j f(z_j).
type Point struct {
	Z complex128
	W complex128
}

// Circle returns the N-point trapezoidal rule on the circle of the given
// center and radius, using the paper's half-offset angles
// theta_j = 2*pi*(j - 1/2)/N (which keeps nodes off the real axis). The
// weights are w_j = (z_j - center)/N, the exact trapezoidal weights of the
// Cauchy integral.
func Circle(center complex128, radius float64, n int) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: need at least one quadrature point, got %d", ErrBadParams, n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("%w: radius %g must be positive", ErrBadParams, radius)
	}
	pts := make([]Point, n)
	for j := 0; j < n; j++ {
		theta := 2 * math.Pi * (float64(j) + 0.5) / float64(n)
		e := cmplx.Exp(complex(0, theta))
		pts[j] = Point{
			Z: center + complex(radius, 0)*e,
			W: complex(radius/float64(n), 0) * e,
		}
	}
	return pts, nil
}

// Ring is the two-circle contour of the CBS target annulus.
type Ring struct {
	LambdaMin float64
	Outer     []Point // radius 1/lambda_min, positive orientation
	Inner     []Point // radius lambda_min, weights negated (subtraction)
}

// NewRing builds the ring contour with n quadrature points per circle
// (2n linear solves before the dual-system halving).
func NewRing(lambdaMin float64, n int) (*Ring, error) {
	if lambdaMin <= 0 || lambdaMin >= 1 {
		return nil, fmt.Errorf("%w: lambdaMin = %g must be in (0,1)", ErrBadParams, lambdaMin)
	}
	outer, err := Circle(0, 1/lambdaMin, n)
	if err != nil {
		return nil, err
	}
	inner, err := Circle(0, lambdaMin, n)
	if err != nil {
		return nil, err
	}
	for i := range inner {
		inner[i].W = -inner[i].W
	}
	return &Ring{LambdaMin: lambdaMin, Outer: outer, Inner: inner}, nil
}

// Points returns all nodes of the ring (outer then inner) with their signed
// weights.
func (r *Ring) Points() []Point {
	out := make([]Point, 0, len(r.Outer)+len(r.Inner))
	out = append(out, r.Outer...)
	out = append(out, r.Inner...)
	return out
}

// Contains reports whether lambda lies inside the target annulus.
func (r *Ring) Contains(lambda complex128) bool {
	a := cmplx.Abs(lambda)
	return a > r.LambdaMin && a < 1/r.LambdaMin
}

// DualIndex verifies the structural pairing used by the halving trick: the
// inner node j is 1/conj(outer node j).
func (r *Ring) DualIndex(j int) complex128 {
	return 1 / cmplx.Conj(r.Outer[j].Z)
}

// RenormFactor is the graceful-degradation weight correction: when dropped
// of the total nodes of one circle have been discarded (a quadrature point
// whose linear solve exhausted the recovery ladder), the surviving
// trapezoidal weights are uniformly rescaled by total/(total-dropped) so
// the rule still integrates the constant term of the Cauchy kernel
// exactly. Because the halving trick drops the outer node and its paired
// inner node together, the same factor applies to both circles.
//
// Dropping strictly more than half the nodes leaves a rule too sparse to
// resolve the annulus and returns ErrTooManyDropped.
func RenormFactor(total, dropped int) (float64, error) {
	if total < 1 || dropped < 0 || dropped > total {
		return 0, fmt.Errorf("%w: dropped %d of %d nodes", ErrBadParams, dropped, total)
	}
	if 2*dropped > total {
		return 0, fmt.Errorf("%w: %d of %d nodes lost", ErrTooManyDropped, dropped, total)
	}
	return float64(total) / float64(total-dropped), nil
}
