// Package tb is a nearest-neighbor tight-binding operator backend for the
// CBS solver: the same quadratic eigenvalue problem as the FD-grid
// Kohn-Sham operator, but with closed-form dispersions. A uniform chain
// obeys
//
//	E = eps + 2 t cos(k a),
//
// so its Bloch factors solve lambda + 1/lambda = (E - eps)/t analytically —
// which makes the backend the property-test oracle for the Sakurai-Sugiura
// contour solver and a cheap lead model for NEGF transport (internal/negf).
//
// Two geometries are provided: a 1D chain with nc sites per cell (the
// supercell folds the primitive root mu into lambda = mu^{±nc}) and a
// simple-cubic slab with Nx x Ny hard-wall transverse sites per layer,
// whose transverse modes shift the chain dispersion by
// 2t[cos(p pi/(Nx+1)) + cos(q pi/(Ny+1))].
package tb

import (
	"fmt"
	"math"
	"math/cmplx"
)

// hop is one directed hopping matrix element t between site i of a cell and
// site j of the same (intra) or next (inter) cell.
type hop struct {
	i, j int
	t    float64
}

// Backend is a nearest-neighbor tight-binding operator in the QEP block
// form. Onsite energies sit on the H0 diagonal; intra-cell hoppings are
// applied symmetrically (H0 = H0^dagger); inter-cell hoppings define H+
// with H- = H+^T (real hoppings), preserving the dual contour identity
// P(z)^dagger = P(1/conj z) the solver requires.
type Backend struct {
	n    int
	a    float64
	desc string

	onsite []float64
	intra  []hop // i < j; applied to both (i,j) and (j,i)
	inter  []hop // <i, cell n | H | j, cell n+1> = t
}

// ChainConfig describes a 1D chain supercell: Sites sites per periodic
// cell, uniform Onsite energy eps and Hopping t (hartree), cell length A
// (bohr). Onsite energies of individual sites can be perturbed afterwards
// only by constructing a fresh backend — backends are immutable so their
// Descriptor stays truthful.
type ChainConfig struct {
	Sites   int
	Onsite  float64
	Hopping float64
	A       float64
}

// NewChain builds the chain backend.
func NewChain(cfg ChainConfig) (*Backend, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("tb: chain needs at least 1 site per cell, got %d", cfg.Sites)
	}
	if cfg.Hopping == 0 {
		return nil, fmt.Errorf("tb: chain hopping t must be nonzero")
	}
	if cfg.A <= 0 {
		return nil, fmt.Errorf("tb: cell length a = %g must be positive", cfg.A)
	}
	b := &Backend{
		n: cfg.Sites,
		a: cfg.A,
		desc: fmt.Sprintf("tb-chain|sites=%d|eps=%.12g|t=%.12g|a=%.12g",
			cfg.Sites, cfg.Onsite, cfg.Hopping, cfg.A),
		onsite: make([]float64, cfg.Sites),
	}
	for i := range b.onsite {
		b.onsite[i] = cfg.Onsite
	}
	for i := 0; i+1 < cfg.Sites; i++ {
		b.intra = append(b.intra, hop{i, i + 1, cfg.Hopping})
	}
	// Last site of cell n couples to first site of cell n+1.
	b.inter = append(b.inter, hop{cfg.Sites - 1, 0, cfg.Hopping})
	return b, nil
}

// SlabConfig describes a simple-cubic slab: one layer of Nx x Ny hard-wall
// transverse sites per periodic cell along z, uniform Onsite and Hopping,
// layer spacing A. Each transverse site couples to its in-layer neighbours
// (H0) and to the same site of the next layer (H+ = t I).
type SlabConfig struct {
	Nx, Ny  int
	Onsite  float64
	Hopping float64
	A       float64
}

// NewSlab builds the slab backend.
func NewSlab(cfg SlabConfig) (*Backend, error) {
	if cfg.Nx < 1 || cfg.Ny < 1 {
		return nil, fmt.Errorf("tb: slab cross-section %dx%d must be at least 1x1", cfg.Nx, cfg.Ny)
	}
	if cfg.Hopping == 0 {
		return nil, fmt.Errorf("tb: slab hopping t must be nonzero")
	}
	if cfg.A <= 0 {
		return nil, fmt.Errorf("tb: layer spacing a = %g must be positive", cfg.A)
	}
	n := cfg.Nx * cfg.Ny
	b := &Backend{
		n: n,
		a: cfg.A,
		desc: fmt.Sprintf("tb-slab|nx=%d|ny=%d|eps=%.12g|t=%.12g|a=%.12g",
			cfg.Nx, cfg.Ny, cfg.Onsite, cfg.Hopping, cfg.A),
		onsite: make([]float64, n),
	}
	for i := range b.onsite {
		b.onsite[i] = cfg.Onsite
	}
	idx := func(ix, iy int) int { return iy*cfg.Nx + ix }
	for iy := 0; iy < cfg.Ny; iy++ {
		for ix := 0; ix < cfg.Nx; ix++ {
			if ix+1 < cfg.Nx {
				b.intra = append(b.intra, hop{idx(ix, iy), idx(ix+1, iy), cfg.Hopping})
			}
			if iy+1 < cfg.Ny {
				b.intra = append(b.intra, hop{idx(ix, iy), idx(ix, iy+1), cfg.Hopping})
			}
		}
	}
	for i := 0; i < n; i++ {
		b.inter = append(b.inter, hop{i, i, cfg.Hopping})
	}
	return b, nil
}

// N returns the per-cell dimension.
func (b *Backend) N() int { return b.n }

// CellLength returns the 1D lattice constant a (bohr).
func (b *Backend) CellLength() float64 { return b.a }

// Descriptor is the backend's fingerprint identity. The "tb-" prefix keeps
// it disjoint from every FD-grid descriptor ("<structure>|grid=..."), so
// tight-binding results can never collide with FD-grid cache entries or
// sweep journals.
func (b *Backend) Descriptor() string { return b.desc }

// FermiGuess returns the band center (the mean onsite energy): the exact
// half-filling Fermi level of a particle-hole-symmetric nearest-neighbor
// model, and a serviceable reference energy otherwise. The cbs facade uses
// it where an FD-grid model would compute a band-sum Fermi level.
func (b *Backend) FermiGuess() float64 {
	var s float64
	for _, e := range b.onsite {
		s += e
	}
	return s / float64(len(b.onsite))
}

// MemoryBytes estimates the backend's resident footprint.
func (b *Backend) MemoryBytes() int64 {
	return int64(len(b.onsite))*8 + int64(len(b.intra)+len(b.inter))*24
}

func (b *Backend) checkLen(v, out []complex128) {
	if len(v) != b.n || len(out) != b.n {
		panic("tb: vector length mismatch")
	}
}

// checkBlockLen guards the blocked-apply shapes; callers are hot-path
// kernels, and the guard itself is indexing plus a cold panic.
//
//cbs:hotpath
func (b *Backend) checkBlockLen(v, out []complex128, nb int) {
	if nb < 1 || len(v) != b.n*nb || len(out) != b.n*nb {
		panic("tb: block length mismatch")
	}
}

// ApplyH0 computes out = H0 v.
func (b *Backend) ApplyH0(v, out []complex128) {
	b.checkLen(v, out)
	for i := range out {
		out[i] = complex(b.onsite[i], 0) * v[i]
	}
	for _, h := range b.intra {
		t := complex(h.t, 0)
		out[h.i] += t * v[h.j]
		out[h.j] += t * v[h.i]
	}
}

// ApplyHp computes out = H+ v.
func (b *Backend) ApplyHp(v, out []complex128) {
	b.checkLen(v, out)
	for i := range out {
		out[i] = 0
	}
	for _, h := range b.inter {
		out[h.i] += complex(h.t, 0) * v[h.j]
	}
}

// ApplyHm computes out = H- v = H+^T v (real hoppings).
func (b *Backend) ApplyHm(v, out []complex128) {
	b.checkLen(v, out)
	for i := range out {
		out[i] = 0
	}
	for _, h := range b.inter {
		out[h.j] += complex(h.t, 0) * v[h.i]
	}
}

// ApplyShiftedH0Block computes out = (shift - H0) V on a row-major n x nb
// block (v[i*nb+c]).
//
//cbs:hotpath
func (b *Backend) ApplyShiftedH0Block(shift float64, v, out []complex128, nb int) {
	b.checkBlockLen(v, out, nb)
	for i := 0; i < b.n; i++ {
		d := complex(shift-b.onsite[i], 0)
		row := i * nb
		for c := 0; c < nb; c++ {
			out[row+c] = d * v[row+c]
		}
	}
	for _, h := range b.intra {
		t := complex(h.t, 0)
		ri, rj := h.i*nb, h.j*nb
		for c := 0; c < nb; c++ {
			out[ri+c] -= t * v[rj+c]
			out[rj+c] -= t * v[ri+c]
		}
	}
}

// AccumHpBlock accumulates out += coef * H+ V.
//
//cbs:hotpath
func (b *Backend) AccumHpBlock(coef complex128, v, out []complex128, nb int) {
	b.checkBlockLen(v, out, nb)
	for _, h := range b.inter {
		ct := coef * complex(h.t, 0)
		ri, rj := h.i*nb, h.j*nb
		for c := 0; c < nb; c++ {
			out[ri+c] += ct * v[rj+c]
		}
	}
}

// AccumHmBlock accumulates out += coef * H- V.
//
//cbs:hotpath
func (b *Backend) AccumHmBlock(coef complex128, v, out []complex128, nb int) {
	b.checkBlockLen(v, out, nb)
	for _, h := range b.inter {
		ct := coef * complex(h.t, 0)
		ri, rj := h.i*nb, h.j*nb
		for c := 0; c < nb; c++ {
			out[rj+c] += ct * v[ri+c]
		}
	}
}

// ChainDispersion is the analytic band of the single-site chain:
// E(k) = eps + 2 t cos(k a). For complex k it continues analytically,
// covering the evanescent branches in the gap.
func ChainDispersion(eps, t float64, k complex128, a float64) complex128 {
	return complex(eps, 0) + 2*complex(t, 0)*cmplx.Cos(k*complex(a, 0))
}

// ChainRoots returns the two primitive Bloch factors mu of the single-site
// chain at energy E, the roots of mu + 1/mu = (E - eps)/t: mu and 1/mu,
// ordered with |mu| <= 1. In a band both lie on the unit circle; outside,
// the first is the decaying (evanescent) root.
func ChainRoots(eps, t, e float64) (inside, outside complex128) {
	s := complex((e-eps)/(2*t), 0)
	r := cmplx.Sqrt(s*s - 1)
	mu1 := s + r
	mu2 := s - r
	if cmplx.Abs(mu1) <= cmplx.Abs(mu2) {
		return mu1, mu2
	}
	return mu2, mu1
}

// SlabModeEnergies returns the hard-wall transverse mode offsets of the
// slab: for each (p, q), eps_pq = eps + 2t[cos(p pi/(Nx+1)) + cos(q pi/(Ny+1))],
// p = 1..Nx, q = 1..Ny. Each mode disperses along z as an independent
// chain with onsite eps_pq, so the open-channel count at energy E is the
// number of modes with |E - eps_pq| < 2|t|.
func SlabModeEnergies(cfg SlabConfig) []float64 {
	var out []float64
	for p := 1; p <= cfg.Nx; p++ {
		for q := 1; q <= cfg.Ny; q++ {
			out = append(out, cfg.Onsite+
				2*cfg.Hopping*math.Cos(math.Pi*float64(p)/float64(cfg.Nx+1))+
				2*cfg.Hopping*math.Cos(math.Pi*float64(q)/float64(cfg.Ny+1)))
		}
	}
	return out
}
