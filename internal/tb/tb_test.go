package tb_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbs/internal/core"
	"cbs/internal/qep"
	"cbs/internal/tb"
)

// tbOptions returns solver options sized for tiny TB problems: the moment
// space Nrh*Nmm must not exceed N, and the defaults (16*8) are built for
// FD grids.
func tbOptions(nrh, nmm int) core.Options {
	o := core.DefaultOptions()
	o.Nrh = nrh
	o.Nmm = nmm
	return o
}

// expectedChainLambdas returns the annulus Bloch factors of the nc-site
// chain supercell at energy e: the primitive roots mu of
// mu + 1/mu = (E - eps)/t fold into lambda = mu^{+-nc}, and only those with
// lambdaMin < |lambda| < 1/lambdaMin are visible to the contour.
func expectedChainLambdas(eps, t, e float64, nc int, lambdaMin float64) []complex128 {
	in, out := tb.ChainRoots(eps, t, e)
	var ls []complex128
	for _, mu := range []complex128{in, out} {
		l := cmplx.Pow(mu, complex(float64(nc), 0))
		if r := cmplx.Abs(l); r > lambdaMin && r < 1/lambdaMin {
			ls = append(ls, l)
		}
	}
	return ls
}

// matchLambdas checks that got and want agree as multisets to within tol.
func matchLambdas(t *testing.T, got []core.Eigenpair, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("found %d annulus eigenpairs, analytic dispersion gives %d", len(got), len(want))
	}
	used := make([]bool, len(want))
	for _, p := range got {
		best, bestD := -1, math.Inf(1)
		for j, w := range want {
			if used[j] {
				continue
			}
			if d := cmplx.Abs(p.Lambda-w) / cmplx.Abs(w); d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 || bestD > tol {
			t.Fatalf("lambda %v matches no analytic root (best mismatch %.3g, want one of %v)", p.Lambda, bestD, want)
		}
		used[best] = true
	}
}

func TestChainBlockedAppliesMatchReference(t *testing.T) {
	b, err := tb.NewChain(tb.ChainConfig{Sites: 7, Onsite: 0.3, Hopping: -1.1, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkBackendConsistency(t, b)
}

func TestSlabBlockedAppliesMatchReference(t *testing.T) {
	b, err := tb.NewSlab(tb.SlabConfig{Nx: 3, Ny: 2, Onsite: -0.2, Hopping: 0.7, A: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	checkBackendConsistency(t, b)
}

// checkBackendConsistency verifies the blocked applies against the
// single-vector reference and the structural identities the dual contour
// needs: H0 = H0^dagger and H- = H+^dagger.
func checkBackendConsistency(t *testing.T, b *tb.Backend) {
	t.Helper()
	n := b.N()
	rng := rand.New(rand.NewSource(7))
	randVec := func() []complex128 {
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return v
	}
	dot := func(u, v []complex128) complex128 {
		var s complex128
		for i := range u {
			s += cmplx.Conj(u[i]) * v[i]
		}
		return s
	}
	u, v := randVec(), randVec()
	h0v, hpv, hmv := make([]complex128, n), make([]complex128, n), make([]complex128, n)
	h0u, hpu, hmu := make([]complex128, n), make([]complex128, n), make([]complex128, n)
	b.ApplyH0(v, h0v)
	b.ApplyHp(v, hpv)
	b.ApplyHm(v, hmv)
	b.ApplyH0(u, h0u)
	b.ApplyHp(u, hpu)
	b.ApplyHm(u, hmu)
	if d := cmplx.Abs(dot(u, h0v) - cmplx.Conj(dot(v, h0u))); d > 1e-12 {
		t.Errorf("H0 not hermitian: defect %g", d)
	}
	if d := cmplx.Abs(dot(u, hpv) - cmplx.Conj(dot(v, hmu))); d > 1e-12 {
		t.Errorf("H- != H+^dagger: defect %g", d)
	}

	const nb = 3
	vb := make([]complex128, n*nb)
	for i := range vb {
		vb[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	col := func(blk []complex128, c int) []complex128 {
		out := make([]complex128, n)
		for i := 0; i < n; i++ {
			out[i] = blk[i*nb+c]
		}
		return out
	}
	const shift = 0.37
	coefP := complex(0.4, -1.2)
	coefM := complex(-0.9, 0.3)
	out := make([]complex128, n*nb)
	b.ApplyShiftedH0Block(shift, vb, out, nb)
	b.AccumHpBlock(coefP, vb, out, nb)
	b.AccumHmBlock(coefM, vb, out, nb)
	for c := 0; c < nb; c++ {
		vc := col(vb, c)
		want := make([]complex128, n)
		tmp := make([]complex128, n)
		b.ApplyH0(vc, tmp)
		for i := range want {
			want[i] = complex(shift, 0)*vc[i] - tmp[i]
		}
		b.ApplyHp(vc, tmp)
		for i := range want {
			want[i] += coefP * tmp[i]
		}
		b.ApplyHm(vc, tmp)
		for i := range want {
			want[i] += coefM * tmp[i]
		}
		gc := col(out, c)
		for i := range want {
			if cmplx.Abs(gc[i]-want[i]) > 1e-12 {
				t.Fatalf("blocked apply col %d row %d: got %v want %v", c, i, gc[i], want[i])
			}
		}
	}
}

// TestChainRealBandsOnShell pins the SS solver against the analytic chain
// dispersion inside the band: at an on-shell energy the two annulus Bloch
// factors are exactly mu^{+-nc} with mu = e^{ikd} from
// E = eps + 2 t cos(k d).
func TestChainRealBandsOnShell(t *testing.T) {
	const (
		nc  = 8
		eps = 0.0
		th  = -1.0
		a   = 8.0 // cell length; site spacing d = 1
	)
	b, err := tb.NewChain(tb.ChainConfig{Sites: nc, Onsite: eps, Hopping: th, A: a})
	if err != nil {
		t.Fatal(err)
	}
	opts := tbOptions(2, 4)
	for _, e := range []float64{0.5, -1.3, 1.9} {
		r, err := core.Solve(qep.NewBackend(b, e), opts)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		want := expectedChainLambdas(eps, th, e, nc, opts.LambdaMin)
		matchLambdas(t, r.Pairs, want, 1e-6)
		for _, p := range r.Pairs {
			if math.Abs(cmplx.Abs(p.Lambda)-1) > 1e-6 {
				t.Errorf("E=%g in band: |lambda| = %g, want 1 (propagating)", e, cmplx.Abs(p.Lambda))
			}
			// On-shell: the analytic dispersion evaluated at the solved
			// complex k reproduces E (k is the supercell wave vector, so the
			// primitive-cell dispersion uses d = a/nc and the folded branch;
			// checking through mu avoids the branch ambiguity).
			in, out := tb.ChainRoots(eps, th, e)
			for _, mu := range []complex128{in, out} {
				d := a / nc
				ed := tb.ChainDispersion(eps, th, qep.KFromLambda(mu, d), d)
				if cmplx.Abs(ed-complex(e, 0)) > 1e-9 {
					t.Errorf("dispersion oracle broken at E=%g: got %v", e, ed)
				}
			}
		}
	}
}

// TestChainComplexBandsInGap pins the evanescent branch: just above the
// band edge the closed-form roots of lambda + 1/lambda = (E - eps)/t are
// complex with |lambda| != 1, and the solver must recover the decaying /
// growing pair mu^{+-nc}.
func TestChainComplexBandsInGap(t *testing.T) {
	const (
		nc  = 8
		eps = 0.0
		th  = -1.0
		a   = 8.0
	)
	b, err := tb.NewChain(tb.ChainConfig{Sites: nc, Onsite: eps, Hopping: th, A: a})
	if err != nil {
		t.Fatal(err)
	}
	opts := tbOptions(2, 4)
	e := 2.002 // band top is eps - 2t = 2; evanescent just above
	r, err := core.Solve(qep.NewBackend(b, e), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedChainLambdas(eps, th, e, nc, opts.LambdaMin)
	if len(want) != 2 {
		t.Fatalf("test setup: expected 2 annulus roots, analytic gives %d", len(want))
	}
	matchLambdas(t, r.Pairs, want, 1e-6)
	for _, p := range r.Pairs {
		if math.Abs(cmplx.Abs(p.Lambda)-1) < 1e-3 {
			t.Errorf("gap energy: |lambda| = %g should be off the unit circle", cmplx.Abs(p.Lambda))
		}
		if math.Abs(imag(p.K)) < 1e-6 {
			t.Errorf("gap energy: Im k = %g, want nonzero decay", imag(p.K))
		}
	}
}

// TestSlabModesAgainstAnalytic checks the slab backend: every hard-wall
// transverse mode disperses as an independent chain with shifted onsite
// energy, so the annulus spectrum is the union of the per-mode chain roots.
func TestSlabModesAgainstAnalytic(t *testing.T) {
	cfg := tb.SlabConfig{Nx: 3, Ny: 2, Onsite: 0, Hopping: -1, A: 1}
	b, err := tb.NewSlab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := tbOptions(2, 3)
	opts.Nint = 48 // sharpen the contour filter against just-outside roots
	e := -3.3      // one propagating + one evanescent mode pair in the annulus
	r, err := core.Solve(qep.NewBackend(b, e), opts)
	if err != nil {
		t.Fatal(err)
	}
	var want []complex128
	for _, em := range tb.SlabModeEnergies(cfg) {
		want = append(want, expectedChainLambdas(em, cfg.Hopping, e, 1, opts.LambdaMin)...)
	}
	matchLambdas(t, r.Pairs, want, 1e-5)
}
