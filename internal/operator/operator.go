// Package operator defines the contract between an operator backend and
// the Sakurai-Sugiura CBS solver. The paper's quadratic eigenvalue problem
//
//	P(lambda) = -lambda^{-1} H- + (E - H0) - lambda H+
//
// only needs the three cell-coupling blocks of a z-periodic Hamiltonian
// applied matrix-free, the 1D cell length that converts Bloch factors to
// wave vectors, and a stable descriptor string for fingerprint identity.
// Everything else about a backend — grids, pseudopotentials, hopping
// tables — is private to it.
//
// Two implementations exist: the FD-grid Kohn-Sham operator
// (internal/hamiltonian, the paper's workload) and the nearest-neighbor
// tight-binding operator (internal/tb, closed-form dispersions for
// property tests and cheap interactive transport serving). The solver's
// FD-only fast paths (split-complex SoA kernels, the Ndm > 1 domain
// decomposition) type-assert the concrete *hamiltonian.Operator and fall
// back to the portable blocked path for every other backend.
package operator

// Backend is a matrix-free z-periodic operator in the QEP block form
// H0 = H_{n,n}, H+ = H_{n,n+1}, H- = H_{n,n-1} = H+^dagger. The dual
// contour identity P(z)^dagger = P(1/conj z) the solver relies on requires
// H0 = H0^dagger and H- = H+^dagger; every implementation must preserve
// it.
//
// Blocked applies use the interleaved row-major block layout of the hot
// path: an n x nb block stored as nb contiguous column values per grid
// point (v[i*nb+c]).
type Backend interface {
	// N is the per-cell dimension of the operator.
	N() int
	// CellLength is the 1D lattice constant a (bohr): lambda = e^{ika}.
	CellLength() float64
	// Descriptor is the stable identity string hashed into every solve and
	// sweep fingerprint (internal/fingerprint). Two backends whose results
	// could ever differ MUST have distinct descriptors — cache entries,
	// sweep journals and job logs all key on it.
	Descriptor() string
	// MemoryBytes estimates the backend's resident footprint.
	MemoryBytes() int64

	// Single-vector applies (reference path and residual checks).
	ApplyH0(v, out []complex128)
	ApplyHp(v, out []complex128)
	ApplyHm(v, out []complex128)

	// Blocked applies (the contour hot path). ApplyShiftedH0Block computes
	// out = (shift - H0) V; the Accum forms compute out += coef * H± V.
	// The //cbs:hotpath directives are contracts, not checks: hotpathalloc
	// admits calls through these methods inside hot kernels, and every
	// implementation must annotate (and therefore pass the body rules on)
	// its own methods.
	//
	//cbs:hotpath
	ApplyShiftedH0Block(shift float64, v, out []complex128, nb int)
	//cbs:hotpath
	AccumHpBlock(coef complex128, v, out []complex128, nb int)
	//cbs:hotpath
	AccumHmBlock(coef complex128, v, out []complex128, nb int)
}
