package chaos

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestNilInjectorIsInert: production call sites pass nil everywhere.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Breakdown(Site{Point: 3, Col: 1}) {
		t.Error("nil injector must not inject breakdowns")
	}
	if in.FallbackFail(0, 0) {
		t.Error("nil injector must not fail fallbacks")
	}
	if err := in.PointFault(0); err != nil {
		t.Errorf("nil injector returned %v", err)
	}
	if in.CorruptHalo(0, 1, 0) {
		t.Error("nil injector must not corrupt halos")
	}
	if in.Seed() != 0 {
		t.Error("nil injector seed must be 0")
	}
}

// TestDeterminism: the same seed must draw the same decisions at every
// site, independent of query order.
func TestDeterminism(t *testing.T) {
	cfg := Config{Breakdown: 0.3, FallbackFail: 0.5, PointFault: 0.2, Halo: 0.4}
	a := New(7, cfg)
	b := New(7, cfg)
	// Query b in reverse order: decisions must still agree site-by-site.
	type dec struct{ br, fb, pf, hl bool }
	var got [64]dec
	for i := 0; i < 64; i++ {
		got[i] = dec{
			br: a.Breakdown(Site{Point: i, Col: i % 5}),
			fb: a.FallbackFail(i, i%5),
			pf: a.PointFault(i) != nil,
			hl: a.CorruptHalo(i%3, (i+1)%3, int64(i)),
		}
	}
	for i := 63; i >= 0; i-- {
		want := dec{
			br: b.Breakdown(Site{Point: i, Col: i % 5}),
			fb: b.FallbackFail(i, i%5),
			pf: b.PointFault(i) != nil,
			hl: b.CorruptHalo(i%3, (i+1)%3, int64(i)),
		}
		if got[i] != want {
			t.Fatalf("site %d: decisions differ across query order: %+v vs %+v", i, got[i], want)
		}
	}
	// A different seed must (somewhere) differ.
	c := New(8, cfg)
	same := true
	for i := 0; i < 64; i++ {
		if c.Breakdown(Site{Point: i, Col: i % 5}) != got[i].br {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 drew identical breakdown decisions at 64 sites")
	}
}

// TestInjectionRate: the empirical hit frequency must track the configured
// probability (law of large numbers over site hashes).
func TestInjectionRate(t *testing.T) {
	for _, p := range []float64{0.1, 0.25, 0.5} {
		in := New(42, Config{Breakdown: p})
		hits := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			if in.Breakdown(Site{Point: i, Col: i >> 8}) {
				hits++
			}
		}
		freq := float64(hits) / trials
		if math.Abs(freq-p) > 0.02 {
			t.Errorf("rate %g: empirical frequency %g", p, freq)
		}
	}
}

// TestRestartStickiness: restarts only break down where the first attempt
// was injected, and a zero restart rate heals every restart.
func TestRestartStickiness(t *testing.T) {
	in := New(3, Config{Breakdown: 0.5, RestartBreakdown: 1})
	for i := 0; i < 200; i++ {
		s := Site{Point: i, Col: 0}
		first := in.Breakdown(s)
		s.Attempt = 1
		if in.Breakdown(s) && !first {
			t.Fatalf("point %d: restart broke down without a first-attempt injection", i)
		}
	}
	healed := New(3, Config{Breakdown: 0.5, RestartBreakdown: 0})
	for i := 0; i < 200; i++ {
		if healed.Breakdown(Site{Point: i, Col: 0, Attempt: 1}) {
			t.Fatalf("point %d: restart broke down with RestartBreakdown=0", i)
		}
	}
}

// TestColumnAndPointTargeting: restrictions confine injections.
func TestColumnAndPointTargeting(t *testing.T) {
	in := New(1, Config{Breakdown: 1, FallbackFail: 1, PointFault: 1,
		Columns: []int{2}, Points: []int{5}})
	if in.Breakdown(Site{Point: 0, Col: 1}) {
		t.Error("column 1 is not targeted")
	}
	if !in.Breakdown(Site{Point: 0, Col: 2}) {
		t.Error("column 2 is targeted with rate 1")
	}
	if in.FallbackFail(0, 0) {
		t.Error("fallback of untargeted column failed")
	}
	if err := in.PointFault(4); err != nil {
		t.Errorf("point 4 is not targeted: %v", err)
	}
	err := in.PointFault(5)
	if err == nil {
		t.Fatal("point 5 is targeted with rate 1")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("point fault %v is not errors.Is(ErrInjected)", err)
	}
}

// TestSweepSites: the sweep-level sites (energy fault, checkpoint fault,
// torn record) are nil-safe, deterministic, energy-targeted, and typed.
func TestSweepSites(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.EnergyFault(0); err != nil {
		t.Errorf("nil injector energy fault: %v", err)
	}
	if err := nilIn.CheckpointFault(0); err != nil {
		t.Errorf("nil injector checkpoint fault: %v", err)
	}
	if nilIn.TornRecord(0) {
		t.Error("nil injector must not tear records")
	}

	in := New(5, Config{EnergyFault: 1, CheckpointFault: 1, TornRecord: 1, Energies: []int{3}})
	for _, i := range []int{0, 1, 2, 4} {
		if in.EnergyFault(i) != nil || in.CheckpointFault(i) != nil || in.TornRecord(i) {
			t.Errorf("energy %d is not targeted but was hit", i)
		}
	}
	if err := in.EnergyFault(3); err == nil || !errors.Is(err, ErrInjected) {
		t.Errorf("targeted energy fault = %v, want ErrInjected", err)
	}
	if err := in.CheckpointFault(3); err == nil || !errors.Is(err, ErrInjected) {
		t.Errorf("targeted checkpoint fault = %v, want ErrInjected", err)
	}
	if !in.TornRecord(3) {
		t.Error("targeted torn record with rate 1 must hit")
	}

	// Fractional rates draw the same decisions on two injectors with the
	// same seed, and the three kinds are independent sites.
	a := New(9, Config{EnergyFault: 0.4, CheckpointFault: 0.4, TornRecord: 0.4})
	b := New(9, Config{EnergyFault: 0.4, CheckpointFault: 0.4, TornRecord: 0.4})
	allSame := true
	for i := 0; i < 128; i++ {
		ea, ca, ta := a.EnergyFault(i) != nil, a.CheckpointFault(i) != nil, a.TornRecord(i)
		eb, cb, tb := b.EnergyFault(i) != nil, b.CheckpointFault(i) != nil, b.TornRecord(i)
		if ea != eb || ca != cb || ta != tb {
			t.Fatalf("energy %d: decisions differ across identically-seeded injectors", i)
		}
		if ea != ca || ea != ta {
			allSame = false
		}
	}
	if allSame {
		t.Error("the three sweep fault kinds drew identical decisions at 128 sites; the kind is not mixed into the hash")
	}
}

// TestFromEnv: unset means nil; set means an injector with the parsed seed.
func TestFromEnv(t *testing.T) {
	t.Setenv("CBS_CHAOS", "")
	if FromEnv() != nil {
		t.Fatal("FromEnv must return nil without CBS_CHAOS")
	}
	t.Setenv("CBS_CHAOS", "1")
	t.Setenv("CBS_CHAOS_SEED", "99")
	t.Setenv("CBS_CHAOS_BREAKDOWN", "1")
	in := FromEnv()
	if in == nil {
		t.Fatal("FromEnv returned nil with CBS_CHAOS set")
	}
	if in.Seed() != 99 {
		t.Errorf("seed = %d, want 99", in.Seed())
	}
	if !in.Breakdown(Site{}) {
		t.Error("breakdown rate 1 must always hit")
	}
	t.Setenv("CBS_CHAOS_JOB", "1")
	t.Setenv("CBS_CHAOS_CACHE", "1")
	t.Setenv("CBS_CHAOS_JOBLOG", "1")
	t.Setenv("CBS_CHAOS_ADOPT", "1")
	in = FromEnv()
	if err := in.JobFault(0); err == nil {
		t.Error("CBS_CHAOS_JOB=1 must inject job faults")
	}
	if !in.CacheFault("k") {
		t.Error("CBS_CHAOS_CACHE=1 must force cache misses")
	}
	if _, err := in.JobLogFault(0); err == nil {
		t.Error("CBS_CHAOS_JOBLOG=1 must inject job-log faults")
	}
	if err := in.AdoptFault(0); err == nil {
		t.Error("CBS_CHAOS_ADOPT=1 must inject re-adoption faults")
	}
}

// TestServingSites covers the serving-layer fault sites: job pickup faults
// and forced cache misses, nil-safe, deterministic, and kind-independent.
func TestServingSites(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.JobFault(0); err != nil {
		t.Errorf("nil injector job fault: %v", err)
	}
	if nilIn.CacheFault("abc") {
		t.Error("nil injector must not force cache misses")
	}

	in := New(5, Config{JobFault: 1, CacheFault: 1})
	if err := in.JobFault(7); err == nil || !errors.Is(err, ErrInjected) {
		t.Errorf("job fault at rate 1 = %v, want ErrInjected", err)
	}
	if !in.CacheFault("57f21d55743e4262") {
		t.Error("cache fault at rate 1 must hit")
	}

	// Per-key determinism: the same key always draws the same decision,
	// different keys (somewhere) differ.
	a := New(9, Config{JobFault: 0.4, CacheFault: 0.4})
	b := New(9, Config{JobFault: 0.4, CacheFault: 0.4})
	sawHit, sawMiss := false, false
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15)
		if a.CacheFault(key) != b.CacheFault(key) {
			t.Fatalf("key %s: cache decisions differ across identically-seeded injectors", key)
		}
		if (a.JobFault(i) != nil) != (b.JobFault(i) != nil) {
			t.Fatalf("job %d: decisions differ across identically-seeded injectors", i)
		}
		if a.CacheFault(key) {
			sawHit = true
		} else {
			sawMiss = true
		}
	}
	if !sawHit || !sawMiss {
		t.Error("cache fault rate 0.4 over 128 keys produced no mix of hits and misses")
	}
}
