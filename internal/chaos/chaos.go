// Package chaos is a deterministic fault injector for the resilience tests
// of the CBS pipeline. Every injection decision is a pure hash of the
// injector seed and the fault site's identity (quadrature point, probe
// column, ladder attempt, halo link/sequence), never of call order, so a
// run with a given seed injects exactly the same faults regardless of how
// the parallel layers schedule their workers. Production runs carry a nil
// injector: every method is nil-safe and a nil receiver injects nothing.
//
// The injector is env-gated for the chaos-smoke CI job: FromEnv returns nil
// unless CBS_CHAOS is set, so the same test binaries run clean by default
// and faulty under the seed matrix.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
)

// ErrInjected is the sentinel wrapped by every injected hard fault, so
// callers can distinguish chaos from genuine failures with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Site identifies one fault site in the solve: the quadrature point, the
// probe column, and the recovery-ladder attempt (0 for the first solve).
type Site struct {
	Point   int
	Col     int
	Attempt int
}

// Config sets the per-site injection rates (each a probability in [0,1])
// and optional targeting restrictions.
type Config struct {
	// Breakdown is the probability that the BiCG shadow inner product of a
	// (point, column, attempt=0) solve is zeroed, forcing an immediate
	// Krylov breakdown (rung 0 failure).
	Breakdown float64
	// RestartBreakdown is the probability that a rung-1 restart (attempt
	// >= 1) of an affected solve breaks down again.
	RestartBreakdown float64
	// FallbackFail is the probability that the rung-2 GMRES fallback of a
	// (point, column) is declared failed, forcing the graceful-degradation
	// rung (the point pair is dropped).
	FallbackFail float64
	// PointFault is the probability that a worker picking up a quadrature
	// point hits a hard fault (a typed error that must cancel the solve).
	PointFault float64
	// Halo is the probability that one point-to-point payload of the
	// bottom-layer fabric is zeroed (a corrupted/dropped halo message).
	Halo float64

	// EnergyFault is the probability that one whole energy of a sweep
	// fails hard before its solve starts (the sweep-level analog of
	// PointFault: the retry policy sees a typed injected error on every
	// attempt, so the energy must end Failed without sinking the sweep).
	EnergyFault float64
	// CheckpointFault is the probability that the journal append for one
	// energy record fails with a typed error (a full disk / EIO stand-in).
	CheckpointFault float64
	// TornRecord is the probability that the journal append for one
	// energy record is cut mid-write (a crash between write and fsync):
	// only a prefix of the record reaches the file and no newline follows.
	TornRecord float64

	// RefineFail is the probability that one (point, column) of a
	// mixed-precision solve has its iterative-refinement corrections
	// suppressed: the inner float32 solve runs but the column's update is
	// discarded every step, so refinement stagnates and the column ends
	// RefineFailed. Enough affected columns at one point force the
	// mixed->full precision escalation rung of the sweep ladder.
	RefineFail float64

	// JobFault is the probability that a job picked up by a serving-layer
	// worker (internal/jobs) fails hard before its task runs: the job must
	// end Failed with a typed injected error while the server keeps
	// serving — the job-level analog of EnergyFault.
	JobFault float64
	// CacheFault is the probability that one result-cache lookup
	// (internal/rescache) is forced to miss — the stand-in for an evicted
	// or corrupted entry. A hit site is deterministic per key, so an
	// affected fingerprint never caches; the serving layer must still
	// return correct results, just without the shortcut.
	CacheFault float64

	// JobLogFault is the probability that one append to the persistent job
	// log (internal/jobs store) fails: half the hits fail cleanly before
	// writing (a full-disk / EIO stand-in), the other half tear mid-write —
	// only a prefix of the frame reaches the file, the on-disk image of a
	// crash between write and fsync. Either way the append reports a typed
	// failure; the restart replay must drop the fragment and keep serving.
	JobLogFault float64
	// AdoptFault is the probability that the restart re-adoption of one
	// replayed job fails hard before its task is rebuilt: the job must end
	// Failed with a typed injected error (never silently vanish) while the
	// rest of the recovery proceeds.
	AdoptFault float64

	// NEGFFault is the probability that the lead self-energy construction
	// for one transport energy fails hard (an ill-conditioned mode-matrix
	// inversion stand-in): the per-energy NEGF post-processing must report
	// a typed injected error for that energy while the rest of the
	// transmission sweep completes.
	NEGFFault float64

	// NetDrop is the probability that one framed write of a reliable TCP
	// link is silently discarded instead of hitting the socket. The frame
	// stays in the sender's outbox, so the link's NAK/retransmit machinery
	// must recover it losslessly.
	NetDrop float64
	// NetDelay is the probability that one framed write is delayed a few
	// milliseconds before hitting the socket — latency jitter that shakes
	// out timing assumptions without changing delivery.
	NetDelay float64
	// NetReorder is the probability that one framed write is held back and
	// emitted after the following write, swapping two frames on the wire;
	// the receiver's sequence numbers must put them back in order.
	NetReorder float64
	// NetDup is the probability that one framed write is emitted twice;
	// the receiver must drop the duplicate by sequence number.
	NetDup float64
	// NetPartition is the probability that one link operation starts a
	// partition window: the connection drops and the next few
	// dial/attach attempts fail, so the link must heal through its
	// reconnect backoff (or surface ErrPartition once the budget is
	// spent).
	NetPartition float64
	// NetConn is the probability that one dial attempt of a reliable link
	// fails outright (connection refused / unreachable stand-in), forcing
	// a backoff-and-retry round.
	NetConn float64

	// Columns, when non-empty, restricts the column-scoped injections
	// (Breakdown, RestartBreakdown, FallbackFail) to the listed probe
	// columns.
	Columns []int
	// Points, when non-empty, restricts PointFault to the listed
	// quadrature points.
	Points []int
	// Energies, when non-empty, restricts the sweep-scoped injections
	// (EnergyFault, CheckpointFault, TornRecord) to the listed energy
	// indices.
	Energies []int
}

// Injector draws deterministic injection decisions from a seed.
type Injector struct {
	seed int64
	cfg  Config
}

// New builds an injector with the given seed and rates.
func New(seed int64, cfg Config) *Injector {
	return &Injector{seed: seed, cfg: cfg}
}

// Seed returns the injector's seed (nil-safe; 0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// FromEnv builds an injector from the environment, or returns nil when
// CBS_CHAOS is unset/empty (the production default). Recognized variables:
//
//	CBS_CHAOS=1                  enable injection
//	CBS_CHAOS_SEED=<int>         seed (default 1)
//	CBS_CHAOS_BREAKDOWN=<p>      first-attempt breakdown rate (default 0.25)
//	CBS_CHAOS_RESTART=<p>        restart breakdown rate (default 0)
//	CBS_CHAOS_FALLBACK=<p>       fallback failure rate (default 0)
//	CBS_CHAOS_POINT=<p>          hard point-fault rate (default 0)
//	CBS_CHAOS_HALO=<p>           halo corruption rate (default 0)
//	CBS_CHAOS_ENERGY=<p>         sweep energy hard-fault rate (default 0)
//	CBS_CHAOS_CKPT=<p>           checkpoint write-fault rate (default 0)
//	CBS_CHAOS_TORN=<p>           torn journal-record rate (default 0)
//	CBS_CHAOS_REFINE=<p>         mixed-precision refinement-failure rate (default 0)
//	CBS_CHAOS_JOB=<p>            serving-layer job hard-fault rate (default 0)
//	CBS_CHAOS_CACHE=<p>          forced result-cache miss rate (default 0)
//	CBS_CHAOS_JOBLOG=<p>         torn/failed job-log append rate (default 0)
//	CBS_CHAOS_ADOPT=<p>          restart re-adoption fault rate (default 0)
//	CBS_CHAOS_NEGF=<p>           lead self-energy construction fault rate (default 0)
//	CBS_CHAOS_NET_DROP=<p>       dropped frame rate on reliable links (default 0)
//	CBS_CHAOS_NET_DELAY=<p>      delayed frame rate (default 0)
//	CBS_CHAOS_NET_REORDER=<p>    reordered frame rate (default 0)
//	CBS_CHAOS_NET_DUP=<p>        duplicated frame rate (default 0)
//	CBS_CHAOS_NET_PARTITION=<p>  partition-window start rate (default 0)
//	CBS_CHAOS_NET_CONN=<p>       failed dial-attempt rate (default 0)
func FromEnv() *Injector {
	if os.Getenv("CBS_CHAOS") == "" {
		return nil
	}
	seed := int64(1)
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	rate := func(key string, def float64) float64 {
		s := os.Getenv(key)
		if s == "" {
			return def
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return def
		}
		return v
	}
	return New(seed, Config{
		Breakdown:        rate("CBS_CHAOS_BREAKDOWN", 0.25),
		RestartBreakdown: rate("CBS_CHAOS_RESTART", 0),
		FallbackFail:     rate("CBS_CHAOS_FALLBACK", 0),
		PointFault:       rate("CBS_CHAOS_POINT", 0),
		Halo:             rate("CBS_CHAOS_HALO", 0),
		EnergyFault:      rate("CBS_CHAOS_ENERGY", 0),
		CheckpointFault:  rate("CBS_CHAOS_CKPT", 0),
		TornRecord:       rate("CBS_CHAOS_TORN", 0),
		RefineFail:       rate("CBS_CHAOS_REFINE", 0),
		JobFault:         rate("CBS_CHAOS_JOB", 0),
		CacheFault:       rate("CBS_CHAOS_CACHE", 0),
		JobLogFault:      rate("CBS_CHAOS_JOBLOG", 0),
		AdoptFault:       rate("CBS_CHAOS_ADOPT", 0),
		NEGFFault:        rate("CBS_CHAOS_NEGF", 0),
		NetDrop:          rate("CBS_CHAOS_NET_DROP", 0),
		NetDelay:         rate("CBS_CHAOS_NET_DELAY", 0),
		NetReorder:       rate("CBS_CHAOS_NET_REORDER", 0),
		NetDup:           rate("CBS_CHAOS_NET_DUP", 0),
		NetPartition:     rate("CBS_CHAOS_NET_PARTITION", 0),
		NetConn:          rate("CBS_CHAOS_NET_CONN", 0),
	})
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hit draws the deterministic decision for one (kind, a, b, c) site.
func (in *Injector) hit(p float64, kind uint64, a, b, c int) bool {
	if in == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := splitmix64(uint64(in.seed))
	h = splitmix64(h ^ kind)
	h = splitmix64(h ^ uint64(a)<<1)
	h = splitmix64(h ^ uint64(b)<<2)
	h = splitmix64(h ^ uint64(c)<<3)
	// Top 53 bits as a uniform [0,1) fraction.
	return float64(h>>11)/float64(1<<53) < p
}

// colTargeted reports whether column injections apply to col.
func (in *Injector) colTargeted(col int) bool {
	if len(in.cfg.Columns) == 0 {
		return true
	}
	for _, c := range in.cfg.Columns {
		if c == col {
			return true
		}
	}
	return false
}

const (
	kindBreakdown = 0x6272 // "br"
	kindFallback  = 0x6662 // "fb"
	kindPoint     = 0x7074 // "pt"
	kindHalo      = 0x686c // "hl"
	kindEnergy    = 0x656e // "en"
	kindCkpt      = 0x636b // "ck"
	kindTorn      = 0x746e // "tn"
	kindJob       = 0x6a62 // "jb"
	kindCache     = 0x6361 // "ca"
	kindRefine    = 0x7266 // "rf"
	kindJobLog    = 0x6a6c // "jl"
	kindAdopt     = 0x6164 // "ad"
	kindNEGF      = 0x6e67 // "ng"
	kindNetDrop   = 0x6e64 // "nd"
	kindNetDelay  = 0x6e6c // "nl"
	kindNetReord  = 0x6e72 // "nr"
	kindNetDup    = 0x6e75 // "nu"
	kindNetPart   = 0x6e70 // "np"
	kindNetConn   = 0x6e63 // "nc"
)

// Breakdown reports whether the BiCG solve at s should break down
// (attempt 0 uses the Breakdown rate, restarts the RestartBreakdown rate).
func (in *Injector) Breakdown(s Site) bool {
	if in == nil || !in.colTargeted(s.Col) {
		return false
	}
	p := in.cfg.Breakdown
	if s.Attempt > 0 {
		p = in.cfg.RestartBreakdown
		// A restart of a clean solve never breaks down: the restart rate
		// describes how sticky an injected breakdown is, not a fresh fault.
		if !in.hit(in.cfg.Breakdown, kindBreakdown, s.Point, s.Col, 0) {
			return false
		}
	}
	return in.hit(p, kindBreakdown, s.Point, s.Col, s.Attempt)
}

// FallbackFail reports whether the GMRES fallback at (point, col) should be
// declared failed, forcing the degradation rung.
func (in *Injector) FallbackFail(point, col int) bool {
	if in == nil || !in.colTargeted(col) {
		return false
	}
	return in.hit(in.cfg.FallbackFail, kindFallback, point, col, 0)
}

// RefineFail reports whether the mixed-precision refinement of (point, col)
// should have its corrections suppressed (every step of that column, so the
// refinement budget is exhausted deterministically).
func (in *Injector) RefineFail(point, col int) bool {
	if in == nil || !in.colTargeted(col) {
		return false
	}
	return in.hit(in.cfg.RefineFail, kindRefine, point, col, 0)
}

// PointFault returns a typed injected error when the worker picking up
// quadrature point j should hit a hard fault, nil otherwise.
func (in *Injector) PointFault(point int) error {
	if in == nil {
		return nil
	}
	if len(in.cfg.Points) > 0 {
		found := false
		for _, p := range in.cfg.Points {
			if p == point {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	if !in.hit(in.cfg.PointFault, kindPoint, point, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: hard fault at quadrature point %d", ErrInjected, point)
}

// CorruptHalo reports whether the seq-th payload on the (src, dst) link of
// one communication world should be zeroed.
func (in *Injector) CorruptHalo(src, dst int, seq int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.Halo, kindHalo, src, dst, int(seq))
}

// energyTargeted reports whether sweep-scoped injections apply to the
// energy index.
func (in *Injector) energyTargeted(index int) bool {
	if len(in.cfg.Energies) == 0 {
		return true
	}
	for _, e := range in.cfg.Energies {
		if e == index {
			return true
		}
	}
	return false
}

// EnergyFault returns a typed injected error when the sweep energy at
// index should fail hard before its solve, nil otherwise. Every attempt of
// a hit energy fails (the attempt is not part of the site), so the retry
// policy must exhaust its budget and mark the energy Failed.
func (in *Injector) EnergyFault(index int) error {
	if in == nil || !in.energyTargeted(index) {
		return nil
	}
	if !in.hit(in.cfg.EnergyFault, kindEnergy, index, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: hard fault at sweep energy %d", ErrInjected, index)
}

// CheckpointFault returns a typed injected error when the journal append
// for the energy record at index should fail, nil otherwise.
func (in *Injector) CheckpointFault(index int) error {
	if in == nil || !in.energyTargeted(index) {
		return nil
	}
	if !in.hit(in.cfg.CheckpointFault, kindCkpt, index, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: checkpoint write fault at sweep energy %d", ErrInjected, index)
}

// JobFault returns a typed injected error when the serving-layer job with
// the given submission sequence number should fail hard at worker pickup,
// nil otherwise. The site is the sequence number, not the worker, so the
// decision is independent of pool scheduling; every retry of a faulted
// submission is a new sequence number and draws fresh.
func (in *Injector) JobFault(seq int) error {
	if in == nil {
		return nil
	}
	if !in.hit(in.cfg.JobFault, kindJob, seq, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: hard fault at job %d", ErrInjected, seq)
}

// CacheFault reports whether the result-cache lookup for key should be
// forced to miss. The site is an FNV-1a fold of the key, so the decision
// is per-fingerprint deterministic: an affected key misses on every
// lookup, and the serving layer must produce correct results without the
// cache's help.
func (in *Injector) CacheFault(key string) bool {
	if in == nil {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	s := h.Sum64()
	return in.hit(in.cfg.CacheFault, kindCache, int(s&0x7fffffff), int(s>>33), 0)
}

// JobLogFault decides the fate of the job-log append for the record with
// the given per-log sequence number: a nil error is a clean append; a
// non-nil error with torn=false is a clean failure (nothing written); a
// non-nil error with torn=true means the append was cut mid-write and a
// CRC-failing fragment is on disk. The site is the record sequence number,
// so the decision is independent of pool scheduling.
func (in *Injector) JobLogFault(seq int) (torn bool, err error) {
	if in == nil {
		return false, nil
	}
	if !in.hit(in.cfg.JobLogFault, kindJobLog, seq, 0, 0) {
		return false, nil
	}
	// A second draw splits hits between clean failures and torn writes.
	torn = in.hit(0.5, kindJobLog, seq, 1, 0)
	return torn, fmt.Errorf("%w: job-log append fault at record %d (torn=%t)", ErrInjected, seq, torn)
}

// AdoptFault returns a typed injected error when the restart re-adoption
// of the replayed job with the given submission sequence number should
// fail, nil otherwise.
func (in *Injector) AdoptFault(seq int) error {
	if in == nil {
		return nil
	}
	if !in.hit(in.cfg.AdoptFault, kindAdopt, seq, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: re-adoption fault at job %d", ErrInjected, seq)
}

// NEGFFault returns a typed injected error when the lead self-energy
// construction for the transport energy at index should fail hard, nil
// otherwise. The site is the energy index (shared with the sweep-scoped
// Energies targeting), so the decision is independent of how the
// transmission sweep schedules its workers.
func (in *Injector) NEGFFault(index int) error {
	if in == nil || !in.energyTargeted(index) {
		return nil
	}
	if !in.hit(in.cfg.NEGFFault, kindNEGF, index, 0, 0) {
		return nil
	}
	return fmt.Errorf("%w: lead self-energy fault at transport energy %d", ErrInjected, index)
}

// TornRecord reports whether the journal append for the energy record at
// index should be cut mid-write, leaving a torn (CRC-failing, unterminated)
// tail that the loader must detect and drop.
func (in *Injector) TornRecord(index int) bool {
	if in == nil || !in.energyTargeted(index) {
		return false
	}
	return in.hit(in.cfg.TornRecord, kindTorn, index, 0, 0)
}

// The network sites are keyed by (src, dst, op) where op is the link's
// monotonically increasing operation counter — write index for the frame
// faults, attempt index for the dial faults — never the data sequence
// number: a retransmission of the same frame is a fresh write with a fresh
// draw, so a deterministic injector cannot doom one frame forever.

// NetDrop reports whether the op-th framed write on the (src, dst) link
// should be discarded instead of written.
func (in *Injector) NetDrop(src, dst int, op int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetDrop, kindNetDrop, src, dst, int(op))
}

// NetDelay reports whether the op-th framed write on the (src, dst) link
// should be delayed before hitting the socket.
func (in *Injector) NetDelay(src, dst int, op int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetDelay, kindNetDelay, src, dst, int(op))
}

// NetReorder reports whether the op-th framed write on the (src, dst) link
// should be held back and emitted after the following write.
func (in *Injector) NetReorder(src, dst int, op int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetReorder, kindNetReord, src, dst, int(op))
}

// NetDup reports whether the op-th framed write on the (src, dst) link
// should be emitted twice.
func (in *Injector) NetDup(src, dst int, op int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetDup, kindNetDup, src, dst, int(op))
}

// NetPartition reports whether the op-th link operation on (src, dst)
// should start a partition window (the connection drops and the next few
// reconnect attempts fail before the link heals).
func (in *Injector) NetPartition(src, dst int, op int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetPartition, kindNetPart, src, dst, int(op))
}

// NetConn reports whether the attempt-th dial of the (src, dst) link
// should fail outright.
func (in *Injector) NetConn(src, dst int, attempt int64) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.NetConn, kindNetConn, src, dst, int(attempt))
}
