// Package negf turns complex band structure into quantum transport: the
// CBS eigenpairs at one energy are exactly the lead modes of a
// non-equilibrium Green function (NEGF) device calculation. The pipeline
// is
//
//	CBS eigenpairs -> channel classification (propagating/evanescent,
//	left/right-going) -> lead surface response F± (wave matching / Ando)
//	-> retarded self-energies Sigma_L/Sigma_R -> device Green function
//	-> transmission T(E) (Caroli / Fisher-Lee) -> Landauer I-V.
//
// The wave-matching construction: with Phi_+ the matrix of right-going
// mode vectors and Lambda_+ their Bloch factors, F_+ = Phi_+ Lambda_+
// Phi_+^{-1} propagates a surface amplitude one cell into the right lead,
// and
//
//	Sigma_R = H+ F_+,   Sigma_L = H- F_-^{-1 form} (left-going, Lambda^{-1}),
//	Gamma   = i (Sigma - Sigma^dagger),
//	T(E)    = Tr[ Gamma_L G_{1,nd} Gamma_R G_{1,nd}^dagger ].
//
// The contour solver only returns modes in its annulus, so the mode basis
// is completed before inversion: the lambda -> 0 modes of the quadratic
// eigenproblem are exactly the null space of H- (and the lambda -> inf
// modes the null space of H+) — for rank-deficient coupling blocks this
// completion is exact, not an approximation. Any deep-evanescent modes a
// full-rank coupling hides below the annulus get an orthogonal-complement
// fill at lambda = 0, an O(lambda_min) approximation counted in
// Leads.NFill.
package negf

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"cbs/internal/core"
	"cbs/internal/operator"
	"cbs/internal/transport"
	"cbs/internal/zlinalg"
)

// ErrDeficientBasis is wrapped when a lead's mode basis cannot be
// completed to full rank (more annulus modes than the cell dimension, or a
// numerically singular mode matrix).
var ErrDeficientBasis = errors.New("negf: lead mode basis is deficient")

// Options tunes the NEGF construction.
type Options struct {
	// Eta is the retarded broadening added to the device energy
	// (E + i*eta); default 1e-9. The lead self-energies carry the real
	// physics of irreversibility, eta only guards isolated device
	// resonances from exact singularity.
	Eta float64
	// PropagatingTol is the ||lambda|-1| classification margin; 0 means
	// transport.DefaultPropagatingTol.
	PropagatingTol float64
}

func (o Options) eta() float64 {
	if o.Eta > 0 {
		return o.Eta
	}
	return 1e-9
}

func (o Options) tol() float64 {
	if o.PropagatingTol > 0 {
		return o.PropagatingTol
	}
	return transport.DefaultPropagatingTol
}

// Channel is one classified lead mode.
type Channel struct {
	Lambda      complex128
	K           complex128
	Psi         []complex128
	Velocity    float64 // group velocity dE/dk (bohr * hartree); 0 for evanescent
	Propagating bool
	Right       bool // carries amplitude toward +z (v > 0, or decaying |lambda| < 1)
}

// Blocks extracts the dense H0, H+, H- blocks of a backend by applying it
// to unit vectors: O(N) applies, O(N^2) storage. Transport cells are small
// (tight-binding leads, or one FD cell), so dense assembly is the right
// tool for the wave matching and the device Green function.
func Blocks(b operator.Backend) (h0, hp, hm *zlinalg.Matrix) {
	n := b.N()
	h0 = zlinalg.NewMatrix(n, n)
	hp = zlinalg.NewMatrix(n, n)
	hm = zlinalg.NewMatrix(n, n)
	e := make([]complex128, n)
	out := make([]complex128, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		b.ApplyH0(e, out)
		for i := 0; i < n; i++ {
			h0.Set(i, j, out[i])
		}
		b.ApplyHp(e, out)
		for i := 0; i < n; i++ {
			hp.Set(i, j, out[i])
		}
		b.ApplyHm(e, out)
		for i := 0; i < n; i++ {
			hm.Set(i, j, out[i])
		}
		e[j] = 0
	}
	return h0, hp, hm
}

// lambdaGroupTol clusters propagating Bloch factors into degenerate
// subspaces: band folding puts counter-moving states on the same lambda
// (e.g. a supercell at k a = pi/2 folds e^{+-i k a nc} onto one point), and
// within such a subspace the solver's eigenvectors are arbitrary mixtures
// of left and right movers.
const lambdaGroupTol = 1e-6

// Classify separates the CBS eigenpairs of one energy into left/right-going
// propagating and evanescent channels. A mode is propagating when
// ||lambda| - 1| < tol; its direction is the sign of the group velocity
//
//	v = -2 a Im(lambda psi^dagger H+ psi),
//
// (the expectation of the current operator; equals dE/dk for Bloch
// states). Evanescent modes go right when |lambda| < 1 (decaying toward
// +z) and left otherwise.
//
// Degenerate propagating subspaces (equal lambda) are resolved the Ando
// way: the velocity operator v(k) = i a (lambda H+ - conj(lambda) H-) is
// diagonalized within the subspace, and the rotated eigenvectors — pure
// movers with definite velocity — replace the solver's arbitrary mixtures.
func Classify(b operator.Backend, r *core.Result, tol float64) []Channel {
	a := b.CellLength()
	n := b.N()
	scratch := make([]complex128, n)
	out := make([]Channel, 0, len(r.Pairs))
	var propIdx []int
	for _, p := range r.Pairs {
		c := Channel{Lambda: p.Lambda, K: p.K, Psi: p.Psi}
		mag := cmplx.Abs(p.Lambda)
		if math.Abs(mag-1) < tol {
			c.Propagating = true
			propIdx = append(propIdx, len(out))
		} else {
			c.Right = mag < 1
		}
		out = append(out, c)
	}
	// Cluster propagating channels by lambda and resolve each group.
	for len(propIdx) > 0 {
		group := []int{propIdx[0]}
		rest := propIdx[:0]
		for _, j := range propIdx[1:] {
			if cmplx.Abs(out[j].Lambda-out[group[0]].Lambda) < lambdaGroupTol {
				group = append(group, j)
			} else {
				rest = append(rest, j)
			}
		}
		propIdx = rest
		if len(group) == 1 {
			c := &out[group[0]]
			b.ApplyHp(c.Psi, scratch)
			c.Velocity = -2 * a * imag(c.Lambda*zlinalg.Dot(c.Psi, scratch))
			c.Right = c.Velocity > 0
			continue
		}
		resolveDegenerate(b, a, out, group)
	}
	return out
}

// resolveDegenerate rotates a degenerate propagating subspace into
// velocity eigenstates. The subspace is first orthonormalized (the
// solver's degenerate eigenvectors need not be orthogonal), then the
// Hermitian velocity matrix V_ij = i a (lambda A_ij - conj(lambda A_ji)),
// A_ij = psi_i^dagger H+ psi_j, is diagonalized.
func resolveDegenerate(b operator.Backend, a float64, chans []Channel, group []int) {
	n := b.N()
	m := len(group)
	span := zlinalg.NewMatrix(n, m)
	for j, gi := range group {
		span.SetCol(j, chans[gi].Psi)
	}
	q, err := zlinalg.OrthonormalizeColumns(span)
	if err != nil {
		// Dependent columns: fall back to the scalar classification.
		scalarVelocity(b, a, chans, group)
		return
	}
	lambda := chans[group[0]].Lambda
	hpq := zlinalg.NewMatrix(n, m)
	scratch := make([]complex128, n)
	for j := 0; j < m; j++ {
		b.ApplyHp(q.Col(j), scratch)
		hpq.SetCol(j, scratch)
	}
	v := zlinalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		qi := q.Col(i)
		for j := 0; j < m; j++ {
			aij := zlinalg.Dot(qi, hpq.Col(j))
			aji := zlinalg.Dot(q.Col(j), hpq.Col(i))
			v.Set(i, j, complex(0, a)*(lambda*aij-cmplx.Conj(lambda*aji)))
		}
	}
	vals, vecs, err := zlinalg.EigHermitian(v)
	if err != nil {
		scalarVelocity(b, a, chans, group)
		return
	}
	for k, gi := range group {
		psi := make([]complex128, n)
		for i := 0; i < m; i++ {
			zlinalg.Axpy(vecs.At(i, k), q.Col(i), psi)
		}
		c := &chans[gi]
		c.Psi = psi
		c.Velocity = vals[k]
		c.Right = c.Velocity > 0
	}
}

// scalarVelocity is the non-degenerate per-mode classification.
func scalarVelocity(b operator.Backend, a float64, chans []Channel, group []int) {
	scratch := make([]complex128, b.N())
	for _, gi := range group {
		c := &chans[gi]
		b.ApplyHp(c.Psi, scratch)
		c.Velocity = -2 * a * imag(c.Lambda*zlinalg.Dot(c.Psi, scratch))
		c.Right = c.Velocity > 0
	}
}

// Leads holds the retarded lead self-energies of one energy and the
// channel bookkeeping behind them.
type Leads struct {
	SigmaL, SigmaR *zlinalg.Matrix
	GammaL, GammaR *zlinalg.Matrix // i (Sigma - Sigma^dagger)
	NOpen          int             // open (propagating) channels per direction
	NEvanescent    int             // evanescent annulus modes used
	NNull          int             // exact lambda->0 / lambda->inf completion vectors
	NFill          int             // orthogonal-complement fills (O(lambda_min) approximation)
}

// LeadSelfEnergies builds Sigma_L and Sigma_R from one CBS result via wave
// matching. Both leads are the same periodic crystal (the backend), as in
// a two-probe junction with identical contacts.
func LeadSelfEnergies(b operator.Backend, r *core.Result, opts Options) (*Leads, error) {
	n := b.N()
	_, hp, hm := Blocks(b)
	chans := Classify(b, r, opts.tol())

	l := &Leads{}
	var rightPsi, leftPsi [][]complex128
	var rightL, leftLinv []complex128
	for _, c := range chans {
		if c.Propagating {
			if c.Right {
				l.NOpen++
			}
		} else {
			l.NEvanescent++
		}
		if c.Right {
			rightPsi = append(rightPsi, c.Psi)
			rightL = append(rightL, c.Lambda)
		} else {
			leftPsi = append(leftPsi, c.Psi)
			leftLinv = append(leftLinv, 1/c.Lambda)
		}
	}

	// Right lead: complete with the exact lambda -> 0 modes (null(H-)),
	// then orthogonal fill. F_+ = Phi Lambda Phi^{-1}, Sigma_R = H+ F_+.
	fPlus, nullR, fillR, err := surfaceResponse(n, rightPsi, rightL, hm)
	if err != nil {
		return nil, fmt.Errorf("right lead: %w", err)
	}
	// Left lead: lambda -> inf modes are null(H+), entering at
	// Lambda^{-1} = 0. F_-^{-} = Phi Lambda^{-1} Phi^{-1}, Sigma_L = H- F_-^{-}.
	fMinus, nullL, fillL, err := surfaceResponse(n, leftPsi, leftLinv, hp)
	if err != nil {
		return nil, fmt.Errorf("left lead: %w", err)
	}
	l.NNull = nullR + nullL
	l.NFill = fillR + fillL

	l.SigmaR = zlinalg.Mul(hp, fPlus)
	l.SigmaL = zlinalg.Mul(hm, fMinus)
	l.GammaL = broadening(l.SigmaL)
	l.GammaR = broadening(l.SigmaR)
	return l, nil
}

// surfaceResponse assembles Phi diag(factors) Phi^{-1} from the matched
// modes, completing the basis with the null space of the opposite coupling
// block (exact factor-0 modes) and, as a last resort, the orthogonal
// complement of the collected columns.
func surfaceResponse(n int, psis [][]complex128, factors []complex128, nullOf *zlinalg.Matrix) (f *zlinalg.Matrix, nNull, nFill int, err error) {
	if len(psis) > n {
		return nil, 0, 0, fmt.Errorf("%w: %d matched modes exceed cell dimension %d", ErrDeficientBasis, len(psis), n)
	}
	phi := zlinalg.NewMatrix(n, n)
	lam := make([]complex128, 0, n)
	col := 0
	for i, psi := range psis {
		phi.SetCol(col, psi)
		lam = append(lam, factors[i])
		col++
	}
	if col < n {
		nulls, err := nullSpace(nullOf)
		if err != nil {
			return nil, 0, 0, err
		}
		for _, v := range nulls {
			if col == n {
				break
			}
			phi.SetCol(col, v)
			lam = append(lam, 0)
			col++
			nNull++
		}
	}
	if col < n {
		fills := orthogonalFill(phi, col)
		for _, v := range fills {
			phi.SetCol(col, v)
			lam = append(lam, 0)
			col++
			nFill++
		}
	}
	if col < n {
		return nil, 0, 0, fmt.Errorf("%w: completed only %d of %d columns", ErrDeficientBasis, col, n)
	}
	lu, err := zlinalg.FactorLU(phi)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: mode matrix is singular: %w", ErrDeficientBasis, err)
	}
	phiInv := lu.Inverse()
	// F = Phi diag(lam) Phi^{-1}: scale the rows of Phi^{-1} by lam, then
	// one matrix product.
	scaled := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		li := lam[i]
		for j := 0; j < n; j++ {
			scaled.Set(i, j, li*phiInv.At(i, j))
		}
	}
	return zlinalg.Mul(phi, scaled), nNull, nFill, nil
}

// nullTol is the relative singular-value threshold below which a direction
// counts as null space of a coupling block.
const nullTol = 1e-10

// nullSpace returns an orthonormal basis of the (right) null space of a.
func nullSpace(a *zlinalg.Matrix) ([][]complex128, error) {
	svd, err := zlinalg.SVD(a)
	if err != nil {
		return nil, fmt.Errorf("negf: null-space SVD failed: %w", err)
	}
	rank := svd.Rank(nullTol)
	var out [][]complex128
	for j := rank; j < len(svd.S); j++ {
		out = append(out, svd.V.Col(j))
	}
	return out, nil
}

// orthogonalFill returns vectors completing the first `have` columns of
// phi to a basis of C^n: candidate unit vectors are orthogonalized against
// the existing columns (and each other) and kept when anything survives.
func orthogonalFill(phi *zlinalg.Matrix, have int) [][]complex128 {
	n := phi.Rows
	var out [][]complex128
	basis := make([][]complex128, 0, have)
	for j := 0; j < have; j++ {
		v := phi.Col(j)
		// Orthonormalize the existing (generally non-orthogonal) columns
		// for projection purposes only.
		for _, b := range basis {
			zlinalg.Axpy(-zlinalg.Dot(b, v), b, v)
		}
		if zlinalg.Norm2(v) > 1e-12 {
			zlinalg.Normalize(v)
			basis = append(basis, v)
		}
	}
	for cand := 0; cand < n && have+len(out) < n; cand++ {
		v := make([]complex128, n)
		v[cand] = 1
		for _, b := range basis {
			zlinalg.Axpy(-zlinalg.Dot(b, v), b, v)
		}
		if zlinalg.Norm2(v) > 1e-6 {
			zlinalg.Normalize(v)
			basis = append(basis, v)
			out = append(out, v)
		}
	}
	return out
}

// broadening returns Gamma = i (Sigma - Sigma^dagger).
func broadening(sigma *zlinalg.Matrix) *zlinalg.Matrix {
	g := zlinalg.Sub(sigma, sigma.ConjTranspose())
	return zlinalg.Scale(complex(0, 1), g)
}

// Device describes the scattering region: Cells principal layers of the
// lead crystal, with an optional per-cell onsite shift (a barrier or bias
// ramp). A nil Barrier is a pristine device — the ballistic limit whose
// transmission is the integer open-channel count.
type Device struct {
	Cells   int
	Barrier []float64 // per-cell onsite shift (hartree); nil or len == Cells
}

// Validate checks the device geometry.
func (d Device) Validate() error {
	if d.Cells < 1 {
		return fmt.Errorf("negf: device needs at least 1 cell, got %d", d.Cells)
	}
	if d.Barrier != nil && len(d.Barrier) != d.Cells {
		return fmt.Errorf("negf: barrier profile has %d entries for %d cells", len(d.Barrier), d.Cells)
	}
	return nil
}

// Transmission computes the Caroli / Fisher-Lee transmission
// T(E) = Tr[Gamma_L G_{1,nd} Gamma_R G_{1,nd}^dagger] for the device at
// the result's energy, with leads described by the backend. The device
// Green function block G_{1,nd} comes from one dense block-tridiagonal LU
// solve on the last-block columns.
func Transmission(b operator.Backend, r *core.Result, dev Device, leads *Leads, opts Options) (float64, error) {
	if err := dev.Validate(); err != nil {
		return 0, err
	}
	n := b.N()
	nd := dev.Cells
	h0, hp, hm := Blocks(b)

	// A = (E + i eta) I - H_device - Sigma.
	dim := nd * n
	a := zlinalg.NewMatrix(dim, dim)
	z := complex(r.Energy, opts.eta())
	for c := 0; c < nd; c++ {
		shift := 0.0
		if dev.Barrier != nil {
			shift = dev.Barrier[c]
		}
		r0 := c * n
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := -h0.At(i, j)
				if i == j {
					v += z - complex(shift, 0)
				}
				a.Set(r0+i, r0+j, v)
			}
		}
		if c+1 < nd {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.Set(r0+i, r0+n+j, -hp.At(i, j))
					a.Set(r0+n+i, r0+j, -hm.At(i, j))
				}
			}
		}
	}
	last := (nd - 1) * n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)-leads.SigmaL.At(i, j))
			a.Set(last+i, last+j, a.At(last+i, last+j)-leads.SigmaR.At(i, j))
		}
	}

	lu, err := zlinalg.FactorLU(a)
	if err != nil {
		return 0, fmt.Errorf("negf: device Green function is singular at E = %g: %w", r.Energy, err)
	}
	// G_{1,nd}: first-block rows of the solves against last-block columns.
	g1n := zlinalg.NewMatrix(n, n)
	rhs := make([]complex128, dim)
	for j := 0; j < n; j++ {
		rhs[last+j] = 1
		x := lu.SolveVec(rhs)
		for i := 0; i < n; i++ {
			g1n.Set(i, j, x[i])
		}
		rhs[last+j] = 0
	}

	// T = Re Tr[Gamma_L G Gamma_R G^dagger].
	m := zlinalg.Mul(zlinalg.Mul(leads.GammaL, g1n), zlinalg.Mul(leads.GammaR, g1n.ConjTranspose()))
	var tr complex128
	for i := 0; i < n; i++ {
		tr += m.At(i, i)
	}
	t := real(tr)
	if t < 0 && t > -1e-12 {
		t = 0 // clamp roundoff
	}
	return t, nil
}
