// pipeline.go batches the NEGF post-processing over an energy grid through
// the sweep engine, so a transmission curve inherits the solver retry
// ladder, checkpoint journaling and fleet sharding that band sweeps
// already have: the expensive part of T(E) is the CBS solve per energy,
// and that part IS a sweep.
package negf

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/operator"
	"cbs/internal/sweep"
	"cbs/internal/transport"
)

// Spec describes one transport run: the energy grid, the device, and the
// NEGF options.
type Spec struct {
	Energies []float64
	Device   Device
	Options  Options

	// Chaos optionally injects per-energy self-energy construction faults
	// (see chaos.Config.NEGFFault); nil in production.
	Chaos *chaos.Injector
}

// PostDesc canonically describes the post-processing half of a transport
// request — everything beyond the CBS sweep that changes T(E): the device
// geometry and the resolved NEGF options. fingerprint.Transport hashes it
// next to the sweep key, so two transport requests share identity exactly
// when both the solves and the post-processing agree. Same stability
// contract as the fingerprint domains: pinned by golden test.
func (s Spec) PostDesc() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cells=%d eta=%.17g ptol=%.17g",
		s.Device.Cells, s.Options.eta(), s.Options.tol())
	if len(s.Device.Barrier) > 0 {
		sb.WriteString(" barrier=")
		for _, v := range s.Device.Barrier {
			fmt.Fprintf(&sb, "%.17g,", v)
		}
	}
	return sb.String()
}

// PointStatus is the terminal state of one transport energy.
type PointStatus string

const (
	PointOK     PointStatus = "ok"
	PointFailed PointStatus = "failed"
)

// Point is T(E) at one energy with its channel diagnostics.
type Point struct {
	E      float64     `json:"e"`
	T      float64     `json:"t"`
	NOpen  int         `json:"n_open"`           // open lead channels per direction
	Beta   float64     `json:"beta"`             // smallest evanescent lead decay (1/bohr); 0 if none
	NFill  int         `json:"n_fill,omitempty"` // approximate basis completions (see Leads.NFill)
	Status PointStatus `json:"status"`
	Err    string      `json:"err,omitempty"`
}

// Curve is a transmission sweep: T(E) in energy order plus the underlying
// solver report (retry/restore/failure bookkeeping per energy).
type Curve struct {
	Points []Point
	Report *sweep.Report
}

// OK returns the successfully transmitted points in energy order.
func (c *Curve) OK() []Point {
	out := make([]Point, 0, len(c.Points))
	for _, p := range c.Points {
		if p.Status == PointOK {
			out = append(out, p)
		}
	}
	return out
}

// TransmissionSweep drives the full CBS -> T(E) pipeline: sweep.Run solves
// (or restores) every energy under the retry policy, then each completed
// energy is classified, wave-matched into lead self-energies, and traced
// into a transmission value. Per-energy failures — solver or NEGF — land
// in the point's status, never sink the sweep; the returned error is
// reserved for sweep infrastructure failures (journal, fingerprint
// mismatch, cancellation), mirroring sweep.Run.
//
//cbs:cancellable
func TransmissionSweep(ctx context.Context, b operator.Backend, solve sweep.SolveFunc, spec Spec, coreOpts core.Options, cfg sweep.Config) (*Curve, error) {
	if err := spec.Device.Validate(); err != nil {
		return nil, err
	}
	rep, err := sweep.Run(ctx, solve, spec.Energies, coreOpts, cfg)
	if err != nil {
		return nil, err
	}
	curve := &Curve{Report: rep, Points: make([]Point, 0, len(rep.Results))}
	for i, er := range rep.Results {
		// The post-processing is dense per-energy algebra (self-energies +
		// a device LU); honor cancellation between energies.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		curve.Points = append(curve.Points, transmissionPoint(b, i, er, spec))
	}
	sort.Slice(curve.Points, func(i, j int) bool { return curve.Points[i].E < curve.Points[j].E })
	return curve, nil
}

// transmissionPoint post-processes one terminal energy outcome.
func transmissionPoint(b operator.Backend, index int, er sweep.EnergyResult, spec Spec) Point {
	p := Point{E: er.Energy, Status: PointFailed}
	if er.Result == nil {
		if er.Err != nil {
			p.Err = er.Err.Error()
		} else {
			p.Err = "energy " + string(er.Status)
		}
		return p
	}
	//cbs:chaossite negf.selfenergy
	if err := spec.Chaos.NEGFFault(index); err != nil {
		p.Err = err.Error()
		return p
	}
	t, leads, err := transmitOne(b, er.Result, spec)
	if err != nil {
		p.Err = err.Error()
		return p
	}
	p.Status = PointOK
	p.T = t
	p.NOpen = leads.NOpen
	p.NFill = leads.NFill
	prof := transport.DecayProfileWith([]*core.Result{er.Result},
		transport.Options{PropagatingTol: spec.Options.PropagatingTol})
	if len(prof) == 1 {
		p.Beta = prof[0].Beta
	}
	return p
}

func transmitOne(b operator.Backend, r *core.Result, spec Spec) (float64, *Leads, error) {
	leads, err := LeadSelfEnergies(b, r, spec.Options)
	if err != nil {
		return 0, nil, err
	}
	t, err := Transmission(b, r, spec.Device, leads, spec.Options)
	if err != nil {
		return 0, nil, err
	}
	return t, leads, nil
}
