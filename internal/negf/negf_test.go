package negf_test

import (
	"context"
	"errors"
	"math"
	"math/cmplx"
	"os"
	"strconv"
	"strings"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/negf"
	"cbs/internal/qep"
	"cbs/internal/sweep"
	"cbs/internal/tb"
)

func chainBackend(t *testing.T, sites int) *tb.Backend {
	t.Helper()
	b, err := tb.NewChain(tb.ChainConfig{Sites: sites, Onsite: 0, Hopping: -1, A: float64(sites)})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func solveFunc(b *tb.Backend) sweep.SolveFunc {
	return func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		return core.SolveContext(ctx, qep.NewBackend(b, e), opts)
	}
}

func chainOptions() core.Options {
	o := core.DefaultOptions()
	o.Nrh = 2
	o.Nmm = 2
	return o
}

func solveAt(t *testing.T, b *tb.Backend, e float64, opts core.Options) *core.Result {
	t.Helper()
	r, err := core.Solve(qep.NewBackend(b, e), opts)
	if err != nil {
		t.Fatalf("solve at E=%g: %v", e, err)
	}
	return r
}

// TestChainSelfEnergyAnalytic pins the wave-matching construction against
// the exact chain answer: with H+ = t e_{N-1} e_0^T and the right-moving
// primitive root mu, the surface self-energy is Sigma_R = t mu
// e_{N-1} e_{N-1}^T — which requires the lambda -> 0 basis completion to
// be the null space of H-, not any orthogonal complement.
func TestChainSelfEnergyAnalytic(t *testing.T) {
	const nc = 4
	b := chainBackend(t, nc)
	e := 0.5 // in band
	r := solveAt(t, b, e, chainOptions())
	leads, err := negf.LeadSelfEnergies(b, r, negf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if leads.NOpen != 1 {
		t.Fatalf("NOpen = %d, want 1", leads.NOpen)
	}
	if leads.NFill != 0 {
		t.Fatalf("NFill = %d: chain completion must be exact (null spaces cover it)", leads.NFill)
	}
	// Right-moving root: v = -2d t Im mu > 0 with t = -1 means Im mu > 0.
	in, out := tb.ChainRoots(0, -1, e)
	mu := in
	if imag(mu) < 0 {
		mu = out
	}
	want := complex(-1, 0) * mu // t * mu
	n := b.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			expect := complex(0, 0)
			if i == n-1 && j == n-1 {
				expect = want
			}
			if cmplx.Abs(leads.SigmaR.At(i, j)-expect) > 1e-8 {
				t.Fatalf("SigmaR[%d][%d] = %v, want %v", i, j, leads.SigmaR.At(i, j), expect)
			}
		}
	}
	// The left self-energy mirrors it on site 0: the left-moving root is
	// mu_L = 1/mu, and site N-1 of the lead cell relates to device site 0
	// by mu_L^{-1} = mu, so Sigma_L[0][0] = t mu as well (both retarded:
	// Im Sigma < 0).
	if d := cmplx.Abs(leads.SigmaL.At(0, 0) - want); d > 1e-8 {
		t.Fatalf("SigmaL[0][0] = %v, want %v", leads.SigmaL.At(0, 0), want)
	}
	if imag(leads.SigmaL.At(0, 0)) >= 0 || imag(leads.SigmaR.At(n-1, n-1)) >= 0 {
		t.Fatal("self-energies are not retarded (Im Sigma must be negative in the band)")
	}
}

// TestUniformChainQuantizedTransmission: a pristine chain device between
// identical chain leads is ballistic — T(E) is exactly the open-channel
// count: 1 inside the band, 0 in the gap.
func TestUniformChainQuantizedTransmission(t *testing.T) {
	b := chainBackend(t, 4)
	opts := chainOptions()
	dev := negf.Device{Cells: 3}
	for _, tc := range []struct {
		e    float64
		want float64
	}{
		{0.0, 1}, {0.7, 1}, {-1.5, 1}, {1.9, 1},
		{2.002, 0}, // gap, evanescent pair in the annulus
		{2.5, 0},   // deep gap, annulus empty
	} {
		r := solveAt(t, b, tc.e, opts)
		leads, err := negf.LeadSelfEnergies(b, r, negf.Options{})
		if err != nil {
			t.Fatalf("E=%g: %v", tc.e, err)
		}
		got, err := negf.Transmission(b, r, dev, leads, negf.Options{})
		if err != nil {
			t.Fatalf("E=%g: %v", tc.e, err)
		}
		if math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("T(%g) = %g, want %g", tc.e, got, tc.want)
		}
	}
}

// TestSlabTransmissionMultiOrbital exercises the matrix-valued self-energy
// path: a 2x2 slab with one open transverse mode transmits exactly 1
// through a pristine device, with the deep-evanescent modes handled by the
// orthogonal fill (they carry no current, so the O(lambda_min) fill error
// cannot touch T).
func TestSlabTransmissionMultiOrbital(t *testing.T) {
	b, err := tb.NewSlab(tb.SlabConfig{Nx: 2, Ny: 2, Onsite: 0, Hopping: -1, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := chainOptions() // Nrh*Nmm = 4 = N
	opts.Nint = 64         // sharpen the contour filter against just-outside roots
	e := -3.0              // only the lowest transverse mode is open
	r := solveAt(t, b, e, opts)
	leads, err := negf.LeadSelfEnergies(b, r, negf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if leads.NOpen != 1 {
		t.Fatalf("NOpen = %d, want 1", leads.NOpen)
	}
	got, err := negf.Transmission(b, r, negf.Device{Cells: 3}, leads, negf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("T = %g, want 1", got)
	}
}

// TestBarrierChainTunneling: a square barrier in the device attenuates the
// open channel below 1, and thickening the barrier by one cell multiplies
// T by |mu_barrier|^{2 nc} — the decay constant of the complex band inside
// the barrier, exactly the beta(E) the decay profile reports for the
// shifted chain.
func TestBarrierChainTunneling(t *testing.T) {
	const (
		nc = 4
		vb = 3.0
		e  = 0.3
	)
	b := chainBackend(t, nc)
	opts := chainOptions()
	r := solveAt(t, b, e, opts)
	leads, err := negf.LeadSelfEnergies(b, r, negf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tAt := func(barrierCells int) float64 {
		cells := barrierCells + 2
		barrier := make([]float64, cells)
		for i := 1; i <= barrierCells; i++ {
			barrier[i] = vb
		}
		got, err := negf.Transmission(b, r, negf.Device{Cells: cells, Barrier: barrier}, leads, negf.Options{})
		if err != nil {
			t.Fatalf("barrier %d cells: %v", barrierCells, err)
		}
		return got
	}
	t1, t2 := tAt(1), tAt(2)
	if !(t1 > 0 && t1 < 1) || !(t2 > 0 && t2 < t1) {
		t.Fatalf("tunneling not sub-unity/decreasing: T1=%g T2=%g", t1, t2)
	}
	// Complex band inside the barrier: the chain at shifted onsite vb.
	muB, _ := tb.ChainRoots(vb, -1, e)
	wantLog := 2 * float64(nc) * math.Log(cmplx.Abs(muB))
	gotLog := math.Log(t2 / t1)
	if math.Abs(gotLog-wantLog) > 0.05*math.Abs(wantLog) {
		t.Errorf("barrier decay: ln(T2/T1) = %g, analytic complex band gives %g", gotLog, wantLog)
	}
}

// TestTransmissionSweepAndLandauer runs the batched pipeline end to end:
// plateaus inside the band, zero in the gap, and a zero-temperature
// Landauer integral matching the analytic (1/pi) * V * T of the plateau.
func TestTransmissionSweepAndLandauer(t *testing.T) {
	b := chainBackend(t, 4)
	var es []float64
	for e := -0.5; e <= 0.501; e += 0.1 {
		es = append(es, e)
	}
	spec := negf.Spec{Energies: es, Device: negf.Device{Cells: 2}}
	curve, err := negf.TransmissionSweep(context.Background(), b, solveFunc(b), spec, chainOptions(), sweep.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.OK()) != len(es) {
		t.Fatalf("%d of %d energies transmitted", len(curve.OK()), len(es))
	}
	for _, p := range curve.Points {
		if math.Abs(p.T-1) > 1e-6 || p.NOpen != 1 {
			t.Errorf("E=%g: T=%g NOpen=%d, want plateau at 1", p.E, p.T, p.NOpen)
		}
	}
	iv := negf.LandauerIV(curve.Points, negf.BiasSpec{EFermi: 0, KT: 0, Biases: []float64{0, 0.4}})
	if len(iv) != 2 {
		t.Fatalf("IV points: %d", len(iv))
	}
	if iv[0].I != 0 {
		t.Errorf("I(0) = %g, want 0", iv[0].I)
	}
	want := 0.4 / math.Pi
	if math.Abs(iv[1].I-want) > 1e-6 {
		t.Errorf("I(0.4) = %g, want %g", iv[1].I, want)
	}
}

// chaosSeed reads the negf-smoke seed matrix (CBS_CHAOS_SEED, default 1),
// so the CI job exercises several deterministic fault patterns with one
// test body.
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// TestTransportChaosMatrix drives the negf.selfenergy chaos site through
// the pipeline: hit energies must fail with the typed injected error while
// the rest of the curve completes, and the decisions must be deterministic
// per seed. The injector seed derives from CBS_CHAOS_SEED so each matrix
// entry faults a different subset of energies; because a given seed can
// legitimately hit all or none of the five energies, the test scans
// forward deterministically for a mixed pattern rather than flaking.
func TestTransportChaosMatrix(t *testing.T) {
	b := chainBackend(t, 4)
	es := []float64{-0.4, -0.2, 0.0, 0.2, 0.4}
	run := func(seed int64) *negf.Curve {
		spec := negf.Spec{
			Energies: es,
			Device:   negf.Device{Cells: 2},
			Chaos:    chaos.New(seed, chaos.Config{NEGFFault: 0.5}),
		}
		curve, err := negf.TransmissionSweep(context.Background(), b, solveFunc(b), spec, chainOptions(), sweep.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	countFailed := func(c *negf.Curve) int {
		n := 0
		for _, p := range c.Points {
			if p.Status == negf.PointFailed {
				n++
			}
		}
		return n
	}
	// Scan from the matrix base seed for a pattern that is a genuine mix of
	// hit and clean energies (a handful of tries always suffices at rate
	// 0.5 over five energies, and the scan itself is deterministic).
	base := 100*chaosSeed() + 7
	seed := base
	var c1 *negf.Curve
	for ; seed < base+32; seed++ {
		c1 = run(seed)
		if f := countFailed(c1); f > 0 && f < len(es) {
			break
		}
	}
	failed := countFailed(c1)
	if failed == 0 || failed == len(es) {
		t.Fatalf("no mixed fault pattern in seeds [%d,%d)", base, base+32)
	}
	c2 := run(seed)
	for i, p := range c1.Points {
		if p.Status != c2.Points[i].Status || p.Err != c2.Points[i].Err {
			t.Fatalf("chaos not deterministic at E=%g: %+v vs %+v", p.E, p, c2.Points[i])
		}
		switch p.Status {
		case negf.PointFailed:
			if !strings.Contains(p.Err, chaos.ErrInjected.Error()) {
				t.Errorf("E=%g failed without the injected sentinel: %s", p.E, p.Err)
			}
		case negf.PointOK:
			if math.Abs(p.T-1) > 1e-6 {
				t.Errorf("clean energy E=%g: T=%g", p.E, p.T)
			}
		}
	}
	// Some nearby seed flips a different subset — the site really keys its
	// decisions on the seed, not just the energy index.
	same := true
	for s := seed + 1; s < seed+32 && same; s++ {
		c3 := run(s)
		for i := range c1.Points {
			if c1.Points[i].Status != c3.Points[i].Status {
				same = false
			}
		}
	}
	if same {
		t.Error("31 neighboring seeds injected identical fault sets")
	}
}

// TestDeviceValidation covers the typed failure paths.
func TestDeviceValidation(t *testing.T) {
	if err := (negf.Device{Cells: 0}).Validate(); err == nil {
		t.Error("zero-cell device validated")
	}
	if err := (negf.Device{Cells: 2, Barrier: []float64{1}}).Validate(); err == nil {
		t.Error("mis-sized barrier validated")
	}
	b := chainBackend(t, 4)
	r := solveAt(t, b, 0.5, chainOptions())
	leads, err := negf.LeadSelfEnergies(b, r, negf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := negf.Transmission(b, r, negf.Device{Cells: 0}, leads, negf.Options{}); err == nil {
		t.Error("transmission accepted invalid device")
	}
	// Over-complete mode set trips the typed basis error.
	r2 := solveAt(t, b, 0.5, chainOptions())
	for i := 0; i < 8; i++ {
		r2.Pairs = append(r2.Pairs, r2.Pairs[0])
	}
	if _, err := negf.LeadSelfEnergies(b, r2, negf.Options{}); !errors.Is(err, negf.ErrDeficientBasis) {
		t.Errorf("over-complete basis error = %v, want ErrDeficientBasis", err)
	}
}
