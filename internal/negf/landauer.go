// landauer.go integrates a transmission curve into current: the
// spin-degenerate Landauer formula in atomic units,
//
//	I(V) = (1/pi) Integral T(E) [ f(E - mu_L) - f(E - mu_R) ] dE,
//
// with mu_{L,R} = E_F +- V/2 (the bias window split symmetrically) and f
// the Fermi function at temperature kT. 1/pi is the conductance quantum
// G0 = 2 e^2/h expressed in atomic units; energies and biases are in
// hartree, so I comes out in units of e E_h / hbar / pi-per-channel —
// dimensionless multiples of G0 * (1 hartree).
package negf

import (
	"math"
	"sort"
)

// BiasSpec describes the Landauer integration.
type BiasSpec struct {
	EFermi float64   // equilibrium Fermi level (hartree)
	KT     float64   // thermal broadening (hartree); 0 = zero temperature
	Biases []float64 // bias voltages (hartree; E = e*V)
}

// IVPoint is one point of the current-voltage characteristic.
type IVPoint struct {
	V float64 `json:"v"` // bias (hartree)
	I float64 `json:"i"` // current (units of G0 * hartree)
}

// fermi is the Fermi-Dirac occupation at energy x above the chemical
// potential; kT = 0 gives the sharp step.
func fermi(x, kT float64) float64 {
	if kT <= 0 {
		switch {
		case x < 0:
			return 1
		case x > 0:
			return 0
		default:
			return 0.5
		}
	}
	return 1 / (1 + math.Exp(x/kT))
}

// LandauerIV integrates the OK points of a transmission curve over each
// bias. The curve's energy grid must cover the bias windows — T is assumed
// zero outside the sampled range, so pick the grid to span
// [EF - Vmax/2 - few kT, EF + Vmax/2 + few kT].
func LandauerIV(points []Point, bias BiasSpec) []IVPoint {
	es := make([]float64, 0, len(points))
	ts := make([]float64, 0, len(points))
	for _, p := range points {
		if p.Status == PointOK {
			es = append(es, p.E)
			ts = append(ts, p.T)
		}
	}
	idx := make([]int, len(es))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return es[idx[i]] < es[idx[j]] })

	out := make([]IVPoint, 0, len(bias.Biases))
	for _, v := range bias.Biases {
		muL := bias.EFermi + v/2
		muR := bias.EFermi - v/2
		integrand := func(k int) float64 {
			e := es[idx[k]]
			return ts[idx[k]] * (fermi(e-muL, bias.KT) - fermi(e-muR, bias.KT))
		}
		var integral float64
		for k := 0; k+1 < len(idx); k++ {
			h := es[idx[k+1]] - es[idx[k]]
			integral += 0.5 * h * (integrand(k) + integrand(k+1))
		}
		out = append(out, IVPoint{V: v, I: integral / math.Pi})
	}
	return out
}
