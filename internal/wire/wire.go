// Package wire is the binary framing of the TCP transports: the network
// sibling of internal/journal's CRC-framed JSONL. A frame is
//
//	[4]  uint32 LE  payload length
//	[1]  kind
//	[1]  src        link-local identity of the sender
//	[1]  dst        link-local identity of the receiver
//	[1]  flags      (reserved, zero)
//	[8]  uint64 LE  per-link sequence number
//	[n]  payload
//	[4]  uint32 LE  CRC-32C over header+payload
//
// The CRC is Castagnoli, the same polynomial the journals use, computed
// over the header and payload together so a bit flip in the length or
// sequence fields is as detectable as one in the payload. A frame that
// fails the check surfaces as ErrFrameCorrupt and the reader must treat
// the stream as unusable from that byte on (lengths can no longer be
// trusted); the reliable links respond by resetting the connection and
// resynchronizing from their sequence numbers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Frame kinds of the reliable links. Application protocols ride inside
// KindData payloads; the remaining kinds are link control.
const (
	// KindHello opens (or reopens) a link: the payload is the sender's
	// next expected receive sequence, so the peer knows where to resume
	// retransmission after a reconnect.
	KindHello byte = 1
	// KindData carries one application payload at Frame.Seq.
	KindData byte = 2
	// KindNak asks the peer to retransmit its outbox from Frame.Seq.
	KindNak byte = 3
	// KindLost answers a Nak for a sequence the outbox no longer holds:
	// the link cannot be healed and both ends must surface ErrPeerLost.
	KindLost byte = 4
)

const (
	headerLen = 16
	crcLen    = 4
)

// ErrFrameCorrupt means a frame failed its CRC or framing check: the
// stream cannot be trusted past this point and the link must reset.
var ErrFrameCorrupt = errors.New("wire: corrupt frame")

// crcTable is Castagnoli CRC-32, matching the journal framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one message of a reliable link.
type Frame struct {
	Kind     byte
	Src, Dst byte
	Seq      uint64
	Payload  []byte
}

// Append serializes f onto buf and returns the extended slice.
func Append(buf []byte, f Frame) []byte {
	start := len(buf)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(f.Payload)))
	hdr[4] = f.Kind
	hdr[5] = f.Src
	hdr[6] = f.Dst
	hdr[7] = 0
	binary.LittleEndian.PutUint64(hdr[8:16], f.Seq)
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.Payload...)
	crc := crc32.Checksum(buf[start:], crcTable)
	var tail [crcLen]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// Write serializes f to w in a single Write call (one frame, one syscall,
// so a concurrent writer on the same conn cannot interleave mid-frame).
func Write(w io.Writer, f Frame) error {
	buf := Append(make([]byte, 0, headerLen+len(f.Payload)+crcLen), f)
	_, err := w.Write(buf)
	return err
}

// Read decodes the next frame from r. maxPayload bounds the length field
// before any allocation, so a corrupt length cannot balloon memory; frames
// failing the bound or the CRC return ErrFrameCorrupt. Transport errors
// from r (timeouts, closed conns) pass through unwrapped.
func Read(r io.Reader, maxPayload int) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if int64(n) > int64(maxPayload) {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrameCorrupt, n, maxPayload)
	}
	body := make([]byte, int(n)+crcLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	crc := crc32.Checksum(hdr[:], crcTable)
	crc = crc32.Update(crc, crcTable, body[:n])
	if binary.LittleEndian.Uint32(body[n:]) != crc {
		return Frame{}, fmt.Errorf("%w: crc mismatch", ErrFrameCorrupt)
	}
	return Frame{
		Kind:    hdr[4],
		Src:     hdr[5],
		Dst:     hdr[6],
		Seq:     binary.LittleEndian.Uint64(hdr[8:16]),
		Payload: body[:n:n],
	}, nil
}

// AppendComplex serializes v as little-endian float64 (re, im) pairs; the
// exact IEEE bits round-trip, so a value sent over the wire compares
// bit-identical to one passed through a channel.
func AppendComplex(buf []byte, v []complex128) []byte {
	for _, z := range v {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(real(z)))
		binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(imag(z)))
		buf = append(buf, b[:]...)
	}
	return buf
}

// DecodeComplex parses an AppendComplex payload.
func DecodeComplex(b []byte) ([]complex128, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("%w: complex payload length %d not a multiple of 16", ErrFrameCorrupt, len(b))
	}
	out := make([]complex128, len(b)/16)
	for i := range out {
		re := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
		out[i] = complex(re, im)
	}
	return out, nil
}
