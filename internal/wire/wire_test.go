package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestFrameRoundTrip: every header field and the payload survive
// Write/Read unchanged, including empty payloads and max sequence numbers.
func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindHello, Src: 1, Dst: 2, Seq: 0, Payload: nil},
		{Kind: KindData, Src: 0, Dst: 255, Seq: 1, Payload: []byte("halo slab")},
		{Kind: KindNak, Src: 7, Dst: 7, Seq: math.MaxUint64, Payload: []byte{0}},
		{Kind: KindLost, Src: 255, Dst: 0, Seq: 1 << 40, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := Write(&buf, f); err != nil {
			t.Fatalf("write %+v: %v", f, err)
		}
	}
	for i, want := range frames {
		got, err := Read(&buf, 1<<16)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst || got.Seq != want.Seq {
			t.Errorf("frame %d header: got %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d payload: %d bytes, want %d", i, len(got.Payload), len(want.Payload))
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d trailing bytes after reading all frames", buf.Len())
	}
}

// TestFrameCorruption: a bit flip anywhere in the frame — length, kind,
// sequence, payload, or CRC — surfaces as ErrFrameCorrupt, never as a
// silently wrong frame. (A length flip may also read as a short stream;
// both are failures, neither is silent.)
func TestFrameCorruption(t *testing.T) {
	base := Append(nil, Frame{Kind: KindData, Src: 3, Dst: 4, Seq: 99, Payload: []byte("payload bytes")})
	for bit := 0; bit < len(base)*8; bit++ {
		corrupt := append([]byte(nil), base...)
		corrupt[bit/8] ^= 1 << (bit % 8)
		f, err := Read(bytes.NewReader(corrupt), 1<<16)
		if err == nil {
			t.Fatalf("bit flip at %d accepted: %+v", bit, f)
		}
		// Flips in the length field can leave the reader waiting for bytes
		// that never come (io errors); everything else must be typed.
		if bit >= 32 && !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("bit flip at %d: error not typed: %v", bit, err)
		}
	}
}

// TestFrameLengthBound: a frame whose length field exceeds maxPayload is
// refused before any allocation, typed ErrFrameCorrupt.
func TestFrameLengthBound(t *testing.T) {
	big := Append(nil, Frame{Kind: KindData, Payload: make([]byte, 2048)})
	if _, err := Read(bytes.NewReader(big), 1024); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized frame: got %v, want ErrFrameCorrupt", err)
	}
	// At the bound it must pass.
	if _, err := Read(bytes.NewReader(big), 2048); err != nil {
		t.Fatalf("frame at the bound refused: %v", err)
	}
}

// TestFrameTruncation: a stream cut mid-frame (crash or half-close) reads
// as an io error, not a corrupt-but-accepted frame.
func TestFrameTruncation(t *testing.T) {
	full := Append(nil, Frame{Kind: KindData, Seq: 5, Payload: []byte("truncate me")})
	for cut := 0; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]), 1<<16)
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: %v, want io error", cut, err)
		}
	}
}

// TestComplexCodec: IEEE-754 bits round-trip exactly, including zeros,
// negative zero, denormals, infinities, and NaN payloads — the transport
// must be bit-transparent for the halo exchange to stay deterministic.
func TestComplexCodec(t *testing.T) {
	vals := []complex128{
		0,
		complex(math.Copysign(0, -1), 0),
		complex(1.5, -2.25),
		complex(math.SmallestNonzeroFloat64, math.MaxFloat64),
		complex(math.Inf(1), math.Inf(-1)),
		complex(math.NaN(), 42),
	}
	buf := AppendComplex(nil, vals)
	got, err := DecodeComplex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		gr, gi := math.Float64bits(real(got[i])), math.Float64bits(imag(got[i]))
		wr, wi := math.Float64bits(real(vals[i])), math.Float64bits(imag(vals[i]))
		if gr != wr || gi != wi {
			t.Errorf("value %d: bits (%x,%x), want (%x,%x)", i, gr, gi, wr, wi)
		}
	}
	if _, err := DecodeComplex(buf[:len(buf)-1]); !errors.Is(err, ErrFrameCorrupt) {
		t.Errorf("ragged complex payload: got %v, want ErrFrameCorrupt", err)
	}
}
