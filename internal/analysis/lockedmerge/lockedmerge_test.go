package lockedmerge_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/lockedmerge"
)

func TestLockedMerge(t *testing.T) {
	analysistest.Run(t, lockedmerge.Analyzer, "testdata/src/core")
}

func TestLockedMergeSweep(t *testing.T) {
	analysistest.Run(t, lockedmerge.Analyzer, "testdata/src/sweep")
}
