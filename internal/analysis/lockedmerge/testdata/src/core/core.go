// Package core is the lockedmerge fixture: its name puts it in the
// analyzer's scope, and it exercises the depth rule — shared-state ops at
// loop depth 1 (per point) are sanctioned, at depth >= 2 (per column) they
// are flagged. Function literals are independent worker scopes.
package core

import (
	"context"
	"sync"

	"cbs/internal/analysis/lockedmerge/testdata/src/ssm"
)

type stats struct {
	mu  sync.Mutex
	sum float64
}

// add locks outside any loop: fine.
func (s *stats) add(v float64) {
	s.mu.Lock()
	s.sum += v
	s.mu.Unlock()
}

// perPoint accumulates a point locally and merges once per point (depth 1):
// the sanctioned pattern.
func perPoint(points [][]float64, s *stats) {
	for _, p := range points {
		local := 0.0
		for _, v := range p {
			local += v
		}
		s.mu.Lock()
		s.sum += local
		s.mu.Unlock()
	}
}

// perColumn locks once per element (depth 2): the regression this analyzer
// exists to catch.
func perColumn(points [][]float64, s *stats) {
	for _, p := range points {
		for _, v := range p {
			s.mu.Lock() // want `Mutex\.Lock in a nested \(per-column\) loop`
			s.sum += v
			s.mu.Unlock() // want `Mutex\.Unlock in a nested \(per-column\) loop`
		}
	}
}

// workerSend is clean: the goroutine body is its own scope, so the send
// sits at depth 1 there.
func workerSend(points [][]float64, out chan<- float64) {
	go func() {
		for _, p := range points {
			local := 0.0
			for _, v := range p {
				local += v
			}
			out <- local
		}
	}()
}

// columnSend sends per column (depth 2): flagged.
func columnSend(points [][]float64, out chan<- float64) {
	for _, p := range points {
		for _, v := range p {
			out <- v // want `channel send in a nested \(per-column\) loop`
		}
	}
}

// columnMerge calls the internally-locking accumulator per column: flagged.
func columnMerge(points [][]complex128, acc *ssm.Accumulator) {
	for _, p := range points {
		for c, v := range p {
			acc.Add(c, v) // want `Accumulator\.Add locks internally and is called in a nested \(per-column\) loop`
		}
	}
}

// pointMerge buffers a point's columns and merges once per point: clean.
func pointMerge(points [][]complex128, buf []complex128, acc *ssm.Accumulator) {
	for _, p := range points {
		for c, v := range p {
			buf[c] = v
		}
		acc.AddInterleaved(buf[:len(p)])
	}
}

// columnCancelPoll receives from the context's cancellation channel per
// column: exempt — cancellation plumbing holds no lock and must be allowed
// to notice a dead solve at any depth.
func columnCancelPoll(ctx context.Context, points [][]float64) float64 {
	local := 0.0
	for _, p := range points {
		for _, v := range p {
			select {
			case <-ctx.Done():
				return local
			default:
			}
			local += v
		}
	}
	return local
}

// columnCancelRecv is the blocking form of the same idiom: also exempt.
func columnCancelRecv(ctx context.Context, points [][]float64, done bool) {
	for _, p := range points {
		for range p {
			if done {
				<-ctx.Done()
				return
			}
		}
	}
}

// columnMixedSelect waits on a data channel alongside cancellation per
// column: the data receive makes it a real synchronization point, flagged.
func columnMixedSelect(ctx context.Context, points [][]float64, in <-chan float64) float64 {
	local := 0.0
	for _, p := range points {
		for range p {
			select { // want `select in a nested \(per-column\) loop`
			case <-ctx.Done():
				return local
			case v := <-in: // want `channel receive in a nested \(per-column\) loop`
				local += v
			}
		}
	}
	return local
}
