// Package ssm is a fixture helper mimicking the real moment accumulator:
// the lockedmerge analyzer recognizes Accumulator methods by package name
// and receiver type. This package itself must stay diagnostic-free.
package ssm

import "sync"

// Accumulator is an internally-locked merge target.
type Accumulator struct {
	mu  sync.Mutex
	sum []complex128
}

// Add merges one column contribution under the internal lock.
func (a *Accumulator) Add(col int, v complex128) {
	a.mu.Lock()
	a.sum[col] += v
	a.mu.Unlock()
}

// AddInterleaved merges one point's worth of columns in one acquisition.
func (a *Accumulator) AddInterleaved(vals []complex128) {
	a.mu.Lock()
	for i, v := range vals {
		a.sum[i] += v
	}
	a.mu.Unlock()
}
