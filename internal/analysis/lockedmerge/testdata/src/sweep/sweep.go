// Package sweep is the lockedmerge fixture for the sweep engine: its name
// puts it in the analyzer's scope with the energy as the unit of merge. A
// worker merges one energy's outcome (result slot + journal append) at loop
// depth 1; journaling per attempt or per eigenpair (depth >= 2) is the
// regression this fixture pins.
package sweep

import "sync"

// Record mimics one per-energy journal entry.
type Record struct {
	Index int
	Pairs []float64
}

// Journal mimics the internally-locked checkpoint log.
type Journal struct {
	mu   sync.Mutex
	recs []Record
}

// Append merges one energy record under the internal lock (depth 0 here).
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	j.recs = append(j.recs, rec)
	j.mu.Unlock()
	return nil
}

// perEnergyWorker is the sanctioned shape: the goroutine body is its own
// scope, each energy is pulled off the shared queue and its completed
// record journaled once (depth 1).
func perEnergyWorker(jobs <-chan int, results []Record, j *Journal) {
	go func() {
		for i := range jobs {
			rec := Record{Index: i}
			results[i] = rec
			j.Append(rec)
		}
	}()
}

// perAttemptJournal checkpoints inside the retry loop (depth 2): a partial
// attempt is not a terminal outcome and must not reach the journal.
func perAttemptJournal(jobs <-chan int, j *Journal) {
	go func() {
		for i := range jobs {
			for attempt := 0; attempt < 3; attempt++ {
				j.Append(Record{Index: i}) // want `Journal\.Append locks internally and is called in a nested \(per-column\) loop`
			}
		}
	}()
}

// perPairJournal journals per eigenpair (depth 2): flagged.
func perPairJournal(energies [][]float64, j *Journal) {
	for i, pairs := range energies {
		for range pairs {
			j.Append(Record{Index: i}) // want `Journal\.Append locks internally and is called in a nested \(per-column\) loop`
		}
	}
}

// perPairLock takes the report mutex per pair (depth 2): flagged by the
// general mutex rule.
func perPairLock(energies [][]float64, mu *sync.Mutex, out []float64) {
	for _, pairs := range energies {
		for p, v := range pairs {
			mu.Lock() // want `Mutex\.Lock in a nested \(per-column\) loop`
			out[p] += v
			mu.Unlock() // want `Mutex\.Unlock in a nested \(per-column\) loop`
		}
	}
}

// perEnergyMerge buffers the pairs locally and merges once per energy:
// clean.
func perEnergyMerge(energies [][]float64, mu *sync.Mutex, out []float64) {
	for range energies {
		local := 0.0
		for _, pairs := range energies {
			for _, v := range pairs {
				local += v
			}
		}
		mu.Lock()
		out[0] += local
		mu.Unlock()
	}
}
