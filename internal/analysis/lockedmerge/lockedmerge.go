// Package lockedmerge enforces the per-worker statistics-merge discipline
// of the parallel solve layers (internal/core and internal/dist): shared
// state may be touched once per quadrature point (loop depth 1 inside a
// worker body), never once per column or per element (loop depth >= 2).
//
// Inside the scoped packages the analyzer flags, at nesting depth >= 2
// within one function body (each function literal — a goroutine body — is
// its own scope):
//
//   - mutex acquisition (any .Lock/.RLock/.Unlock/.RUnlock call)
//   - channel sends, receives, and select statements
//   - calls into the known internally-locking merge APIs:
//     ssm.Accumulator.{Add,AddInterleaved,AddBlock} and
//     linsolve.GroupStop.{MarkConverged,ShouldStop,Converged}
//
// Depth 1 is deliberately legal: pulling a point off the shared queue and
// merging that point's worker-local stats under the global mutex is exactly
// the pattern PR 1 established; the regression this guards against is the
// old per-column locking that serialized the top parallel layer.
//
// Cancellation plumbing is exempt: receiving from a context's Done channel
// (`<-ctx.Done()`, including inside a select whose other arm is only a
// default) is how a worker notices a dead solve, carries no lock, and is
// legal at any depth.
package lockedmerge

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbs/internal/analysis/framework"
)

// Analyzer is the lockedmerge analysis.
var Analyzer = &framework.Analyzer{
	Name: "lockedmerge",
	Doc:  "forbid locks, channel ops and locking merge APIs in per-column loops of the parallel solve layers",
	Run:  run,
}

// ScopedPackages names (by package name) the packages under this rule. For
// core and dist the unit of merge is the quadrature point; for sweep it is
// the energy — a sweep worker merges its per-energy outcome (result slot +
// journal append) once per energy, never inside a per-attempt or per-pair
// loop.
var ScopedPackages = map[string]bool{
	"core":  true,
	"dist":  true,
	"sweep": true,
}

// lockMethodNames are method names treated as mutex acquisition wherever
// they appear.
var lockMethodNames = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
}

// lockingAPIs maps "Type.Method" of known internally-locking merge APIs,
// per defining package name.
var lockingAPIs = map[string]map[string]bool{
	"ssm": {
		"Accumulator.Add":            true,
		"Accumulator.AddInterleaved": true,
		"Accumulator.AddBlock":       true,
	},
	"linsolve": {
		"GroupStop.MarkConverged": true,
		"GroupStop.ShouldStop":    true,
		"GroupStop.Converged":     true,
	},
	"sweep": {
		"Journal.Append": true,
	},
}

func run(pass *framework.Pass) error {
	if !ScopedPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				checkScope(pass, decl.Body)
			}
		}
	}
	return nil
}

// checkScope walks one function body (a FuncDecl body or a goroutine/
// closure literal body) tracking loop depth.
func checkScope(pass *framework.Pass, body *ast.BlockStmt) {
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, n.Body) // fresh worker scope
			return false
		case *ast.ForStmt:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.RangeStmt:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.SendStmt:
			if depth >= 2 {
				pass.Reportf(n.Pos(), "channel send in a nested (per-column) loop; move it to the per-point level")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && depth >= 2 && !isCtxDone(pass, n.X) {
				pass.Reportf(n.Pos(), "channel receive in a nested (per-column) loop; move it to the per-point level")
			}
		case *ast.SelectStmt:
			if depth >= 2 && !isCancellationPoll(pass, n) {
				pass.Reportf(n.Pos(), "select in a nested (per-column) loop; move it to the per-point level")
			}
		case *ast.CallExpr:
			if depth >= 2 {
				checkCall(pass, n)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	recv := receiverTypeName(fn)
	if recv == "" {
		return
	}
	if lockMethodNames[fn.Name()] {
		pass.Reportf(call.Pos(), "%s.%s in a nested (per-column) loop; merge worker-local state once per point instead", recv, fn.Name())
		return
	}
	if fn.Pkg() != nil {
		if apis, ok := lockingAPIs[fn.Pkg().Name()]; ok && apis[recv+"."+fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s locks internally and is called in a nested (per-column) loop; accumulate locally and merge once per point", recv, fn.Name())
		}
	}
}

// isCtxDone reports whether expr is a Done() call on a context.Context —
// the cancellation channel. Receiving from it is the sanctioned way for a
// worker to notice a dead solve: it holds no lock and never contends with
// the merge path, so it is exempt from the depth rule.
func isCtxDone(pass *framework.Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return tv.Type.String() == "context.Context"
}

// isCancellationPoll reports whether the select is pure cancellation
// plumbing: every case is either a receive from a context's Done channel or
// the default clause (the non-blocking poll idiom).
func isCancellationPoll(pass *framework.Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			return false
		}
		if cc.Comm == nil {
			continue // default clause
		}
		var recv ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		ue, ok := recv.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW || !isCtxDone(pass, ue.X) {
			return false
		}
	}
	return true
}

// receiverTypeName returns the bare receiver type name of a method ("" for
// plain functions), stripping any pointer.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	s := t.String()
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	return s
}
