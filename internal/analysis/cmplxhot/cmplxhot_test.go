package cmplxhot_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/cmplxhot"
)

func TestCmplxHot(t *testing.T) {
	analysistest.Run(t, cmplxhot.Analyzer, "testdata/src/loops")
}
