// Package loops is the cmplxhot fixture. The marker annotation below puts
// the whole package in scope (the analyzer polices any package containing a
// //cbs:hotpath function).
package loops

import "math/cmplx"

//cbs:hotpath
func marker(x []complex128) {
	for i := range x {
		x[i] += 1
	}
}

func sumAbs(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		s += cmplx.Abs(v) // want `cmplx\.Abs in a hot-path loop`
	}
	return s
}

func roots(x []complex128) {
	for i := range x {
		x[i] = cmplx.Sqrt(x[i]) // want `cmplx\.Sqrt in a hot-path loop`
	}
}

func scale(x []complex128, z complex128) {
	for i := range x {
		x[i] = x[i] / z // want `loop-invariant complex division`
	}
}

func scaleAssign(x []complex128, z complex128) {
	for i := range x {
		x[i] /= z // want `loop-invariant complex division`
	}
}

// scaleHoisted is the sanctioned pattern: reciprocal outside, multiply
// inside.
func scaleHoisted(x []complex128, z complex128) {
	zi := 1 / z
	for i := range x {
		x[i] *= zi
	}
}

// perElement divides by an indexed value: variant, silent.
func perElement(x, y []complex128) {
	for i := range x {
		x[i] = x[i] / y[i]
	}
}

// recurrence divides by a value the loop itself updates: variant, silent.
// This is the BiCG alpha/beta shape the analyzer must not flag.
func recurrence(x []complex128) complex128 {
	acc := complex(1, 0)
	for _, v := range x {
		acc = acc / (acc + v)
	}
	return acc
}

// absOutsideLoop is silent: the cost rule only applies inside loops.
func absOutsideLoop(z complex128) float64 {
	return cmplx.Abs(z)
}
