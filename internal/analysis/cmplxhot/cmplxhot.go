// Package cmplxhot polices complex-arithmetic discipline inside loops of
// hot-path packages (any package containing a //cbs:hotpath annotation):
//
//   - cmplx.Abs and cmplx.Sqrt inside a loop: magnitude *comparisons*
//     should use real*real+imag*imag (the codebase's cabs2 idiom) — the
//     square root is a serial dependency that the fused kernels avoid.
//   - loop-invariant complex division inside a loop: dividing every
//     element by the same z re-runs the expensive complex-divide
//     algorithm per element; hoist the reciprocal (zi := 1/z) and
//     multiply, as the distributed apply kernel does.
//
// A division is considered loop-invariant only when every variable in the
// divisor is assigned outside all enclosing loops of the function and is
// not a loop variable; divisors containing calls or indexing are treated
// as variant (conservative: no false positives on per-column scalars such
// as rho[c]/dots[c] in the BiCG recurrences).
package cmplxhot

import (
	"go/ast"
	"go/token"
	"go/types"

	"cbs/internal/analysis/framework"
)

// Analyzer is the cmplxhot analysis.
var Analyzer = &framework.Analyzer{
	Name: "cmplxhot",
	Doc:  "flag cmplx.Abs/cmplx.Sqrt and hoistable complex division inside loops of hot-path packages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if len(framework.HotFuncs(pass.Files, pass.TypesInfo)) == 0 {
		return nil // not a hot-path package
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				checkFunc(pass, decl)
			}
		}
	}
	return nil
}

// loopScope tracks one enclosing loop and the objects it assigns.
type loopScope struct {
	assigned map[types.Object]bool
}

func checkFunc(pass *framework.Pass, decl *ast.FuncDecl) {
	var loops []*loopScope
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure is its own kernel scope; recurse with a fresh stack.
			saved := loops
			loops = nil
			ast.Inspect(n.Body, walk)
			loops = saved
			return false
		case *ast.ForStmt:
			loops = append(loops, &loopScope{assigned: assignedObjects(pass, n)})
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			if n.Cond != nil {
				ast.Inspect(n.Cond, walk)
			}
			if n.Post != nil {
				ast.Inspect(n.Post, walk)
			}
			ast.Inspect(n.Body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.RangeStmt:
			loops = append(loops, &loopScope{assigned: assignedObjects(pass, n)})
			ast.Inspect(n.X, walk)
			ast.Inspect(n.Body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			if len(loops) > 0 {
				checkCmplxCall(pass, n)
			}
		case *ast.BinaryExpr:
			if len(loops) > 0 && n.Op == token.QUO {
				checkDivision(pass, n, loops)
			}
		case *ast.AssignStmt:
			if len(loops) > 0 && len(n.Lhs) == 1 && n.Tok == token.QUO_ASSIGN {
				checkQuoAssign(pass, n, loops)
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
}

// assignedObjects collects every object assigned anywhere in the loop
// (including its init/post/range clause), so invariance checks can test
// divisor variables against it.
func assignedObjects(pass *framework.Pass, loop ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			record(n.Key)
			record(n.Value)
		}
		return true
	})
	return out
}

func checkCmplxCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/cmplx" {
		return
	}
	switch fn.Name() {
	case "Abs":
		pass.Reportf(call.Pos(), "cmplx.Abs in a hot-path loop: compare squared magnitudes (real*real+imag*imag) instead")
	case "Sqrt":
		pass.Reportf(call.Pos(), "cmplx.Sqrt in a hot-path loop: hoist it or restructure to avoid the per-element root")
	}
}

func checkDivision(pass *framework.Pass, div *ast.BinaryExpr, loops []*loopScope) {
	t := pass.TypesInfo.TypeOf(div)
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsComplex == 0 {
		return
	}
	if divisorInvariant(pass, div.Y, loops) {
		pass.Reportf(div.Pos(), "loop-invariant complex division: hoist the reciprocal out of the loop and multiply")
	}
}

func checkQuoAssign(pass *framework.Pass, as *ast.AssignStmt, loops []*loopScope) {
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsComplex == 0 {
		return
	}
	if divisorInvariant(pass, as.Rhs[0], loops) {
		pass.Reportf(as.Pos(), "loop-invariant complex division: hoist the reciprocal out of the loop and multiply")
	}
}

// divisorInvariant reports whether the divisor expression is hoistable out
// of every enclosing loop: only identifiers (constants, loop-outer
// variables) and selector chains over them, no calls, no indexing, and no
// variable assigned by any enclosing loop.
func divisorInvariant(pass *framework.Pass, e ast.Expr, loops []*loopScope) bool {
	invariant := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.FuncLit:
			invariant = false
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			for _, l := range loops {
				if l.assigned[obj] {
					invariant = false
				}
			}
		}
		return invariant
	})
	return invariant
}
