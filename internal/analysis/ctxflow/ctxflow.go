// Package ctxflow enforces the cancellation-plumbing discipline that PR 3
// threaded through the solve stack (Solve -> solveAll -> solvePointsDist ->
// dist.SolveDual): once a context enters a call chain it must flow to the
// leaf, because the first fatal fault cancels all workers through it and a
// dropped context silently detaches a subtree from that signal.
//
// In library code (non-main packages, non-test files) the analyzer flags:
//
//   - context.Background() / context.TODO() calls. The only structural
//     exemption is the nil-default idiom
//
//     if ctx == nil { ctx = context.Background() }
//
//     which *joins* a caller-less entry point to the plumbing rather than
//     forking away from it. Anything else needs a //cbs:ctxescape waiver
//     with a reason (detached lifetimes like the jobs base context, or
//     public pre-context compatibility wrappers).
//
//   - dropped contexts: a function that has a context.Context parameter
//     but calls a context-less function F when the same package also
//     exports (or declares) a context-accepting sibling FContext. The
//     sibling convention is how this codebase names its plumbed variants
//     (Solve/SolveContext, EnergyScan/EnergyScanContext), so calling the
//     bare form from a plumbed frame is always a dropped cancellation.
//
//   - //cbs:cancellable contract violations: a function annotated as a
//     long-running cancellable loop must (a) carry a context parameter,
//     (b) actually contain a loop, and (c) poll cancellation inside a loop
//     (<-ctx.Done(), a select over it, or a ctx.Err() check). A worker
//     loop that promises cancellability and delivers none is exactly the
//     regression that turns a canceled sweep into a hung process.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"cbs/internal/analysis/framework"
)

// Analyzer is the ctxflow analysis.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO and dropped contexts in library code; check //cbs:cancellable loops poll ctx",
	Run:  run,

	TestAware: true,
}

// WaiverDirective is the escape hatch: //cbs:ctxescape <reason>.
const WaiverDirective = "ctxescape"

// CancellableDirective marks a long-running loop that must poll ctx.
const CancellableDirective = "cancellable"

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // process entry points own their root contexts
	}
	waivers := framework.NewWaivers(pass, WaiverDirective)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue // tests own their root contexts too
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkFunc(pass, waivers, decl)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, waivers *framework.Waivers, decl *ast.FuncDecl) {
	ctxParams := contextParams(pass, decl)
	checkCancellable(pass, decl, ctxParams)

	// Track the enclosing statement chain so the nil-default idiom can be
	// recognized structurally: ctx = context.Background() guarded by an
	// if ctx == nil test on the same object.
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			if name := rootContextCall(pass, call); name != "" {
				if !isNilDefault(pass, stack) && !waivers.Waived(call.Pos(), WaiverDirective) {
					pass.Reportf(call.Pos(), "context.%s() in library code forks away from the caller's cancellation; take a ctx parameter (or waive with //cbs:ctxescape <reason>)", name)
				}
			} else if len(ctxParams) > 0 {
				checkDroppedCtx(pass, waivers, call)
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
}

// contextParams returns the objects of the function's context.Context
// parameters (including method receivers' signatures' params only — not
// results).
func contextParams(pass *framework.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// rootContextCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func rootContextCall(pass *framework.Pass, call *ast.CallExpr) string {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isNilDefault reports whether the stack (innermost last) is the sanctioned
// nil-default idiom: the Background() call is the sole RHS of an assignment
// to an identifier x, directly inside an if whose condition is x == nil.
func isNilDefault(pass *framework.Pass, stack []ast.Node) bool {
	// stack[...]= IfStmt > BlockStmt > AssignStmt > CallExpr
	if len(stack) < 4 {
		return false
	}
	call, _ := stack[len(stack)-1].(*ast.CallExpr)
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != call {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	ifStmt, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok || stack[len(stack)-3] != ifStmt.Body {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	var condIdent *ast.Ident
	switch {
	case isNilIdent(pass, cond.Y):
		condIdent, _ = ast.Unparen(cond.X).(*ast.Ident)
	case isNilIdent(pass, cond.X):
		condIdent, _ = ast.Unparen(cond.Y).(*ast.Ident)
	}
	return condIdent != nil &&
		pass.TypesInfo.Uses[condIdent] == pass.TypesInfo.Uses[lhs] &&
		pass.TypesInfo.Uses[condIdent] != nil
}

func isNilIdent(pass *framework.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// checkDroppedCtx flags calls to F from a ctx-carrying frame when the
// callee's package declares a context-accepting sibling FContext.
func checkDroppedCtx(pass *framework.Pass, waivers *framework.Waivers, call *ast.CallExpr) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || acceptsContext(sig) {
		return // already plumbed (or not inspectable)
	}
	sibling, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Context").(*types.Func)
	if !ok {
		return
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || !acceptsContext(ssig) {
		return
	}
	if waivers.Waived(call.Pos(), WaiverDirective) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s drops this function's ctx; call %sContext to keep the cancellation chain", fn.Pkg().Name(), fn.Name(), fn.Name())
}

// acceptsContext reports whether any parameter of sig is a context.Context.
func acceptsContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// checkCancellable enforces the //cbs:cancellable contract.
func checkCancellable(pass *framework.Pass, decl *ast.FuncDecl, ctxParams map[types.Object]bool) {
	if _, ok := framework.Directive(decl, CancellableDirective); !ok {
		return
	}
	if len(ctxParams) == 0 {
		pass.Reportf(decl.Pos(), "//cbs:cancellable function %s has no context.Context parameter to cancel through", decl.Name.Name)
		return
	}
	hasLoop := false
	polls := false
	var inLoop func(n ast.Node, depth int)
	inLoop = func(root ast.Node, depth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				hasLoop = true
				inLoop(n.Body, depth+1)
				return false
			case *ast.RangeStmt:
				hasLoop = true
				inLoop(n.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth > 0 && isCtxMethod(pass, n, "Err", "Done") {
					polls = true
				}
			}
			return true
		})
	}
	inLoop(decl.Body, 0)
	switch {
	case !hasLoop:
		pass.Reportf(decl.Pos(), "//cbs:cancellable function %s has no loop: the annotation is stale", decl.Name.Name)
	case !polls:
		pass.Reportf(decl.Pos(), "//cbs:cancellable function %s never polls ctx.Done()/ctx.Err() inside its loop; a canceled solve would run to completion", decl.Name.Name)
	}
}

// isCtxMethod reports whether call is ctx.<one of names>() on a
// context.Context value.
func isCtxMethod(pass *framework.Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isContextType(tv.Type)
}
