package ctxflow_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/ctxfix")
}
