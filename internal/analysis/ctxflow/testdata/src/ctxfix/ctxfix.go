// Package ctxfix is the ctxflow fixture: every diagnostic of the analyzer
// has a positive case here, and each sanctioned shape (nil-default idiom,
// reasoned waiver, Context-sibling call) a negative one.
package ctxfix

import "context"

// Work is the bare form of a sibling pair.
func Work() int { return 1 }

// WorkContext is the plumbed sibling of Work.
func WorkContext(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return 1
}

// Solo has no Context sibling, so calling it never drops anything.
func Solo() int { return 2 }

// forksRoot forks away from every caller's cancellation.
func forksRoot() context.Context {
	return context.Background() // want `context\.Background\(\) in library code forks away`
}

// forksTODO is the same violation spelled TODO.
func forksTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library code forks away`
}

// nilDefault is the sanctioned entry-point idiom: joining, not forking.
func nilDefault(ctx context.Context) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return WorkContext(ctx)
}

// waived documents a deliberate detached lifetime.
func waived() context.Context {
	//cbs:ctxescape fixture models a detached background lifetime
	return context.Background()
}

// waivedNoReason forgets the mandatory reason string.
func waivedNoReason() context.Context {
	//cbs:ctxescape
	return context.Background() // want `//cbs:ctxescape waiver without a reason`
}

// dropsCtx calls the bare form from a plumbed frame.
func dropsCtx(ctx context.Context) int {
	_ = ctx
	return Work() // want `call to ctxfix\.Work drops this function's ctx; call WorkContext`
}

// keepsCtx forwards through the sibling: clean.
func keepsCtx(ctx context.Context) int {
	return WorkContext(ctx) + Solo()
}

// dropWaived documents why the bare call is sound here.
func dropWaived(ctx context.Context) int {
	_ = ctx
	//cbs:ctxescape fixture: result is pure, cancellation is checked by the caller
	return Work()
}

//cbs:cancellable
func noCtxParam(xs []int) int { // want `//cbs:cancellable function noCtxParam has no context\.Context parameter`
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//cbs:cancellable
func noLoop(ctx context.Context) error { // want `//cbs:cancellable function noLoop has no loop: the annotation is stale`
	return ctx.Err()
}

//cbs:cancellable
func neverPolls(ctx context.Context, xs []int) int { // want `//cbs:cancellable function neverPolls never polls ctx\.Done\(\)/ctx\.Err\(\) inside its loop`
	_ = ctx.Err() // polled outside the loop: does not count
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//cbs:cancellable
func pollsDone(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return s
		default:
		}
		s += x
	}
	return s
}

//cbs:cancellable
func pollsErr(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return s
		}
		s += i
	}
	return s
}
