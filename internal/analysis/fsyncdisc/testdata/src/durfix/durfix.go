// Package durfix is the fsyncdisc fixture: the full temp-file -> write ->
// fsync -> rename -> dir-sync dance as the clean case, and one positive
// case per diagnostic.
package durfix

import (
	"os"
	"path/filepath"
)

// Publish is the sanctioned shape: contents fsynced before the rename,
// directory entry fsynced after it.
//
//cbs:durable
func Publish(path string, payload []byte) error {
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(payload); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(path)
}

// Append is the sanctioned append shape: the write is followed by fsync on
// the same file.
//
//cbs:durable
func Append(f *os.File, line []byte) error {
	if _, err := f.Write(line); err != nil {
		return err
	}
	return f.Sync()
}

// renameOutside publishes without any durability discipline.
func renameOutside(tmp, path string) error {
	return os.Rename(tmp, path) // want `os\.Rename outside a //cbs:durable function`
}

// renameWaived documents why a bare rename is sound here.
func renameWaived(tmp, path string) error {
	//cbs:fsyncrelaxed scratch files under TMPDIR, lost on crash by design
	return os.Rename(tmp, path)
}

// renameUnordered renames inside a durable function but skips both the
// content fsync and the directory fsync.
//
//cbs:durable
func renameUnordered(path string, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o644); err != nil {
		return err
	}
	err := os.Rename(tmp, path) // want `rename without a preceding file Sync` `rename without a following directory sync`
	f, ferr := os.Open(path)
	if ferr != nil {
		return err
	}
	if err := f.Sync(); err != nil { // too late: after the rename
		f.Close()
		return err
	}
	return f.Close()
}

// appendNoSync reports durability it does not have.
//
//cbs:durable
func appendNoSync(f *os.File, line []byte) error {
	_, err := f.Write(line) // want `write to f is not followed by f\.Sync\(\)`
	return err
}

// discardedSync drops the one error that is the data loss.
func discardedSync(f *os.File) {
	f.Sync() // want `fsync error discarded`
}

// discardedSyncWaived is the chaos torn-record shape: the fragment's sync
// models a crash, its error is irrelevant by construction.
func discardedSyncWaived(f *os.File, line []byte) error {
	f.Write(line[:len(line)/2])
	//cbs:fsyncrelaxed torn-record simulation: the fragment models a crash
	f.Sync()
	return nil
}

// discardedSyncNoReason forgets the mandatory reason.
func discardedSyncNoReason(f *os.File) {
	//cbs:fsyncrelaxed
	f.Sync() // want `//cbs:fsyncrelaxed waiver without a reason`
}

// staleDurable claims the discipline and uses none of it.
//
//cbs:durable
func staleDurable(path string) error { // want `//cbs:durable function staleDurable neither syncs nor renames`
	return os.Remove(path)
}

// syncDir fsyncs the directory containing path.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
