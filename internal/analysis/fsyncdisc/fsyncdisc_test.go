package fsyncdisc_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/fsyncdisc"
)

func TestFsyncDisc(t *testing.T) {
	analysistest.Run(t, fsyncdisc.Analyzer, "testdata/src/durfix")
}
