// Package fsyncdisc enforces the journal durability discipline of PR 5:
// a checkpoint only counts once it is on disk, so the write path follows
// temp-file -> write -> fsync -> rename (+ directory fsync), and every
// append is fsynced before the caller is told the record is durable.
//
// In library code (non-main packages, non-test files) the analyzer checks:
//
//   - os.Rename is only called inside functions annotated //cbs:durable —
//     a bare rename onto a live path is exactly the half-written-header
//     crash window the temp-file dance exists to close.
//
//   - inside a //cbs:durable function, a rename is lexically preceded by a
//     file .Sync() (the temp file's contents are durable before they get a
//     name) and followed by a directory-sync call (a function whose name
//     contains "syncDir"), so the rename itself survives a crash.
//
//   - inside a //cbs:durable function, the last .Write/.WriteString on each
//     *os.File is lexically followed by .Sync() on the same file — an
//     append that returns before fsync reports durability it doesn't have.
//
//   - a .Sync() whose error is discarded (statement position) is flagged
//     anywhere: fsync is the one call whose failure *is* the data loss.
//     Deliberate best-effort syncs (directory fsync on filesystems that
//     refuse it, chaos torn-record simulation) take //cbs:fsyncrelaxed
//     with a reason.
//
//   - a //cbs:durable annotation on a function with no sync and no rename
//     is stale and reported.
package fsyncdisc

import (
	"go/ast"
	"go/types"
	"strings"

	"cbs/internal/analysis/framework"
)

// Analyzer is the fsyncdisc analysis.
var Analyzer = &framework.Analyzer{
	Name: "fsyncdisc",
	Doc:  "enforce temp-file/fsync/rename ordering and checked fsync errors in //cbs:durable journal code",
	Run:  run,

	TestAware: true,
}

// DurableDirective scopes the discipline: //cbs:durable on a function doc.
const DurableDirective = "durable"

// WaiverDirective is the escape hatch: //cbs:fsyncrelaxed <reason>.
const WaiverDirective = "fsyncrelaxed"

type syncCall struct {
	recv      string
	pos       ast.Node
	discarded bool // statement position: the error is dropped
}

type writeCall struct {
	recv string
	pos  ast.Node
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs delegate durability to the library layers
	}
	waivers := framework.NewWaivers(pass, WaiverDirective)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue // tests tear files deliberately
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkFunc(pass, waivers, decl)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, waivers *framework.Waivers, decl *ast.FuncDecl) {
	_, durable := framework.Directive(decl, DurableDirective)

	var renames []ast.Node
	var syncs []syncCall
	var writes []writeCall
	var dirSyncs []ast.Node

	// First pass: statement-position Sync calls have their error discarded.
	discardedSyncs := make(map[*ast.CallExpr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if stmt, ok := n.(*ast.ExprStmt); ok {
			if call, ok := stmt.X.(*ast.CallExpr); ok && isFileMethod(pass, call, "Sync") {
				discardedSyncs[call] = true
			}
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isOSRename(pass, call):
			renames = append(renames, call)
		case isFileMethod(pass, call, "Sync"):
			syncs = append(syncs, syncCall{recv: recvKey(call), pos: call, discarded: discardedSyncs[call]})
		case isFileMethod(pass, call, "Write", "WriteString", "WriteAt"):
			writes = append(writes, writeCall{recv: recvKey(call), pos: call})
		case isDirSyncCall(call):
			dirSyncs = append(dirSyncs, call)
		}
		return true
	})

	// Discarded fsync errors: the one failure that is the data loss.
	for _, s := range syncs {
		if s.discarded && !waivers.Waived(s.pos.Pos(), WaiverDirective) {
			pass.Reportf(s.pos.Pos(), "fsync error discarded: Sync failure means the data is not durable; check it (or waive with //cbs:fsyncrelaxed <reason>)")
		}
	}

	if !durable {
		for _, r := range renames {
			if !waivers.Waived(r.Pos(), WaiverDirective) {
				pass.Reportf(r.Pos(), "os.Rename outside a //cbs:durable function: publishing a file without the write->fsync->rename discipline leaves a torn-file crash window")
			}
		}
		return
	}

	if len(renames) == 0 && len(syncs) == 0 && len(writes) == 0 {
		pass.Reportf(decl.Pos(), "//cbs:durable function %s neither syncs nor renames: the annotation is stale", decl.Name.Name)
		return
	}

	// Rename ordering: contents durable before the name, name durable after.
	for _, r := range renames {
		if waivers.Waived(r.Pos(), WaiverDirective) {
			continue
		}
		preceded := false
		for _, s := range syncs {
			if s.pos.Pos() < r.Pos() {
				preceded = true
			}
		}
		if !preceded {
			pass.Reportf(r.Pos(), "rename without a preceding file Sync: the temp file's contents must be durable before they get a name")
		}
		followed := false
		for _, ds := range dirSyncs {
			if ds.Pos() > r.Pos() {
				followed = true
			}
		}
		if !followed {
			pass.Reportf(r.Pos(), "rename without a following directory sync (syncDir call): the rename itself is not durable until the directory entry is fsynced")
		}
	}

	// Append ordering: each file's last write is followed by its fsync.
	lastWrite := make(map[string]writeCall)
	for _, w := range writes {
		if w.recv == "" {
			continue
		}
		if prev, ok := lastWrite[w.recv]; !ok || w.pos.Pos() > prev.pos.Pos() {
			lastWrite[w.recv] = w
		}
	}
	for recv, w := range lastWrite {
		if waivers.Waived(w.pos.Pos(), WaiverDirective) {
			continue
		}
		synced := false
		for _, s := range syncs {
			if s.recv == recv && s.pos.Pos() > w.pos.Pos() {
				synced = true
			}
		}
		if !synced {
			pass.Reportf(w.pos.Pos(), "write to %s is not followed by %s.Sync(): the record is reported durable before it is on disk", recv, recv)
		}
	}
}

// isOSRename reports whether call is os.Rename(...).
func isOSRename(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename"
}

// isFileMethod reports whether call is one of the named methods on an
// (possibly pointer-to) os.File value.
func isFileMethod(pass *framework.Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// isDirSyncCall reports whether call invokes a directory-sync helper (a
// function whose name contains "syncdir", case-insensitively — the
// convention this repo uses for fsyncing a parent directory).
func isDirSyncCall(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "syncdir")
}

// recvKey renders the receiver expression of a method call as a stable
// textual key ("tf", "j.f"), or "" for receivers too dynamic to track.
func recvKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprKey(sel.X)
}

func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
