// Package analysistest runs a cbscheck analyzer over a fixture package
// under testdata and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := foo() // want `regexp matching the diagnostic`
//
// A line may carry several backquoted or quoted expectations. Every
// expectation must be matched by a diagnostic on that line and every
// diagnostic must be matched by an expectation; anything else fails the
// test.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cbs/internal/analysis/framework"
	"cbs/internal/analysis/load"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/src/a") and checks the analyzer against its
// // want comments.
func Run(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	pkgs, err := load.Packages(".", []string{"./" + strings.TrimPrefix(dir, "./")})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", dir)
	}
	// `go list -deps` emits dependencies first; the fixture package is last.
	// Earlier module-local packages are fixture helpers (kept diagnostic-free).
	pkg := pkgs[len(pkgs)-1]

	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, collectWants(t, pkg, f)...)
	}

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		ReadFact:  func(string, string) (string, bool) { return "", false },
		WriteFact: func(string, string) {},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose pattern
// matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want comments of one file.
func collectWants(t *testing.T, pkg *load.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "// want ") && !strings.HasPrefix(text, "//want ") {
				continue
			}
			text = strings.TrimPrefix(strings.TrimPrefix(text, "//want "), "// want ")
			pos := pkg.Fset.Position(c.Pos())
			for _, m := range wantRe.FindAllString(text, -1) {
				var pat string
				if strings.HasPrefix(m, "`") {
					pat = strings.Trim(m, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out
}
