// Package analysistest runs a cbscheck analyzer over a fixture package
// under testdata and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := foo() // want `regexp matching the diagnostic`
//
// A line may carry several backquoted or quoted expectations. Every
// expectation must be matched by a diagnostic on that line and every
// diagnostic must be matched by an expectation; anything else fails the
// test.
//
// Fixture packages may import other fixture packages (full module import
// paths, e.g. cbs/internal/analysis/chaossite/testdata/src/chaosdep): the
// harness analyzes every testdata package of the load in dependency order
// with a live in-memory fact store, so cross-package fact flow (hot-path
// sets, sentinel lists, chaos site tables) is exercised exactly as the
// unitcheck driver would. // want comments are honored in every fixture
// package of the chain.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cbs/internal/analysis/framework"
	"cbs/internal/analysis/load"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// Run loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/src/a") and checks the analyzer against its
// // want comments.
func Run(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	run(t, a, dir, false)
}

// RunTests is Run with the fixture's _test.go files folded into the
// analysis view (the -tests driver mode), for analyzers whose invariants
// span production and test code — chaossite's seed-matrix coverage rule
// only activates when tests are visible.
func RunTests(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	run(t, a, dir, true)
}

func run(t *testing.T, a *framework.Analyzer, dir string, tests bool) {
	t.Helper()
	pattern := "./" + strings.TrimPrefix(dir, "./")
	var pkgs []*load.Package
	var err error
	if tests {
		pkgs, err = load.PackagesTests(".", []string{pattern})
	} else {
		pkgs, err = load.Packages(".", []string{pattern})
	}
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", dir)
	}

	// `go list -deps` emits dependencies before dependents, so analyzing the
	// testdata packages in order satisfies every fact read from the store.
	facts := make(map[string]map[string]string)
	var wants []*expectation
	var diags []framework.Diagnostic
	analyzed := false
	for _, pkg := range pkgs {
		if !strings.Contains(pkg.ImportPath, "/testdata/") {
			continue // a module package pulled in as a dependency, not a fixture
		}
		analyzed = true
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
		pkgFacts := make(map[string]string)
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
			ReadFact: func(pkgPath, key string) (string, bool) {
				m, known := facts[pkgPath]
				return m[key], known
			},
			WriteFact: func(key, data string) { pkgFacts[key] = data },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		facts[pkg.ImportPath] = pkgFacts

		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		diags = diags[:0]
	}
	if !analyzed {
		t.Fatalf("fixture %s: no testdata packages in load", dir)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose pattern
// matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want comments of one file.
func collectWants(t *testing.T, pkg *load.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "// want ") && !strings.HasPrefix(text, "//want ") {
				continue
			}
			text = strings.TrimPrefix(strings.TrimPrefix(text, "//want "), "// want ")
			pos := pkg.Fset.Position(c.Pos())
			for _, m := range wantRe.FindAllString(text, -1) {
				var pat string
				if strings.HasPrefix(m, "`") {
					pat = strings.Trim(m, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out
}
