// Package sparse is the shapepanic fixture: its name is in GuardPackages
// and its import path sits under internal/, so both rules apply — exported
// slice-indexing functions need a prologue guard, and every panic message
// needs the "sparse: " prefix.
package sparse

import (
	"errors"
	"fmt"
)

// Scale only indexes x with the key of a range over x itself: provably
// in-bounds, so no guard is required.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy indexes dst with a bound derived from src: mis-shaped calls panic
// mid-loop, so a guard is required.
func Copy(dst, src []float64) { // want `exported Copy indexes caller-provided slices but has no leading shape guard`
	for i := range src {
		dst[i] = src[i]
	}
}

// Head reslices with a computed bound and has no guard.
func Head(x []float64, n int) []float64 { // want `exported Head indexes caller-provided slices but has no leading shape guard`
	return x[:n]
}

// Axpy is clean: inline guard with a prefixed panic.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: Axpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Dot is clean: the guard is delegated to a same-package helper whose body
// carries a prefixed panic.
func Dot(x, y []float64) float64 {
	checkLen(x, y)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func checkLen(x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: vector length mismatch")
	}
}

// Sum is clean: an error return is an accepted fail-fast guard.
func Sum(x []float64) (float64, error) {
	if len(x) == 0 {
		return 0, errors.New("sparse: Sum of empty vector")
	}
	return x[0], nil
}

// First is clean: setup assignments may precede the guard.
func First(x []float64) float64 {
	n := len(x)
	if n == 0 {
		panic("sparse: First of empty vector")
	}
	return x[0]
}

// reset is unexported, so the guard rule does not apply — but its panic
// message still needs the package prefix.
func reset(x []float64) {
	if len(x) == 0 {
		panic("no elements") // want `panic message must be a string with the "sparse: " prefix`
	}
	x[0] = 0
}

// fail panics with a non-string value.
func fail(err error) {
	panic(err) // want `panic message must be a string with the "sparse: " prefix`
}

// failf is clean: fmt-style panic with a prefixed literal format.
func failf(n, m int) {
	if n != m {
		panic(fmt.Sprintf("sparse: dims %d != %d", n, m))
	}
}

// prefixed is clean: left-anchored concatenation keeps the static prefix.
func prefixed(detail string) {
	panic("sparse: " + detail)
}
