package shapepanic_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/shapepanic"
)

func TestShapePanic(t *testing.T) {
	analysistest.Run(t, shapepanic.Analyzer, "testdata/src/sparse")
}
