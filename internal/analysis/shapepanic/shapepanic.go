// Package shapepanic enforces the numerical-kernel guard convention of the
// low-level packages (zlinalg, sparse, hamiltonian, linsolve, qep):
//
//  1. Every exported function that indexes or reslices a caller-provided
//     slice parameter must begin with a length/shape guard — a prologue
//     `if` that panics (or returns an error) before the first real work —
//     so that a mis-shaped call fails loudly at the API boundary instead
//     of corrupting memory or panicking deep inside a fused kernel.
//  2. Every panic message in an internal package must carry the package
//     prefix ("pkg: ..."), so a panic in a 20-package solve stack
//     identifies its origin (the convention the codebase already follows,
//     here made machine-checked).
//
// The guard may be delegated: a prologue call to a same-package helper
// whose body contains a prefixed panic (e.g. Operator.checkBlockLen)
// counts. The prologue is the longest leading run of declarations, simple
// assignments, if-statements and expression statements.
package shapepanic

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"cbs/internal/analysis/framework"
)

// Analyzer is the shapepanic analysis.
var Analyzer = &framework.Analyzer{
	Name: "shapepanic",
	Doc:  "exported kernel entry points must shape-guard slice parameters; panics must carry the pkg: prefix",
	Run:  run,
}

// GuardPackages names (by package name) the packages whose exported
// functions must carry shape guards. Keyed by name rather than import path
// so that test fixtures under testdata exercise the same rule.
var GuardPackages = map[string]bool{
	"zlinalg":     true,
	"sparse":      true,
	"hamiltonian": true,
	"linsolve":    true,
	"qep":         true,
}

func run(pass *framework.Pass) error {
	internal := strings.Contains(pass.Pkg.Path(), "/internal/") ||
		strings.HasPrefix(pass.Pkg.Path(), "internal/")
	if internal {
		checkPanicPrefixes(pass)
	}
	if internal && GuardPackages[pass.Pkg.Name()] {
		checkGuards(pass)
	}
	return nil
}

// --- rule 2: pkg-prefixed panic messages --------------------------------

func checkPanicPrefixes(pass *framework.Pass) {
	prefix := pass.Pkg.Name() + ":"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || framework.BuiltinName(pass.TypesInfo, call) != "panic" || len(call.Args) != 1 {
				return true
			}
			if !panicMsgHasPrefix(pass, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic message must be a string with the %q prefix (got %s)", prefix+" ", exprSummary(call.Args[0]))
			}
			return true
		})
	}
}

// panicMsgHasPrefix reports whether the panic argument is a string whose
// static prefix is the package name. Accepted shapes: a string literal, a
// left-anchored string concatenation, fmt.Sprintf/fmt.Errorf with a literal
// format, or a named string constant.
func panicMsgHasPrefix(pass *framework.Pass, arg ast.Expr, prefix string) bool {
	arg = ast.Unparen(arg)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	switch e := arg.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return panicMsgHasPrefix(pass, e.X, prefix)
		}
	case *ast.CallExpr:
		fn := framework.CalleeOf(pass.TypesInfo, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Sprintf" || fn.Name() == "Errorf") && len(e.Args) > 0 {
			return panicMsgHasPrefix(pass, e.Args[0], prefix)
		}
	}
	return false
}

func exprSummary(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return "call expression"
	}
	return "non-literal expression"
}

// --- rule 1: shape guards on exported kernel entry points ----------------

func checkGuards(pass *framework.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !decl.Name.IsExported() {
				continue
			}
			params := sliceParams(pass, decl)
			if len(params) == 0 || !indexesAny(pass, decl.Body, params) {
				continue
			}
			if !hasPrologueGuard(pass, decl.Body) {
				pass.Reportf(decl.Pos(), "exported %s indexes caller-provided slices but has no leading shape guard with a %q panic", decl.Name.Name, pass.Pkg.Name()+": ")
			}
		}
	}
}

// sliceParams collects the *types.Var of the function's slice-typed
// parameters.
func sliceParams(pass *framework.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// indexesAny reports whether the body indexes or reslices any of the given
// parameter objects in a way that is not provably in-bounds. Indexing a
// parameter with the key of a range over that same parameter (or with the
// variable of a `for i := ...; i < len(param); ...` loop over it) cannot
// be mis-shaped and therefore needs no guard; anything else — indexing one
// parameter with a bound derived from another, fixed indices, computed
// offsets, bounded reslices — does.
func indexesAny(pass *framework.Pass, body *ast.BlockStmt, params map[types.Object]bool) bool {
	safe := safeIndexVars(pass, body, params)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		var base, index ast.Expr
		switch e := n.(type) {
		case *ast.IndexExpr:
			base, index = e.X, e.Index
		case *ast.SliceExpr:
			if e.Low == nil && e.High == nil && e.Max == nil {
				return true // x[:] is shape-preserving
			}
			base = e.X
		default:
			return true
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return true
		}
		param := pass.TypesInfo.Uses[id]
		if !params[param] {
			return true
		}
		if index != nil {
			if iid, ok := ast.Unparen(index).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[iid]; obj != nil && safe[obj] == param {
					return true // param[i] with i ranging over param
				}
			}
		}
		found = true
		return false
	})
	return found
}

// safeIndexVars maps loop-index objects to the parameter slice they are
// provably in range for: the key of `for i := range param` or the variable
// of `for i := 0; i < len(param); i++`.
func safeIndexVars(pass *framework.Pass, body *ast.BlockStmt, params map[types.Object]bool) map[types.Object]types.Object {
	safe := make(map[types.Object]types.Object)
	paramOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; params[obj] {
				return obj
			}
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if param := paramOf(s.X); param != nil {
				if key, ok := s.Key.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[key]; obj != nil {
						safe[obj] = param
					}
				}
			}
		case *ast.ForStmt:
			// for i := ...; i < len(param); ... { ... }
			cond, ok := s.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.LSS {
				return true
			}
			call, ok := ast.Unparen(cond.Y).(*ast.CallExpr)
			if !ok || framework.BuiltinName(pass.TypesInfo, call) != "len" || len(call.Args) != 1 {
				return true
			}
			param := paramOf(call.Args[0])
			if param == nil {
				return true
			}
			if iid, ok := ast.Unparen(cond.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[iid]; obj != nil {
					safe[obj] = param
				}
			}
		}
		return true
	})
	return safe
}

// hasPrologueGuard reports whether the leading statements contain a shape
// guard: an if that panics with the package prefix or returns an error, or
// a call to a same-package helper that does.
func hasPrologueGuard(pass *framework.Pass, body *ast.BlockStmt) bool {
	prefix := pass.Pkg.Name() + ":"
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if guardIf(pass, s, prefix) {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && delegatesGuard(pass, call, prefix) {
				return true
			}
		case *ast.DeclStmt, *ast.AssignStmt:
			// setup statements (n := len(b), etc.) may precede the guard
		default:
			return false // real work started without a guard
		}
	}
	return false
}

// guardIf reports whether the if statement (or an else-if chained to it)
// fails fast: panics with the package prefix or returns a value.
func guardIf(pass *framework.Pass, s *ast.IfStmt, prefix string) bool {
	failsFast := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			failsFast = true
		case *ast.CallExpr:
			if framework.BuiltinName(pass.TypesInfo, n) == "panic" && len(n.Args) == 1 &&
				panicMsgHasPrefix(pass, n.Args[0], prefix) {
				failsFast = true
			}
		}
		return !failsFast
	})
	return failsFast
}

// delegatesGuard reports whether the call targets a same-package function
// whose body contains a prefixed panic (a shared guard helper).
func delegatesGuard(pass *framework.Pass, call *ast.CallExpr, prefix string) bool {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
		return false
	}
	decl := findDecl(pass, fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	has := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok &&
			framework.BuiltinName(pass.TypesInfo, c) == "panic" && len(c.Args) == 1 &&
			panicMsgHasPrefix(pass, c.Args[0], prefix) {
			has = true
		}
		return !has
	})
	return has
}

// findDecl locates the FuncDecl of a same-package function object.
func findDecl(pass *framework.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[decl.Name] == fn {
				return decl
			}
		}
	}
	return nil
}
