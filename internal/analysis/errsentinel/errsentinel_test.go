package errsentinel_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, errsentinel.Analyzer, "testdata/src/ladder")
}
