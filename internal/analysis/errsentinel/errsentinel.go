// Package errsentinel enforces the typed-error discipline of PRs 3-4: the
// recovery and escalation ladders branch on sentinel identity through
// errors.Is, so an error that loses its chain (formatted with %v instead of
// wrapped with %w) or is matched by string comparison silently falls off
// every ladder and lands in the catch-all retry rung.
//
// In library code (non-main packages, non-test files) the analyzer flags:
//
//   - fmt.Errorf calls where an argument of type error is rendered with a
//     non-wrapping verb (%v, %s, %q, ...): the produced error no longer
//     errors.Is-matches the cause. Waive deliberate chain breaks with
//     //cbs:errtext <reason> (e.g. serializing an error into a journal
//     record, where carrying the live chain would be wrong).
//
//   - error identity tested by string: err.Error() compared with == / !=,
//     used as a switch tag, or passed to strings.Contains/HasPrefix/
//     HasSuffix/EqualFold. Same waiver.
//
// It also publishes each package's exported sentinel set (package-level
// `var Err... = ...` of type error) as a package fact, and checks
// escalation-ladder exhaustiveness: a function annotated
//
//	//cbs:errladder <pkgname> <pkgname>...
//
// must test errors.Is against every exported sentinel of each named
// imported package. internal/sweep's retry ladder carries the annotation
// for core, linsolve and contour, so adding a sentinel to any of those
// packages breaks the build until the ladder classifies it (or the rung is
// explicitly waived where the annotation sits).
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbs/internal/analysis/framework"
)

// Analyzer is the errsentinel analysis.
var Analyzer = &framework.Analyzer{
	Name: "errsentinel",
	Doc:  "require %w wrapping and errors.Is matching for library errors; check //cbs:errladder exhaustiveness against exported sentinel facts",
	Run:  run,

	TestAware: true,
}

// FactKey names the package-fact blob holding the exported sentinel names.
const FactKey = "errsentinels"

// WaiverDirective is the escape hatch: //cbs:errtext <reason>.
const WaiverDirective = "errtext"

// LadderDirective marks a function whose errors.Is switch must cover every
// sentinel of the listed packages.
const LadderDirective = "errladder"

func run(pass *framework.Pass) error {
	if pass.WriteFact != nil {
		pass.WriteFact(FactKey, framework.EncodeList(exportedSentinels(pass.Pkg)))
	}
	if pass.Pkg.Name() == "main" {
		return nil // CLIs render errors for humans; wrapping is the library's job
	}
	waivers := framework.NewWaivers(pass, WaiverDirective)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue // tests assert on errors however they need to
		}
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkLadder(pass, decl)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, waivers, n)
					checkStringMatch(pass, waivers, n)
				case *ast.BinaryExpr:
					if n.Op == token.EQL || n.Op == token.NEQ {
						checkCompare(pass, waivers, n)
					}
				case *ast.SwitchStmt:
					if n.Tag != nil && isErrorText(pass, n.Tag) {
						if !waivers.Waived(n.Tag.Pos(), WaiverDirective) {
							pass.Reportf(n.Tag.Pos(), "switch on err.Error() matches errors by string; branch with errors.Is/As on typed sentinels")
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// exportedSentinels collects the package's exported Err* package-level
// variables of type error.
func exportedSentinels(pkg *types.Package) []string {
	var out []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") || !token.IsExported(name) {
			continue
		}
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !types.Identical(v.Type(), errorType()) {
			continue
		}
		out = append(out, name)
	}
	return out
}

func errorType() types.Type {
	return types.Universe.Lookup("error").Type()
}

// checkErrorf flags fmt.Errorf calls that render an error argument with a
// non-wrapping verb.
func checkErrorf(pass *framework.Pass, waivers *framework.Waivers, call *ast.CallExpr) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // non-constant format: not statically checkable
	}
	format, err := strconvUnquote(lit.Value)
	if err {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] == 'w' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errorType()) {
			continue
		}
		if isNilConst(tv) {
			continue
		}
		if waivers.Waived(arg.Pos(), WaiverDirective) {
			continue
		}
		pass.Reportf(arg.Pos(), "error formatted with %%%c loses its chain (errors.Is can no longer match the cause); wrap with %%w", verbs[i])
	}
}

func isNilConst(tv types.TypeAndValue) bool {
	_, isNil := tv.Type.(*types.Basic)
	return isNil && tv.Type.(*types.Basic).Kind() == types.UntypedNil
}

// formatVerbs returns, per consumed argument, the verb letter that renders
// it ('v', 'w', 's', ...). '*' width/precision arguments consume a slot and
// are reported as '*'.
func formatVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue // literal %%
		}
		// Flags, width, precision (with * consuming an argument each).
		for i < len(format) {
			c := format[i]
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			out = append(out, format[i])
		}
	}
	return out
}

// strconvUnquote is a minimal unquote for string literals; reports failure.
func strconvUnquote(s string) (string, bool) {
	if len(s) >= 2 && s[0] == '`' {
		return s[1 : len(s)-1], false
	}
	// Interpreted string: escape sequences other than \" and \\ don't
	// affect verb scanning, so a light-weight unquote suffices.
	if len(s) >= 2 && s[0] == '"' {
		body := s[1 : len(s)-1]
		body = strings.ReplaceAll(body, `\"`, `"`)
		body = strings.ReplaceAll(body, `\\`, `\`)
		return body, false
	}
	return "", true
}

// checkCompare flags err.Error() == "..." style identity tests.
func checkCompare(pass *framework.Pass, waivers *framework.Waivers, cmp *ast.BinaryExpr) {
	if !isErrorText(pass, cmp.X) && !isErrorText(pass, cmp.Y) {
		return
	}
	if waivers.Waived(cmp.Pos(), WaiverDirective) {
		return
	}
	pass.Reportf(cmp.Pos(), "error compared by Error() string; match identity with errors.Is (or errors.As for typed errors)")
}

// stringMatchFuncs are strings-package predicates that, applied to an
// error's text, amount to string matching of error identity.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

// checkStringMatch flags strings.Contains(err.Error(), ...) and friends.
func checkStringMatch(pass *framework.Pass, waivers *framework.Waivers, call *ast.CallExpr) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorText(pass, arg) {
			if !waivers.Waived(call.Pos(), WaiverDirective) {
				pass.Reportf(call.Pos(), "strings.%s over err.Error() matches errors by string; use errors.Is/As on typed sentinels", fn.Name())
			}
			return
		}
	}
}

// isErrorText reports whether e is a call of the Error() method of an
// error value.
func isErrorText(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && tv.Type != nil && types.AssignableTo(tv.Type, errorType())
}

// checkLadder enforces //cbs:errladder exhaustiveness.
func checkLadder(pass *framework.Pass, decl *ast.FuncDecl) {
	args, ok := framework.Directive(decl, LadderDirective)
	if !ok {
		return
	}
	wanted := strings.Fields(args)
	if len(wanted) == 0 {
		pass.Reportf(decl.Pos(), "//cbs:errladder without package names: list the sentinel packages the ladder must cover")
		return
	}
	// Resolve the named packages among the direct imports.
	byName := make(map[string]*types.Package)
	for _, imp := range pass.Pkg.Imports() {
		byName[imp.Name()] = imp
	}
	// Collect every errors.Is(_, pkg.Sentinel) target in the body.
	handled := make(map[string]bool) // "pkgpath.ErrName"
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || (fn.Name() != "Is" && fn.Name() != "As") || len(call.Args) != 2 {
			return true
		}
		sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil {
			handled[obj.Pkg().Path()+"."+obj.Name()] = true
		}
		return true
	})
	for _, name := range wanted {
		dep, ok := byName[name]
		if !ok {
			pass.Reportf(decl.Pos(), "//cbs:errladder names package %q, which is not imported here", name)
			continue
		}
		sentinels := sentinelsOf(pass, dep)
		for _, s := range sentinels {
			if !handled[dep.Path()+"."+s] {
				pass.Reportf(decl.Pos(), "escalation ladder %s does not handle %s.%s with errors.Is; every sentinel of %s needs a rung (or a terminal classification)", decl.Name.Name, name, s, name)
			}
		}
	}
}

// sentinelsOf returns the exported sentinel names of an imported package:
// from its published fact when the driver supplies facts, else recovered
// from the import's type information (both views agree — the fact is
// EncodeList(exportedSentinels)).
func sentinelsOf(pass *framework.Pass, dep *types.Package) []string {
	if pass.ReadFact != nil {
		if data, known := pass.ReadFact(dep.Path(), FactKey); known {
			return framework.DecodeList(data)
		}
	}
	return exportedSentinels(dep)
}
