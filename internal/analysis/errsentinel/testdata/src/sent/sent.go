// Package sent is the sentinel-exporting dependency of the errsentinel
// fixture: the analyzer publishes its exported Err* error variables as the
// "errsentinels" package fact, which the ladder fixture's exhaustiveness
// check reads back.
package sent

import "errors"

// ErrOne and ErrTwo are the sentinels the ladder must classify.
var (
	ErrOne = errors.New("sent: one")
	ErrTwo = errors.New("sent: two")
)

// ErrCount is Err-prefixed but not an error: excluded from the fact.
var ErrCount = 2

// errHidden is unexported: excluded from the fact.
var errHidden = errors.New("sent: hidden")

// Use keeps the unexported sentinel referenced.
func Use() error { return errHidden }
