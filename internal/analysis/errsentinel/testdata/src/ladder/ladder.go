// Package ladder is the errsentinel fixture consumer: wrapping, string
// matching, and //cbs:errladder exhaustiveness against the sentinels
// package sent publishes as facts.
package ladder

import (
	"errors"
	"fmt"
	"strings"

	"cbs/internal/analysis/errsentinel/testdata/src/sent"
)

// ErrLocal is this package's own sentinel.
var ErrLocal = errors.New("ladder: local")

// wrapBad renders the cause with %v: the chain is lost.
func wrapBad(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want `error formatted with %v loses its chain`
}

// wrapBadVerbMix loses the error among healthy verbs.
func wrapBadVerbMix(n int, err error) error {
	return fmt.Errorf("point %d: %s", n, err) // want `error formatted with %s loses its chain`
}

// wrapGood wraps with %w: clean.
func wrapGood(err error) error {
	return fmt.Errorf("solve failed: %w", err)
}

// wrapDouble wraps two causes: clean (go1.20 multi-%w).
func wrapDouble(err error) error {
	return fmt.Errorf("%w: %w", ErrLocal, err)
}

// wrapWaived serializes an error into a journal record, where carrying a
// live chain would be wrong; the waiver documents that.
func wrapWaived(err error) error {
	//cbs:errtext journal records carry error text, not live chains
	return fmt.Errorf("recorded: %v", err)
}

// wrapWaivedNoReason forgets the mandatory reason.
func wrapWaivedNoReason(err error) error {
	//cbs:errtext
	return fmt.Errorf("recorded: %v", err) // want `//cbs:errtext waiver without a reason`
}

// compareText matches identity by string.
func compareText(err error) bool {
	return err.Error() == "sent: one" // want `error compared by Error\(\) string; match identity with errors\.Is`
}

// compareTextNeq is the negated spelling.
func compareTextNeq(err error) bool {
	return "sent: one" != err.Error() // want `error compared by Error\(\) string`
}

// switchText branches on error text.
func switchText(err error) int {
	switch err.Error() { // want `switch on err\.Error\(\) matches errors by string`
	case "sent: one":
		return 1
	}
	return 0
}

// containsText greps error text.
func containsText(err error) bool {
	return strings.Contains(err.Error(), "one") // want `strings\.Contains over err\.Error\(\) matches errors by string`
}

// prefixText is the HasPrefix spelling.
func prefixText(err error) bool {
	return strings.HasPrefix(err.Error(), "sent:") // want `strings\.HasPrefix over err\.Error\(\)`
}

// containsOther greps a non-error string: clean.
func containsOther(s string) bool {
	return strings.Contains(s, "one")
}

// compareIs matches identity the right way: clean.
func compareIs(err error) bool {
	return errors.Is(err, sent.ErrOne)
}

//cbs:errladder sent
func fullLadder(err error) int {
	switch {
	case errors.Is(err, sent.ErrOne):
		return 1
	case errors.Is(err, sent.ErrTwo):
		return 2
	}
	return 0
}

//cbs:errladder sent
func partialLadder(err error) int { // want `escalation ladder partialLadder does not handle sent\.ErrTwo with errors\.Is`
	if errors.Is(err, sent.ErrOne) {
		return 1
	}
	return 0
}

//cbs:errladder nosuch
func unknownPackage(err error) int { // want `//cbs:errladder names package "nosuch", which is not imported here`
	_ = err
	return 0
}

//cbs:errladder
func bareDirective(err error) int { // want `//cbs:errladder without package names`
	_ = err
	return 0
}
