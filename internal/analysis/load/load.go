// Package load type-checks Go packages for the cbscheck analyzers without
// golang.org/x/tools: it shells out to `go list -export -deps -json` to
// enumerate packages and their compiled export data, then parses the target
// packages' sources and type-checks them with the standard library's gc
// importer reading that export data. This mirrors what the go/packages
// LoadTypes mode does, at a fraction of the surface.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // all compiled files, including in-package tests
	Types      *types.Package
	Info       *types.Info
	Imports    []string // resolved import paths of direct imports
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns (in the
// current module), in dependency order. Dependencies outside the module are
// consumed as export data only.
func Packages(dir string, patterns []string) ([]*Package, error) {
	return packages(dir, patterns, false)
}

// PackagesTests is Packages with in-package test files folded in: for every
// package that has tests, the test-expanded variant ("p [p.test]", whose
// file set is the production files plus the in-package _test.go files) is
// loaded in place of the bare package, and external test packages
// ("p_test") are loaded as their own units. Generated test mains are
// skipped. The returned ImportPath is the bare package path, so facts and
// diagnostics key identically to an ordinary load.
func PackagesTests(dir string, patterns []string) ([]*Package, error) {
	return packages(dir, patterns, true)
}

func packages(dir string, patterns []string, tests bool) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	exports := make(map[string]string)   // import path -> export data file
	importMap := make(map[string]string) // source import path -> resolved path
	var targets []*listedPackage
	hasTestVariant := make(map[string]bool) // bare paths superseded by "p [p.test]"
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if p.Standard || p.Dir == "" || strings.Contains(p.ImportPath, "vendor/") {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		if p.ForTest != "" && p.ForTest == basePath(p.ImportPath) {
			hasTestVariant[p.ForTest] = true
		}
		q := p
		targets = append(targets, &q)
	}

	var pkgs []*Package
	for _, lp := range targets {
		if tests && lp.ForTest == "" && hasTestVariant[lp.ImportPath] {
			continue // superseded by its test-expanded variant
		}
		pkg, err := typeCheck(lp, exports, importMap)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// basePath strips the " [p.test]" suffix of a test-variant import path.
func basePath(importPath string) string {
	return strings.Fields(importPath)[0]
}

// TypeCheckFiles type-checks one package from explicit file names using the
// given export-data map for imports; it is the building block shared with
// the vettool mode, whose vet.cfg supplies the same inputs.
func TypeCheckFiles(importPath, dir string, goFiles []string, exports, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	compImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return compImp.(types.ImporterFrom).ImportFrom(path, dir, 0)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

func typeCheck(lp *listedPackage, exports, importMap map[string]string) (*Package, error) {
	goFiles := append(append([]string(nil), lp.GoFiles...), lp.CgoFiles...)
	sort.Strings(goFiles)
	// Test-expanded variants type-check under the bare import path so facts
	// and analyzer package-path checks key identically to an ordinary load.
	pkg, err := TypeCheckFiles(basePath(lp.ImportPath), lp.Dir, goFiles, exports, importMap)
	if err != nil {
		return nil, err
	}
	pkg.Imports = lp.Imports
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
