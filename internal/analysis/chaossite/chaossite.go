// Package chaossite polices the deterministic fault-injection surface of
// internal/chaos. Every call of a fault-drawing chaos.Injector method in
// production code is one fault site of the resilience story, and the
// seed-matrix CI jobs only cover what they can reach, so the analyzer
// turns three conventions into invariants:
//
//   - registration: every production call of an Injector fault method
//     carries a //cbs:chaossite <name> annotation on its line (or the line
//     above). Names are lowercase dotted identifiers ("bicg.breakdown",
//     "sweep.ckpt"); the annotation is the greppable registry that DESIGN.md
//     and the chaos-smoke seed matrices refer to.
//
//   - uniqueness: a site name is registered exactly once across the repo.
//     Each package publishes its site table as a package fact; a package
//     whose transitive imports already declare a name reports the
//     duplicate. (Within one package, duplicates are caught directly.)
//
//   - coverage: when test files are in the analysis view (-tests), every
//     Injector method used by a package's production sites must be
//     exercised by that package's own tests — a call of the method, the
//     matching chaos.Config rate field, or the matching CBS_CHAOS_* env
//     var. A fault site no seed matrix can reach is dead resilience code.
//     Waive genuinely cross-package-covered sites with
//     //cbs:chaosexempt <reason>.
//
// Inside the chaos package itself the analyzer checks that FromEnv wires
// every Config rate field (float64) to an environment key: a rate the seed
// matrix cannot set hides its sites from every chaos-smoke run.
package chaossite

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cbs/internal/analysis/framework"
)

// Analyzer is the chaossite analysis.
var Analyzer = &framework.Analyzer{
	Name: "chaossite",
	Doc:  "require //cbs:chaossite registration (unique repo-wide via facts) and seed-matrix test coverage for every chaos fault site",
	Run:  run,

	TestAware: true,
}

// FactKey names the package-fact blob holding the site-name table.
const FactKey = "chaossites"

// SiteDirective registers one fault site: //cbs:chaossite <name>.
const SiteDirective = "chaossite"

// WaiverDirective exempts a site from the package-local coverage rule.
const WaiverDirective = "chaosexempt"

// siteNameRe is the site-name grammar.
var siteNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(?:[.-][a-z0-9]+)*$`)

// methodConfigFields maps each Injector fault method to the chaos.Config
// fields that arm it; referencing any of them (or the method itself, or
// the matching CBS_CHAOS_* key) in a package's tests counts as coverage.
var methodConfigFields = map[string][]string{
	"Breakdown":       {"Breakdown", "RestartBreakdown"},
	"FallbackFail":    {"FallbackFail"},
	"RefineFail":      {"RefineFail"},
	"PointFault":      {"PointFault"},
	"CorruptHalo":     {"Halo"},
	"EnergyFault":     {"EnergyFault"},
	"CheckpointFault": {"CheckpointFault"},
	"TornRecord":      {"TornRecord"},
	"JobFault":        {"JobFault"},
	"CacheFault":      {"CacheFault"},
	"JobLogFault":     {"JobLogFault"},
	"AdoptFault":      {"AdoptFault"},
	"NEGFFault":       {"NEGFFault"},
	"NetDrop":         {"NetDrop"},
	"NetDelay":        {"NetDelay"},
	"NetReorder":      {"NetReorder"},
	"NetDup":          {"NetDup"},
	"NetPartition":    {"NetPartition"},
	"NetConn":         {"NetConn"},
}

// methodEnvKeys maps fault methods to their seed-matrix env keys.
var methodEnvKeys = map[string]string{
	"Breakdown":       "CBS_CHAOS_BREAKDOWN",
	"FallbackFail":    "CBS_CHAOS_FALLBACK",
	"RefineFail":      "CBS_CHAOS_REFINE",
	"PointFault":      "CBS_CHAOS_POINT",
	"CorruptHalo":     "CBS_CHAOS_HALO",
	"EnergyFault":     "CBS_CHAOS_ENERGY",
	"CheckpointFault": "CBS_CHAOS_CKPT",
	"TornRecord":      "CBS_CHAOS_TORN",
	"JobFault":        "CBS_CHAOS_JOB",
	"CacheFault":      "CBS_CHAOS_CACHE",
	"JobLogFault":     "CBS_CHAOS_JOBLOG",
	"AdoptFault":      "CBS_CHAOS_ADOPT",
	"NEGFFault":       "CBS_CHAOS_NEGF",
	"NetDrop":         "CBS_CHAOS_NET_DROP",
	"NetDelay":        "CBS_CHAOS_NET_DELAY",
	"NetReorder":      "CBS_CHAOS_NET_REORDER",
	"NetDup":          "CBS_CHAOS_NET_DUP",
	"NetPartition":    "CBS_CHAOS_NET_PARTITION",
	"NetConn":         "CBS_CHAOS_NET_CONN",
}

type site struct {
	name   string
	method string
	pos    ast.Node
}

func run(pass *framework.Pass) error {
	if isChaosPackage(pass.Pkg) {
		checkFromEnv(pass)
		return nil // the injector's own code and tests are not fault sites
	}
	waivers := framework.NewWaivers(pass, WaiverDirective)

	var sites []site
	methodsUsed := make(map[string][]ast.Node) // method -> production call sites
	covered := make(map[string]bool)           // methods exercised by this package's tests
	hasTests := false

	for _, f := range pass.Files {
		isTest := framework.IsTestFile(pass.Fset, f)
		if isTest {
			hasTests = true
		}
		annos := siteAnnotations(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := injectorMethod(pass, call)
			if !ok {
				return true
			}
			if isTest {
				covered[method] = true
				return true
			}
			methodsUsed[method] = append(methodsUsed[method], call)
			line := pass.Fset.Position(call.Pos()).Line
			name, ok := annos[line]
			if !ok {
				pass.Reportf(call.Pos(), "unregistered chaos fault site: annotate this %s call with //cbs:chaossite <name> so the seed matrices can refer to it", method)
				return true
			}
			if !siteNameRe.MatchString(name) {
				pass.Reportf(call.Pos(), "chaos site name %q does not match the grammar %s", name, siteNameRe)
				return true
			}
			sites = append(sites, site{name: name, method: method, pos: call})
			return true
		})
		if isTest {
			scanConfigCoverage(pass, f, covered)
			scanEnvCoverage(f, covered)
		}
	}

	// Package-local duplicate registration.
	seen := make(map[string]site)
	table := make(map[string]string)
	for _, s := range sites {
		if prev, dup := seen[s.name]; dup {
			pass.Reportf(s.pos.Pos(), "chaos site %q is already registered at %s; site names are unique", s.name, pass.Fset.Position(prev.pos.Pos()))
			continue
		}
		seen[s.name] = s
		table[s.name] = fmt.Sprintf("%s %s", s.method, pass.Fset.Position(s.pos.Pos()))
	}

	// Cross-package uniqueness through the fact store: check the transitive
	// imports' published site tables before publishing our own.
	if pass.ReadFact != nil {
		for _, dep := range transitiveImports(pass.Pkg) {
			data, known := pass.ReadFact(dep.Path(), FactKey)
			if !known {
				continue // driver without facts: enforced where the dup is visible
			}
			for name, where := range framework.DecodeTable(data) {
				if s, clash := seen[name]; clash {
					pass.Reportf(s.pos.Pos(), "chaos site %q is already registered in %s (%s); site names are unique across the repo", name, dep.Path(), where)
				}
			}
		}
	}
	if pass.WriteFact != nil {
		pass.WriteFact(FactKey, framework.EncodeTable(table))
	}

	// Seed-matrix coverage: only judged when the analysis view includes
	// this package's tests (the -tests driver mode); a production-only view
	// cannot distinguish "uncovered" from "not loaded".
	if hasTests {
		for method, calls := range methodsUsed {
			if covered[method] {
				continue
			}
			for _, c := range calls {
				if waivers.Waived(c.Pos(), WaiverDirective) {
					continue
				}
				pass.Reportf(c.Pos(), "chaos fault site %s has no seed-matrix coverage in this package's tests: exercise it (call it, set chaos.Config.%s, or drive %s) or waive with //cbs:chaosexempt <reason>",
					method, strings.Join(methodConfigFields[method], "/"), methodEnvKeys[method])
			}
		}
	}
	return nil
}

// isChaosPackage identifies the injector-owning package (by name, so the
// analyzer's fixtures can model it without importing the real one).
func isChaosPackage(pkg *types.Package) bool {
	return pkg.Name() == "chaos"
}

// injectorMethod returns the method name when call is a fault-drawing
// method of chaos.Injector (any method except the seed accessor).
func injectorMethod(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "chaos" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Injector" {
		return "", false
	}
	if fn.Name() == "Seed" {
		return "", false // accessor, not a fault draw
	}
	return fn.Name(), true
}

// siteAnnotations maps line -> site name for the //cbs:chaossite comments
// of one file (covering their own line and the next, so the annotation can
// trail the call or sit above it).
func siteAnnotations(pass *framework.Pass, f *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//cbs:"+SiteDirective)
			if !ok {
				continue
			}
			name := strings.TrimSpace(rest)
			line := pass.Fset.Position(c.Pos()).Line
			out[line] = name
			if _, taken := out[line+1]; !taken {
				out[line+1] = name
			}
		}
	}
	return out
}

// scanConfigCoverage records fault methods armed through chaos.Config
// composite literals (keyed fields) or field assignments in f.
func scanConfigCoverage(pass *framework.Pass, f *ast.File, covered map[string]bool) {
	fieldToMethods := make(map[string][]string)
	for method, fields := range methodConfigFields {
		for _, fd := range fields {
			fieldToMethods[fd] = append(fieldToMethods[fd], method)
		}
	}
	mark := func(fieldName string, owner types.Type) {
		if !isChaosConfig(owner) {
			return
		}
		for _, m := range fieldToMethods[fieldName] {
			covered[m] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						mark(id.Name, t)
					}
				}
			}
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				mark(n.Sel.Name, tv.Type)
			}
		}
		return true
	})
}

// scanEnvCoverage records fault methods whose CBS_CHAOS_* env key appears
// as a string literal in f (tests that drive FromEnv via t.Setenv).
func scanEnvCoverage(f *ast.File, covered map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return true
		}
		for method, key := range methodEnvKeys {
			if strings.Contains(lit.Value, key) {
				covered[method] = true
			}
		}
		return true
	})
}

// isChaosConfig reports whether t is (a pointer to) chaos.Config.
func isChaosConfig(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "chaos" && obj.Name() == "Config"
}

// transitiveImports returns the module-internal transitive import closure
// of pkg (any package sharing pkg's first path element).
func transitiveImports(pkg *types.Package) []*types.Package {
	prefix, _, _ := strings.Cut(pkg.Path(), "/")
	var out []*types.Package
	seen := make(map[*types.Package]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if seen[imp] {
				continue
			}
			seen[imp] = true
			if imp.Path() == prefix || strings.HasPrefix(imp.Path(), prefix+"/") {
				out = append(out, imp)
				visit(imp)
			}
		}
	}
	visit(pkg)
	return out
}

// checkFromEnv verifies, inside the chaos package, that FromEnv arms every
// Config rate field from the environment.
func checkFromEnv(pass *framework.Pass) {
	// Collect the float64 rate fields of Config.
	cfgObj := pass.Pkg.Scope().Lookup("Config")
	fromEnv := pass.Pkg.Scope().Lookup("FromEnv")
	if cfgObj == nil || fromEnv == nil {
		return
	}
	st, ok := cfgObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	rates := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Float64 {
			rates[f.Name()] = true
		}
	}
	// Find the FromEnv declaration and the Config literal fields it sets.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Name.Name != "FromEnv" || decl.Body == nil {
				continue
			}
			set := make(map[string]bool)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || !isChaosConfig(pass.TypesInfo.TypeOf(lit)) {
					return true
				}
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
				return true
			})
			for name := range rates {
				if !set[name] {
					pass.Reportf(decl.Pos(), "FromEnv does not arm Config.%s: a rate the CBS_CHAOS_* seed matrix cannot set hides its fault sites from every chaos-smoke run", name)
				}
			}
		}
	}
}
