package chaosuser

import "cbs/internal/analysis/chaossite/testdata/src/chaos"

// seedMatrix mirrors the chaos-smoke seed matrices: Config rates cover
// Breakdown (and its restart variant), RefineFail and TornRecord.
var seedMatrix = []chaos.Config{
	{Breakdown: 0.5, RestartBreakdown: 0.5},
	{RefineFail: 1, TornRecord: 0.25},
}

// chaosEnv covers EnergyFault through its seed-matrix env key.
var chaosEnv = []string{"CBS_CHAOS_ENERGY=0.5"}

// exerciseCheckpoint covers CheckpointFault by calling it directly.
func exerciseCheckpoint(in *chaos.Injector) bool {
	_ = seedMatrix
	_ = chaosEnv
	return in.CheckpointFault(0)
}
