// Package chaosuser is the downstream chaossite fixture: site
// registration, the name grammar, package-local and cross-package
// uniqueness (through chaosdep's published fact), and the seed-matrix
// coverage rule judged against this package's own test file.
package chaosuser

import (
	"cbs/internal/analysis/chaossite/testdata/src/chaos"
	"cbs/internal/analysis/chaossite/testdata/src/chaosdep"
)

// Solve hits the registered breakdown site; the test file arms it through
// the seed matrix, so it is fully clean.
func Solve(in *chaos.Injector, k int) bool {
	//cbs:chaossite user.breakdown
	if in.Breakdown(k) {
		return false
	}
	_ = in.Seed() // accessor, not a fault draw: no registration required
	return chaosdep.Arm(in, k)
}

// Scan forgets to register its fault site.
func Scan(in *chaos.Injector, i int) bool {
	return in.EnergyFault(i) // want `unregistered chaos fault site: annotate this EnergyFault call`
}

// Tear registers a site under an ill-formed name.
func Tear(in *chaos.Injector, i int) bool {
	//cbs:chaossite Bad_Name
	return in.TornRecord(i) // want `chaos site name "Bad_Name" does not match the grammar`
}

// Refine registers the same name twice in one package.
func Refine(in *chaos.Injector) bool {
	//cbs:chaossite user.dup
	a := in.RefineFail(1)
	//cbs:chaossite user.dup
	b := in.RefineFail(2) // want `chaos site "user\.dup" is already registered at`
	return a || b
}

// Checkpoint reuses a name chaosdep already published as a fact.
func Checkpoint(in *chaos.Injector, i int) bool {
	//cbs:chaossite shared.site
	return in.CheckpointFault(i) // want `chaos site "shared\.site" is already registered in .*chaosdep`
}

// Cache is registered but nothing in this package's tests can reach it.
func Cache(in *chaos.Injector) bool {
	//cbs:chaossite user.cache-a
	return in.CacheFault("a") // want `chaos fault site CacheFault has no seed-matrix coverage`
}

// CacheWaived documents why its uncovered site is sound.
func CacheWaived(in *chaos.Injector) bool {
	//cbs:chaossite user.cache-b
	return in.CacheFault("b") //cbs:chaosexempt exercised by the cross-package integration seed matrix
}
