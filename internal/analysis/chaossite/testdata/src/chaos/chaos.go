// Package chaos models the real internal/chaos injector for the chaossite
// fixtures: same shape (Config of float64 rates, Injector methods drawing
// faults, FromEnv wiring CBS_CHAOS_* keys), none of the machinery.
package chaos

import "os"

// Config carries the per-fault-kind rates.
type Config struct {
	Breakdown        float64
	RestartBreakdown float64
	RefineFail       float64
	EnergyFault      float64
	CheckpointFault  float64
	TornRecord       float64
	CacheFault       float64
	Label            string // non-rate field: not an arming obligation
}

// Injector draws deterministic faults.
type Injector struct {
	cfg  Config
	seed uint64
}

// New builds an injector.
func New(cfg Config, seed uint64) *Injector { return &Injector{cfg: cfg, seed: seed} }

// FromEnv arms every rate from its CBS_CHAOS_* key.
func FromEnv() *Injector {
	rate := func(key string) float64 {
		if os.Getenv(key) != "" {
			return 1
		}
		return 0
	}
	return New(Config{
		Breakdown:        rate("CBS_CHAOS_BREAKDOWN"),
		RestartBreakdown: rate("CBS_CHAOS_RESTART_BREAKDOWN"),
		RefineFail:       rate("CBS_CHAOS_REFINE"),
		EnergyFault:      rate("CBS_CHAOS_ENERGY"),
		CheckpointFault:  rate("CBS_CHAOS_CKPT"),
		TornRecord:       rate("CBS_CHAOS_TORN"),
		CacheFault:       rate("CBS_CHAOS_CACHE"),
	}, 1)
}

// Seed is an accessor, not a fault draw.
func (in *Injector) Seed() uint64 { return in.seed }

// Breakdown draws an iterative-solver breakdown fault.
func (in *Injector) Breakdown(k int) bool { return in != nil && in.cfg.Breakdown > 0 && k >= 0 }

// RefineFail draws a refinement-stage fault.
func (in *Injector) RefineFail(k int) bool { return in != nil && in.cfg.RefineFail > 0 && k >= 0 }

// EnergyFault draws a per-energy fault.
func (in *Injector) EnergyFault(i int) bool { return in != nil && in.cfg.EnergyFault > 0 && i >= 0 }

// CheckpointFault draws a journal-append fault.
func (in *Injector) CheckpointFault(i int) bool {
	return in != nil && in.cfg.CheckpointFault > 0 && i >= 0
}

// TornRecord draws a torn-write fault.
func (in *Injector) TornRecord(i int) bool { return in != nil && in.cfg.TornRecord > 0 && i >= 0 }

// CacheFault draws a result-cache fault.
func (in *Injector) CacheFault(key string) bool {
	return in != nil && in.cfg.CacheFault > 0 && key != ""
}
