// Package chaosdep is the upstream fixture package: it registers one chaos
// site whose name the downstream fixture tries to reuse, proving the
// cross-package uniqueness check through the fact store.
package chaosdep

import "cbs/internal/analysis/chaossite/testdata/src/chaos"

// Arm journals one record with fault injection.
func Arm(in *chaos.Injector, i int) bool {
	return in.CheckpointFault(i) //cbs:chaossite shared.site
}
