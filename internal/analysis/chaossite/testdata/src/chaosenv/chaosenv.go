// Package chaos (fixture chaosenv) models an injector package whose
// FromEnv forgets to arm one of the Config rate fields: a rate the seed
// matrix cannot set hides its fault sites from every chaos-smoke run.
package chaos

// Config carries the per-fault-kind rates.
type Config struct {
	PointFault float64
	TornRecord float64
	Label      string // non-rate field: no arming obligation
}

// Injector draws deterministic faults.
type Injector struct{ cfg Config }

// New builds an injector.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// FromEnv forgets TornRecord.
func FromEnv() *Injector { // want `FromEnv does not arm Config\.TornRecord`
	return New(Config{PointFault: 0.5})
}
