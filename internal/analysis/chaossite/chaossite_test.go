package chaossite_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/chaossite"
)

// TestChaosSite runs with the fixture's test files in view (the -tests
// driver mode), so the seed-matrix coverage rule is active.
func TestChaosSite(t *testing.T) {
	analysistest.RunTests(t, chaossite.Analyzer, "testdata/src/chaosuser")
}

// TestFromEnv checks the injector-package rule on a fixture chaos package
// whose FromEnv misses a rate field.
func TestFromEnv(t *testing.T) {
	analysistest.Run(t, chaossite.Analyzer, "testdata/src/chaosenv")
}
