package hotpathalloc_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "testdata/src/kernels")
}
