// Package hotpathalloc enforces the zero-allocation contract of functions
// annotated with //cbs:hotpath: the contour-solve kernels (blocked stencil
// applies, BlockBiCGDual recurrence bodies, moment accumulators) must not
// allocate, lock, or escape into the runtime, because the paper's
// scalability rests on the steady-state solve loop touching only
// preallocated per-worker state.
//
// Inside an annotated function the analyzer flags:
//
//   - make / new / growing append / heap-escaping composite literals
//   - map operations (index, range, delete) and string/slice conversions
//   - function literals (closure captures allocate)
//   - go, defer, select, and channel sends/receives
//   - calls to anything that is not (a) an allowed builtin, (b) another
//     //cbs:hotpath function, or (c) a function in a whitelisted pure
//     package (math, math/bits, math/cmplx)
//
// The subtree of a panic(...) call is exempt: shape-guard panics are cold
// by definition and their message formatting may allocate.
//
// Cross-package hot-path annotations propagate through package facts. When
// a driver cannot supply dependency facts (a plain vettool run before the
// dependency was vetted), callees in unknown packages are trusted; the
// contract is still enforced where those callees are defined.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"cbs/internal/analysis/framework"
)

// Analyzer is the hotpathalloc analysis.
var Analyzer = &framework.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation, locking and unvetted calls in //cbs:hotpath functions",
	Run:  run,
}

// FactKey names the package-fact blob holding the hot-path function set.
const FactKey = "hotfuncs"

// allowedBuiltins never allocate and are always permitted.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true,
	"real": true, "imag": true, "complex": true,
	"min": true, "max": true,
}

// purePackages are stdlib packages whose functions neither allocate nor
// synchronize; calls into them are always permitted. (math/cmplx is allowed
// here for correctness — the cmplxhot analyzer separately polices its use
// in hot loops on performance grounds.)
var purePackages = map[string]bool{
	"math":       true,
	"math/bits":  true,
	"math/cmplx": true,
}

func run(pass *framework.Pass) error {
	hot := framework.HotFuncs(pass.Files, pass.TypesInfo)
	// Interface methods annotated //cbs:hotpath are hot-path contracts:
	// they join the fact set (and the local set) so calls through the
	// interface are vetted by name, while the body rules apply at each
	// implementation's own annotation. A nil decl is fine — only the keys
	// are consulted below and encoded into the fact blob.
	for key := range framework.HotIfaceMethods(pass.Files, pass.TypesInfo) {
		if _, ok := hot[key]; !ok {
			hot[key] = nil
		}
	}
	if pass.WriteFact != nil {
		pass.WriteFact(FactKey, framework.EncodeSet(hot))
	}
	// Walk in source order so diagnostics are deterministic.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && framework.HasHotPathDirective(decl) {
				checkBody(pass, hot, decl)
			}
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, hot map[string]*ast.FuncDecl, decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	// Interface conversions whose result is immediately type-asserted
	// (`any(x).([]float64)`, the SIMD dispatch idiom of the generic SoA
	// kernels) compile to a type check plus direct use — no interface value
	// is materialized and nothing escapes, so they are exempt from the
	// conversion rule.
	assertConv := map[ast.Expr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ta, ok := n.(*ast.TypeAssertExpr); ok {
			assertConv[ast.Unparen(ta.X)] = true
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return checkCall(pass, hot, n, assertConv)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hot path (closure capture allocates)")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path")
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path (deferred call allocates and delays unlock)")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in hot path")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in hot path")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive in hot path")
			}
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal in hot path (escapes to heap)")
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map composite literal in hot path (allocates)")
			}
		case *ast.IndexExpr:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map access in hot path")
			}
		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map iteration in hot path")
			}
		}
		return true
	})
}

// checkCall vets one call expression; the return value tells ast.Inspect
// whether to descend into the call's children.
func checkCall(pass *framework.Pass, hot map[string]*ast.FuncDecl, call *ast.CallExpr, assertConv map[ast.Expr]bool) bool {
	// Type conversion?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if assertConv[call] {
			return true // assert-guarded conversion: type check only, no boxing
		}
		// A conversion to a type parameter whose type set holds only
		// numeric basic types (the generic kernels' F(x) scalar casts) is
		// ordinary scalar arithmetic; its Underlying() is the constraint
		// interface, which must not trip the interface-conversion rule.
		if tp, ok := tv.Type.(*types.TypeParam); ok {
			if scalarTypeParam(tp) {
				return true
			}
			pass.Reportf(call.Pos(), "conversion to non-scalar type parameter %s in hot path", tv.Type)
			return true
		}
		switch t := tv.Type.Underlying().(type) {
		case *types.Slice, *types.Interface:
			pass.Reportf(call.Pos(), "conversion to %s in hot path (allocates)", tv.Type)
		case *types.Basic:
			if t.Info()&types.IsString != 0 {
				if bt, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Basic); !ok || bt.Info()&types.IsString == 0 {
					pass.Reportf(call.Pos(), "conversion to string in hot path (allocates)")
				}
			}
		}
		return true
	}
	if name := framework.BuiltinName(pass.TypesInfo, call); name != "" {
		switch {
		case name == "panic":
			return false // cold shape-guard path: message formatting is exempt
		case allowedBuiltins[name]:
			return true
		case name == "make" || name == "new" || name == "append":
			pass.Reportf(call.Pos(), "%s in hot path (allocates)", name)
		case name == "delete":
			pass.Reportf(call.Pos(), "map delete in hot path")
		default:
			pass.Reportf(call.Pos(), "builtin %s in hot path", name)
		}
		return true
	}
	fn := framework.CalleeOf(pass.TypesInfo, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "call through function value or interface in hot path")
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil || purePackages[pkg.Path()] {
		return true
	}
	key := framework.FuncKey(fn)
	if pkg.Path() == pass.Pkg.Path() {
		if _, ok := hot[key]; !ok {
			pass.Reportf(call.Pos(), "hot path calls %s, which is not //cbs:hotpath", fn.Name())
		}
		return true
	}
	if pass.ReadFact == nil {
		return true
	}
	data, known := pass.ReadFact(pkg.Path(), FactKey)
	if !known {
		return true // no facts for that package: trust, enforced at definition site
	}
	if !framework.DecodeSet(data)[key] {
		pass.Reportf(call.Pos(), "hot path calls %s, which is not //cbs:hotpath", key)
	}
	return true
}

// scalarTypeParam reports whether every type in the parameter's type set is
// a non-string basic type (so converting to it is a register operation, not
// an allocation). Methodless unions of ~float32|~float64-style terms
// qualify; anything unresolvable is conservatively rejected.
func scalarTypeParam(tp *types.TypeParam) bool {
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() != 0 || iface.NumEmbeddeds() == 0 {
		return false
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		u, ok := iface.EmbeddedType(i).(*types.Union)
		if !ok {
			return false
		}
		for j := 0; j < u.Len(); j++ {
			b, ok := u.Term(j).Type().Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsString != 0 {
				return false
			}
		}
	}
	return true
}
