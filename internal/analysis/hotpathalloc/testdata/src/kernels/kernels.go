// Package kernels is the hotpathalloc fixture: annotated functions with
// each class of forbidden construct, plus clean kernels that must stay
// silent.
package kernels

import (
	"math"
	"sync"
)

var sink []float64

// axpy is a clean hot-path kernel: indexing, builtins and pure-package
// calls only.
//
//cbs:hotpath
func axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("kernels: length mismatch") // panic subtree is exempt
	}
	for i := range x {
		y[i] += a * x[i]
	}
	_ = math.Sqrt(a)
}

// caller is clean: it calls another annotated kernel.
//
//cbs:hotpath
func caller(x, y []float64) {
	axpy(2, x, y)
	_ = len(x)
	_ = min(1, 2)
}

//cbs:hotpath
func allocates(n int) []float64 {
	buf := make([]float64, n) // want `make in hot path \(allocates\)`
	return buf
}

//cbs:hotpath
func grows(dst []float64) []float64 {
	dst = append(dst, 1) // want `append in hot path \(allocates\)`
	return dst
}

func cold() {}

//cbs:hotpath
func callsCold() {
	cold() // want `hot path calls cold, which is not //cbs:hotpath`
}

//cbs:hotpath
func deferred(mu *sync.Mutex) {
	defer mu.Unlock() // want `defer in hot path`
}

//cbs:hotpath
func mapAccess(m map[int]float64, k int) float64 {
	return m[k] // want `map access in hot path`
}

//cbs:hotpath
func closes() func() {
	return func() {} // want `function literal in hot path \(closure capture allocates\)`
}

//cbs:hotpath
func literal(n int) {
	sink = []float64{float64(n)} // want `slice/map composite literal in hot path \(allocates\)`
}

//cbs:hotpath
func dynamic(f func()) {
	f() // want `call through function value or interface in hot path`
}

// dispatch uses the assert-guarded conversion idiom of the SIMD kernels:
// any(x).([]T) compiles to a type check with no interface value, so the
// conversion must not be flagged. A bare conversion still is.
//
//cbs:hotpath
func dispatch[F float32 | float64](dst []F) bool {
	if _, ok := any(dst).([]float64); ok {
		return true
	}
	_ = any(dst) // want `conversion to any in hot path \(allocates\)`
	return false
}

// unannotated is free to allocate; the analyzer must not touch it.
func unannotated(n int) []float64 {
	return make([]float64, n)
}

// Applier models an operator-backend contract: a method annotated
// //cbs:hotpath in the interface declaration is a hot-path contract, so a
// hot kernel may dispatch through it; an unannotated method stays cold and
// calls to it are flagged by name.
type Applier interface {
	//cbs:hotpath
	ApplyBlock(v []float64)
	Setup(n int)
}

//cbs:hotpath
func viaContract(a Applier, v []float64) {
	a.ApplyBlock(v)
	a.Setup(len(v)) // want `hot path calls Setup, which is not //cbs:hotpath`
}
