package framework

import (
	"reflect"
	"testing"
)

// TestEncodeListRoundTrip: lists encode sorted and deterministic, and decode
// back to the same items regardless of input order.
func TestEncodeListRoundTrip(t *testing.T) {
	a := EncodeList([]string{"zeta", "alpha", "mid"})
	b := EncodeList([]string{"mid", "zeta", "alpha"})
	if a != b {
		t.Errorf("EncodeList is order-sensitive: %q vs %q", a, b)
	}
	if a != "alpha\nmid\nzeta\n" {
		t.Errorf("EncodeList blob = %q, want sorted newline-terminated lines", a)
	}
	got := DecodeList(a)
	if !reflect.DeepEqual(got, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("DecodeList = %v", got)
	}
	// EncodeList must not mutate its argument (it sorts a copy).
	in := []string{"b", "a"}
	EncodeList(in)
	if in[0] != "b" {
		t.Errorf("EncodeList sorted the caller's slice: %v", in)
	}
}

func TestEncodeListEmpty(t *testing.T) {
	if blob := EncodeList(nil); blob != "" {
		t.Errorf("empty list blob = %q", blob)
	}
	if items := DecodeList(""); len(items) != 0 {
		t.Errorf("DecodeList(\"\") = %v", items)
	}
}

// TestEncodeTableRoundTrip: tables encode as sorted key\tvalue lines and
// decode back exactly; values may contain spaces (positions do).
func TestEncodeTableRoundTrip(t *testing.T) {
	in := map[string]string{
		"bicg.breakdown": "Breakdown linsolve.go:126",
		"dist.breakdown": "Breakdown dist.go:222",
		"journal.ckpt":   "CheckpointFault journal.go:88",
	}
	blob := EncodeTable(in)
	want := "bicg.breakdown\tBreakdown linsolve.go:126\n" +
		"dist.breakdown\tBreakdown dist.go:222\n" +
		"journal.ckpt\tCheckpointFault journal.go:88\n"
	if blob != want {
		t.Errorf("EncodeTable blob = %q, want %q", blob, want)
	}
	if got := DecodeTable(blob); !reflect.DeepEqual(got, in) {
		t.Errorf("DecodeTable = %v, want %v", got, in)
	}
}

func TestEncodeTableEmpty(t *testing.T) {
	if blob := EncodeTable(nil); blob != "" {
		t.Errorf("empty table blob = %q", blob)
	}
	if m := DecodeTable(""); len(m) != 0 {
		t.Errorf("DecodeTable(\"\") = %v", m)
	}
}

// TestDecodeSet: sets are lists by encoding; DecodeSet inverts EncodeSet's
// membership view (EncodeSet itself is exercised through the analyzers,
// whose fact blobs flow through EncodeList — the wire format is shared).
func TestDecodeSet(t *testing.T) {
	set := DecodeSet(EncodeList([]string{"f.Key", "g.Key"}))
	if !set["f.Key"] || !set["g.Key"] || set["absent"] {
		t.Errorf("DecodeSet membership wrong: %v", set)
	}
}
