// Package framework is a minimal, dependency-free substitute for
// golang.org/x/tools/go/analysis: just enough driver-independent structure
// to write the cbscheck analyzers against (an Analyzer with a Run function,
// a Pass carrying the type-checked package, diagnostics, and a tiny
// package-fact store for cross-package annotation propagation).
//
// It exists because this repository builds with the standard library only;
// the API deliberately mirrors go/analysis so the analyzers could be ported
// to the real framework by changing imports.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	Name string // command-line and diagnostic identifier
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test source files of the package
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)

	// ReadFact returns the fact blob a dependency package exported under
	// key, or nil when the package exported none ("" pkgPath is invalid).
	// The second result reports whether any facts are available for the
	// package at all: drivers that cannot see dependency facts (a bare
	// vettool run without .vetx inputs) return false, and analyzers should
	// then degrade to local-only enforcement rather than report spurious
	// violations.
	ReadFact func(pkgPath, key string) (data string, known bool)

	// WriteFact exports a fact blob under key for dependent packages.
	WriteFact func(key, data string)
}

// Reportf formats and records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// HotPathDirective is the annotation contract enforced by hotpathalloc: a
// function whose doc comment contains this directive on its own line is a
// hot-path kernel (no allocation, no locks, restricted callees).
const HotPathDirective = "//cbs:hotpath"

// HasHotPathDirective reports whether the function declaration carries the
// //cbs:hotpath annotation in its doc comment group.
func HasHotPathDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathDirective {
			return true
		}
	}
	return false
}

// FuncKey returns the stable cross-package identifier of a function object,
// e.g. "(*cbs/internal/hamiltonian.Operator).ApplyH0Block" or
// "cbs/internal/fd.MustStencil". It is used both when exporting hot-path
// facts and when resolving callees against imported facts. Instantiated
// generics are keyed by their origin ((*soa.Block[float64]).NB and
// (*soa.Block[F]).NB are the same function and the same fact).
func FuncKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// HotFuncs collects the hot-path-annotated functions of the files, keyed by
// FuncKey. The returned set is what hotpathalloc exports as this package's
// fact blob (one key per line).
func HotFuncs(files []*ast.File, info *types.Info) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || !HasHotPathDirective(decl) {
				continue
			}
			obj, ok := info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			out[FuncKey(obj)] = decl
		}
	}
	return out
}

// EncodeSet serializes a fact set (one key per line, sorted by map order is
// not required: consumers only test membership).
func EncodeSet(set map[string]*ast.FuncDecl) string {
	var b strings.Builder
	for k := range set {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// DecodeSet parses an EncodeSet blob back into a membership set.
func DecodeSet(data string) map[string]bool {
	out := make(map[string]bool)
	for _, line := range strings.Split(data, "\n") {
		if line != "" {
			out[line] = true
		}
	}
	return out
}

// CalleeOf resolves the static callee of a call expression, or nil when the
// call is through a function value, an interface method, a builtin, or a
// type conversion.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// BuiltinName returns the name of the builtin being called ("make",
// "append", "len", ...), or "" when the call is not a builtin.
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
