// Package framework is a minimal, dependency-free substitute for
// golang.org/x/tools/go/analysis: just enough driver-independent structure
// to write the cbscheck analyzers against (an Analyzer with a Run function,
// a Pass carrying the type-checked package, diagnostics, and a tiny
// package-fact store for cross-package annotation propagation).
//
// It exists because this repository builds with the standard library only;
// the API deliberately mirrors go/analysis so the analyzers could be ported
// to the real framework by changing imports.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	Name string // command-line and diagnostic identifier
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error

	// TestAware analyzers understand _test.go files: under the driver's
	// -tests mode they receive the test-expanded file view and are
	// responsible for their own per-file scoping (framework.IsTestFile).
	// Analyzers without it always receive the production view, so turning
	// on -tests cannot make a library-code invariant judge test code.
	TestAware bool
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test source files of the package
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)

	// ReadFact returns the fact blob a dependency package exported under
	// key, or nil when the package exported none ("" pkgPath is invalid).
	// The second result reports whether any facts are available for the
	// package at all: drivers that cannot see dependency facts (a bare
	// vettool run without .vetx inputs) return false, and analyzers should
	// then degrade to local-only enforcement rather than report spurious
	// violations.
	ReadFact func(pkgPath, key string) (data string, known bool)

	// WriteFact exports a fact blob under key for dependent packages.
	WriteFact func(key, data string)
}

// Reportf formats and records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// HotPathDirective is the annotation contract enforced by hotpathalloc: a
// function whose doc comment contains this directive on its own line is a
// hot-path kernel (no allocation, no locks, restricted callees).
const HotPathDirective = "//cbs:hotpath"

// HasHotPathDirective reports whether the function declaration carries the
// //cbs:hotpath annotation in its doc comment group.
func HasHotPathDirective(decl *ast.FuncDecl) bool {
	return decl.Doc != nil && hasHotPathDoc(decl.Doc)
}

// hasHotPathDoc reports whether a doc comment group contains the
// //cbs:hotpath directive on its own line.
func hasHotPathDoc(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == HotPathDirective {
			return true
		}
	}
	return false
}

// Directive scans a function declaration's doc comment for a
// "//cbs:<name>" directive and returns its argument string (the rest of
// the line, space-trimmed) and whether the directive is present. A bare
// directive returns ("", true).
func Directive(decl *ast.FuncDecl, name string) (args string, ok bool) {
	if decl == nil || decl.Doc == nil {
		return "", false
	}
	prefix := "//cbs:" + name
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == prefix {
			return "", true
		}
		if rest, found := strings.CutPrefix(text, prefix+" "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsTestFile reports whether the file was parsed from a _test.go source.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Waivers indexes the per-line waiver comments of one file. A waiver is
//
//	//cbs:<directive> <reason>
//
// on the flagged line itself or on the line immediately above it, and
// suppresses that line's diagnostics for the analyzer owning the
// directive. The reason string is mandatory: a waiver without one is
// itself reported (through Waived), so every escape hatch in the tree
// documents why it is sound.
type Waivers struct {
	pass *Pass
	// byLine maps directive name -> waiving line -> reason comment.
	byLine map[string]map[int]*ast.Comment
}

// NewWaivers collects the waiver comments of the pass's files for the
// given directive names.
func NewWaivers(pass *Pass, directives ...string) *Waivers {
	w := &Waivers{pass: pass, byLine: make(map[string]map[int]*ast.Comment)}
	for _, d := range directives {
		w.byLine[d] = make(map[int]*ast.Comment)
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				name, _, _ := strings.Cut(text, " ")
				name = strings.TrimPrefix(name, "cbs:")
				lines, ok := w.byLine[name]
				if !ok || !strings.HasPrefix(strings.TrimSpace(c.Text), "//cbs:"+name) {
					continue
				}
				// The waiver covers its own line and the next one, so it
				// can sit at the end of the flagged line or just above it.
				line := pass.Fset.Position(c.Pos()).Line
				lines[line] = c
				lines[line+1] = c
			}
		}
	}
	return w
}

// Waived reports whether a diagnostic at pos is waived under directive.
// A matching waiver with an empty reason is reported as its own
// diagnostic (once per waiver comment) and still suppresses the finding,
// so fixing the reason is the only way to a clean run.
func (w *Waivers) Waived(pos token.Pos, directive string) bool {
	lines := w.byLine[directive]
	if lines == nil {
		return false
	}
	c, ok := lines[w.pass.Fset.Position(pos).Line]
	if !ok {
		return false
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//cbs:"+directive))
	if reason == "" {
		w.pass.Reportf(pos, "//cbs:%s waiver without a reason: state why this site is exempt", directive)
		// Report once per comment: blank it so the next hit stays silent.
		c2 := *c
		c2.Text = "//cbs:" + directive + " (reported)"
		for line, cc := range lines {
			if cc == c {
				lines[line] = &c2
			}
		}
	}
	return true
}

// FuncKey returns the stable cross-package identifier of a function object,
// e.g. "(*cbs/internal/hamiltonian.Operator).ApplyH0Block" or
// "cbs/internal/fd.MustStencil". It is used both when exporting hot-path
// facts and when resolving callees against imported facts. Instantiated
// generics are keyed by their origin ((*soa.Block[float64]).NB and
// (*soa.Block[F]).NB are the same function and the same fact).
func FuncKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// HotFuncs collects the hot-path-annotated functions of the files, keyed by
// FuncKey. The returned set is what hotpathalloc exports as this package's
// fact blob (one key per line).
func HotFuncs(files []*ast.File, info *types.Info) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || !HasHotPathDirective(decl) {
				continue
			}
			obj, ok := info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			out[FuncKey(obj)] = decl
		}
	}
	return out
}

// HotIfaceMethods collects interface methods annotated //cbs:hotpath in
// their interface declaration, keyed by FuncKey. An annotated interface
// method is a hot-path *contract*: calls through it are permitted inside
// hot kernels, and every implementation is expected to carry its own
// //cbs:hotpath annotation (which is where the body rules are enforced —
// an interface method has no body to check).
func HotIfaceMethods(files []*ast.File, info *types.Info) map[string]bool {
	out := make(map[string]bool)
	for _, f := range files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				iface, ok := ts.Type.(*ast.InterfaceType)
				if !ok || iface.Methods == nil {
					continue
				}
				for _, m := range iface.Methods.List {
					if m.Doc == nil || !hasHotPathDoc(m.Doc) {
						continue
					}
					for _, name := range m.Names {
						if obj, ok := info.Defs[name].(*types.Func); ok {
							out[FuncKey(obj)] = true
						}
					}
				}
			}
		}
	}
	return out
}

// EncodeSet serializes a fact set (one key per line, sorted so the blob is
// byte-deterministic and vetx cache entries stay stable across runs).
func EncodeSet(set map[string]*ast.FuncDecl) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	return EncodeList(keys)
}

// DecodeSet parses an EncodeSet blob back into a membership set.
func DecodeSet(data string) map[string]bool {
	out := make(map[string]bool)
	for _, line := range DecodeList(data) {
		out[line] = true
	}
	return out
}

// EncodeList serializes a string list as a sorted newline-joined fact blob.
// It is the shared scalar encoding of the fact store: membership sets
// (hotpathalloc's hot functions, errsentinel's sentinel names) are lists
// whose consumers only test membership.
func EncodeList(items []string) string {
	sorted := append([]string(nil), items...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, it := range sorted {
		b.WriteString(it)
		b.WriteByte('\n')
	}
	return b.String()
}

// DecodeList parses an EncodeList blob back into its items (sorted order).
func DecodeList(data string) []string {
	var out []string
	for _, line := range strings.Split(data, "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

// EncodeTable serializes a string-to-string map as a sorted key\tvalue fact
// blob: the shared associative encoding of the fact store (chaossite's
// site-name -> definition-site table). Keys and values must not contain
// tabs or newlines.
func EncodeTable(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\t')
		b.WriteString(m[k])
		b.WriteByte('\n')
	}
	return b.String()
}

// DecodeTable parses an EncodeTable blob back into a map.
func DecodeTable(data string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(data, "\n") {
		if line == "" {
			continue
		}
		k, v, _ := strings.Cut(line, "\t")
		out[k] = v
	}
	return out
}

// CalleeOf resolves the static callee of a call expression, or nil when the
// call is through a function value, an interface method, a builtin, or a
// type conversion.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// BuiltinName returns the name of the builtin being called ("make",
// "append", "len", ...), or "" when the call is not a builtin.
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
