// Package layout is the soalayout fixture: every banned construct next to
// the clean idiom that must stay silent.
package layout

import "cbs/internal/soa"

// literal constructs a Block by hand instead of via NewBlock.
func literal(n, nb int) *soa.Block[float64] {
	b := soa.Block[float64]{ // want `soa\.Block composite literal`
		Re: make([]float64, n*nb),
		Im: make([]float64, n*nb),
	}
	return &b
}

// headerWrite rebinds the planes of an existing block.
func headerWrite(b *soa.Block[float64], n int) {
	b.Re = make([]float64, n) // want `write to the \.Re plane header`
	b.Im = b.Im[:n]           // want `write to the \.Im plane header`
}

// headerAppend grows a plane behind the owner's back.
func headerAppend(b *soa.Block[float64], x float64) {
	b.Re = append(b.Re, x) // want `write to the \.Re plane header`
}

// pointerLiteral takes the address of a literal directly — the pointer
// spelling must not slip past the composite-literal rule.
func pointerLiteral(n int) *soa.Block[float32] {
	return &soa.Block[float32]{ // want `soa\.Block composite literal`
		Re: make([]float32, n),
		Im: make([]float32, n),
	}
}

// packageBlock smuggles a literal in at package level, outside any
// function body (the GenDecl walk).
var packageBlock = soa.Block[float64]{} // want `soa\.Block composite literal`

// cleanConstruction is the sanctioned idiom: NewBlock, element writes,
// Reserve for reshaping, shims outside kernels.
func cleanConstruction(n, nb int, src []complex128) *soa.Block[float64] {
	b := soa.NewBlock[float64](n, nb)
	soa.Pack(b, src)
	b.Re[0] = 1
	b.Im[0] = -1
	b.Reserve(n, nb)
	return b
}

// hotShim converts inside an annotated kernel.
//
//cbs:hotpath
func hotShim(b *soa.Block[float64], scratch []complex128) {
	soa.Unpack(scratch, b) // want `soa\.Unpack inside a hot-path kernel`
	for i := range scratch {
		scratch[i] *= 2
	}
	soa.Pack(b, scratch) // want `soa\.Pack inside a hot-path kernel`
}

// hotConvert downcasts between precisions inside a kernel — the mixed-
// precision conversion shims are boundary operations like Pack/Unpack.
//
//cbs:hotpath
func hotConvert(dst *soa.Block[float32], src *soa.Block[float64]) {
	soa.Convert(dst, src)      // want `soa\.Convert inside a hot-path kernel`
	soa.AccumConvert(src, dst) // want `soa\.AccumConvert inside a hot-path kernel`
}

// hotReconstruct re-materializes complex elements from the planes inside a
// kernel (AoS arithmetic in disguise).
//
//cbs:hotpath
func hotReconstruct(b *soa.Block[float64]) complex128 {
	var s complex128
	for i := range b.Re {
		s += complex(b.Re[i], b.Im[i]) // want `complex\(\) rebuilt from indexed SoA planes`
	}
	return s
}

// hotClean is a correct kernel: split-plane arithmetic throughout, with a
// final scalar reconstruction from plain locals (allowed).
//
//cbs:hotpath
func hotClean(b *soa.Block[float64]) complex128 {
	var re, im float64
	for i := range b.Re {
		re += b.Re[i]
		im += b.Im[i]
	}
	return complex(re, im)
}

// coldShim is the same conversion outside a kernel: allowed.
func coldShim(b *soa.Block[float64], scratch []complex128) {
	soa.Unpack(scratch, b)
	_ = complex(b.Re[0], b.Im[0])
}
