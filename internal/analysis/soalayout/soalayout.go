// Package soalayout polices the split-complex (SoA) layout invariants of
// internal/soa outside the package that owns the representation:
//
//   - soa.Block composite literals: the planes' lengths and the (n, nb)
//     shape are coupled invariants that only soa.NewBlock/Reserve may
//     establish; a literal can silently produce mismatched planes.
//   - assignments to the .Re/.Im slice headers (b.Re = ..., including
//     append): rebinding a plane breaks the shared-shape contract and any
//     aliasing the owner relies on. Element writes (b.Re[i] = x) are the
//     whole point and stay free.
//   - soa.Pack/Unpack/Convert/AccumConvert calls inside //cbs:hotpath
//     functions: the pack shims are API-boundary conversions; a kernel
//     that converts per call is paying the AoS cost plus a copy, which
//     defeats the layout.
//   - complex(...) reconstruction from indexed .Re/.Im planes inside
//     //cbs:hotpath functions: element-wise re-materialization of
//     complex128 values inside a kernel is AoS arithmetic in disguise.
//     Reconstructing from plain local scalars remains allowed (that is
//     how results legitimately leave a kernel).
package soalayout

import (
	"go/ast"
	"go/types"

	"cbs/internal/analysis/framework"
)

// soaPkgPath is the package owning the split-complex representation.
const soaPkgPath = "cbs/internal/soa"

// shimFuncs are the boundary conversions banned inside hot-path kernels.
var shimFuncs = map[string]bool{
	"Pack":         true,
	"Unpack":       true,
	"Convert":      true,
	"AccumConvert": true,
}

// Analyzer is the soalayout analysis.
var Analyzer = &framework.Analyzer{
	Name: "soalayout",
	Doc:  "enforce split-complex SoA layout invariants: no Block literals or plane-header writes outside internal/soa, no pack shims or per-element complex reconstruction in hot-path kernels",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == soaPkgPath {
		return nil // the owner may do anything with its representation
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				check(pass, decl.Body, framework.HasHotPathDirective(decl))
			case *ast.GenDecl:
				// Package-level var blocks can also smuggle in literals.
				check(pass, decl, false)
			}
		}
	}
	return nil
}

// check walks one declaration subtree; hot enables the kernel-only rules.
func check(pass *framework.Pass, root ast.Node, hot bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isSoABlock(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(), "soa.Block composite literal: construct blocks with soa.NewBlock so the plane lengths and shape stay consistent")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkHeaderWrite(pass, lhs)
			}
		case *ast.CallExpr:
			if hot {
				checkHotCall(pass, n)
			}
		}
		return true
	})
}

// checkHeaderWrite flags assignments that rebind a Block's Re/Im plane.
func checkHeaderWrite(pass *framework.Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Re" && sel.Sel.Name != "Im") {
		return
	}
	if isSoABlock(pass.TypesInfo.TypeOf(sel.X)) {
		pass.Reportf(lhs.Pos(), "write to the .%s plane header of a soa.Block: planes are owned by internal/soa (resize with Reserve, write elements in place)", sel.Sel.Name)
	}
}

// checkHotCall flags pack shims and per-element complex reconstruction
// inside hot-path kernels.
func checkHotCall(pass *framework.Pass, call *ast.CallExpr) {
	if fn := framework.CalleeOf(pass.TypesInfo, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == soaPkgPath && shimFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "soa.%s inside a hot-path kernel: pack/convert shims belong at the API boundary, not in the kernel", fn.Name())
		}
		return
	}
	if framework.BuiltinName(pass.TypesInfo, call) != "complex" {
		return
	}
	for _, arg := range call.Args {
		if planeIndexExpr(pass, arg) {
			pass.Reportf(call.Pos(), "complex() rebuilt from indexed SoA planes inside a hot-path kernel: keep the arithmetic on the split planes")
			return
		}
	}
}

// planeIndexExpr reports whether e contains an index expression over a
// Block's Re/Im plane (b.Re[i], b.Im[j+k], ...).
func planeIndexExpr(pass *framework.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Re" || sel.Sel.Name == "Im") &&
			isSoABlock(pass.TypesInfo.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// isSoABlock reports whether t is soa.Block[F] (any instantiation) or a
// pointer to one.
func isSoABlock(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == soaPkgPath && obj.Name() == "Block"
}
