package soalayout_test

import (
	"testing"

	"cbs/internal/analysis/analysistest"
	"cbs/internal/analysis/soalayout"
)

func TestSoALayout(t *testing.T) {
	analysistest.Run(t, soalayout.Analyzer, "testdata/src/layout")
}
