package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrips(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
			return true // conversion factors would overflow
		}
		okLen := math.Abs(BohrToAngstrom(AngstromToBohr(x))-x) <= 1e-12*math.Abs(x)
		okE := math.Abs(HartreeToEV(EVToHartree(x))-x) <= 1e-12*math.Abs(x)
		return okLen && okE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKnownValues(t *testing.T) {
	if math.Abs(HartreeToEV(1)-27.2114) > 1e-3 {
		t.Errorf("1 hartree = %g eV", HartreeToEV(1))
	}
	if math.Abs(AngstromToBohr(1)-1.8897) > 1e-3 {
		t.Errorf("1 angstrom = %g bohr", AngstromToBohr(1))
	}
	if math.Abs(BohrPerAngstrom*AngstromPerBohr-1) > 1e-14 {
		t.Error("inverse constants inconsistent")
	}
	if math.Abs(EVPerHartree*HartreePerEV-1) > 1e-14 {
		t.Error("inverse energy constants inconsistent")
	}
}
