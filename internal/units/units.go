// Package units defines the physical constants and unit conversions used
// throughout the complex-band-structure code. All internal computation is in
// Hartree atomic units (energy in hartree, length in bohr); user-facing
// quantities follow the paper's conventions (eV, angstrom).
package units

// Conversion factors (CODATA-2014 rounded, more than sufficient here).
const (
	// BohrPerAngstrom converts angstrom to bohr.
	BohrPerAngstrom = 1.0 / 0.52917721067
	// AngstromPerBohr converts bohr to angstrom.
	AngstromPerBohr = 0.52917721067
	// EVPerHartree converts hartree to electronvolt.
	EVPerHartree = 27.211386245988
	// HartreePerEV converts electronvolt to hartree.
	HartreePerEV = 1.0 / EVPerHartree
)

// AngstromToBohr converts a length in angstrom to bohr.
func AngstromToBohr(a float64) float64 { return a * BohrPerAngstrom }

// BohrToAngstrom converts a length in bohr to angstrom.
func BohrToAngstrom(b float64) float64 { return b * AngstromPerBohr }

// EVToHartree converts an energy in eV to hartree.
func EVToHartree(e float64) float64 { return e * HartreePerEV }

// HartreeToEV converts an energy in hartree to eV.
func HartreeToEV(h float64) float64 { return h * EVPerHartree }
