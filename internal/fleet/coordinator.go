package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/core"
	"cbs/internal/fingerprint"
	"cbs/internal/sweep"
)

// CoordinatorConfig tunes the coordinator end of a fleet sweep.
type CoordinatorConfig struct {
	// Addr is the TCP listen address workers dial (":0" for an ephemeral
	// port; the bound address is reported via OnListen).
	Addr string
	// OnListen, when non-nil, receives the bound listen address before any
	// worker is accepted — tests and launchers use it with Addr ":0".
	OnListen func(addr string)
	// MinWorkers gates the first dispatch: no energy is assigned until
	// this many workers have registered (default 1). Later departures do
	// not re-raise the gate — survivors keep the sweep moving.
	MinWorkers int
	// TCP tunes the reliable links; IOTimeout*RetryBudget is the worker
	// failure-detection horizon.
	TCP comm.TCPOptions
	// Heartbeat is the keepalive interval toward each worker (default
	// derived from TCP so heartbeats outpace the starvation budget).
	Heartbeat time.Duration

	// OperatorDesc identifies the physics; it feeds every assignment's
	// solve fingerprint and the journal fingerprint.
	OperatorDesc string
	// CheckpointPath / Resume / RetryFailed journal the sweep exactly as
	// sweep.Config does: completed energies are appended as they arrive,
	// and a resumed journal's energies are restored instead of re-solved.
	CheckpointPath string
	Resume         bool
	RetryFailed    bool
	// OnEnergy, when non-nil, observes each energy reaching a terminal
	// state (solved by a worker, or restored from the journal). Called
	// from coordinator goroutines; must be safe for concurrent use.
	OnEnergy func(sweep.EnergyResult)

	// Chaos, when non-nil, arms the coordinator side of every worker link
	// with injected network faults (testing only).
	Chaos *chaos.Injector
}

// remote is the coordinator's proxy for one registered worker.
type remote struct {
	id       byte
	name     string
	rc       *comm.RConn
	assigned map[int]bool // outstanding energy indices
	hbStop   chan struct{}
	hbOnce   sync.Once
}

func (w *remote) stopHeartbeat() {
	w.hbOnce.Do(func() { close(w.hbStop) })
}

// coordinator is the mutable state of one Coordinate call.
type coordinator struct {
	cfg      CoordinatorConfig
	hb       time.Duration
	opDigest string
	es       []float64
	opts     core.Options // shipped to workers; Chaos stripped
	keys     []string     // fingerprint.Solve per energy

	mu         sync.Mutex
	closed     bool
	open       bool // MinWorkers satisfied at least once
	seen       int  // registrations ever
	nextID     byte
	workers    map[byte]*remote
	assignedTo []int // worker id per energy, -1 if unowned
	done       []bool
	results    []sweep.EnergyResult
	journal    *sweep.Journal
	remaining  int
	err        error // first fatal error (checkpoint failure)

	finished   chan struct{}
	finishOnce sync.Once
	wg         sync.WaitGroup
}

// Coordinate serves one sweep to a fleet of workers and blocks until every
// energy has a terminal result, the context dies, or the checkpoint fails.
// The report mirrors sweep.Run's: every energy in order, with energies the
// fleet never completed marked Skipped.
func Coordinate(ctx context.Context, es []float64, opts core.Options, cfg CoordinatorConfig) (*sweep.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.MinWorkers < 1 {
		cfg.MinWorkers = 1
	}
	shipped := opts
	shipped.Chaos = nil // fault injectors never cross the wire

	co := &coordinator{
		cfg:        cfg,
		hb:         heartbeatFor(cfg.Heartbeat, cfg.TCP),
		opDigest:   fingerprint.Operator(cfg.OperatorDesc),
		es:         es,
		opts:       shipped,
		keys:       make([]string, len(es)),
		nextID:     1,
		workers:    make(map[byte]*remote),
		assignedTo: make([]int, len(es)),
		done:       make([]bool, len(es)),
		results:    make([]sweep.EnergyResult, len(es)),
		remaining:  len(es),
		finished:   make(chan struct{}),
	}
	for i, e := range es {
		co.keys[i] = fingerprint.Solve(cfg.OperatorDesc, e, shipped)
		co.assignedTo[i] = -1
	}

	if cfg.CheckpointPath != "" {
		fp := sweep.Fingerprint(cfg.OperatorDesc, es, shipped)
		var (
			recs []sweep.Record
			err  error
		)
		if cfg.Resume {
			co.journal, recs, err = sweep.Resume(cfg.CheckpointPath, fp)
		} else {
			co.journal, err = sweep.Create(cfg.CheckpointPath, fp)
		}
		if err != nil {
			return co.report(), err
		}
		defer co.journal.Close()
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(es) || co.done[rec.Index] {
				continue
			}
			if rec.Status == sweep.StatusFailed && cfg.RetryFailed {
				continue
			}
			er := rec.Restore()
			er.Attempts = 0
			er.FromJournal = true
			co.done[rec.Index] = true
			co.results[rec.Index] = er
			co.remaining--
			if cfg.OnEnergy != nil {
				cfg.OnEnergy(er)
			}
		}
	}
	if co.remaining == 0 {
		return co.report(), nil
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return co.report(), err
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr().String())
	}
	co.wg.Add(1)
	go co.acceptLoop(ln)

	select {
	case <-co.finished:
	case <-ctx.Done():
	}

	co.mu.Lock()
	co.closed = true
	ws := make([]*remote, 0, len(co.workers))
	var pending []*remote
	for _, w := range co.workers {
		if w.name == "" {
			// Mid-registration link: it was never welcomed (and may yet be
			// refused), so it gets a hangup, not the done broadcast — an
			// unvalidated peer must only ever observe a typed link
			// failure, never sweep state.
			pending = append(pending, w)
			continue
		}
		ws = append(ws, w)
	}
	ferr := co.err
	co.mu.Unlock()
	ln.Close()
	for _, w := range pending {
		w.stopHeartbeat()
		w.rc.Close()
	}
	for _, w := range ws {
		sendMsg(w.rc, msg{Type: msgDone}) // best effort
	}
	// Drain: let workers read the done frame and hang up on their own —
	// their serve loops retire them as the links die — before force-closing
	// whatever is left. Without the pause, closing a link with worker
	// heartbeats still in flight can reset the conn under the done frame.
	o := cfg.TCP.WithDefaults()
	drain := o.IOTimeout * time.Duration(o.RetryBudget) * 2
	if drain > 2*time.Second {
		drain = 2 * time.Second
	}
	deadline := time.Now().Add(drain)
	for time.Now().Before(deadline) {
		co.mu.Lock()
		n := len(co.workers)
		co.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, w := range ws {
		w.stopHeartbeat()
		w.rc.Close()
	}
	co.wg.Wait()

	report := co.report()
	if ferr != nil {
		return report, ferr
	}
	if err := ctx.Err(); err != nil && report.Skipped > 0 {
		return report, err
	}
	return report, nil
}

// report assembles the final sweep report; energies without a terminal
// result are Skipped.
func (co *coordinator) report() *sweep.Report {
	co.mu.Lock()
	defer co.mu.Unlock()
	rep := &sweep.Report{Results: co.results}
	for i := range co.results {
		if !co.done[i] {
			co.results[i] = sweep.EnergyResult{Index: i, Energy: co.es[i], Status: sweep.StatusSkipped}
		}
		er := &co.results[i]
		switch er.Status {
		case sweep.StatusOK:
			rep.OK++
		case sweep.StatusDegraded:
			rep.Degraded++
		case sweep.StatusFailed:
			rep.Failed++
		case sweep.StatusSkipped:
			rep.Skipped++
		}
		if er.FromJournal {
			rep.Restored++
		}
		rep.Attempts += er.Attempts
	}
	return rep
}

// fatal records the first sweep-fatal error and ends the sweep.
func (co *coordinator) fatal(err error) {
	co.mu.Lock()
	if co.err == nil {
		co.err = err
	}
	co.mu.Unlock()
	co.finish()
}

func (co *coordinator) finish() {
	co.finishOnce.Do(func() { close(co.finished) })
}

// acceptLoop admits conns until the listener closes.
func (co *coordinator) acceptLoop(ln net.Listener) {
	defer co.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			co.admit(c)
		}()
	}
}

// admit routes one accepted conn: a wildcard hello is a fresh registration,
// a known worker id is a reconnect of its existing link, and anything else
// is a stale identity (a worker already declared dead) and is refused so
// the process fails fast and can rejoin fresh.
func (co *coordinator) admit(c net.Conn) {
	o := co.cfg.TCP.WithDefaults()
	peer, expected, err := comm.AcceptHello(c, o.ConnectTimeout, o.MaxFrame)
	if err != nil {
		c.Close()
		return
	}

	if peer != comm.WildcardID {
		co.mu.Lock()
		w := co.workers[peer]
		co.mu.Unlock()
		if w == nil {
			c.Close()
			return
		}
		w.rc.Attach(c, expected) // errors surface via the link's pump
		return
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		c.Close()
		return
	}
	id, ok := co.allocIDLocked()
	if !ok {
		co.mu.Unlock()
		c.Close()
		return
	}
	rc := comm.AcceptLink(0, id, co.cfg.TCP)
	rc.SetChaos(co.cfg.Chaos)
	w := &remote{id: id, rc: rc, assigned: make(map[int]bool), hbStop: make(chan struct{})}
	co.workers[id] = w
	co.mu.Unlock()

	if err := rc.Attach(c, expected); err != nil {
		co.drop(w)
		return
	}
	m, err := recvMsg(rc)
	if err != nil || m.Type != msgRegister || m.Name == "" || m.Operator != co.opDigest {
		co.drop(w)
		return
	}
	if err := sendMsg(rc, msg{Type: msgWelcome, ID: id, Operator: co.opDigest, Opts: &co.opts}); err != nil {
		co.drop(w)
		return
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		co.drop(w)
		return
	}
	w.name = m.Name
	co.seen++
	if co.seen >= co.cfg.MinWorkers {
		co.open = true
	}
	co.dispatchLocked()
	co.mu.Unlock()

	co.wg.Add(2)
	go func() {
		defer co.wg.Done()
		co.serve(w)
	}()
	go func() {
		defer co.wg.Done()
		co.heartbeat(w)
	}()
}

// allocIDLocked hands out worker slots 1..254 (0 is the coordinator, 255
// the wildcard).
func (co *coordinator) allocIDLocked() (byte, bool) {
	for n := 0; n < 254; n++ {
		id := co.nextID
		co.nextID++
		if co.nextID == comm.WildcardID {
			co.nextID = 1
		}
		if _, used := co.workers[id]; !used {
			return id, true
		}
	}
	return 0, false
}

// dispatchLocked assigns every unowned incomplete energy to the live
// worker winning its rendezvous hash. Energies already owned by a live
// worker are never migrated — only death returns them to the pool.
func (co *coordinator) dispatchLocked() {
	if !co.open || co.closed {
		return
	}
	for i := range co.es {
		if co.done[i] || co.assignedTo[i] >= 0 {
			continue
		}
		var best *remote
		var bestScore uint64
		for _, w := range co.workers {
			if w.name == "" {
				continue // mid-registration
			}
			s := rendezvous(co.keys[i], w.name)
			if best == nil || s > bestScore || (s == bestScore && w.id > best.id) {
				best, bestScore = w, s
			}
		}
		if best == nil {
			return // no live workers; the next registration redispatches
		}
		// Buffered-send semantics: a dead conn does not block dispatch,
		// and the link replays the assignment after any reconnect. A link
		// already failed typed is handled by its serve loop.
		sendMsg(best.rc, msg{Type: msgAssign, Index: i, Energy: co.es[i], Key: co.keys[i]})
		best.assigned[i] = true
		co.assignedTo[i] = int(best.id)
	}
}

// serve consumes one worker's messages until its link dies.
func (co *coordinator) serve(w *remote) {
	for {
		m, err := recvMsg(w.rc)
		if err != nil {
			co.drop(w)
			return
		}
		switch m.Type {
		case msgHeartbeat:
			// Any intact frame feeds the link's failure detector; nothing
			// to do at this layer.
		case msgResult:
			co.onResult(w, m)
		}
	}
}

// onResult records one assignment's terminal outcome. Results for already
// -completed energies (a worker presumed dead finishing late, after its
// energy was re-dispatched and solved elsewhere) are dropped: first writer
// wins, and determinism holds because every solve of an energy computes
// the same physics.
func (co *coordinator) onResult(w *remote, m msg) {
	if m.Record == nil || m.Index < 0 || m.Index >= len(co.es) {
		return
	}
	co.mu.Lock()
	delete(w.assigned, m.Index)
	if co.done[m.Index] {
		co.mu.Unlock()
		return
	}
	er := m.Record.Restore()
	co.done[m.Index] = true
	co.results[m.Index] = er
	co.remaining--
	rem := co.remaining
	var jerr error
	if co.journal != nil {
		jerr = co.journal.Append(*m.Record)
	}
	cb := co.cfg.OnEnergy
	co.mu.Unlock()
	if cb != nil {
		cb(er)
	}
	if jerr != nil {
		// A checkpoint failure is sweep-fatal, exactly as in sweep.Run:
		// results the journal cannot record would be lost to a resume.
		co.fatal(fmt.Errorf("fleet: checkpoint failed: %w", jerr))
		return
	}
	if rem == 0 {
		co.finish()
	}
}

// drop declares a worker dead: its link is torn down, its identity is
// retired (a late reconnect is refused), and its outstanding energies are
// re-dispatched over the survivors.
func (co *coordinator) drop(w *remote) {
	co.mu.Lock()
	if co.workers[w.id] == w {
		delete(co.workers, w.id)
	}
	for i := range w.assigned {
		if co.assignedTo[i] == int(w.id) {
			co.assignedTo[i] = -1
		}
	}
	w.assigned = make(map[int]bool)
	co.dispatchLocked()
	co.mu.Unlock()
	w.stopHeartbeat()
	w.rc.Close()
}

// heartbeat keeps one worker's receive side fed while it waits for
// assignments, so an idle-but-healthy link never starves.
func (co *coordinator) heartbeat(w *remote) {
	t := time.NewTicker(co.hb)
	defer t.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-t.C:
			sendMsg(w.rc, msg{Type: msgHeartbeat})
		}
	}
}

func sendMsg(rc *comm.RConn, m msg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return rc.Send(comm.ChApp, b)
}

func recvMsg(rc *comm.RConn) (msg, error) {
	var m msg
	body, err := rc.Recv(comm.ChApp)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("fleet: malformed message: %w", err)
	}
	return m, nil
}
