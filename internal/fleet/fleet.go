// Package fleet runs a sweep across OS processes: one coordinator owns the
// energy list, the journal and the report; workers dial in over reliable
// TCP links (internal/comm RConn) and solve one energy per assignment with
// the same escalation ladder a single-process sweep applies
// (sweep.SolveOne).
//
// The protocol is deliberately small — six JSON message types on the
// application channel of one reliable link per worker:
//
//	worker → coordinator:  register, heartbeat, result
//	coordinator → worker:  welcome, assign, done
//
// Sharding is rendezvous hashing of each energy's solve fingerprint
// (fingerprint.Solve key) against the live worker set: every process,
// given the same worker names, computes the same owner for every energy,
// so re-dispatch after a failure is deterministic, and when the live set
// changes only the energies whose winner changed are assigned elsewhere
// (already-completed energies keep their first result).
//
// Failure model: the reliable link already heals everything transient
// (drops, duplicates, reorders, resets, reconnects). What the fleet layer
// handles is link death — a worker whose link fails typed (ErrPartition
// after the starvation budget, ErrPeerLost, persistent ErrFrameCorrupt) is
// declared dead, its outstanding energies return to the pool, and the
// rendezvous hash re-dispatches them over the survivors. A worker that was
// only presumed dead and later completes is harmless: results for already
// -recorded energies are dropped, and its stale link identity is refused
// so the process fails fast and can rejoin fresh. Worker-side, every
// assignment is verified against the worker's own operator description
// before any compute: a coordinator and worker that disagree about the
// physics produce a typed fingerprint refusal, not a wrong band structure.
package fleet

import (
	"time"

	"cbs/internal/comm"
	"cbs/internal/core"
	"cbs/internal/sweep"
)

// Message types of the fleet application protocol.
const (
	msgRegister  = "register"  // worker's first frame: name + operator digest
	msgWelcome   = "welcome"   // coordinator's reply: slot id + solve options
	msgAssign    = "assign"    // one energy, with its solve fingerprint
	msgResult    = "result"    // terminal outcome of one assignment
	msgHeartbeat = "heartbeat" // keeps the link's failure detector fed
	msgDone      = "done"      // sweep complete; worker may exit
)

// msg is the single wire message of the fleet protocol; Type selects which
// fields are meaningful. It rides JSON-encoded on comm.ChApp.
type msg struct {
	Type string `json:"type"`

	// register / welcome
	Name     string        `json:"name,omitempty"`     // worker's self-chosen identity
	Operator string        `json:"operator,omitempty"` // operator fingerprint digest
	ID       byte          `json:"id,omitempty"`       // assigned link slot (welcome)
	Opts     *core.Options `json:"opts,omitempty"`     // solve options, Chaos stripped

	// assign / result
	Index  int           `json:"index,omitempty"`
	Energy float64       `json:"energy,omitempty"`
	Key    string        `json:"key,omitempty"` // fingerprint.Solve of this assignment
	Record *sweep.Record `json:"record,omitempty"`
}

// Defaults shared by both ends.
const (
	defaultHeartbeat = 500 * time.Millisecond
)

// heartbeatFor returns the heartbeat interval to use: the configured one,
// or a quarter of the link's failure-detection horizon capped at the
// default, so heartbeats always outpace the starvation budget.
func heartbeatFor(interval time.Duration, tcp comm.TCPOptions) time.Duration {
	if interval > 0 {
		return interval
	}
	if tcp.IOTimeout > 0 && tcp.RetryBudget > 0 {
		if h := tcp.IOTimeout * time.Duration(tcp.RetryBudget) / 4; h < defaultHeartbeat {
			return h
		}
	}
	return defaultHeartbeat
}

// rendezvous scores one (energy key, worker name) pair with FNV-1a; each
// energy goes to the live worker with the highest score. Deterministic
// and independent of join order.
func rendezvous(key, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= '|'
	h *= prime64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
