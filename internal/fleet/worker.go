package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/core"
	"cbs/internal/fingerprint"
	"cbs/internal/sweep"
)

// WorkerConfig tunes one fleet worker.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// Name is the worker's identity in the rendezvous hash. It must be
	// stable across restarts of the same logical worker and unique within
	// the fleet, or energies shard unevenly.
	Name string
	// OperatorDesc must describe the same physics as the coordinator's;
	// registration and every assignment are verified against it.
	OperatorDesc string
	// TCP tunes the link to the coordinator.
	TCP comm.TCPOptions
	// Heartbeat is the keepalive interval toward the coordinator (default
	// derived from TCP). It must outpace the coordinator's failure
	// detector even during the longest single solve.
	Heartbeat time.Duration
	// Sweep supplies the escalation-ladder knobs (MaxAttempts, Backoff,
	// MaxNrhDoublings, Chaos for injected solve faults). Journal and
	// worker-pool fields are ignored: the coordinator owns those.
	Sweep sweep.Config
	// Parallel, when non-zero, overrides the parallel layout of the
	// shipped options for solves on this worker. The layout is
	// scheduling, not identity — fingerprint verification is unaffected —
	// so each worker sizes the three layers to its own cores.
	Parallel core.Parallel
	// Chaos, when non-nil, arms the worker side of the coordinator link
	// with injected network faults (testing only).
	Chaos *chaos.Injector
}

// Work dials the coordinator, registers, and solves assignments until the
// coordinator reports the sweep done (nil), the context dies (ctx.Err()),
// or the link fails typed — ErrPartition, ErrPeerLost, ErrFrameCorrupt
// wrapped in the returned error. A worker that returns with an error can
// be restarted; it rejoins as a fresh registration and wins back its
// rendezvous share.
func Work(ctx context.Context, solve sweep.SolveFunc, cfg WorkerConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Name == "" {
		return errors.New("fleet: worker needs a name")
	}
	if solve == nil {
		return errors.New("fleet: worker needs a solve function")
	}

	rc := comm.DialLink(comm.WildcardID, 0, cfg.Addr, cfg.TCP)
	rc.SetChaos(cfg.Chaos)
	defer rc.Close()
	watcherStop := make(chan struct{})
	defer close(watcherStop)
	go func() {
		select {
		case <-ctx.Done():
			rc.Close() // unblocks any Recv with ErrClosed
		case <-watcherStop:
		}
	}()

	opDigest := fingerprint.Operator(cfg.OperatorDesc)
	if err := sendMsg(rc, msg{Type: msgRegister, Name: cfg.Name, Operator: opDigest}); err != nil {
		return fmt.Errorf("fleet: worker %q: register: %w", cfg.Name, err)
	}
	welcome, err := recvMsg(rc)
	if err != nil {
		return workerErr(ctx, cfg.Name, "welcome", err)
	}
	if welcome.Type != msgWelcome || welcome.Opts == nil {
		return fmt.Errorf("fleet: worker %q: expected welcome, got %q", cfg.Name, welcome.Type)
	}
	if welcome.Operator != opDigest {
		return fmt.Errorf("fleet: worker %q: coordinator solves a different operator (digest %s, ours %s)",
			cfg.Name, welcome.Operator, opDigest)
	}
	rc.SetLocalID(welcome.ID)
	opts := *welcome.Opts
	if (cfg.Parallel != core.Parallel{}) {
		opts.Parallel = cfg.Parallel
	}

	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(heartbeatFor(cfg.Heartbeat, cfg.TCP))
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				sendMsg(rc, msg{Type: msgHeartbeat})
			}
		}
	}()

	for {
		m, err := recvMsg(rc)
		if err != nil {
			return workerErr(ctx, cfg.Name, "assignment stream", err)
		}
		switch m.Type {
		case msgDone:
			return nil
		case msgHeartbeat:
			// Coordinator keepalive: the link already counted it.
		case msgAssign:
			var rec sweep.Record
			if want := fingerprint.Solve(cfg.OperatorDesc, m.Energy, opts); want != m.Key {
				// The coordinator and this worker disagree about the
				// physics of this assignment: refuse to compute rather
				// than return a wrong band structure.
				rec = sweep.Record{
					Index:  m.Index,
					Energy: m.Energy,
					Status: sweep.StatusFailed,
					Error:  fmt.Sprintf("fleet: fingerprint mismatch: assignment %s, worker computes %s", m.Key, want),
				}
			} else {
				er := sweep.SolveOne(ctx, solve, m.Index, m.Energy, opts, cfg.Sweep)
				if er.Status == sweep.StatusSkipped && ctx.Err() != nil {
					return ctx.Err()
				}
				rec = sweep.RecordOf(er)
			}
			if err := sendMsg(rc, msg{Type: msgResult, Index: m.Index, Record: &rec}); err != nil {
				return workerErr(ctx, cfg.Name, "result", err)
			}
		}
	}
}

// workerErr attributes a link failure: a context the caller killed wins
// over the transport error it caused.
func workerErr(ctx context.Context, name, stage string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return fmt.Errorf("fleet: worker %q: %s: %w", name, stage, err)
}
