package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/core"
	"cbs/internal/sweep"
)

const testOperator = "fleet-test-op: Al(100) stand-in"

// fleetTCP tunes links for fast in-test failure detection: the horizon
// (IOTimeout*RetryBudget) is ~360ms.
func fleetTCP() comm.TCPOptions {
	return comm.TCPOptions{
		ConnectTimeout: 500 * time.Millisecond,
		IOTimeout:      60 * time.Millisecond,
		RetryBudget:    6,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// procTCP relaxes the failure horizon to ~10s for the multi-process test:
// race-instrumented worker processes start slowly and contend for CPU, so
// the in-process horizon (~360ms) misreads startup lag as a partition.
func procTCP() comm.TCPOptions {
	return comm.TCPOptions{
		ConnectTimeout: 2 * time.Second,
		IOTimeout:      250 * time.Millisecond,
		RetryBudget:    40,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	}
}

// fleetResult derives a deterministic fake solve result from the energy
// and the options, so a fleet sweep and a single-process sweep agree iff
// the options crossed the wire intact.
func fleetResult(e float64, opts core.Options) *core.Result {
	res := &core.Result{
		Energy:  e,
		Rank:    1,
		Sigma:   []float64{1, 0.5 + e},
		MatVecs: opts.Nint * opts.Nrh,
	}
	res.Diagnostics = core.Diagnostics{Nint: opts.Nint, Nrh: opts.Nrh}
	p := core.Eigenpair{
		Lambda:   complex(0.7+e, -0.1*float64(opts.Seed%7)),
		K:        complex(0.3*e, 0.02),
		Residual: 1e-9,
	}
	for i := 0; i < 3; i++ {
		p.Psi = append(p.Psi, complex(float64(i)*0.125, e))
	}
	res.Pairs = append(res.Pairs, p)
	return res
}

// fleetSolve returns a SolveFunc producing fleetResult after delay.
func fleetSolve(delay time.Duration) sweep.SolveFunc {
	return func(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
		if delay > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		return fleetResult(e, opts), nil
	}
}

func fleetEnergies(n int) []float64 {
	es := make([]float64, n)
	for i := range es {
		es[i] = -0.3 + 0.05*float64(i)
	}
	return es
}

func fleetOptions() core.Options {
	o := core.DefaultOptions()
	o.Nint = 6
	o.Nmm = 3
	o.Nrh = 4
	o.Seed = 11
	return o
}

// golden runs the same sweep single-process; the fleet must match it.
func golden(t *testing.T, es []float64, opts core.Options) *sweep.Report {
	t.Helper()
	rep, err := sweep.Run(context.Background(), fleetSolve(0), es, opts, sweep.Config{})
	if err != nil {
		t.Fatalf("golden sweep: %v", err)
	}
	return rep
}

// assertGolden compares a fleet report against the single-process golden,
// energy by energy: same status, bit-identical encoded result.
func assertGolden(t *testing.T, got, want *sweep.Report) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Status != w.Status {
			t.Errorf("energy %d: status %q, want %q (err %v)", i, g.Status, w.Status, g.Err)
			continue
		}
		gb, _ := json.Marshal(sweep.EncodeResult(g.Result))
		wb, _ := json.Marshal(sweep.EncodeResult(w.Result))
		if !bytes.Equal(gb, wb) {
			t.Errorf("energy %d: fleet result diverges from single-process golden\n fleet: %s\n  solo: %s", i, gb, wb)
		}
	}
}

// startCoordinator runs Coordinate in a goroutine and returns the bound
// address plus a join function.
func startCoordinator(ctx context.Context, es []float64, opts core.Options, cfg CoordinatorConfig) (string, func() (*sweep.Report, error)) {
	addrCh := make(chan string, 1)
	prev := cfg.OnListen
	cfg.OnListen = func(a string) {
		addrCh <- a
		if prev != nil {
			prev(a)
		}
	}
	var (
		rep  *sweep.Report
		err  error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		rep, err = Coordinate(ctx, es, opts, cfg)
	}()
	return <-addrCh, func() (*sweep.Report, error) {
		<-done
		return rep, err
	}
}

func TestFleetSweepMatchesSingleProcess(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	es := fleetEnergies(12)
	opts := fleetOptions()

	addr, join := startCoordinator(ctx, es, opts, CoordinatorConfig{
		Addr:         "127.0.0.1:0",
		MinWorkers:   3,
		TCP:          fleetTCP(),
		OperatorDesc: testOperator,
	})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := Work(ctx, fleetSolve(0), WorkerConfig{
				Addr:         addr,
				Name:         fmt.Sprintf("w%d", i),
				OperatorDesc: testOperator,
				TCP:          fleetTCP(),
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}

	rep, err := join()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	if rep.OK != len(es) || rep.Skipped != 0 {
		t.Fatalf("report: OK=%d Skipped=%d Failed=%d, want all %d OK", rep.OK, rep.Skipped, rep.Failed, len(es))
	}
	assertGolden(t, rep, golden(t, es, opts))
}

// chaosSeed reads the CI chaos seed matrix (CBS_CHAOS_SEED, default 0) so
// each matrix entry draws a different fault pattern on the links.
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// TestFleetKillAndReshard is the self-healing acceptance: three workers,
// network chaos armed on both link ends, one worker killed mid-sweep. The
// coordinator must detect the death, re-dispatch the dead worker's
// energies to the survivors, and converge to the single-process golden.
// Survivors whose links the chaos kills outright rejoin like restarted
// processes — under any seed the sweep must still finish golden.
func TestFleetKillAndReshard(t *testing.T) {
	for _, seed := range []int64{3, 11, 42} {
		seed += chaosSeed() * 1000
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			es := fleetEnergies(10)
			opts := fleetOptions()

			linkChaos := func(s int64) *chaos.Injector {
				return chaos.New(s, chaos.Config{
					NetDrop:      0.05,
					NetReorder:   0.05,
					NetDup:       0.05,
					NetPartition: 0.002,
					NetConn:      0.05,
				})
			}

			var solved atomic.Int32
			addr, join := startCoordinator(ctx, es, opts, CoordinatorConfig{
				Addr:         "127.0.0.1:0",
				MinWorkers:   3,
				TCP:          fleetTCP(),
				OperatorDesc: testOperator,
				Chaos:        linkChaos(seed),
				OnEnergy:     func(sweep.EnergyResult) { solved.Add(1) },
			})

			victimCtx, kill := context.WithCancel(ctx)
			defer kill()
			var swept atomic.Bool
			var wg sync.WaitGroup
			errs := make([]error, 3)
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					wctx := ctx
					if i == 0 {
						wctx = victimCtx
					}
					// A survivor whose link dies under chaos rejoins with a
					// fresh registration (same name, so it wins back its
					// rendezvous share) — the test's stand-in for a process
					// supervisor restarting a crashed worker.
					attempt := int64(0)
					for {
						errs[i] = Work(wctx, fleetSolve(10*time.Millisecond), WorkerConfig{
							Addr:         addr,
							Name:         fmt.Sprintf("w%d", i),
							OperatorDesc: testOperator,
							TCP:          fleetTCP(),
							Chaos:        linkChaos(seed + int64(i) + 1 + 97*attempt),
						})
						if errs[i] == nil || wctx.Err() != nil || swept.Load() {
							return
						}
						attempt++
						time.Sleep(10 * time.Millisecond)
					}
				}(i)
			}

			// Kill worker 0 once the sweep is demonstrably mid-flight.
			for solved.Load() < 2 {
				select {
				case <-ctx.Done():
					t.Fatal("sweep stalled before the kill point")
				case <-time.After(time.Millisecond):
				}
			}
			kill()

			rep, err := join()
			swept.Store(true)
			wg.Wait()
			if err != nil {
				t.Fatalf("coordinate: %v", err)
			}
			if !errors.Is(errs[0], context.Canceled) {
				t.Errorf("killed worker returned %v, want context.Canceled", errs[0])
			}
			// Survivors either saw the sweep out (nil) or were last cut
			// down by a typed link failure mid-rejoin; anything untyped is
			// a transport bug.
			for i := 1; i < 3; i++ {
				if errs[i] == nil {
					continue
				}
				if !errors.Is(errs[i], comm.ErrPartition) && !errors.Is(errs[i], comm.ErrPeerLost) &&
					!errors.Is(errs[i], comm.ErrClosed) && !errors.Is(errs[i], comm.ErrFrameCorrupt) {
					t.Errorf("survivor %d: error not typed: %v", i, errs[i])
				}
			}
			if rep.OK != len(es) || rep.Skipped != 0 {
				t.Fatalf("report after kill: OK=%d Skipped=%d Failed=%d, want all %d OK", rep.OK, rep.Skipped, rep.Failed, len(es))
			}
			assertGolden(t, rep, golden(t, es, opts))
		})
	}
}

// TestFleetOperatorMismatch: a worker solving different physics must be
// refused at registration and fail typed, and the sweep must complete on
// the workers that match.
func TestFleetOperatorMismatch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	es := fleetEnergies(4)
	opts := fleetOptions()

	addr, join := startCoordinator(ctx, es, opts, CoordinatorConfig{
		Addr:         "127.0.0.1:0",
		TCP:          fleetTCP(),
		OperatorDesc: testOperator,
	})

	imposterErr := make(chan error, 1)
	go func() {
		imposterErr <- Work(ctx, fleetSolve(0), WorkerConfig{
			Addr:         addr,
			Name:         "imposter",
			OperatorDesc: "a different crystal entirely",
			TCP:          fleetTCP(),
		})
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := Work(ctx, fleetSolve(0), WorkerConfig{
			Addr:         addr,
			Name:         "honest",
			OperatorDesc: testOperator,
			TCP:          fleetTCP(),
		}); err != nil {
			t.Errorf("honest worker: %v", err)
		}
	}()

	rep, err := join()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	if rep.OK != len(es) {
		t.Fatalf("report: OK=%d, want %d", rep.OK, len(es))
	}
	select {
	case werr := <-imposterErr:
		if werr == nil {
			t.Fatal("imposter worker completed; want a typed refusal")
		}
		if !errors.Is(werr, comm.ErrPartition) && !errors.Is(werr, comm.ErrPeerLost) && !errors.Is(werr, comm.ErrClosed) {
			t.Errorf("imposter error not typed: %v", werr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("imposter worker never returned")
	}
}

// TestFleetResume: a completed fleet journal restores without any workers.
func TestFleetResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	es := fleetEnergies(6)
	opts := fleetOptions()
	path := filepath.Join(t.TempDir(), "fleet.journal")

	addr, join := startCoordinator(ctx, es, opts, CoordinatorConfig{
		Addr:           "127.0.0.1:0",
		TCP:            fleetTCP(),
		OperatorDesc:   testOperator,
		CheckpointPath: path,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := Work(ctx, fleetSolve(0), WorkerConfig{
			Addr: addr, Name: "w0", OperatorDesc: testOperator, TCP: fleetTCP(),
		}); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	rep, err := join()
	wg.Wait()
	if err != nil || rep.OK != len(es) {
		t.Fatalf("first run: OK=%d err=%v", rep.OK, err)
	}

	// Second run: everything restores from the journal; no worker ever
	// dials, no listener is even opened past the restore.
	rep2, err := Coordinate(ctx, es, opts, CoordinatorConfig{
		Addr:           "127.0.0.1:0",
		TCP:            fleetTCP(),
		OperatorDesc:   testOperator,
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.Restored != len(es) || rep2.OK != len(es) || rep2.Attempts != 0 {
		t.Fatalf("resume report: Restored=%d OK=%d Attempts=%d, want %d restored", rep2.Restored, rep2.OK, rep2.Attempts, len(es))
	}
	assertGolden(t, rep2, golden(t, es, opts))
}

// --- multi-process acceptance ---------------------------------------------

// TestMain doubles as the worker executable: when CBS_FLEET_WORKER_ADDR is
// set, the test binary runs one fleet worker and exits, so the SIGKILL
// acceptance below can kill a real OS process mid-sweep.
func TestMain(m *testing.M) {
	addr := os.Getenv("CBS_FLEET_WORKER_ADDR")
	if addr == "" {
		os.Exit(m.Run())
	}
	delay, _ := time.ParseDuration(os.Getenv("CBS_FLEET_SOLVE_DELAY"))
	var inj *chaos.Injector
	if s := os.Getenv("CBS_FLEET_CHAOS_SEED"); s != "" {
		seed, _ := strconv.ParseInt(s, 10, 64)
		inj = chaos.New(seed, chaos.Config{NetDrop: 0.05, NetReorder: 0.05, NetPartition: 0.002, NetConn: 0.05})
	}
	err := Work(context.Background(), fleetSolve(delay), WorkerConfig{
		Addr:         addr,
		Name:         os.Getenv("CBS_FLEET_WORKER_NAME"),
		OperatorDesc: testOperator,
		TCP:          procTCP(),
		Chaos:        inj,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestFleetProcessKillAndReshard is the end-to-end acceptance from the
// issue: three worker OS processes over real localhost TCP with network
// chaos armed, one of them SIGKILLed mid-sweep; the surviving processes
// absorb the re-dispatched energies and the report is identical to the
// single-process golden.
func TestFleetProcessKillAndReshard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	es := fleetEnergies(12)
	opts := fleetOptions()

	var solved atomic.Int32
	addr, join := startCoordinator(ctx, es, opts, CoordinatorConfig{
		Addr:         "127.0.0.1:0",
		MinWorkers:   3,
		TCP:          procTCP(),
		OperatorDesc: testOperator,
		Chaos:        chaos.New(42, chaos.Config{NetDrop: 0.05, NetReorder: 0.05, NetDup: 0.05}),
		OnEnergy:     func(sweep.EnergyResult) { solved.Add(1) },
	})

	procs := make([]*exec.Cmd, 3)
	for i := range procs {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"CBS_FLEET_WORKER_ADDR="+addr,
			fmt.Sprintf("CBS_FLEET_WORKER_NAME=proc%d", i),
			"CBS_FLEET_SOLVE_DELAY=20ms",
			fmt.Sprintf("CBS_FLEET_CHAOS_SEED=%d", 100+i),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}()

	for solved.Load() < 2 {
		select {
		case <-ctx.Done():
			t.Fatal("sweep stalled before the kill point")
		case <-time.After(time.Millisecond):
		}
	}
	// kill -9: the process gets no chance to say goodbye.
	if err := procs[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[0].Wait()

	rep, err := join()
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	if rep.OK != len(es) || rep.Skipped != 0 {
		t.Fatalf("report after SIGKILL: OK=%d Skipped=%d Failed=%d, want all %d OK", rep.OK, rep.Skipped, rep.Failed, len(es))
	}
	assertGolden(t, rep, golden(t, es, opts))

	for i, p := range procs[1:] {
		if err := p.Wait(); err != nil {
			t.Errorf("surviving worker %d exited with %v", i+1, err)
		}
	}
}
