// Package soa provides the split-complex storage layout of the blocked hot
// path: a block of nb column vectors over n grid points is held as two
// parallel float planes Re and Im, both indexed exactly like the row-major
// []complex128 block they mirror (element (i, k) at position i*nb+k). The
// interleaved split keeps the stencil's per-grid-point streaming pattern
// while turning every inner loop into contiguous *real* arithmetic: the
// complex multiply-adds of the AoS kernels decompose into independent
// same-shape passes over the two planes, which the compiler turns into
// straight-line float code with half the register pressure per lane.
//
// The planes are generic over float64 (the bit-exact production layout) and
// float32 (the mixed-precision inner-solve layout); pack/unpack shims
// convert at the []complex128 API boundary only. Kernels elsewhere must not
// re-box plane elements into complex values inside hot loops and must not
// re-slice the planes independently — both invariants are policed by the
// soalayout vet analyzer.
package soa

// Float is the element type of a split-complex plane.
type Float interface {
	~float32 | ~float64
}

// Block is an n x nb split-complex block: Re[i*nb+k] and Im[i*nb+k] hold
// the real and imaginary parts of element (row i, column k). The planes
// always have identical length n*nb; construct blocks with NewBlock or
// Reserve so the invariant holds, and treat the plane headers as read-only
// outside this package (the soalayout analyzer enforces this).
type Block[F Float] struct {
	Re, Im []F

	n, nb int
}

// NewBlock allocates an n x nb block with zeroed planes.
func NewBlock[F Float](n, nb int) *Block[F] {
	b := &Block[F]{}
	b.Reserve(n, nb)
	return b
}

// Reserve resizes the block to n x nb, reusing plane capacity when
// sufficient (the steady-state contour loop never reallocates). Newly
// exposed elements are NOT cleared; call Zero when a fresh block is needed.
func (b *Block[F]) Reserve(n, nb int) {
	if n < 0 || nb < 1 {
		panic("soa: Reserve bad shape")
	}
	b.n, b.nb = n, nb
	need := n * nb
	if cap(b.Re) < need {
		b.Re = make([]F, need)
		b.Im = make([]F, need)
		return
	}
	b.Re = b.Re[:need]
	b.Im = b.Im[:need]
}

// N returns the row count.
//
//cbs:hotpath
func (b *Block[F]) N() int { return b.n }

// NB returns the column count.
//
//cbs:hotpath
func (b *Block[F]) NB() int { return b.nb }

// Len returns the plane length n*nb.
//
//cbs:hotpath
func (b *Block[F]) Len() int { return b.n * b.nb }

// Zero clears both planes.
//
//cbs:hotpath
func (b *Block[F]) Zero() {
	for i := range b.Re {
		b.Re[i] = 0
		b.Im[i] = 0
	}
}

// MemoryBytes reports the resident bytes of both planes.
func (b *Block[F]) MemoryBytes() int64 {
	var f F
	size := int64(8)
	if _, ok := any(f).(float32); ok {
		size = 4
	}
	return int64(cap(b.Re)+cap(b.Im)) * size
}

// Pack splits a row-major []complex128 block into the planes of dst
// (boundary shim; dst must already have the matching shape).
func Pack[F Float](dst *Block[F], src []complex128) {
	if len(src) != dst.Len() {
		panic("soa: Pack length mismatch")
	}
	re, im := dst.Re, dst.Im
	for i, z := range src {
		re[i] = F(real(z))
		im[i] = F(imag(z))
	}
}

// Unpack re-boxes the planes of src into a row-major []complex128 block
// (boundary shim).
func Unpack[F Float](dst []complex128, src *Block[F]) {
	if len(dst) != src.Len() {
		panic("soa: Unpack length mismatch")
	}
	re, im := src.Re, src.Im
	for i := range dst {
		dst[i] = complex(float64(re[i]), float64(im[i]))
	}
}

// Convert copies src into dst element-wise with a float conversion: the
// demote (float64 -> float32 rounds to nearest) and promote (exact) shims
// of the mixed-precision refinement loop. Shapes must match.
func Convert[D, S Float](dst *Block[D], src *Block[S]) {
	if dst.Len() != src.Len() {
		panic("soa: Convert length mismatch")
	}
	dre, dim := dst.Re, dst.Im
	sre, sim := src.Re, src.Im
	for i := range dre {
		dre[i] = D(sre[i])
		dim[i] = D(sim[i])
	}
}

// AccumConvert accumulates dst += src element-wise with a float conversion:
// the correction step x += d of iterative refinement, promoting the
// float32 update into the float64 iterate. Shapes must match.
func AccumConvert[D, S Float](dst *Block[D], src *Block[S]) {
	if dst.Len() != src.Len() {
		panic("soa: AccumConvert length mismatch")
	}
	dre, dim := dst.Re, dst.Im
	sre, sim := src.Re, src.Im
	for i := range dre {
		dre[i] += D(sre[i])
		dim[i] += D(sim[i])
	}
}
