package soa

// Explicit SIMD leaf kernels for the float64 plane loops.
//
// The gc compiler does not autovectorize, so the split-complex layout alone
// only buys the fused single-sweep structure and unit-stride streaming; the
// multiplicative win the planar layout exists for comes from these
// hand-written AVX2 kernels, dispatched at runtime (HasAVX2) with the
// scalar bodies below as the portable fallback. The float32 planes of the
// mixed-precision inner solve stay on the generic scalar path in the
// callers.
//
// Bit-exactness contract: every asm kernel performs, per element, exactly
// the multiplies and adds of its scalar body in the same order. VMULPD /
// VADDPD round identically to the scalar instructions lane by lane, and no
// FMA contraction is used anywhere (a fused multiply-add skips the
// intermediate rounding and would break the SoA==AoS bitwise parity the
// solver tests pin). Callers must guarantee every source slice is at least
// as long as dst; the kernels index all slices by dst's length without
// re-checking.

// AxpyF64 performs dst[i] += c*src[i].
//
//cbs:hotpath
func AxpyF64(dst, src []float64, c float64) {
	if HasAVX2 {
		axpyAVX2(dst, src, c)
		return
	}
	axpyScalar(dst, src, c)
}

//cbs:hotpath
func axpyScalar(dst, src []float64, c float64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += c * src[i]
	}
}

// AxpyPairF64 performs dstRe[i] += c*srcRe[i]; dstIm[i] += c*srcIm[i] —
// the real-coefficient two-plane axpy of the nonlocal projector term.
//
//cbs:hotpath
func AxpyPairF64(dstRe, dstIm, srcRe, srcIm []float64, c float64) {
	if HasAVX2 {
		axpyPairAVX2(dstRe, dstIm, srcRe, srcIm, c)
		return
	}
	axpyScalar(dstRe, srcRe, c)
	axpyScalar(dstIm, srcIm, c)
}

// ScalePairF64 performs dstRe[i] = c*srcRe[i]; dstIm[i] = c*srcIm[i] —
// the diagonal term's overwrite-scale of both planes.
//
//cbs:hotpath
func ScalePairF64(dstRe, dstIm, srcRe, srcIm []float64, c float64) {
	if HasAVX2 {
		scalePairAVX2(dstRe, dstIm, srcRe, srcIm, c)
		return
	}
	scalePairScalar(dstRe, dstIm, srcRe, srcIm, c)
}

//cbs:hotpath
func scalePairScalar(dstRe, dstIm, srcRe, srcIm []float64, c float64) {
	n := len(dstRe)
	dstIm = dstIm[:n]
	srcRe = srcRe[:n]
	srcIm = srcIm[:n]
	for i := range dstRe {
		dstRe[i] = c * srcRe[i]
		dstIm[i] = c * srcIm[i]
	}
}

// AxpyCplxF64 performs the split complex axpy
// dstRe[i] += cr*srcRe[i] - ci*srcIm[i]; dstIm[i] += cr*srcIm[i] + ci*srcRe[i].
//
//cbs:hotpath
func AxpyCplxF64(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	if HasAVX2 {
		axpyCplxAVX2(dstRe, dstIm, srcRe, srcIm, cr, ci)
		return
	}
	axpyCplxScalar(dstRe, dstIm, srcRe, srcIm, cr, ci)
}

//cbs:hotpath
func axpyCplxScalar(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	n := len(dstRe)
	dstIm = dstIm[:n]
	srcRe = srcRe[:n]
	srcIm = srcIm[:n]
	for i := range dstRe {
		sr, si := srcRe[i], srcIm[i]
		dstRe[i] += cr*sr - ci*si
		dstIm[i] += cr*si + ci*sr
	}
}

// AddPairScaledF64 performs dst[i] += c*(p[i]+m[i]) — one symmetric
// stencil offset pair.
//
//cbs:hotpath
func AddPairScaledF64(dst, p, m []float64, c float64) {
	if HasAVX2 {
		addPairScaledAVX2(dst, p, m, c)
		return
	}
	addPairScaledScalar(dst, p, m, c)
}

//cbs:hotpath
func addPairScaledScalar(dst, p, m []float64, c float64) {
	n := len(dst)
	p = p[:n]
	m = m[:n]
	for i := range dst {
		dst[i] += c * (p[i] + m[i])
	}
}

// FusePair4F64 fuses four pair-grouped offset sweeps: per element,
// dst += c1*(p1+m1), then += c2*(p2+m2), then c3, then c4, in that order.
//
//cbs:hotpath
func FusePair4F64(dst, p1, m1, p2, m2, p3, m3, p4, m4 []float64, c1, c2, c3, c4 float64) {
	if HasAVX2 {
		fusePair4AVX2(dst, p1, m1, p2, m2, p3, m3, p4, m4, c1, c2, c3, c4)
		return
	}
	fusePair4Scalar(dst, p1, m1, p2, m2, p3, m3, p4, m4, c1, c2, c3, c4)
}

//cbs:hotpath
func fusePair4Scalar(dst, p1, m1, p2, m2, p3, m3, p4, m4 []float64, c1, c2, c3, c4 float64) {
	n := len(dst)
	p1 = p1[:n]
	m1 = m1[:n]
	p2 = p2[:n]
	m2 = m2[:n]
	p3 = p3[:n]
	m3 = m3[:n]
	p4 = p4[:n]
	m4 = m4[:n]
	for i := range dst {
		v := dst[i] + c1*(p1[i]+m1[i])
		v += c2 * (p2[i] + m2[i])
		v += c3 * (p3[i] + m3[i])
		v += c4 * (p4[i] + m4[i])
		dst[i] = v
	}
}

// FuseSingle8F64 fuses eight single-plane scaled adds: per element,
// dst += c1*s1, += c1*s2, += c2*s3, += c2*s4, ..., += c4*s8, in that order
// (the z-tail pattern: +d and -d share a coefficient but stay separate
// terms).
//
//cbs:hotpath
func FuseSingle8F64(dst, s1, s2, s3, s4, s5, s6, s7, s8 []float64, c1, c2, c3, c4 float64) {
	if HasAVX2 {
		fuseSingle8AVX2(dst, s1, s2, s3, s4, s5, s6, s7, s8, c1, c2, c3, c4)
		return
	}
	fuseSingle8Scalar(dst, s1, s2, s3, s4, s5, s6, s7, s8, c1, c2, c3, c4)
}

//cbs:hotpath
func fuseSingle8Scalar(dst, s1, s2, s3, s4, s5, s6, s7, s8 []float64, c1, c2, c3, c4 float64) {
	n := len(dst)
	s1 = s1[:n]
	s2 = s2[:n]
	s3 = s3[:n]
	s4 = s4[:n]
	s5 = s5[:n]
	s6 = s6[:n]
	s7 = s7[:n]
	s8 = s8[:n]
	for i := range dst {
		v := dst[i] + c1*s1[i]
		v += c1 * s2[i]
		v += c2 * s3[i]
		v += c2 * s4[i]
		v += c3 * s5[i]
		v += c3 * s6[i]
		v += c4 * s7[i]
		v += c4 * s8[i]
		dst[i] = v
	}
}
