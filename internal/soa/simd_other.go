//go:build !amd64

package soa

// HasAVX2 is false off amd64; the exported kernels run their scalar bodies
// and the *AVX2 stubs below are unreachable.
const HasAVX2 = false

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32) {
	panic("soa: cpuid is amd64-only")
}

func xgetbv() (lo, hi uint32) {
	panic("soa: xgetbv is amd64-only")
}

//cbs:hotpath
func axpyAVX2(dst, src []float64, c float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func axpyPairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func scalePairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func axpyCplxAVX2(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func addPairScaledAVX2(dst, p, m []float64, c float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func fusePair4AVX2(dst, p1, m1, p2, m2, p3, m3, p4, m4 []float64, c1, c2, c3, c4 float64) {
	panic("soa: no AVX2 kernels on this architecture")
}

//cbs:hotpath
func fuseSingle8AVX2(dst, s1, s2, s3, s4, s5, s6, s7, s8 []float64, c1, c2, c3, c4 float64) {
	panic("soa: no AVX2 kernels on this architecture")
}
