// AVX2 plane kernels. Each TEXT below is the exact vector transcription of
// its *Scalar sibling in simd.go: identical per-element multiply/add order,
// VMULPD/VADDPD only — never FMA, whose skipped intermediate rounding would
// break the SoA==AoS bitwise parity pinned by the solver tests. R14 (g) and
// X15 are never touched. All kernels are NOSPLIT leaves with no locals.

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (lo, hi uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

// func axpyAVX2(dst, src []float64, c float64)
// dst[i] += c*src[i]
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSD c+48(FP), Y12
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          axpytail

axpyloop:
	VMOVUPD (SI)(BX*8), Y0
	VMULPD  Y12, Y0, Y0
	VADDPD  (DI)(BX*8), Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     axpyloop

axpytail:
	CMPQ BX, CX
	JGE  axpydone

axpytailloop:
	VMOVSD (SI)(BX*8), X0
	VMULSD X12, X0, X0
	VADDSD (DI)(BX*8), X0, X0
	VMOVSD X0, (DI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    axpytailloop

axpydone:
	VZEROUPPER
	RET

// func axpyPairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64)
// dstRe[i] += c*srcRe[i]; dstIm[i] += c*srcIm[i]
TEXT ·axpyPairAVX2(SB), NOSPLIT, $0-104
	MOVQ         dstRe_base+0(FP), DI
	MOVQ         dstRe_len+8(FP), CX
	MOVQ         dstIm_base+24(FP), SI
	MOVQ         srcRe_base+48(FP), R8
	MOVQ         srcIm_base+72(FP), R9
	VBROADCASTSD c+96(FP), Y12
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          axptail

axploop:
	VMOVUPD (R8)(BX*8), Y0
	VMULPD  Y12, Y0, Y0
	VADDPD  (DI)(BX*8), Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	VMOVUPD (R9)(BX*8), Y1
	VMULPD  Y12, Y1, Y1
	VADDPD  (SI)(BX*8), Y1, Y1
	VMOVUPD Y1, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     axploop

axptail:
	CMPQ BX, CX
	JGE  axpdone

axptailloop:
	VMOVSD (R8)(BX*8), X0
	VMULSD X12, X0, X0
	VADDSD (DI)(BX*8), X0, X0
	VMOVSD X0, (DI)(BX*8)
	VMOVSD (R9)(BX*8), X1
	VMULSD X12, X1, X1
	VADDSD (SI)(BX*8), X1, X1
	VMOVSD X1, (SI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    axptailloop

axpdone:
	VZEROUPPER
	RET

// func scalePairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64)
// dstRe[i] = c*srcRe[i]; dstIm[i] = c*srcIm[i]
TEXT ·scalePairAVX2(SB), NOSPLIT, $0-104
	MOVQ         dstRe_base+0(FP), DI
	MOVQ         dstRe_len+8(FP), CX
	MOVQ         dstIm_base+24(FP), SI
	MOVQ         srcRe_base+48(FP), R8
	MOVQ         srcIm_base+72(FP), R9
	VBROADCASTSD c+96(FP), Y12
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          scptail

scploop:
	VMOVUPD (R8)(BX*8), Y0
	VMULPD  Y12, Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	VMOVUPD (R9)(BX*8), Y1
	VMULPD  Y12, Y1, Y1
	VMOVUPD Y1, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     scploop

scptail:
	CMPQ BX, CX
	JGE  scpdone

scptailloop:
	VMOVSD (R8)(BX*8), X0
	VMULSD X12, X0, X0
	VMOVSD X0, (DI)(BX*8)
	VMOVSD (R9)(BX*8), X1
	VMULSD X12, X1, X1
	VMOVSD X1, (SI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    scptailloop

scpdone:
	VZEROUPPER
	RET

// func axpyCplxAVX2(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64)
// dstRe[i] += cr*sr - ci*si; dstIm[i] += cr*si + ci*sr
TEXT ·axpyCplxAVX2(SB), NOSPLIT, $0-112
	MOVQ         dstRe_base+0(FP), DI
	MOVQ         dstRe_len+8(FP), CX
	MOVQ         dstIm_base+24(FP), SI
	MOVQ         srcRe_base+48(FP), R8
	MOVQ         srcIm_base+72(FP), R9
	VBROADCASTSD cr+96(FP), Y12
	VBROADCASTSD ci+104(FP), Y13
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          axctail

axcloop:
	VMOVUPD (R8)(BX*8), Y0
	VMOVUPD (R9)(BX*8), Y1
	VMULPD  Y12, Y0, Y2
	VMULPD  Y13, Y1, Y3
	VSUBPD  Y3, Y2, Y2
	VADDPD  (DI)(BX*8), Y2, Y2
	VMOVUPD Y2, (DI)(BX*8)
	VMULPD  Y12, Y1, Y4
	VMULPD  Y13, Y0, Y5
	VADDPD  Y5, Y4, Y4
	VADDPD  (SI)(BX*8), Y4, Y4
	VMOVUPD Y4, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     axcloop

axctail:
	CMPQ BX, CX
	JGE  axcdone

axctailloop:
	VMOVSD (R8)(BX*8), X0
	VMOVSD (R9)(BX*8), X1
	VMULSD X12, X0, X2
	VMULSD X13, X1, X3
	VSUBSD X3, X2, X2
	VADDSD (DI)(BX*8), X2, X2
	VMOVSD X2, (DI)(BX*8)
	VMULSD X12, X1, X4
	VMULSD X13, X0, X5
	VADDSD X5, X4, X4
	VADDSD (SI)(BX*8), X4, X4
	VMOVSD X4, (SI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    axctailloop

axcdone:
	VZEROUPPER
	RET

// func addPairScaledAVX2(dst, p, m []float64, c float64)
// dst[i] += c*(p[i]+m[i])
TEXT ·addPairScaledAVX2(SB), NOSPLIT, $0-80
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         p_base+24(FP), SI
	MOVQ         m_base+48(FP), R8
	VBROADCASTSD c+72(FP), Y12
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          apstail

apsloop:
	VMOVUPD (SI)(BX*8), Y0
	VADDPD  (R8)(BX*8), Y0, Y0
	VMULPD  Y12, Y0, Y0
	VADDPD  (DI)(BX*8), Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     apsloop

apstail:
	CMPQ BX, CX
	JGE  apsdone

apstailloop:
	VMOVSD (SI)(BX*8), X0
	VADDSD (R8)(BX*8), X0, X0
	VMULSD X12, X0, X0
	VADDSD (DI)(BX*8), X0, X0
	VMOVSD X0, (DI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    apstailloop

apsdone:
	VZEROUPPER
	RET

// func fusePair4AVX2(dst, p1, m1, p2, m2, p3, m3, p4, m4 []float64, c1, c2, c3, c4 float64)
// per element: dst += c1*(p1+m1), += c2*(p2+m2), += c3*(p3+m3), += c4*(p4+m4)
TEXT ·fusePair4AVX2(SB), NOSPLIT, $0-248
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         p1_base+24(FP), SI
	MOVQ         m1_base+48(FP), R8
	MOVQ         p2_base+72(FP), R9
	MOVQ         m2_base+96(FP), R10
	MOVQ         p3_base+120(FP), R11
	MOVQ         m3_base+144(FP), R12
	MOVQ         p4_base+168(FP), R13
	MOVQ         m4_base+192(FP), R15
	VBROADCASTSD c1+216(FP), Y8
	VBROADCASTSD c2+224(FP), Y9
	VBROADCASTSD c3+232(FP), Y10
	VBROADCASTSD c4+240(FP), Y11
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          fp4tail

fp4loop:
	VMOVUPD (DI)(BX*8), Y0
	VMOVUPD (SI)(BX*8), Y1
	VADDPD  (R8)(BX*8), Y1, Y1
	VMULPD  Y8, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R9)(BX*8), Y2
	VADDPD  (R10)(BX*8), Y2, Y2
	VMULPD  Y9, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (R11)(BX*8), Y3
	VADDPD  (R12)(BX*8), Y3, Y3
	VMULPD  Y10, Y3, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (R13)(BX*8), Y4
	VADDPD  (R15)(BX*8), Y4, Y4
	VMULPD  Y11, Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     fp4loop

fp4tail:
	CMPQ BX, CX
	JGE  fp4done

fp4tailloop:
	VMOVSD (DI)(BX*8), X0
	VMOVSD (SI)(BX*8), X1
	VADDSD (R8)(BX*8), X1, X1
	VMULSD X8, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R9)(BX*8), X2
	VADDSD (R10)(BX*8), X2, X2
	VMULSD X9, X2, X2
	VADDSD X2, X0, X0
	VMOVSD (R11)(BX*8), X3
	VADDSD (R12)(BX*8), X3, X3
	VMULSD X10, X3, X3
	VADDSD X3, X0, X0
	VMOVSD (R13)(BX*8), X4
	VADDSD (R15)(BX*8), X4, X4
	VMULSD X11, X4, X4
	VADDSD X4, X0, X0
	VMOVSD X0, (DI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    fp4tailloop

fp4done:
	VZEROUPPER
	RET

// func fuseSingle8AVX2(dst, s1, s2, s3, s4, s5, s6, s7, s8 []float64, c1, c2, c3, c4 float64)
// per element: dst += c1*s1, += c1*s2, += c2*s3, += c2*s4, += c3*s5, += c3*s6, += c4*s7, += c4*s8
TEXT ·fuseSingle8AVX2(SB), NOSPLIT, $0-248
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         s1_base+24(FP), SI
	MOVQ         s2_base+48(FP), R8
	MOVQ         s3_base+72(FP), R9
	MOVQ         s4_base+96(FP), R10
	MOVQ         s5_base+120(FP), R11
	MOVQ         s6_base+144(FP), R12
	MOVQ         s7_base+168(FP), R13
	MOVQ         s8_base+192(FP), R15
	VBROADCASTSD c1+216(FP), Y8
	VBROADCASTSD c2+224(FP), Y9
	VBROADCASTSD c3+232(FP), Y10
	VBROADCASTSD c4+240(FP), Y11
	XORQ         BX, BX
	MOVQ         CX, DX
	ANDQ         $-4, DX
	CMPQ         BX, DX
	JGE          fs8tail

fs8loop:
	VMOVUPD (DI)(BX*8), Y0
	VMOVUPD (SI)(BX*8), Y1
	VMULPD  Y8, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R8)(BX*8), Y1
	VMULPD  Y8, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R9)(BX*8), Y1
	VMULPD  Y9, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R10)(BX*8), Y1
	VMULPD  Y9, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R11)(BX*8), Y1
	VMULPD  Y10, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R12)(BX*8), Y1
	VMULPD  Y10, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R13)(BX*8), Y1
	VMULPD  Y11, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R15)(BX*8), Y1
	VMULPD  Y11, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     fs8loop

fs8tail:
	CMPQ BX, CX
	JGE  fs8done

fs8tailloop:
	VMOVSD (DI)(BX*8), X0
	VMOVSD (SI)(BX*8), X1
	VMULSD X8, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R8)(BX*8), X1
	VMULSD X8, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R9)(BX*8), X1
	VMULSD X9, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R10)(BX*8), X1
	VMULSD X9, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R11)(BX*8), X1
	VMULSD X10, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R12)(BX*8), X1
	VMULSD X10, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R13)(BX*8), X1
	VMULSD X11, X1, X1
	VADDSD X1, X0, X0
	VMOVSD (R15)(BX*8), X1
	VMULSD X11, X1, X1
	VADDSD X1, X0, X0
	VMOVSD X0, (DI)(BX*8)
	INCQ   BX
	CMPQ   BX, CX
	JLT    fs8tailloop

fs8done:
	VZEROUPPER
	RET
