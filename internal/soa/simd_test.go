package soa

import (
	"math"
	"math/rand"
	"testing"
)

// The SIMD kernels must be bit-identical to their scalar siblings: the
// solver's SoA==AoS parity rests on it. Every length from 0 through a few
// vectors plus tails is checked, with denormals, negative zeros and mixed
// magnitudes in the data.
func simdFill(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		switch rng.Intn(8) {
		case 0:
			s[i] = math.Copysign(0, -1)
		case 1:
			s[i] = 5e-324 * float64(rng.Intn(100))
		case 2:
			s[i] = (rng.Float64() - 0.5) * 1e300
		default:
			s[i] = rng.NormFloat64()
		}
	}
	return s
}

func eqBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %g (%#x), scalar %g (%#x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestSIMDKernelsBitIdentical(t *testing.T) {
	if !HasAVX2 {
		t.Skip("no AVX2 on this machine; scalar paths are the reference")
	}
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 129} {
		src := make([][]float64, 9)
		for i := range src {
			src[i] = simdFill(rng, n)
		}
		c1, c2, c3, c4 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		dst0 := simdFill(rng, n)

		run := func(name string, scalar, vector func(d []float64)) {
			t.Helper()
			want := append([]float64(nil), dst0...)
			got := append([]float64(nil), dst0...)
			scalar(want)
			vector(got)
			eqBits(t, name, got, want)
		}

		run("axpy",
			func(d []float64) { axpyScalar(d, src[0], c1) },
			func(d []float64) { axpyAVX2(d, src[0], c1) })
		run("addPairScaled",
			func(d []float64) { addPairScaledScalar(d, src[0], src[1], c1) },
			func(d []float64) { addPairScaledAVX2(d, src[0], src[1], c1) })
		run("fusePair4",
			func(d []float64) {
				fusePair4Scalar(d, src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7], c1, c2, c3, c4)
			},
			func(d []float64) {
				fusePair4AVX2(d, src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7], c1, c2, c3, c4)
			})
		run("fuseSingle8",
			func(d []float64) {
				fuseSingle8Scalar(d, src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7], c1, c2, c3, c4)
			},
			func(d []float64) {
				fuseSingle8AVX2(d, src[0], src[1], src[2], src[3], src[4], src[5], src[6], src[7], c1, c2, c3, c4)
			})

		// Two-plane kernels: dst planes are independent copies.
		dstIm0 := simdFill(rng, n)
		run2 := func(name string, scalar, vector func(dRe, dIm []float64)) {
			t.Helper()
			wantRe := append([]float64(nil), dst0...)
			wantIm := append([]float64(nil), dstIm0...)
			gotRe := append([]float64(nil), dst0...)
			gotIm := append([]float64(nil), dstIm0...)
			scalar(wantRe, wantIm)
			vector(gotRe, gotIm)
			eqBits(t, name+"/re", gotRe, wantRe)
			eqBits(t, name+"/im", gotIm, wantIm)
		}
		run2("axpyPair",
			func(dRe, dIm []float64) { axpyScalar(dRe, src[0], c1); axpyScalar(dIm, src[1], c1) },
			func(dRe, dIm []float64) { axpyPairAVX2(dRe, dIm, src[0], src[1], c1) })
		run2("scalePair",
			func(dRe, dIm []float64) { scalePairScalar(dRe, dIm, src[0], src[1], c1) },
			func(dRe, dIm []float64) { scalePairAVX2(dRe, dIm, src[0], src[1], c1) })
		run2("axpyCplx",
			func(dRe, dIm []float64) { axpyCplxScalar(dRe, dIm, src[0], src[1], c1, c2) },
			func(dRe, dIm []float64) { axpyCplxAVX2(dRe, dIm, src[0], src[1], c1, c2) })
	}
}

func TestSIMDKernelsZeroAlloc(t *testing.T) {
	n := 67 // vector body + tail
	dst := simdFill(rand.New(rand.NewSource(9)), n)
	dst2 := append([]float64(nil), dst...)
	s := simdFill(rand.New(rand.NewSource(10)), n)
	if a := testing.AllocsPerRun(10, func() {
		AxpyF64(dst, s, 0.5)
		AxpyPairF64(dst, dst2, s, s, 0.25)
		ScalePairF64(dst, dst2, s, s, 1.5)
		AxpyCplxF64(dst, dst2, s, s, 0.5, -0.25)
		AddPairScaledF64(dst, s, dst2, 0.125)
		FusePair4F64(dst, s, s, s, s, s, s, s, s, 1, 2, 3, 4)
		FuseSingle8F64(dst, s, s, s, s, s, s, s, s, 1, 2, 3, 4)
	}); a != 0 {
		t.Errorf("SIMD kernels allocate %.0f times per round, want 0", a)
	}
}
