//go:build amd64

package soa

import "os"

// HasAVX2 reports whether the AVX2 plane kernels are usable on this CPU
// (AVX2 present, the OS saves YMM state, and the CBS_NO_AVX2 kill switch is
// unset). Checked once at init; the leaf kernels branch on it per call.
var HasAVX2 = detectAVX2()

func detectAVX2() bool {
	if os.Getenv("CBS_NO_AVX2") != "" {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (lo, hi uint32)

// The AVX2 kernels; see simd_amd64.s. Each is the exact vector transcription
// of its *Scalar sibling in simd.go: same per-element multiply/add order, no
// FMA. Sources must be at least len(dst) long.

//cbs:hotpath
//go:noescape
func axpyAVX2(dst, src []float64, c float64)

//cbs:hotpath
//go:noescape
func axpyPairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64)

//cbs:hotpath
//go:noescape
func scalePairAVX2(dstRe, dstIm, srcRe, srcIm []float64, c float64)

//cbs:hotpath
//go:noescape
func axpyCplxAVX2(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64)

//cbs:hotpath
//go:noescape
func addPairScaledAVX2(dst, p, m []float64, c float64)

//cbs:hotpath
//go:noescape
func fusePair4AVX2(dst, p1, m1, p2, m2, p3, m3, p4, m4 []float64, c1, c2, c3, c4 float64)

//cbs:hotpath
//go:noescape
func fuseSingle8AVX2(dst, s1, s2, s3, s4, s5, s6, s7, s8 []float64, c1, c2, c3, c4 float64)
