package eigsparse

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"cbs/internal/zlinalg"
)

func TestChebyshevMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, nev := 80, 6
	a := randHermitian(rng, n)
	apply := func(v, out []complex128) { copy(out, zlinalg.MulVec(a, v)) }
	res, err := LowestChebyshev(apply, n, nev, ChebOptions{Tol: 1e-7, MaxOuter: 200, Degree: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residuals %v", res.Residuals)
	}
	dense, _, err := zlinalg.EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nev; j++ {
		if math.Abs(res.Values[j]-dense[j]) > 1e-6 {
			t.Errorf("eigenvalue %d: %g vs dense %g", j, res.Values[j], dense[j])
		}
	}
}

func TestChebyshevLaplacian1D(t *testing.T) {
	// Periodic 1D Laplacian: eigenvalues 2-2cos(2*pi*m/n), lowest are
	// 0, then doubly degenerate pairs -- a stiff test of subspace methods.
	n := 120
	apply := func(v, out []complex128) {
		for i := 0; i < n; i++ {
			out[i] = 2*v[i] - v[(i+1)%n] - v[(i-1+n)%n]
		}
	}
	res, err := LowestChebyshev(apply, n, 5, ChebOptions{Tol: 1e-6, MaxOuter: 300, Degree: 14})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		0,
		2 - 2*math.Cos(2*math.Pi/float64(n)),
		2 - 2*math.Cos(2*math.Pi/float64(n)),
		2 - 2*math.Cos(4*math.Pi/float64(n)),
		2 - 2*math.Cos(4*math.Pi/float64(n)),
	}
	for j, w := range want {
		if math.Abs(res.Values[j]-w) > 1e-5 {
			t.Errorf("eigenvalue %d = %g, want %g (converged=%v)", j, res.Values[j], w, res.Converged)
		}
	}
}

func TestChebyshevEigenvectorResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 60
	a := randHermitian(rng, n)
	apply := func(v, out []complex128) { copy(out, zlinalg.MulVec(a, v)) }
	res, err := LowestChebyshev(apply, n, 4, ChebOptions{Tol: 1e-8, MaxOuter: 300})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if r := zlinalg.EigResidual(a, complex(res.Values[j], 0), res.Vectors[j]); r > 1e-7 {
			t.Errorf("pair %d residual %g", j, r)
		}
	}
	// Orthonormal wanted block.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d := zlinalg.Dot(res.Vectors[i], res.Vectors[j])
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(d-want) > 1e-7 {
				t.Errorf("vectors %d,%d: %v", i, j, d)
			}
		}
	}
}

func TestChebyshevValidation(t *testing.T) {
	apply := func(v, out []complex128) { copy(out, v) }
	if _, err := LowestChebyshev(apply, 10, 0, ChebOptions{}); err == nil {
		t.Error("nev=0 should fail")
	}
	if _, err := LowestChebyshev(apply, 10, 11, ChebOptions{}); err == nil {
		t.Error("nev>n should fail")
	}
}
