package eigsparse

import (
	"fmt"
	"math"
	"math/rand"

	"cbs/internal/zlinalg"
)

// Chebyshev-filtered subspace iteration (CheFSI) -- the eigensolver family
// used by production real-space DFT codes (PARSEC, RSPACE): instead of
// building a 3-block LOBPCG subspace, each outer iteration applies a
// degree-m Chebyshev polynomial of the operator that damps the unwanted
// high spectrum, then Rayleigh-Ritz projects. Far fewer orthogonalizations
// per converged eigenpair make it the fast path for Fermi-level estimates
// on large grids.

// ChebOptions controls the filtered iteration.
type ChebOptions struct {
	Tol      float64 // residual target for the wanted pairs (default 1e-4)
	MaxOuter int     // outer (filter + Rayleigh-Ritz) iterations (default 40)
	Degree   int     // Chebyshev filter degree (default 10)
	Seed     int64
}

// LowestChebyshev computes the nev lowest eigenpairs of the Hermitian
// operator of dimension n by Chebyshev-filtered subspace iteration.
func LowestChebyshev(a Apply, n, nev int, opts ChebOptions) (*Result, error) {
	if nev < 1 || nev > n {
		return nil, fmt.Errorf("eigsparse: nev = %d out of range [1,%d]", nev, n)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-4
	}
	if opts.MaxOuter <= 0 {
		opts.MaxOuter = 40
	}
	if opts.Degree < 2 {
		opts.Degree = 10
	}
	bs := nev + 4
	if bs > n {
		bs = n
	}
	rng := rand.New(rand.NewSource(opts.Seed + 13))

	// Upper spectral bound by a short Lanczos run with a safety margin.
	ub, err := upperBound(a, n, rng)
	if err != nil {
		return nil, err
	}

	x := zlinalg.NewMatrix(n, bs)
	for i := range x.Data {
		x.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	if x, err = zlinalg.OrthonormalizeColumns(x); err != nil {
		return nil, err
	}

	res := &Result{}
	// Initial Rayleigh-Ritz to seed the filter window.
	vals, x, hx, err := rayleighRitz(a, x)
	if err != nil {
		return nil, err
	}
	for outer := 0; outer < opts.MaxOuter; outer++ {
		res.Iterations = outer + 1
		// Filter window: damp everything above the current highest Ritz
		// value; the wanted states below it are amplified.
		lb := vals[bs-1]
		if lb >= ub {
			lb = ub - 1e-8*(1+math.Abs(ub))
		}
		y := chebFilter(a, x, opts.Degree, lb, ub)
		if y, err = zlinalg.OrthonormalizeColumns(y); err != nil {
			return nil, err
		}
		vals, x, hx, err = rayleighRitz(a, y)
		if err != nil {
			return nil, err
		}
		// Residual check on the wanted pairs.
		done := true
		resNorms := make([]float64, nev)
		for j := 0; j < nev; j++ {
			r := hx.Col(j)
			zlinalg.Axpy(complex(-vals[j], 0), x.Col(j), r)
			resNorms[j] = zlinalg.Norm2(r)
			if resNorms[j] > opts.Tol {
				done = false
			}
		}
		if done {
			res.Converged = true
			res.Values = vals[:nev]
			res.Residuals = resNorms
			for j := 0; j < nev; j++ {
				res.Vectors = append(res.Vectors, x.Col(j))
			}
			return res, nil
		}
	}
	// Best effort.
	res.Values = vals[:nev]
	for j := 0; j < nev; j++ {
		res.Vectors = append(res.Vectors, x.Col(j))
		r := hx.Col(j)
		zlinalg.Axpy(complex(-vals[j], 0), x.Col(j), r)
		res.Residuals = append(res.Residuals, zlinalg.Norm2(r))
	}
	return res, nil
}

// chebFilter applies the scaled degree-m Chebyshev polynomial of the
// operator that is small on [lb, ub] and grows below lb:
// y = T_m((2H - (ub+lb)) / (ub-lb)) x with per-step normalization against
// overflow.
func chebFilter(a Apply, x *zlinalg.Matrix, degree int, lb, ub float64) *zlinalg.Matrix {
	n, k := x.Rows, x.Cols
	e := (ub - lb) / 2
	c := (ub + lb) / 2
	if e <= 0 {
		e = 1e-8
	}
	// Work column-wise with the three-term recurrence.
	out := zlinalg.NewMatrix(n, k)
	t0 := make([]complex128, n)
	t1 := make([]complex128, n)
	t2 := make([]complex128, n)
	h := make([]complex128, n)
	for j := 0; j < k; j++ {
		copy(t0, x.Col(j))
		// t1 = (H - c) t0 / e
		a(t0, h)
		for i := 0; i < n; i++ {
			t1[i] = (h[i] - complex(c, 0)*t0[i]) / complex(e, 0)
		}
		for d := 2; d <= degree; d++ {
			a(t1, h)
			for i := 0; i < n; i++ {
				t2[i] = 2*(h[i]-complex(c, 0)*t1[i])/complex(e, 0) - t0[i]
			}
			t0, t1, t2 = t1, t2, t0
			// Normalize occasionally: the wanted components grow like
			// cosh(m * acosh(...)) and can overflow for deep states.
			if d%8 == 0 {
				if nrm := zlinalg.Norm2(t1); nrm > 1e100 {
					zlinalg.ScaleVec(complex(1/nrm, 0), t1)
					zlinalg.ScaleVec(complex(1/nrm, 0), t0)
				}
			}
		}
		out.SetCol(j, t1)
	}
	return out
}

// rayleighRitz projects the operator onto span(y) and returns the sorted
// Ritz values, the rotated basis and H times that basis.
func rayleighRitz(a Apply, y *zlinalg.Matrix) ([]float64, *zlinalg.Matrix, *zlinalg.Matrix, error) {
	hy := applyBlock(a, y)
	sub := zlinalg.Mul(y.ConjTranspose(), hy)
	// Symmetrize against rounding.
	for i := 0; i < sub.Rows; i++ {
		for j := i; j < sub.Cols; j++ {
			av := (sub.At(i, j) + conj(sub.At(j, i))) / 2
			sub.Set(i, j, av)
			sub.Set(j, i, conj(av))
		}
	}
	vals, vecs, err := zlinalg.EigHermitian(sub)
	if err != nil {
		return nil, nil, nil, err
	}
	return vals, zlinalg.Mul(y, vecs), zlinalg.Mul(hy, vecs), nil
}

// upperBound estimates a safe upper bound of the spectrum with a k-step
// Lanczos run: max Ritz value plus the last residual norm.
func upperBound(a Apply, n int, rng *rand.Rand) (float64, error) {
	const k = 12
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	zlinalg.Normalize(v)
	var alphas, betas []float64
	prev := make([]complex128, n)
	w := make([]complex128, n)
	beta := 0.0
	for it := 0; it < k; it++ {
		a(v, w)
		alpha := real(zlinalg.Dot(v, w))
		for i := 0; i < n; i++ {
			w[i] -= complex(alpha, 0)*v[i] + complex(beta, 0)*prev[i]
		}
		alphas = append(alphas, alpha)
		beta = zlinalg.Norm2(w)
		betas = append(betas, beta)
		if beta < 1e-12 {
			break
		}
		copy(prev, v)
		for i := 0; i < n; i++ {
			v[i] = w[i] / complex(beta, 0)
		}
	}
	// Ritz values of the small tridiagonal matrix.
	m := len(alphas)
	t := zlinalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, complex(alphas[i], 0))
		if i+1 < m {
			t.Set(i, i+1, complex(betas[i], 0))
			t.Set(i+1, i, complex(betas[i], 0))
		}
	}
	vals, _, err := zlinalg.EigHermitian(t)
	if err != nil {
		return 0, err
	}
	return vals[m-1] + betas[m-1] + 1e-6, nil
}
