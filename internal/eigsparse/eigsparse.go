// Package eigsparse provides a blocked LOBPCG-style eigensolver for the
// lowest eigenpairs of a Hermitian matrix-free operator -- the workhorse of
// the SCF substrate (lowest occupied Kohn-Sham states) where dense
// diagonalization would be wasteful.
package eigsparse

import (
	"fmt"
	"math/rand"

	"cbs/internal/zlinalg"
)

// Apply computes out = H*v for the Hermitian operator.
type Apply func(v, out []complex128)

// Options controls the iteration.
type Options struct {
	Tol     float64 // residual target per eigenpair (default 1e-6)
	MaxIter int     // outer iterations (default 200)
	Seed    int64   // initial block seed
}

// Result holds the lowest eigenpairs, ascending.
type Result struct {
	Values     []float64
	Vectors    [][]complex128
	Residuals  []float64
	Iterations int
	Converged  bool
}

// Lowest computes the nev lowest eigenpairs of the Hermitian operator of
// dimension n by a LOBPCG-type iteration: Rayleigh-Ritz in the subspace
// spanned by the current block X, the residual block R and the previous
// search directions P.
func Lowest(a Apply, n, nev int, opts Options) (*Result, error) {
	if nev < 1 || nev > n {
		return nil, fmt.Errorf("eigsparse: nev = %d out of range [1,%d]", nev, n)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	// Block size slightly larger than nev guards against slow convergence
	// of clustered eigenvalues.
	bs := nev + 2
	if bs > n {
		bs = n
	}
	x := zlinalg.NewMatrix(n, bs)
	for i := range x.Data {
		x.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	var err error
	if x, err = zlinalg.OrthonormalizeColumns(x); err != nil {
		return nil, err
	}
	var p *zlinalg.Matrix // previous directions
	res := &Result{}

	hx := applyBlock(a, x)
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Ritz values of the current block.
		xhx := zlinalg.Mul(x.ConjTranspose(), hx)
		vals, vecs, err := zlinalg.EigHermitian(xhx)
		if err != nil {
			return nil, err
		}
		x = zlinalg.Mul(x, vecs)
		hx = zlinalg.Mul(hx, vecs)
		// Residual block R = HX - X diag(vals).
		r := hx.Clone()
		for j := 0; j < bs; j++ {
			for i := 0; i < n; i++ {
				r.Set(i, j, r.At(i, j)-complex(vals[j], 0)*x.At(i, j))
			}
		}
		// Convergence of the wanted eigenpairs.
		resNorms := make([]float64, bs)
		done := true
		for j := 0; j < bs; j++ {
			resNorms[j] = zlinalg.Norm2(r.Col(j))
			if j < nev && resNorms[j] > opts.Tol {
				done = false
			}
		}
		if done {
			res.Converged = true
			res.Values = vals[:nev]
			res.Residuals = resNorms[:nev]
			for j := 0; j < nev; j++ {
				res.Vectors = append(res.Vectors, x.Col(j))
			}
			return res, nil
		}
		// Subspace [X, R, P], orthonormalized.
		cols := 2 * bs
		if p != nil {
			cols += bs
		}
		s := zlinalg.NewMatrix(n, cols)
		s.SetSlice(0, 0, x)
		s.SetSlice(0, bs, r)
		if p != nil {
			s.SetSlice(0, 2*bs, p)
		}
		q, err := zlinalg.OrthonormalizeColumns(s)
		if err != nil {
			return nil, err
		}
		hq := applyBlock(a, q)
		shs := zlinalg.Mul(q.ConjTranspose(), hq)
		// Enforce exact Hermiticity against rounding.
		for i := 0; i < shs.Rows; i++ {
			for j := i; j < shs.Cols; j++ {
				av := (shs.At(i, j) + conj(shs.At(j, i))) / 2
				shs.Set(i, j, av)
				shs.Set(j, i, conj(av))
			}
		}
		_, svecs, err := zlinalg.EigHermitian(shs)
		if err != nil {
			return nil, err
		}
		pick := svecs.Slice(0, svecs.Rows, 0, bs)
		xNew := zlinalg.Mul(q, pick)
		hxNew := zlinalg.Mul(hq, pick)
		// New search directions: the component of xNew outside span(x).
		proj := zlinalg.Mul(x, zlinalg.Mul(x.ConjTranspose(), xNew))
		p = zlinalg.Sub(xNew, proj)
		x = xNew
		hx = hxNew
	}
	// Not converged: report the best current estimates.
	xhx := zlinalg.Mul(x.ConjTranspose(), hx)
	vals, vecs, err := zlinalg.EigHermitian(xhx)
	if err != nil {
		return nil, err
	}
	x = zlinalg.Mul(x, vecs)
	hx = zlinalg.Mul(hx, vecs)
	res.Values = vals[:nev]
	for j := 0; j < nev; j++ {
		col := x.Col(j)
		res.Vectors = append(res.Vectors, col)
		hcol := hx.Col(j)
		zlinalg.Axpy(complex(-vals[j], 0), col, hcol)
		res.Residuals = append(res.Residuals, zlinalg.Norm2(hcol))
	}
	return res, nil
}

func applyBlock(a Apply, x *zlinalg.Matrix) *zlinalg.Matrix {
	out := zlinalg.NewMatrix(x.Rows, x.Cols)
	in := make([]complex128, x.Rows)
	o := make([]complex128, x.Rows)
	for j := 0; j < x.Cols; j++ {
		copy(in, x.Col(j))
		a(in, o)
		out.SetCol(j, o)
	}
	return out
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
