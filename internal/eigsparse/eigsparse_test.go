package eigsparse

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"

	"cbs/internal/zlinalg"
)

func randHermitian(rng *rand.Rand, n int) *zlinalg.Matrix {
	m := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.Float64()*4-2, 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.Float64()-0.5, rng.Float64()-0.5)
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

func TestLowestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, nev := 60, 5
	a := randHermitian(rng, n)
	apply := func(v, out []complex128) { copy(out, zlinalg.MulVec(a, v)) }
	res, err := Lowest(apply, n, nev, Options{Tol: 1e-8, MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: residuals %v", res.Residuals)
	}
	dense, _, err := zlinalg.EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nev; j++ {
		if math.Abs(res.Values[j]-dense[j]) > 1e-7 {
			t.Errorf("eigenvalue %d: %g vs dense %g", j, res.Values[j], dense[j])
		}
		if r := zlinalg.EigResidual(a, complex(res.Values[j], 0), res.Vectors[j]); r > 1e-6 {
			t.Errorf("pair %d residual %g", j, r)
		}
	}
	// Ascending order.
	if !sort.Float64sAreSorted(res.Values) {
		t.Error("eigenvalues not ascending")
	}
}

func TestLowestDiagonalOperator(t *testing.T) {
	// Matrix-free diagonal operator: lowest values known exactly.
	n := 100
	apply := func(v, out []complex128) {
		for i := range v {
			out[i] = complex(float64(i), 0) * v[i]
		}
	}
	res, err := Lowest(apply, n, 3, Options{Tol: 1e-9, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %v", res.Residuals)
	}
	for j, want := range []float64{0, 1, 2} {
		if math.Abs(res.Values[j]-want) > 1e-7 {
			t.Errorf("eigenvalue %d = %g, want %g", j, res.Values[j], want)
		}
	}
}

func TestLowestValidation(t *testing.T) {
	apply := func(v, out []complex128) { copy(out, v) }
	if _, err := Lowest(apply, 10, 0, Options{}); err == nil {
		t.Error("nev=0 should fail")
	}
	if _, err := Lowest(apply, 10, 11, Options{}); err == nil {
		t.Error("nev>n should fail")
	}
}

func TestOrthonormalEigenvectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	a := randHermitian(rng, n)
	apply := func(v, out []complex128) { copy(out, zlinalg.MulVec(a, v)) }
	res, err := Lowest(apply, n, 4, Options{Tol: 1e-8, MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d := zlinalg.Dot(res.Vectors[i], res.Vectors[j])
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(d-want) > 1e-6 {
				t.Errorf("vectors %d,%d inner product %v", i, j, d)
			}
		}
	}
}
