package dist

import (
	"context"
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/zlinalg"
)

// testProblem builds a small physical QEP (bulk Al on a coarse grid).
func testProblem(t *testing.T) *qep.Problem {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 16, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return qep.New(op, 0.25)
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// TestDistributedApplyMatchesSerial: the SPMD apply with any domain count
// must reproduce the serial qep.Apply bit-for-bit up to reduction rounding.
func TestDistributedApplyMatchesSerial(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(1))
	v := randVec(rng, n)
	z := complex(1.3, 0.7)

	want := make([]complex128, n)
	scratch := make([]complex128, n)
	q.Apply(z, v, want, scratch)

	for _, ndm := range []int{1, 2, 4} {
		s, err := NewSolver(q, ndm)
		if err != nil {
			t.Fatalf("ndm=%d: %v", ndm, err)
		}
		got, err := s.ApplyOnce(z, v)
		if err != nil {
			t.Fatal(err)
		}
		var maxd float64
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-11 {
			t.Errorf("ndm=%d: distributed apply deviates by %g", ndm, maxd)
		}
	}
}

// TestDistributedDaggerIdentity: P(z)^dagger v computed distributedly must
// equal the serial dagger apply.
func TestDistributedDaggerIdentity(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(2))
	v := randVec(rng, n)
	z := complex(0.4, -0.9)
	want := make([]complex128, n)
	scratch := make([]complex128, n)
	q.ApplyDagger(z, v, want, scratch)
	s, err := NewSolver(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ApplyOnce(1/cmplx.Conj(z), v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-11 {
			t.Fatalf("dagger mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestDistributedSolveMatchesSerialBiCG: the distributed dual BiCG must
// solve both the primal and the dual system.
func TestDistributedSolveMatchesSerialBiCG(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(3))
	b := randVec(rng, n)
	bd := randVec(rng, n)
	z := complex(1.1, 1.0) // well inside the resolvent set

	for _, ndm := range []int{1, 2, 4} {
		s, err := NewSolver(q, ndm)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		xd := make([]complex128, n)
		res, stats, err := s.SolveDual(context.Background(), z, b, bd, x, xd, linsolve.Options{Tol: 1e-10, MaxIter: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("ndm=%d: no convergence after %d iterations (res %g)", ndm, res.Iterations, res.Residual)
		}
		// Verify against the serial operator.
		out := make([]complex128, n)
		scratch := make([]complex128, n)
		q.Apply(z, x, out, scratch)
		for i := range out {
			out[i] -= b[i]
		}
		if r := zlinalg.Norm2(out) / zlinalg.Norm2(b); r > 1e-8 {
			t.Errorf("ndm=%d: primal residual %g", ndm, r)
		}
		q.ApplyDagger(z, xd, out, scratch)
		for i := range out {
			out[i] -= bd[i]
		}
		if r := zlinalg.Norm2(out) / zlinalg.Norm2(bd); r > 1e-8 {
			t.Errorf("ndm=%d: dual residual %g", ndm, r)
		}
		if ndm > 1 && stats.Messages == 0 {
			t.Errorf("ndm=%d: no messages recorded", ndm)
		}
		if ndm == 1 && stats.Messages != 0 {
			t.Errorf("ndm=1: unexpected point-to-point traffic (%d msgs)", stats.Messages)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	q := testProblem(t)
	if _, err := NewSolver(q, 0); err == nil {
		t.Error("ndm=0 should fail")
	}
	// 16 planes with Nf=4: 5 domains would give slabs of 3 < 4 planes.
	if _, err := NewSolver(q, 5); err == nil {
		t.Error("slabs thinner than the stencil must be rejected")
	}
	s, _ := NewSolver(q, 2)
	short := make([]complex128, 3)
	if _, err := s.ApplyOnce(1, short); err == nil {
		t.Error("short vector should fail")
	}
	full := make([]complex128, q.Dim())
	if _, _, err := s.SolveDual(context.Background(), 1, short, full, full, full, linsolve.Options{}); err == nil {
		t.Error("short vector should fail in SolveDual")
	}
}

// TestGroupStopPropagation: a pre-tripped group controller must stop the
// distributed solve on every rank without deadlock.
func TestGroupStopPropagation(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(4))
	b := randVec(rng, n)
	g := linsolve.NewGroupStop(2, true)
	g.MarkConverged()
	g.MarkConverged()
	s, err := NewSolver(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res, _, err := s.SolveDual(context.Background(), complex(1.2, 0.8), b, b, x, xd,
		linsolve.Options{Tol: 1e-14, LooseTol: 1e30, MaxIter: 100, Group: g})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Errorf("expected early stop, got %+v", res)
	}
	if res.Iterations > 1 {
		t.Errorf("stopped after %d iterations, want at most 1", res.Iterations)
	}
}

// TestSolveDualCancellation: a dead context must stop every rank promptly
// and surface a typed, errors.Is-able cause — no rank may be left blocked
// in a collective.
func TestSolveDualCancellation(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(5))
	b := randVec(rng, n)
	s, err := NewSolver(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	xd := make([]complex128, n)

	// Pre-canceled context: the solve must refuse to start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := s.SolveDual(ctx, complex(1.1, 1.0), b, b, x, xd,
		linsolve.Options{Tol: 1e-10, MaxIter: 4000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled solve: err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Error("pre-canceled solve reported convergence")
	}

	// Expired deadline during the iteration: an unreachable tolerance keeps
	// the solver iterating until rank 0 notices the deadline; the flag ride
	// breaks all ranks out together (the test would hang otherwise).
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	res, _, err = s.SolveDual(ctx2, complex(1.1, 1.0), b, b, x, xd,
		linsolve.Options{Tol: 1e-300, MaxIter: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out solve: err = %v, want context.DeadlineExceeded", err)
	}
	if res.Converged {
		t.Error("canceled solve reported convergence")
	}
}

// TestInjectedBreakdownDistributed: a certain-rate injector on the
// dist.breakdown site zeroes rho identically on every rank, so the
// distributed dual solve reports an immediate collective breakdown.
func TestInjectedBreakdownDistributed(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(8))
	b := randVec(rng, n)
	s, err := NewSolver(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	xd := make([]complex128, n)
	inj := chaos.New(3, chaos.Config{Breakdown: 1})
	res, _, err := s.SolveDual(context.Background(), complex(1.1, 0.6), b, b, x, xd,
		linsolve.Options{Tol: 1e-11, MaxIter: 50, Chaos: inj, ChaosSite: chaos.Site{Point: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Breakdown {
		t.Fatalf("injected breakdown did not trigger: %+v", res)
	}
	if res.Iterations != 0 {
		t.Errorf("breakdown after %d iterations, want 0", res.Iterations)
	}
}

// TestHaloChaosCorruption: an injector on the fabric corrupts the halo
// exchange deterministically -- the distributed apply deviates from the
// serial operator, identically across repeated runs.
func TestHaloChaosCorruption(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(6))
	v := randVec(rng, n)
	z := complex(1.3, 0.7)

	want := make([]complex128, n)
	scratch := make([]complex128, n)
	q.Apply(z, v, want, scratch)

	s, err := NewSolver(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetChaos(chaos.New(9, chaos.Config{Halo: 1}))
	got, err := s.ApplyOnce(z, v)
	if err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d > maxd {
			maxd = d
		}
	}
	if maxd == 0 {
		t.Fatal("certain halo corruption left the distributed apply unchanged")
	}

	// Same seed, fresh world: per-link sequence counters restart, so the
	// corrupted result is reproduced exactly.
	again, err := s.ApplyOnce(z, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("halo corruption not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}

	// Removing the injector restores the exact serial operator.
	s.SetChaos(nil)
	clean, err := s.ApplyOnce(z, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if cmplx.Abs(clean[i]-want[i]) > 1e-11 {
			t.Fatalf("clean apply deviates at %d after chaos removal", i)
		}
	}
}

// distTCPOptions keeps the fabric's recovery cycles fast for tests.
func distTCPOptions() comm.TCPOptions {
	return comm.TCPOptions{
		ConnectTimeout: 500 * time.Millisecond,
		IOTimeout:      50 * time.Millisecond,
		RetryBudget:    20,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// TestTCPFabricParity pins the tentpole invariant at the solver level: the
// same dual solve over the channel fabric and over real loopback sockets
// must agree bit for bit — solution vectors, iteration count, residual.
func TestTCPFabricParity(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(7))
	b := randVec(rng, n)
	bd := randVec(rng, n)
	z := complex(1.1, 1.0)
	opts := linsolve.Options{Tol: 1e-10, MaxIter: 4000}

	run := func(f comm.Fabric) ([]complex128, []complex128, linsolve.Result) {
		s, err := NewSolver(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			s.SetFabric(f)
		}
		x := make([]complex128, n)
		xd := make([]complex128, n)
		res, stats, err := s.SolveDual(context.Background(), z, b, bd, x, xd, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("no convergence after %d iterations", res.Iterations)
		}
		if stats.Messages == 0 {
			t.Fatal("no traffic recorded on a 2-domain solve")
		}
		return x, xd, res
	}

	chanX, chanXd, chanRes := run(nil) // default channel fabric
	tcpX, tcpXd, tcpRes := run(comm.TCPFabric{Opts: distTCPOptions()})

	if chanRes.Iterations != tcpRes.Iterations {
		t.Errorf("iteration counts differ: channel %d, tcp %d", chanRes.Iterations, tcpRes.Iterations)
	}
	if chanRes.Residual != tcpRes.Residual {
		t.Errorf("residuals differ: channel %g, tcp %g", chanRes.Residual, tcpRes.Residual)
	}
	for i := range chanX {
		if chanX[i] != tcpX[i] || chanXd[i] != tcpXd[i] {
			t.Fatalf("solutions diverge at %d: channel (%v, %v), tcp (%v, %v)",
				i, chanX[i], chanXd[i], tcpX[i], tcpXd[i])
		}
	}
}

// TestTCPFabricChaosSolve arms the network fault sites under a full dual
// solve: the reliable links must make drops, duplication, reordering,
// partitions and failed dials invisible, so the solve converges to exactly
// the clean run's bits.
func TestTCPFabricChaosSolve(t *testing.T) {
	q := testProblem(t)
	n := q.Dim()
	rng := rand.New(rand.NewSource(8))
	b := randVec(rng, n)
	bd := randVec(rng, n)
	z := complex(1.1, 1.0)
	opts := linsolve.Options{Tol: 1e-8, MaxIter: 4000}

	run := func(inj *chaos.Injector) ([]complex128, linsolve.Result) {
		s, err := NewSolver(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		s.SetFabric(comm.TCPFabric{Opts: distTCPOptions()})
		s.SetChaos(inj)
		x := make([]complex128, n)
		xd := make([]complex128, n)
		res, _, err := s.SolveDual(context.Background(), z, b, bd, x, xd, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("no convergence after %d iterations", res.Iterations)
		}
		return x, res
	}

	cleanX, cleanRes := run(nil)
	inj := chaos.New(13, chaos.Config{
		NetDrop:      0.002,
		NetDelay:     0.002,
		NetReorder:   0.002,
		NetDup:       0.005,
		NetPartition: 0.0005,
		NetConn:      0.1,
	})
	chaosX, chaosRes := run(inj)
	if cleanRes.Iterations != chaosRes.Iterations {
		t.Errorf("iteration counts differ under chaos: %d vs %d", cleanRes.Iterations, chaosRes.Iterations)
	}
	for i := range cleanX {
		if cleanX[i] != chaosX[i] {
			t.Fatalf("chaos run diverged at %d: %v != %v", i, cleanX[i], chaosX[i])
		}
	}
}
