// Package dist implements the bottom layer of the paper's hierarchical
// parallelism: the BiCG solve of one quadrature-point system P(z) Y = V is
// domain-decomposed into z-slabs, one SPMD rank per domain, communicating
// through a comm.Transport exactly as the MPI code does -- ring halo
// exchange of the stencil boundary planes with a Bloch phase twist at the
// cell seam, and allreduce for the BiCG inner products and the nonlocal
// projector coefficients (the global communication the paper identifies as
// the large-scale bottleneck). The fabric behind the Transport is
// pluggable: the in-process channel world by default, TCP sockets via
// comm.TCPFabric — the SPMD body is identical and the results are
// bit-identical (both fabrics reduce in rank order).
package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/grid"
	"cbs/internal/linsolve"
	"cbs/internal/qep"
	"cbs/internal/zlinalg"
)

// Solver holds the per-domain precomputation for one QEP.
type Solver struct {
	Q      *qep.Problem
	Ndm    int
	slabs  []grid.Slab
	ranks  []*rankState
	inj    *chaos.Injector
	fabric comm.Fabric
}

// SetChaos installs a deterministic fault injector (nil disables it). Every
// World created by subsequent solves inherits it, so halo-exchange payloads
// become corruptible test subjects. Not safe to change concurrently with a
// running solve.
func (s *Solver) SetChaos(inj *chaos.Injector) { s.inj = inj }

// SetFabric selects the communication fabric of subsequent solves (nil
// restores the in-process channel default). Not safe to change
// concurrently with a running solve.
func (s *Solver) SetFabric(f comm.Fabric) { s.fabric = f }

// newWorld builds one solve's rank world on the configured fabric.
func (s *Solver) newWorld() (comm.RankWorld, error) {
	fab := s.fabric
	if fab == nil {
		fab = comm.ChannelFabric{}
	}
	world, err := fab.NewWorld(s.Ndm)
	if err != nil {
		return nil, err
	}
	world.SetChaos(s.inj)
	return world, nil
}

// rankState is the static per-rank data.
type rankState struct {
	slab   grid.Slab
	n      int // local vector length
	offset int // global flat offset of the slab
	// Projector support segments restricted to this slab, indices localized.
	segs []projSeg
}

type projSeg struct {
	proj int // projector index (for the coefficient exchange layout)
	off  int // cell offset slot 0..2
	idx  []int32
	val  []float64
}

// NewSolver prepares an ndm-domain decomposition of the QEP.
func NewSolver(q *qep.Problem, ndm int) (*Solver, error) {
	if q.Op == nil {
		return nil, fmt.Errorf("dist: the Ndm > 1 domain decomposition requires the FD-grid backend (backend %q has no slab geometry)", q.B.Descriptor())
	}
	g := q.Op.G
	if ndm < 1 {
		return nil, fmt.Errorf("dist: ndm = %d < 1", ndm)
	}
	slabs, err := g.Decompose(ndm)
	if err != nil {
		return nil, err
	}
	nf := q.Op.St.Nf
	for _, s := range slabs {
		if s.NPlanes() < nf {
			return nil, fmt.Errorf("dist: slab with %d planes is thinner than the stencil half-width %d", s.NPlanes(), nf)
		}
	}
	sv := &Solver{Q: q, Ndm: ndm, slabs: slabs}
	plane := g.PlaneSize()
	for r := 0; r < ndm; r++ {
		rs := &rankState{slab: slabs[r], offset: slabs[r].Z0 * plane}
		rs.n = slabs[r].NPlanes() * plane
		for pi := range q.Op.Projs {
			p := &q.Op.Projs[pi]
			for off := 0; off < 3; off++ {
				s := &p.Supp[off]
				var seg projSeg
				for i, gidx := range s.Idx {
					iz := int(gidx) / plane
					if iz >= slabs[r].Z0 && iz < slabs[r].Z1 {
						seg.idx = append(seg.idx, gidx-int32(rs.offset))
						seg.val = append(seg.val, s.Val[i])
					}
				}
				if len(seg.idx) > 0 {
					seg.proj = pi
					seg.off = off
					rs.segs = append(rs.segs, seg)
				}
			}
		}
		sv.ranks = append(sv.ranks, rs)
	}
	return sv, nil
}

// Stats reports the communication traffic of one solve.
type Stats struct {
	Messages int64
	Bytes    int64
}

// groupErr picks the error that speaks for a failed world: rank 0's when
// it carries more than the shutdown echo, else the first rank that saw the
// original fault. ErrClosed alone is the aftermath of another rank's
// failure, never the cause.
func groupErr(errs []error) error {
	if errs[0] != nil && !errors.Is(errs[0], comm.ErrClosed) {
		return errs[0]
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, comm.ErrClosed) {
			return err
		}
	}
	return errs[0]
}

// SolveDual runs the distributed dual BiCG: P(z) x = b and P(z)^dagger
// xd = bd. b, bd, x, xd are full-length (N) vectors; x and xd are
// overwritten (zero initial guess).
//
// Cancellation: rank 0 polls ctx once per iteration and the decision rides
// along with the inner-product allreduce, so every rank leaves the
// iteration loop at the same step (no rank is left blocked in a
// collective). On cancellation the returned error wraps ctx.Err().
//
// Fault propagation: a rank whose transport fails (ErrShapeMismatch,
// ErrPeerLost, ErrPartition, a corrupt frame past the link's recovery
// budget) closes the world, so every other rank unblocks with ErrClosed;
// the originating error is the one returned.
func (s *Solver) SolveDual(ctx context.Context, z complex128, b, bd, x, xd []complex128, opts linsolve.Options) (linsolve.Result, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.Q.Dim()
	if len(b) != n || len(bd) != n || len(x) != n || len(xd) != n {
		return linsolve.Result{}, Stats{}, fmt.Errorf("dist: vector length mismatch")
	}
	if err := ctx.Err(); err != nil {
		return linsolve.Result{}, Stats{}, fmt.Errorf("dist: solve not started: %w", err)
	}
	world, err := s.newWorld()
	if err != nil {
		return linsolve.Result{}, Stats{}, err
	}
	defer world.Close()
	results := make([]linsolve.Result, s.Ndm)
	errs := make([]error, s.Ndm)
	var wg sync.WaitGroup
	for r := 0; r < s.Ndm; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, cerr := world.Comm(rank)
			if cerr != nil {
				errs[rank] = cerr
				world.Close()
				return
			}
			results[rank], errs[rank] = s.rankSolve(ctx, c, rank, z, b, bd, x, xd, opts)
			if errs[rank] != nil {
				// Unblock the surviving ranks: without the failed rank the
				// collectives can never complete.
				world.Close()
			}
		}(r)
	}
	wg.Wait()
	return results[0], Stats{Messages: world.Messages(), Bytes: world.Bytes()}, groupErr(errs)
}

// ApplyOnce performs one distributed operator application out = P(z) v on
// the full vector (used by tests and the scaling experiments to measure a
// single halo-exchange + allreduce round).
func (s *Solver) ApplyOnce(z complex128, v []complex128) ([]complex128, error) {
	n := s.Q.Dim()
	if len(v) != n {
		return nil, fmt.Errorf("dist: ApplyOnce length mismatch")
	}
	world, err := s.newWorld()
	if err != nil {
		return nil, err
	}
	defer world.Close()
	out := make([]complex128, n)
	errs := make([]error, s.Ndm)
	var wg sync.WaitGroup
	for r := 0; r < s.Ndm; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, cerr := world.Comm(rank)
			if cerr != nil {
				errs[rank] = cerr
				world.Close()
				return
			}
			rs := s.ranks[rank]
			ax := newApplyCtx(s, rank)
			errs[rank] = ax.apply(c, z, v[rs.offset:rs.offset+rs.n], out[rs.offset:rs.offset+rs.n])
			if errs[rank] != nil {
				world.Close()
			}
		}(r)
	}
	wg.Wait()
	if err := groupErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Control-flag bits ridden along the per-iteration allreduce. Rank 0 makes
// both decisions (group early-stop, context cancellation) and the reduction
// broadcasts them, keeping the ranks iteration-aligned.
const (
	flagGroupStop = 1 << iota
	flagCanceled
)

// rankSolve is the SPMD body executed by every rank. Solver-outcome errors
// (cancellation) are reported only by rank 0 — the ranks agree on the
// outcome and rank 0 speaks for the group; transport errors are reported
// by whichever rank observed them.
func (s *Solver) rankSolve(ctx context.Context, c comm.Transport, rank int, z complex128, b, bd, x, xd []complex128, opts linsolve.Options) (linsolve.Result, error) {
	rs := s.ranks[rank]
	n := rs.n
	res := linsolve.Result{}
	canceled := false
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10*s.Q.Dim() + 100
	}
	zd := 1 / conj(z) // dagger apply is P(zd)

	// Local views of the global output slices (disjoint across ranks).
	xl := x[rs.offset : rs.offset+n]
	xdl := xd[rs.offset : rs.offset+n]
	for i := range xl {
		xl[i] = 0
		xdl[i] = 0
	}
	r := append([]complex128(nil), b[rs.offset:rs.offset+n]...)
	rd := append([]complex128(nil), bd[rs.offset:rs.offset+n]...)
	p := append([]complex128(nil), r...)
	pd := append([]complex128(nil), rd...)
	q := make([]complex128, n)
	qd := make([]complex128, n)

	ax := newApplyCtx(s, rank)

	// Initial reductions: rho, |b|^2, |bd|^2.
	init, err := c.AllreduceSum([]complex128{
		zlinalg.Dot(rd, r),
		complex(norm2sq(r), 0),
		complex(norm2sq(rd), 0),
	})
	if err != nil {
		return res, fmt.Errorf("dist: rank %d initial reduction: %w", rank, err)
	}
	rho := init[0]
	//cbs:chaossite dist.breakdown
	if opts.Chaos.Breakdown(opts.ChaosSite) {
		// Injected Lanczos breakdown. The decision is a pure hash of the
		// chaos site, so every rank zeroes rho identically — no divergence
		// of control flow across the world.
		rho = 0
	}
	nb := sqrtRe(init[1])
	nbd := sqrtRe(init[2])
	if nb == 0 {
		nb = 1
	}
	if nbd == 0 {
		nbd = 1
	}
	rel := sqrtRe(init[1]) / nb
	relD := sqrtRe(init[2]) / nbd
	if opts.History {
		res.History = append(res.History, rel)
	}
	for iter := 0; iter < maxIter; iter++ {
		if rel <= opts.Tol && relD <= opts.Tol {
			res.Converged = true
			break
		}
		if cabs2(rho) < 1e-290 {
			res.Breakdown = true
			break
		}
		// Group early stop and cancellation: rank 0 reads the shared
		// controller (guarded by the loose straggler tolerance, see
		// linsolve.Options) and polls the context; both decisions ride
		// along with the next reduction as flag bits so every rank breaks
		// at the same iteration.
		loose := opts.LooseTol
		if loose <= 0 {
			loose = 100 * opts.Tol
		}
		var stopFlag complex128
		if rank == 0 {
			if opts.Group != nil && rel <= loose && relD <= loose && opts.Group.ShouldStop() {
				stopFlag += flagGroupStop
			}
			if ctx.Err() != nil {
				stopFlag += flagCanceled
			}
		}
		if err := ax.apply(c, z, p, q); err != nil {
			return res, fmt.Errorf("dist: rank %d apply at iteration %d: %w", rank, res.Iterations, err)
		}
		if err := ax.applyDagger(c, zd, pd, qd); err != nil {
			return res, fmt.Errorf("dist: rank %d dagger apply at iteration %d: %w", rank, res.Iterations, err)
		}
		res.MatVecApplied += 2
		out, err := c.AllreduceSum([]complex128{zlinalg.Dot(pd, q), stopFlag})
		if err != nil {
			return res, fmt.Errorf("dist: rank %d inner-product reduction: %w", rank, err)
		}
		den := out[0]
		flags := int(real(out[1]) + 0.5)
		if flags&flagCanceled != 0 {
			canceled = true
			break
		}
		if flags&flagGroupStop != 0 {
			res.StoppedEarly = true
			break
		}
		if cabs2(den) < 1e-290 {
			res.Breakdown = true
			break
		}
		alpha := rho / den
		alphaC := conj(alpha)
		for i := 0; i < n; i++ {
			xl[i] += alpha * p[i]
			xdl[i] += alphaC * pd[i]
			r[i] -= alpha * q[i]
			rd[i] -= alphaC * qd[i]
		}
		red, err := c.AllreduceSum([]complex128{
			zlinalg.Dot(rd, r),
			complex(norm2sq(r), 0),
			complex(norm2sq(rd), 0),
		})
		if err != nil {
			return res, fmt.Errorf("dist: rank %d residual reduction: %w", rank, err)
		}
		rhoNew := red[0]
		beta := rhoNew / rho
		betaC := conj(beta)
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
			pd[i] = rd[i] + betaC*pd[i]
		}
		rho = rhoNew
		rel = sqrtRe(red[1]) / nb
		relD = sqrtRe(red[2]) / nbd
		res.Iterations++
		if opts.History {
			res.History = append(res.History, rel)
		}
	}
	if rel <= opts.Tol && relD <= opts.Tol && !canceled {
		res.Converged = true
	}
	res.Residual = rel
	res.DualResidual = relD
	if canceled {
		// ctx.Err() is stable once non-nil; rank 0 observed it before
		// raising the flag, so reading it again here is race-free.
		if rank == 0 {
			return res, fmt.Errorf("dist: solve canceled at iteration %d: %w", res.Iterations, ctx.Err())
		}
		return res, nil
	}
	if res.Converged && opts.Group != nil && rank == 0 {
		opts.Group.MarkConverged()
	}
	return res, nil
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

func cabs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

func norm2sq(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return s
}

func sqrtRe(z complex128) float64 {
	r := real(z)
	if r < 0 {
		return 0
	}
	return math.Sqrt(r)
}
