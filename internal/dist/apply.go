package dist

import (
	"cbs/internal/comm"
)

// applyCtx holds the per-rank scratch buffers of the distributed operator
// application out = P(z) v.
type applyCtx struct {
	s    *Solver
	rank int
	rs   *rankState

	plane int
	halo  int // halo points per side: Nf * plane

	ext  []complex128 // [lower halo | local planes | upper halo]
	csum []complex128 // projector coefficient workspace (3 per projector)
}

func newApplyCtx(s *Solver, rank int) *applyCtx {
	g := s.Q.Op.G
	plane := g.PlaneSize()
	nf := s.Q.Op.St.Nf
	rs := s.ranks[rank]
	return &applyCtx{
		s: s, rank: rank, rs: rs,
		plane: plane,
		halo:  nf * plane,
		ext:   make([]complex128, rs.n+2*nf*plane),
		csum:  make([]complex128, 3*len(s.Q.Op.Projs)),
	}
}

// apply computes out = P(z) v for the local slab, exchanging halos with the
// ring neighbours (Bloch twist z at the cell seam) and allreducing the
// nonlocal projector coefficients. A transport failure aborts the
// application; out is unspecified then.
func (a *applyCtx) apply(c comm.Transport, z complex128, v, out []complex128) error {
	s := a.s
	op := s.Q.Op
	g := op.G
	nf := op.St.Nf
	plane := a.plane
	n := a.rs.n
	ndm := s.Ndm

	// --- halo exchange ---------------------------------------------------
	// ext = [lower halo (nf planes) | v | upper halo (nf planes)].
	copy(a.ext[a.halo:a.halo+n], v)
	up := (a.rank + 1) % ndm
	down := (a.rank - 1 + ndm) % ndm
	if ndm == 1 {
		// Self-wrap: both halos come from this rank's own data across the
		// cell seam.
		copy(a.ext[a.halo+n:], v[:a.halo]) // upper halo = bottom planes
		copy(a.ext[:a.halo], v[n-a.halo:]) // lower halo = top planes
		scale(a.ext[a.halo+n:], z)         // crossing up: factor z
		scale(a.ext[:a.halo], 1/z)         // crossing down: factor 1/z
	} else {
		// My lower halo is the top planes of the rank below; my upper halo
		// the bottom planes of the rank above. Both ranks issue the sends
		// in the same order, which keeps the channel pairing consistent
		// even when up == down (two domains).
		lowerHalo, err := c.SendRecv(up, v[n-a.halo:], down) // send my top up, recv down's top
		if err != nil {
			return err
		}
		upperHalo, err := c.SendRecv(down, v[:a.halo], up) // send my bottom down, recv up's bottom
		if err != nil {
			return err
		}
		copy(a.ext[:a.halo], lowerHalo)
		copy(a.ext[a.halo+n:], upperHalo)
		if a.rank == ndm-1 {
			scale(a.ext[a.halo+n:], z) // my up link crosses the seam
		}
		if a.rank == 0 {
			scale(a.ext[:a.halo], 1/z) // my down link crosses the seam
		}
	}

	// --- diagonal + local potential ---------------------------------------
	e := s.Q.E
	vloc := op.VLoc[a.rs.offset : a.rs.offset+n]
	for i := 0; i < n; i++ {
		out[i] = complex(e-vloc[i]-op.Diag(), 0) * v[i]
	}

	// --- x and y stencil tails (local planes) -----------------------------
	nx, ny := g.Nx, g.Ny
	planes := a.rs.slab.NPlanes()
	for iz := 0; iz < planes; iz++ {
		for iy := 0; iy < ny; iy++ {
			base := (iz*ny + iy) * nx
			row := v[base : base+nx]
			orow := out[base : base+nx]
			for d := 1; d <= nf; d++ {
				kc := complex(-op.Kx(d), 0)
				xp, xm := op.NeighborX(d)
				for ix := 0; ix < nx; ix++ {
					orow[ix] += kc * (row[xp[ix]] + row[xm[ix]])
				}
			}
		}
		planeBase := iz * ny * nx
		for d := 1; d <= nf; d++ {
			kc := complex(-op.Ky(d), 0)
			yp, ym := op.NeighborY(d)
			for iy := 0; iy < ny; iy++ {
				base := planeBase + iy*nx
				bp := planeBase + int(yp[iy])*nx
				bm := planeBase + int(ym[iy])*nx
				for ix := 0; ix < nx; ix++ {
					out[base+ix] += kc * (v[bp+ix] + v[bm+ix])
				}
			}
		}
	}

	// --- z stencil tails using the halo-extended array --------------------
	for d := 1; d <= nf; d++ {
		kc := complex(-op.Kz(d), 0)
		off := d * plane
		for i := 0; i < n; i++ {
			out[i] += kc * (a.ext[a.halo+i+off] + a.ext[a.halo+i-off])
		}
	}

	// --- nonlocal projectors ----------------------------------------------
	for i := range a.csum {
		a.csum[i] = 0
	}
	for _, seg := range a.rs.segs {
		var sum complex128
		for i, idx := range seg.idx {
			sum += complex(seg.val[i], 0) * v[idx]
		}
		a.csum[3*seg.proj+seg.off] += sum
	}
	coefs, err := c.AllreduceSum(a.csum)
	if err != nil {
		return err
	}
	zi := 1 / z
	for _, seg := range a.rs.segs {
		j := seg.off - 1 // cell offset of the row-side support
		h := complex(op.Projs[seg.proj].H, 0)
		coef := coefs[3*seg.proj+seg.off]
		if j <= 0 {
			coef += z * coefs[3*seg.proj+seg.off+1]
		}
		if j >= 0 {
			coef += zi * coefs[3*seg.proj+seg.off-1]
		}
		coef = -h * coef
		if coef == 0 {
			continue
		}
		for i, idx := range seg.idx {
			out[idx] += coef * complex(seg.val[i], 0)
		}
	}
	return nil
}

// applyDagger computes out = P(z)^dagger v = P(1/conj(z)) v; zd must be
// 1/conj(z).
func (a *applyCtx) applyDagger(c comm.Transport, zd complex128, v, out []complex128) error {
	return a.apply(c, zd, v, out)
}

func scale(v []complex128, f complex128) {
	for i := range v {
		v[i] *= f
	}
}
