package zlinalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// Hessenberg reduces a square matrix to upper Hessenberg form by unitary
// similarity: H = Q† A Q. It returns H and Q.
func Hessenberg(a *Matrix) (h, q *Matrix) {
	if a.Rows != a.Cols {
		panic("zlinalg: Hessenberg needs a square matrix")
	}
	n := a.Rows
	h = a.Clone()
	q = Identity(n)
	for k := 0; k < n-2; k++ {
		// Householder on column k, rows k+1..n-1.
		var norm float64
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, cmplx.Abs(h.At(i, k)))
		}
		if norm == 0 {
			continue
		}
		x0 := h.At(k+1, k)
		phase := complex(1, 0)
		if x0 != 0 {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		alpha := -phase * complex(norm, 0)
		v := make([]complex128, n) // reflector, zero above k+1
		v[k+1] = x0 - alpha
		for i := k + 2; i < n; i++ {
			v[i] = h.At(i, k)
		}
		var vv float64
		for i := k + 1; i < n; i++ {
			vv += real(v[i] * cmplx.Conj(v[i]))
		}
		if vv == 0 {
			continue
		}
		beta := complex(2/vv, 0)
		// H <- (I - beta v v†) H
		for j := 0; j < n; j++ {
			var s complex128
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * h.At(i, j)
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-s*v[i])
			}
		}
		// H <- H (I - beta v v†)
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		// Q <- Q (I - beta v v†)
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += q.At(i, j) * v[j]
			}
			s *= beta
			for j := k + 1; j < n; j++ {
				q.Set(i, j, q.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		// Clean the annihilated entries.
		h.Set(k+1, k, alpha)
		for i := k + 2; i < n; i++ {
			h.Set(i, k, 0)
		}
	}
	return h, q
}

// givens computes c (real) and s (complex) such that
//
//	[ c         s ] [a]   [r]
//	[ -conj(s)  c ] [b] = [0]
func givens(a, b complex128) (c float64, s complex128, r complex128) {
	if b == 0 {
		return 1, 0, a
	}
	if a == 0 {
		return 0, b / complex(cmplx.Abs(b), 0), complex(cmplx.Abs(b), 0)
	}
	absA := cmplx.Abs(a)
	rho := math.Hypot(absA, cmplx.Abs(b))
	c = absA / rho
	phase := a / complex(absA, 0)
	s = phase * cmplx.Conj(b) / complex(rho, 0)
	r = phase * complex(rho, 0)
	return c, s, r
}

// SchurResult holds a complex Schur decomposition A = Z T Z† with T upper
// triangular and Z unitary. The eigenvalues of A are the diagonal of T.
type SchurResult struct {
	T *Matrix
	Z *Matrix
}

// maxSchurIter bounds QR iterations per eigenvalue.
const maxSchurIter = 60

// Schur computes the complex Schur form of a square matrix using Hessenberg
// reduction followed by the explicit single-shift QR algorithm with
// Wilkinson shifts and occasional exceptional shifts.
func Schur(a *Matrix) (*SchurResult, error) {
	n := a.Rows
	if n == 0 {
		return &SchurResult{T: NewMatrix(0, 0), Z: NewMatrix(0, 0)}, nil
	}
	h, z := Hessenberg(a)
	eps := 2.220446049250313e-16
	hi := n - 1
	iter := 0
	totalIter := 0
	maxTotal := maxSchurIter * n
	for hi > 0 {
		// Deflation scan: find the largest lo such that h[lo][lo-1] is
		// negligible.
		lo := hi
		for lo > 0 {
			sub := cmplx.Abs(h.At(lo, lo-1))
			if sub <= eps*(cmplx.Abs(h.At(lo-1, lo-1))+cmplx.Abs(h.At(lo, lo))) {
				h.Set(lo, lo-1, 0)
				break
			}
			lo--
		}
		if lo == hi {
			// h[hi][hi] is an eigenvalue; deflate.
			hi--
			iter = 0
			continue
		}
		iter++
		totalIter++
		if totalIter > maxTotal {
			return nil, errors.New("zlinalg: Schur QR iteration failed to converge")
		}
		// Shift selection.
		var shift complex128
		if iter%20 == 0 {
			// Exceptional shift to break symmetry-induced cycles.
			shift = h.At(hi, hi) + complex(0.75*cmplx.Abs(h.At(hi, hi-1)), 0)
		} else {
			shift = wilkinsonShift(
				h.At(hi-1, hi-1), h.At(hi-1, hi),
				h.At(hi, hi-1), h.At(hi, hi))
		}
		qrStep(h, z, lo, hi, shift)
	}
	return &SchurResult{T: h, Z: z}, nil
}

// wilkinsonShift returns the eigenvalue of the 2x2 matrix [[a,b],[c,d]]
// closest to d.
func wilkinsonShift(a, b, c, d complex128) complex128 {
	tr := a + d
	det := a*d - b*c
	disc := cmplx.Sqrt(tr*tr - 4*det)
	l1 := (tr + disc) / 2
	l2 := (tr - disc) / 2
	if cmplx.Abs(l1-d) < cmplx.Abs(l2-d) {
		return l1
	}
	return l2
}

// qrStep performs one explicit single-shift QR step on the active block
// [lo..hi] of the Hessenberg matrix h, accumulating the transformation in z.
func qrStep(h, z *Matrix, lo, hi int, shift complex128) {
	n := h.Rows
	type rot struct {
		c float64
		s complex128
	}
	rots := make([]rot, 0, hi-lo)
	// Factor (H - shift I) = Q R with Givens rotations; apply them to H on
	// the left as we go.
	h.Set(lo, lo, h.At(lo, lo)-shift)
	for k := lo; k < hi; k++ {
		// Note: the subdiagonal entry is untouched by previous left
		// rotations only for the first step; we apply rotations
		// immediately so h is kept current.
		c, s, r := givens(h.At(k, k), h.At(k+1, k))
		rots = append(rots, rot{c, s})
		h.Set(k, k, r)
		h.Set(k+1, k, 0)
		// Shift the next diagonal entry before it is rotated.
		if k+1 <= hi {
			h.Set(k+1, k+1, h.At(k+1, k+1)-shift)
		}
		// Apply the rotation to the remaining columns of rows k, k+1.
		for j := k + 1; j < n; j++ {
			t1 := h.At(k, j)
			t2 := h.At(k+1, j)
			h.Set(k, j, complex(c, 0)*t1+s*t2)
			h.Set(k+1, j, -cmplx.Conj(s)*t1+complex(c, 0)*t2)
		}
	}
	// Form R Q + shift I: apply the conjugate rotations on the right.
	for idx, g := range rots {
		k := lo + idx
		top := k + 2
		if top > hi+1 {
			top = hi + 1
		}
		for i := 0; i <= top-1; i++ {
			t1 := h.At(i, k)
			t2 := h.At(i, k+1)
			h.Set(i, k, t1*complex(g.c, 0)+t2*cmplx.Conj(g.s))
			h.Set(i, k+1, -t1*g.s+t2*complex(g.c, 0))
		}
		for i := 0; i < z.Rows; i++ {
			t1 := z.At(i, k)
			t2 := z.At(i, k+1)
			z.Set(i, k, t1*complex(g.c, 0)+t2*cmplx.Conj(g.s))
			z.Set(i, k+1, -t1*g.s+t2*complex(g.c, 0))
		}
	}
	// Restore the shift on the diagonal of the active block.
	for k := lo; k <= hi; k++ {
		h.Set(k, k, h.At(k, k)+shift)
	}
}

// Eig computes the eigenvalues and right eigenvectors of a general square
// complex matrix: A*V[:,j] = values[j]*V[:,j]. The eigenvectors are
// normalized to unit 2-norm.
func Eig(a *Matrix) (values []complex128, vectors *Matrix, err error) {
	s, err := Schur(a)
	if err != nil {
		return nil, nil, err
	}
	n := a.Rows
	values = make([]complex128, n)
	for i := 0; i < n; i++ {
		values[i] = s.T.At(i, i)
	}
	vectors = triangularEigenvectors(s.T)
	vectors = Mul(s.Z, vectors)
	for j := 0; j < n; j++ {
		col := vectors.Col(j)
		Normalize(col)
		vectors.SetCol(j, col)
	}
	return values, vectors, nil
}

// Eigenvalues computes only the eigenvalues of a general complex matrix.
func Eigenvalues(a *Matrix) ([]complex128, error) {
	s, err := Schur(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	values := make([]complex128, n)
	for i := 0; i < n; i++ {
		values[i] = s.T.At(i, i)
	}
	return values, nil
}

// triangularEigenvectors returns the eigenvector matrix of an upper
// triangular T (columns correspond to the diagonal entries in order).
func triangularEigenvectors(t *Matrix) *Matrix {
	n := t.Rows
	v := NewMatrix(n, n)
	// Scale guard for near-equal eigenvalues.
	var tnorm float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			tnorm += cmplx.Abs(t.At(i, j))
		}
	}
	eps := 2.220446049250313e-16
	smin := eps * tnorm
	if smin == 0 {
		smin = eps
	}
	for j := 0; j < n; j++ {
		lam := t.At(j, j)
		x := make([]complex128, j+1)
		x[j] = 1
		for i := j - 1; i >= 0; i-- {
			var s complex128
			for k := i + 1; k <= j; k++ {
				s += t.At(i, k) * x[k]
			}
			d := t.At(i, i) - lam
			if cmplx.Abs(d) < smin {
				d = complex(smin, 0)
			}
			x[i] = -s / d
		}
		for i := 0; i <= j; i++ {
			v.Set(i, j, x[i])
		}
	}
	return v
}
