package zlinalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randMatrix(rng, n, n)
		b := randMatrix(rng, n, 3)
		f, err := FactorLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := f.Solve(b)
		res := Sub(Mul(a, x), b).MaxAbs()
		if res > 1e-10 {
			t.Errorf("n=%d: LU solve residual %g", n, res)
		}
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 0, 0},
		{1, 3i, 0},
		{4, 5, -1},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, "det", f.Det(), 2*3i*-1, 1e-13)
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 8, 8)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := f.Inverse()
	if d := Sub(Mul(a, inv), Identity(8)).MaxAbs(); d > 1e-11 {
		t.Errorf("||A A^-1 - I|| = %g", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]complex128{
		{1, 2},
		{2, 4},
	})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected ErrSingular for a rank-1 matrix")
	}
}

func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		a := randMatrix(r, n, n)
		xTrue := randMatrix(r, n, 1).Col(0)
		b := MulVec(a, xTrue)
		lu, err := FactorLU(a)
		if err != nil {
			return true // random singular matrix: vanishingly unlikely, skip
		}
		x := lu.SolveVec(b)
		for i := range x {
			if cmplx.Abs(x[i]-xTrue[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{4, 4}, {8, 5}, {20, 20}, {30, 7}} {
		a := randMatrix(rng, dims[0], dims[1])
		f, err := FactorQR(a)
		if err != nil {
			t.Fatal(err)
		}
		q := f.Q()
		r := f.R()
		checkUnitary(t, "QR Q", q, 1e-12)
		if d := Sub(Mul(q, r), a).MaxAbs(); d > 1e-12 {
			t.Errorf("%v: ||QR - A|| = %g", dims, d)
		}
		// R upper triangular.
		for i := 1; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Errorf("R(%d,%d) = %v, want 0", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 12, 5)
	xTrue := randMatrix(rng, 5, 1).Col(0)
	b := MulVec(a, xTrue)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("least squares recovered %v, want %v", x[i], xTrue[i])
		}
	}
}

func TestOrthonormalizeColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMatrix(rng, 10, 4)
	q, err := OrthonormalizeColumns(a)
	if err != nil {
		t.Fatal(err)
	}
	checkUnitary(t, "orthonormalized", q, 1e-12)
	// The span must be preserved: every column of A is Q Q† A's column.
	proj := Mul(q, Mul(q.ConjTranspose(), a))
	if d := Sub(proj, a).MaxAbs(); d > 1e-11 {
		t.Errorf("span not preserved: residual %g", d)
	}
}

func TestHessenbergForm(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{2, 3, 8, 25} {
		a := randMatrix(rng, n, n)
		h, q := Hessenberg(a)
		checkUnitary(t, "Hessenberg Q", q, 1e-12)
		// H = Q† A Q
		if d := Sub(Mul(q.ConjTranspose(), Mul(a, q)), h).MaxAbs(); d > 1e-11 {
			t.Errorf("n=%d: ||Q†AQ - H|| = %g", n, d)
		}
		for i := 2; i < n; i++ {
			for j := 0; j < i-1; j++ {
				if h.At(i, j) != 0 {
					t.Errorf("n=%d: H(%d,%d) = %v, want exactly 0", n, i, j, h.At(i, j))
				}
			}
		}
	}
}

func TestSchurDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 2, 3, 5, 10, 30} {
		a := randMatrix(rng, n, n)
		s, err := Schur(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkUnitary(t, "Schur Z", s.Z, 1e-11)
		// A = Z T Z†
		rec := Mul(s.Z, Mul(s.T, s.Z.ConjTranspose()))
		if d := Sub(rec, a).MaxAbs(); d > 1e-10 {
			t.Errorf("n=%d: ||Z T Z† - A|| = %g", n, d)
		}
		// T strictly upper triangular below the diagonal.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(s.T.At(i, j)) > 1e-10 {
					t.Errorf("n=%d: T(%d,%d) = %v not negligible", n, i, j, s.T.At(i, j))
				}
			}
		}
	}
}

func TestEigKnownDiagonal(t *testing.T) {
	want := []complex128{1, 2i, -3, 0.5 - 0.5i}
	a := NewMatrix(4, 4)
	for i, w := range want {
		a.Set(i, i, w)
	}
	vals, _, err := Eig(a)
	if err != nil {
		t.Fatal(err)
	}
	matchEigenvalues(t, vals, want, 1e-12)
}

func TestEigResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 4, 8, 20} {
		a := randMatrix(rng, n, n)
		vals, vecs, err := Eig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := 0; j < n; j++ {
			if r := EigResidual(a, vals[j], vecs.Col(j)); r > 1e-8 {
				t.Errorf("n=%d: eigenpair %d residual %g", n, j, r)
			}
		}
	}
}

func TestEigSimilarityInvariance(t *testing.T) {
	// Eigenvalues are invariant under similarity transforms.
	rng := rand.New(rand.NewSource(18))
	a := randMatrix(rng, 6, 6)
	p := randMatrix(rng, 6, 6)
	lu, err := FactorLU(p)
	if err != nil {
		t.Fatal(err)
	}
	b := Mul(p, Mul(a, lu.Inverse()))
	va, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := Eigenvalues(b)
	if err != nil {
		t.Fatal(err)
	}
	matchEigenvalues(t, vb, va, 1e-7)
}

// matchEigenvalues greedily pairs got with want and fails on any unmatched
// eigenvalue.
func matchEigenvalues(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("eigenvalue count %d, want %d", len(got), len(want))
	}
	used := make([]bool, len(got))
	for _, w := range want {
		best, bestDist := -1, math.Inf(1)
		for i, g := range got {
			if used[i] {
				continue
			}
			if d := cmplx.Abs(g - w); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 || bestDist > tol {
			t.Errorf("eigenvalue %v unmatched (closest distance %g > %g)", w, bestDist, tol)
			return
		}
		used[best] = true
	}
}
