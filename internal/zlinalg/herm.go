package zlinalg

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// EigHermitian computes all eigenvalues (ascending) and orthonormal
// eigenvectors of a Hermitian matrix. It reduces A to Hermitian tridiagonal
// form by unitary similarity, removes the off-diagonal phases, and runs the
// implicit-shift QL algorithm on the resulting real symmetric tridiagonal
// matrix while accumulating the (complex) eigenvector transform.
func EigHermitian(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, errors.New("zlinalg: EigHermitian needs a square matrix")
	}
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	// Hessenberg of a Hermitian matrix is Hermitian tridiagonal.
	t, q := Hessenberg(a)

	d := make([]float64, n)   // diagonal (real for Hermitian input)
	e := make([]float64, n-1) // off-diagonal magnitudes
	// Phase-rotate columns of q so the tridiagonal off-diagonals are real.
	phase := complex(1, 0)
	for i := 0; i < n; i++ {
		d[i] = real(t.At(i, i))
		if i < n-1 {
			sub := t.At(i+1, i)
			m := cmplx.Abs(sub)
			e[i] = m
			var next complex128
			if m == 0 {
				next = phase
			} else {
				next = phase * sub / complex(m, 0)
			}
			// Column i+1 of Q absorbs the accumulated phase.
			for r := 0; r < n; r++ {
				q.Set(r, i+1, q.At(r, i+1)*next)
			}
			phase = next
		}
	}
	if err := tql2(d, e, q); err != nil {
		return nil, nil, err
	}
	// Sort ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for k, j := range idx {
		values[k] = d[j]
		for i := 0; i < n; i++ {
			vectors.Set(i, k, q.At(i, j))
		}
	}
	return values, vectors, nil
}

// tql2 diagonalizes the real symmetric tridiagonal matrix with diagonal d
// and off-diagonal e by the implicit-shift QL algorithm, overwriting d with
// the eigenvalues and accumulating the rotations into the columns of z
// (which may be complex). Classic EISPACK algorithm.
func tql2(d, e []float64, z *Matrix) error {
	n := len(d)
	if n == 1 {
		return nil
	}
	ee := make([]float64, n)
	copy(ee, e)
	ee[n-1] = 0
	const maxIter = 50
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find small off-diagonal to split.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(ee[m]) <= 2.220446049250313e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxIter {
				return errors.New("zlinalg: tql2 failed to converge")
			}
			// Form shift.
			g := (d[l+1] - d[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					d[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into z columns i, i+1.
				cs, sn := complex(c, 0), complex(s, 0)
				for k := 0; k < z.Rows; k++ {
					f := z.At(k, i+1)
					z.Set(k, i+1, sn*z.At(k, i)+cs*f)
					z.Set(k, i, cs*z.At(k, i)-sn*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	return nil
}
