package zlinalg

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a factorization meets an (numerically)
// singular pivot.
var ErrSingular = errors.New("zlinalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U upper triangular, both packed into LU.
type LU struct {
	lu   *Matrix
	piv  []int // row i of the factor came from row piv[i] of A
	sign int   // parity of the permutation, for Det
}

// FactorLU computes the LU factorization with partial pivoting of the square
// matrix a. a is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("zlinalg: FactorLU needs a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		best := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A*x = b for a single right-hand side.
func (f *LU) SolveVec(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic("zlinalg: LU SolveVec length mismatch")
	}
	x := make([]complex128, n)
	// Apply permutation and forward-substitute L*y = P*b.
	for i := 0; i < n; i++ {
		s := b[f.piv[i]]
		ri := f.lu.Row(i)
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U*x = y.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// Solve solves A*X = B column by column.
func (f *LU) Solve(b *Matrix) *Matrix {
	if b.Rows != f.lu.Rows {
		panic("zlinalg: LU Solve shape mismatch")
	}
	x := NewMatrix(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		x.SetCol(j, f.SolveVec(b.Col(j)))
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A^{-1} from the factorization.
func (f *LU) Inverse() *Matrix {
	return f.Solve(Identity(f.lu.Rows))
}

// SolveLinear is a convenience wrapper: factor a and solve a*X = b.
func SolveLinear(a, b *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
