package zlinalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// QR holds a Householder QR factorization A = Q*R with Q unitary (m-by-m,
// returned thin as m-by-n when requested) and R upper triangular.
type QR struct {
	m, n int
	qr   *Matrix      // R in the upper triangle, reflector tails below
	tau  []complex128 // Householder scalars
	diag []complex128 // diagonal of R (the qr diagonal stores reflector heads)
}

// FactorQR computes the Householder QR factorization of a (m >= n required
// for a full-rank R; taller-than-wide and square both work). a is not
// modified.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, errors.New("zlinalg: FactorQR requires Rows >= Cols")
	}
	qr := a.Clone()
	tau := make([]complex128, n)
	diag := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, cmplx.Abs(qr.At(i, k)))
		}
		if norm == 0 {
			tau[k] = 0
			diag[k] = 0
			continue
		}
		akk := qr.At(k, k)
		// alpha = -exp(i*arg(akk)) * norm so that v = x - alpha*e1 avoids
		// cancellation.
		phase := complex(1, 0)
		if akk != 0 {
			phase = akk / complex(cmplx.Abs(akk), 0)
		}
		alpha := -phase * complex(norm, 0)
		// v = x - alpha*e1, stored in place; tau = (alpha - akk)/alpha-ish.
		v0 := akk - alpha
		qr.Set(k, k, v0)
		// beta = 2/(v†v). Compute v†v.
		var vv float64
		for i := k; i < m; i++ {
			vv += real(qr.At(i, k) * cmplx.Conj(qr.At(i, k)))
		}
		if vv == 0 {
			tau[k] = 0
			diag[k] = alpha
			continue
		}
		beta := complex(2/vv, 0)
		tau[k] = beta
		diag[k] = alpha
		// Apply H = I - beta*v*v† to the trailing columns.
		for j := k + 1; j < n; j++ {
			var s complex128
			for i := k; i < m; i++ {
				s += cmplx.Conj(qr.At(i, k)) * qr.At(i, j)
			}
			s *= beta
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{m: m, n: n, qr: qr, tau: tau, diag: diag}, nil
}

// R returns the n-by-n upper-triangular factor.
func (f *QR) R() *Matrix {
	r := NewMatrix(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.diag[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin m-by-n unitary factor.
func (f *QR) Q() *Matrix {
	q := NewMatrix(f.m, f.n)
	for j := 0; j < f.n; j++ {
		q.Set(j, j, 1)
	}
	// Accumulate reflectors in reverse order.
	for k := f.n - 1; k >= 0; k-- {
		if f.tau[k] == 0 {
			continue
		}
		for j := 0; j < f.n; j++ {
			var s complex128
			for i := k; i < f.m; i++ {
				s += cmplx.Conj(f.qr.At(i, k)) * q.At(i, j)
			}
			s *= f.tau[k]
			for i := k; i < f.m; i++ {
				q.Set(i, j, q.At(i, j)-s*f.qr.At(i, k))
			}
		}
	}
	return q
}

// ApplyQT overwrites x (length m) with Q†*x.
func (f *QR) ApplyQT(x []complex128) {
	if len(x) != f.m {
		panic("zlinalg: ApplyQT length mismatch")
	}
	for k := 0; k < f.n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		var s complex128
		for i := k; i < f.m; i++ {
			s += cmplx.Conj(f.qr.At(i, k)) * x[i]
		}
		s *= f.tau[k]
		for i := k; i < f.m; i++ {
			x[i] -= s * f.qr.At(i, k)
		}
	}
}

// SolveVec solves the least-squares problem min ||A*x - b||_2 (exact solve
// when A is square and nonsingular).
func (f *QR) SolveVec(b []complex128) ([]complex128, error) {
	y := make([]complex128, f.m)
	copy(y, b)
	f.ApplyQT(y)
	x := make([]complex128, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.diag[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// OrthonormalizeColumns replaces the columns of a with an orthonormal basis
// of their span (thin Q of the QR factorization), returning the basis. It is
// used to re-orthogonalize block-iteration subspaces.
func OrthonormalizeColumns(a *Matrix) (*Matrix, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Q(), nil
}
