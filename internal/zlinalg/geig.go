package zlinalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// GeneralizedEigResult holds eigenpairs of the pencil (A, B):
// A*V[:,j] = Values[j]*B*V[:,j]. Infinite eigenvalues (B-null directions,
// which arise in transfer-matrix pencils with singular coupling blocks) are
// reported with IsInf[j] = true and Values[j] = +Inf.
type GeneralizedEigResult struct {
	Values  []complex128
	Vectors *Matrix
	IsInf   []bool
}

// infMuTol classifies shift-invert eigenvalues |mu| below this threshold
// (relative to the largest |mu|) as infinite pencil eigenvalues.
const infMuTol = 1e-13

// GeneralizedEig solves the generalized eigenvalue problem A*x = lambda*B*x
// for general complex square A and B via the shift-invert transform
//
//	M = (A - sigma*B)^{-1} * B,  M*x = mu*x,  lambda = sigma + 1/mu.
//
// This plays the role of LAPACK's ZGGEV in the reference implementation. It
// handles singular B (infinite eigenvalues map to mu = 0) as long as some
// shift sigma makes A - sigma*B nonsingular; a few deterministic shifts are
// tried before giving up.
func GeneralizedEig(a, b *Matrix) (*GeneralizedEigResult, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, errors.New("zlinalg: GeneralizedEig needs square matrices of equal size")
	}
	n := a.Rows
	if n == 0 {
		return &GeneralizedEigResult{Vectors: NewMatrix(0, 0)}, nil
	}
	scale := a.MaxAbs()
	if bm := b.MaxAbs(); bm > 0 {
		scale /= bm
	}
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		scale = 1
	}
	// Deterministic shift candidates, scaled to the pencil magnitude. The
	// off-axis shifts avoid eigenvalues that tend to sit on the real axis
	// or the unit circle.
	shifts := []complex128{
		0,
		complex(0.29387*scale, 0.41743*scale),
		complex(-0.73912*scale, 0.23571*scale),
		complex(0.11931*scale, -0.87193*scale),
	}
	var lastErr error
	for _, sigma := range shifts {
		m := b.Clone()
		if sigma != 0 {
			m = Sub(a, Scale(sigma, b))
		} else {
			m = a.Clone()
		}
		f, err := FactorLU(m)
		if err != nil {
			lastErr = err
			continue
		}
		minv := f.Solve(b)
		mu, vec, err := Eig(minv)
		if err != nil {
			lastErr = err
			continue
		}
		var muMax float64
		for _, v := range mu {
			if av := cmplx.Abs(v); av > muMax {
				muMax = av
			}
		}
		res := &GeneralizedEigResult{
			Values:  make([]complex128, n),
			Vectors: vec,
			IsInf:   make([]bool, n),
		}
		for j, v := range mu {
			if cmplx.Abs(v) <= infMuTol*muMax {
				res.Values[j] = cmplx.Inf()
				res.IsInf[j] = true
				continue
			}
			res.Values[j] = sigma + 1/v
		}
		return res, nil
	}
	if lastErr == nil {
		lastErr = ErrSingular
	}
	return nil, errors.New("zlinalg: GeneralizedEig: no usable shift found: " + lastErr.Error())
}

// EigResidual returns ||A v - lambda v||_2 / ||v||_2 for a standard
// eigenpair.
func EigResidual(a *Matrix, lambda complex128, v []complex128) float64 {
	av := MulVec(a, v)
	Axpy(-lambda, v, av)
	nv := Norm2(v)
	if nv == 0 {
		return math.Inf(1)
	}
	return Norm2(av) / nv
}

// GeneralizedEigResidual returns ||A v - lambda B v||_2 / ||v||_2.
func GeneralizedEigResidual(a, b *Matrix, lambda complex128, v []complex128) float64 {
	av := MulVec(a, v)
	bv := MulVec(b, v)
	Axpy(-lambda, bv, av)
	nv := Norm2(v)
	if nv == 0 {
		return math.Inf(1)
	}
	return Norm2(av) / nv
}
