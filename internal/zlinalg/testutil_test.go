package zlinalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// randMatrix returns a deterministic pseudo-random r-by-c matrix with
// entries in the unit square of the complex plane.
func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return m
}

// randHermitian returns a deterministic random Hermitian n-by-n matrix.
func randHermitian(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.Float64()*2-1, 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.Float64()*2-1, rng.Float64()*2-1)
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

// checkClose fails the test when |got-want| > tol.
func checkClose(t *testing.T, name string, got, want complex128, tol float64) {
	t.Helper()
	if cmplx.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (|diff| = %g > %g)", name, got, want, cmplx.Abs(got-want), tol)
	}
}

// checkUnitary fails unless q†q = I to within tol.
func checkUnitary(t *testing.T, name string, q *Matrix, tol float64) {
	t.Helper()
	g := Mul(q.ConjTranspose(), q)
	d := Sub(g, Identity(q.Cols))
	if nrm := d.MaxAbs(); nrm > tol {
		t.Errorf("%s: ||Q†Q - I||_max = %g > %g", name, nrm, tol)
	}
}
