package zlinalg

import (
	"errors"
	"math"
	"testing"
)

// FuzzLUSolve checks FactorLU/SolveVec backward stability on random dense
// systems: any factorization that succeeds must produce a solution whose
// residual is small against ||A||_F*||x|| + ||b|| (partial pivoting keeps the
// growth factor benign at these sizes), and singular pivots must be reported
// as ErrSingular — never a panic, NaN solution or silent garbage.
func FuzzLUSolve(f *testing.F) {
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(99), uint8(8))
	f.Add(uint64(1234), uint8(1))
	f.Add(uint64(7), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := int(nRaw)%12 + 1
		s := seed
		next := func() uint64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		val := func() complex128 {
			re := float64(int64(next()%2001)-1000) / 250
			im := float64(int64(next()%2001)-1000) / 250
			return complex(re, im)
		}
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = val()
		}
		if seed%7 == 0 && n > 1 {
			// Exercise the singular path: duplicate one row into another.
			src, dst := int(next()%uint64(n)), int(next()%uint64(n))
			copy(a.Row(dst), a.Row(src))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = val()
		}
		lu, err := FactorLU(a)
		if err != nil {
			if !errors.Is(err, ErrSingular) {
				t.Fatalf("FactorLU: %v, want nil or ErrSingular", err)
			}
			return
		}
		x := lu.SolveVec(b)
		r := MulVec(a, x)
		for i := range r {
			r[i] -= b[i]
		}
		var na float64
		for _, v := range a.Data {
			na += real(v)*real(v) + imag(v)*imag(v)
		}
		na = math.Sqrt(na)
		resid := Norm2(r)
		tol := 1e-10 * float64(n) * (na*Norm2(x) + Norm2(b) + 1)
		if !(resid <= tol) { // negated compare also rejects NaN
			t.Fatalf("n=%d: residual %g exceeds %g (||A||_F=%g ||x||=%g ||b||=%g)",
				n, resid, tol, na, Norm2(x), Norm2(b))
		}
	})
}
