package zlinalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]complex128{
		{1, 2i},
		{3, 4},
	})
	if m.At(0, 1) != 2i {
		t.Fatalf("At(0,1) = %v, want 2i", m.At(0, 1))
	}
	m.Set(1, 0, 5)
	if m.At(1, 0) != 5 {
		t.Fatalf("Set/At round trip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone is not deep")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 5, 7)
	left := Mul(Identity(5), a)
	right := Mul(a, Identity(7))
	if Sub(left, a).MaxAbs() > 1e-15 || Sub(right, a).MaxAbs() > 1e-15 {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestMulAgainstManual(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if Sub(c, want).MaxAbs() > 1e-15 {
		t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 4, 3)
		b := randMatrix(r, 3, 5)
		c := randMatrix(r, 5, 2)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return Sub(lhs, rhs).MaxAbs() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestConjTransposeProperty(t *testing.T) {
	// (AB)† = B†A†
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 4, 6)
		b := randMatrix(r, 6, 3)
		lhs := Mul(a, b).ConjTranspose()
		rhs := Mul(b.ConjTranspose(), a.ConjTranspose())
		return Sub(lhs, rhs).MaxAbs() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDotHermitianSymmetry(t *testing.T) {
	// <x,y> = conj(<y,x>)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randMatrix(r, 8, 1).Col(0)
		y := randMatrix(r, 8, 1).Col(0)
		return cmplx.Abs(Dot(x, y)-cmplx.Conj(Dot(y, x))) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNorm2MatchesDot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randMatrix(r, 16, 1).Col(0)
		n := Norm2(x)
		d := math.Sqrt(real(Dot(x, x)))
		return math.Abs(n-d) < 1e-12*(1+n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSliceSetSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, 6)
	s := a.Slice(1, 4, 2, 5)
	if s.Rows != 3 || s.Cols != 3 {
		t.Fatalf("Slice shape = %dx%d, want 3x3", s.Rows, s.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if s.At(i, j) != a.At(i+1, j+2) {
				t.Fatal("Slice content mismatch")
			}
		}
	}
	b := NewMatrix(6, 6)
	b.SetSlice(1, 2, s)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i+1, j+2) != s.At(i, j) {
				t.Fatal("SetSlice content mismatch")
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	x := []complex128{3, 4i}
	n := Normalize(x)
	if math.Abs(n-5) > 1e-15 {
		t.Fatalf("Normalize returned %g, want 5", n)
	}
	if math.Abs(Norm2(x)-1) > 1e-15 {
		t.Fatalf("normalized norm = %g, want 1", Norm2(x))
	}
	zero := []complex128{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestIsHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randHermitian(rng, 5)
	if !h.IsHermitian(1e-14) {
		t.Fatal("randHermitian not detected as Hermitian")
	}
	h.Set(0, 1, h.At(0, 1)+1)
	if h.IsHermitian(1e-14) {
		t.Fatal("perturbed matrix still detected as Hermitian")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 5, 4)
	x := randMatrix(rng, 4, 1)
	y := MulVec(a, x.Col(0))
	want := Mul(a, x).Col(0)
	for i := range y {
		if cmplx.Abs(y[i]-want[i]) > 1e-13 {
			t.Fatal("MulVec disagrees with Mul")
		}
	}
}
