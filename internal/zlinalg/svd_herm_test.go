package zlinalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range [][2]int{{1, 1}, {4, 4}, {10, 6}, {6, 10}, {30, 30}} {
		a := randMatrix(rng, dims[0], dims[1])
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		checkUnitary(t, "SVD U", res.U, 1e-11)
		checkUnitary(t, "SVD V", res.V, 1e-11)
		// Reconstruct.
		r := len(res.S)
		sigma := NewMatrix(r, r)
		for i, s := range res.S {
			sigma.Set(i, i, complex(s, 0))
		}
		rec := Mul(res.U, Mul(sigma, res.V.ConjTranspose()))
		if d := Sub(rec, a).MaxAbs(); d > 1e-11 {
			t.Errorf("%v: ||U S V† - A|| = %g", dims, d)
		}
		// Descending order.
		for i := 1; i < r; i++ {
			if res.S[i] > res.S[i-1]+1e-14 {
				t.Errorf("%v: singular values not descending: %v", dims, res.S)
			}
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2, 1e-12): Jacobi must resolve the tiny value accurately.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	a.Set(2, 2, 1e-12)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1e-12}
	for i, w := range want {
		if math.Abs(res.S[i]-w) > 1e-13*w+1e-25 {
			t.Errorf("sigma[%d] = %g, want %g", i, res.S[i], w)
		}
	}
	if r := res.Rank(1e-10); r != 2 {
		t.Errorf("Rank(1e-10) = %d, want 2", r)
	}
	if r := res.Rank(1e-14); r != 3 {
		t.Errorf("Rank(1e-14) = %d, want 3", r)
	}
}

func TestSVDMatchesGramEigen(t *testing.T) {
	// Squared singular values must be the eigenvalues of A†A.
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 9, 5)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	gram := Mul(a.ConjTranspose(), a)
	vals, _, err := EigHermitian(gram)
	if err != nil {
		t.Fatal(err)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for i := range vals {
		if math.Abs(vals[i]-res.S[i]*res.S[i]) > 1e-10*(1+vals[i]) {
			t.Errorf("sigma[%d]^2 = %g, Gram eigenvalue %g", i, res.S[i]*res.S[i], vals[i])
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Rank-2 8x6 matrix from an outer product of two column pairs.
	u := randMatrix(rng, 8, 2)
	v := randMatrix(rng, 6, 2)
	a := Mul(u, v.ConjTranspose())
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Rank(1e-10); r != 2 {
		t.Errorf("Rank = %d, want 2 (S = %v)", r, res.S)
	}
}

func TestEigHermitianResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 10, 40} {
		a := randHermitian(rng, n)
		vals, vecs, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkUnitary(t, "Hermitian eigenvectors", vecs, 1e-11)
		for j := 0; j < n; j++ {
			if r := EigResidual(a, complex(vals[j], 0), vecs.Col(j)); r > 1e-10 {
				t.Errorf("n=%d: pair %d residual %g", n, j, r)
			}
		}
		// Ascending.
		for j := 1; j < n; j++ {
			if vals[j] < vals[j-1]-1e-13 {
				t.Errorf("n=%d: eigenvalues not ascending: %v", n, vals)
			}
		}
	}
}

func TestEigHermitianKnown2x2(t *testing.T) {
	// [[0, 1],[1, 0]] has eigenvalues -1, +1.
	a := FromRows([][]complex128{{0, 1}, {1, 0}})
	vals, _, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]+1) > 1e-14 || math.Abs(vals[1]-1) > 1e-14 {
		t.Errorf("eigenvalues = %v, want [-1, 1]", vals)
	}
}

func TestEigHermitianTraceProperty(t *testing.T) {
	// Sum of eigenvalues equals the trace.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randHermitian(r, n)
		vals, _, err := EigHermitian(a)
		if err != nil {
			return false
		}
		var sum, tr float64
		for i := 0; i < n; i++ {
			sum += vals[i]
			tr += real(a.At(i, i))
		}
		return math.Abs(sum-tr) < 1e-10*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGeneralizedEigInvertibleB(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 8
	a := randMatrix(rng, n, n)
	b := randMatrix(rng, n, n)
	res, err := GeneralizedEig(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if res.IsInf[j] {
			continue
		}
		if r := GeneralizedEigResidual(a, b, res.Values[j], res.Vectors.Col(j)); r > 1e-7 {
			t.Errorf("pair %d: residual %g (lambda=%v)", j, r, res.Values[j])
		}
	}
}

func TestGeneralizedEigSingularB(t *testing.T) {
	// B singular: the pencil has infinite eigenvalues that must be flagged.
	a := FromRows([][]complex128{
		{2, 1, 0},
		{0, 3, 1},
		{1, 0, 4},
	})
	b := FromRows([][]complex128{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 0}, // rank 2
	})
	res, err := GeneralizedEig(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nInf := 0
	for j := range res.Values {
		if res.IsInf[j] {
			nInf++
			continue
		}
		if r := GeneralizedEigResidual(a, b, res.Values[j], res.Vectors.Col(j)); r > 1e-8 {
			t.Errorf("finite pair %d residual %g", j, r)
		}
	}
	if nInf != 1 {
		t.Errorf("infinite eigenvalue count = %d, want 1 (values %v)", nInf, res.Values)
	}
}

func TestGeneralizedEigDiagonalKnown(t *testing.T) {
	// diag(a_i) x = lambda diag(b_i) x  =>  lambda_i = a_i / b_i.
	a := NewMatrix(3, 3)
	b := NewMatrix(3, 3)
	av := []complex128{2, 3i, -1}
	bv := []complex128{1, 2, 4i}
	for i := 0; i < 3; i++ {
		a.Set(i, i, av[i])
		b.Set(i, i, bv[i])
	}
	res, err := GeneralizedEig(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{2, 1.5i, -1 / (4i)}
	got := make([]complex128, 0, 3)
	for j := range res.Values {
		if !res.IsInf[j] {
			got = append(got, res.Values[j])
		}
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 finite eigenvalues, got %v", res.Values)
	}
	matchEigenvalues(t, got, want, 1e-10)
}

func TestGeneralizedEigCompanionQEP(t *testing.T) {
	// Scalar quadratic -h-/z + (E-h0) - h+ z = 0 linearized as a 2x2 pencil
	// must reproduce the closed-form roots.
	hm := complex(0.7, 0.1) // h- = conj(h+)
	hp := cmplx.Conj(hm)
	h0 := complex(0.3, 0)
	E := complex(1.1, 0)
	// Multiply by z: -h- + (E-h0) z - h+ z^2 = 0.
	// Companion pencil: [[0,1],[h-, -(E-h0)]] v = z [[1,0],[0,-h+]] v
	a := FromRows([][]complex128{{0, 1}, {hm, -(E - h0)}})
	b := FromRows([][]complex128{{1, 0}, {0, -hp}})
	res, err := GeneralizedEig(a, b)
	if err != nil {
		t.Fatal(err)
	}
	disc := cmplx.Sqrt((E-h0)*(E-h0) - 4*hp*hm)
	want := []complex128{((E - h0) + disc) / (2 * hp), ((E - h0) - disc) / (2 * hp)}
	matchEigenvalues(t, res.Values, want, 1e-10)
}

func TestEigVsHermitianConsistency(t *testing.T) {
	// The general Schur path and the Hermitian path must agree on a
	// Hermitian matrix.
	rng := rand.New(rand.NewSource(25))
	a := randHermitian(rng, 12)
	general, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	herm, _, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	gotReal := make([]float64, len(general))
	for i, v := range general {
		if math.Abs(imag(v)) > 1e-9 {
			t.Errorf("Hermitian matrix produced complex eigenvalue %v", v)
		}
		gotReal[i] = real(v)
	}
	sort.Float64s(gotReal)
	for i := range herm {
		if math.Abs(gotReal[i]-herm[i]) > 1e-8 {
			t.Errorf("eig[%d]: Schur %g vs Hermitian %g", i, gotReal[i], herm[i])
		}
	}
}
