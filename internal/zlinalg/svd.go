package zlinalg

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// SVDResult holds a singular value decomposition A = U * diag(S) * V†,
// with U m-by-r, V n-by-r (r = min(m,n)) and S sorted descending.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// maxJacobiSweeps bounds the number of one-sided Jacobi sweeps.
const maxJacobiSweeps = 60

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi method, which delivers high relative accuracy even for
// tiny singular values -- important because the Sakurai-Sugiura rank filter
// thresholds at delta = 1e-10 relative to sigma_1.
func SVD(a *Matrix) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap U <-> V.
		r, err := SVD(a.ConjTranspose())
		if err != nil {
			return nil, err
		}
		return &SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}
	// Work matrix W: columns are rotated in place until mutually orthogonal.
	w := a.Clone()
	v := Identity(n)
	eps := 2.220446049250313e-16
	tol := math.Sqrt(float64(m)) * eps

	cols := make([][]complex128, n) // column-major copies for cache locality
	for j := 0; j < n; j++ {
		cols[j] = w.Col(j)
	}
	vcols := make([][]complex128, n)
	for j := 0; j < n; j++ {
		vcols[j] = v.Col(j)
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp, cq := cols[p], cols[q]
				var app, aqq float64
				var apq complex128
				for i := 0; i < m; i++ {
					app += real(cp[i])*real(cp[i]) + imag(cp[i])*imag(cp[i])
					aqq += real(cq[i])*real(cq[i]) + imag(cq[i])*imag(cq[i])
					apq += cmplx.Conj(cp[i]) * cq[i]
				}
				if cmplx.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off++
				// Diagonalize the 2x2 Gram block [[app, apq],[conj(apq), aqq]].
				absApq := cmplx.Abs(apq)
				phase := apq / complex(absApq, 0)
				zeta := (aqq - app) / (2 * absApq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				cs := 1 / math.Sqrt(1+t*t)
				snMag := cs * t
				sn := complex(snMag, 0) * phase
				// Rotate columns p, q of W and V:
				//   cp' = cs*cp - conj(sn)*cq ;  cq' = sn*cp + cs*cq
				csC := complex(cs, 0)
				snConj := cmplx.Conj(sn)
				for i := 0; i < m; i++ {
					t1, t2 := cp[i], cq[i]
					cp[i] = csC*t1 - snConj*t2
					cq[i] = sn*t1 + csC*t2
				}
				vp, vq := vcols[p], vcols[q]
				for i := 0; i < n; i++ {
					t1, t2 := vp[i], vq[i]
					vp[i] = csC*t1 - snConj*t2
					vq[i] = sn*t1 + csC*t2
				}
			}
		}
		if off == 0 {
			break
		}
		if sweep == maxJacobiSweeps-1 {
			return nil, errors.New("zlinalg: Jacobi SVD failed to converge")
		}
	}

	// Singular values are the column norms; U columns the normalized columns.
	type sv struct {
		s   float64
		idx int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		svs[j] = sv{Norm2(cols[j]), j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].s > svs[j].s })

	u := NewMatrix(m, n)
	vOut := NewMatrix(n, n)
	s := make([]float64, n)
	for k, e := range svs {
		s[k] = e.s
		cj := cols[e.idx]
		if e.s > 0 {
			inv := complex(1/e.s, 0)
			for i := 0; i < m; i++ {
				u.Set(i, k, cj[i]*inv)
			}
		}
		vj := vcols[e.idx]
		for i := 0; i < n; i++ {
			vOut.Set(i, k, vj[i])
		}
	}
	return &SVDResult{U: u, S: s, V: vOut}, nil
}

// Rank returns the number of singular values greater than delta relative to
// the largest one (the Sakurai-Sugiura low-rank filter criterion).
func (r *SVDResult) Rank(delta float64) int {
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0
	}
	k := 0
	for _, s := range r.S {
		if s > delta*r.S[0] {
			k++
		}
	}
	return k
}
