// Package zlinalg implements dense complex linear algebra from scratch:
// matrix arithmetic, LU and QR factorizations, Hessenberg reduction, a
// shifted-QR complex Schur eigensolver, a one-sided Jacobi SVD, a Hermitian
// eigensolver, and a shift-invert generalized eigensolver.
//
// It plays the role that LAPACK/MKL (ZGGEV, ZGESVD, ZHEEV, ...) plays in the
// reference implementation of the paper. Matrices are small by design: the
// Sakurai-Sugiura method only needs dense algebra at dimension
// Nrh*Nmm << N, and the OBM baseline at 2*Nx*Ny*Nf.
package zlinalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix allocates an r-by-c zero matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("zlinalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("zlinalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a view (shared backing array) of row i.
func (m *Matrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol assigns column j from v.
func (m *Matrix) SetCol(j int, v []complex128) {
	if len(v) != m.Rows {
		panic("zlinalg: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Slice returns a copy of the submatrix with rows [r0,r1) and cols [c0,c1).
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic("zlinalg: Slice out of range")
	}
	s := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return s
}

// SetSlice copies src into m with top-left corner at (r0,c0).
func (m *Matrix) SetSlice(r0, c0 int, src *Matrix) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols {
		panic("zlinalg: SetSlice out of range")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
}

// ConjTranspose returns the Hermitian transpose of m.
func (m *Matrix) ConjTranspose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = cmplx.Conj(ri[j])
		}
	}
	return t
}

// Transpose returns the plain (non-conjugated) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = ri[j]
		}
	}
	return t
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	checkSameShape(a, b)
	c := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape(a, b)
	c := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
	return c
}

// Scale returns s*a.
func Scale(s complex128, a *Matrix) *Matrix {
	c := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		c.Data[i] = s * a.Data[i]
	}
	return c
}

// Mul returns the matrix product a*b using a cache-friendly ikj loop.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("zlinalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []complex128) []complex128 {
	if a.Cols != len(x) {
		panic("zlinalg: MulVec shape mismatch")
	}
	y := make([]complex128, a.Rows)
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		var s complex128
		for j, v := range ai {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest entry magnitude of m.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// IsHermitian reports whether m is Hermitian to within tol (absolute).
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("zlinalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// --- vector helpers -------------------------------------------------------

// Dot returns the Hermitian inner product conj(x).y.
func Dot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic("zlinalg: Dot length mismatch")
	}
	var s complex128
	for i := range x {
		s += cmplx.Conj(x[i]) * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []complex128) float64 {
	var s float64
	for _, v := range x {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// Axpy performs y += alpha*x in place.
func Axpy(alpha complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("zlinalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ScaleVec performs x *= alpha in place.
func ScaleVec(alpha complex128, x []complex128) {
	for i := range x {
		x[i] *= alpha
	}
}

// Normalize scales x to unit 2-norm (no-op for the zero vector) and returns
// the original norm.
func Normalize(x []complex128) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(complex(1/n, 0), x)
	return n
}
