package rescache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
)

// res builds a distinguishable fake result.
func res(e float64) *core.Result { return &core.Result{Energy: e, Rank: 1} }

// TestSingleflightDedup is the serving layer's core concurrency property:
// N goroutines requesting the same fingerprint observe exactly one
// underlying solve call. Run under -race (the race CI job covers this
// package) the test also proves the result handoff is properly
// synchronized.
func TestSingleflightDedup(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	release := make(chan struct{})
	solve := func(ctx context.Context) (*core.Result, error) {
		calls.Add(1)
		<-release // hold the call open so every goroutine piles onto it
		return res(0.5), nil
	}

	const n = 32
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	results := make([]*core.Result, n)
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			results[i], outcomes[i], errs[i] = c.Do(context.Background(), "fp", solve)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// All n goroutines are submitted; let the one leader finish.
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests made %d solve calls, want exactly 1", n, got)
	}
	leaders, dedups := 0, 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Energy != 0.5 {
			t.Fatalf("request %d got wrong result %+v", i, results[i])
		}
		switch outcomes[i] {
		case Miss:
			leaders++
		case Deduped:
			dedups++
		case Hit:
			// A goroutine scheduled after the leader published sees a hit;
			// legal, just not a dedup.
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1 (outcomes: %v)", leaders, outcomes)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if int(s.Deduped) != dedups || dedups == 0 {
		t.Errorf("deduped counter %d, observed %d dedup outcomes", s.Deduped, dedups)
	}
}

// TestCacheHitSkipsSolver: a completed entry is served without touching
// the solver, and the hit counter says so.
func TestCacheHitSkipsSolver(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	solve := func(ctx context.Context) (*core.Result, error) {
		calls.Add(1)
		return res(1.5), nil
	}
	if _, out, err := c.Do(context.Background(), "k", solve); err != nil || out != Miss {
		t.Fatalf("first Do: outcome %s err %v, want miss nil", out, err)
	}
	r, out, err := c.Do(context.Background(), "k", solve)
	if err != nil || out != Hit || r.Energy != 1.5 {
		t.Fatalf("second Do: outcome %s err %v res %+v, want hit", out, err, r)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1", calls.Load())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit 1 miss 1 entry", s)
	}
}

// TestLRUEviction: the bound holds and the least-recently-used key falls
// out first.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", res(1))
	c.Put("b", res(2))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", res(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats %+v, want 1 eviction 2 entries", s)
	}
}

// TestErrorsAreNotCached: a failed solve reaches its waiters but the next
// request for the key solves again.
func TestErrorsAreNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	var calls atomic.Int64
	failing := func(ctx context.Context) (*core.Result, error) {
		calls.Add(1)
		return nil, boom
	}
	if _, _, err := c.Do(context.Background(), "k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.Do(context.Background(), "k", failing); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want boom (error must not be cached)", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("solver ran %d times, want 2", calls.Load())
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("failed solve was cached: %+v", s)
	}
}

// TestWaiterOutlivesCanceledLeader: when the leader's own context dies,
// a waiter with a live context retries instead of inheriting the
// cancellation.
func TestWaiterOutlivesCanceledLeader(t *testing.T) {
	c := New(4)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var calls atomic.Int64
	solve := func(ctx context.Context) (*core.Result, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return res(2.5), nil
	}

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.Do(leaderCtx, "k", solve)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-leaderIn // leader is inside solve

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		r, _, err := c.Do(context.Background(), "k", solve)
		if err != nil || r == nil || r.Energy != 2.5 {
			t.Errorf("waiter got %+v, %v; want retried result", r, err)
		}
	}()
	// Give the waiter a moment to join the in-flight call, then kill the
	// leader; the waiter must become the next leader and succeed.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	<-leaderDone
	<-waiterDone
	if calls.Load() != 2 {
		t.Fatalf("solver ran %d times, want 2 (canceled leader + retrying waiter)", calls.Load())
	}
}

// TestWaiterCancellation: a waiter whose own context dies stops waiting
// promptly while the solve continues for others.
func TestWaiterCancellation(t *testing.T) {
	c := New(4)
	release := make(chan struct{})
	solve := func(ctx context.Context) (*core.Result, error) {
		<-release
		return res(3.5), nil
	}
	go c.Do(context.Background(), "k", solve) //nolint:errcheck // leader runs to completion below
	for {
		if c.Stats().InFlight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	wctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(wctx, "k", solve); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want canceled", err)
	}
	close(release)
}

// TestChaosForcedMiss: a chaos-faulted key never serves from the cache but
// every request still gets a correct result — the cache degrades to a
// pass-through, not a wrong answer.
func TestChaosForcedMiss(t *testing.T) {
	c := New(4)
	c.SetChaos(chaos.New(1, chaos.Config{CacheFault: 1}))
	var calls atomic.Int64
	solve := func(ctx context.Context) (*core.Result, error) {
		calls.Add(1)
		return res(4.5), nil
	}
	for i := 0; i < 3; i++ {
		r, out, err := c.Do(context.Background(), "k", solve)
		if err != nil || r.Energy != 4.5 {
			t.Fatalf("request %d: %+v, %v", i, r, err)
		}
		if out == Hit {
			t.Fatalf("request %d served from cache despite forced miss", i)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("solver ran %d times, want 3 (every lookup forced to miss)", calls.Load())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("Get must agree with Do on a faulted key")
	}
}

// TestDistinctKeysDoNotDedup: different fingerprints solve independently.
func TestDistinctKeysDoNotDedup(t *testing.T) {
	c := New(16)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			r, _, err := c.Do(context.Background(), key, func(ctx context.Context) (*core.Result, error) {
				calls.Add(1)
				return res(float64(i)), nil
			})
			if err != nil || r.Energy != float64(i) {
				t.Errorf("key %s: %+v, %v", key, r, err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("8 distinct keys made %d solve calls, want 8", calls.Load())
	}
}

// chaosSeed reads the CI chaos seed matrix (CBS_CHAOS_SEED, default 1).
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// TestChaosSeedMatrix drives the cache under a per-key forced-miss rate:
// faulted keys re-solve on every lookup (the fault is deterministic per
// key, so they can never serve a stale entry), clean keys solve exactly
// once, and no lookup ever returns a wrong result.
func TestChaosSeedMatrix(t *testing.T) {
	in := chaos.New(chaosSeed(), chaos.Config{CacheFault: 0.4})
	c := New(64)
	c.SetChaos(in)
	const keys, rounds = 16, 3
	var calls atomic.Int64
	for round := 0; round < rounds; round++ {
		for i := 0; i < keys; i++ {
			i := i
			r, _, err := c.Do(context.Background(), fmt.Sprintf("k%d", i), func(ctx context.Context) (*core.Result, error) {
				calls.Add(1)
				return res(float64(i)), nil
			})
			if err != nil || r.Energy != float64(i) {
				t.Fatalf("round %d key k%d: %+v, %v", round, i, r, err)
			}
		}
	}
	faulted := 0
	for i := 0; i < keys; i++ {
		if in.CacheFault(fmt.Sprintf("k%d", i)) {
			faulted++
		}
	}
	// Clean keys: 1 solve. Faulted keys: one per round.
	want := int64(keys - faulted + rounds*faulted)
	if calls.Load() != want {
		t.Errorf("%d solves for %d keys (%d faulted) over %d rounds, want %d",
			calls.Load(), keys, faulted, rounds, want)
	}
}
