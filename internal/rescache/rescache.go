// Package rescache is the serving layer's result cache: a bounded LRU of
// completed CBS solves keyed by the shared internal/fingerprint digest,
// with singleflight deduplication so N concurrent requests for the same
// fingerprint trigger exactly one underlying solve.
//
// The key scheme is the same one the sweep checkpoint journal uses
// (operator descriptor + energies + result-affecting options), which is
// what makes caching sound: two requests with equal fingerprints are the
// same computation by construction, and the paper's workload — transport
// and tunneling analyses re-deriving the same (operator, energy) solves —
// turns that equality into repeat traffic.
//
// Only successful solves are cached. Errors pass through to every waiter
// of the in-flight call but are never stored: a transient failure (a
// canceled context, an injected fault, a breakdown past the recovery
// ladder) must not poison the key.
package rescache

import (
	"context"
	"errors"
	"sync"

	"cbs/internal/chaos"
	"cbs/internal/core"
)

// SolveFunc computes the value for a key on a cache miss.
type SolveFunc func(ctx context.Context) (*core.Result, error)

// Outcome says how a Do call obtained its result.
type Outcome string

const (
	// Hit is a completed result served straight from the cache.
	Hit Outcome = "hit"
	// Miss is a solve this call executed itself (the singleflight leader).
	Miss Outcome = "miss"
	// Deduped is a result obtained by waiting on another caller's
	// in-flight solve of the same fingerprint.
	Deduped Outcome = "deduped"
)

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 // lookups served from a stored entry
	Misses    int64 // lookups that executed a solve
	Deduped   int64 // lookups that waited on another caller's solve
	Puts      int64 // direct Put insertions (sweep cross-pollination)
	Evictions int64 // entries dropped by the LRU bound
	Entries   int   // live entries
	InFlight  int   // singleflight calls currently executing
}

// entry is one cached result in the intrusive LRU list.
type entry struct {
	key        string
	res        *core.Result
	prev, next *entry
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{} // closed when the leader finishes
	res  *core.Result
	err  error
}

// Cache is a fingerprint-keyed LRU with singleflight dedup. The zero
// value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*entry
	inflight map[string]*call
	head     *entry // most recent
	tail     *entry // least recent
	stats    Stats
	chaos    *chaos.Injector
}

// New builds a cache bounded to capacity entries. Capacity < 1 is treated
// as 1: the singleflight layer must always have a cache to publish into,
// and one slot still collapses a burst of identical requests.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		items:    make(map[string]*entry),
		inflight: make(map[string]*call),
	}
}

// SetChaos arms fault injection on cache lookups (nil-safe, test/smoke
// only): a CacheFault key is forced to miss on every lookup.
func (c *Cache) SetChaos(in *chaos.Injector) {
	c.mu.Lock()
	c.chaos = in
	c.mu.Unlock()
}

// Do returns the result for key: from the cache if present, from another
// caller's in-flight solve of the same key if one is running, otherwise by
// executing solve itself and publishing the result. The outcome reports
// which of the three paths was taken.
//
// Context semantics: a waiter whose own ctx dies stops waiting and
// returns ctx's error — the in-flight solve keeps running for the callers
// still interested. If the leader's solve fails with the leader's own
// context error, surviving waiters retry (one becomes the next leader)
// rather than inherit a cancellation that was never theirs.
func (c *Cache) Do(ctx context.Context, key string, solve SolveFunc) (*core.Result, Outcome, error) {
	for {
		c.mu.Lock()
		//cbs:chaossite rescache.do
		if e, ok := c.items[key]; ok && !c.chaos.CacheFault(key) {
			c.moveToFront(e)
			c.stats.Hits++
			res := e.res
			c.mu.Unlock()
			return res, Hit, nil
		}
		if cl, ok := c.inflight[key]; ok {
			c.stats.Deduped++
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, Deduped, ctx.Err()
			}
			if cl.err == nil {
				return cl.res, Deduped, nil
			}
			if isCtxErr(cl.err) && ctx.Err() == nil {
				// The leader died of its own cancellation, not ours: loop
				// and retry (this waiter may become the next leader).
				continue
			}
			return nil, Deduped, cl.err
		}
		// Leader: register the call and solve outside the lock.
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.stats.Misses++
		c.stats.InFlight++
		c.mu.Unlock()

		cl.res, cl.err = solve(ctx)

		c.mu.Lock()
		delete(c.inflight, key)
		c.stats.InFlight--
		if cl.err == nil {
			c.storeLocked(key, cl.res)
		}
		c.mu.Unlock()
		close(cl.done)
		return cl.res, Miss, cl.err
	}
}

// isCtxErr reports whether err is (or wraps) a context cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Get returns the cached result for key without solving, and whether it
// was present. A chaos-faulted key reads as absent, matching Do.
func (c *Cache) Get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	//cbs:chaossite rescache.get
	if !ok || c.chaos.CacheFault(key) {
		return nil, false
	}
	c.moveToFront(e)
	return e.res, true
}

// Put stores a completed result under key (used to warm the cache from a
// journal restore or a sweep's per-energy results).
func (c *Cache) Put(key string, res *core.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	c.stats.Puts++
	c.storeLocked(key, res)
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.items)
	return s
}

// storeLocked inserts or refreshes key; the caller holds mu.
func (c *Cache) storeLocked(key string, res *core.Result) {
	if e, ok := c.items[key]; ok {
		e.res = res
		c.moveToFront(e)
		return
	}
	e := &entry{key: key, res: res}
	c.items[key] = e
	c.pushFront(e)
	for len(c.items) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.stats.Evictions++
	}
}

// pushFront links e as the most-recent entry.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the list.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e as most recently used.
func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
