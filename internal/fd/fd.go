// Package fd provides central finite-difference coefficients for the
// Laplacian of the real-space grid scheme. The paper uses the "nine-point"
// approximation, i.e. half-width Nf = 4 (8th order) in each direction; lower
// orders are provided for convergence studies and fast tests.
//
// Coefficients are generated with Fornberg's recursion for arbitrary
// half-width and cross-checked against the classical closed-form tables in
// the tests.
package fd

import (
	"fmt"
	"strings"
)

// MaxHalfWidth is the largest supported stencil half-width.
const MaxHalfWidth = 8

// Stencil holds central second-derivative coefficients: f”(x) ~
// (1/h^2) * [ C[0]*f(x) + sum_{d=1..Nf} C[d]*(f(x+dh) + f(x-dh)) ].
type Stencil struct {
	Nf int       // half-width (paper: order of the FD approximation)
	C  []float64 // len Nf+1; C[0] central, C[d] symmetric tails
}

// NewStencil returns the central second-derivative stencil of half-width nf
// (accuracy order 2*nf).
func NewStencil(nf int) (*Stencil, error) {
	if nf < 1 || nf > MaxHalfWidth {
		return nil, fmt.Errorf("fd: half-width %d out of range [1,%d]", nf, MaxHalfWidth)
	}
	w := fornberg(nf, 2)
	c := make([]float64, nf+1)
	c[0] = w[nf]
	for d := 1; d <= nf; d++ {
		// Central stencils of even derivatives are symmetric.
		c[d] = w[nf+d]
	}
	return &Stencil{Nf: nf, C: c}, nil
}

// MustStencil is NewStencil that panics on invalid input (for package-level
// defaults with known-valid arguments).
func MustStencil(nf int) *Stencil {
	s, err := NewStencil(nf)
	if err != nil {
		panic("fd: MustStencil: " + strings.TrimPrefix(err.Error(), "fd: "))
	}
	return s
}

// fornberg computes the weights of the m-th derivative at x=0 on the grid
// nodes {-nf..nf} (unit spacing) using Fornberg's algorithm
// (Math. Comp. 51, 1988). Returns weights indexed by node+nf.
func fornberg(nf, m int) []float64 {
	n := 2*nf + 1
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i - nf)
	}
	// delta[j][k] = weight of node j for the k-th derivative, built
	// incrementally over nodes.
	delta := make([][]float64, n)
	for j := range delta {
		delta[j] = make([]float64, m+1)
	}
	delta[0][0] = 1
	var c1 float64 = 1
	prev := make([]float64, m+1) // copy of row i-1 before this sweep updates it
	for i := 1; i < n; i++ {
		c2 := 1.0
		mn := i
		if m < mn {
			mn = m
		}
		copy(prev, delta[i-1])
		for j := 0; j < i; j++ {
			c3 := x[i] - x[j]
			c2 *= c3
			for k := mn; k >= 0; k-- {
				d := delta[j][k]
				var dPrev float64
				if k > 0 {
					dPrev = delta[j][k-1]
				}
				delta[j][k] = (x[i]*d - float64(k)*dPrev) / c3
			}
		}
		for k := mn; k >= 0; k-- {
			var dPrev float64
			if k > 0 {
				dPrev = prev[k-1]
			}
			delta[i][k] = c1 / c2 * (float64(k)*dPrev - x[i-1]*prev[k])
		}
		c1 = c2
	}
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = delta[j][m]
	}
	return out
}

// Weights exposes the raw Fornberg weights of the m-th derivative on the
// symmetric node set {-nf..nf}; index by node+nf.
func Weights(nf, m int) ([]float64, error) {
	if nf < 1 || nf > MaxHalfWidth {
		return nil, fmt.Errorf("fd: half-width %d out of range [1,%d]", nf, MaxHalfWidth)
	}
	if m < 0 || m > 2*nf {
		return nil, fmt.Errorf("fd: derivative order %d out of range [0,%d]", m, 2*nf)
	}
	return fornberg(nf, m), nil
}
