package fd

import (
	"math"
	"testing"
)

// Classical closed-form central second-derivative coefficients.
var classical = map[int][]float64{
	1: {-2, 1},
	2: {-5.0 / 2, 4.0 / 3, -1.0 / 12},
	3: {-49.0 / 18, 3.0 / 2, -3.0 / 20, 1.0 / 90},
	4: {-205.0 / 72, 8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560},
}

func TestStencilMatchesClassicalTables(t *testing.T) {
	for nf, want := range classical {
		s, err := NewStencil(nf)
		if err != nil {
			t.Fatalf("nf=%d: %v", nf, err)
		}
		if len(s.C) != nf+1 {
			t.Fatalf("nf=%d: len(C) = %d", nf, len(s.C))
		}
		for d, w := range want {
			if math.Abs(s.C[d]-w) > 1e-12 {
				t.Errorf("nf=%d: C[%d] = %.15g, want %.15g", nf, d, s.C[d], w)
			}
		}
	}
}

func TestStencilSumZero(t *testing.T) {
	// A second-derivative stencil annihilates constants: C0 + 2*sum(Cd) = 0.
	for nf := 1; nf <= MaxHalfWidth; nf++ {
		s := MustStencil(nf)
		sum := s.C[0]
		for d := 1; d <= nf; d++ {
			sum += 2 * s.C[d]
		}
		if math.Abs(sum) > 1e-11 {
			t.Errorf("nf=%d: stencil sum = %g, want 0", nf, sum)
		}
	}
}

func TestStencilDifferentiatesPolynomialsExactly(t *testing.T) {
	// The stencil of half-width nf must be exact on x^p for p <= 2*nf+1.
	h := 0.1
	for nf := 1; nf <= 4; nf++ {
		s := MustStencil(nf)
		for p := 0; p <= 2*nf+1; p++ {
			f := func(x float64) float64 { return math.Pow(x, float64(p)) }
			x0 := 0.7
			got := s.C[0] * f(x0)
			for d := 1; d <= nf; d++ {
				got += s.C[d] * (f(x0+float64(d)*h) + f(x0-float64(d)*h))
			}
			got /= h * h
			want := 0.0
			if p >= 2 {
				want = float64(p*(p-1)) * math.Pow(x0, float64(p-2))
			}
			if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
				t.Errorf("nf=%d p=%d: d2 = %g, want %g", nf, p, got, want)
			}
		}
	}
}

func TestStencilConvergenceOrder(t *testing.T) {
	// Error on sin(x) must shrink like h^{2nf}.
	for _, nf := range []int{1, 2, 3, 4} {
		s := MustStencil(nf)
		errAt := func(h float64) float64 {
			x0 := 0.3
			got := s.C[0] * math.Sin(x0)
			for d := 1; d <= nf; d++ {
				got += s.C[d] * (math.Sin(x0+float64(d)*h) + math.Sin(x0-float64(d)*h))
			}
			got /= h * h
			return math.Abs(got + math.Sin(x0))
		}
		e1 := errAt(0.2)
		e2 := errAt(0.1)
		order := math.Log2(e1 / e2)
		if order < float64(2*nf)-0.7 {
			t.Errorf("nf=%d: observed order %.2f, want about %d", nf, order, 2*nf)
		}
	}
}

func TestWeightsFirstDerivative(t *testing.T) {
	// nf=1 first derivative: [-1/2, 0, 1/2].
	w, err := Weights(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-0.5, 0, 0.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-14 {
			t.Errorf("w[%d] = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestInvalidArgs(t *testing.T) {
	if _, err := NewStencil(0); err == nil {
		t.Error("NewStencil(0) should fail")
	}
	if _, err := NewStencil(MaxHalfWidth + 1); err == nil {
		t.Error("NewStencil(too large) should fail")
	}
	if _, err := Weights(2, -1); err == nil {
		t.Error("Weights(2,-1) should fail")
	}
}
