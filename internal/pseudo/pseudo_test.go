package pseudo

import (
	"math"
	"testing"
)

func TestLookupKnown(t *testing.T) {
	for _, sym := range Known() {
		s, err := Lookup(sym)
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if s.Symbol != sym || s.Zval <= 0 || s.RLoc <= 0 || s.RScr <= 0 {
			t.Errorf("%s: implausible parameters %+v", sym, s)
		}
	}
	if _, err := Lookup("Xx"); err == nil {
		t.Error("unknown species should fail")
	}
}

func TestVLocalLimits(t *testing.T) {
	c, _ := Lookup("C")
	// Continuity at r -> 0: the explicit limit must match small-r values.
	v0 := c.VLocal(0)
	v1 := c.VLocal(1e-7)
	if math.Abs(v0-v1) > 1e-5 {
		t.Errorf("VLocal discontinuous at origin: %g vs %g", v0, v1)
	}
	// Large-r tail approaches -Z/r (norm conservation of the local part).
	for _, r := range []float64{4, 6, 8} {
		got := c.VLocal(r)
		want := -c.Zval / r
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("VLocal(%g) = %g, want about %g", r, got, want)
		}
	}
	// Attractive core.
	if c.VLocal(0) >= 0 {
		t.Errorf("VLocal(0) = %g, want negative", c.VLocal(0))
	}
}

func TestVScreenedShortRanged(t *testing.T) {
	for _, sym := range Known() {
		s, _ := Lookup(sym)
		rc := s.ScreenedCutoff()
		if v := math.Abs(s.VScreened(rc)); v > 1e-9 {
			t.Errorf("%s: |VScreened(cutoff)| = %g, want < 1e-9", sym, v)
		}
		if v := math.Abs(s.VScreened(rc * 1.5)); v > 1e-12 {
			t.Errorf("%s: screened tail survives beyond cutoff: %g", sym, v)
		}
		// Still attractive in the bonding region.
		if s.VScreened(1.0) >= 0.5 {
			t.Errorf("%s: VScreened(1) = %g seems unphysical", sym, s.VScreened(1.0))
		}
	}
}

func TestVScreenedContinuityAtOrigin(t *testing.T) {
	for _, sym := range Known() {
		s, _ := Lookup(sym)
		if d := math.Abs(s.VScreened(0) - s.VScreened(1e-7)); d > 1e-5 {
			t.Errorf("%s: VScreened discontinuous at origin by %g", sym, d)
		}
	}
}

func TestChannels(t *testing.T) {
	al, _ := Lookup("Al")
	ch := al.Channels()
	if len(ch) != 2 {
		t.Fatalf("Al has %d channels, want 2 (s and p)", len(ch))
	}
	if ch[0].L != 0 || ch[0].NumProjectors() != 1 {
		t.Error("first channel should be s with 1 projector")
	}
	if ch[1].L != 1 || ch[1].NumProjectors() != 3 {
		t.Error("second channel should be p with 3 projectors")
	}
	c, _ := Lookup("C")
	if got := len(c.Channels()); got != 1 {
		t.Errorf("C has %d channels, want 1 (s only)", got)
	}
}

func TestRadialShapes(t *testing.T) {
	ch := Channel{L: 0, R: 0.5}
	if math.Abs(ch.Radial(0)-1) > 1e-14 {
		t.Error("s radial at origin should be 1")
	}
	if ch.Radial(3*0.5) >= ch.Radial(0.5) {
		t.Error("s radial must decay")
	}
	chp := Channel{L: 1, R: 0.5}
	if chp.Radial(0) != 0 {
		t.Error("p radial must vanish at origin")
	}
	// p radial peaks at r = R.
	if chp.Radial(0.5) <= chp.Radial(0.1) || chp.Radial(0.5) <= chp.Radial(2.0) {
		t.Error("p radial should peak near r = R")
	}
}

func TestAngularFactors(t *testing.T) {
	s := Channel{L: 0}
	if s.Angular(0, 1, 2, 3, math.Sqrt(14)) != 1 {
		t.Error("s angular factor should be 1")
	}
	p := Channel{L: 1}
	r := math.Sqrt(14.0)
	sum := 0.0
	for m := 0; m < 3; m++ {
		v := p.Angular(m, 1, 2, 3, r)
		sum += v * v
	}
	// Direction cosines are normalized: sum of squares = 1.
	if math.Abs(sum-1) > 1e-14 {
		t.Errorf("p angular normalization = %g, want 1", sum)
	}
	if p.Angular(0, 1, 0, 0, 0) != 0 {
		t.Error("p angular at origin should be 0")
	}
}

func TestProjectorCutoffCoversGaussian(t *testing.T) {
	for _, sym := range Known() {
		s, _ := Lookup(sym)
		for _, ch := range s.Channels() {
			v := ch.Radial(ch.Cutoff)
			if v > 2e-4 {
				t.Errorf("%s L=%d: radial at cutoff = %g, want < 2e-4", sym, ch.L, v)
			}
		}
	}
}
