// Package pseudo provides an analytic norm-conserving pseudopotential model
// in the Goedecker/Teter/Hutter (GTH) style: a soft-core local part plus
// separable Kleinman-Bylander nonlocal projectors with Gaussian radial
// shapes.
//
// The paper obtains Troullier-Martins pseudopotentials and the converged
// local KS potential from the proprietary RSPACE dataset ("publicly not
// available"). This package is the documented substitution (DESIGN.md): the
// analytic form produces a KS Hamiltonian with exactly the same structure
// (sparse FD Laplacian + local diagonal + low-rank separable nonlocal term)
// and physically shaped spectra, which is all the CBS solver observes. The
// parameter values below follow published GTH-LDA tables to the accuracy
// needed for that purpose; they are model parameters, not production
// pseudopotentials.
package pseudo

import (
	"fmt"
	"math"
)

// Species holds the analytic pseudopotential parameters of one element.
// All lengths are in bohr and energies in hartree.
type Species struct {
	Symbol string
	Zval   float64 // valence charge

	// Local part: V_loc(r) = -Zval*erf(r/(sqrt(2)*RLoc))/r
	//                        + exp(-(r/RLoc)^2/2) * (C1 + C2*(r/RLoc)^2)
	RLoc   float64
	C1, C2 float64

	// Nonlocal separable channels. HS/HP are the KB channel strengths; a
	// zero strength disables the channel.
	RS float64 // s-projector Gaussian radius
	HS float64 // s channel strength
	RP float64 // p-projector Gaussian radius
	HP float64 // p channel strength

	// RScr is the neutral-atom screening radius: the bare ionic tail
	// -Zval/r is cancelled by +Zval*erf(r/RScr)/r, leaving a short-ranged
	// atomic potential whose lattice sum converges absolutely. This mimics
	// the (electrostatically neutral) self-consistent potential that the
	// paper reads from RSPACE.
	RScr float64
}

// table holds the built-in species.
var table = map[string]Species{
	"Al": {Symbol: "Al", Zval: 3, RLoc: 0.450, C1: -8.491, C2: 0.0,
		RS: 0.4654, HS: 5.088, RP: 0.5462, HP: 2.679, RScr: 1.40},
	"C": {Symbol: "C", Zval: 4, RLoc: 0.3488, C1: -8.5138, C2: 1.2284,
		RS: 0.3046, HS: 9.5228, RP: 0.2327, HP: 0.0, RScr: 1.20},
	"B": {Symbol: "B", Zval: 3, RLoc: 0.4339, C1: -5.5786, C2: 0.8043,
		RS: 0.3738, HS: 6.2339, RP: 0.3603, HP: 0.0, RScr: 1.25},
	"N": {Symbol: "N", Zval: 5, RLoc: 0.2893, C1: -12.2348, C2: 1.7664,
		RS: 0.2566, HS: 13.5523, RP: 0.2270, HP: 0.0, RScr: 1.15},
}

// Lookup returns the parameters of a built-in species.
func Lookup(symbol string) (Species, error) {
	s, ok := table[symbol]
	if !ok {
		return Species{}, fmt.Errorf("pseudo: unknown species %q", symbol)
	}
	return s, nil
}

// Known lists the built-in species symbols.
func Known() []string {
	return []string{"Al", "C", "B", "N"}
}

// VLocal evaluates the bare local pseudopotential at radius r (bohr).
func (s Species) VLocal(r float64) float64 {
	x := r / s.RLoc
	gauss := math.Exp(-0.5*x*x) * (s.C1 + s.C2*x*x)
	if r < 1e-9 {
		// lim_{r->0} -Z*erf(r/(sqrt2 rl))/r = -Z*sqrt(2/pi)/rl
		return -s.Zval*math.Sqrt(2/math.Pi)/s.RLoc + gauss
	}
	return -s.Zval*math.Erf(r/(math.Sqrt2*s.RLoc))/r + gauss
}

// VScreened evaluates the neutral-atom (screened) potential: VLocal plus the
// compensating +Z*erf(r/RScr)/r tail. It decays faster than any power of r,
// so periodic lattice sums converge.
func (s Species) VScreened(r float64) float64 {
	v := s.VLocal(r)
	if r < 1e-9 {
		return v + s.Zval*2/(math.Sqrt(math.Pi)*s.RScr)
	}
	return v + s.Zval*math.Erf(r/s.RScr)/r
}

// ScreenedCutoff returns a radius beyond which |VScreened| is negligible
// (< about 1e-10 hartree); used to truncate lattice sums.
func (s Species) ScreenedCutoff() float64 {
	// erfc(x) < 1e-11 for x > 4.8; take the larger of the two ranges plus
	// the Gaussian core range.
	rc := 4.8 * s.RScr
	if r2 := 4.8 * math.Sqrt2 * s.RLoc; r2 > rc {
		rc = r2
	}
	if r3 := 7 * s.RLoc; r3 > rc {
		rc = r3
	}
	return rc
}

// Channel describes one nonlocal projector channel.
type Channel struct {
	L      int     // angular momentum: 0 (s) or 1 (p)
	R      float64 // Gaussian radius
	H      float64 // KB strength (hartree)
	Cutoff float64 // support radius on the grid
}

// Channels returns the active nonlocal channels of the species.
func (s Species) Channels() []Channel {
	var out []Channel
	if s.HS != 0 {
		out = append(out, Channel{L: 0, R: s.RS, H: s.HS, Cutoff: projectorCutoff(s.RS)})
	}
	if s.HP != 0 {
		out = append(out, Channel{L: 1, R: s.RP, H: s.HP, Cutoff: projectorCutoff(s.RP)})
	}
	return out
}

// projectorCutoff truncates the Gaussian projector where it has decayed to
// about 4e-5 of its peak -- tight enough for the model physics while
// keeping the cell-boundary interface (and with it the OBM baseline's
// dense blocks) from swallowing the whole cell on coarse grids.
func projectorCutoff(r float64) float64 { return 4.5 * r }

// Radial evaluates the (unnormalized) radial projector shape of the channel
// at radius r: exp(-r^2/2R^2) for s, (r/R)*exp(-r^2/2R^2) for p.
func (c Channel) Radial(r float64) float64 {
	x := r / c.R
	g := math.Exp(-0.5 * x * x)
	if c.L == 1 {
		return x * g
	}
	return g
}

// NumProjectors returns the number of projector functions of the channel
// (2L+1 real angular functions).
func (c Channel) NumProjectors() int { return 2*c.L + 1 }

// Angular evaluates the m-th real angular factor at direction (dx,dy,dz)/r:
// 1 for s; x/r, y/r, z/r for p (m = 0,1,2). For r = 0 the p factors vanish.
func (c Channel) Angular(m int, dx, dy, dz, r float64) float64 {
	if c.L == 0 {
		return 1
	}
	if r < 1e-12 {
		return 0
	}
	switch m {
	case 0:
		return dx / r
	case 1:
		return dy / r
	default:
		return dz / r
	}
}
