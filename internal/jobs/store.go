// store.go is the persistent job log: the serving layer's instance of the
// shared internal/journal framing (CRC-framed JSONL, atomic header
// creation, fsynced appends, torn-tail truncation). One record per job
// *event* — every lifecycle transition and every progress tick — so the
// log is simultaneously the crash-recovery source of truth and the
// replayable event stream behind SSE Last-Event-ID: a client that
// reconnects after a server restart still sees a gapless sequence.
//
// Header identity: the log is stamped with fingerprint.Operator of the
// served model. A restarted server refuses to replay a log written for a
// different operator (ErrLogMismatch) — re-adopting those jobs would
// resume physics the server can no longer compute.
//
// Durability policy (who must not lose what):
//   - the "queued" record is written before Submit succeeds; if it cannot
//     be made durable the submission is rejected (ErrJobLog). An accepted
//     job is therefore always recoverable.
//   - later records (running, progress, terminal) are best-effort: a lost
//     terminal record replays the job as running, re-adoption re-enqueues
//     it, and the sweep journal's per-energy records make the re-run
//     cheap. Lost progress only shortens the replayed event stream.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/journal"
)

// Typed sentinels of the job store.
var (
	// ErrJobLog means a job-log write failed at a point where losing the
	// record would lose the job: the submission is rejected rather than
	// accepted into a state a restart cannot see.
	ErrJobLog = errors.New("jobs: job log write failed")
	// ErrLogMismatch means the job log on disk was written by a different
	// operator (or an incompatible log version): replaying it would adopt
	// jobs whose physics this server cannot reproduce.
	ErrLogMismatch = errors.New("jobs: job log does not match this server")
	// ErrLostToRestart marks a job that survived in the log but could not
	// be re-adopted after restart: its request spec no longer rebuilds a
	// runnable task (or re-adoption itself faulted). The job resolves as
	// failed instead of silently vanishing.
	ErrLostToRestart = errors.New("jobs: job lost to server restart")
)

// logMagic / logVersion identify the file type; bump the version on any
// incompatible record-format change.
const (
	logMagic   = "cbs-job-log"
	logVersion = 1
)

// logHeader is the first line of every job log.
type logHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	Operator string `json:"operator"`
}

// Record event kinds.
const (
	evState    = "state"
	evProgress = "progress"
)

// logRecord is one journaled job event.
type logRecord struct {
	Job string `json:"job"`
	Seq int64  `json:"seq"` // per-job event sequence, from 1
	Ev  string `json:"ev"`  // evState | evProgress
	// State transition payload (evState).
	State State  `json:"state,omitempty"`
	Err   string `json:"error,omitempty"`
	// Submission identity, present on queued records only: everything a
	// restarted server needs to rebuild and re-enqueue the job.
	Kind        Kind            `json:"kind,omitempty"`
	Client      string          `json:"client,omitempty"`
	Weight      int             `json:"weight,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	// Progress payload (evProgress).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Unix is the event time in nanoseconds since the epoch.
	Unix int64 `json:"unix,omitempty"`
}

// ReplayedJob is one job folded out of the log on restart: its last
// journaled state plus the full event stream for SSE replay.
type ReplayedJob struct {
	ID          string
	Kind        Kind
	Client      string
	Weight      int
	Fingerprint string
	Spec        json.RawMessage
	State       State
	Err         string
	Done, Total int
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
	Events      []Event
}

// Store is the open job log. A nil *Store disables persistence — the
// manager runs in-memory exactly as before.
type Store struct {
	f     *journal.File
	path  string
	chaos *chaos.Injector
	mu    sync.Mutex
	// seq numbers appends (all jobs interleaved) so chaos decisions are
	// deterministic per site under a fixed seed.
	seq int64
}

// OpenStore opens (or creates) the job log at path and replays every
// intact record. The header must carry the given operator identity —
// fingerprint.Operator of the served model — or ErrLogMismatch is
// returned and nothing is replayed. Torn or corrupt lines (a crash
// mid-append) are dropped; a torn tail is truncated before the log
// reopens for appending.
func OpenStore(path, operator string) (*Store, []ReplayedJob, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		f, cerr := createStore(path, operator)
		if cerr != nil {
			return nil, nil, cerr
		}
		return newStore(f, path), nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	replayed, goodEnd, err := parseLog(data, operator)
	if err != nil {
		return nil, nil, err
	}
	// Startup compaction: finished jobs never emit again, so their
	// progress ticks (the bulk of a long-lived log) are dead weight — only
	// their state transitions still matter, for SSE replay and restart
	// folding. Rewrite the log without them (atomic: temp + fsync +
	// rename), keeping every record's original per-job seq so a client
	// resuming with Last-Event-ID still lands in the right place. A
	// rewrite failure is not fatal: the uncompacted log is still correct,
	// just bigger.
	if header, kept, dropped := compactPayloads(data, replayed); dropped > 0 {
		if rerr := journal.Rewrite(path, header, kept); rerr == nil {
			if data, err = os.ReadFile(path); err != nil {
				return nil, nil, fmt.Errorf("jobs: rereading compacted job log: %w", err)
			}
			if replayed, goodEnd, err = parseLog(data, operator); err != nil {
				return nil, nil, err
			}
		}
	}
	f, err := journal.OpenAppend(path, goodEnd)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: reopening job log: %w", err)
	}
	return newStore(f, path), replayed, nil
}

// compactPayloads splits the log into its header payload and the record
// payloads that survive compaction. Torn or unparseable lines are dropped,
// and for terminal jobs — which will never emit again — every progress
// tick except the last collapses away; the surviving records keep their
// bytes, order, and per-job seqs, so folding and Last-Event-ID replay see
// the same final state. dropped counts the discarded records.
func compactPayloads(data []byte, replayed []ReplayedJob) (header []byte, kept [][]byte, dropped int) {
	terminal := make(map[string]bool, len(replayed))
	for _, rj := range replayed {
		terminal[rj.ID] = rj.State.Terminal()
	}
	lines := journal.Lines(data)
	// Last progress seq per terminal job: the one tick worth keeping (it
	// carries the job's final Done/Total).
	lastProgress := make(map[string]int64)
	for i, line := range lines {
		if i == 0 || line.Payload == nil {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(line.Payload, &rec); err != nil {
			continue
		}
		if rec.Ev == evProgress && terminal[rec.Job] && rec.Seq > lastProgress[rec.Job] {
			lastProgress[rec.Job] = rec.Seq
		}
	}
	for i, line := range lines {
		if i == 0 {
			header = line.Payload // parseLog already validated it
			continue
		}
		if line.Payload == nil {
			dropped++ // a sealed torn fragment: dead weight
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(line.Payload, &rec); err != nil || rec.Job == "" {
			dropped++
			continue
		}
		if rec.Ev == evProgress && terminal[rec.Job] && rec.Seq != lastProgress[rec.Job] {
			dropped++
			continue
		}
		kept = append(kept, line.Payload)
	}
	return header, kept, dropped
}

// createStore writes a fresh log header (atomic: temp + fsync + rename
// inside internal/journal).
func createStore(path, operator string) (*journal.File, error) {
	payload, err := json.Marshal(logHeader{Magic: logMagic, Version: logVersion, Operator: operator})
	if err != nil {
		return nil, err
	}
	return journal.Create(path, payload)
}

func newStore(f *journal.File, path string) *Store {
	return &Store{f: f, path: path}
}

// SetChaos arms fault injection on log appends (nil-safe, test/CI only).
func (st *Store) SetChaos(in *chaos.Injector) {
	if st != nil {
		st.chaos = in
	}
}

// Path returns the log's file path ("" for a nil store).
func (st *Store) Path() string {
	if st == nil {
		return ""
	}
	return st.path
}

// Close releases the log file (nil-safe).
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	return st.f.Close()
}

// nextSeq hands out the store-global append sequence number.
func (st *Store) nextSeq() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.seq
	st.seq++
	return n
}

// append durably logs one record. A nil store accepts everything. Under
// chaos a JobLogFault either fails the append cleanly or writes a torn
// fragment first (the on-disk image of a crash mid-append) — either way
// the record is not durable and the error says so.
func (st *Store) append(rec logRecord) error {
	if st == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrJobLog, err)
	}
	n := st.nextSeq()
	//cbs:chaossite joblog.append
	if torn, ferr := st.chaos.JobLogFault(int(n)); ferr != nil {
		if torn {
			st.f.AppendTorn(payload)
		}
		return fmt.Errorf("%w: %w", ErrJobLog, ferr)
	}
	if err := st.f.Append(payload); err != nil {
		return fmt.Errorf("%w: %w", ErrJobLog, err)
	}
	return nil
}

// parseLog validates the header and folds the surviving records into
// per-job replay state, in first-seen order.
func parseLog(data []byte, operator string) ([]ReplayedJob, int64, error) {
	var goodEnd int64
	sawHeader := false
	byID := make(map[string]*ReplayedJob)
	var order []string
	for _, line := range journal.Lines(data) {
		if !sawHeader {
			if line.Payload == nil {
				return nil, 0, fmt.Errorf("%w: corrupt header frame", ErrLogMismatch)
			}
			var h logHeader
			if err := json.Unmarshal(line.Payload, &h); err != nil || h.Magic != logMagic {
				return nil, 0, fmt.Errorf("%w: bad header", ErrLogMismatch)
			}
			if h.Version != logVersion {
				return nil, 0, fmt.Errorf("%w: log version %d, want %d", ErrLogMismatch, h.Version, logVersion)
			}
			if h.Operator != operator {
				return nil, 0, fmt.Errorf("%w: log operator %s, server %s", ErrLogMismatch, h.Operator, operator)
			}
			sawHeader = true
			goodEnd = line.End
			continue
		}
		if line.Payload == nil {
			continue // torn or corrupt record: the event is lost, not the job
		}
		var rec logRecord
		if err := json.Unmarshal(line.Payload, &rec); err != nil || rec.Job == "" {
			continue
		}
		goodEnd = line.End
		rj := byID[rec.Job]
		if rj == nil {
			rj = &ReplayedJob{ID: rec.Job, State: StateQueued, Weight: 1}
			byID[rec.Job] = rj
			order = append(order, rec.Job)
		}
		foldRecord(rj, rec)
	}
	if !sawHeader {
		return nil, 0, fmt.Errorf("%w: empty file", ErrLogMismatch)
	}
	out := make([]ReplayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, goodEnd, nil
}

// foldRecord applies one event to the replayed job state.
func foldRecord(rj *ReplayedJob, rec logRecord) {
	ev := Event{Seq: rec.Seq, Ev: rec.Ev, State: rec.State, Done: rec.Done, Total: rec.Total, Err: rec.Err}
	switch rec.Ev {
	case evState:
		rj.State = rec.State
		if rec.Err != "" {
			rj.Err = rec.Err
		}
		t := time.Unix(0, rec.Unix)
		switch rec.State {
		case StateQueued:
			rj.Submitted = t
			if rec.Kind != "" {
				rj.Kind = rec.Kind
			}
			if rec.Client != "" {
				rj.Client = rec.Client
			}
			if rec.Weight > 0 {
				rj.Weight = rec.Weight
			}
			if rec.Fingerprint != "" {
				rj.Fingerprint = rec.Fingerprint
			}
			if len(rec.Spec) > 0 {
				rj.Spec = rec.Spec
			}
		case StateRunning:
			rj.Started = t
		default:
			rj.Finished = t
		}
		ev.Final = rec.State.Terminal()
	case evProgress:
		rj.Done, rj.Total = rec.Done, rec.Total
		ev.State = StateRunning
	default:
		return // unknown event kind from a future version: skip
	}
	rj.Events = append(rj.Events, ev)
}

// replayedSeq extracts the numeric tail of a replayed job ID ("j000017"
// -> 17) so a restarted manager continues numbering past it.
func replayedSeq(id string) int {
	s := strings.TrimPrefix(id, "j")
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}
