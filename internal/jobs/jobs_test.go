package jobs

import (
	"context"
	"errors"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
)

// submit is shorthand for the plain single-task submissions of these
// tests (no client identity, no spec — the fairness and persistence
// tests build full Submissions themselves).
func submit(m *Manager, kind Kind, task Task) (string, error) {
	return m.Submit(Submission{Kind: kind, Task: task})
}

// blockingTask returns a task that reports in on started (if non-nil) and
// holds until release closes.
func blockingTask(started chan<- string, release <-chan struct{}, id string) Task {
	return func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		if started != nil {
			started <- id
		}
		select {
		case <-release:
			return Outcome{Result: &core.Result{Energy: 1}}, nil
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		}
	}
}

// TestQueueOverflowRejectsTyped: with the pool busy and the queue full,
// the next submission is rejected with ErrQueueFull — it does not block
// and it is not silently dropped.
func TestQueueOverflowRejectsTyped(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)

	// One running + two queued fills the system: submit the first job,
	// wait for the worker to hold it, then fill the queue behind it.
	ids := make([]string, 3)
	for i := range ids {
		id, err := submit(m, KindSolve, blockingTask(started, release, "t"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
		if i == 0 {
			<-started // the worker holds job 1; jobs 2 and 3 sit in the queue
		}
	}

	submitDone := make(chan error, 1)
	go func() {
		_, err := submit(m, KindSolve, blockingTask(nil, release, "overflow"))
		submitDone <- err
	}()
	select {
	case err := <-submitDone:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("overflow submission blocked instead of rejecting")
	}
	if mt := m.Metrics(); mt.Rejected != 1 || mt.Submitted != 3 {
		t.Errorf("metrics %+v, want 3 submitted 1 rejected", mt)
	}
	// The rejected submission must not have registered a job.
	for _, id := range ids {
		if _, err := m.Get(id); err != nil {
			t.Errorf("accepted job %s lost: %v", id, err)
		}
	}
}

// TestJobLifecycle: queued → running → done with outcome and progress
// visible through Get.
func TestJobLifecycle(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	progressed := make(chan struct{})
	id, err := submit(m, KindSweep, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		progress(3, 7)
		close(progressed)
		<-release
		return Outcome{Result: &core.Result{Energy: 2.5}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-progressed
	snap, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateRunning || snap.Done != 3 || snap.Total != 7 {
		t.Errorf("mid-flight snapshot %+v, want running 3/7", snap)
	}
	close(release)
	waitState(t, m, id, StateDone)
	snap, _ = m.Get(id)
	if snap.Outcome.Result == nil || snap.Outcome.Result.Energy != 2.5 {
		t.Errorf("outcome %+v, want result energy 2.5", snap.Outcome)
	}
	if snap.Finished.Before(snap.Started) || snap.Started.Before(snap.Submitted) {
		t.Errorf("timestamps out of order: %+v", snap)
	}
	if _, err := m.Get("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id err = %v, want ErrNotFound", err)
	}
}

// TestCancelQueuedAndRunning: a queued job never runs; a running job's
// context dies and the job ends canceled.
func TestCancelQueuedAndRunning(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)

	runID, err := submit(m, KindSolve, blockingTask(started, release, "running"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var ran sync.Map
	queuedID, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		ran.Store("queued", true)
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	snap, _ := m.Get(queuedID)
	if snap.State != StateCanceled {
		t.Errorf("queued job after cancel: %s, want canceled", snap.State)
	}
	if err := m.Cancel(runID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, runID, StateCanceled)
	snap, _ = m.Get(runID)
	if !errors.Is(snap.Err, context.Canceled) {
		t.Errorf("running job err = %v, want context.Canceled", snap.Err)
	}
	if _, found := ran.Load("queued"); found {
		t.Error("canceled queued job ran anyway")
	}
	mt := m.Metrics()
	if mt.Canceled != 2 {
		t.Errorf("canceled count = %d, want 2", mt.Canceled)
	}
}

// TestDrain: intake stops with a typed error, queued jobs are canceled
// unstarted, in-flight jobs finish within the grace period, and Drain
// waits for them.
func TestDrain(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	runID, err := submit(m, KindSolve, blockingTask(started, release, "inflight"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := submit(m, KindSolve, blockingTask(nil, release, "queued"))
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release) // the in-flight job finishes inside the grace period
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if _, err := submit(m, KindSolve, blockingTask(nil, release, "late")); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining err = %v, want ErrDraining", err)
	}
	snap, _ := m.Get(runID)
	if snap.State != StateDone {
		t.Errorf("in-flight job ended %s, want done (finished within grace)", snap.State)
	}
	snap, _ = m.Get(queuedID)
	if snap.State != StateCanceled || !errors.Is(snap.Err, ErrDraining) {
		t.Errorf("queued job ended %s err %v, want canceled/ErrDraining", snap.State, snap.Err)
	}
}

// TestDrainForceCancelsAfterGrace: a job that ignores the grace period is
// context-canceled, and Drain still waits for it to unwind.
func TestDrainForceCancelsAfterGrace(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	id, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		started <- "x"
		<-ctx.Done() // refuses to finish until canceled
		return Outcome{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want DeadlineExceeded (grace expired)", err)
	}
	snap, _ := m.Get(id)
	if snap.State != StateCanceled {
		t.Errorf("stubborn job ended %s, want canceled", snap.State)
	}
}

// TestChaosJobFault: an injected pickup fault fails the job with the
// typed chaos error and the pool keeps serving.
func TestChaosJobFault(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 8, Chaos: chaos.New(1, chaos.Config{JobFault: 1})})
	id, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		t.Error("task ran despite injected pickup fault")
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateFailed)
	snap, _ := m.Get(id)
	if !errors.Is(snap.Err, chaos.ErrInjected) {
		t.Errorf("err = %v, want chaos.ErrInjected", snap.Err)
	}
	if mt := m.Metrics(); mt.Failed != 1 {
		t.Errorf("failed count = %d, want 1", mt.Failed)
	}
}

// chaosSeed reads the CI chaos seed matrix (CBS_CHAOS_SEED, default 1) so
// each matrix entry faults a different subset of jobs.
func chaosSeed() int64 {
	if s := os.Getenv("CBS_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// TestChaosSeedMatrix drives the pool under a partial job-fault rate:
// whichever jobs the seed picks must fail with the typed chaos error, the
// rest must run to completion, and the counters must reconcile — a faulty
// pickup never wedges a worker or leaks a queue slot.
func TestChaosSeedMatrix(t *testing.T) {
	in := chaos.New(chaosSeed(), chaos.Config{JobFault: 0.3})
	m := New(Config{Workers: 2, QueueDepth: 64, Chaos: in})
	const n = 32
	var ran atomic.Int64
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
			ran.Add(1)
			return Outcome{}, nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	done, failed := 0, 0
	for _, id := range ids {
		deadline := time.Now().Add(5 * time.Second)
		for {
			snap, err := m.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if snap.State.Terminal() {
				switch snap.State {
				case StateDone:
					done++
				case StateFailed:
					failed++
					if !errors.Is(snap.Err, chaos.ErrInjected) {
						t.Errorf("job %s failed with %v, want chaos.ErrInjected", id, snap.Err)
					}
				default:
					t.Errorf("job %s ended %s under job faults", id, snap.State)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, snap.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if done+failed != n {
		t.Fatalf("done %d + failed %d != %d submitted", done, failed, n)
	}
	if int(ran.Load()) != done {
		t.Errorf("%d tasks ran but %d jobs are done: a faulted pickup must not run its task", ran.Load(), done)
	}
	if mt := m.Metrics(); mt.Completed != int64(done) || mt.Failed != int64(failed) || mt.InFlight != 0 {
		t.Errorf("metrics %+v do not reconcile with done=%d failed=%d", mt, done, failed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Errorf("drain after chaos run: %v", err)
	}
}

// waitState polls until the job reaches want or the test times out.
func waitState(t *testing.T, m *Manager, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
}
