package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// runOrder submits jobs for the given clients against a 1-worker pool and
// returns the order the tasks actually executed. The first job is held
// until every submission is queued, so the scheduler — not submission
// timing — decides the order.
func runOrder(t *testing.T, weights map[string]int, labels []string) []string {
	t.Helper()
	m := New(Config{Workers: 1, QueueDepth: 32})
	var mu sync.Mutex
	var order []string
	started := make(chan string, 1)
	release := make(chan struct{})
	ids := make([]string, len(labels))
	for i, lbl := range labels {
		client := lbl[:1] // "a3" -> client "a"
		task := func(ctx context.Context, _ func(int, int)) (Outcome, error) {
			mu.Lock()
			order = append(order, lbl)
			mu.Unlock()
			if len(order) == 1 {
				started <- lbl
				<-release // hold the pool until every submission is queued
			}
			return Outcome{}, nil
		}
		id, err := m.Submit(Submission{Kind: KindSolve, Client: client, Weight: weights[client], Task: task})
		if err != nil {
			t.Fatalf("submit %s: %v", lbl, err)
		}
		ids[i] = id
		if i == 0 {
			<-started
		}
	}
	close(release)
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	return order
}

// TestFairRoundRobinInterleaves: with equal weights, a client that shows
// up with 2 jobs behind another client's 6 gets served alternately, not
// after the backlog. The 1-worker pool makes the dispatch order exact.
func TestFairRoundRobinInterleaves(t *testing.T) {
	order := runOrder(t,
		map[string]int{"a": 1, "b": 1},
		[]string{"a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2"})
	want := []string{"a1", "a2", "b1", "a3", "b2", "a4", "a5", "a6"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (strict alternation once both clients are queued)", order, want)
		}
	}
}

// TestFairWeightedShare: a weight-3 client dispatches up to 3 jobs per
// ring pass against a weight-1 client's 1.
func TestFairWeightedShare(t *testing.T) {
	order := runOrder(t,
		map[string]int{"a": 3, "b": 1},
		[]string{"a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2"})
	want := []string{"a1", "a2", "a3", "a4", "b1", "a5", "a6", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (3:1 weighted rounds)", order, want)
		}
	}
}

// TestPerClientInFlightCap: with 2 workers and a cap of 1, a client
// already running a job is passed over while the other client is below
// the cap — but the cap never idles a worker when only one client has
// work (work conservation).
func TestPerClientInFlightCap(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 32, PerClientInFlight: 1})
	started := make(chan string, 8)
	rel := map[string]chan struct{}{}
	var ids []string
	add := func(client, lbl string) {
		t.Helper()
		rel[lbl] = make(chan struct{})
		id, err := m.Submit(Submission{Kind: KindSolve, Client: client, Task: blockingTask(started, rel[lbl], lbl)})
		if err != nil {
			t.Fatalf("submit %s: %v", lbl, err)
		}
		ids = append(ids, id)
	}

	add("a", "a1")
	if got := <-started; got != "a1" {
		t.Fatalf("first start %q, want a1", got)
	}
	add("b", "b1") // second worker takes the other client
	if got := <-started; got != "b1" {
		t.Fatalf("second start %q, want b1", got)
	}
	add("a", "a2")
	add("a", "a3")
	add("b", "b2")

	// Freeing a's slot hands the worker to a2 — b is at its cap.
	close(rel["a1"])
	if got := <-started; got != "a2" {
		t.Fatalf("after a1 finished, %q started, want a2 (b is at cap)", got)
	}
	// Freeing b's slot hands the worker to b2, NOT a3: a is at its cap
	// while b sits below it.
	close(rel["b1"])
	if got := <-started; got != "b2" {
		t.Fatalf("after b1 finished, %q started, want b2 (cap must bind against a)", got)
	}
	// Work conservation: with b drained, a may exceed alternation.
	close(rel["a2"])
	if got := <-started; got != "a3" {
		t.Fatalf("after a2 finished, %q started, want a3", got)
	}
	close(rel["b2"])
	close(rel["a3"])
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
}

// TestWatchLiveStream: a subscriber sees the full gapless event sequence
// — queued, running, progress ticks, terminal — and the channel closes on
// the final event.
func TestWatchLiveStream(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	id, err := submit(m, KindSweep, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		<-release
		progress(1, 2)
		progress(2, 2)
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	past, live, cancel, err := m.Watch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	close(release)

	events := append([]Event(nil), past...)
	if live != nil {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					goto drained
				}
				events = append(events, ev)
			case <-deadline:
				t.Fatal("event channel never closed after the final event")
			}
		}
	}
drained:
	if len(events) < 5 {
		t.Fatalf("saw %d events %+v, want >= 5 (queued, running, 2 progress, done)", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d seq %d — gap in stream %+v", i, ev.Seq, events)
		}
	}
	last := events[len(events)-1]
	if !last.Final || last.State != StateDone {
		t.Errorf("stream ends with %+v, want final done", last)
	}
	// Watching from a mid-stream cursor replays only the suffix.
	tail, tailLive, cancel2, err := m.Watch(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	if tailLive != nil {
		t.Error("terminal job handed out a live channel")
	}
	if len(tail) != len(events)-2 || tail[0].Seq != 3 {
		t.Errorf("replay after seq 2 = %+v, want events 3..%d", tail, len(events))
	}
}

// TestWatchLaggedSubscriberReconnects: a subscriber that stops reading is
// disconnected (channel closed mid-stream) rather than blocking the
// publisher; reconnecting with the last seen seq replays the missed
// suffix with no gap — the SSE Last-Event-ID contract at the package
// level.
func TestWatchLaggedSubscriberReconnects(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	const ticks = 3 * subBuffer // far past the per-subscriber buffer
	id, err := submit(m, KindSweep, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		<-release
		for i := 1; i <= ticks; i++ {
			progress(i, ticks)
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	past, live, cancel, err := m.Watch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if live == nil {
		t.Fatal("no live channel for a queued job")
	}
	close(release)
	waitState(t, m, id, StateDone) // publisher outran the unread subscriber

	var last int64
	for _, ev := range past {
		last = ev.Seq
	}
	got := 0
	for ev := range live { // closed by the overflow disconnect
		if ev.Seq != last+1 {
			t.Fatalf("buffered stream jumped %d -> %d", last, ev.Seq)
		}
		last = ev.Seq
		got++
	}
	if got > subBuffer {
		t.Errorf("lagged subscriber buffered %d events, cap is %d", got, subBuffer)
	}
	if last >= int64(ticks)+2 {
		t.Fatalf("slow subscriber saw seq %d of ~%d — it was never cut off", last, ticks+3)
	}

	// Reconnect with Last-Event-ID = last: the suffix replays gaplessly
	// through the terminal event.
	tail, tailLive, cancel2, err := m.Watch(id, last)
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	if tailLive != nil {
		t.Error("terminal job handed out a live channel on reconnect")
	}
	if len(tail) == 0 {
		t.Fatal("reconnect replayed nothing")
	}
	for _, ev := range tail {
		if ev.Seq != last+1 {
			t.Fatalf("reconnect stream jumped %d -> %d", last, ev.Seq)
		}
		last = ev.Seq
	}
	if fin := tail[len(tail)-1]; !fin.Final || fin.State != StateDone {
		t.Errorf("reconnected stream ends with %+v, want final done", fin)
	}
}
